package adamant_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
)

// goldenTraceSpans is goldenTrace with the fusion pass optionally applied
// and the raw spans returned alongside the rendering, so tests can assert
// on the span structure the golden text is built from.
func goldenTraceSpans(t *testing.T, query string, model exec.Model, fuse bool) (string, []trace.Span) {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	id, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	g, err := tpch.BuildQuery(query, ds, id)
	if err != nil {
		t.Fatal(err)
	}
	if fuse {
		fg := graph.Fuse(g)
		if fg == g {
			t.Fatalf("%s did not fuse", query)
		}
		g = fg
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Recorder: rec})
	if err != nil {
		t.Fatalf("%s under %v: %v", query, model, err)
	}
	var b strings.Builder
	exec.WriteAnalyze(&b, g, pipelines, res.Stats, rec.Spans())
	b.WriteString("\n")
	trace.WriteSummary(&b, rec.Spans())
	return b.String(), rec.Spans()
}

// TestGoldenTraceFused pins the fused renderings of Q6 (full chain fusion)
// and Q3 (the build-side materialize fuses; the join pipelines stay on the
// unfused path) under the three basic models, and asserts the headline
// property of fusion on the span level: a fused chain runs with ZERO
// intermediate output allocations and frees — only the unfused plan bounces
// bitmap and gathered-column buffers through device memory.
func TestGoldenTraceFused(t *testing.T) {
	models := []struct {
		slug  string
		model exec.Model
	}{
		{"oaat", exec.OperatorAtATime},
		{"chunked", exec.Chunked},
		{"pipelined", exec.Pipelined},
	}
	for _, query := range []string{"Q3", "Q6"} {
		for _, m := range models {
			name := fmt.Sprintf("%s-fuse-%s", query, m.slug)
			t.Run(name, func(t *testing.T) {
				got, spans := goldenTraceSpans(t, query, m.model, true)
				if again, _ := goldenTraceSpans(t, query, m.model, true); again != got {
					t.Fatalf("fused trace of %s not deterministic:\n%s", name, diffLines(again, got))
				}

				// The fused plan dispatches fused kernels, and every one of
				// them carries its fuse annotation.
				var fuseSpans, fusedKernels int
				for _, s := range spans {
					if s.Kind == trace.KindFuse {
						fuseSpans++
					}
					if s.Kind == trace.KindKernel && strings.HasPrefix(s.Label, "fused_") {
						fusedKernels++
					}
				}
				if fuseSpans == 0 || fuseSpans != fusedKernels {
					t.Errorf("%d fuse spans for %d fused kernel launches", fuseSpans, fusedKernels)
				}

				// The fused trace is visibly shorter than the unfused one.
				unfused, uspans := goldenTraceSpans(t, query, m.model, false)
				if len(spans) >= len(uspans) {
					t.Errorf("fused trace has %d spans, unfused %d", len(spans), len(uspans))
				}
				_ = unfused

				if query == "Q6" {
					// Q6 fuses completely: no intermediate results exist, so
					// the pipeline allocates no per-operator output buffers at
					// all (the accumulator and staging allocs remain). The
					// unfused run must show them, or this check is dead.
					if n := outputAllocs(spans); n != 0 {
						t.Errorf("fused Q6 allocates %d intermediate output buffers, want 0", n)
					}
					if n := outputAllocs(uspans); n == 0 {
						t.Error("unfused Q6 shows no intermediate output allocs; the assertion lost its teeth")
					}
				}

				path := filepath.Join("testdata", "traces", name+".txt")
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run: go test -run TestGoldenTraceFused -update .): %v", err)
				}
				if got != string(want) {
					t.Errorf("golden mismatch for %s (re-bless with -update if intended):\n%s",
						path, diffLines(got, string(want)))
				}
			})
		}
	}
}

// outputAllocs counts the per-operator output-buffer allocations in a
// trace ("output" in the chunked models, "scratch" in the pipelined ones) —
// the intermediate results a fused chain is supposed to eliminate.
func outputAllocs(spans []trace.Span) int {
	var n int
	for _, s := range spans {
		if s.Kind == trace.KindAlloc && (s.Label == "output" || s.Label == "scratch") {
			n++
		}
	}
	return n
}
