// Command adamant-bench regenerates the paper's evaluation tables and
// figures (§V) from the simulated ADAMANT stack.
//
// Usage:
//
//	adamant-bench [-exp name] [-quick] [-ratio f] [-seed n]
//
// With no -exp it runs every experiment. Experiment names: table2, fig3,
// fig5, fig7, fig9, fig10, fig11, heavydb.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/adamant-db/adamant/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); one of "+fmt.Sprint(experiments.Names()))
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	ratio := flag.Float64("ratio", 0, "TPC-H down-scale ratio (0 = profile default)")
	seed := flag.Uint64("seed", 42, "data generator seed")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Ratio: *ratio, Seed: *seed}

	var err error
	if *exp == "" {
		err = experiments.RunAll(cfg, os.Stdout)
	} else {
		var gen experiments.Generator
		gen, err = experiments.Lookup(*exp)
		if err == nil {
			err = gen(cfg, os.Stdout)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adamant-bench: %v\n", err)
		os.Exit(1)
	}
}
