// Command adamant-bench regenerates the paper's evaluation tables and
// figures (§V) from the simulated ADAMANT stack.
//
// Usage:
//
//	adamant-bench [-exp name] [-quick] [-ratio f] [-seed n] [-json out.json]
//
// With no -exp it runs every experiment. Experiment names: table2, fig3,
// fig5, fig7, fig9, fig10, fig11, heavydb. With -json, every numeric table
// cell is also written to the given file as machine-readable records
// ({experiment, metric, value, unit, seed, ratio}) for trend tracking.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/adamant-db/adamant/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); one of "+fmt.Sprint(experiments.Names()))
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	ratio := flag.Float64("ratio", 0, "TPC-H down-scale ratio (0 = profile default)")
	seed := flag.Uint64("seed", 42, "data generator seed")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file")
	flag.Parse()

	// Ctrl-C cancels the in-flight query at its next chunk boundary; the
	// interrupted experiment reports how far it got instead of dying
	// mid-allocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := experiments.Config{Quick: *quick, Ratio: *ratio, Seed: *seed, Ctx: ctx}
	if *jsonOut != "" {
		cfg.Results = experiments.NewCollector()
	}

	var err error
	if *exp == "" {
		err = experiments.RunAll(cfg, os.Stdout)
	} else {
		var gen experiments.Generator
		gen, err = experiments.Lookup(*exp)
		if err == nil {
			err = gen(cfg, os.Stdout)
		}
	}
	if *jsonOut != "" && err == nil {
		if werr := writeResults(*jsonOut, cfg.Results); werr != nil {
			err = werr
		} else {
			fmt.Fprintf(os.Stderr, "adamant-bench: wrote %d records to %s\n", len(cfg.Results.Records()), *jsonOut)
		}
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "adamant-bench: interrupted — partial results above")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adamant-bench: %v\n", err)
		os.Exit(1)
	}
}

// writeResults dumps the collected records to path as indented JSON.
func writeResults(path string, c *experiments.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
