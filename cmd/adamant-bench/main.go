// Command adamant-bench regenerates the paper's evaluation tables and
// figures (§V) from the simulated ADAMANT stack.
//
// Usage:
//
//	adamant-bench [-exp name] [-quick] [-ratio f] [-seed n]
//
// With no -exp it runs every experiment. Experiment names: table2, fig3,
// fig5, fig7, fig9, fig10, fig11, heavydb.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/adamant-db/adamant/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); one of "+fmt.Sprint(experiments.Names()))
	quick := flag.Bool("quick", false, "shrink workloads for a fast run")
	ratio := flag.Float64("ratio", 0, "TPC-H down-scale ratio (0 = profile default)")
	seed := flag.Uint64("seed", 42, "data generator seed")
	flag.Parse()

	// Ctrl-C cancels the in-flight query at its next chunk boundary; the
	// interrupted experiment reports how far it got instead of dying
	// mid-allocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := experiments.Config{Quick: *quick, Ratio: *ratio, Seed: *seed, Ctx: ctx}

	var err error
	if *exp == "" {
		err = experiments.RunAll(cfg, os.Stdout)
	} else {
		var gen experiments.Generator
		gen, err = experiments.Lookup(*exp)
		if err == nil {
			err = gen(cfg, os.Stdout)
		}
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "adamant-bench: interrupted — partial results above")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "adamant-bench: %v\n", err)
		os.Exit(1)
	}
}
