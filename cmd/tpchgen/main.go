// Command tpchgen generates the TPC-H subset ADAMANT evaluates on and
// writes it as CSV files, one per table, for inspection or external use.
//
// Usage:
//
//	tpchgen -sf 1 -ratio 0.01 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "tpchgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sf := flag.Float64("sf", 1, "TPC-H scale factor")
	ratio := flag.Float64("ratio", 1, "down-scale ratio for generated rows")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("out", ".", "output directory")
	statsOnly := flag.Bool("stats", false, "print table statistics without writing files")
	flag.Parse()

	ds, err := tpch.Generate(tpch.Config{SF: *sf, Ratio: *ratio, Seed: *seed})
	if err != nil {
		return err
	}

	cat := ds.Catalog()
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %10d rows  %8.2f MiB  (logical SF%g: %d rows)\n",
			t.Name, t.Rows(), float64(t.Bytes())/(1<<20), *sf, ds.LogicalRows(t.Name))
		if *statsOnly {
			continue
		}
		f, err := os.Create(filepath.Join(*out, t.Name+".csv"))
		if err != nil {
			return err
		}
		if err := storage.WriteCSV(t, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
