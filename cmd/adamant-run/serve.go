package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vec"
)

// serveConfig carries the CLI flags the telemetry service needs.
type serveConfig struct {
	q          string
	sqlText    string
	sf         float64
	ratio      float64
	seed       uint64
	driver     string
	fallback   string
	model      adamant.Model
	chunkElems int
	faults     string
	retries    int
	deadline   time.Duration
	adapt      bool
	warm       int

	cacheMiB    int64
	cachePolicy string

	sloTarget    time.Duration
	sloObjective float64
	tenant       string
}

// servedSQL maps -q names onto the SQL the service runs through the facade
// front-end (the plan-builder queries live on the internal graph API, which
// the telemetry-wired engine does not expose).
var servedSQL = map[string]string{
	"Q6": `SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
	       WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
	         AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
}

// facadePlug maps a CLI driver name onto the facade's hardware + SDK pair.
func facadePlug(driver string) (adamant.Hardware, adamant.SDK, error) {
	switch driver {
	case "cuda":
		return adamant.RTX2080Ti, adamant.CUDA, nil
	case "opencl-gpu":
		return adamant.RTX2080Ti, adamant.OpenCL, nil
	case "opencl-cpu":
		return adamant.CoreI78700, adamant.OpenCL, nil
	case "openmp":
		return adamant.CoreI78700, adamant.OpenMP, nil
	default:
		return 0, 0, fmt.Errorf("unknown driver %q", driver)
	}
}

// facadeCatalog converts the generated TPC-H dataset into the facade's SQL
// catalog (the generator emits int32 columns only).
func facadeCatalog(ds *tpch.Dataset) (*adamant.Catalog, error) {
	var tables []*adamant.Table
	for _, st := range []*storage.Table{ds.Lineitem, ds.Orders, ds.Customer} {
		t := adamant.NewTable(st.Name, st.Rows())
		for _, col := range st.Columns() {
			if col.Data.Type() != vec.Int32 {
				return nil, fmt.Errorf("table %s column %s: unsupported type %v", st.Name, col.Name, col.Data.Type())
			}
			if err := t.AddInt32(col.Name, col.Data.I32()); err != nil {
				return nil, err
			}
		}
		tables = append(tables, t)
	}
	return adamant.NewCatalog(tables...), nil
}

// serve runs the telemetry service: a telemetry-armed engine over the
// TPC-H catalog, a canned workload to warm it, and the observability
// endpoints (/metrics, /events, /flight, /util, /cache, /run) on addr.
func serve(ctx context.Context, addr string, cfg serveConfig) error {
	query := cfg.sqlText
	if query == "" {
		var ok bool
		query, ok = servedSQL[cfg.q]
		if !ok {
			return fmt.Errorf("serve mode has no canned SQL for -q %s; pass -sql", cfg.q)
		}
	}

	ds, err := tpch.Generate(tpch.Config{SF: cfg.sf, Ratio: cfg.ratio, Seed: cfg.seed})
	if err != nil {
		return err
	}
	cat, err := facadeCatalog(ds)
	if err != nil {
		return err
	}

	var eopts []adamant.EngineOption
	if cfg.faults != "" {
		plan, err := adamant.ParseFaultPlan(cfg.faults)
		if err != nil {
			return err
		}
		eopts = append(eopts, adamant.WithFaultPlan(plan))
	}
	if cfg.retries > 0 {
		eopts = append(eopts, adamant.WithRetryPolicy(adamant.RetryPolicy{MaxRetries: cfg.retries}))
	}
	if cfg.adapt {
		eopts = append(eopts, adamant.WithAdaptiveChunking(0))
	}
	if cfg.deadline > 0 {
		eopts = append(eopts, adamant.WithDeadline(cfg.deadline))
	}
	if cfg.fallback != "" {
		// Devices plug sequentially: the primary gets ID 0, the fallback ID 1.
		eopts = append(eopts, adamant.WithFallbackDevice(1))
	}
	if cfg.cacheMiB > 0 {
		pol, err := adamant.ParseCachePolicy(cfg.cachePolicy)
		if err != nil {
			return err
		}
		eopts = append(eopts, adamant.WithBufferPool(cfg.cacheMiB<<20, pol))
	}
	eng := adamant.NewEngine(eopts...).WithTelemetry(adamant.TelemetryConfig{
		// Anything an order of magnitude over a warm Q6 is worth keeping.
		SlowThreshold: 10 * time.Second,
	}).WithProfile(adamant.ProfileConfig{})
	if cfg.sloTarget > 0 {
		eng.WithSLO(cfg.sloTarget, cfg.sloObjective)
	}
	if cfg.tenant != "" {
		eng.WithTenant(cfg.tenant)
	}
	hw, sdk, err := facadePlug(cfg.driver)
	if err != nil {
		return err
	}
	if _, err := eng.Plug(hw, sdk); err != nil {
		return err
	}
	if cfg.fallback != "" {
		fhw, fsdk, err := facadePlug(cfg.fallback)
		if err != nil {
			return err
		}
		if _, err := eng.Plug(fhw, fsdk); err != nil {
			return err
		}
	}

	runOnce := func(ctx context.Context) (*adamant.Result, error) {
		return eng.QueryContext(ctx, cat, 0, query, adamant.QueryOptions{
			ExecOptions: adamant.ExecOptions{Model: cfg.model, ChunkElems: cfg.chunkElems},
		})
	}
	for i := 0; i < cfg.warm; i++ {
		if _, err := runOnce(ctx); err != nil {
			return fmt.Errorf("warmup query %d: %w", i+1, err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = eng.WriteProm(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = eng.WriteEvents(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = eng.FlightDump(w)
	})
	mux.HandleFunc("/util", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		eng.WriteUtilization(w)
	})
	mux.HandleFunc("/util.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = eng.WriteUtilizationJSON(w)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		eng.WriteProfile(w)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = eng.WriteSLO(w)
	})
	mux.HandleFunc("/cache", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Enabled  bool                 `json:"enabled"`
			Stats    adamant.CacheStats   `json:"stats"`
			Timeline []adamant.CachePoint `json:"timeline"`
		}{eng.CacheEnabled(), eng.CacheStats(), eng.CacheTimeline()})
	})
	mux.HandleFunc("/run", func(w http.ResponseWriter, r *http.Request) {
		n := 1
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 && parsed <= 1000 {
				n = parsed
			}
		}
		for i := 0; i < n; i++ {
			if _, err := runOnce(r.Context()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		fmt.Fprintf(w, "ok: %d queries executed\n", n)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "adamant telemetry service\nendpoints: /metrics /events /flight /util /util.json /profile /slo /cache /run?n=K\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving on %s (endpoints: /metrics /events /flight /util /profile /slo /cache /run)\n", ln.Addr())
	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		<-done
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
