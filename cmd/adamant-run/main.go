// Command adamant-run executes a TPC-H query on the simulated ADAMANT
// stack and prints its results and execution statistics.
//
// Usage:
//
//	adamant-run -q Q6 -sf 10 -driver cuda -model 4p-pipelined
//	adamant-run -sql "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_quantity < 24"
//
// Drivers: cuda, opencl-gpu, opencl-cpu, openmp. Models: oaat, chunked,
// pipelined, 4p-chunked, 4p-pipelined. With -sql, the query runs through
// the SQL front-end against the generated TPC-H catalog instead of the
// built-in plans.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/core"
	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/shard"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/sql"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

func main() {
	// Ctrl-C cancels the in-flight query at the next chunk boundary: the
	// executor releases every buffer it allocated and run prints the
	// partial timings instead of dying mid-allocation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "adamant-run: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	q := flag.String("q", "Q6", "query: Q1, Q3, Q4 or Q6")
	sqlText := flag.String("sql", "", "run this SQL query against the TPC-H catalog instead of -q")
	sf := flag.Float64("sf", 1, "TPC-H scale factor")
	ratio := flag.Float64("ratio", 1.0/64, "down-scale ratio for generated data")
	driver := flag.String("driver", "cuda", "driver: cuda, opencl-gpu, opencl-cpu, openmp")
	modelName := flag.String("model", "4p-pipelined", "execution model: oaat, chunked, pipelined, 4p-chunked, 4p-pipelined")
	chunk := flag.Int("chunk", 0, "chunk size in values (0 = 2^25 scaled by ratio)")
	seed := flag.Uint64("seed", 42, "generator seed")
	maxRows := flag.Int("rows", 10, "result rows to print")
	explain := flag.Bool("explain", false, "print the pipeline plan before executing")
	analyze := flag.Bool("analyze", false, "print the plan annotated with measured per-primitive virtual times after executing")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the execution to this file")
	metrics := flag.Bool("metrics", false, "print the cumulative execution-metrics snapshot after executing")
	timeline := flag.Bool("timeline", false, "render the copy/compute engine timelines after executing")
	faults := flag.String("faults", "", "fault-injection plan, e.g. seed=7,transient=0.01,die=500 (repro scripts)")
	fallback := flag.String("fallback", "", "plug a second device (cuda, opencl-gpu, opencl-cpu, openmp) as the failover target")
	retries := flag.Int("retries", 0, "max retries per device op for transient faults")
	deadline := flag.Duration("deadline", 0, "virtual-time budget for the query; exceeding it at a chunk boundary fails the run (0 = none)")
	adapt := flag.Bool("adapt", false, "adaptive chunking: on device OOM, halve the chunk size and retry, then re-place on a host device")
	serveAddr := flag.String("serve", "", "run as a telemetry service on this address (e.g. :9090 or 127.0.0.1:0), exposing /metrics, /events, /flight and /util")
	warm := flag.Int("serve-warm", 3, "queries to run at service start so telemetry is populated (with -serve)")
	cacheMiB := flag.Int64("cache", 0, "device buffer-pool capacity in MiB; base columns stay cached across queries (0 = off)")
	cachePolicy := flag.String("cache-policy", "cost", "buffer-pool eviction policy: cost (bytes x transfer cost) or lru")
	repeat := flag.Int("repeat", 1, "run the query this many times on one engine (with -cache, later runs hit the pool)")
	fuse := flag.Bool("fuse", false, "rewrite fusible filter/map/aggregate chains into single-pass fused kernels before executing")
	auto := flag.Bool("auto", false, "auto-plan: calibrate a cost catalog, then let it pick placement, execution model and chunk size (-model/-chunk become hints it overrides)")
	shards := flag.Int("shards", 1, "scatter the query over N independent runtime shards and gather exact merged results (1 = off)")
	hedge := flag.Bool("hedge", false, "with -shards, hedge straggling partitions: duplicate them on idle shards, first result wins")
	profileOn := flag.Bool("profile", false, "fold every run into the fleet profiler and print the per-shape resource ledger")
	sloSpec := flag.String("slo", "", "latency SLO as target:objective, e.g. 100ms:0.99 (implies -profile; with -serve, enables /slo burn tracking)")
	tenant := flag.String("tenant", "", "tenant label for profiler attribution")
	flag.Parse()

	model, err := parseModel(*modelName)
	if err != nil {
		return err
	}
	if *shards > 1 && *auto {
		return fmt.Errorf("-shards cannot be combined with -auto (the cost catalog is per-runtime)")
	}
	sloTarget, sloObjective, err := parseSLO(*sloSpec)
	if err != nil {
		return err
	}
	if sloTarget > 0 {
		*profileOn = true
	}

	if *serveAddr != "" {
		chunkElems := *chunk
		if chunkElems <= 0 {
			chunkElems = int(float64(int64(1)<<25) * *ratio)
			if chunkElems < 1024 {
				chunkElems = 1024
			}
		}
		return serve(ctx, *serveAddr, serveConfig{
			q: *q, sqlText: *sqlText, sf: *sf, ratio: *ratio, seed: *seed,
			driver: *driver, fallback: *fallback, model: model,
			chunkElems: chunkElems, faults: *faults, retries: *retries,
			deadline: *deadline, adapt: *adapt, warm: *warm,
			cacheMiB: *cacheMiB, cachePolicy: *cachePolicy,
			sloTarget: sloTarget, sloObjective: sloObjective, tenant: *tenant,
		})
	}

	ds, err := tpch.Generate(tpch.Config{SF: *sf, Ratio: *ratio, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("TPC-H SF%g (ratio %.5f): lineitem=%d orders=%d customer=%d rows\n",
		*sf, *ratio, ds.Lineitem.Rows(), ds.Orders.Rows(), ds.Customer.Rows())

	var plan *fault.Plan
	if *faults != "" {
		plan, err = fault.ParsePlan(*faults)
		if err != nil {
			return err
		}
	}

	rt := hub.NewRuntime()
	dev, err := buildDevice(*driver)
	if err != nil {
		return err
	}
	if plan != nil && plan.AppliesTo(dev.Info().Name) {
		dev = fault.Wrap(dev, plan)
	}
	id, err := rt.Register(dev)
	if err != nil {
		return err
	}
	fmt.Printf("device: %s\n", dev.Info().Name)
	if plan != nil {
		fmt.Printf("faults: %s\n", *faults)
	}

	var fallbackID *device.ID
	if *fallback != "" {
		fdev, err := buildDevice(*fallback)
		if err != nil {
			return err
		}
		if plan != nil && plan.AppliesTo(fdev.Info().Name) {
			fdev = fault.Wrap(fdev, plan)
		}
		fid, err := rt.Register(fdev)
		if err != nil {
			return err
		}
		fallbackID = &fid
		fmt.Printf("fallback: %s\n", fdev.Info().Name)
	}

	var events *device.EventLog
	if *timeline {
		inner := dev
		if inj, ok := inner.(*fault.Injector); ok {
			inner = inj.Inner()
		}
		if sim, ok := inner.(*device.Sim); ok {
			events = &device.EventLog{}
			sim.SetEventLog(events)
		}
	}

	var g *graph.Graph
	var ast *sql.Query
	if *sqlText != "" {
		ast, err = sql.Parse(*sqlText)
		if err != nil {
			return err
		}
		g, err = sql.Plan(ast, sql.PlanConfig{Catalog: ds.Catalog(), Device: id})
		if err != nil {
			return err
		}
		*q = "SQL"
	} else {
		g, err = tpch.BuildQuery(*q, ds, id)
		if err != nil {
			return err
		}
	}

	// With -shards the coordinator fuses per partition graph instead, so
	// the scatter planner sees the un-fused plan.
	if *fuse && *shards <= 1 {
		g = graph.Fuse(g)
	}

	if *explain {
		pipelines, err := g.BuildPipelines()
		if err != nil {
			return err
		}
		fmt.Println("\nplan:")
		graph.WriteExplain(os.Stdout, g, pipelines, "  ")
	}

	chunkElems := *chunk
	if chunkElems <= 0 {
		chunkElems = int(float64(int64(1)<<25) * *ratio)
		if chunkElems < 1024 {
			chunkElems = 1024
		}
	}
	var autoDec *cost.Decision
	if *auto {
		cat := cost.New()
		ids := make([]device.ID, len(rt.Devices()))
		for i := range ids {
			ids[i] = device.ID(i)
		}
		if err := cost.Calibrate(rt, ids, cat); err != nil {
			return err
		}
		autoDec, err = cost.NewPlanner(cat).Plan(g, rt, cost.PlanOptions{Candidates: ids})
		if err != nil {
			return err
		}
		model = autoDec.Model
		chunkElems = autoDec.ChunkElems
		fmt.Printf("auto plan: model=%v chunk=%d device=%s (predicted %v, catalog %d entries)\n",
			autoDec.Model, autoDec.ChunkElems, autoDec.Driver, autoDec.Predicted, cat.Len())
		for _, n := range autoDec.Notes {
			fmt.Printf("  plan       %s\n", n)
		}
	}
	var rec *trace.Recorder
	if *analyze || *traceOut != "" || *profileOn {
		rec = trace.NewRecorder()
	}
	var prof *profile.Profiler
	if *profileOn {
		prof = profile.New(profile.Config{})
		if sloTarget > 0 {
			prof.SetSLO(profile.NewSLO(profile.SLOConfig{
				Target:    vclock.DurationOf(sloTarget),
				Objective: sloObjective,
			}))
		}
	}
	var pool *bufpool.Manager
	if *cacheMiB > 0 {
		pol, err := bufpool.ParsePolicy(*cachePolicy)
		if err != nil {
			return err
		}
		pool = bufpool.New(bufpool.Config{
			Capacity: *cacheMiB << 20,
			Policy:   pol,
			Device:   rt.Device,
		})
		fmt.Printf("cache: %d MiB buffer pool, %s eviction\n", *cacheMiB, *cachePolicy)
	}
	opts := core.Options{
		Model:            model,
		ChunkElems:       chunkElems,
		Recorder:         rec,
		Retry:            core.RetryPolicy{MaxRetries: *retries},
		FallbackDevice:   fallbackID,
		AdaptiveChunking: *adapt,
		Deadline:         vclock.DurationOf(*deadline),
		Pool:             pool,
	}
	if autoDec != nil {
		opts.PlanNotes = autoDec.Notes
		opts.Replan = autoDec.Replan()
	}
	var coord *shard.Coordinator
	if *shards > 1 {
		coord, err = buildFleet(rt, pool, plan, fleetConfig{
			n: *shards, driver: *driver, fallback: *fallback,
			cacheMiB: *cacheMiB, cachePolicy: *cachePolicy,
			fuse: *fuse, hedge: *hedge,
		})
		if err != nil {
			return err
		}
		fmt.Printf("shards: %d runtimes, hedging %v\n", *shards, *hedge)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	shape := graph.Fingerprint(g)
	var res *core.Result
	var profVT vclock.Time
	for i := 0; i < *repeat; i++ {
		mark := rec.Len()
		if coord != nil {
			var scattered bool
			res, scattered, err = coord.Run(ctx, g, opts, 0)
			if err == nil && !scattered {
				fmt.Println("scatter planner declined the plan; running unsharded")
				coord = nil
				res, err = core.RunContext(ctx, rt, g, opts)
			}
		} else {
			res, err = core.RunContext(ctx, rt, g, opts)
		}
		if prof != nil {
			qrec := profile.QueryRecord{
				Query: uint64(i + 1), Shape: shape, Tenant: *tenant,
				Device: dev.Info().Name, Model: model.String(),
				Err: err != nil, Spans: rec.Spans()[mark:],
			}
			if res != nil {
				s := res.Stats
				profVT += vclock.Time(s.Elapsed)
				qrec.VT = profVT
				qrec.Elapsed = s.Elapsed
				qrec.KernelTime = s.KernelTime
				qrec.TransferTime = s.TransferTime
				qrec.OverheadTime = s.OverheadTime
				qrec.H2DBytes = s.H2DBytes
				qrec.D2HBytes = s.D2HBytes
				qrec.Launches = s.Launches
				qrec.Retries = s.Retries
				qrec.Replans = s.Replans
			}
			anomalies, alerts := prof.Observe(qrec)
			for _, a := range anomalies {
				fmt.Printf("anomaly: %s on %s bucket %d measured %.1f ns/unit vs expected %.1f (%.1fx)\n",
					a.Primitive, a.Driver, a.Bucket, a.Measured, a.Expected, a.Factor)
			}
			for _, al := range alerts {
				fmt.Printf("slo burn: %s window at %.2f (%d/%d bad)\n", al.Window, al.Burn, al.Bad, al.Total)
			}
		}
		if err != nil {
			break
		}
		if *repeat > 1 {
			fmt.Printf("run %d/%d: simulated %v\n", i+1, *repeat, res.Stats.Elapsed)
		}
	}
	if coord != nil {
		defer coord.Drain()
	}
	cancelled := errors.Is(err, context.Canceled)
	if err != nil && !(cancelled && res != nil) {
		return err
	}
	if ast != nil && !cancelled {
		if err := sql.PostProcess(res, ast); err != nil {
			return err
		}
	}

	s := res.Stats
	if cancelled {
		fmt.Printf("\ninterrupted — query cancelled at a chunk boundary; partial timings:\n")
	}
	fmt.Printf("\n%s under %v (chunk %d values):\n", *q, model, chunkElems)
	fmt.Printf("  simulated  %v   (kernels %v, transfers %v, overhead %v)\n",
		s.Elapsed, s.KernelTime, s.TransferTime, s.OverheadTime)
	fmt.Printf("  wall       %v\n", s.Wall)
	fmt.Printf("  moved      %.1f MiB H2D, %.1f MiB D2H over %d chunks, %d pipelines\n",
		float64(s.H2DBytes)/(1<<20), float64(s.D2HBytes)/(1<<20), s.Chunks, s.Pipelines)
	fmt.Printf("  peak mem   %.1f MiB device\n", float64(s.PeakDeviceBytes)/(1<<20))
	if s.Retries > 0 {
		fmt.Printf("  retries    %d transient faults retried\n", s.Retries)
	}
	if s.Replans > 0 {
		fmt.Printf("  replans    %d mid-query re-plan restarts\n", s.Replans)
	}
	if pool != nil {
		cs := pool.Stats()
		fmt.Printf("  cache      %d hits, %d misses, %d shared joins, %d evictions (%.0f%% hits, %.1f MiB resident)\n",
			cs.Hits, cs.Misses, cs.SharedJoins, cs.Evictions,
			100*cs.HitRatio(), float64(cs.CachedBytes)/(1<<20))
	}
	for p, ss := range s.Shards {
		var flags string
		if ss.Hedged {
			flags += ", hedged"
			if ss.HedgeWon {
				flags += " (hedge won)"
			}
		}
		if ss.FailedOver {
			flags += ", failed over"
		}
		if ss.Lost {
			flags += ", LOST"
		}
		fmt.Printf("  shard      partition %d on shard %d: %d rows, %v%s\n",
			p, ss.Ran, ss.Rows, ss.Elapsed, flags)
	}
	if len(s.PartialShards) > 0 {
		fmt.Printf("  partial    result excludes lost partitions %v\n", s.PartialShards)
	}
	for _, ev := range s.Events {
		fmt.Printf("  event      %s\n", ev)
	}

	if *analyze {
		pipelines, err := g.BuildPipelines()
		if err != nil {
			return err
		}
		fmt.Println()
		exec.WriteAnalyze(os.Stdout, g, pipelines, s, rec.Spans())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, rec.Spans()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\ntrace: %d spans written to %s\n", rec.Len(), *traceOut)
	}
	if *metrics {
		m := trace.NewMetrics()
		var failovers int64
		for _, ev := range s.Events {
			if ev.Kind == exec.EventFailover {
				failovers++
			}
		}
		m.ObserveQuery(trace.QueryStats{
			Elapsed: s.Elapsed, KernelTime: s.KernelTime,
			TransferTime: s.TransferTime, OverheadTime: s.OverheadTime,
			H2DBytes: s.H2DBytes, D2HBytes: s.D2HBytes, Launches: s.Launches,
			Chunks: s.Chunks, Pipelines: s.Pipelines,
			Retries: s.Retries, Failovers: failovers, Err: cancelled,
		})
		var devRows []trace.DeviceRow
		for _, d := range rt.Devices() {
			st := d.Stats()
			devRows = append(devRows, trace.DeviceRow{
				Name: d.Info().Name, Launches: st.Launches,
				KernelTime: st.KernelTime, TransferTime: st.TransferTime,
				OverheadTime: st.OverheadTime,
				H2DBytes:     st.H2DBytes, D2HBytes: st.D2HBytes,
			})
		}
		fmt.Println("\nmetrics:")
		m.WriteSnapshot(os.Stdout, devRows)
	}

	if prof != nil {
		fmt.Println("\nprofile:")
		prof.WriteReport(os.Stdout)
	}

	if events != nil {
		fmt.Println("\nengine timelines:")
		device.RenderTimeline(os.Stdout, events.Events(), 100)
	}

	if cancelled {
		return nil
	}
	fmt.Println("\nresults:")
	for _, col := range res.Columns {
		fmt.Printf("  %-16s %d rows\n", col.Name, col.Data.Len())
	}
	if len(res.Columns) > 0 {
		n := res.Columns[0].Data.Len()
		if n > *maxRows {
			n = *maxRows
		}
		for i := 0; i < n; i++ {
			fmt.Printf("  [%d]", i)
			for _, col := range res.Columns {
				switch {
				case col.Data.Len() <= i:
					fmt.Printf("  %s=-", col.Name)
				case col.Data.Type().String() == "int32":
					fmt.Printf("  %s=%d", col.Name, col.Data.I32()[i])
				default:
					fmt.Printf("  %s=%d", col.Name, col.Data.I64()[i])
				}
			}
			fmt.Println()
		}
	}
	return nil
}

// fleetConfig configures buildFleet.
type fleetConfig struct {
	n                int
	driver, fallback string
	cacheMiB         int64
	cachePolicy      string
	fuse, hedge      bool
}

// buildFleet assembles the shard coordinator: shard 0 reuses the runtime
// already built (device, fault wrap and pool included); shards 1..n-1 get
// fresh runtimes with the same device layout, fault plans re-seeded per
// shard so they fault independently.
func buildFleet(rt *hub.Runtime, pool *bufpool.Manager, plan *fault.Plan, fc fleetConfig) (*shard.Coordinator, error) {
	list := make([]shard.Shard, fc.n)
	list[0] = shard.Shard{Name: "shard0", RT: rt, Pool: pool}
	for s := 1; s < fc.n; s++ {
		srt := hub.NewRuntime()
		splan := plan
		if plan != nil {
			p := *plan
			p.Seed += uint64(s)
			splan = &p
		}
		register := func(driver string) error {
			dev, err := buildDevice(driver)
			if err != nil {
				return err
			}
			if splan != nil && splan.AppliesTo(dev.Info().Name) {
				dev = fault.Wrap(dev, splan)
			}
			_, err = srt.Register(dev)
			return err
		}
		if err := register(fc.driver); err != nil {
			return nil, err
		}
		if fc.fallback != "" {
			if err := register(fc.fallback); err != nil {
				return nil, err
			}
		}
		var spool *bufpool.Manager
		if fc.cacheMiB > 0 {
			pol, err := bufpool.ParsePolicy(fc.cachePolicy)
			if err != nil {
				return nil, err
			}
			spool = bufpool.New(bufpool.Config{
				Capacity: fc.cacheMiB << 20,
				Policy:   pol,
				Device:   srt.Device,
			})
		}
		list[s] = shard.Shard{Name: fmt.Sprintf("shard%d", s), RT: srt, Pool: spool}
	}
	cfg := shard.Config{Shards: list}
	if fc.fuse {
		cfg.Rewrite = graph.Fuse
	}
	if fc.hedge {
		cfg.Hedge = shard.HedgePolicy{Enabled: true}
	}
	return shard.New(cfg)
}

func buildDevice(driver string) (device.Device, error) {
	switch driver {
	case "cuda":
		return simcuda.New(&simhw.RTX2080Ti, nil), nil
	case "opencl-gpu":
		return simopencl.NewGPU(&simhw.RTX2080Ti, nil), nil
	case "opencl-cpu":
		return simopencl.NewCPU(&simhw.CoreI78700, nil), nil
	case "openmp":
		return simomp.New(&simhw.CoreI78700, nil), nil
	default:
		return nil, fmt.Errorf("unknown driver %q", driver)
	}
}

// parseSLO parses the -slo flag's "target:objective" form, e.g.
// "100ms:0.99". An empty spec disables the SLO; a bare duration defaults
// the objective to 0.99.
func parseSLO(spec string) (time.Duration, float64, error) {
	if spec == "" {
		return 0, 0, nil
	}
	durText, objText := spec, ""
	if at := strings.LastIndex(spec, ":"); at >= 0 {
		durText, objText = spec[:at], spec[at+1:]
	}
	target, err := time.ParseDuration(durText)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -slo target %q: %w", durText, err)
	}
	objective := 0.99
	if objText != "" {
		objective, err = strconv.ParseFloat(objText, 64)
		if err != nil || objective <= 0 || objective >= 1 {
			return 0, 0, fmt.Errorf("bad -slo objective %q (want a fraction in (0,1))", objText)
		}
	}
	return target, objective, nil
}

func parseModel(name string) (core.Model, error) {
	switch name {
	case "oaat":
		return core.OperatorAtATime, nil
	case "chunked":
		return core.Chunked, nil
	case "pipelined":
		return core.Pipelined, nil
	case "4p-chunked":
		return core.FourPhaseChunked, nil
	case "4p-pipelined":
		return core.FourPhasePipelined, nil
	default:
		return 0, fmt.Errorf("unknown model %q", name)
	}
}
