package adamant

import (
	"fmt"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
)

// auditDevices runs the devmem accounting invariant on every device of the
// engine: pool-held + query-held + free must equal capacity.
func auditDevices(t *testing.T, eng *Engine, label string) {
	t.Helper()
	for i, d := range eng.Runtime().Devices() {
		if mc, ok := d.(device.MemChecker); ok {
			if err := mc.CheckMemAccounting(); err != nil {
				t.Errorf("%s: device %d: %v", label, i, err)
			}
		}
	}
}

// TestDifferentialFaultHarnessPooled reruns the differential fault harness
// with the buffer pool enabled: for random (plan, fault schedule) pairs
// across every model and driver, each faulted+pooled run — cold and warm —
// must either match the pool-less fault-free baseline bit-for-bit or fail
// with a typed error, and after a cache flush device memory must return to
// its pre-query baseline with the accounting invariant intact.
func TestDifferentialFaultHarnessPooled(t *testing.T) {
	pairs := 40
	if testing.Short() {
		pairs = 10
	}
	var matched, failedTyped int
	var hits, invalidations uint64
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*104729 + 11
		label := fmt.Sprintf("pooled pair %d (%v on %s)", i, model, drv.name)

		baseEng := harnessEngine(t, drv, nil)
		opts := ExecOptions{Model: model, ChunkElems: 256}
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: fault-free baseline failed: %v", label, err)
		}

		faultEng := harnessEngine(t, drv, harnessFaultPlan(i, drv),
			WithBufferPool(32<<20, CacheCostAware))
		// Two runs over pinned backing arrays: the cold one fills the pool
		// under faults, the warm one reads pooled buffers (possibly
		// invalidated by a device death in between) — both must stay
		// differentially correct.
		cols := &harnessColumns{}
		for run := 0; run < 2; run++ {
			runLabel := fmt.Sprintf("%s run %d", label, run)
			faultRes, err := faultEng.Execute(buildHarnessPlanCols(faultEng, seed, cols), opts)
			switch {
			case err == nil:
				sameResults(t, runLabel, baseRes, faultRes)
				matched++
			case harnessTypedError(err):
				failedTyped++
			default:
				t.Errorf("%s: untyped error under faults: %v", runLabel, err)
			}
			auditDevices(t, faultEng, runLabel)
		}
		cs := faultEng.CacheStats()
		hits += cs.Hits + cs.SharedJoins
		invalidations += cs.Invalidations
		faultEng.FlushCache()
		checkMemBaseline(t, faultEng, label+" after flush")
		auditDevices(t, faultEng, label+" after flush")
	}
	t.Logf("%d pooled runs matched the baseline, %d failed with typed errors; %d hits, %d invalidations",
		matched, failedTyped, hits, invalidations)
	if matched == 0 {
		t.Error("no pooled faulted run ever completed")
	}
	if hits == 0 {
		t.Error("no warm run ever hit the pool; the harness is not exercising the cache")
	}
	if invalidations == 0 {
		t.Error("no device death ever invalidated pooled buffers; the fault schedules are not reaching the pool")
	}
}
