package adamant_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
)

// conservationDrivers is the paper's four driver configurations.
var conservationDrivers = []struct {
	name string
	mk   func() device.Device
}{
	{"cuda", func() device.Device { return simcuda.New(&simhw.RTX2080Ti, nil) }},
	{"opencl-gpu", func() device.Device { return simopencl.NewGPU(&simhw.RTX2080Ti, nil) }},
	{"opencl-cpu", func() device.Device { return simopencl.NewCPU(&simhw.CoreI78700, nil) }},
	{"openmp", func() device.Device { return simomp.New(&simhw.CoreI78700, nil) }},
}

// TestProfileConservationMatrix is the profiler's accounting contract over
// the full query matrix: for TPC-H Q3, Q4 and Q6 under every execution
// model on every driver, the span fold attributes exactly the device time
// the Stats decomposition reports (kernel + transfer + overhead), exactly
// the bytes moved, and exactly the kernel launches — and the fold itself
// is bit-for-bit reproducible across fresh runtimes.
func TestProfileConservationMatrix(t *testing.T) {
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	run := func(query string, model exec.Model, mk func() device.Device) (profile.Attribution, exec.Stats) {
		rt := hub.NewRuntime()
		id, err := rt.Register(mk())
		if err != nil {
			t.Fatal(err)
		}
		g, err := tpch.BuildQuery(query, ds, id)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Recorder: rec})
		if err != nil {
			t.Fatalf("%s under %v: %v", query, model, err)
		}
		return profile.Attribute(rec.Spans()), res.Stats
	}

	for _, query := range []string{"Q3", "Q4", "Q6"} {
		for _, m := range goldenModels {
			for _, drv := range conservationDrivers {
				name := fmt.Sprintf("%s-%s-%s", query, m.slug, drv.name)
				t.Run(name, func(t *testing.T) {
					attr, stats := run(query, m.model, drv.mk)
					if want := int64(stats.KernelTime + stats.TransferTime + stats.OverheadTime); attr.DeviceNS != want {
						t.Errorf("attributed %d device-ns, stats decompose to %d", attr.DeviceNS, want)
					}
					if attr.H2DBytes != stats.H2DBytes || attr.D2HBytes != stats.D2HBytes {
						t.Errorf("attributed bytes %d/%d, stats %d/%d",
							attr.H2DBytes, attr.D2HBytes, stats.H2DBytes, stats.D2HBytes)
					}
					if attr.Launches != stats.Launches {
						t.Errorf("attributed %d launches, stats %d", attr.Launches, stats.Launches)
					}
					var kindSum int64
					for _, ns := range attr.BusyNS {
						kindSum += ns
					}
					if kindSum != attr.DeviceNS {
						t.Errorf("kind split sums to %d, total %d", kindSum, attr.DeviceNS)
					}
					again, _ := run(query, m.model, drv.mk)
					if !reflect.DeepEqual(attr, again) {
						t.Errorf("attribution not reproducible across fresh runtimes:\n%+v\nvs\n%+v", attr, again)
					}
				})
			}
		}
	}
}
