module github.com/adamant-db/adamant

go 1.22
