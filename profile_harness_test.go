package adamant

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/telemetry"
)

// TestShardPartialEvent: a query completing without a lost partition under
// ShardLossPartial emits a shard_partial event carrying the query ID,
// virtual time, and the lost partition list.
func TestShardPartialEvent(t *testing.T) {
	drv := harnessDrivers[0]
	seed := pickScatteringSeed(t, drv, 4)

	eng := NewEngine(WithShards(4), WithShardFailovers(-1),
		WithShardLoss(ShardLossPartial), WithFaultPlan(shardKillPlan(drv))).
		WithTelemetry(TelemetryConfig{})
	if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatal(err)
	}
	killShard(t, eng, 2)
	res, err := eng.Execute(buildHarnessPlan(eng, seed), ExecOptions{Model: Chunked, ChunkElems: 256})
	if err != nil {
		t.Fatal(err)
	}
	if partial, _ := res.Partial(); !partial {
		t.Fatal("query did not come back partial")
	}
	totals := eng.EventTotals()
	if totals[string(telemetry.EventShardPartial)] != 1 {
		t.Fatalf("shard_partial events = %d, want 1 (totals %v)", totals[string(telemetry.EventShardPartial)], totals)
	}
	var b bytes.Buffer
	if err := eng.WriteEvents(&b); err != nil {
		t.Fatal(err)
	}
	events := b.String()
	if !strings.Contains(events, `"type":"shard_partial"`) {
		t.Errorf("event stream missing shard_partial:\n%s", events)
	}
	if !strings.Contains(events, "lost partitions [2]") {
		t.Errorf("shard_partial detail missing partition list:\n%s", events)
	}
}

// TestProfileShardStraggler is the braked-shard end-to-end: shard 3 of a
// four-shard fleet gets a device whose bandwidth and atomic throughput are
// 16x slower than its peers — same device name, so its spans anchor
// against the rate the healthy shards trained into the detector's catalog.
// The hot shard must show up in the per-shard utilization strip, the
// sustained rate deviation must fire a perf_anomaly event, and the
// straggling query's trace must be auto-retained in the flight recorder.
func TestProfileShardStraggler(t *testing.T) {
	braked := simhw.RTX2080Ti
	braked.StreamGBps /= 16
	braked.RandomGBps /= 16
	braked.AtomicMops /= 16
	// Small chunks are dominated by the fixed dispatch cost, so the brake
	// has to cover it too or the slowdown vanishes at fine granularity.
	braked.KernelLaunch *= 16

	eng := NewEngine(WithShards(4)).
		WithTelemetry(TelemetryConfig{}).
		WithProfile(ProfileConfig{AnomalyFactor: 2, AnomalySustain: 2, AnomalyMinSamples: 1})
	var plugged int
	if _, err := eng.PlugMaker(func() device.Device {
		spec := &simhw.RTX2080Ti
		if plugged == 3 {
			spec = &braked
		}
		plugged++
		return simcuda.New(spec, nil)
	}); err != nil {
		t.Fatal(err)
	}
	if plugged != 4 {
		t.Fatalf("constructor ran %d times, want once per shard", plugged)
	}

	// A Q6-shaped plan big enough that every partition runs dozens of
	// chunks: the braked shard's kernels deviate many times in a row, so
	// the sustain threshold is met before a healthy shard's compliant
	// observation can reset the streak.
	price := make([]int32, 32768)
	disc := make([]int32, len(price))
	for i := range price {
		price[i] = int32(i%900 + 100)
		disc[i] = int32(i % 11)
	}
	stragglerPlan := func() *Plan {
		plan := eng.NewPlan().On(DeviceID(0))
		p := plan.ScanInt32("price", price)
		d := plan.ScanInt32("disc", disc)
		keep := plan.FilterBetween(d, 5, 7)
		plan.Return("revenue", plan.SumInt64(plan.Mul(plan.Materialize(p, keep), plan.Materialize(d, keep))))
		return plan
	}

	opts := ExecOptions{Model: Chunked, ChunkElems: 256}
	for i := 0; i < 5; i++ {
		res, err := eng.Execute(stragglerPlan(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.ShardStats() == nil {
			t.Fatal("query did not scatter")
		}
	}

	// The hot shard appears as its own row in the utilization strip.
	var strip bytes.Buffer
	eng.WriteUtilization(&strip)
	if !strings.Contains(strip.String(), "shard3:") {
		t.Errorf("utilization strip lacks the braked shard's row:\n%s", strip.String())
	}

	// The sustained 16x rate deviation fired at least one perf_anomaly.
	totals := eng.EventTotals()
	if totals[string(telemetry.EventPerfAnomaly)] == 0 {
		t.Fatalf("no perf_anomaly event fired (totals %v)", totals)
	}

	// The anomalous query's spans were auto-retained.
	var retained bool
	for _, d := range eng.FlightDigests() {
		if d.Retained == "anomaly" {
			retained = true
			if d.Spans == nil {
				t.Error("anomaly-retained digest dropped its spans")
			}
		}
	}
	if !retained {
		t.Error("no flight digest retained for the anomaly")
	}

	// The ledger's per-shard split shows the braked shard burning more
	// device time than any healthy peer.
	var report bytes.Buffer
	eng.WriteProfile(&report)
	if !strings.Contains(report.String(), "shards:") || !strings.Contains(report.String(), "shard3") {
		t.Errorf("profile report lacks the per-shard split:\n%s", report.String())
	}
}
