// SQL on ADAMANT: the paper assumes query plans arrive from "any existing
// optimizer"; this example uses the built-in SQL front-end as that
// optimizer, running analytics — including an IN-subquery semi-join and a
// GROUP BY — on the simulated GPU.
package main

import (
	"fmt"
	"log"

	adamant "github.com/adamant-db/adamant"
)

func main() {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.A100, adamant.CUDA)
	if err != nil {
		log.Fatal(err)
	}

	// A small star schema: orders referencing customers.
	const n = 1 << 20
	amount := make([]int32, n)
	custID := make([]int32, n)
	day := make([]int32, n)
	for i := range amount {
		amount[i] = int32(i%500 + 1)
		custID[i] = int32(i % 1000)
		day[i] = int32(i % 365)
	}
	orders := adamant.NewTable("orders", n)
	for col, vals := range map[string][]int32{"amount": amount, "cust_id": custID, "day": day} {
		if err := orders.AddInt32(col, vals); err != nil {
			log.Fatal(err)
		}
	}

	tier := make([]int32, 1000)
	id := make([]int32, 1000)
	for i := range tier {
		id[i] = int32(i)
		tier[i] = int32(i % 3) // 0=basic, 1=silver, 2=gold
	}
	customers := adamant.NewTable("customers", 1000)
	if err := customers.AddInt32("id", id); err != nil {
		log.Fatal(err)
	}
	if err := customers.AddInt32("tier", tier); err != nil {
		log.Fatal(err)
	}

	cat := adamant.NewCatalog(orders, customers)

	queries := []string{
		`SELECT SUM(amount) AS total, COUNT(*) AS n FROM orders WHERE day BETWEEN 90 AND 179`,
		`SELECT MAX(amount) AS biggest FROM orders
		 WHERE cust_id IN (SELECT id FROM customers WHERE tier = 2)`,
		`SELECT day, SUM(amount) AS revenue, COUNT(*) AS orders
		 FROM orders
		 WHERE amount >= 400 AND cust_id IN (SELECT id FROM customers WHERE tier = 2)
		 GROUP BY day
		 ORDER BY revenue DESC
		 LIMIT 5`,
	}

	for _, q := range queries {
		res, err := eng.Query(cat, gpu, q, adamant.QueryOptions{
			ExecOptions: adamant.ExecOptions{Model: adamant.FourPhasePipelined, ChunkElems: 1 << 17},
			GroupsHint:  400,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", q)
		fmt.Printf("  -> %v simulated, %d chunks\n", res.Stats().Elapsed, res.Stats().Chunks)
		cols := res.Columns()
		rows := res.Len(cols[0])
		show := rows
		if show > 5 {
			show = 5
		}
		for i := 0; i < show; i++ {
			fmt.Print("  ")
			for _, c := range cols {
				fmt.Printf("%s=%d  ", c, res.Int64(c)[i])
			}
			fmt.Println()
		}
		if rows > show {
			fmt.Printf("  ... %d more rows\n", rows-show)
		}
	}
}
