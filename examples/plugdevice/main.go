// Plugging a new co-processor: the paper's headline claim is that a new
// device or SDK integrates through the ten device-layer interfaces without
// reworking any other component of the query engine.
//
// This example plugs a hypothetical "oneAPI"-programmed accelerator built
// from a custom hardware spec and a custom SDK profile, registers a custom
// kernel implementation for the MAP primitive alongside the built-ins, and
// runs the same plan on the stock CUDA GPU and on the new device — no
// runtime changes required.
package main

import (
	"fmt"
	"log"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

func main() {
	eng := adamant.NewEngine()
	cuda, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		log.Fatal(err)
	}

	// A new SDK: oneAPI-style, with runtime kernel compilation and its
	// own memory-object format. Only data points change — no executor
	// code.
	oneAPI := simhw.SDKProfile{
		Name:                   "oneAPI",
		TransferEfficiency:     0.92,
		TransferLatency:        3 * vclock.Microsecond,
		LaunchOverhead:         4 * vclock.Microsecond,
		ArgMapCost:             500 * vclock.Nanosecond,
		CompileCost:            30 * vclock.Millisecond,
		ComputeEfficiency:      0.98,
		AtomicEfficiency:       0.95,
		GroupScalePenalty:      0.08,
		BuildScalePenalty:      0.15,
		MaterializePenalty:     2.0,
		ProbePenalty:           1.2,
		PinnedEfficiency:       0.95,
		SyncCost:               12 * vclock.Microsecond,
		SupportsRuntimeCompile: true,
		SupportsPinned:         true,
	}

	// A hypothetical accelerator card behind it.
	xpu := simhw.Spec{
		Name:         "Imaginary XPU-9",
		Class:        simhw.ClassGPU,
		MemoryBytes:  16 * simhw.GiB,
		Cores:        2048,
		StreamGBps:   700,
		RandomGBps:   120,
		AtomicMops:   1000,
		KernelLaunch: 4 * vclock.Microsecond,
		Links: simhw.Links{
			H2DPageable: simhw.LinkCurve{PeakGBps: 14, Latency: 8 * vclock.Microsecond},
			H2DPinned:   simhw.LinkCurve{PeakGBps: 26, Latency: 6 * vclock.Microsecond},
			D2HPageable: simhw.LinkCurve{PeakGBps: 13, Latency: 8 * vclock.Microsecond},
			D2HPinned:   simhw.LinkCurve{PeakGBps: 25, Latency: 6 * vclock.Microsecond},
		},
	}

	// The kernel registry can also carry custom implementations: here a
	// fused square-and-scale MAP variant registered under its own name.
	registry := kernels.NewRegistry()
	registry.Register(&kernels.Kernel{
		Name:    "map_square_scale_i32_i64",
		NArgs:   2,
		NParams: 1,
		Source:  "__kernel map_square_scale(a, out, f) { out[i] = (long)a[i]*a[i]*f; }",
		Fn: func(ctx *kernels.Ctx, args []vec.Vector, params []int64) error {
			a, out := args[0].I32(), args[1].I64()
			f := params[0]
			for i := range a {
				out[i] = int64(a[i]) * int64(a[i]) * f
			}
			return nil
		},
		Cost: func(m kernels.CostModel, args []vec.Vector, _ []int64) vclock.Duration {
			return m.SDK.Stream(m.Spec, args[0].Bytes()+args[1].Bytes())
		},
	})

	xpuDev, err := eng.PlugDevice(device.NewSim(device.SimConfig{
		Spec:     &xpu,
		SDK:      &oneAPI,
		Format:   devmem.FormatRaw,
		Registry: registry,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plugged devices:")
	for _, d := range eng.Devices() {
		fmt.Printf("  %-28s sdk=%-7s runtime-compile=%v\n", d.Name, d.SDK, d.RuntimeCompile)
	}

	// The same plan runs unchanged on both devices.
	const n = 4 << 20
	values := make([]int32, n)
	for i := range values {
		values[i] = int32(i % 2000)
	}

	for _, target := range []struct {
		name string
		id   adamant.DeviceID
	}{
		{"CUDA GPU", cuda},
		{"oneAPI XPU", xpuDev},
	} {
		plan := eng.NewPlan().On(target.id)
		col := plan.ScanInt32("values", values)
		keep := plan.Filter(col, adamant.Ge, 1000)
		kept := plan.Materialize(col, keep)
		plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))

		res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.FourPhasePipelined})
		if err != nil {
			log.Fatalf("%s: %v", target.name, err)
		}
		fmt.Printf("\n%s: sum=%d, simulated %v (%.1f MiB H2D)\n",
			target.name, res.Int64("sum")[0], res.Stats().Elapsed,
			float64(res.Stats().H2DBytes)/(1<<20))
	}
}
