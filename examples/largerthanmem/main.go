// Larger-than-memory execution: the scalability limit of operator-at-a-time
// execution and how chunked execution overcomes it (§IV of the paper).
//
// The example plugs a small custom accelerator (64 MiB of device memory)
// and runs an aggregation over a 96 MiB working set. Operator-at-a-time
// execution must keep whole columns plus intermediates resident, so it
// fails with an out-of-memory error; the chunked models stream the same
// query through a fraction of the memory.
package main

import (
	"fmt"
	"log"

	adamant "github.com/adamant-db/adamant"
)

func main() {
	eng := adamant.NewEngine()
	dev, err := eng.PlugCustom(adamant.CustomSpec{
		Name:        "tiny-accelerator",
		MemoryBytes: 64 << 20,
		SDK:         adamant.CUDA,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three 8M-row int32 columns: 96 MiB of inputs before intermediates.
	const n = 8 << 20
	a := make([]int32, n)
	b := make([]int32, n)
	c := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 100)
		b[i] = int32(i % 1000)
		c[i] = int32(i % 7)
	}

	build := func() *adamant.Plan {
		plan := eng.NewPlan().On(dev)
		colA := plan.ScanInt32("a", a)
		colB := plan.ScanInt32("b", b)
		colC := plan.ScanInt32("c", c)
		keep := plan.And(plan.Filter(colA, adamant.Lt, 50), plan.Filter(colC, adamant.Eq, 3))
		prod := plan.Mul(plan.Materialize(colA, keep), plan.Materialize(colB, keep))
		plan.Return("sum", plan.SumInt64(prod))
		return plan
	}

	fmt.Println("device memory: 64 MiB; query inputs: 96 MiB + intermediates")

	if _, err := eng.Execute(build(), adamant.ExecOptions{Model: adamant.OperatorAtATime}); err != nil {
		fmt.Printf("\noperator-at-a-time: %v\n", err)
	} else {
		fmt.Println("\noperator-at-a-time: unexpectedly succeeded")
	}

	for _, model := range []adamant.Model{adamant.Chunked, adamant.FourPhasePipelined} {
		res, err := eng.Execute(build(), adamant.ExecOptions{Model: model, ChunkElems: 1 << 20})
		if err != nil {
			log.Fatalf("%v: %v", model, err)
		}
		s := res.Stats()
		fmt.Printf("%v: sum=%d in %v (peak device memory %.1f MiB over %d chunks)\n",
			model, res.Int64("sum")[0], s.Elapsed, float64(s.PeakDeviceBytes)/(1<<20), s.Chunks)
	}
}
