// Quickstart: plug a co-processor, build a filter-and-aggregate plan, and
// execute it under two execution models.
//
// The query is a miniature of TPC-H Q6: keep rows whose discount lies in
// [5, 7], multiply price by discount, and sum — first with everything
// resident (operator-at-a-time), then with 4-phase pipelined chunking.
package main

import (
	"fmt"
	"log"

	adamant "github.com/adamant-db/adamant"
)

func main() {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plugged devices:")
	for _, d := range eng.Devices() {
		fmt.Printf("  %-30s sdk=%-7s mem=%.1f GiB pinned=%v\n",
			d.Name, d.SDK, float64(d.MemoryBytes)/(1<<30), d.PinnedTransfer)
	}

	// A synthetic sales table: 8M rows of (price, discount).
	const n = 8 << 20
	prices := make([]int32, n)
	discounts := make([]int32, n)
	for i := range prices {
		prices[i] = int32(i%9000 + 1000)
		discounts[i] = int32(i % 11)
	}

	plan := eng.NewPlan().On(gpu)
	price := plan.ScanInt32("price", prices)
	disc := plan.ScanInt32("discount", discounts)
	keep := plan.FilterBetween(disc, 5, 7)
	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
	plan.Return("revenue", plan.SumInt64(rev))

	for _, model := range []adamant.Model{adamant.OperatorAtATime, adamant.FourPhasePipelined} {
		res, err := eng.Execute(plan, adamant.ExecOptions{Model: model, ChunkElems: 1 << 20})
		if err != nil {
			log.Fatalf("%v: %v", model, err)
		}
		s := res.Stats()
		fmt.Printf("\n%v:\n", model)
		fmt.Printf("  revenue        = %d\n", res.Int64("revenue")[0])
		fmt.Printf("  simulated time = %v (kernels %v, transfers %v)\n",
			s.Elapsed, s.KernelTime, s.TransferTime)
		fmt.Printf("  data moved     = %.1f MiB H2D over %d chunks\n",
			float64(s.H2DBytes)/(1<<20), s.Chunks)
	}
}
