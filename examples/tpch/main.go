// TPC-H on ADAMANT: generate benchmark data, run Q6 (heavy aggregation)
// and Q3 (multiple joins) on CPU and GPU drivers under several execution
// models, and verify the results against host-side reference answers.
package main

import (
	"fmt"
	"log"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/tpch"
)

func main() {
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H SF1 (scaled 1/16): lineitem=%d orders=%d customer=%d rows\n",
		ds.Lineitem.Rows(), ds.Orders.Rows(), ds.Customer.Rows())

	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := eng.Plug(adamant.CoreI78700, adamant.OpenMP)
	if err != nil {
		log.Fatal(err)
	}

	runQ6(eng, ds, "GPU/CUDA", gpu)
	runQ6(eng, ds, "CPU/OpenMP", cpu)
	runQ3(eng, ds, gpu)
}

// buildQ6 assembles Q6 through the public plan API.
func buildQ6(eng *adamant.Engine, ds *tpch.Dataset, dev adamant.DeviceID) *adamant.Plan {
	li := ds.Lineitem
	plan := eng.NewPlan().On(dev)
	ship := plan.ScanInt32("l_shipdate", li.MustColumn("l_shipdate").I32())
	disc := plan.ScanInt32("l_discount", li.MustColumn("l_discount").I32())
	qty := plan.ScanInt32("l_quantity", li.MustColumn("l_quantity").I32())
	price := plan.ScanInt32("l_extendedprice", li.MustColumn("l_extendedprice").I32())

	keep := plan.And(
		plan.And(
			plan.FilterBetween(ship, int64(tpch.DateQ6Lo), int64(tpch.DateQ6Hi-1)),
			plan.FilterBetween(disc, 5, 7)),
		plan.Filter(qty, adamant.Lt, 24))
	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
	plan.Return("revenue", plan.SumInt64(rev))
	return plan
}

func runQ6(eng *adamant.Engine, ds *tpch.Dataset, label string, dev adamant.DeviceID) {
	want := tpch.RefQ6(ds)
	fmt.Printf("\nQ6 on %s (reference revenue %d):\n", label, want)
	for _, model := range []adamant.Model{adamant.Chunked, adamant.FourPhaseChunked, adamant.FourPhasePipelined} {
		res, err := eng.Execute(buildQ6(eng, ds, dev), adamant.ExecOptions{Model: model, ChunkElems: 1 << 16})
		if err != nil {
			log.Fatalf("Q6 %v: %v", model, err)
		}
		got := res.Int64("revenue")[0]
		status := "OK"
		if got != want {
			status = fmt.Sprintf("MISMATCH (got %d)", got)
		}
		fmt.Printf("  %-20v %-10v %s\n", model, res.Stats().Elapsed, status)
	}
}

func runQ3(eng *adamant.Engine, ds *tpch.Dataset, dev adamant.DeviceID) {
	cu, or, li := ds.Customer, ds.Orders, ds.Lineitem

	plan := eng.NewPlan().On(dev)

	// Pipeline 1: BUILDING customers into a key set.
	seg := plan.ScanInt32("c_mktsegment", cu.MustColumn("c_mktsegment").I32())
	ckey := plan.ScanInt32("c_custkey", cu.MustColumn("c_custkey").I32())
	fSeg := plan.Filter(seg, adamant.Eq, int64(tpch.SegBuilding))
	custSet := plan.BuildKeySet(plan.Materialize(ckey, fSeg), cu.Rows())

	// Pipeline 2: qualifying orders into a key set.
	odate := plan.ScanInt32("o_orderdate", or.MustColumn("o_orderdate").I32())
	ocust := plan.ScanInt32("o_custkey", or.MustColumn("o_custkey").I32())
	okey := plan.ScanInt32("o_orderkey", or.MustColumn("o_orderkey").I32())
	keepO := plan.And(
		plan.Filter(odate, adamant.Lt, int64(tpch.DateQ3)),
		plan.ExistsIn(ocust, custSet))
	orderSet := plan.BuildKeySet(plan.Materialize(okey, keepO), or.Rows())

	// Pipeline 3: lineitem revenue grouped by orderkey.
	lkey := plan.ScanInt32("l_orderkey", li.MustColumn("l_orderkey").I32())
	lship := plan.ScanInt32("l_shipdate", li.MustColumn("l_shipdate").I32())
	lprice := plan.ScanInt32("l_extendedprice", li.MustColumn("l_extendedprice").I32())
	ldisc := plan.ScanInt32("l_discount", li.MustColumn("l_discount").I32())
	keepL := plan.And(
		plan.Filter(lship, adamant.Gt, int64(tpch.DateQ3)),
		plan.ExistsIn(lkey, orderSet))
	rev := plan.MulComplement(plan.Materialize(lprice, keepL), plan.Materialize(ldisc, keepL), 100)
	groups := plan.GroupSum(plan.Materialize(lkey, keepL), rev, or.Rows()/2+1)

	// Pipeline 4: extract the group table.
	gk, ga := plan.GroupResults(groups, or.Rows()/2+1)
	plan.Return("l_orderkey", gk)
	plan.Return("revenue", ga)

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.FourPhasePipelined, ChunkElems: 1 << 16})
	if err != nil {
		log.Fatalf("Q3: %v", err)
	}

	want := tpch.RefQ3(ds)
	keys := res.Int64("l_orderkey")
	revs := res.Int64("revenue")
	mismatches := 0
	for i := range keys {
		if want[keys[i]] != revs[i] {
			mismatches++
		}
	}
	fmt.Printf("\nQ3 on GPU/CUDA (4-phase pipelined): %d groups, %d mismatches vs reference, simulated %v\n",
		len(keys), mismatches, res.Stats().Elapsed)

	// Top-3 revenue groups, joined back to order metadata on the host.
	for rank := 0; rank < 3 && rank < len(keys); rank++ {
		best := rank
		for i := rank; i < len(keys); i++ {
			if revs[i] > revs[best] {
				best = i
			}
		}
		keys[rank], keys[best] = keys[best], keys[rank]
		revs[rank], revs[best] = revs[best], revs[rank]
		fmt.Printf("  #%d: orderkey=%d revenue=%d\n", rank+1, keys[rank], revs[rank])
	}
}
