package adamant_test

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	plan := eng.NewPlan().On(gpu)
	build := plan.ScanInt32("build_keys", []int32{1, 2, 3})
	set := plan.BuildKeySet(build, 3)
	probe := plan.ScanInt32("probe_keys", []int32{1, 2, 3, 4})
	hit := plan.ExistsIn(probe, set)
	plan.Return("hits", plan.CountBits(hit))

	out, err := plan.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pipeline 0", "pipeline 1", "(after [0])",
		"scan build_keys", "scan probe_keys",
		"HASH_BUILD", "†", // the breaker marked with the paper's dagger
		"returns: hits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainInvalidPlan(t *testing.T) {
	eng, _ := engineWithGPU(t)
	p := eng.NewPlan() // no device
	p.ScanInt32("x", []int32{1})
	if _, err := p.Explain(); err == nil {
		t.Error("expected error for invalid plan")
	}
}
