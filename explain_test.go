package adamant_test

import (
	"strings"
	"testing"

	adamant "github.com/adamant-db/adamant"
)

func TestExplain(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	plan := eng.NewPlan().On(gpu)
	build := plan.ScanInt32("build_keys", []int32{1, 2, 3})
	set := plan.BuildKeySet(build, 3)
	probe := plan.ScanInt32("probe_keys", []int32{1, 2, 3, 4})
	hit := plan.ExistsIn(probe, set)
	plan.Return("hits", plan.CountBits(hit))

	out, err := plan.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pipeline 0", "pipeline 1", "(after [0])",
		"scan build_keys", "scan probe_keys",
		"HASH_BUILD", "†", // the breaker marked with the paper's dagger
		"returns: hits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainAllTableIPrimitives builds one plan containing every Table-I
// primitive — MAP, FILTER_BITMAP, FILTER_POSITION, MATERIALIZE,
// MATERIALIZE_POSITION, PREFIX_SUM, AGG_BLOCK, HASH_BUILD, HASH_PROBE,
// HASH_AGG, SORT_AGG — and checks Explain names each, then executes the
// plan to prove the rendered pipelines are real.
func TestExplainAllTableIPrimitives(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	const n = 64
	sorted := make([]int32, n)
	values := make([]int32, n)
	col := make([]int32, n)
	probe := make([]int32, n)
	gkeys := make([]int32, n)
	for i := 0; i < n; i++ {
		sorted[i] = int32(i / 8)
		values[i] = int32(i % 10)
		col[i] = int32(i * 3 % 100)
		probe[i] = int32((i % 8) * 10)
		gkeys[i] = int32(i % 4)
	}
	buildKeys := []int32{10, 20, 30, 40}

	plan := eng.NewPlan().On(gpu)

	// Breaker pipelines first: PREFIX_SUM group indexes, both HASH_BUILD
	// shapes, and a HASH_AGG group table.
	pxsum := plan.GroupIndexes(plan.ScanInt32("sorted_keys", sorted))
	index := plan.BuildKeyIndex(plan.ScanInt32("index_keys", buildKeys), len(buildKeys))
	set := plan.BuildKeySet(plan.ScanInt32("set_keys", buildKeys), 8)
	grp := plan.GroupSum(plan.ScanInt32("gkeys", gkeys),
		plan.CastInt64(plan.ScanInt32("gvals", values)), 8)

	// Streamed pipelines: the SORT_AGG tail, a filter/semi-join/materialize
	// chain with a MAP and block aggregate, a HASH_PROBE join with a
	// position gather, and a FILTER_POSITION pick.
	gk, ga := plan.SortedGroupSum(plan.ScanInt32("sorted_keys2", sorted),
		plan.CastInt64(plan.ScanInt32("values", values)), pxsum, 8)
	plan.Return("group", gk)
	plan.Return("group_sum", ga)

	c := plan.ScanInt32("col", col)
	bm := plan.Filter(c, adamant.Lt, 50)
	keep := plan.And(bm, plan.ExistsIn(plan.ScanInt32("probe_keys", probe), set))
	mat := plan.Materialize(c, keep)
	plan.Return("sum", plan.SumInt64(plan.Mul(mat, mat)))

	left, _ := plan.JoinPairs(plan.ScanInt32("join_keys", probe), index, 1.0)
	plan.Return("joined", plan.Gather(c, left))

	pos := plan.FilterPositions(c, adamant.Gt, 10, 1.0)
	plan.Return("picked", plan.Gather(c, pos))

	hk, hs := plan.GroupResults(grp, 8)
	plan.Return("hash_keys", hk)
	plan.Return("hash_sums", hs)

	out, err := plan.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"MAP[", "FILTER_BITMAP[", "FILTER_POSITION[", "MATERIALIZE[",
		"MATERIALIZE_POSITION[", "PREFIX_SUM[", "AGG_BLOCK[",
		"HASH_BUILD[", "HASH_PROBE[", "HASH_AGG[", "SORT_AGG[", "†",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	if _, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.OperatorAtATime}); err != nil {
		t.Fatalf("all-primitives plan failed to execute: %v", err)
	}
}

func TestExplainInvalidPlan(t *testing.T) {
	eng, _ := engineWithGPU(t)
	p := eng.NewPlan() // no device
	p.ScanInt32("x", []int32{1})
	if _, err := p.Explain(); err == nil {
		t.Error("expected error for invalid plan")
	}
}
