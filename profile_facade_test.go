package adamant_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/telemetry"
)

// profileTestPlan builds a small filter-sum plan on the facade API.
func profileTestPlan(eng *adamant.Engine, dev adamant.DeviceID) *adamant.Plan {
	vals := make([]int32, 4096)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	plan := eng.NewPlan().On(dev)
	col := plan.ScanInt32("v", vals)
	kept := plan.Materialize(col, plan.Filter(col, adamant.Lt, 30))
	plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))
	return plan
}

// TestProfileDisabledAllocs is the zero-alloc contract for profiling off:
// the nil profiler, SLO tracker and detector all no-op without allocating,
// and an engine without WithProfile reports profiling disabled.
func TestProfileDisabledAllocs(t *testing.T) {
	var (
		prof *profile.Profiler
		slo  *profile.SLO
	)
	rec := profile.QueryRecord{Shape: "s", Elapsed: 10}
	if n := testing.AllocsPerRun(1000, func() {
		if a, b := prof.Observe(rec); a != nil || b != nil {
			t.Fatal("nil profiler must observe nothing")
		}
		prof.ObserveShed("s", "")
		if prof.Enabled() || prof.Queries() != 0 || prof.Anomalies() != 0 {
			t.Fatal("nil profiler must report nothing")
		}
		if slo.Observe(0, 10, false) != nil {
			t.Fatal("nil SLO must observe nothing")
		}
	}); n != 0 {
		t.Fatalf("disabled profiling: %.1f allocs/op on the hot path, want 0", n)
	}

	eng := adamant.NewEngine()
	if eng.Profiling() {
		t.Fatal("profiling should default off")
	}
	var b strings.Builder
	eng.WriteProfile(&b)
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("profiling-off report should say disabled: %q", b.String())
	}
	b.Reset()
	if err := eng.WriteSLO(&b); err != nil {
		t.Fatal(err)
	}
	var snap profile.SLOSnapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Enabled {
		t.Errorf("SLO export should be disabled: %q", b.String())
	}
}

// TestProfileFacadeLedger drives the profiler through the public API: the
// engine-wide tenant labels every query, a per-query Tenant overrides it,
// and the ledger surfaces both in the report, the Prometheus families, and
// the events stream.
func TestProfileFacadeLedger(t *testing.T) {
	eng := adamant.NewEngine().WithProfile(adamant.ProfileConfig{}).WithTenant("acme")
	if !eng.Profiling() || !eng.Telemetry() {
		t.Fatal("WithProfile must arm profiling and imply telemetry")
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	opts := adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024}
	for i := 0; i < 3; i++ {
		if _, err := eng.Execute(profileTestPlan(eng, gpu), opts); err != nil {
			t.Fatal(err)
		}
	}
	override := opts
	override.Tenant = "umbrella"
	if _, err := eng.Execute(profileTestPlan(eng, gpu), override); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	eng.WriteProfile(&b)
	report := b.String()
	if !strings.Contains(report, "profile: 4 queries") {
		t.Errorf("report header wrong:\n%s", report)
	}
	if !strings.Contains(report, "tenant=acme") || !strings.Contains(report, "tenant=umbrella") {
		t.Errorf("report missing tenant attribution:\n%s", report)
	}
	// Same plan shape, two tenants: the fingerprint appears in both rows.
	if !strings.Contains(report, "top by device time") {
		t.Errorf("report missing device-time table:\n%s", report)
	}

	b.Reset()
	if err := eng.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	for _, family := range []string{
		"adamant_profile_queries_total", "adamant_profile_device_ns",
		"adamant_profile_bytes_total", "adamant_profile_anomalies_total",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("prom exposition missing %s:\n%s", family, prom)
		}
	}
	if !strings.Contains(prom, `tenant="acme"`) {
		t.Errorf("prom exposition missing tenant label:\n%s", prom)
	}
}

// TestProfileSLOBurnFacade: a target no real query can meet drives the
// burn rate over both windows — slo_burn events fire, the gauges flip, and
// the JSON export reflects the firing state.
func TestProfileSLOBurnFacade(t *testing.T) {
	eng := adamant.NewEngine().WithSLO(time.Nanosecond, 0.99)
	if !eng.Profiling() {
		t.Fatal("WithSLO must imply WithProfile")
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	opts := adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024}
	for i := 0; i < 3; i++ {
		if _, err := eng.Execute(profileTestPlan(eng, gpu), opts); err != nil {
			t.Fatal(err)
		}
	}
	totals := eng.EventTotals()
	if totals[string(telemetry.EventSLOBurn)] < 2 {
		t.Errorf("slo_burn events = %d, want >= 2 (fast and slow windows)", totals[string(telemetry.EventSLOBurn)])
	}

	var b strings.Builder
	if err := eng.WriteSLO(&b); err != nil {
		t.Fatal(err)
	}
	var snap profile.SLOSnapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Total != 3 || snap.Good != 0 {
		t.Errorf("SLO snapshot = %+v, want enabled, 0/3 good", snap)
	}
	if !snap.FastFiring || !snap.SlowFiring {
		t.Errorf("SLO snapshot not firing: %+v", snap)
	}

	b.Reset()
	if err := eng.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	if !strings.Contains(prom, `adamant_slo_burn_firing{window="fast"} 1`) {
		t.Errorf("fast burn gauge not firing:\n%s", prom)
	}
	if !strings.Contains(prom, "adamant_slo_queries_total 3") {
		t.Errorf("slo totals missing:\n%s", prom)
	}
}

// TestTraceIdenticalWithProfiling is the non-perturbation invariant for
// the profiler: the same plan on a profiling-armed engine produces
// byte-identical trace summaries and results as on a telemetry-only
// engine.
func TestTraceIdenticalWithProfiling(t *testing.T) {
	render := func(profiled bool) (string, int64) {
		eng := adamant.NewEngine().WithTelemetry(adamant.TelemetryConfig{})
		if profiled {
			eng.WithProfile(adamant.ProfileConfig{}).WithSLO(time.Second, 0.99).WithTenant("acme")
		}
		gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
		if err != nil {
			t.Fatal(err)
		}
		rec := adamant.NewTraceRecorder()
		res, err := eng.Execute(profileTestPlan(eng, gpu),
			adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		var sum strings.Builder
		rec.WriteSummary(&sum)
		return sum.String(), res.Int64("sum")[0]
	}
	bareSum, bareVal := render(false)
	profSum, profVal := render(true)
	if bareSum != profSum {
		t.Errorf("profiling perturbs the trace summary:\n%s", diffLines(profSum, bareSum))
	}
	if bareVal != profVal {
		t.Errorf("profiling perturbs the result: %d vs %d", bareVal, profVal)
	}
}

// TestProfileShedAccounting: queries the admission controller rejects
// never run, but still charge the ledger — under their plan shape — as
// sheds, and surface in the errors+sheds table.
func TestProfileShedAccounting(t *testing.T) {
	eng := adamant.NewEngine().WithProfile(adamant.ProfileConfig{})
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	// Operator-at-a-time keeps whole columns resident: a 1 KiB budget
	// rejects the plan at admission deterministically.
	eng.SetDeviceBudget(gpu, 1024)
	if _, err := eng.Execute(profileTestPlan(eng, gpu), adamant.ExecOptions{Model: adamant.OperatorAtATime}); !errors.Is(err, adamant.ErrAdmission) {
		t.Fatalf("over-budget execute: err = %v, want ErrAdmission", err)
	}
	var b strings.Builder
	eng.WriteProfile(&b)
	report := b.String()
	if !strings.Contains(report, "top by errors+sheds:") || !strings.Contains(report, "1 sheds") {
		t.Errorf("shed not charged to the ledger:\n%s", report)
	}

	// The budget raised, the same shape runs and joins the device table.
	eng.SetDeviceBudget(gpu, 1<<30)
	if _, err := eng.Execute(profileTestPlan(eng, gpu), adamant.ExecOptions{Model: adamant.OperatorAtATime}); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	eng.WriteProfile(&b)
	if !strings.Contains(b.String(), "profile: 1 queries") {
		t.Errorf("report after run:\n%s", b.String())
	}
}
