package adamant

import (
	"time"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/vec"
)

// Result is a completed query: its named output columns and execution
// statistics.
type Result struct {
	inner *exec.Result
}

func newResult(r *exec.Result) *Result { return &Result{inner: r} }

// Columns lists the result column names in Return order.
func (r *Result) Columns() []string {
	out := make([]string, len(r.inner.Columns))
	for i, c := range r.inner.Columns {
		out[i] = c.Name
	}
	return out
}

// Len reports the row count of a result column (0 if absent).
func (r *Result) Len(name string) int {
	if v, ok := r.inner.Column(name); ok {
		return v.Len()
	}
	return 0
}

// Int64 returns a result column as int64 values. It panics if the column
// is absent or has another type; use Columns/Len to probe first.
func (r *Result) Int64(name string) []int64 {
	v, ok := r.inner.Column(name)
	if !ok {
		panic("adamant: no result column " + name)
	}
	return v.I64()
}

// Int32 returns a result column as int32 values. It panics if the column
// is absent or has another type.
func (r *Result) Int32(name string) []int32 {
	v, ok := r.inner.Column(name)
	if !ok {
		panic("adamant: no result column " + name)
	}
	return v.I32()
}

// column gives tests access to the raw vector.
func (r *Result) column(name string) (vec.Vector, bool) { return r.inner.Column(name) }

// Stats summarizes one execution. Durations are virtual (simulated device
// time) except Wall.
type Stats struct {
	// Elapsed is the simulated end-to-end execution time — what the
	// paper's figures report.
	Elapsed time.Duration
	// Wall is the host wall-clock time actually spent.
	Wall time.Duration
	// KernelTime, TransferTime and OverheadTime decompose the device
	// activity (kernel bodies, data movement, launch/alloc handling).
	KernelTime   time.Duration
	TransferTime time.Duration
	OverheadTime time.Duration
	// H2DBytes and D2HBytes count the payload bytes moved.
	H2DBytes int64
	D2HBytes int64
	// Launches counts kernel dispatches; Chunks counts chunk iterations;
	// Pipelines counts the query pipelines executed.
	Launches  int64
	Chunks    int
	Pipelines int
	// PeakDeviceBytes is the device-memory high-water mark.
	PeakDeviceBytes int64
	// Retries counts device operations re-issued after transient faults.
	Retries int64
	// Events is the degradation event log (failovers).
	Events []RuntimeEvent
	// Drift is the per-pipeline estimated-vs-observed input cardinality,
	// in pipeline execution order — the estimate error the auto planner's
	// mid-query re-planner acts on.
	Drift []DriftSample
	// Replans counts mid-query re-plan restarts.
	Replans int
	// Shards holds the per-partition execution summaries when the query
	// ran scattered over a sharded engine (one entry per table partition,
	// in partition order). Nil for unsharded runs.
	Shards []ShardStat
	// PartialShards lists the partitions lost and excluded from the result
	// under the ShardLossPartial mode, ascending. Empty means the result
	// covers every partition.
	PartialShards []int
}

// DriftSample is one pipeline's estimated vs observed input cardinality.
type DriftSample = exec.DriftSample

// Stats returns the execution statistics.
func (r *Result) Stats() Stats {
	s := r.inner.Stats
	return Stats{
		Elapsed:         s.Elapsed.Std(),
		Wall:            s.Wall,
		KernelTime:      s.KernelTime.Std(),
		TransferTime:    s.TransferTime.Std(),
		OverheadTime:    s.OverheadTime.Std(),
		H2DBytes:        s.H2DBytes,
		D2HBytes:        s.D2HBytes,
		Launches:        s.Launches,
		Chunks:          s.Chunks,
		Pipelines:       s.Pipelines,
		PeakDeviceBytes: s.PeakDeviceBytes,
		Retries:         s.Retries,
		Events:          append([]RuntimeEvent(nil), s.Events...),
		Drift:           append([]DriftSample(nil), s.Drift...),
		Replans:         s.Replans,
		Shards:          append([]ShardStat(nil), s.Shards...),
		PartialShards:   append([]int(nil), s.PartialShards...),
	}
}

// ShardStats returns the per-partition execution summaries of a sharded
// run, in partition order. Nil when the query ran unsharded.
func (r *Result) ShardStats() []ShardStat {
	return append([]ShardStat(nil), r.inner.Stats.Shards...)
}

// Partial reports whether partitions were lost and excluded from this
// result (ShardLossPartial mode), and which.
func (r *Result) Partial() (bool, []int) {
	lost := r.inner.Stats.PartialShards
	return len(lost) > 0, append([]int(nil), lost...)
}

// Footprint returns the per-primitive device-memory trace recorded when
// ExecOptions.Trace was set, as (label, bytes) pairs.
func (r *Result) Footprint() []struct {
	Label string
	Bytes int64
} {
	out := make([]struct {
		Label string
		Bytes int64
	}, len(r.inner.Stats.Footprint))
	for i, s := range r.inner.Stats.Footprint {
		out[i].Label = s.Label
		out[i].Bytes = s.Bytes
	}
	return out
}
