package adamant

import (
	"fmt"
	"testing"
)

// The differential fusion harness: for random plans — fusible, partially
// fusible, and non-fusible alike — across all execution models and drivers,
// a run with the fusion pass enabled must match the unfused run bit-for-bit.
// Fusion is a pure plan rewrite; any observable difference beyond the trace
// and the launch count is a bug.

// TestDifferentialFusion compares fused against unfused execution over the
// same random plan population the fault harness uses: single filters, AND
// trees, OR/ANDNOT combinations (non-fusible), semi-joins (non-fusible),
// result-marked materializes, and empty tables, across 5 models × 4 drivers.
func TestDifferentialFusion(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var baseLaunches, fusedLaunches int64
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*104729 + 11
		label := fmt.Sprintf("pair %d (%v on %s)", i, model, drv.name)
		opts := ExecOptions{Model: model, ChunkElems: 256}

		baseEng := harnessEngine(t, drv, nil)
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: unfused run failed: %v", label, err)
		}

		fusedEng := harnessEngine(t, drv, nil, WithFusion())
		if !fusedEng.FusionEnabled() {
			t.Fatal("WithFusion did not stick")
		}
		fusedRes, err := fusedEng.Execute(buildHarnessPlan(fusedEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: fused run failed: %v", label, err)
		}
		sameResults(t, label, baseRes, fusedRes)
		checkMemBaseline(t, fusedEng, label+" fused")

		baseLaunches += baseRes.Stats().Launches
		fusedLaunches += fusedRes.Stats().Launches
		if fusedRes.Stats().Launches > baseRes.Stats().Launches {
			t.Errorf("%s: fusion increased launches %d -> %d", label,
				baseRes.Stats().Launches, fusedRes.Stats().Launches)
		}
	}
	// The population mixes fusible and non-fusible plans; if no plan ever
	// fused, the harness is not exercising the rewrite at all.
	if fusedLaunches >= baseLaunches {
		t.Errorf("launches fused %d vs unfused %d: no plan ever fused", fusedLaunches, baseLaunches)
	}
	t.Logf("kernel launches: %d unfused, %d fused", baseLaunches, fusedLaunches)
}

// TestDifferentialFusionUnderFaults composes fusion with the PR 2 fault
// harness: a faulted fused run must either match the fault-free unfused
// baseline bit-for-bit or fail with one of the typed resilience errors —
// never a wrong answer — and device memory must return to baseline. The
// fused kernels travel the same retry/degrade/failover machinery as any
// Table-I primitive.
func TestDifferentialFusionUnderFaults(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var matched, failedTyped int
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*7919 + 3 // same population as the fault harness
		label := fmt.Sprintf("pair %d (%v on %s)", i, model, drv.name)
		opts := ExecOptions{Model: model, ChunkElems: 256}

		baseEng := harnessEngine(t, drv, nil)
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: baseline failed: %v", label, err)
		}

		faultEng := harnessEngine(t, drv, harnessFaultPlan(i, drv), WithFusion())
		faultRes, err := faultEng.Execute(buildHarnessPlan(faultEng, seed), opts)
		switch {
		case err == nil:
			sameResults(t, label, baseRes, faultRes)
			matched++
		case harnessTypedError(err):
			failedTyped++
		default:
			t.Errorf("%s: untyped error under faults: %v", label, err)
		}
		checkMemBaseline(t, faultEng, label+" faulted+fused")
	}
	t.Logf("%d fused runs matched the unfused baseline, %d failed typed", matched, failedTyped)
	if matched == 0 {
		t.Error("no faulted fused run ever completed")
	}
	if !testing.Short() && failedTyped == 0 {
		t.Error("no faulted fused run ever failed; the schedules are not injecting")
	}
}
