package adamant

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// TelemetryConfig parameterizes the engine's live observability layer (see
// WithTelemetry). The zero value uses the documented defaults everywhere.
type TelemetryConfig struct {
	// EventCapacity bounds the structured event ring (default 4096). Older
	// events are evicted, but per-type lifetime totals keep counting.
	EventCapacity int
	// FlightCapacity bounds the flight recorder's per-query digest ring
	// (default 256).
	FlightCapacity int
	// SlowThreshold is the virtual elapsed time at or above which the
	// flight recorder retains a query's full span trace (the slow-query
	// log). Zero disables the latency trigger; errored, degraded, and
	// failed-over queries are always retained in full.
	SlowThreshold time.Duration
	// UtilWindows is the number of virtual-time windows the utilization
	// heat strip renders (default 60).
	UtilWindows int
}

// DefaultUtilWindows is the heat-strip width when TelemetryConfig leaves
// UtilWindows zero.
const DefaultUtilWindows = 60

// engineTelemetry bundles the four telemetry components plus the metric
// handles the per-query observation path writes to.
type engineTelemetry struct {
	reg    *telemetry.Registry
	sink   *telemetry.EventSink
	util   *telemetry.UtilTracker
	flight *telemetry.FlightRecorder

	utilWindows int
	nextQuery   atomic.Uint64

	queries   *telemetry.Counter
	errors    *telemetry.Counter
	elapsed   *telemetry.Histogram
	h2dBytes  *telemetry.Histogram
	d2hBytes  *telemetry.Histogram
	chunks    *telemetry.Counter
	retries   *telemetry.Counter
	failovers *telemetry.Counter
	degrades  *telemetry.Counter

	cacheHits        *telemetry.Counter
	cacheMisses      *telemetry.Counter
	cacheJoins       *telemetry.Counter
	cacheEvictions   *telemetry.Counter
	cacheInvalidates *telemetry.Counter
	cacheBytes       *telemetry.Gauge
	cacheRatio       *telemetry.Gauge

	autoplanQueries *telemetry.Counter
	autoplanReplans *telemetry.Counter
	autoplanEntries *telemetry.Gauge

	shardQueries   *telemetry.Counter
	shardHedges    *telemetry.Counter
	shardHedgeWins *telemetry.Counter
	shardFailovers *telemetry.Counter
	shardLost      *telemetry.Counter
	shardPartial   *telemetry.Counter

	events      *telemetry.Counter
	running     *telemetry.Gauge
	queued      *telemetry.Gauge
	quarantined *telemetry.Gauge
	memUsed     *telemetry.Gauge
	memPeak     *telemetry.Gauge
	busyNS      *telemetry.Counter
	devLaunches *telemetry.Counter
	devH2D      *telemetry.Counter
	devD2H      *telemetry.Counter
}

// elapsedBuckets spans the virtual latencies this simulation produces:
// 100µs to 100s, one decade per bucket (values are nanoseconds).
var elapsedBuckets = []float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11}

// byteBuckets spans per-query transfer volumes: 64KiB to 64GiB.
var byteBuckets = []float64{1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 32, 1 << 36}

// WithTelemetry arms the engine's observability layer — metric registry,
// event sink, utilization tracker, and flight recorder — and returns the
// engine for chaining:
//
//	eng := adamant.NewEngine().WithTelemetry(adamant.TelemetryConfig{})
//
// Telemetry never perturbs execution: virtual timings, traces, and results
// are bit-identical with and without it, and the disabled state (never
// calling WithTelemetry) adds zero allocations to the hot path.
func (e *Engine) WithTelemetry(cfg TelemetryConfig) *Engine {
	reg := telemetry.NewRegistry()
	t := &engineTelemetry{
		reg:         reg,
		sink:        telemetry.NewEventSink(cfg.EventCapacity),
		util:        telemetry.NewUtilTracker(),
		flight:      telemetry.NewFlightRecorder(cfg.FlightCapacity, vclock.DurationOf(cfg.SlowThreshold)),
		utilWindows: cfg.UtilWindows,

		queries:   reg.Counter("adamant_queries_total", "Queries executed, by primary device, execution model and driver.", "device", "model", "driver"),
		errors:    reg.Counter("adamant_query_errors_total", "Queries that finished with an error.", "device", "model", "driver"),
		elapsed:   reg.Histogram("adamant_query_elapsed_ns", "Virtual query latency in nanoseconds.", elapsedBuckets, "device", "model", "driver"),
		h2dBytes:  reg.Histogram("adamant_query_h2d_bytes", "Host-to-device bytes moved per query.", byteBuckets, "device", "model", "driver"),
		d2hBytes:  reg.Histogram("adamant_query_d2h_bytes", "Device-to-host bytes moved per query.", byteBuckets, "device", "model", "driver"),
		chunks:    reg.Counter("adamant_chunks_total", "Chunk iterations executed.", "model"),
		retries:   reg.Counter("adamant_retries_total", "Device operations re-issued after transient faults.", "model"),
		failovers: reg.Counter("adamant_failovers_total", "Queries re-placed off a lost device.", "model"),
		degrades:  reg.Counter("adamant_degrades_total", "Adaptive OOM degradation steps.", "model"),

		cacheHits:        reg.Counter("adamant_cache_hits_total", "Buffer-pool lookups served from a resident column."),
		cacheMisses:      reg.Counter("adamant_cache_misses_total", "Buffer-pool lookups that loaded the column cold."),
		cacheJoins:       reg.Counter("adamant_cache_shared_joins_total", "Buffer-pool lookups that joined another query's in-flight transfer."),
		cacheEvictions:   reg.Counter("adamant_cache_evictions_total", "Columns evicted from the buffer pool."),
		cacheInvalidates: reg.Counter("adamant_cache_invalidations_total", "Device-wide buffer-pool invalidations (death/quarantine)."),
		cacheBytes:       reg.Gauge("adamant_cache_bytes", "Bytes currently held by the buffer pool."),
		cacheRatio:       reg.Gauge("adamant_cache_hit_ratio", "Lifetime buffer-pool hit ratio (hits+joins over all lookups)."),

		autoplanQueries: reg.Counter("adamant_autoplan_total", "Auto-planned queries, by chosen device and execution model.", "device", "model"),
		autoplanReplans: reg.Counter("adamant_autoplan_replans_total", "Mid-query re-plan restarts taken by auto-planned queries.", "model"),
		autoplanEntries: reg.Gauge("adamant_autoplan_catalog_entries", "Entries in the learned cost catalog."),

		shardQueries:   reg.Counter("adamant_shard_queries_total", "Queries executed scattered over the shard fleet.", "model"),
		shardHedges:    reg.Counter("adamant_shard_hedges_total", "Partitions that launched a hedged duplicate attempt."),
		shardHedgeWins: reg.Counter("adamant_shard_hedge_wins_total", "Partitions whose hedged duplicate finished first."),
		shardFailovers: reg.Counter("adamant_shard_failovers_total", "Partitions re-dispatched after their shard died."),
		shardLost:      reg.Counter("adamant_shard_lost_total", "Partitions lost unrecoverably (Partial loss mode)."),
		shardPartial:   reg.Counter("adamant_shard_partial_queries_total", "Queries that returned explicitly flagged partial results."),

		events:      reg.Counter("adamant_events_total", "Telemetry events emitted, by type (lifetime, survives ring eviction).", "type"),
		running:     reg.Gauge("adamant_sessions_running", "Admitted sessions currently executing."),
		queued:      reg.Gauge("adamant_sessions_queued", "Sessions waiting in the admission queue."),
		quarantined: reg.Gauge("adamant_devices_quarantined", "Devices currently quarantined."),
		memUsed:     reg.Gauge("adamant_device_mem_used_bytes", "Device memory currently allocated.", "device"),
		memPeak:     reg.Gauge("adamant_device_mem_peak_bytes", "High-water device memory.", "device"),
		busyNS:      reg.Counter("adamant_device_busy_ns", "Cumulative engine busy virtual time.", "device", "engine"),
		devLaunches: reg.Counter("adamant_device_launches_total", "Kernel launches per device.", "device"),
		devH2D:      reg.Counter("adamant_device_h2d_bytes_total", "Host-to-device bytes per device.", "device"),
		devD2H:      reg.Counter("adamant_device_d2h_bytes_total", "Device-to-host bytes per device.", "device"),
	}
	if t.utilWindows <= 0 {
		t.utilWindows = DefaultUtilWindows
	}
	// Gauges and device-sourced totals are copied whole at scrape time:
	// their truth lives in the scheduler, memory pools, and device stats.
	reg.OnScrape(func(*telemetry.Registry) { e.collectTelemetry() })
	e.tele = t
	e.sched.SetEvents(t.sink)
	if e.pool != nil {
		e.pool.SetEvents(t.sink)
	}
	return e
}

// collectTelemetry refreshes the scrape-time metrics from their owners.
func (e *Engine) collectTelemetry() {
	t := e.tele
	st := e.sched.Stats()
	t.running.Set(float64(st.Running))
	t.queued.Set(float64(st.Queued))
	t.quarantined.Set(float64(len(e.sched.Quarantined())))
	for ty, n := range t.sink.Totals() {
		t.events.Set(float64(n), string(ty))
	}
	if e.catalog != nil {
		t.autoplanEntries.Set(float64(e.catalog.Len()))
	}
	if e.pool != nil {
		cs := e.pool.Stats()
		t.cacheHits.Set(float64(cs.Hits))
		t.cacheMisses.Set(float64(cs.Misses))
		t.cacheJoins.Set(float64(cs.SharedJoins))
		t.cacheEvictions.Set(float64(cs.Evictions))
		t.cacheInvalidates.Set(float64(cs.Invalidations))
		t.cacheBytes.Set(float64(cs.CachedBytes))
		t.cacheRatio.Set(cs.HitRatio())
	}
	for _, d := range e.rt.Devices() {
		name := d.Info().Name
		ms := d.MemStats()
		t.memUsed.Set(float64(ms.Used), name)
		t.memPeak.Set(float64(ms.Peak), name)
		ds := d.Stats()
		t.devLaunches.Set(float64(ds.Launches), name)
		t.devH2D.Set(float64(ds.H2DBytes), name)
		t.devD2H.Set(float64(ds.D2HBytes), name)
		t.busyNS.Set(float64(d.CopyEngine().Busy()), name, "copy")
		t.busyNS.Set(float64(d.ComputeEngine().Busy()), name, "compute")
	}
}

// vtNow is the engine's virtual horizon: the latest availability across
// every plugged device engine — on a sharded engine, across every shard's
// devices (each shard runs its own clocks) — i.e. the virtual time up to
// which the simulation has advanced. Events are stamped with it.
func (e *Engine) vtNow() vclock.Time {
	var t vclock.Time
	scan := func(rt *hub.Runtime) {
		for _, d := range rt.Devices() {
			if a := d.CopyEngine().Avail(); a > t {
				t = a
			}
			if a := d.ComputeEngine().Avail(); a > t {
				t = a
			}
		}
	}
	scan(e.rt)
	for s := 1; s < len(e.shardCtxs); s++ {
		scan(e.shardCtxs[s].rt)
	}
	return t
}

// primaryDevice attributes a query to a device for metric labels: the
// lowest-ID device in its demand estimate (queries here run on one device;
// the lowest ID is the plan's placement target). driver is that device's
// SDK name.
func (e *Engine) primaryDevice(demand map[device.ID]int64) (name, driver string) {
	best := device.ID(-1)
	for id := range demand {
		if best < 0 || id < best {
			best = id
		}
	}
	if best < 0 {
		return "", ""
	}
	if d, err := e.rt.Device(best); err == nil {
		info := d.Info()
		return info.Name, info.SDK
	}
	return best.String(), ""
}

// sampleUtilization folds every engine's cumulative busy counter into the
// utilization tracker, stamped at that engine's own availability horizon.
// On a sharded engine, shards 1..n-1 feed shard-labeled series so the
// heat strip shows one aligned row per shard; shard 0 is the engine's own
// runtime and keeps its unlabeled (byte-identical) rows.
func (e *Engine) sampleUtilization() {
	t := e.tele
	sample := func(shard string, rt *hub.Runtime) {
		for _, d := range rt.Devices() {
			name := d.Info().Name
			cp := d.CopyEngine()
			t.util.SampleShard(shard, name, "copy", cp.Avail(), cp.Busy())
			cm := d.ComputeEngine()
			t.util.SampleShard(shard, name, "compute", cm.Avail(), cm.Busy())
		}
	}
	sample("", e.rt)
	for s := 1; s < len(e.shardCtxs); s++ {
		sample(fmt.Sprintf("shard%d", s), e.shardCtxs[s].rt)
	}
}

// observeQueryTelemetry folds one finished query into the metric registry,
// event log, utilization tracker, fleet profiler, and flight recorder.
// res may be nil (the run failed before producing statistics); spans are
// the query's recorded spans for profiling and flight retention.
func (e *Engine) observeQueryTelemetry(qid uint64, dev, driver, model, shape, tenant string, startVT vclock.Time, res *exec.Result, runErr error, spans []trace.Span) {
	t := e.tele
	errText := ""
	if runErr != nil {
		errText = runErr.Error()
		t.errors.Add(1, dev, model, driver)
	}
	t.queries.Add(1, dev, model, driver)

	digest := telemetry.QueryDigest{
		Query: qid, Model: model, Device: dev,
		StartNS: int64(startVT), Err: errText,
	}
	finish := telemetry.Event{
		Type: telemetry.EventQueryFinish, Query: qid,
		Device: dev, Model: model, Err: errText,
	}
	prec := profile.QueryRecord{
		Query: qid, Shape: shape, Tenant: tenant,
		Device: dev, Model: model, Err: runErr != nil, Spans: spans,
	}
	if res != nil {
		s := res.Stats
		t.elapsed.Observe(float64(s.Elapsed), dev, model, driver)
		t.h2dBytes.Observe(float64(s.H2DBytes), dev, model, driver)
		t.d2hBytes.Observe(float64(s.D2HBytes), dev, model, driver)
		t.chunks.Add(float64(s.Chunks), model)
		t.retries.Add(float64(s.Retries), model)
		var failovers, degrades int
		for _, ev := range s.Events {
			switch ev.Kind {
			case exec.EventFailover:
				failovers++
			case exec.EventDegrade:
				degrades++
			}
		}
		t.failovers.Add(float64(failovers), model)
		t.degrades.Add(float64(degrades), model)

		digest.ElapsedNS = int64(s.Elapsed)
		digest.H2DBytes = s.H2DBytes
		digest.D2HBytes = s.D2HBytes
		digest.Chunks = s.Chunks
		digest.Pipelines = s.Pipelines
		digest.Retries = s.Retries
		digest.Failovers = failovers
		digest.Degrades = degrades
		digest.Replans = s.Replans
		finish.ElapsedNS = int64(s.Elapsed)

		prec.Elapsed = s.Elapsed
		prec.KernelTime = s.KernelTime
		prec.TransferTime = s.TransferTime
		prec.OverheadTime = s.OverheadTime
		prec.H2DBytes = s.H2DBytes
		prec.D2HBytes = s.D2HBytes
		prec.Launches = s.Launches
		prec.Retries = s.Retries
		prec.Replans = s.Replans
		prec.Failovers = failovers
		prec.Degrades = degrades
	}
	now := e.vtNow()
	finish.VT = int64(now)
	t.sink.Emit(finish)
	if e.prof != nil {
		prec.VT = now
		anomalies, alerts := e.prof.Observe(prec)
		for _, a := range anomalies {
			t.sink.Emit(telemetry.Event{
				Type: telemetry.EventPerfAnomaly, Query: qid, VT: int64(now),
				Device: a.Driver, Model: model,
				Detail: fmt.Sprintf("%s bucket %d measured %.1f ns/unit vs expected %.1f (%.1fx)",
					a.Primitive, a.Bucket, a.Measured, a.Expected, a.Factor),
			})
		}
		if len(anomalies) > 0 {
			// Force full-trace retention: the span dump is the evidence
			// that links the fleet-level anomaly to concrete operations.
			digest.Retained = "anomaly"
		}
		for _, al := range alerts {
			t.sink.Emit(telemetry.Event{
				Type: telemetry.EventSLOBurn, Query: qid, VT: int64(now), Model: model,
				Detail: fmt.Sprintf("%s window burn %.2f (%d/%d bad)", al.Window, al.Burn, al.Bad, al.Total),
			})
		}
	}
	t.flight.Record(digest, spans)
	e.sampleUtilization()
}

// observeShardTelemetry folds one sharded query's robustness outcomes into
// the adamant_shard_* metric families, and makes flagged partial answers
// visible on /events with a shard_partial event. res is nil when the
// query failed before assembling statistics.
func (e *Engine) observeShardTelemetry(qid uint64, res *exec.Result, model string) {
	t := e.tele
	if t == nil {
		return
	}
	t.shardQueries.Add(1, model)
	if res == nil {
		return
	}
	for _, s := range res.Stats.Shards {
		if s.Hedged {
			t.shardHedges.Add(1)
		}
		if s.HedgeWon {
			t.shardHedgeWins.Add(1)
		}
		if s.FailedOver {
			t.shardFailovers.Add(1)
		}
		if s.Lost {
			t.shardLost.Add(1)
		}
	}
	if parts := res.Stats.PartialShards; len(parts) > 0 {
		t.shardPartial.Add(1)
		t.sink.Emit(telemetry.Event{
			Type: telemetry.EventShardPartial, Query: qid,
			VT: int64(e.vtNow()), Model: model,
			Detail: fmt.Sprintf("partial result: lost partitions %v", parts),
		})
	}
}

// Telemetry reports whether the engine's telemetry layer is armed.
func (e *Engine) Telemetry() bool { return e.tele != nil }

// WriteProm renders the engine's metric registry in the Prometheus text
// exposition format: deterministically ordered families and series, with
// per-device, per-model and per-driver labels. Without WithTelemetry it
// writes a disabled notice.
func (e *Engine) WriteProm(w io.Writer) error {
	if e.tele == nil {
		var nilReg *telemetry.Registry
		return nilReg.WriteProm(w)
	}
	return e.tele.reg.WriteProm(w)
}

// WriteEvents dumps the retained structured events as JSON lines, oldest
// first. Without WithTelemetry it writes nothing.
func (e *Engine) WriteEvents(w io.Writer) error {
	if e.tele == nil {
		return nil
	}
	return e.tele.sink.WriteJSONL(w)
}

// EventTotals reports how many events of each type the engine has ever
// emitted (lifetime counts, unaffected by ring eviction). Nil without
// WithTelemetry.
func (e *Engine) EventTotals() map[string]uint64 {
	if e.tele == nil {
		return nil
	}
	totals := e.tele.sink.Totals()
	out := make(map[string]uint64, len(totals))
	for ty, n := range totals {
		out[string(ty)] = n
	}
	return out
}

// FlightDump writes the flight recorder's ring — recent query digests,
// with full span traces retained for errored, degraded, failed-over, and
// slow queries — as JSON. Without WithTelemetry it writes an empty dump.
func (e *Engine) FlightDump(w io.Writer) error {
	if e.tele == nil {
		var nilFlight *telemetry.FlightRecorder
		return nilFlight.WriteJSON(w)
	}
	return e.tele.flight.WriteJSON(w)
}

// FlightDigests returns the flight recorder's retained digests, oldest
// first. Nil without WithTelemetry.
func (e *Engine) FlightDigests() []telemetry.QueryDigest {
	if e.tele == nil {
		return nil
	}
	return e.tele.flight.Digests()
}

// WriteUtilization renders the per-device-engine utilization timelines as
// a deterministic text heat strip (one row per engine, one glyph per
// virtual-time window).
func (e *Engine) WriteUtilization(w io.Writer) {
	if e.tele == nil {
		var nilUtil *telemetry.UtilTracker
		nilUtil.WriteHeatStrip(w, 1)
		return
	}
	e.tele.util.WriteHeatStrip(w, e.tele.utilWindows)
}

// WriteUtilizationJSON exports the utilization timelines as JSON.
func (e *Engine) WriteUtilizationJSON(w io.Writer) error {
	if e.tele == nil {
		var nilUtil *telemetry.UtilTracker
		return nilUtil.WriteJSON(w, 1)
	}
	return e.tele.util.WriteJSON(w, e.tele.utilWindows)
}
