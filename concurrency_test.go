// Concurrency tests for the session runtime: N goroutines sharing one
// Engine across every execution model, mid-query cancellation with
// buffer-accounting checks, and the admission-control paths. All of these
// are meaningful under -race (the documented tier-1 gate).
package adamant_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
)

// stressRows is enough rows for dozens of chunks at stressChunk, so every
// model exercises its chunk loop (and its cancellation points).
const (
	stressRows  = 32768
	stressChunk = 1024
)

func stressData() (prices, discounts []int32) {
	prices = make([]int32, stressRows)
	discounts = make([]int32, stressRows)
	for i := range prices {
		prices[i] = int32(i%1000 + 1)
		discounts[i] = int32(i % 11)
	}
	return prices, discounts
}

// stressPlan builds the quick-start revenue query: filter on discount,
// materialize both sides, multiply, sum.
func stressPlan(eng *adamant.Engine, dev adamant.DeviceID, prices, discounts []int32) *adamant.Plan {
	plan := eng.NewPlan().On(dev)
	price := plan.ScanInt32("price", prices)
	disc := plan.ScanInt32("discount", discounts)
	keep := plan.FilterBetween(disc, 5, 7)
	rev := plan.Mul(plan.Materialize(price, keep), plan.Materialize(disc, keep))
	plan.Return("revenue", plan.SumInt64(rev))
	return plan
}

var stressModels = map[string]adamant.Model{
	"oaat":         adamant.OperatorAtATime,
	"chunked":      adamant.Chunked,
	"pipelined":    adamant.Pipelined,
	"4p-chunked":   adamant.FourPhaseChunked,
	"4p-pipelined": adamant.FourPhasePipelined,
}

// TestConcurrentStress runs goroutines across all five execution models
// over one shared Engine and asserts every concurrent result matches the
// model's serial baseline.
func TestConcurrentStress(t *testing.T) {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	prices, discounts := stressData()

	// Serial baselines, one per model.
	want := map[string]int64{}
	for name, model := range stressModels {
		res, err := eng.Execute(stressPlan(eng, gpu, prices, discounts),
			adamant.ExecOptions{Model: model, ChunkElems: stressChunk})
		if err != nil {
			t.Fatalf("serial %s: %v", name, err)
		}
		want[name] = res.Int64("revenue")[0]
	}
	for name, w := range want {
		if w != want["oaat"] {
			t.Fatalf("serial baselines disagree: %s=%d oaat=%d", name, w, want["oaat"])
		}
	}

	// Two goroutines per model, a few executions each, all on the shared
	// engine at once.
	const perModel, iters = 2, 3
	var wg sync.WaitGroup
	errs := make(chan error, len(stressModels)*perModel)
	for name, model := range stressModels {
		for g := 0; g < perModel; g++ {
			wg.Add(1)
			go func(name string, model adamant.Model) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					res, err := eng.Execute(stressPlan(eng, gpu, prices, discounts),
						adamant.ExecOptions{Model: model, ChunkElems: stressChunk})
					if err != nil {
						errs <- fmt.Errorf("%s: %w", name, err)
						return
					}
					if got := res.Int64("revenue")[0]; got != want[name] {
						errs <- fmt.Errorf("%s: revenue = %d, want %d", name, got, want[name])
						return
					}
				}
			}(name, model)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// cancelAfter is a context whose Err flips to Canceled after n checks. The
// executor polls ctx.Err() at every chunk boundary, so this cancels a
// query deterministically mid-run — no sleeps, no racing a timer.
type cancelAfter struct {
	context.Context
	checks atomic.Int64
	after  int64
}

func (c *cancelAfter) Err() error {
	if c.checks.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestExecuteContextCancelReleasesBuffers cancels a multi-chunk query
// mid-run and asserts the engine's memory accounting — device bytes,
// pinned bytes, live buffers — returns to the pre-query baseline.
func TestExecuteContextCancelReleasesBuffers(t *testing.T) {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	prices, discounts := stressData()
	opts := adamant.ExecOptions{Model: adamant.FourPhasePipelined, ChunkElems: stressChunk}

	// Warm up once so the baseline reflects steady state.
	if _, err := eng.Execute(stressPlan(eng, gpu, prices, discounts), opts); err != nil {
		t.Fatal(err)
	}
	baseline := make([]devmem.Stats, 0)
	for _, d := range eng.Runtime().Devices() {
		baseline = append(baseline, d.MemStats())
	}

	ctx := &cancelAfter{Context: context.Background(), after: 3}
	_, err = eng.ExecuteContext(ctx, stressPlan(eng, gpu, prices, discounts), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled execute: err = %v, want context.Canceled", err)
	}
	if ctx.checks.Load() <= ctx.after {
		t.Fatalf("context checked %d times; cancellation never observed mid-run", ctx.checks.Load())
	}

	for i, d := range eng.Runtime().Devices() {
		s := d.MemStats()
		if s.Used != baseline[i].Used || s.PinnedUsed != baseline[i].PinnedUsed || s.LiveBuffers != baseline[i].LiveBuffers {
			t.Errorf("device %d leaked after cancel: used=%d (want %d) pinned=%d (want %d) live=%d (want %d)",
				i, s.Used, baseline[i].Used, s.PinnedUsed, baseline[i].PinnedUsed, s.LiveBuffers, baseline[i].LiveBuffers)
		}
	}

	// The engine stays usable after a cancelled session.
	res, err := eng.Execute(stressPlan(eng, gpu, prices, discounts), opts)
	if err != nil {
		t.Fatalf("execute after cancel: %v", err)
	}
	if res.Int64("revenue")[0] == 0 {
		t.Error("post-cancel query returned zero revenue")
	}
}

// TestAdmissionBudget rejects a query whose estimated working set exceeds
// the device budget, and admits it once the budget is raised.
func TestAdmissionBudget(t *testing.T) {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	prices, discounts := stressData()
	// Operator-at-a-time keeps whole columns resident: the working set is
	// far above 1 KiB.
	opts := adamant.ExecOptions{Model: adamant.OperatorAtATime}

	eng.SetDeviceBudget(gpu, 1024)
	_, err = eng.Execute(stressPlan(eng, gpu, prices, discounts), opts)
	if !errors.Is(err, adamant.ErrAdmission) {
		t.Fatalf("over-budget execute: err = %v, want ErrAdmission", err)
	}
	if rej := eng.AdmissionStats().Rejected; rej != 1 {
		t.Errorf("rejected = %d, want 1", rej)
	}

	eng.SetDeviceBudget(gpu, 1<<30)
	if _, err := eng.Execute(stressPlan(eng, gpu, prices, discounts), opts); err != nil {
		t.Fatalf("within-budget execute: %v", err)
	}
}

// gatedDevice wraps a simulated device so its first kernel launch blocks
// until the gate opens. The blocked query holds its admission grant the
// whole time, making queue build-up deterministic regardless of GOMAXPROCS.
type gatedDevice struct {
	device.Device
	first   sync.Once
	entered chan struct{}
	gate    chan struct{}
}

func (d *gatedDevice) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	d.first.Do(func() {
		close(d.entered)
		<-d.gate
	})
	return d.Device.Execute(req, ready)
}

// TestAdmissionQueueSerializes caps concurrency at one, parks a session
// mid-kernel while five more arrive, and checks that every one of them
// waits in the admission queue, then completes correctly once the slot
// frees up.
func TestAdmissionQueueSerializes(t *testing.T) {
	prices, discounts := stressData()
	opts := adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: stressChunk}

	// Reference answer from a plain engine: same data, same kernels.
	ref := adamant.NewEngine()
	refGPU, err := ref.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Execute(stressPlan(ref, refGPU, prices, discounts), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Int64("revenue")[0]

	eng := adamant.NewEngine(adamant.WithMaxConcurrent(1))
	gd := &gatedDevice{
		Device:  simcuda.New(&simhw.RTX2080Ti, nil),
		entered: make(chan struct{}),
		gate:    make(chan struct{}),
	}
	gpu, err := eng.PlugDevice(gd)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	runOne := func() {
		defer wg.Done()
		res, err := eng.Execute(stressPlan(eng, gpu, prices, discounts), opts)
		if err != nil {
			errs <- err
			return
		}
		if got := res.Int64("revenue")[0]; got != want {
			errs <- fmt.Errorf("revenue = %d, want %d", got, want)
		}
	}

	// First session blocks inside its first kernel, holding the only slot.
	wg.Add(1)
	go runOne()
	<-gd.entered

	// Five more arrive; with the slot held they must all queue.
	for i := 1; i < sessions; i++ {
		wg.Add(1)
		go runOne()
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.AdmissionStats().Queued < sessions-1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", eng.AdmissionStats())
		}
		time.Sleep(time.Millisecond)
	}

	close(gd.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := eng.AdmissionStats()
	if s.Admitted != sessions {
		t.Errorf("admitted = %d, want %d", s.Admitted, sessions)
	}
	if s.Waited != sessions-1 {
		t.Errorf("waited = %d, want %d", s.Waited, sessions-1)
	}
	if s.Running != 0 || s.Queued != 0 {
		t.Errorf("scheduler not drained: running=%d queued=%d", s.Running, s.Queued)
	}
}

// TestQueryContextCancel checks that the SQL front-end honours
// cancellation through the same path as plan execution.
func TestQueryContextCancel(t *testing.T) {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int32, stressRows)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	table := adamant.NewTable("t", stressRows)
	if err := table.AddInt32("v", vals); err != nil {
		t.Fatal(err)
	}
	cat := adamant.NewCatalog(table)

	ctx := &cancelAfter{Context: context.Background(), after: 2}
	_, err = eng.QueryContext(ctx, cat, gpu, "SELECT SUM(v) FROM t WHERE v < 50",
		adamant.QueryOptions{ExecOptions: adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: stressChunk}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
	}
}
