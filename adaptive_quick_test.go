package adamant

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAdaptiveChunkingEquivalence is the degradation-correctness
// property: for random plans across all five execution models and four
// drivers, a run that degrades under OOM pressure (chunk halvings and, at
// the floor, re-placement onto the host) produces results bit-identical to
// the undisturbed fixed-chunk run. The fault plan targets only the primary
// device, so the host fallback guarantees every degraded run completes.
func TestQuickAdaptiveChunkingEquivalence(t *testing.T) {
	property := func(seedRaw uint32, modelIdx, drvIdx uint8) bool {
		seed := int64(seedRaw % (1 << 20))
		model := harnessModels[int(modelIdx)%len(harnessModels)]
		drv := harnessDrivers[int(drvIdx)%len(harnessDrivers)]

		base := harnessEngine(t, drv, nil)
		fixed := ExecOptions{Model: model, ChunkElems: 256}
		want, err := base.Execute(buildHarnessPlan(base, seed), fixed)
		if err != nil {
			t.Errorf("fixed-chunk baseline (%v on %s, seed %d): %v", model, drv.name, seed, err)
			return false
		}

		plan := &FaultPlan{Seed: uint64(seedRaw), POOM: 0.3, Devices: []string{drv.devName}}
		eng := harnessEngine(t, drv, plan) // adaptive chunking + health policy on
		got, err := eng.Execute(buildHarnessPlan(eng, seed), fixed)
		if err != nil {
			t.Errorf("adaptive run (%v on %s, seed %d): %v", model, drv.name, seed, err)
			return false
		}
		label := "quick " + model.String() + " on " + drv.name
		sameResults(t, label, want, got)
		checkMemBaseline(t, eng, label)
		return !t.Failed()
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(0xADA)), // deterministic: same cases every run
	}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
