package adamant

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/trace"
)

// The differential auto-planning harness: for the same random plan
// population the fault and fusion harnesses use, an auto-planned run — the
// engine choosing device placement, execution model, and chunk size from
// its cost catalog, possibly restarting mid-query on cardinality drift —
// must match the hand-configured run bit-for-bit. Planning decides only
// *where and how* a query runs, never *what* it computes; any observable
// difference beyond the trace and the timings is a bug.

// TestDifferentialAutoPlan compares auto-planned against manually
// configured execution across 5 models × 4 drivers of random plans. The
// manual side pins each pair's model and a 256-value chunk; the auto side
// is free to pick anything, so the comparison covers every (manual config,
// auto config) combination the planner can reach.
func TestDifferentialAutoPlan(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*31337 + 5
		label := fmt.Sprintf("pair %d (%v on %s)", i, model, drv.name)
		opts := ExecOptions{Model: model, ChunkElems: 256}

		baseEng := harnessEngine(t, drv, nil)
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: manual run failed: %v", label, err)
		}

		autoEng := harnessEngine(t, drv, nil, WithAutoPlan())
		if !autoEng.AutoPlanEnabled() {
			t.Fatal("WithAutoPlan did not stick")
		}
		autoRes, err := autoEng.Execute(buildHarnessPlan(autoEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: auto run failed: %v", label, err)
		}
		sameResults(t, label, baseRes, autoRes)
		checkMemBaseline(t, autoEng, label+" auto")

		if autoEng.CostCatalog().Len() == 0 {
			t.Errorf("%s: catalog empty after an auto-planned query", label)
		}
	}
}

// TestDifferentialAutoPlanUnderFaults composes auto planning with the PR 2
// fault harness: a faulted auto-planned run must either match the
// fault-free manual baseline bit-for-bit or fail with one of the typed
// resilience errors — never a wrong answer — and device memory must return
// to baseline. Auto-planned queries travel the same retry/degrade/failover
// machinery; the re-plan restart is just one more attempt.
func TestDifferentialAutoPlanUnderFaults(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var matched, failedTyped, injected int
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*7919 + 3 // same population as the fault harness
		label := fmt.Sprintf("pair %d (%v on %s)", i, model, drv.name)
		opts := ExecOptions{Model: model, ChunkElems: 256}

		baseEng := harnessEngine(t, drv, nil)
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: baseline failed: %v", label, err)
		}

		faultEng := harnessEngine(t, drv, harnessFaultPlan(i, drv), WithAutoPlan())
		rec := NewTraceRecorder()
		recOpts := opts
		recOpts.Recorder = rec
		faultRes, err := faultEng.Execute(buildHarnessPlan(faultEng, seed), recOpts)
		switch {
		case err == nil:
			sameResults(t, label, baseRes, faultRes)
			matched++
			s := faultRes.Stats()
			if s.Retries > 0 || len(s.Events) > 0 {
				injected++
			}
			// Replan accounting must stay consistent with failover composed:
			// the Replans counter, the replan event log entries and the
			// replan trace spans are three views of the same restarts.
			var replanEvents int
			for _, ev := range s.Events {
				if ev.Kind == EventReplan {
					replanEvents++
				}
			}
			var replanSpans int
			for _, sp := range rec.internal().Spans() {
				if sp.Kind == trace.KindReplan {
					replanSpans++
				}
			}
			if s.Replans != replanEvents || s.Replans != replanSpans {
				t.Errorf("%s: replan accounting diverged: Stats.Replans=%d, events=%d, spans=%d",
					label, s.Replans, replanEvents, replanSpans)
			}
			// Drift is the final attempt's per-pipeline record: one sample
			// per executed pipeline even after retries and failovers.
			if len(s.Drift) != s.Pipelines {
				t.Errorf("%s: drift samples %d != pipelines %d after faults",
					label, len(s.Drift), s.Pipelines)
			}
		case harnessTypedError(err):
			failedTyped++
			injected++
		default:
			t.Errorf("%s: untyped error under faults: %v", label, err)
		}
		checkMemBaseline(t, faultEng, label+" faulted+auto")
	}
	t.Logf("%d auto runs matched the manual baseline, %d failed typed, %d saw faults",
		matched, failedTyped, injected)
	if matched == 0 {
		t.Error("no faulted auto run ever completed")
	}
	// Unlike the fixed-placement harnesses, the auto planner routes around a
	// device whose calibration probes fault — so many schedules never fire.
	// The harness still has to demonstrate faults reaching auto-planned
	// queries somewhere: retried, recovered, or surfaced typed.
	if !testing.Short() && injected == 0 {
		t.Error("no faulted auto run ever saw a fault; the schedules are not injecting")
	}
}

// TestReplanForcedBitIdentical property-checks the re-plan machinery
// itself: for random plans, models, drivers and forced chunk switches, a
// run whose re-plan hook unconditionally fires at the first pipeline
// boundary must match the hook-free baseline bit-for-bit. The hook decides
// only the restart's chunk size; the restart path re-runs from the
// host-resident scans, so correctness cannot depend on what the hook picks.
func TestReplanForcedBitIdentical(t *testing.T) {
	var fired int
	f := func(seedSel uint16, modelSel, drvSel, chunkSel, forcedSel uint8) bool {
		model := harnessModels[int(modelSel)%len(harnessModels)]
		drv := harnessDrivers[int(drvSel)%len(harnessDrivers)]
		seed := int64(seedSel)
		chunk := []int{64, 128, 256, 512}[int(chunkSel)%4]
		forced := 64 + int(forcedSel)*64

		baseEng := harnessEngine(t, drv, nil)
		baseG := buildHarnessPlan(baseEng, seed).graph()
		baseRes, err := exec.Run(baseEng.rt, baseG, exec.Options{
			Model: exec.Model(model), ChunkElems: chunk,
		})
		if err != nil {
			t.Logf("baseline failed: %v", err)
			return false
		}

		replanEng := harnessEngine(t, drv, nil)
		replanG := buildHarnessPlan(replanEng, seed).graph()
		replanRes, err := exec.Run(replanEng.rt, replanG, exec.Options{
			Model: exec.Model(model), ChunkElems: chunk,
			Replan: func(o exec.ReplanObservation) (int, bool) { return forced, true },
		})
		if err != nil {
			t.Logf("forced-replan run failed: %v", err)
			return false
		}
		fired += replanRes.Stats.Replans
		if replanRes.Stats.Replans > 1 {
			t.Logf("replans %d > 1: the one-replan bound broke", replanRes.Stats.Replans)
			return false
		}
		sameResults(t, "forced replan", newResult(baseRes), newResult(replanRes))
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Single-pipeline plans never reach a pipeline boundary, but the
	// population mixes in two-pipeline semi-join plans; if no run ever
	// restarted, the property is vacuous.
	if fired == 0 {
		t.Error("no run ever re-planned; the hook never fired")
	}
	t.Logf("%d forced re-plans taken", fired)
}

// TestStatsDrift pins the drift satellite: Stats exposes the per-pipeline
// estimated-vs-observed cardinalities the re-planner acts on, one sample
// per executed pipeline, and scan-fed pipelines (where the optimizer's
// estimate is exact) report zero drift.
func TestStatsDrift(t *testing.T) {
	drv := harnessDrivers[0]
	eng := harnessEngine(t, drv, nil)
	// Seed 1 builds a non-empty plan (2048 rows); any seed works as long as
	// the plan executes.
	res, err := eng.Execute(buildHarnessPlan(eng, 1), ExecOptions{Model: Chunked, ChunkElems: 256})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	s := res.Stats()
	if len(s.Drift) != s.Pipelines {
		t.Fatalf("drift samples %d != pipelines %d", len(s.Drift), s.Pipelines)
	}
	for i, d := range s.Drift {
		if d.ActualRows < 0 || d.EstRows < 0 {
			t.Errorf("drift[%d]: negative cardinality %+v", i, d)
		}
	}
	// The first pipeline reads scans directly: estimate and observation are
	// both the scan length.
	if d := s.Drift[0]; d.EstRows != d.ActualRows {
		t.Errorf("scan-fed pipeline drifted: est %d actual %d", d.EstRows, d.ActualRows)
	}
	if s.Replans != 0 {
		t.Errorf("manual run re-planned %d times without a hook", s.Replans)
	}
}
