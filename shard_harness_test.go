package adamant

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/fault"
)

// The sharded differential harness: the same random plans the fault
// harness uses, executed scattered over 1..8 runtime shards, must
// reproduce the single-runtime answer bit-for-bit — and with fault
// schedules replicated onto every shard, must still come back
// baseline-or-typed-error, never a silent wrong answer.

var harnessShardCounts = []int{1, 2, 3, 4, 6, 8}

// checkShardMemBaseline drains in-flight shard attempts (hedge losers
// included) and asserts every device on every shard released its memory.
func checkShardMemBaseline(t *testing.T, eng *Engine, label string) {
	t.Helper()
	eng.DrainShards()
	for s, sc := range eng.shardCtxs {
		for i, d := range sc.rt.Devices() {
			ms := d.MemStats()
			if ms.Used != 0 || ms.PinnedUsed != 0 || ms.LiveBuffers != 0 {
				t.Errorf("%s: shard %d device %d memory not at baseline: used=%d pinned=%d live=%d",
					label, s, i, ms.Used, ms.PinnedUsed, ms.LiveBuffers)
			}
		}
	}
}

// shardHarnessTypedError extends the typed-failure set with the shard-loss
// sentinel: a scattered query that cannot recover a partition surfaces
// ErrShardLost instead of a device-level loss.
func shardHarnessTypedError(err error) bool {
	return harnessTypedError(err) || errors.Is(err, ErrShardLost)
}

// TestDifferentialShardHarness runs random plans across shard counts,
// execution models and drivers, fault-free: every scattered run must equal
// the unsharded baseline exactly, and plans the planner declines must fall
// back unsharded with identical results.
func TestDifferentialShardHarness(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var scatteredRuns int
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		n := harnessShardCounts[(i/(len(harnessModels)*len(harnessDrivers)))%len(harnessShardCounts)]
		seed := int64(i)*7919 + 3
		label := fmt.Sprintf("pair %d (%v on %s, %d shards)", i, model, drv.name, n)

		baseEng := harnessEngine(t, drv, nil)
		opts := ExecOptions{Model: model, ChunkElems: 256}
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: unsharded baseline failed: %v", label, err)
		}

		shardEng := harnessEngine(t, drv, nil, WithShards(n))
		res, err := shardEng.Execute(buildHarnessPlan(shardEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: sharded run failed: %v", label, err)
		}
		sameResults(t, label, baseRes, res)
		if st := res.ShardStats(); st != nil {
			scatteredRuns++
			if len(st) != n {
				t.Errorf("%s: %d shard stats, want %d", label, len(st), n)
			}
		}
		checkShardMemBaseline(t, shardEng, label)
	}
	t.Logf("%d of %d runs scattered", scatteredRuns, pairs)
	if scatteredRuns == 0 {
		t.Error("no run ever scattered; the planner or wiring is broken")
	}
}

// TestDifferentialShardFaultHarness composes the fault schedules with
// sharding: every shard draws an independent fault stream from the same
// plan, and each run must match the fault-free unsharded baseline exactly
// or fail with a typed error — including the shard-loss sentinel.
func TestDifferentialShardFaultHarness(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var matched, failedTyped int
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		n := harnessShardCounts[(i/(len(harnessModels)*len(harnessDrivers)))%len(harnessShardCounts)]
		seed := int64(i)*7919 + 3
		label := fmt.Sprintf("pair %d (%v on %s, %d shards)", i, model, drv.name, n)

		baseEng := harnessEngine(t, drv, nil)
		opts := ExecOptions{Model: model, ChunkElems: 256}
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: fault-free baseline failed: %v", label, err)
		}

		faultEng := harnessEngine(t, drv, harnessFaultPlan(i, drv), WithShards(n))
		faultRes, err := faultEng.Execute(buildHarnessPlan(faultEng, seed), opts)
		switch {
		case err == nil:
			sameResults(t, label, baseRes, faultRes)
			matched++
		case shardHarnessTypedError(err):
			failedTyped++
		default:
			t.Errorf("%s: untyped error under faults: %v", label, err)
		}
		checkShardMemBaseline(t, faultEng, label)
	}
	t.Logf("%d runs matched the baseline, %d failed with typed errors", matched, failedTyped)
	if matched == 0 {
		t.Error("no faulted sharded run ever completed; recovery is not working")
	}
	if !testing.Short() && failedTyped == 0 {
		t.Error("no faulted sharded run ever failed; the schedules are not injecting")
	}
}

// shardKillPlan wraps every device in an injector that never fires on its
// own, so tests can kill individual shards deterministically.
func shardKillPlan(drv harnessDriver) *FaultPlan {
	return &FaultPlan{DieAfterOps: 1 << 40, Devices: []string{drv.devName}}
}

// killShard kills the primary device of one shard of a sharded engine.
func killShard(t *testing.T, eng *Engine, s int) {
	t.Helper()
	inj, ok := eng.shardCtxs[s].rt.Devices()[0].(*fault.Injector)
	if !ok {
		t.Fatalf("shard %d device 0 is not fault-wrapped", s)
	}
	inj.Kill()
}

// pickScatteringSeed finds a harness seed whose plan the scatter planner
// accepts (some seeds draw zero rows or shapes that fall back unsharded).
func pickScatteringSeed(t *testing.T, drv harnessDriver, n int) int64 {
	t.Helper()
	for seed := int64(0); seed < 40; seed++ {
		eng := harnessEngine(t, drv, nil, WithShards(n))
		res, err := eng.Execute(buildHarnessPlan(eng, seed), ExecOptions{Model: Chunked, ChunkElems: 256})
		if err != nil {
			t.Fatal(err)
		}
		if res.ShardStats() != nil {
			return seed
		}
	}
	t.Fatal("no scattering seed found")
	return 0
}

// TestShardLossFacade drives both loss modes through the public API: with
// failover disabled and one shard killed, Fail mode surfaces the typed
// *ShardLostError while Partial mode completes and flags exactly the lost
// partition.
func TestShardLossFacade(t *testing.T) {
	drv := harnessDrivers[0]
	seed := pickScatteringSeed(t, drv, 4)
	opts := ExecOptions{Model: Chunked, ChunkElems: 256}

	failEng := NewEngine(WithShards(4), WithShardFailovers(-1), WithFaultPlan(shardKillPlan(drv)))
	if _, err := failEng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatal(err)
	}
	killShard(t, failEng, 2)
	_, err := failEng.Execute(buildHarnessPlan(failEng, seed), opts)
	if !errors.Is(err, ErrShardLost) {
		t.Fatalf("fail mode error = %v, want ErrShardLost", err)
	}
	var lost *ShardLostError
	if !errors.As(err, &lost) || lost.Partition != 2 {
		t.Fatalf("fail mode error %v does not carry partition 2", err)
	}
	checkShardMemBaseline(t, failEng, "loss-fail")

	partEng := NewEngine(WithShards(4), WithShardFailovers(-1),
		WithShardLoss(ShardLossPartial), WithFaultPlan(shardKillPlan(drv)))
	if _, err := partEng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatal(err)
	}
	killShard(t, partEng, 2)
	res, err := partEng.Execute(buildHarnessPlan(partEng, seed), opts)
	if err != nil {
		t.Fatalf("partial mode: %v", err)
	}
	partial, which := res.Partial()
	if !partial || len(which) != 1 || which[0] != 2 {
		t.Fatalf("Partial() = %v %v, want true [2]", partial, which)
	}
	st := res.ShardStats()
	for p, s := range st {
		if s.Lost != (p == 2) {
			t.Errorf("partition %d Lost = %v", p, s.Lost)
		}
	}
	var lostEvents int
	for _, ev := range res.Stats().Events {
		if ev.Kind == EventShardLost {
			lostEvents++
		}
	}
	if lostEvents != 1 {
		t.Errorf("%d shard-lost events, want 1", lostEvents)
	}
	if dead := partEng.DeadShards(); len(dead) != 1 || dead[0] != 2 {
		t.Errorf("DeadShards() = %v, want [2]", dead)
	}
	checkShardMemBaseline(t, partEng, "loss-partial")
}

// TestShardFailoverFacade: with failover at its default bound, a killed
// shard's partition lands on a healthy peer and the answer still matches
// the unsharded baseline bit-for-bit.
func TestShardFailoverFacade(t *testing.T) {
	drv := harnessDrivers[0]
	seed := pickScatteringSeed(t, drv, 4)
	opts := ExecOptions{Model: Chunked, ChunkElems: 256}

	baseEng := harnessEngine(t, drv, nil)
	baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(WithShards(4), WithFaultPlan(shardKillPlan(drv)))
	if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatal(err)
	}
	killShard(t, eng, 1)
	res, err := eng.Execute(buildHarnessPlan(eng, seed), opts)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	sameResults(t, "shard failover", baseRes, res)
	st := res.ShardStats()
	if !st[1].FailedOver || st[1].Ran == 1 {
		t.Errorf("partition 1 stat = %+v, want failed over off shard 1", st[1])
	}
	checkShardMemBaseline(t, eng, "shard failover")
}

// TestShardLossDrainsPool is the buffer-pool shard-removal regression:
// warm cached columns and in-flight leases on a shard must not survive the
// shard's death. Killing every shard of a pooled engine fails the query
// typed, and after draining, every shard pool is empty and every device is
// back to its memory baseline — the device-death invalidation path fires
// on shard removal too.
func TestShardLossDrainsPool(t *testing.T) {
	drv := harnessDrivers[0]
	seed := pickScatteringSeed(t, drv, 3)
	opts := ExecOptions{Model: Chunked, ChunkElems: 256}

	eng := NewEngine(WithShards(3), WithFaultPlan(shardKillPlan(drv)),
		WithBufferPool(64<<20, CacheCostAware))
	if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatal(err)
	}
	cols := &harnessColumns{}
	if _, err := eng.Execute(buildHarnessPlanCols(eng, seed, cols), opts); err != nil {
		t.Fatalf("warming query: %v", err)
	}
	var warm int64
	for _, sc := range eng.shardCtxs {
		warm += sc.pool.Stats().CachedBytes
	}
	if warm == 0 {
		t.Fatal("no shard pool holds cached bytes after the warming query")
	}

	for s := range eng.shardCtxs {
		killShard(t, eng, s)
	}
	_, err := eng.Execute(buildHarnessPlanCols(eng, seed, cols), opts)
	if !shardHarnessTypedError(err) {
		t.Fatalf("all-shards-dead error = %v, want typed", err)
	}
	eng.DrainShards()
	for s, sc := range eng.shardCtxs {
		if got := sc.pool.Stats().CachedBytes; got != 0 {
			t.Errorf("shard %d pool still caches %d bytes after shard loss", s, got)
		}
	}
	checkShardMemBaseline(t, eng, "shard-loss pool drain")
}

// TestShardTelemetryFacade: sharded queries surface in the adamant_shard_*
// metric families alongside the usual per-query counters.
func TestShardTelemetryFacade(t *testing.T) {
	drv := harnessDrivers[0]
	seed := pickScatteringSeed(t, drv, 2)
	eng := harnessEngine(t, drv, nil, WithShards(2),
		WithShardHedging(ShardHedgePolicy{})).WithTelemetry(TelemetryConfig{})
	if _, err := eng.Execute(buildHarnessPlan(eng, seed), ExecOptions{Model: Chunked, ChunkElems: 256}); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := eng.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	if !strings.Contains(prom, `adamant_shard_queries_total{model="chunked"} 1`) {
		t.Errorf("shard query counter missing:\n%s", prom)
	}
	if !strings.Contains(prom, "adamant_queries_total") {
		t.Errorf("per-query counters missing from sharded run:\n%s", prom)
	}
}

// TestShardConfigErrors: invalid option combinations surface as typed
// configuration errors at Plug/Execute time, since NewEngine cannot fail.
func TestShardConfigErrors(t *testing.T) {
	eng := NewEngine(WithShards(2), WithAutoPlan())
	if _, err := eng.Plug(RTX2080Ti, CUDA); err == nil {
		t.Error("WithShards+WithAutoPlan accepted at Plug")
	}

	eng2 := NewEngine(WithShards(2))
	if _, err := eng2.Plug(RTX2080Ti, CUDA); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.PlugDevice(nil); err == nil {
		t.Error("PlugDevice accepted on a sharded engine")
	}
	if got := eng2.ShardCount(); got != 2 {
		t.Errorf("ShardCount() = %d, want 2", got)
	}
}
