package adamant_test

import (
	"strings"
	"testing"

	adamant "github.com/adamant-db/adamant"
)

// TestAutoPlace lets the cost-based placer choose devices for a two-phase
// plan: the hash-heavy build/probe should land on the GPU, and the query
// still computes the right answer across whatever placement it picked.
func TestAutoPlace(t *testing.T) {
	eng := adamant.NewEngine()
	cpu, err := eng.Plug(adamant.CoreI78700, adamant.OpenMP)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}

	n := 1 << 18
	buildKeys := make([]int32, n)
	probeKeys := make([]int32, n)
	for i := range buildKeys {
		buildKeys[i] = int32(i)
		probeKeys[i] = int32(i * 2) // half the probes match
	}

	plan := eng.NewPlan().On(cpu) // deliberately mis-placed
	bk := plan.ScanInt32("build", buildKeys)
	set := plan.BuildKeySet(bk, n)
	pk := plan.ScanInt32("probe", probeKeys)
	hit := plan.ExistsIn(pk, set)
	plan.Return("hits", plan.CountBits(hit))

	if err := plan.AutoPlace(eng, cpu, gpu); err != nil {
		t.Fatal(err)
	}
	out, err := plan.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pipeline") {
		t.Fatalf("explain after placement: %s", out)
	}

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("hits")[0]; got != int64(n/2) {
		t.Errorf("hits = %d, want %d", got, n/2)
	}
}

func TestAutoPlaceErrors(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	p := eng.NewPlan() // no device yet
	p.ScanInt32("x", []int32{1})
	if err := p.AutoPlace(eng, gpu); err == nil {
		t.Error("invalid plan accepted")
	}
}
