package adamant

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/place"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// CmpOp is a comparison operator for filters.
type CmpOp int

// Comparison operators. Between is inclusive on both ends and uses the
// second operand of the filter call.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
	Between
)

func (op CmpOp) kernel() kernels.CmpOp {
	switch op {
	case Lt:
		return kernels.CmpLt
	case Le:
		return kernels.CmpLe
	case Gt:
		return kernels.CmpGt
	case Ge:
		return kernels.CmpGe
	case Eq:
		return kernels.CmpEq
	case Ne:
		return kernels.CmpNe
	default:
		return kernels.CmpBetween
	}
}

// Port references the output of one plan step; feed it into later steps.
type Port struct {
	ref graph.PortRef
	ok  bool
}

// Plan is a query under construction: a primitive graph built through a
// fluent API, with every step annotated to the plan's current target
// device. Errors are deferred to Execute so building reads naturally.
type Plan struct {
	g        *graph.Graph
	dev      DeviceID
	devSet   bool
	firstErr error
}

// NewPlan starts an empty plan. Call On before adding steps.
func (e *Engine) NewPlan() *Plan {
	return &Plan{g: graph.New()}
}

// On sets the target device for subsequent steps, letting one plan span
// multiple co-processors (the runtime's router moves data between them).
func (p *Plan) On(dev DeviceID) *Plan {
	p.dev = dev
	p.devSet = true
	return p
}

func (p *Plan) fail(err error) Port {
	if p.firstErr == nil {
		p.firstErr = err
	}
	return Port{}
}

func (p *Plan) err() error {
	if p.firstErr != nil {
		return p.firstErr
	}
	if !p.devSet {
		return errors.New("adamant: plan has no target device; call On first")
	}
	return nil
}

func (p *Plan) graph() *graph.Graph { return p.g }

func (p *Plan) addTask(t *task.Task, inputs ...Port) Port {
	if p.firstErr != nil {
		return Port{}
	}
	if !p.devSet {
		return p.fail(errors.New("adamant: plan has no target device; call On first"))
	}
	refs := make([]graph.PortRef, len(inputs))
	for i, in := range inputs {
		if !in.ok {
			return p.fail(fmt.Errorf("adamant: %s input %d is an invalid port", t.Kind, i))
		}
		refs[i] = in.ref
	}
	id := p.g.AddTask(t, p.dev, refs...)
	return Port{ref: graph.PortRef{Node: id, Port: 0}, ok: true}
}

func (p *Plan) secondOutput(port Port) Port {
	if !port.ok {
		return Port{}
	}
	return Port{ref: graph.PortRef{Node: port.ref.Node, Port: 1}, ok: true}
}

func (p *Plan) portType(port Port) vec.Type {
	return p.g.Node(port.ref.Node).OutputSpec(port.ref.Port).Type
}

// ScanInt32 binds a host int32 column as a streamed pipeline input.
func (p *Plan) ScanInt32(name string, values []int32) Port {
	return p.scan(name, vec.FromInt32(values))
}

// ScanInt64 binds a host int64 column as a streamed pipeline input.
func (p *Plan) ScanInt64(name string, values []int64) Port {
	return p.scan(name, vec.FromInt64(values))
}

func (p *Plan) scan(name string, data vec.Vector) Port {
	if p.firstErr != nil {
		return Port{}
	}
	if !p.devSet {
		return p.fail(errors.New("adamant: plan has no target device; call On first"))
	}
	ref := p.g.AddScan(name, data, p.dev)
	return Port{ref: ref, ok: true}
}

// Filter evaluates col op v into a bitmap (FILTER_BITMAP). The column may
// be int32 or int64.
func (p *Plan) Filter(col Port, op CmpOp, v int64) Port {
	return p.typedFilter(col, op.kernel(), v, v, fmt.Sprintf("%v %d", op, v))
}

// FilterBetween keeps values in [lo, hi].
func (p *Plan) FilterBetween(col Port, lo, hi int64) Port {
	return p.typedFilter(col, kernels.CmpBetween, lo, hi, fmt.Sprintf("between %d and %d", lo, hi))
}

func (p *Plan) typedFilter(col Port, op kernels.CmpOp, lo, hi int64, label string) Port {
	if !col.ok {
		return p.fail(errors.New("adamant: filter on invalid port"))
	}
	t, err := task.NewFilterBitmapTyped(p.portType(col), op, lo, hi, label)
	if err != nil {
		return p.fail(err)
	}
	return p.addTask(t, col)
}

// FilterCols compares two columns element-wise (a op b) into a bitmap.
func (p *Plan) FilterCols(a, b Port, op CmpOp) Port {
	return p.addTask(task.NewFilterColCmp(op.kernel(), "colcmp"), a, b)
}

// And intersects two bitmaps.
func (p *Plan) And(a, b Port) Port { return p.addTask(task.NewBitmapAnd(), a, b) }

// Or unions two bitmaps.
func (p *Plan) Or(a, b Port) Port { return p.addTask(task.NewBitmapOr(), a, b) }

// Materialize compacts the rows a bitmap selects out of a value column
// (MATERIALIZE).
func (p *Plan) Materialize(values, bitmap Port) Port {
	if !values.ok {
		return p.fail(errors.New("adamant: Materialize on invalid port"))
	}
	t, err := task.NewMaterialize(p.portType(values), "materialize")
	if err != nil {
		return p.fail(err)
	}
	return p.addTask(t, values, bitmap)
}

// Gather fetches values at explicit positions (MATERIALIZE_POSITION).
func (p *Plan) Gather(values, positions Port) Port {
	if !values.ok {
		return p.fail(errors.New("adamant: Gather on invalid port"))
	}
	t, err := task.NewMaterializePosition(p.portType(values), "gather")
	if err != nil {
		return p.fail(err)
	}
	return p.addTask(t, values, positions)
}

// FilterPositions evaluates col op v into a position list sized by the
// selectivity estimate (FILTER_POSITION).
func (p *Plan) FilterPositions(col Port, op CmpOp, v int64, estimate float64) Port {
	return p.addTask(task.NewFilterPosition(op.kernel(), v, v, estimate, "filter positions"), col)
}

// Mul multiplies two int32 columns into an int64 column (MAP).
func (p *Plan) Mul(a, b Port) Port { return p.addTask(task.NewMapMul("mul"), a, b) }

// MulComplement computes a * (k - b) over two int32 columns (MAP), the
// fused form of price * (1 - discount) over fixed-point columns.
func (p *Plan) MulComplement(a, b Port, k int64) Port {
	return p.addTask(task.NewMapMulComplement(k, "mul-complement"), a, b)
}

// CastInt64 widens an int32 column to int64 (MAP).
func (p *Plan) CastInt64(a Port) Port { return p.addTask(task.NewMapCast("cast"), a) }

// SumInt64 reduces a column to its sum, folding across chunks (AGG_BLOCK).
func (p *Plan) SumInt64(a Port) Port { return p.agg(a, kernels.AggSum) }

// MinInt64 reduces a column to its minimum (AGG_BLOCK).
func (p *Plan) MinInt64(a Port) Port { return p.agg(a, kernels.AggMin) }

// MaxInt64 reduces a column to its maximum (AGG_BLOCK).
func (p *Plan) MaxInt64(a Port) Port { return p.agg(a, kernels.AggMax) }

func (p *Plan) agg(a Port, op kernels.AggOp) Port {
	if !a.ok {
		return p.fail(errors.New("adamant: aggregate on invalid port"))
	}
	t, err := task.NewAggBlock(op, p.portType(a), op.String())
	if err != nil {
		return p.fail(err)
	}
	return p.addTask(t, a)
}

// CountBits counts the set bits of a filter bitmap across chunks.
func (p *Plan) CountBits(bitmap Port) Port {
	return p.addTask(task.NewAggCountBits("count"), bitmap)
}

// PrefixSum computes the exclusive prefix sum of an int32 column
// (PREFIX_SUM, a pipeline breaker).
func (p *Plan) PrefixSum(a Port) Port { return p.addTask(task.NewPrefixSum("prefix sum"), a) }

// GroupBoundaries emits the 0/1 group-transition indicator of a sorted key
// column. The sorted-aggregation path assumes whole-column execution
// (OperatorAtATime): boundaries across chunk borders are not stitched.
func (p *Plan) GroupBoundaries(keys Port) Port {
	return p.addTask(task.NewGroupBoundaries("boundaries"), keys)
}

// GroupIndexes derives each row's group index from a sorted key column —
// the PREFIX_SUM input SortedGroupSum consumes.
func (p *Plan) GroupIndexes(keys Port) Port {
	return p.addTask(task.NewPrefixSumInclusive("group indexes"), p.GroupBoundaries(keys))
}

// BuildKeySet builds a hash set of keys (HASH_BUILD), the build side of a
// semi-join. capacity is the expected distinct key count.
func (p *Plan) BuildKeySet(keys Port, capacity int) Port {
	return p.addTask(task.NewHashBuildSet(capacity, "build set"), keys)
}

// BuildKeyIndex builds a hash table mapping unique keys to their global
// row positions (HASH_BUILD).
func (p *Plan) BuildKeyIndex(keys Port, totalRows int) Port {
	return p.addTask(task.NewHashBuildPK(totalRows, "build index"), keys)
}

// ExistsIn marks the probe rows whose key exists in the hash set — the
// EXISTS semi-join filter.
func (p *Plan) ExistsIn(keys, set Port) Port {
	return p.addTask(task.NewSemiJoinFilter("exists"), keys, set)
}

// NotExistsIn marks the probe rows whose key is absent from the hash set —
// the NOT EXISTS anti-join filter.
func (p *Plan) NotExistsIn(keys, set Port) Port {
	return p.addTask(task.NewBitmapNot(), p.ExistsIn(keys, set))
}

// AndNot keeps the rows of a that are not in b.
func (p *Plan) AndNot(a, b Port) Port { return p.addTask(task.NewBitmapAndNot(), a, b) }

// JoinPairs probes a key index and emits join pairs: probe-side positions
// and build-side payloads (HASH_PROBE). estimate is the expected match
// fraction.
func (p *Plan) JoinPairs(keys, index Port, estimate float64) (left, right Port) {
	l := p.addTask(task.NewHashProbe(estimate, "probe"), keys, index)
	return l, p.secondOutput(l)
}

// GroupSum aggregates an int64 value column by an int32 key column into a
// hash table (HASH_AGG). groupsHint is the expected distinct group count.
func (p *Plan) GroupSum(keys, values Port, groupsHint int) Port {
	return p.addTask(task.NewHashAgg(kernels.AggSum, groupsHint, "group sum"), keys, values)
}

// GroupCount counts rows per key into a hash table (HASH_AGG).
func (p *Plan) GroupCount(keys Port, groupsHint int) Port {
	return p.addTask(task.NewHashAggCount(groupsHint, "group count"), keys)
}

// GroupResults compacts a group hash table into dense key and aggregate
// columns.
func (p *Plan) GroupResults(table Port, maxGroups int) (keys, aggs Port) {
	k := p.addTask(task.NewHashExtract(maxGroups, "extract"), table)
	return k, p.secondOutput(k)
}

// SortedGroupSum aggregates values over sorted keys using a group-index
// prefix sum (SORT_AGG).
func (p *Plan) SortedGroupSum(keys, values, groupIndex Port, maxGroups int) (gk, ga Port) {
	k := p.addTask(task.NewSortAgg(kernels.AggSum, maxGroups, "sort agg"), keys, values, groupIndex)
	return k, p.secondOutput(k)
}

// AutoPlace re-annotates the plan's pipelines with the cheapest of the
// given devices, using the cost-based placer: streamed transfer cost plus
// analytic kernel estimates per pipeline. Call it after the plan is fully
// built and before Execute.
func (p *Plan) AutoPlace(eng *Engine, devices ...DeviceID) error {
	if err := p.err(); err != nil {
		return err
	}
	_, err := place.Greedy(p.g, eng.rt, devices)
	return err
}

// Return names a port as a query result to retrieve to the host.
func (p *Plan) Return(name string, port Port) {
	if p.firstErr != nil {
		return
	}
	if !port.ok {
		p.fail(fmt.Errorf("adamant: Return(%q) on invalid port", name))
		return
	}
	p.g.MarkResult(name, port.ref)
}

// ReturnAvg names an AVG(col) query result. The plan computes it as
// SUM(col) + COUNT(col) partials finalized at retrieval into one Float64
// value — the split that keeps the aggregate mergeable across shards.
func (p *Plan) ReturnAvg(name string, col Port) {
	if p.firstErr != nil {
		return
	}
	if !col.ok {
		p.fail(fmt.Errorf("adamant: ReturnAvg(%q) on invalid port", name))
		return
	}
	sum := p.agg(col, kernels.AggSum)
	count := p.agg(col, kernels.AggCount)
	if !sum.ok || !count.ok {
		return
	}
	p.g.MarkResultAvg(name, sum.ref, count.ref)
}

// String summarizes the comparison operator.
func (op CmpOp) String() string { return op.kernel().String() }
