package adamant

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/vec"
)

// The differential fault harness: for random plans × random fault schedules
// across all execution models and drivers, a faulted run must either match
// the fault-free baseline bit-for-bit or fail with a typed error wrapping
// ErrInjected — never a wrong answer — and device memory must return to its
// pre-query baseline either way.

// harnessDriver is one primary-device configuration under test.
type harnessDriver struct {
	name     string
	hw       Hardware
	sdk      SDK
	fbHW     Hardware // fallback device (host-resident, distinct name)
	fbSDK    SDK
	devName  string // full device name, for fault targeting
	fallback string
}

var harnessDrivers = []harnessDriver{
	{name: "cuda", hw: RTX2080Ti, sdk: CUDA, fbHW: CoreI78700, fbSDK: OpenMP,
		devName: "GeForce RTX 2080 Ti/cuda"},
	{name: "opencl-gpu", hw: RTX2080Ti, sdk: OpenCL, fbHW: CoreI78700, fbSDK: OpenMP,
		devName: "GeForce RTX 2080 Ti/opencl"},
	{name: "opencl-cpu", hw: CoreI78700, sdk: OpenCL, fbHW: CoreI78700, fbSDK: OpenMP,
		devName: "Intel Core i7-8700/opencl"},
	// The OpenMP primary falls back to the OpenCL CPU so the fault plan's
	// device targeting (a name substring) cannot hit both.
	{name: "openmp", hw: CoreI78700, sdk: OpenMP, fbHW: CoreI78700, fbSDK: OpenCL,
		devName: "Intel Core i7-8700/openmp"},
}

var harnessModels = []Model{OperatorAtATime, Chunked, Pipelined, FourPhaseChunked, FourPhasePipelined}

// harnessEngine builds an engine with the driver's primary device (ID 0)
// and its fallback (ID 1). A nil fault plan yields the baseline engine.
// Extra options (e.g. WithBufferPool) apply to both variants.
func harnessEngine(t *testing.T, drv harnessDriver, plan *FaultPlan, extra ...EngineOption) *Engine {
	t.Helper()
	var opts []EngineOption
	if plan != nil {
		opts = append(opts,
			WithFaultPlan(plan),
			WithRetryPolicy(RetryPolicy{MaxRetries: 3}),
			WithFallbackDevice(DeviceID(1)),
			WithAdaptiveChunking(64),
			WithHealthPolicy(HealthPolicy{}),
		)
	}
	opts = append(opts, extra...)
	eng := NewEngine(opts...)
	if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
		t.Fatalf("plug %s: %v", drv.name, err)
	}
	if _, err := eng.Plug(drv.fbHW, drv.fbSDK); err != nil {
		t.Fatalf("plug fallback: %v", err)
	}
	return eng
}

// buildHarnessPlan builds a random but seed-deterministic plan on device 0:
// filters combined with random bitmap logic, a materialize/map/aggregate
// tail, and (sometimes) a hash-set semi-join adding a second pipeline. The
// same seed always builds the same plan over the same data.
func buildHarnessPlan(eng *Engine, seed int64) *Plan {
	return buildHarnessPlanCols(eng, seed, &harnessColumns{})
}

// harnessColumns pins the backing arrays of a harness plan's scanned
// columns. Rebuilding a plan with the same seed and the same harnessColumns
// scans the exact same columns (same backing array, same vec.DataID), which
// is what lets a repeat execution hit the buffer pool.
type harnessColumns struct {
	price, disc, qty, keys, build []int32
}

func buildHarnessPlanCols(eng *Engine, seed int64, cols *harnessColumns) *Plan {
	rng := rand.New(rand.NewSource(seed))
	rows := []int{2048, 1024, 777, 96, 0}[rng.Intn(5)]

	if cols.price == nil {
		cols.price = make([]int32, rows)
		cols.disc = make([]int32, rows)
		cols.qty = make([]int32, rows)
		cols.keys = make([]int32, rows)
	}
	price, disc, qty, keys := cols.price, cols.disc, cols.qty, cols.keys
	// The value draws always run so the rng stream stays aligned with the
	// structure draws below; on a pinned rebuild they rewrite identical
	// values into the same arrays.
	for i := 0; i < rows; i++ {
		price[i] = int32(rng.Intn(10000))
		disc[i] = int32(rng.Intn(11))
		qty[i] = int32(rng.Intn(50))
		keys[i] = int32(rng.Intn(64))
	}

	p := eng.NewPlan()
	p.On(DeviceID(0))

	// Semi-join variant: a separate build pipeline feeds a hash set the
	// probe side filters against. The build side comes first so its
	// pipeline precedes the consumers'.
	semiJoin := rng.Intn(3) == 0
	var set Port
	if semiJoin {
		nBuild := 1 + rng.Intn(32)
		if cols.build == nil {
			cols.build = make([]int32, nBuild)
		}
		build := cols.build
		for i := range build {
			build[i] = int32(rng.Intn(64))
		}
		set = p.BuildKeySet(p.ScanInt32("build", build), 128)
	}

	cPrice := p.ScanInt32("price", price)
	cDisc := p.ScanInt32("disc", disc)
	cQty := p.ScanInt32("qty", qty)

	ops := []CmpOp{Lt, Le, Gt, Ge, Eq, Ne}
	b1 := p.Filter(cDisc, ops[rng.Intn(len(ops))], int64(rng.Intn(11)))
	lo := int64(rng.Intn(25))
	b2 := p.FilterBetween(cQty, lo, lo+int64(rng.Intn(25)))
	var combined Port
	switch rng.Intn(4) {
	case 0:
		combined = p.And(b1, b2)
	case 1:
		combined = p.Or(b1, b2)
	case 2:
		combined = p.AndNot(b1, b2)
	default:
		combined = b1
	}

	if semiJoin {
		cKeys := p.ScanInt32("keys", keys)
		combined = p.And(combined, p.ExistsIn(cKeys, set))
	}

	mp := p.Materialize(cPrice, combined)
	md := p.Materialize(cDisc, combined)
	rev := p.Mul(mp, md)
	p.Return("sum", p.SumInt64(rev))
	p.Return("count", p.CountBits(combined))
	if rng.Intn(2) == 0 {
		p.Return("rows", mp) // non-aggregate output: concatenated per chunk
	}
	return p
}

// harnessFaultPlan derives a random fault schedule for iteration i,
// targeting only the primary device.
func harnessFaultPlan(i int, drv harnessDriver) *FaultPlan {
	plan := &FaultPlan{
		Seed:    uint64(i)*0x9e3779b9 + 17,
		Devices: []string{drv.devName},
	}
	switch i % 7 {
	case 0:
		plan.PTransient = 0.08
	case 1:
		plan.PTransient = 0.02
		plan.PLaunch = 0.04
	case 2:
		plan.POOM = 0.04
		plan.PLatency = 0.2
	case 3:
		plan.DieAfterOps = int64(5 + (i % 37))
	case 4:
		plan.PTransient = 0.3 // heavy: most runs exhaust the retry budget
	case 5:
		// Heavy OOM pressure: the adaptive ladder must walk down to its
		// floor and re-place on the host rather than surface the OOM.
		plan.POOM = 0.5
	case 6:
		// Breaker-trip schedule: an early device death forces a failover
		// and opens the primary's circuit breaker mid-harness.
		plan.DieAfterOps = int64(3 + (i % 11))
	}
	return plan
}

// checkMemBaseline asserts every device of the engine is back to zero
// used/pinned bytes and zero live buffers.
func checkMemBaseline(t *testing.T, eng *Engine, label string) {
	t.Helper()
	for i, d := range eng.Runtime().Devices() {
		ms := d.MemStats()
		if ms.Used != 0 || ms.PinnedUsed != 0 || ms.LiveBuffers != 0 {
			t.Errorf("%s: device %d memory not at baseline: used=%d pinned=%d live=%d",
				label, i, ms.Used, ms.PinnedUsed, ms.LiveBuffers)
		}
	}
}

// sameResults compares two results bit-for-bit.
func sameResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	wc, gc := want.Columns(), got.Columns()
	if !reflect.DeepEqual(wc, gc) {
		t.Errorf("%s: columns %v != baseline %v", label, gc, wc)
		return
	}
	for _, name := range wc {
		wv, _ := want.column(name)
		gv, _ := got.column(name)
		if !vecEqual(wv, gv) {
			t.Errorf("%s: column %q diverged from baseline", label, name)
		}
	}
}

// vecEqual compares two vectors bit-for-bit.
func vecEqual(a, b vec.Vector) bool {
	if a.Type() != b.Type() || a.Len() != b.Len() {
		return false
	}
	switch a.Type() {
	case vec.Int32:
		return reflect.DeepEqual(a.I32(), b.I32())
	case vec.Int64:
		return reflect.DeepEqual(a.I64(), b.I64())
	case vec.Float64:
		return reflect.DeepEqual(a.F64(), b.F64())
	case vec.Bits:
		return reflect.DeepEqual(a.Words(), b.Words())
	default:
		return a.Len() == 0
	}
}

// harnessTypedError reports whether err is one of the typed failures the
// resilience layer is allowed to surface: an injected fault, an admission
// rejection, a deadline violation, or a device loss with nowhere to go.
func harnessTypedError(err error) bool {
	var lost *DeviceLostError
	return errors.Is(err, ErrInjected) ||
		errors.Is(err, ErrAdmission) ||
		errors.Is(err, ErrDeadline) ||
		errors.As(err, &lost)
}

// TestDifferentialFaultHarness is the acceptance harness: ≥100 random
// (plan, fault schedule) pairs across all five execution models and four
// drivers — now including heavy-OOM-pressure and breaker-trip schedules
// against an engine with adaptive chunking and a health policy enabled.
// Every faulted run either equals the fault-free baseline exactly or fails
// with a typed error (ErrInjected, ErrAdmission, ErrDeadline, or a
// *DeviceLostError); memory always returns to baseline.
func TestDifferentialFaultHarness(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 12
	}
	var matched, failedTyped int
	for i := 0; i < pairs; i++ {
		model := harnessModels[i%len(harnessModels)]
		drv := harnessDrivers[(i/len(harnessModels))%len(harnessDrivers)]
		seed := int64(i)*7919 + 3
		label := fmt.Sprintf("pair %d (%v on %s)", i, model, drv.name)

		baseEng := harnessEngine(t, drv, nil)
		opts := ExecOptions{Model: model, ChunkElems: 256}
		baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
		if err != nil {
			t.Fatalf("%s: fault-free baseline failed: %v", label, err)
		}
		checkMemBaseline(t, baseEng, label+" baseline")

		faultEng := harnessEngine(t, drv, harnessFaultPlan(i, drv))
		faultRes, err := faultEng.Execute(buildHarnessPlan(faultEng, seed), opts)
		switch {
		case err == nil:
			sameResults(t, label, baseRes, faultRes)
			matched++
		case harnessTypedError(err):
			failedTyped++ // a typed failure is a correct outcome
		default:
			t.Errorf("%s: untyped error under faults: %v", label, err)
		}
		checkMemBaseline(t, faultEng, label+" faulted")
	}
	t.Logf("%d runs matched the baseline, %d failed with typed injected errors", matched, failedTyped)
	if matched == 0 {
		t.Error("no faulted run ever completed; degradation is not working")
	}
	if !testing.Short() && failedTyped == 0 {
		t.Error("no faulted run ever failed; the schedules are not injecting")
	}
}

// TestFailoverCompletesOnFallback is the device-death acceptance case: a
// query that loses its primary mid-run completes on the fallback CPU with
// results identical to the fault-free run, the event log records the
// failover, and the engine quarantines the dead device.
func TestFailoverCompletesOnFallback(t *testing.T) {
	for _, model := range harnessModels {
		t.Run(model.String(), func(t *testing.T) {
			const seed = 42
			drv := harnessDrivers[0] // cuda primary, openmp fallback

			baseEng := harnessEngine(t, drv, nil)
			opts := ExecOptions{Model: model, ChunkElems: 256}
			baseRes, err := baseEng.Execute(buildHarnessPlan(baseEng, seed), opts)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}

			// Kill the primary a few dozen operations in: mid-staging or
			// mid-chunk for every model.
			plan := &FaultPlan{DieAfterOps: 25, Devices: []string{drv.devName}}
			eng := harnessEngine(t, drv, plan)
			res, err := eng.Execute(buildHarnessPlan(eng, seed), opts)
			if err != nil {
				t.Fatalf("faulted run did not fail over: %v", err)
			}
			sameResults(t, "failover", baseRes, res)

			events := res.Stats().Events
			if len(events) != 1 || events[0].Kind != EventFailover ||
				events[0].From != DeviceID(0) || events[0].To != DeviceID(1) {
				t.Errorf("event log = %v, want one failover 0->1", events)
			}
			if q := eng.Quarantined(); len(q) != 1 || q[0] != DeviceID(0) {
				t.Errorf("quarantined = %v, want [0]", q)
			}
			checkMemBaseline(t, eng, "failover")
		})
	}
}

// TestBreakerAutoReadmission is the self-healing acceptance case: a device
// that dies mid-query is failed over, breaker-opened, and quarantined; once
// the device recovers, the engine's probation probes readmit it after
// enough consecutive successes — without any manual Readmit call.
func TestBreakerAutoReadmission(t *testing.T) {
	drv := harnessDrivers[0] // cuda primary, openmp fallback
	plan := &FaultPlan{DieAfterOps: 25, Devices: []string{drv.devName}}
	eng := harnessEngine(t, drv, plan)
	opts := ExecOptions{Model: Chunked, ChunkElems: 256}

	res, err := eng.Execute(buildHarnessPlan(eng, 42), opts)
	if err != nil {
		t.Fatalf("faulted run did not fail over: %v", err)
	}
	if evs := res.Stats().Events; len(evs) != 1 || evs[0].Kind != EventFailover {
		t.Fatalf("events = %v, want one failover", evs)
	}
	if q := eng.Quarantined(); len(q) != 1 || q[0] != DeviceID(0) {
		t.Fatalf("quarantined = %v, want [0]", q)
	}

	// The device comes back. DieAfterOps fires only once, so after Revive
	// the primary is healthy again; each subsequent query's probation probe
	// scores one success until the breaker closes and readmits it.
	inj, ok := eng.Runtime().Devices()[0].(*fault.Injector)
	if !ok {
		t.Fatal("primary device is not fault-wrapped")
	}
	inj.Revive()
	for i := 0; i < 10 && len(eng.Quarantined()) > 0; i++ {
		if _, err := eng.Execute(buildHarnessPlan(eng, int64(100+i)), opts); err != nil {
			t.Fatalf("query %d during probation: %v", i, err)
		}
	}
	if q := eng.Quarantined(); len(q) != 0 {
		t.Fatalf("quarantined = %v after recovery, want auto-readmission", q)
	}

	// The readmitted primary serves a clean query with no new events.
	res, err = eng.Execute(buildHarnessPlan(eng, 7), opts)
	if err != nil {
		t.Fatalf("post-readmission query: %v", err)
	}
	if evs := res.Stats().Events; len(evs) != 0 {
		t.Errorf("post-readmission events = %v, want none", evs)
	}
	checkMemBaseline(t, eng, "auto-readmission")
}

// TestDeadFallbackStillTyped: when the fallback device is the one that
// dies, there is nowhere to go — the query must fail with the typed
// device-lost error rather than loop or return a wrong answer.
func TestDeadFallbackStillTyped(t *testing.T) {
	drv := harnessDrivers[0]
	plan := &FaultPlan{DieAfterOps: 4} // no device filter: both die
	eng := harnessEngine(t, drv, plan)
	_, err := eng.Execute(buildHarnessPlan(eng, 1), ExecOptions{Model: Chunked, ChunkElems: 256})
	if err == nil {
		t.Fatal("run with both devices dying succeeded")
	}
	if !errors.Is(err, ErrDeviceLost) || !errors.Is(err, fault.ErrInjected) {
		t.Errorf("error %v is not a typed device-lost fault", err)
	}
	checkMemBaseline(t, eng, "dead fallback")
}
