package adamant

import (
	"errors"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// This file is the facade half of the per-device circuit breaker (enabled
// with WithHealthPolicy): it feeds the session.HealthTracker state machine
// from query outcomes and translates its decisions into scheduler
// Quarantine/Readmit calls, closing the loop the tracker itself never
// touches. Without a health policy none of it runs and quarantining stays
// manual (Quarantine on failover, Readmit by the operator).

// errDeadline reports whether err is a deadline violation (shed at
// admission or cut at a chunk boundary).
func errDeadline(err error) bool { return errors.Is(err, vclock.ErrDeadline) }

// observeHealth folds one finished query into the breaker: a failover is
// conclusive evidence against the lost device (ForceOpen), every fault the
// executor counted is one bad observation, and a clean success is one good
// observation per device the query used. Devices whose breaker trips are
// quarantined onto the engine's fallback.
func (e *Engine) observeHealth(res *exec.Result, runErr error) {
	if e.health == nil || res == nil {
		return
	}
	open := make(map[device.ID]bool)
	for _, ev := range res.Stats.Events {
		if ev.Kind == exec.EventFailover {
			if e.health.ForceOpen(ev.From) {
				open[ev.From] = true
			}
		}
	}
	faulted := make(map[device.ID]bool)
	for dev, n := range res.Stats.FaultsByDevice {
		faulted[dev] = true
		for i := int64(0); i < n; i++ {
			if e.health.Observe(dev, false) {
				open[dev] = true
			}
		}
	}
	if runErr == nil {
		// Success without a single fault on a device is a good observation
		// for it; a device that faulted during a nonetheless-successful run
		// already got its bad marks above.
		for dev := range e.demandDevices(res) {
			if !faulted[dev] && !e.health.Open(dev) {
				e.health.Observe(dev, true)
			}
		}
	}
	for dev := range open {
		e.quarantineFor(dev)
	}
}

// demandDevices lists the devices a finished query touched, from its
// per-device stats; devices that never faulted appear with a zero entry
// only if the executor recorded one, so fall back to every plugged device
// that ran fault-free when the map is empty.
func (e *Engine) demandDevices(res *exec.Result) map[device.ID]struct{} {
	out := make(map[device.ID]struct{})
	for dev := range res.Stats.FaultsByDevice {
		out[dev] = struct{}{}
	}
	if len(out) == 0 {
		for i := range e.rt.Devices() {
			out[device.ID(i)] = struct{}{}
		}
	}
	return out
}

// quarantineFor quarantines a tripped device onto the engine's configured
// fallback, or the first host-resident device other than it. Without a
// viable stand-in the device stays admissible (quarantine needs a fallback
// to charge demand to).
func (e *Engine) quarantineFor(dev device.ID) {
	if e.fallback != nil && *e.fallback != dev {
		e.sched.Quarantine(dev, *e.fallback)
		return
	}
	for i, d := range e.rt.Devices() {
		id := device.ID(i)
		if id != dev && d.Info().HostResident {
			e.sched.Quarantine(dev, id)
			return
		}
	}
}

// pulseHealth runs one probation round: every device with an open breaker
// gets a cheap synthetic probe (transfer + kernel + retrieve on the real
// device, bypassing admission), and a device that reaches its consecutive-
// success target is readmitted automatically.
func (e *Engine) pulseHealth() {
	if e.health == nil {
		return
	}
	for _, dev := range e.health.OpenDevices() {
		if e.health.ProbeResult(dev, e.probeDevice(dev)) {
			e.sched.Readmit(dev)
		}
	}
}

// probeDevice exercises the smallest representative slice of the device
// interface — place 64 values, allocate a bitmap, run a filter kernel,
// retrieve the values back — and reports whether all of it succeeded. The
// probe's buffers are always freed (DeleteMemory never faults), so probing
// cannot leak device memory or disturb the engine's memory baseline.
func (e *Engine) probeDevice(id device.ID) bool {
	d, err := e.rt.Device(id)
	if err != nil {
		return false
	}
	const n = 64
	in := vec.FromInt32(make([]int32, n))
	buf, t, err := d.PlaceData(in, d.CopyEngine().Avail())
	if err != nil {
		return false
	}
	defer d.DeleteMemory(buf)
	bm, t2, err := d.PrepareMemory(vec.Bits, n, t)
	if err != nil {
		return false
	}
	defer d.DeleteMemory(bm)
	end, err := d.Execute(device.ExecRequest{
		Kernel: "filter_bitmap_i32",
		Args:   []devmem.BufferID{buf, bm},
		Params: []int64{int64(kernels.CmpGe), 0, 0},
	}, t2)
	if err != nil {
		return false
	}
	out := vec.FromInt32(make([]int32, n))
	if _, err := d.RetrieveData(buf, 0, n, out, end); err != nil {
		return false
	}
	return true
}
