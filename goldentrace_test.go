package adamant_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	adamant "github.com/adamant-db/adamant"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// update regenerates the golden trace files instead of diffing against
// them: go test -run TestGoldenTraces -update ./...
var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenModels maps the filename slug of every execution model.
var goldenModels = []struct {
	slug  string
	model exec.Model
}{
	{"oaat", exec.OperatorAtATime},
	{"chunked", exec.Chunked},
	{"pipelined", exec.Pipelined},
	{"4p-chunked", exec.FourPhaseChunked},
	{"4p-pipelined", exec.FourPhasePipelined},
}

// goldenTrace runs one TPC-H query under one model on a fresh runtime and
// renders the canonical observability text: the ExplainAnalyze tree
// followed by the deterministic trace summary. Everything in it is derived
// from the virtual clock and seeded data, so the rendering is reproducible
// bit for bit.
func goldenTrace(t *testing.T, query string, model exec.Model) string {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	id, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	g, err := tpch.BuildQuery(query, ds, id)
	if err != nil {
		t.Fatal(err)
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Recorder: rec})
	if err != nil {
		t.Fatalf("%s under %v: %v", query, model, err)
	}
	var b strings.Builder
	exec.WriteAnalyze(&b, g, pipelines, res.Stats, rec.Spans())
	b.WriteString("\n")
	trace.WriteSummary(&b, rec.Spans())
	return b.String()
}

// diffLines reports the first line where got and want diverge, with a line
// of context, so a golden mismatch reads like a unified diff hunk.
func diffLines(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		gl, wl := "<EOF>", "<EOF>"
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl, wl)
		}
	}
	return "contents equal"
}

// TestTraceWarmEngineDeterminism: rendered traces are rebased to the trace
// epoch, so running the same plan twice on ONE engine — whose device
// timelines have already advanced past the first query — yields identical
// summary and Chrome renderings, not just on fresh runtimes.
func TestTraceWarmEngineDeterminism(t *testing.T) {
	eng := adamant.NewEngine()
	gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int32, 4096)
	for i := range vals {
		vals[i] = int32(i % 100)
	}
	render := func() (string, string) {
		plan := eng.NewPlan().On(gpu)
		col := plan.ScanInt32("v", vals)
		kept := plan.Materialize(col, plan.Filter(col, adamant.Lt, 30))
		plan.Return("sum", plan.SumInt64(plan.CastInt64(kept)))
		rec := adamant.NewTraceRecorder()
		if _, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Pipelined, ChunkElems: 1024, Recorder: rec}); err != nil {
			t.Fatal(err)
		}
		var chrome, sum strings.Builder
		if err := rec.WriteChrome(&chrome); err != nil {
			t.Fatal(err)
		}
		rec.WriteSummary(&sum)
		return chrome.String(), sum.String()
	}
	c1, s1 := render()
	c2, s2 := render()
	if s1 != s2 {
		t.Errorf("warm-engine summary drifts:\n%s", diffLines(s2, s1))
	}
	if c1 != c2 {
		t.Errorf("warm-engine Chrome trace drifts:\n%s", diffLines(c2, c1))
	}
}

// TestGoldenTraceOOMDegrade pins the observability rendering of a query
// that degrades all the way down: permanent OOM pressure on the GPU walks
// Q6's chunk size from 512 to the 64-element floor and then re-places the
// query onto the host CPU. The golden file shows every rung of the ladder
// as a degrade span; the engine-span durations still sum exactly to the
// query's KernelTime + TransferTime + OverheadTime, so degraded attempts
// stay fully accounted for.
func TestGoldenTraceOOMDegrade(t *testing.T) {
	run := func() (string, *exec.Result, []trace.Span) {
		ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		rt := hub.NewRuntime()
		plan := &fault.Plan{POOM: 1.0, Devices: []string{"cuda"}}
		gpu, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
		if err != nil {
			t.Fatal(err)
		}
		g, err := tpch.BuildQuery("Q6", ds, gpu)
		if err != nil {
			t.Fatal(err)
		}
		pipelines, err := g.BuildPipelines()
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		res, err := exec.Run(rt, g, exec.Options{
			Model:            exec.Chunked,
			ChunkElems:       512,
			MinChunkElems:    64,
			AdaptiveChunking: true,
			FallbackDevice:   &fb,
			Recorder:         rec,
		})
		if err != nil {
			t.Fatalf("degraded Q6: %v", err)
		}
		var b strings.Builder
		exec.WriteAnalyze(&b, g, pipelines, res.Stats, rec.Spans())
		b.WriteString("\n")
		trace.WriteSummary(&b, rec.Spans())
		return b.String(), res, rec.Spans()
	}

	got, res, spans := run()
	if again, _, _ := run(); again != got {
		t.Fatalf("degraded trace not deterministic across two runs:\n%s", diffLines(again, got))
	}

	// The full ladder is visible: three halvings, then the host re-place.
	for _, step := range []string{
		"degrade: chunk 512->256",
		"degrade: chunk 256->128",
		"degrade: chunk 128->64",
		"degrade: re-place",
	} {
		if !strings.Contains(got, step) {
			t.Errorf("rendering lacks %q:\n%s", step, got)
		}
	}
	var engineSum vclock.Duration
	for _, s := range spans {
		if s.Kind.Engine() {
			engineSum += s.End.Sub(s.Start)
		}
	}
	if want := res.Stats.KernelTime + res.Stats.TransferTime + res.Stats.OverheadTime; engineSum != want {
		t.Errorf("engine spans sum to %v, Stats say %v: degraded attempts leak from the accounting", engineSum, want)
	}

	path := filepath.Join("testdata", "traces", "Q6-oom-degrade.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run: go test -run TestGoldenTraceOOMDegrade -update .): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s (re-bless with -update if intended):\n%s",
			path, diffLines(got, string(want)))
	}
}

// TestGoldenTraces pins the ExplainAnalyze and trace-summary renderings of
// TPC-H Q3, Q4 and Q6 under every execution model against golden files.
// Each combination renders twice on fresh runtimes and must be
// byte-identical — the determinism the golden files rely on.
func TestGoldenTraces(t *testing.T) {
	for _, query := range []string{"Q3", "Q4", "Q6"} {
		for _, m := range goldenModels {
			name := fmt.Sprintf("%s-%s", query, m.slug)
			t.Run(name, func(t *testing.T) {
				got := goldenTrace(t, query, m.model)
				if again := goldenTrace(t, query, m.model); again != got {
					t.Fatalf("trace of %s not deterministic across two runs:\n%s",
						name, diffLines(again, got))
				}
				path := filepath.Join("testdata", "traces", name+".txt")
				if *update {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run: go test -run TestGoldenTraces -update .): %v", err)
				}
				if got != string(want) {
					t.Errorf("golden mismatch for %s (re-bless with -update if intended):\n%s",
						path, diffLines(got, string(want)))
				}
			})
		}
	}
}
