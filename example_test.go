package adamant_test

import (
	"fmt"

	adamant "github.com/adamant-db/adamant"
)

// ExampleEngine_Execute builds a filter-and-sum plan against a plugged GPU
// and runs it chunked.
func ExampleEngine_Execute() {
	eng := adamant.NewEngine()
	gpu, _ := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)

	values := []int32{5, 12, 7, 30, 2, 18}
	plan := eng.NewPlan().On(gpu)
	col := plan.ScanInt32("v", values)
	keep := plan.Filter(col, adamant.Ge, 10)
	plan.Return("total", plan.SumInt64(plan.CastInt64(plan.Materialize(col, keep))))

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Int64("total")[0])
	// Output: 60
}

// ExampleEngine_Query runs SQL with an IN-subquery semi-join through the
// front-end.
func ExampleEngine_Query() {
	eng := adamant.NewEngine()
	gpu, _ := eng.Plug(adamant.A100, adamant.CUDA)

	orders := adamant.NewTable("orders", 5)
	orders.AddInt32("amount", []int32{10, 25, 40, 55, 70})
	orders.AddInt32("cust", []int32{1, 2, 3, 1, 2})
	vip := adamant.NewTable("vip", 2)
	vip.AddInt32("id", []int32{1, 2})
	cat := adamant.NewCatalog(orders, vip)

	res, err := eng.Query(cat, gpu, `
		SELECT SUM(amount) AS total, COUNT(*) AS n
		FROM orders WHERE cust IN (SELECT id FROM vip)`, adamant.QueryOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Int64("total")[0], res.Int64("n")[0])
	// Output: 160 4
}

// ExamplePlan_Explain shows the pipeline structure the runtime will
// execute, with pipeline breakers marked.
func ExamplePlan_Explain() {
	eng := adamant.NewEngine()
	gpu, _ := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)

	plan := eng.NewPlan().On(gpu)
	keys := plan.ScanInt32("build_keys", []int32{1, 2, 3})
	set := plan.BuildKeySet(keys, 3)
	probe := plan.ScanInt32("probe_keys", []int32{2, 3, 4})
	plan.Return("hits", plan.CountBits(plan.ExistsIn(probe, set)))

	out, _ := plan.Explain()
	fmt.Print(out)
	// Output:
	// pipeline 0 — 3 rows
	//   scan build_keys
	//   HASH_BUILD[build set] †
	// pipeline 1 (after [0]) — 3 rows
	//   scan probe_keys
	//   FILTER_BITMAP[exists]
	//   AGG_BLOCK[count] †
	// returns: hits
}
