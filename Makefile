
# Tier-1 gate: everything CI runs, in order. The race detector is part of
# the gate — the engine promises safe concurrent use, so every test also
# runs under -race.
.PHONY: ci vet build test race bench

ci: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem .
