
# Tier-1 gate: everything CI runs, in order. The race detector is part of
# the gate — the engine promises safe concurrent use, so every test also
# runs under -race. The fuzz smoke gives each front-end fuzz target a short
# budget so regressions in the never-panic contract surface in CI, and the
# coverage step enforces a floor on the packages the fault/degradation
# contract lives in.
.PHONY: ci vet build test race bench bench-cache bench-fuse bench-auto bench-shard bench-profile fuzz cover serve

ci: vet build race fuzz cover

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fuzz:
	go test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s ./internal/sql
	go test -run '^$$' -fuzz '^FuzzLex$$' -fuzztime 10s ./internal/sql
	go test -run '^$$' -fuzz '^FuzzReadCatalog$$' -fuzztime 10s ./internal/cost

cover:
	./scripts/cover.sh

bench:
	go test -bench=. -benchmem .

# Buffer-pool cold/warm tables (EXPERIMENTS.md "Hot vs. cold"); regenerates
# BENCH_PR6.json at the full profile.
bench-cache:
	go run ./cmd/adamant-bench -exp cache -json BENCH_PR6.json

# Fused-vs-unfused Q6 tables (EXPERIMENTS.md "Operator fusion");
# regenerates BENCH_PR7.json at the full profile.
bench-fuse:
	go run ./cmd/adamant-bench -exp fuse -json BENCH_PR7.json

# Auto-planner cold/warm vs the manual (driver, model) matrix
# (EXPERIMENTS.md "Auto planning"); regenerates BENCH_PR8.json at the full
# profile.
bench-auto:
	go run ./cmd/adamant-bench -exp auto -json BENCH_PR8.json

# Sharded scale-out and straggler-hedging tables (EXPERIMENTS.md
# "Scale-out"); regenerates BENCH_PR9.json at the full profile.
bench-shard:
	go run ./cmd/adamant-bench -exp shard -json BENCH_PR9.json

# Fleet-profiler overhead on the concurrent-throughput workload
# (EXPERIMENTS.md "Profiler overhead"); regenerates BENCH_PR10.json at the
# full profile.
bench-profile:
	go run ./cmd/adamant-bench -exp profile -json BENCH_PR10.json

# Telemetry service: Q6 over a telemetry-armed engine, with /metrics,
# /events, /flight, /util and /run?n=K on port 9464.
serve:
	go run ./cmd/adamant-run -serve 127.0.0.1:9464 -ratio 0.002
