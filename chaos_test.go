package adamant

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The chaos soak: a wall-clock-bounded storm of randomized engines, plans,
// fault schedules, deadlines, and cancellations running concurrently. The
// invariant is the same as the differential harness's, under concurrency:
// every query either succeeds or fails with an acceptable typed error,
// device memory always returns to baseline, and no goroutines leak.

// chaosAcceptable reports whether err is an outcome the resilience layer is
// allowed to produce under injected chaos.
func chaosAcceptable(err error) bool {
	if err == nil {
		return true
	}
	var lost *DeviceLostError
	return errors.Is(err, ErrInjected) ||
		errors.Is(err, ErrAdmission) ||
		errors.Is(err, ErrDeadline) ||
		errors.As(err, &lost) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

func TestChaosSoak(t *testing.T) {
	const (
		soak     = 2 * time.Second
		perRound = 6 // concurrent queries per engine round
	)
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(0xC0FFEE))
	start := time.Now()
	var rounds, queries int

	for time.Since(start) < soak {
		rounds++
		drv := harnessDrivers[rng.Intn(len(harnessDrivers))]
		plan := harnessFaultPlan(rng.Intn(1000), drv)
		eng := NewEngine(
			WithFaultPlan(plan),
			WithRetryPolicy(RetryPolicy{MaxRetries: 2}),
			WithFallbackDevice(DeviceID(1)),
			WithAdaptiveChunking(64),
			WithHealthPolicy(HealthPolicy{}),
			WithMaxConcurrent(2),
		)
		if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
			t.Fatalf("plug %s: %v", drv.name, err)
		}
		if _, err := eng.Plug(drv.fbHW, drv.fbSDK); err != nil {
			t.Fatalf("plug fallback: %v", err)
		}

		var wg sync.WaitGroup
		for q := 0; q < perRound; q++ {
			seed := rng.Int63n(1 << 20)
			model := harnessModels[rng.Intn(len(harnessModels))]
			opts := ExecOptions{Model: model, ChunkElems: 256}
			if rng.Intn(3) == 0 {
				// A tight virtual deadline: some of these shed or trip.
				opts.Deadline = time.Duration(1+rng.Intn(500)) * time.Microsecond
			}
			ctx, cancel := context.WithCancel(context.Background())
			if rng.Intn(4) == 0 {
				// A racing canceller, sometimes before the query even starts.
				delay := time.Duration(rng.Intn(300)) * time.Microsecond
				time.AfterFunc(delay, cancel)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer cancel()
				p := buildHarnessPlan(eng, seed)
				if _, err := eng.ExecuteContext(ctx, p, opts); !chaosAcceptable(err) {
					t.Errorf("chaos: unacceptable error: %v", err)
				}
			}()
			queries++
		}
		wg.Wait()
		checkMemBaseline(t, eng, "chaos round")
	}

	// Everything launched above must have unwound: allow the runtime a
	// moment to retire exiting goroutines, then compare against the
	// pre-soak count.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before soak, %d after\n%s",
			baseGoroutines, n, buf[:runtime.Stack(buf, true)])
	}
	t.Logf("chaos soak: %d rounds, %d queries in %v", rounds, queries, time.Since(start).Round(time.Millisecond))
}

// shardChaosAcceptable adds the shard-loss sentinel to the acceptable
// outcomes: a scattered query that cannot recover a partition surfaces
// ErrShardLost instead of a device-level loss.
func shardChaosAcceptable(err error) bool {
	return chaosAcceptable(err) || errors.Is(err, ErrShardLost)
}

// TestShardChaosSoak is the scatter/gather concurrency soak: randomized
// sharded engines (fleet size, hedging, loss mode, fault schedules) run
// storms of concurrent queries with racing cancellers and tight deadlines.
// Hedged races, failovers and losses must only ever produce a baseline
// answer, an explicitly flagged partial, or a typed error — and after
// draining, memory returns to baseline on every shard with no goroutine
// leak.
func TestShardChaosSoak(t *testing.T) {
	const (
		soak     = 2 * time.Second
		perRound = 6
	)
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(0x5AAD))
	start := time.Now()
	var rounds, queries int

	for time.Since(start) < soak {
		rounds++
		drv := harnessDrivers[rng.Intn(len(harnessDrivers))]
		plan := harnessFaultPlan(rng.Intn(1000), drv)
		opts := []EngineOption{
			WithShards(2 + rng.Intn(5)),
			WithFaultPlan(plan),
			WithRetryPolicy(RetryPolicy{MaxRetries: 2}),
			WithFallbackDevice(DeviceID(1)),
			WithAdaptiveChunking(64),
			WithHealthPolicy(HealthPolicy{}),
			WithMaxConcurrent(2),
		}
		if rng.Intn(2) == 0 {
			opts = append(opts, WithShardHedging(ShardHedgePolicy{
				MinDelay: time.Millisecond,
				Poll:     200 * time.Microsecond,
			}))
		}
		if rng.Intn(2) == 0 {
			opts = append(opts, WithShardLoss(ShardLossPartial))
		}
		if rng.Intn(3) == 0 {
			opts = append(opts, WithShardFailovers(rng.Intn(3)-1))
		}
		eng := NewEngine(opts...)
		if _, err := eng.Plug(drv.hw, drv.sdk); err != nil {
			t.Fatalf("plug %s: %v", drv.name, err)
		}
		if _, err := eng.Plug(drv.fbHW, drv.fbSDK); err != nil {
			t.Fatalf("plug fallback: %v", err)
		}

		var wg sync.WaitGroup
		for q := 0; q < perRound; q++ {
			seed := rng.Int63n(1 << 20)
			model := harnessModels[rng.Intn(len(harnessModels))]
			execOpts := ExecOptions{Model: model, ChunkElems: 256}
			if rng.Intn(3) == 0 {
				execOpts.Deadline = time.Duration(1+rng.Intn(500)) * time.Microsecond
			}
			ctx, cancel := context.WithCancel(context.Background())
			if rng.Intn(4) == 0 {
				delay := time.Duration(rng.Intn(300)) * time.Microsecond
				time.AfterFunc(delay, cancel)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer cancel()
				p := buildHarnessPlan(eng, seed)
				if _, err := eng.ExecuteContext(ctx, p, execOpts); !shardChaosAcceptable(err) {
					t.Errorf("shard chaos: unacceptable error: %v", err)
				}
			}()
			queries++
		}
		wg.Wait()
		checkShardMemBaseline(t, eng, "shard chaos round")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutine leak: %d before soak, %d after\n%s",
			baseGoroutines, n, buf[:runtime.Stack(buf, true)])
	}
	t.Logf("shard chaos soak: %d rounds, %d queries in %v", rounds, queries, time.Since(start).Round(time.Millisecond))
}
