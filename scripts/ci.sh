#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make.
set -e
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
# The concurrency/resilience chaos soak must always run race-enabled, even
# if the line above is ever narrowed or switched to -short.
go test -race -run '^TestChaosSoak$' .
# Likewise the telemetry balance test: concurrent queries + scrapes over
# one engine is the data-race surface of the observability layer.
go test -race -run '^TestTelemetryRaceBalance$' .
# The shard chaos soak likewise: hedged races, failover and loss draining
# concurrently over one coordinator is the data-race surface of scatter/
# gather, so it runs race-enabled even if the blanket line is narrowed.
go test -race -run '^TestShardChaosSoak$' .
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/sql
go test -run '^$' -fuzz '^FuzzLex$' -fuzztime 10s ./internal/sql
go test -run '^$' -fuzz '^FuzzReadCatalog$' -fuzztime 10s ./internal/cost

# Golden-trace determinism: the same Q6 run must serialise to a
# byte-identical Chrome trace across two fresh processes. (The golden
# files under testdata/traces/ assert the same within one process; this
# catches map-iteration or address-dependent ordering leaking into the
# export path.)
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/adamant-run -q Q6 -ratio 0.000244140625 -model 4p-pipelined \
	-trace "$tracedir/a.json" >/dev/null
go run ./cmd/adamant-run -q Q6 -ratio 0.000244140625 -model 4p-pipelined \
	-trace "$tracedir/b.json" >/dev/null
cmp "$tracedir/a.json" "$tracedir/b.json" || {
	echo "ci: Q6 trace not byte-identical across two runs" >&2
	exit 1
}
echo "ci: golden-trace determinism OK ($(wc -c <"$tracedir/a.json") bytes)"

# Telemetry service smoke: boot `adamant-run -serve` on an ephemeral port,
# scrape /metrics, and validate the Prometheus text exposition line by
# line. Built as a binary (not `go run`) so the PID we kill is the server.
go build -o "$tracedir/adamant-run" ./cmd/adamant-run
"$tracedir/adamant-run" -serve 127.0.0.1:0 -ratio 0.000244140625 -serve-warm 2 \
	-slo 100ms:0.99 >"$tracedir/serve.log" 2>&1 &
servepid=$!
addr=
i=0
while [ $i -lt 50 ]; do
	addr=$(awk '/^serving on /{print $3; exit}' "$tracedir/serve.log")
	[ -n "$addr" ] && break
	kill -0 "$servepid" 2>/dev/null || break
	sleep 0.2
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "ci: adamant-run -serve did not come up" >&2
	cat "$tracedir/serve.log" >&2
	exit 1
fi
curl -fsS "http://$addr/metrics" >"$tracedir/metrics.txt"
curl -fsS "http://$addr/events" >/dev/null
curl -fsS "http://$addr/flight" >/dev/null
curl -fsS "http://$addr/profile" >"$tracedir/profile.txt"
curl -fsS "http://$addr/slo" >"$tracedir/slo.json"
kill "$servepid" 2>/dev/null || true
wait "$servepid" 2>/dev/null || true
grep -q '^profile: [0-9]* queries' "$tracedir/profile.txt" || {
	echo "ci: /profile missing the ledger header" >&2
	exit 1
}
grep -q '"enabled": true' "$tracedir/slo.json" || {
	echo "ci: /slo not enabled despite -slo" >&2
	exit 1
}
echo "ci: /profile and /slo endpoints OK"
grep -q 'adamant_queries_total{' "$tracedir/metrics.txt" || {
	echo "ci: /metrics missing adamant_queries_total" >&2
	exit 1
}
awk '
/^#[ ]HELP /	{ next }
/^#[ ]TYPE /	{ next }
/^$/		{ next }
!/^[a-zA-Z_:][a-zA-Z0-9_:]*([{][^}]*[}])? -?[0-9][0-9eE.+-]*$/ {
	print "ci: bad exposition line: " $0; bad = 1
}
END { exit bad }
' "$tracedir/metrics.txt"
echo "ci: /metrics exposition OK ($(grep -vc '^#' "$tracedir/metrics.txt") series)"

# Warm-cache golden trace: a pooled repeat of Q6 must serialise with zero
# base-column h2d spans (the refactored transfer path), pinned against
# testdata/traces/Q6-warm-cache.txt.
go test -run '^TestGoldenTraceWarmCacheQ6$' .
echo "ci: warm-cache golden trace OK"

# Buffer-pool cold/warm smoke: the quick cache experiment must report a
# cold phase and a warm phase, and the warm phase must ship zero H2D
# bytes for at least one model.
go run ./cmd/adamant-bench -exp cache -quick -json "$tracedir/cache.json" >/dev/null
for phase in cold warm; do
	grep -q "\"phase\": \"$phase\"" "$tracedir/cache.json" || {
		echo "ci: cache bench emitted no $phase-phase records" >&2
		exit 1
	}
done
echo "ci: cache bench cold/warm smoke OK"

# Fused golden traces: fused Q6/Q3 traces must stay pinned against
# testdata/traces/*-fuse-*.txt, and the fused Q6 chain must show zero
# intermediate alloc/free spans.
go test -run '^TestGoldenTraceFused' .
echo "ci: fused golden traces OK"

# Fusion smoke: the quick fuse experiment must report an unfused phase and
# a fused phase.
go run ./cmd/adamant-bench -exp fuse -quick -json "$tracedir/fuse.json" >/dev/null
for phase in unfused fused; do
	grep -q "\"phase\": \"$phase\"" "$tracedir/fuse.json" || {
		echo "ci: fuse bench emitted no $phase-phase records" >&2
		exit 1
	}
done
echo "ci: fuse bench unfused/fused smoke OK"

# Auto-mode golden traces: calibration, planning and the decision spans
# must stay pinned against testdata/traces/*-auto-*.txt.
go test -run '^TestGoldenTraceAuto' .
echo "ci: auto golden traces OK"

# Auto-mode smoke: -auto must calibrate, print its plan, and answer
# correctly end to end.
"$tracedir/adamant-run" -q Q6 -ratio 0.000244140625 -auto >"$tracedir/auto.txt"
grep -q '^auto plan: model=' "$tracedir/auto.txt" || {
	echo "ci: adamant-run -auto printed no plan" >&2
	exit 1
}
echo "ci: adamant-run -auto smoke OK"

# Auto experiment smoke: the quick auto sweep must report the manual
# matrix plus cold- and warm-catalog auto phases.
go run ./cmd/adamant-bench -exp auto -quick -json "$tracedir/auto.json" >/dev/null
for phase in manual cold warm; do
	grep -q "\"phase\": \"$phase\"" "$tracedir/auto.json" || {
		echo "ci: auto bench emitted no $phase-phase records" >&2
		exit 1
	}
done
echo "ci: auto bench manual/cold/warm smoke OK"

# Shard experiment smoke: the quick scale-out sweep must report cold, warm
# and straggler phases, and throughput must grow from 1 to 4 shards.
go run ./cmd/adamant-bench -exp shard -quick -json "$tracedir/shard.json" >/dev/null
for phase in cold warm straggler; do
	grep -q "\"phase\": \"$phase\"" "$tracedir/shard.json" || {
		echo "ci: shard bench emitted no $phase-phase records" >&2
		exit 1
	}
done
echo "ci: shard bench cold/warm/straggler smoke OK"

# Sharded CLI smoke: scattered Q6 must reproduce the unsharded revenue.
"$tracedir/adamant-run" -q Q6 -ratio 0.000244140625 -shards 4 >"$tracedir/sharded.txt"
"$tracedir/adamant-run" -q Q6 -ratio 0.000244140625 >"$tracedir/unsharded.txt"
rev_sharded=$(awk -F= '/revenue=/{print $2; exit}' "$tracedir/sharded.txt")
rev_unsharded=$(awk -F= '/revenue=/{print $2; exit}' "$tracedir/unsharded.txt")
if [ -z "$rev_sharded" ] || [ "$rev_sharded" != "$rev_unsharded" ]; then
	echo "ci: sharded Q6 revenue $rev_sharded != unsharded $rev_unsharded" >&2
	exit 1
fi
echo "ci: sharded CLI Q6 matches unsharded ($rev_sharded)"

# Profiler CLI smoke: a repeated profiled Q6 must print the ledger with
# every repetition folded in and the SLO line tracking all of them.
"$tracedir/adamant-run" -q Q6 -ratio 0.000244140625 -profile -repeat 3 \
	-slo 1s:0.99 >"$tracedir/profile-cli.txt"
grep -q '^profile: 3 queries' "$tracedir/profile-cli.txt" || {
	echo "ci: adamant-run -profile did not fold 3 queries" >&2
	exit 1
}
grep -q '^slo: target 1s' "$tracedir/profile-cli.txt" || {
	echo "ci: adamant-run -slo printed no SLO line" >&2
	exit 1
}
echo "ci: adamant-run -profile smoke OK"

# Profiler overhead smoke: the quick profile experiment must report the
# profiler-off and profiler-on phases.
go run ./cmd/adamant-bench -exp profile -quick -json "$tracedir/profile.json" >/dev/null
for phase in off on; do
	grep -q "\"phase\": \"$phase\"" "$tracedir/profile.json" || {
		echo "ci: profile bench emitted no $phase-phase records" >&2
		exit 1
	}
done
echo "ci: profile bench off/on smoke OK"

./scripts/cover.sh
