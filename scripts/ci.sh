#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make.
set -e
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/sql
go test -run '^$' -fuzz '^FuzzLex$' -fuzztime 10s ./internal/sql
./scripts/cover.sh
