#!/bin/sh
# Tier-1 gate, mirroring `make ci` for environments without make.
set -e
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
# The concurrency/resilience chaos soak must always run race-enabled, even
# if the line above is ever narrowed or switched to -short.
go test -race -run '^TestChaosSoak$' .
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 10s ./internal/sql
go test -run '^$' -fuzz '^FuzzLex$' -fuzztime 10s ./internal/sql

# Golden-trace determinism: the same Q6 run must serialise to a
# byte-identical Chrome trace across two fresh processes. (The golden
# files under testdata/traces/ assert the same within one process; this
# catches map-iteration or address-dependent ordering leaking into the
# export path.)
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/adamant-run -q Q6 -ratio 0.000244140625 -model 4p-pipelined \
	-trace "$tracedir/a.json" >/dev/null
go run ./cmd/adamant-run -q Q6 -ratio 0.000244140625 -model 4p-pipelined \
	-trace "$tracedir/b.json" >/dev/null
cmp "$tracedir/a.json" "$tracedir/b.json" || {
	echo "ci: Q6 trace not byte-identical across two runs" >&2
	exit 1
}
echo "ci: golden-trace determinism OK ($(wc -c <"$tracedir/a.json") bytes)"

./scripts/cover.sh
