#!/bin/sh
# Coverage floor for the packages that carry the fault/degradation and
# front-end contracts. The floor is deliberately below current coverage —
# it catches wholesale test deletion and untested rewrites, not noise.
set -e
cd "$(dirname "$0")/.."

floor() {
	pkg=$1
	min=$2
	pct=$(go test -cover "$pkg" | awk '/coverage:/ { sub("%", "", $(NF-2)); print $(NF-2) }')
	if [ -z "$pct" ]; then
		echo "cover: no coverage figure for $pkg" >&2
		exit 1
	fi
	ok=$(awk -v p="$pct" -v m="$min" 'BEGIN { print (p >= m) ? 1 : 0 }')
	if [ "$ok" != 1 ]; then
		echo "cover: $pkg at ${pct}%, below the ${min}% floor" >&2
		exit 1
	fi
	echo "cover: $pkg ${pct}% (floor ${min}%)"
}

floor ./internal/fault 60
floor ./internal/exec 80
floor ./internal/sql 80
floor ./internal/devmem 90
floor ./internal/trace 85
floor ./internal/telemetry 85
floor ./internal/bufpool 85
floor ./internal/graph 85
floor ./internal/cost 85
floor ./internal/profile 85
