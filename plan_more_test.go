package adamant_test

import (
	"strings"
	"testing"

	adamant "github.com/adamant-db/adamant"
)

// TestJoinPairsAndGather exercises the HASH_PROBE join-pair path through
// the public API: build an index over unique keys, probe with a key
// column, and gather the probe-side payloads by the join's left positions.
func TestJoinPairsAndGather(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	buildKeys := []int32{10, 20, 30, 40}
	probeKeys := make([]int32, 400)
	payload := make([]int32, 400)
	var want int64
	for i := range probeKeys {
		probeKeys[i] = int32((i % 8) * 10) // 0,10,..70: half match
		payload[i] = int32(i)
		if probeKeys[i] >= 10 && probeKeys[i] <= 40 {
			want += int64(payload[i])
		}
	}

	plan := eng.NewPlan().On(gpu)
	bk := plan.ScanInt32("build", buildKeys)
	index := plan.BuildKeyIndex(bk, len(buildKeys))

	pk := plan.ScanInt32("probe", probeKeys)
	pay := plan.ScanInt32("payload", payload)
	left, right := plan.JoinPairs(pk, index, 1.0)
	_ = right // build-side row positions, unused here
	matched := plan.Gather(pay, left)
	plan.Return("sum", plan.SumInt64(plan.CastInt64(matched)))

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.OperatorAtATime})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("sum")[0]; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

// TestMinMaxOrFilterCols covers the remaining plan operators.
func TestMinMaxOrFilterCols(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	a := []int32{5, -3, 9, 120, 7}
	b := []int32{6, -3, 2, 100, 9}

	plan := eng.NewPlan().On(gpu)
	ca := plan.ScanInt32("a", a)
	cb := plan.ScanInt32("b", b)

	// a < b OR a == 120.
	keep := plan.Or(plan.FilterCols(ca, cb, adamant.Lt), plan.Filter(ca, adamant.Eq, 120))
	kept := plan.CastInt64(plan.Materialize(ca, keep)) // 5, -3? a<b: 5<6 yes, -3<-3 no, 9<2 no, 120<100 no(+eq ✓), 7<9 yes
	plan.Return("min", plan.MinInt64(kept))
	plan.Return("max", plan.MaxInt64(kept))
	plan.Return("count", plan.CountBits(keep))

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.Chunked, ChunkElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("min")[0]; got != 5 {
		t.Errorf("min = %d, want 5", got)
	}
	if got := res.Int64("max")[0]; got != 120 {
		t.Errorf("max = %d, want 120", got)
	}
	if got := res.Int64("count")[0]; got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

// TestScanInt64AndMulComplement covers the int64 scan path and the fused
// complement multiply.
func TestScanInt64AndMulComplement(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	price := []int32{100, 200, 300}
	disc := []int32{10, 20, 30}
	weights := []int64{2, 3, 4}

	plan := eng.NewPlan().On(gpu)
	cp := plan.ScanInt32("price", price)
	cd := plan.ScanInt32("disc", disc)
	cw := plan.ScanInt64("weights", weights)
	plan.Return("wmax", plan.MaxInt64(cw))
	rev := plan.MulComplement(cp, cd, 100)
	plan.Return("rev", plan.SumInt64(rev))

	res, err := eng.Execute(plan, adamant.ExecOptions{Model: adamant.OperatorAtATime})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(100*90 + 200*80 + 300*70)
	if got := res.Int64("rev")[0]; got != want {
		t.Errorf("rev = %d, want %d", got, want)
	}
	if got := res.Int64("wmax")[0]; got != 4 {
		t.Errorf("wmax = %d, want 4", got)
	}
}

func TestResultAccessors(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	plan := eng.NewPlan().On(gpu)
	c := plan.ScanInt32("c", []int32{1, 2, 3})
	f := plan.Filter(c, adamant.Ge, 2)
	plan.Return("kept", plan.Materialize(c, f))

	res, err := eng.Execute(plan, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cols := res.Columns(); len(cols) != 1 || cols[0] != "kept" {
		t.Errorf("columns = %v", cols)
	}
	if res.Len("kept") != 2 || res.Len("missing") != 0 {
		t.Errorf("lengths: kept=%d missing=%d", res.Len("kept"), res.Len("missing"))
	}
	if got := res.Int32("kept"); got[0] != 2 || got[1] != 3 {
		t.Errorf("kept = %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Int64 of missing column must panic")
			}
		}()
		res.Int64("missing")
	}()
	s := res.Stats()
	if s.Elapsed <= 0 || s.Launches == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFootprintAccessor(t *testing.T) {
	eng, gpu := engineWithGPU(t)
	plan := eng.NewPlan().On(gpu)
	c := plan.ScanInt32("c", []int32{1, 2, 3, 4})
	plan.Return("sum", plan.SumInt64(plan.CastInt64(c)))
	res, err := eng.Execute(plan, adamant.ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	fp := res.Footprint()
	if len(fp) == 0 || fp[0].Label == "" {
		t.Errorf("footprint = %v", fp)
	}
}

func TestPlugCustom(t *testing.T) {
	eng := adamant.NewEngine()

	// Host-resident custom device through OpenCL.
	cpu, err := eng.PlugCustom(adamant.CustomSpec{Name: "soft-cpu", HostResident: true, SDK: adamant.OpenCL})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults fill in for a GPU-class device.
	gpu, err := eng.PlugCustom(adamant.CustomSpec{SDK: adamant.OpenMP})
	if err == nil {
		t.Error("OpenMP on a GPU-class custom device should fail")
	}
	gpu, err = eng.PlugCustom(adamant.CustomSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PlugCustom(adamant.CustomSpec{SDK: adamant.SDK(9)}); err == nil {
		t.Error("unknown SDK accepted")
	}

	devs := eng.Devices()
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	if !strings.Contains(devs[0].Name, "soft-cpu") || !devs[0].HostResident {
		t.Errorf("custom cpu = %+v", devs[0])
	}

	// The custom devices execute plans.
	plan := eng.NewPlan().On(cpu)
	c := plan.ScanInt32("c", []int32{3, 1, 4})
	plan.Return("max", plan.MaxInt64(plan.CastInt64(c)))
	plan.On(gpu) // no-op switch back and forth exercises On
	plan.On(cpu)
	res, err := eng.Execute(plan, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Int64("max")[0] != 4 {
		t.Error("custom device computed wrong result")
	}
}

func TestHardwareAndSDKStrings(t *testing.T) {
	for _, h := range []adamant.Hardware{adamant.RTX2080Ti, adamant.A100, adamant.GTX1050, adamant.GTX1080, adamant.CoreI78700, adamant.XeonGold5220R} {
		if h.String() == "" || strings.HasPrefix(h.String(), "hardware(") {
			t.Errorf("hardware %d has no name", h)
		}
	}
	if adamant.Hardware(99).String() != "hardware(99)" {
		t.Error("unknown hardware diagnostic")
	}
	for s, want := range map[adamant.SDK]string{adamant.CUDA: "CUDA", adamant.OpenCL: "OpenCL", adamant.OpenMP: "OpenMP"} {
		if s.String() != want {
			t.Errorf("sdk %d = %s", s, s.String())
		}
	}
	if adamant.Between.String() != "between" || adamant.Ne.String() != "<>" {
		t.Error("cmp op strings")
	}
	if _, err := adamant.NewEngine().Plug(adamant.Hardware(99), adamant.CUDA); err == nil {
		t.Error("unknown hardware accepted")
	}
}

// TestFilterInt64Column filters a derived int64 column, covering the
// int64 FILTER_BITMAP variant through the public API.
func TestFilterInt64Column(t *testing.T) {
	eng, gpu := engineWithGPU(t)

	a := []int32{10, 20, 30, 40}
	b := []int32{10, 10, 10, 10}

	plan := eng.NewPlan().On(gpu)
	ca := plan.ScanInt32("a", a)
	cb := plan.ScanInt32("b", b)
	prod := plan.Mul(ca, cb) // 100, 200, 300, 400 as int64
	big := plan.Filter(prod, adamant.Ge, 250)
	plan.Return("n", plan.CountBits(big))

	res, err := eng.Execute(plan, adamant.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Int64("n")[0]; got != 2 {
		t.Errorf("n = %d, want 2", got)
	}
}
