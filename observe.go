package adamant

import (
	"context"
	"io"
	"sort"
	"strings"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/trace"
)

// TraceRecorder captures a per-operation execution trace of the queries it
// is attached to (via ExecOptions.Recorder): one span per simulated
// transfer, kernel launch, allocation, chunk and pipeline boundary, retry
// and failover, with virtual start/end times and device attribution.
// Recording does not perturb the simulation — virtual timings are identical
// with and without a recorder — and traces are deterministic: the same
// engine setup and queries produce byte-identical exports.
//
// A recorder may be reused across queries; spans accumulate. It is safe
// for concurrent use, but interleaving concurrent queries onto one
// recorder interleaves their spans.
type TraceRecorder struct {
	rec *trace.Recorder
}

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{rec: trace.NewRecorder()}
}

// internal returns the wrapped recorder, nil-safely.
func (t *TraceRecorder) internal() *trace.Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Len reports the number of spans recorded so far.
func (t *TraceRecorder) Len() int { return t.internal().Len() }

// WriteChrome exports the trace in Chrome trace_event JSON (load it at
// chrome://tracing or https://ui.perfetto.dev): one track per device
// engine plus an executor track for query/pipeline/chunk structure.
func (t *TraceRecorder) WriteChrome(w io.Writer) error {
	return trace.WriteChrome(w, t.internal().Spans())
}

// WriteSummary renders a compact deterministic text digest of the trace:
// the query envelope, per-pipeline chunk counts, and every operation group
// with counts, busy time and bytes moved.
func (t *TraceRecorder) WriteSummary(w io.Writer) {
	trace.WriteSummary(w, t.internal().Spans())
}

// MetricsSnapshot renders the engine's cumulative execution metrics as
// text: query/chunk/byte counters, virtual-time decomposition, degradation
// counts, an elapsed-time histogram, and per-device totals. Counters
// accumulate over the engine's lifetime across all sessions.
func (e *Engine) MetricsSnapshot() string {
	var rows []trace.DeviceRow
	for _, d := range e.rt.Devices() {
		st := d.Stats()
		rows = append(rows, trace.DeviceRow{
			Name:         d.Info().Name,
			Launches:     st.Launches,
			KernelTime:   st.KernelTime,
			TransferTime: st.TransferTime,
			OverheadTime: st.OverheadTime,
			H2DBytes:     st.H2DBytes,
			D2HBytes:     st.D2HBytes,
		})
	}
	// Sort by device name so the snapshot is stable regardless of the
	// order devices were plugged in.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	var b strings.Builder
	e.metrics.WriteSnapshot(&b, rows)
	return b.String()
}

// ExplainAnalyze executes the plan under the given options and renders the
// Explain tree annotated with measured execution detail: per-primitive
// virtual busy time, kernel launches, bytes moved, and actual result rows
// against the planner's estimates, with a totals line balancing the
// per-primitive sum against the run's statistics. It is ExplainAnalyzeContext
// with a background context.
func (p *Plan) ExplainAnalyze(e *Engine, opts ExecOptions) (string, error) {
	return p.ExplainAnalyzeContext(context.Background(), e, opts)
}

// ExplainAnalyzeContext is ExplainAnalyze honouring a context. When
// opts.Recorder is set it records the run's trace as usual, so one
// execution can yield both the analysis text and a trace export.
func (p *Plan) ExplainAnalyzeContext(ctx context.Context, e *Engine, opts ExecOptions) (string, error) {
	if err := p.err(); err != nil {
		return "", err
	}
	pipelines, err := p.g.BuildPipelines()
	if err != nil {
		return "", err
	}
	rec := opts.Recorder.internal()
	if rec == nil {
		rec = trace.NewRecorder()
	}
	mark := rec.Len()
	eopts := e.execOptions(opts, e.queryDeadline(opts))
	eopts.Recorder = rec
	res, err := e.runGraph(ctx, p.g, eopts, opts.Priority)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	exec.WriteAnalyze(&b, p.g, pipelines, res.Stats, rec.Spans()[mark:])
	return b.String(), nil
}
