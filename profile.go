package adamant

import (
	"encoding/json"
	"io"
	"time"

	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/vclock"
)

// ProfileConfig parameterizes the fleet profiler (see WithProfile). The
// zero value uses the documented defaults everywhere.
type ProfileConfig struct {
	// TopK bounds the leader tables in WriteProfile and the Prometheus
	// adamant_profile_* families (default 10).
	TopK int
	// MaxShapes bounds distinct (shape, tenant) ledger keys; overflow
	// folds into the reserved "~other" bucket (default 256).
	MaxShapes int
	// AnomalyFactor is the measured-vs-expected rate ratio counted as a
	// deviation (default 2.0).
	AnomalyFactor float64
	// AnomalySustain is how many consecutive deviations of one
	// (primitive, driver, bucket) fire a perf_anomaly event (default 3).
	AnomalySustain int
	// AnomalyMinSamples is the catalog sample count below which an entry
	// is untrained and never flags (default 8).
	AnomalyMinSamples int64
}

// profileTelemetry holds the profiler's Prometheus handles; values are
// copied from the ledger at scrape time (top-K bounded, so cardinality
// stays fixed no matter how diverse the workload).
type profileTelemetry struct {
	queries   *telemetry.Counter
	deviceNS  *telemetry.Counter
	bytes     *telemetry.Counter
	errors    *telemetry.Counter
	anomalies *telemetry.Counter
	sloGood   *telemetry.Counter
	sloTotal  *telemetry.Counter
	sloBurn   *telemetry.Gauge
	sloFiring *telemetry.Gauge
}

// WithProfile arms the fleet profiler: every finished query's span stream
// is folded into a per-(shape, tenant) resource ledger, anchored against
// a cost-catalog EWMA for anomaly detection, and exported through
// WriteProfile, the adamant_profile_* metric families, and the serve
// mode's /profile endpoint. Profiling implies telemetry: if WithTelemetry
// has not been called, it is armed with defaults. Like tracing and
// telemetry, profiling never perturbs execution, and the disabled state
// adds zero allocations to the query path.
func (e *Engine) WithProfile(cfg ProfileConfig) *Engine {
	if e.tele == nil {
		e.WithTelemetry(TelemetryConfig{})
	}
	e.prof = profile.New(profile.Config{
		TopK:              cfg.TopK,
		MaxShapes:         cfg.MaxShapes,
		AnomalyFactor:     cfg.AnomalyFactor,
		AnomalySustain:    cfg.AnomalySustain,
		AnomalyMinSamples: cfg.AnomalyMinSamples,
	})
	reg := e.tele.reg
	pt := &profileTelemetry{
		queries:   reg.Counter("adamant_profile_queries_total", "Queries folded into the profiler ledger, by plan shape and tenant (top-K by device time).", "shape", "tenant"),
		deviceNS:  reg.Counter("adamant_profile_device_ns", "Attributed device-busy virtual nanoseconds, by plan shape and tenant (top-K).", "shape", "tenant"),
		bytes:     reg.Counter("adamant_profile_bytes_total", "Attributed H2D+D2H bytes, by plan shape and tenant (top-K).", "shape", "tenant"),
		errors:    reg.Counter("adamant_profile_errors_total", "Errors plus admission sheds, by plan shape and tenant (top-K).", "shape", "tenant"),
		anomalies: reg.Counter("adamant_profile_anomalies_total", "Perf anomalies fired (sustained measured-vs-catalog rate deviations)."),
		sloGood:   reg.Counter("adamant_slo_good_total", "Queries meeting the SLO latency target without error."),
		sloTotal:  reg.Counter("adamant_slo_queries_total", "Queries evaluated against the SLO."),
		sloBurn:   reg.Gauge("adamant_slo_burn", "Current SLO burn rate, by evaluation window.", "window"),
		sloFiring: reg.Gauge("adamant_slo_burn_firing", "Whether the window's burn rate is above its alerting threshold (0/1).", "window"),
	}
	e.profTele = pt
	reg.OnScrape(func(*telemetry.Registry) { e.collectProfileTelemetry() })
	return e
}

// WithSLO attaches a latency service-level objective: a query is good
// when it finishes without error within target virtual time, and the
// objective is the goal fraction of good queries (e.g. 0.99). Burn rates
// are evaluated over a fast (5-minute, 5x threshold) and a slow (1-hour,
// 1.05x threshold) virtual-time window; a window crossing its threshold
// emits an slo_burn event and flips the adamant_slo_burn_firing gauge.
// WithSLO implies WithProfile (and so telemetry) with defaults when not
// already armed.
func (e *Engine) WithSLO(target time.Duration, objective float64) *Engine {
	if e.prof == nil {
		e.WithProfile(ProfileConfig{})
	}
	e.prof.SetSLO(profile.NewSLO(profile.SLOConfig{
		Target:    vclock.DurationOf(target),
		Objective: objective,
	}))
	return e
}

// WithTenant sets the engine-wide default tenant label for profiler
// attribution; per-query ExecOptions.Tenant overrides it. Returns the
// engine for chaining.
func (e *Engine) WithTenant(label string) *Engine {
	e.tenant = label
	return e
}

// Profiling reports whether the fleet profiler is armed.
func (e *Engine) Profiling() bool { return e.prof != nil }

// collectProfileTelemetry refreshes the profiler's scrape-time metrics
// from the ledger's bounded top-K tables.
func (e *Engine) collectProfileTelemetry() {
	pt, p := e.profTele, e.prof
	if pt == nil || p == nil {
		return
	}
	for _, u := range p.TopK(profile.MetricDeviceNS) {
		pt.queries.Set(float64(u.Queries), u.Shape, u.Tenant)
		pt.deviceNS.Set(float64(u.DeviceNS), u.Shape, u.Tenant)
	}
	for _, u := range p.TopK(profile.MetricBytes) {
		pt.bytes.Set(float64(u.H2DBytes+u.D2HBytes), u.Shape, u.Tenant)
	}
	for _, u := range p.TopK(profile.MetricErrors) {
		pt.errors.Set(float64(u.Errors+u.Sheds), u.Shape, u.Tenant)
	}
	pt.anomalies.Set(float64(p.Anomalies()))
	if slo := p.SLOTracker(); slo != nil {
		snap := slo.Snapshot()
		pt.sloGood.Set(float64(snap.Good))
		pt.sloTotal.Set(float64(snap.Total))
		pt.sloBurn.Set(snap.FastBurn, "fast")
		pt.sloBurn.Set(snap.SlowBurn, "slow")
		pt.sloFiring.Set(boolGauge(snap.FastFiring), "fast")
		pt.sloFiring.Set(boolGauge(snap.SlowFiring), "slow")
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteProfile renders the fleet profiler's ledger as a deterministic
// text report: top-K tables by device time, bytes moved, and
// errors+sheds, plus the SLO state when one is configured. Without
// WithProfile it writes a disabled notice.
func (e *Engine) WriteProfile(w io.Writer) {
	e.prof.WriteReport(w)
}

// WriteSLO exports the SLO tracker's state as JSON ({"enabled": false}
// without WithSLO).
func (e *Engine) WriteSLO(w io.Writer) error {
	var snap profile.SLOSnapshot
	if e.prof != nil {
		snap = e.prof.SLOTracker().Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}
