package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// QueryDigest is the flight recorder's per-query record: the summary
// numbers always, and the full span trace when the query was interesting
// (errored, degraded, failed over, or ran slower than the threshold).
type QueryDigest struct {
	Query     uint64 `json:"query"`
	Model     string `json:"model"`
	Device    string `json:"device,omitempty"`
	StartNS   int64  `json:"start_ns"`
	ElapsedNS int64  `json:"elapsed_ns"`
	H2DBytes  int64  `json:"h2d_bytes"`
	D2HBytes  int64  `json:"d2h_bytes"`
	Chunks    int    `json:"chunks"`
	Pipelines int    `json:"pipelines"`
	Retries   int64  `json:"retries,omitempty"`
	Failovers int    `json:"failovers,omitempty"`
	Degrades  int    `json:"degrades,omitempty"`
	Replans   int    `json:"replans,omitempty"`
	Err       string `json:"err,omitempty"`
	// Retained explains why the spans were kept: "error", "degraded",
	// "failover", "replan", "anomaly" (pre-set by the caller when the
	// profiler flagged a perf anomaly), or "slow". Empty for routine
	// queries (spans dropped).
	Retained string       `json:"retained,omitempty"`
	Spans    []trace.Span `json:"spans,omitempty"`
}

// DefaultFlightCapacity bounds the digest ring when the config leaves it 0.
const DefaultFlightCapacity = 256

// FlightRecorder keeps a bounded ring of recent query digests and
// automatically retains the full span trace of the ones worth debugging —
// the slow-query log you wish you had turned on before the incident. A nil
// *FlightRecorder no-ops on every method.
type FlightRecorder struct {
	mu       sync.Mutex
	cap      int
	slow     vclock.Duration // retain spans when elapsed >= slow (0 = never by latency)
	digests  []QueryDigest   // ring
	start    int             // index of the oldest digest
	recorded uint64
	retained uint64
}

// NewFlightRecorder returns a recorder retaining at most capacity digests
// (DefaultFlightCapacity when capacity <= 0). Queries at or above
// slowThreshold keep their full spans; zero disables the latency trigger
// (error/degrade/failover retention still applies).
func NewFlightRecorder(capacity int, slowThreshold vclock.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{cap: capacity, slow: slowThreshold}
}

// SlowThreshold reports the latency retention trigger (0 = disabled).
func (f *FlightRecorder) SlowThreshold() vclock.Duration {
	if f == nil {
		return 0
	}
	return f.slow
}

// retention classifies a digest; empty means routine (drop the spans). A
// Retained value pre-set by the caller (e.g. "anomaly" from the profiler)
// wins over the built-in rules.
func (f *FlightRecorder) retention(d *QueryDigest) string {
	switch {
	case d.Retained != "":
		return d.Retained
	case d.Err != "":
		return "error"
	case d.Degrades > 0:
		return "degraded"
	case d.Failovers > 0:
		return "failover"
	case d.Replans > 0:
		return "replan"
	case f.slow > 0 && vclock.Duration(d.ElapsedNS) >= f.slow:
		return "slow"
	default:
		return ""
	}
}

// Record files one query's digest. The spans slice is kept (not copied)
// only when the retention policy fires, so pass a snapshot the caller will
// not mutate. Nil recorders no-op.
func (f *FlightRecorder) Record(d QueryDigest, spans []trace.Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d.Retained = f.retention(&d)
	if d.Retained != "" {
		d.Spans = spans
		f.retained++
	}
	f.recorded++
	if len(f.digests) < f.cap {
		f.digests = append(f.digests, d)
	} else {
		f.digests[f.start] = d
		f.start = (f.start + 1) % f.cap
	}
}

// Len reports the number of digests currently retained in the ring.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.digests)
}

// Recorded reports how many queries have ever been filed (including any
// evicted from the ring); Retained how many kept full spans.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recorded
}

// Retained reports how many filed queries kept their full spans.
func (f *FlightRecorder) Retained() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retained
}

// Digests returns the retained digests, oldest first.
func (f *FlightRecorder) Digests() []QueryDigest {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryDigest, 0, len(f.digests))
	out = append(out, f.digests[f.start:]...)
	out = append(out, f.digests[:f.start]...)
	return out
}

// flightDump is the JSON shape of a flight-recorder dump.
type flightDump struct {
	Recorded        uint64        `json:"recorded"`
	Retained        uint64        `json:"retained"`
	SlowThresholdNS int64         `json:"slow_threshold_ns"`
	Digests         []QueryDigest `json:"digests"`
}

// WriteJSON dumps the ring (oldest first) plus lifetime counts as JSON. A
// nil recorder writes an empty dump.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	dump := flightDump{Digests: []QueryDigest{}}
	if f != nil {
		dump.Recorded = f.Recorded()
		dump.Retained = f.Retained()
		dump.SlowThresholdNS = int64(f.slow)
		dump.Digests = f.Digests()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dump)
}
