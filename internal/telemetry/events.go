package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names one kind of runtime event. The taxonomy covers the query
// lifecycle plus every self-healing action the PR 4 resilience layer can
// take, so the event stream is an audit log of what the engine did and why.
type EventType string

// Event taxonomy.
const (
	// EventQueryStart marks a query admitted and about to execute.
	EventQueryStart EventType = "query_start"
	// EventQueryFinish marks a query completing (ok or error — see Err).
	EventQueryFinish EventType = "query_finish"
	// EventRetry marks one transient device fault being retried.
	EventRetry EventType = "retry"
	// EventFailover marks a query re-placing off a lost device.
	EventFailover EventType = "failover"
	// EventDegrade marks one adaptive-OOM ladder step (chunk halving or
	// host re-placement).
	EventDegrade EventType = "degrade"
	// EventQuarantine marks a device quarantined in the admission scheduler.
	EventQuarantine EventType = "quarantine"
	// EventReadmit marks a quarantined device readmitted.
	EventReadmit EventType = "readmit"
	// EventShed marks a query rejected by admission-side load shedding.
	EventShed EventType = "shed"
	// EventDeadline marks a query cut at a chunk boundary after overrunning
	// its virtual-time deadline.
	EventDeadline EventType = "deadline"
	// EventCacheEvict marks the buffer pool evicting a cached column to
	// make room (capacity pressure or admission reclaim).
	EventCacheEvict EventType = "cache_evict"
	// EventCacheInvalidate marks the buffer pool dropping a device's
	// cached columns after device death or quarantine.
	EventCacheInvalidate EventType = "cache_invalidate"
	// EventReplan marks a mid-query re-plan: observed pipeline cardinality
	// drifted from the estimate and the query restarted with a new chunk
	// size.
	EventReplan EventType = "replan"
	// EventShardStraggler marks a shard partition exceeding the hedge
	// threshold derived from its peers' completion times.
	EventShardStraggler EventType = "shard_straggler"
	// EventShardHedge marks the coordinator launching a duplicate request
	// for a straggling partition on an idle peer (first result wins).
	EventShardHedge EventType = "shard_hedge"
	// EventShardFailover marks a partition re-dispatched onto a healthy
	// peer after its shard died mid-query.
	EventShardFailover EventType = "shard_failover"
	// EventShardLost marks a partition that could not be recovered; under
	// the Partial loss mode the query completes without it.
	EventShardLost EventType = "shard_lost"
	// EventShardPartial marks a query returning a flagged partial result:
	// one or more partitions were lost under the Partial loss mode and the
	// answer covers only the surviving shards.
	EventShardPartial EventType = "shard_partial"
	// EventSLOBurn marks an SLO burn-rate window (fast or slow) crossing
	// its alerting threshold — the error budget is being spent faster than
	// the objective allows.
	EventSLOBurn EventType = "slo_burn"
	// EventPerfAnomaly marks a primitive running sustainedly slower than
	// the cost-catalog EWMA predicts for its (primitive, driver, bucket);
	// the flight recorder auto-retains the offending query's full trace.
	EventPerfAnomaly EventType = "perf_anomaly"
)

// Event is one structured entry of the engine's event log. VT is virtual
// nanoseconds (zero when the layer that emitted it has no virtual clock,
// e.g. admission-side shedding); Seq orders events totally.
type Event struct {
	Seq    uint64    `json:"seq"`
	Type   EventType `json:"type"`
	Query  uint64    `json:"query,omitempty"`
	VT     int64     `json:"vt_ns,omitempty"`
	Device string    `json:"device,omitempty"`
	Model  string    `json:"model,omitempty"`
	// ElapsedNS is the query's virtual elapsed time (finish events).
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Detail carries the human-readable specifics: the fault retried, the
	// chunk sizes of a degrade step, the shed reason.
	Detail string `json:"detail,omitempty"`
	// Err is the error text for finish/deadline events that failed.
	Err string `json:"err,omitempty"`
}

// DefaultEventCapacity bounds the event ring when the config leaves it 0.
const DefaultEventCapacity = 4096

// EventSink is a bounded ring of runtime events. Old events are evicted
// once the ring is full, but per-type totals keep counting, so balance
// checks against the metrics registry hold regardless of ring size. A nil
// *EventSink no-ops on every method and is the disabled state.
type EventSink struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	events []Event // ring, oldest first after compaction
	start  int     // index of the oldest event
	totals map[EventType]uint64
}

// NewEventSink returns a sink retaining at most capacity events
// (DefaultEventCapacity when capacity <= 0).
func NewEventSink(capacity int) *EventSink {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventSink{cap: capacity, totals: make(map[EventType]uint64)}
}

// Enabled reports whether the sink records.
func (s *EventSink) Enabled() bool { return s != nil }

// Emit appends one event, stamping its sequence number. Nil sinks no-op.
func (s *EventSink) Emit(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seq++
	e.Seq = s.seq
	s.totals[e.Type]++
	if len(s.events) < s.cap {
		s.events = append(s.events, e)
	} else {
		s.events[s.start] = e
		s.start = (s.start + 1) % s.cap
	}
	s.mu.Unlock()
}

// Len reports the number of events currently retained in the ring.
func (s *EventSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Total reports how many events of the given type have ever been emitted
// (including any evicted from the ring).
func (s *EventSink) Total(t EventType) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals[t]
}

// Totals returns a copy of the per-type lifetime counts.
func (s *EventSink) Totals() map[EventType]uint64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[EventType]uint64, len(s.totals))
	for k, v := range s.totals {
		out[k] = v
	}
	return out
}

// Events returns the retained events, oldest first.
func (s *EventSink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.start:]...)
	out = append(out, s.events[:s.start]...)
	return out
}

// WriteJSONL writes the retained events as JSON lines, oldest first. A nil
// sink writes nothing.
func (s *EventSink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
