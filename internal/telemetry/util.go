package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
)

// UtilTracker records per-device-engine utilization over virtual time. The
// facade samples every engine's cumulative busy counter at query
// boundaries; the tracker turns the resulting monotone (virtual time,
// cumulative busy) curves into busy fractions per virtual-time window —
// the transfer-vs-compute balance of the paper's Figs. 9/10, but live,
// over the whole workload instead of one query.
//
// A nil *UtilTracker no-ops on every method.
type UtilTracker struct {
	mu      sync.Mutex
	series  map[string]*utilSeries // key = device + "/" + engine
	horizon vclock.Time
}

type utilSample struct {
	VT   vclock.Time
	Busy vclock.Duration
}

type utilSeries struct {
	shard   string // "" for the primary (unsharded) runtime
	device  string
	engine  string
	samples []utilSample
}

// NewUtilTracker returns an empty tracker.
func NewUtilTracker() *UtilTracker {
	return &UtilTracker{series: make(map[string]*utilSeries)}
}

// Sample records one engine's cumulative busy time as of virtual time vt.
// Samples must be monotone per engine (they are: both figures only grow);
// regressions are clamped. Nil trackers no-op.
func (u *UtilTracker) Sample(device, engine string, vt vclock.Time, busy vclock.Duration) {
	u.SampleShard("", device, engine, vt, busy)
}

// SampleShard is Sample with a shard label: the coordinator feeds one
// series per (shard, device, engine) so the per-shard strips stay aligned
// on the coordinator's virtual clock. Shard "" is the primary runtime and
// keys identically to Sample, keeping unsharded output unchanged.
func (u *UtilTracker) SampleShard(shard, device, engine string, vt vclock.Time, busy vclock.Duration) {
	if u == nil {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	key := device + "/" + engine
	if shard != "" {
		key = shard + ":" + key
	}
	s := u.series[key]
	if s == nil {
		s = &utilSeries{shard: shard, device: device, engine: engine}
		u.series[key] = s
	}
	if n := len(s.samples); n > 0 {
		last := s.samples[n-1]
		if vt < last.VT {
			vt = last.VT
		}
		if busy < last.Busy {
			busy = last.Busy
		}
		if vt == last.VT {
			s.samples[n-1].Busy = busy
			if vt > u.horizon {
				u.horizon = vt
			}
			return
		}
	}
	s.samples = append(s.samples, utilSample{VT: vt, Busy: busy})
	if vt > u.horizon {
		u.horizon = vt
	}
}

// busyAt interpolates the cumulative busy curve at virtual time t. Before
// the first sample the curve rises linearly from the origin (a fresh
// engine is idle at time zero); past the last sample it is flat (the
// engine has gone idle).
func (s *utilSeries) busyAt(t vclock.Time) float64 {
	if len(s.samples) == 0 || t <= 0 {
		return 0
	}
	prev := utilSample{}
	for _, cur := range s.samples {
		if t <= cur.VT {
			span := cur.VT.Sub(prev.VT)
			if span <= 0 {
				return float64(cur.Busy)
			}
			frac := float64(t.Sub(prev.VT)) / float64(span)
			return float64(prev.Busy) + frac*float64(cur.Busy-prev.Busy)
		}
		prev = cur
	}
	return float64(prev.Busy)
}

// EngineUtilization is one engine's windowed busy fractions.
type EngineUtilization struct {
	Shard  string    `json:"shard,omitempty"` // "" for the primary runtime
	Device string    `json:"device"`
	Engine string    `json:"engine"`
	Busy   []float64 `json:"busy"` // fraction per window, 0..1
}

// Timeline reports the utilization of every sampled engine over [0,
// horizon], split into the given number of windows (clamped to at least
// 1). Engines sort by device then engine name, so output is stable
// regardless of registration order. WindowNS is the window width.
type Timeline struct {
	HorizonNS int64               `json:"horizon_ns"`
	WindowNS  int64               `json:"window_ns"`
	Windows   int                 `json:"windows"`
	Engines   []EngineUtilization `json:"engines"`
}

// Snapshot computes the windowed utilization timeline. Nil trackers return
// an empty timeline.
func (u *UtilTracker) Snapshot(windows int) Timeline {
	if windows < 1 {
		windows = 1
	}
	tl := Timeline{Windows: windows}
	if u == nil {
		return tl
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	tl.HorizonNS = int64(u.horizon)
	if u.horizon <= 0 || len(u.series) == 0 {
		return tl
	}
	window := (int64(u.horizon) + int64(windows) - 1) / int64(windows)
	if window < 1 {
		window = 1
	}
	tl.WindowNS = window

	keys := make([]string, 0, len(u.series))
	for k := range u.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := u.series[k]
		eu := EngineUtilization{Shard: s.shard, Device: s.device, Engine: s.engine, Busy: make([]float64, windows)}
		for wi := 0; wi < windows; wi++ {
			lo := vclock.Time(int64(wi) * window)
			hi := vclock.Time(int64(wi+1) * window)
			if hi > u.horizon {
				hi = u.horizon
			}
			if hi <= lo {
				break
			}
			frac := (s.busyAt(hi) - s.busyAt(lo)) / float64(hi.Sub(lo))
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			eu.Busy[wi] = frac
		}
		tl.Engines = append(tl.Engines, eu)
	}
	return tl
}

// heatRamp maps a busy fraction to a glyph, light to dark.
const heatRamp = " .:-=+*#%@"

// glyph returns the heat-strip character for a busy fraction.
func glyph(frac float64) byte {
	i := int(frac * float64(len(heatRamp)))
	if i >= len(heatRamp) {
		i = len(heatRamp) - 1
	}
	if i < 0 {
		i = 0
	}
	return heatRamp[i]
}

// WriteHeatStrip renders the timeline as a deterministic text heat strip:
// one row per device engine, one column per window, plus the average busy
// fraction. Nil trackers render a disabled notice.
func (u *UtilTracker) WriteHeatStrip(w io.Writer, windows int) {
	if u == nil {
		fmt.Fprintln(w, "utilization: disabled")
		return
	}
	tl := u.Snapshot(windows)
	if len(tl.Engines) == 0 {
		fmt.Fprintln(w, "utilization: no samples")
		return
	}
	fmt.Fprintf(w, "utilization over %v (%d windows of %v, ramp %q)\n",
		vclock.Duration(tl.HorizonNS), tl.Windows, vclock.Duration(tl.WindowNS), heatRamp)
	label := func(e EngineUtilization) string {
		if e.Shard != "" {
			return e.Shard + ":" + e.Device + "/" + e.Engine
		}
		return e.Device + "/" + e.Engine
	}
	width := 0
	for _, e := range tl.Engines {
		if n := len(label(e)); n > width {
			width = n
		}
	}
	for _, e := range tl.Engines {
		var strip strings.Builder
		var sum float64
		for _, f := range e.Busy {
			strip.WriteByte(glyph(f))
			sum += f
		}
		avg := 0.0
		if len(e.Busy) > 0 {
			avg = sum / float64(len(e.Busy))
		}
		fmt.Fprintf(w, "%-*s |%s| avg %3.0f%%\n", width, label(e), strip.String(), avg*100)
	}
}

// WriteJSON exports the timeline as JSON.
func (u *UtilTracker) WriteJSON(w io.Writer, windows int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(u.Snapshot(windows))
}
