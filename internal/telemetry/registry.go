// Package telemetry is ADAMANT's fleet-level observability layer: where
// package trace answers "what did this one query do", telemetry answers
// "what is the engine doing over time, across queries".
//
// It provides four cooperating pieces:
//
//   - Registry: a labeled metric registry (counters, gauges, histograms)
//     with deterministic Prometheus text-format exposition. Values are
//     counts and virtual-time figures, so a deterministic workload scrapes
//     to byte-identical output.
//   - EventSink: a bounded structured event log (JSON lines) fed by the
//     executor, session scheduler, and health layers: query lifecycle,
//     retries, failovers, degradations, quarantines, sheds, deadlines.
//   - UtilTracker: per-device-engine utilization timelines — busy fraction
//     per virtual-time window — rendered as a text heat strip or JSON.
//   - FlightRecorder: a ring of recent per-query digests that automatically
//     retains the full span trace of queries that errored, degraded, or ran
//     slow, so the trace you needed is already captured.
//
// Everything is nil-safe: a nil sink/tracker/recorder no-ops on every
// method, so call sites need no guards and the telemetry-off hot path does
// no work and allocates nothing. Recording never touches the virtual
// clock: timings are bit-identical with telemetry on and off.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricKind classifies a metric family for the TYPE exposition line.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// series is one labeled time series within a family.
type series struct {
	labels []string // values, parallel to the family's label names
	value  float64  // counter/gauge value; histogram sum
	count  uint64   // histogram observation count
	bucket []uint64 // cumulative per-bucket counts (histograms)
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    MetricKind
	labels  []string
	buckets []float64 // histogram upper bounds (le), ascending
	series  map[string]*series
}

// key joins label values into the series map key.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	k := seriesKey(values)
	s := f.series[k]
	if s == nil {
		s = &series{labels: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.bucket = make([]uint64, len(f.buckets))
		}
		f.series[k] = s
	}
	return s
}

// Registry is a set of metric families with deterministic exposition. All
// methods are safe for concurrent use; a nil *Registry no-ops everywhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	collect  []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register creates (or fetches, when already declared) a family.
func (r *Registry) register(name, help string, kind MetricKind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name: name, help: help, kind: kind,
			labels:  append([]string(nil), labels...),
			buckets: append([]float64(nil), buckets...),
			series:  make(map[string]*series),
		}
		r.families[name] = f
	}
	return f
}

// Counter declares (or fetches) a monotonically increasing metric family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{r: r, f: r.register(name, help, KindCounter, nil, labels)}
}

// Gauge declares (or fetches) a point-in-time metric family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{r: r, f: r.register(name, help, KindGauge, nil, labels)}
}

// Histogram declares (or fetches) a cumulative histogram family with the
// given ascending upper bounds (an implicit +Inf bucket is always added).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{r: r, f: r.register(name, help, KindHistogram, buckets, labels)}
}

// OnScrape registers a callback run at the start of every WriteProm: the
// place to refresh gauges (queue depth, memory in use) and device-sourced
// totals from their live owners.
func (r *Registry) OnScrape(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// Counter is a handle on a counter family.
type Counter struct {
	r *Registry
	f *family
}

// Add increments the labeled series by delta. Nil receivers no-op.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if c == nil || delta == 0 {
		return
	}
	c.r.mu.Lock()
	c.f.get(labelValues).value += delta
	c.r.mu.Unlock()
}

// Set overwrites the labeled series total: for counters whose truth lives
// elsewhere (device lifetime stats) and is copied in whole at scrape time.
func (c *Counter) Set(v float64, labelValues ...string) {
	if c == nil {
		return
	}
	c.r.mu.Lock()
	c.f.get(labelValues).value = v
	c.r.mu.Unlock()
}

// Gauge is a handle on a gauge family.
type Gauge struct {
	r *Registry
	f *family
}

// Set records the labeled series' current value. Nil receivers no-op.
func (g *Gauge) Set(v float64, labelValues ...string) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.f.get(labelValues).value = v
	g.r.mu.Unlock()
}

// Histogram is a handle on a histogram family.
type Histogram struct {
	r *Registry
	f *family
}

// Observe folds one observation into the labeled series. Nil receivers
// no-op.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	s := h.f.get(labelValues)
	s.count++
	s.value += v
	for i, ub := range h.f.buckets {
		if v <= ub {
			s.bucket[i]++
		}
	}
	h.r.mu.Unlock()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a sample value. Integral values print without an
// exponent so counters read naturally; everything else uses the shortest
// round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given schema and values, with an
// optional extra (le) pair appended.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4). Output is deterministic: families sort by name, series
// by label values, histogram buckets ascending. Scrape callbacks run first
// so gauges and device-sourced totals are fresh. A nil registry writes a
// comment only.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "# telemetry disabled\n")
		return err
	}
	r.mu.Lock()
	collect := make([]func(*Registry), len(r.collect))
	copy(collect, r.collect)
	r.mu.Unlock()
	for _, fn := range collect {
		fn(r)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if len(f.series) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case KindHistogram:
				// Buckets are stored cumulatively (every Observe increments
				// all buckets its value fits), matching the text format.
				for i, ub := range f.buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, s.labels, "le", formatValue(ub)), s.bucket[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labels, "le", "+Inf"), s.count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					labelString(f.labels, s.labels, "", ""), formatValue(s.value))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelString(f.labels, s.labels, "", ""), s.count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", f.name,
					labelString(f.labels, s.labels, "", ""), formatValue(s.value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
