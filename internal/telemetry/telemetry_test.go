package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

func TestRegistryWritePromDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("adamant_queries_total", "Queries executed.", "device", "model")
	c.Add(2, "gpu0", "chunked")
	c.Add(1, "cpu0", "oaat")
	g := r.Gauge("adamant_queue_depth", "Admission queue depth.")
	g.Set(3)
	h := r.Histogram("adamant_query_elapsed_ns", "Virtual elapsed.", []float64{10, 100}, "model")
	h.Observe(5, "chunked")
	h.Observe(50, "chunked")
	h.Observe(500, "chunked")

	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"# HELP adamant_queries_total Queries executed.",
		"# TYPE adamant_queries_total counter",
		`adamant_queries_total{device="cpu0",model="oaat"} 1`,
		`adamant_queries_total{device="gpu0",model="chunked"} 2`,
		"# TYPE adamant_queue_depth gauge",
		"adamant_queue_depth 3",
		"# TYPE adamant_query_elapsed_ns histogram",
		`adamant_query_elapsed_ns_bucket{model="chunked",le="10"} 1`,
		`adamant_query_elapsed_ns_bucket{model="chunked",le="100"} 2`,
		`adamant_query_elapsed_ns_bucket{model="chunked",le="+Inf"} 3`,
		`adamant_query_elapsed_ns_sum{model="chunked"} 555`,
		`adamant_query_elapsed_ns_count{model="chunked"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// cpu0 sorts before gpu0 regardless of insertion order.
	if strings.Index(out, "cpu0") > strings.Index(out, "gpu0") {
		t.Errorf("series not sorted by label values:\n%s", out)
	}
	// Families sort by name.
	if strings.Index(out, "adamant_queries_total") > strings.Index(out, "adamant_queue_depth") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestRegistryScrapeCallbackAndSet(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("live", "refreshed at scrape")
	calls := 0
	r.OnScrape(func(*Registry) { calls++; g.Set(float64(calls)) })
	c := r.Counter("copied_total", "copied at scrape", "device")
	c.Set(7, "gpu0")

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("scrape callbacks ran %d times, want 1", calls)
	}
	if !strings.Contains(buf.String(), "live 1\n") {
		t.Errorf("gauge not refreshed by scrape callback:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `copied_total{device="gpu0"} 7`) {
		t.Errorf("counter Set not rendered:\n%s", buf.String())
	}
}

func TestRegistryLabelEscapingAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escape test", "name").Add(1, "a\"b\\c\nd")
	r.Gauge("frac", "fractional").Set(0.5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{name="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "frac 0.5\n") {
		t.Errorf("fractional value mis-rendered:\n%s", buf.String())
	}
}

func TestRegistryLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x", "device")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	c.Add(1, "a", "b")
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "b").Add(1)
	r.Counter("a", "b").Set(1)
	r.Gauge("a", "b").Set(1)
	r.Histogram("a", "b", nil).Observe(1)
	r.OnScrape(func(*Registry) {})
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Errorf("nil registry exposition = %q", buf.String())
	}
}

func TestEventSinkRingAndTotals(t *testing.T) {
	s := NewEventSink(3)
	if !s.Enabled() {
		t.Fatal("sink not enabled")
	}
	for i := 0; i < 5; i++ {
		s.Emit(Event{Type: EventRetry, Query: uint64(i)})
	}
	s.Emit(Event{Type: EventShed})
	if got := s.Len(); got != 3 {
		t.Fatalf("ring Len = %d, want 3", got)
	}
	if got := s.Total(EventRetry); got != 5 {
		t.Fatalf("retry total = %d, want 5 (totals must survive eviction)", got)
	}
	ev := s.Events()
	if len(ev) != 3 || ev[0].Seq >= ev[1].Seq || ev[1].Seq >= ev[2].Seq {
		t.Fatalf("events not oldest-first with increasing seq: %+v", ev)
	}
	if ev[2].Type != EventShed {
		t.Fatalf("newest event = %v, want shed", ev[2].Type)
	}
	tot := s.Totals()
	if tot[EventRetry] != 5 || tot[EventShed] != 1 {
		t.Fatalf("Totals = %v", tot)
	}
}

func TestEventSinkJSONL(t *testing.T) {
	s := NewEventSink(0)
	s.Emit(Event{Type: EventQueryStart, Query: 1, VT: 10, Device: "gpu0", Model: "chunked"})
	s.Emit(Event{Type: EventQueryFinish, Query: 1, VT: 30, ElapsedNS: 20})
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Type != EventQueryStart || lines[0].Device != "gpu0" || lines[0].Seq != 1 {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].ElapsedNS != 20 {
		t.Fatalf("line 1 = %+v", lines[1])
	}
}

func TestEventSinkNilSafe(t *testing.T) {
	var s *EventSink
	if s.Enabled() {
		t.Fatal("nil sink enabled")
	}
	s.Emit(Event{Type: EventRetry})
	if s.Len() != 0 || s.Total(EventRetry) != 0 || s.Totals() != nil || s.Events() != nil {
		t.Fatal("nil sink not inert")
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil sink wrote %q, err %v", buf.String(), err)
	}
}

func TestUtilTrackerSnapshot(t *testing.T) {
	u := NewUtilTracker()
	// Engine busy 50% of the first half, idle the second half.
	u.Sample("gpu0", "compute", 100, 50)
	u.Sample("gpu0", "compute", 200, 50)
	// Copy engine fully busy throughout.
	u.Sample("gpu0", "copy", 200, 200)

	tl := u.Snapshot(2)
	if tl.HorizonNS != 200 || tl.WindowNS != 100 || len(tl.Engines) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	// Sorted: compute before copy.
	if tl.Engines[0].Engine != "compute" || tl.Engines[1].Engine != "copy" {
		t.Fatalf("engines not sorted: %+v", tl.Engines)
	}
	comp := tl.Engines[0].Busy
	if comp[0] != 0.5 || comp[1] != 0 {
		t.Fatalf("compute busy = %v, want [0.5 0]", comp)
	}
	cp := tl.Engines[1].Busy
	if cp[0] != 1 || cp[1] != 1 {
		t.Fatalf("copy busy = %v, want [1 1]", cp)
	}
}

func TestUtilTrackerClampsRegressions(t *testing.T) {
	u := NewUtilTracker()
	u.Sample("d", "e", 100, 80)
	u.Sample("d", "e", 50, 40)  // vt regression: clamped to 100
	u.Sample("d", "e", 100, 10) // busy regression on same vt: clamped to 80
	tl := u.Snapshot(1)
	if tl.HorizonNS != 100 {
		t.Fatalf("horizon = %d, want 100", tl.HorizonNS)
	}
	if got := tl.Engines[0].Busy[0]; got != 0.8 {
		t.Fatalf("busy fraction = %v, want 0.8", got)
	}
}

func TestUtilTrackerHeatStrip(t *testing.T) {
	u := NewUtilTracker()
	u.Sample("gpu0", "compute", 100, 100)
	var a, b bytes.Buffer
	u.WriteHeatStrip(&a, 4)
	u.WriteHeatStrip(&b, 4)
	if a.String() != b.String() {
		t.Fatal("heat strip not deterministic")
	}
	if !strings.Contains(a.String(), "gpu0/compute") || !strings.Contains(a.String(), "|@@@@|") {
		t.Errorf("heat strip = %q", a.String())
	}
	if !strings.Contains(a.String(), "avg 100%") {
		t.Errorf("heat strip avg missing: %q", a.String())
	}

	var empty bytes.Buffer
	NewUtilTracker().WriteHeatStrip(&empty, 4)
	if !strings.Contains(empty.String(), "no samples") {
		t.Errorf("empty tracker strip = %q", empty.String())
	}
}

func TestUtilTrackerJSONAndNil(t *testing.T) {
	u := NewUtilTracker()
	u.Sample("gpu0", "copy", 10, 5)
	var buf bytes.Buffer
	if err := u.WriteJSON(&buf, 2); err != nil {
		t.Fatal(err)
	}
	var tl Timeline
	if err := json.Unmarshal(buf.Bytes(), &tl); err != nil {
		t.Fatalf("bad JSON %q: %v", buf.String(), err)
	}
	if tl.Windows != 2 || len(tl.Engines) != 1 || tl.Engines[0].Device != "gpu0" {
		t.Fatalf("timeline = %+v", tl)
	}

	var nilU *UtilTracker
	nilU.Sample("a", "b", 1, 1)
	if got := nilU.Snapshot(3); got.Windows != 3 || got.Engines != nil {
		t.Fatalf("nil snapshot = %+v", got)
	}
	var disabled bytes.Buffer
	nilU.WriteHeatStrip(&disabled, 1)
	if !strings.Contains(disabled.String(), "disabled") {
		t.Errorf("nil strip = %q", disabled.String())
	}
	if err := nilU.WriteJSON(&disabled, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(8, 100)
	if f.SlowThreshold() != 100 {
		t.Fatalf("threshold = %v", f.SlowThreshold())
	}
	spans := []trace.Span{{Kind: trace.KindQuery, End: vclock.Time(10)}}
	f.Record(QueryDigest{Query: 1, ElapsedNS: 10}, spans)                        // routine
	f.Record(QueryDigest{Query: 2, ElapsedNS: 10, Err: "boom"}, spans)           // error
	f.Record(QueryDigest{Query: 3, ElapsedNS: 10, Degrades: 1}, spans)           // degraded
	f.Record(QueryDigest{Query: 4, ElapsedNS: 10, Failovers: 1}, spans)          // failover
	f.Record(QueryDigest{Query: 5, ElapsedNS: 150}, spans)                       // slow
	f.Record(QueryDigest{Query: 6, ElapsedNS: 10, Err: "x", Degrades: 2}, spans) // error wins

	d := f.Digests()
	if len(d) != 6 {
		t.Fatalf("Len = %d", len(d))
	}
	wantRetained := []string{"", "error", "degraded", "failover", "slow", "error"}
	for i, w := range wantRetained {
		if d[i].Retained != w {
			t.Errorf("digest %d retained = %q, want %q", i, d[i].Retained, w)
		}
		if (w == "") != (d[i].Spans == nil) {
			t.Errorf("digest %d spans retained = %v, want retained=%q", i, d[i].Spans != nil, w)
		}
	}
	if f.Recorded() != 6 || f.Retained() != 5 {
		t.Fatalf("recorded %d retained %d", f.Recorded(), f.Retained())
	}
}

func TestFlightRecorderRingAndJSON(t *testing.T) {
	f := NewFlightRecorder(2, 0)
	for i := 1; i <= 3; i++ {
		f.Record(QueryDigest{Query: uint64(i)}, nil)
	}
	d := f.Digests()
	if len(d) != 2 || d[0].Query != 2 || d[1].Query != 3 {
		t.Fatalf("ring digests = %+v", d)
	}
	// Zero threshold: nothing retained by latency.
	f.Record(QueryDigest{Query: 4, ElapsedNS: 1 << 60}, []trace.Span{{}})
	if last := f.Digests()[1]; last.Retained != "" || last.Spans != nil {
		t.Fatalf("latency retention fired with zero threshold: %+v", last)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Recorded uint64        `json:"recorded"`
		Digests  []QueryDigest `json:"digests"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("bad dump %q: %v", buf.String(), err)
	}
	if dump.Recorded != 4 || len(dump.Digests) != 2 {
		t.Fatalf("dump = %+v", dump)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(QueryDigest{Err: "x"}, nil)
	if f.Len() != 0 || f.Recorded() != 0 || f.Retained() != 0 || f.Digests() != nil || f.SlowThreshold() != 0 {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"digests": []`) {
		t.Errorf("nil dump = %q", buf.String())
	}
}

func TestMetricKindString(t *testing.T) {
	if KindCounter.String() != "counter" || KindGauge.String() != "gauge" ||
		KindHistogram.String() != "histogram" {
		t.Fatal("kind names wrong")
	}
	if MetricKind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestFlightRecorderReplanAndPresetRetention(t *testing.T) {
	f := NewFlightRecorder(8, 0)
	spans := []trace.Span{{Kind: trace.KindQuery, End: vclock.Time(10)}}
	f.Record(QueryDigest{Query: 1, Replans: 1}, spans)                       // replan
	f.Record(QueryDigest{Query: 2, Replans: 1, Err: "boom"}, spans)          // error wins
	f.Record(QueryDigest{Query: 3, Retained: "anomaly"}, spans)              // pre-set wins
	f.Record(QueryDigest{Query: 4, Retained: "anomaly", Err: "boom"}, spans) // pre-set beats error
	d := f.Digests()
	wantRetained := []string{"replan", "error", "anomaly", "anomaly"}
	for i, w := range wantRetained {
		if d[i].Retained != w {
			t.Errorf("digest %d retained = %q, want %q", i, d[i].Retained, w)
		}
		if d[i].Spans == nil {
			t.Errorf("digest %d dropped spans, want retained", i)
		}
	}
	if f.Retained() != 4 {
		t.Fatalf("retained = %d, want 4", f.Retained())
	}
}

func TestUtilTrackerShardStrips(t *testing.T) {
	// Shard "" must key and render identically to plain Sample.
	plain, sharded := NewUtilTracker(), NewUtilTracker()
	plain.Sample("GPU", "compute", 100, 50)
	plain.Sample("GPU", "compute", 200, 150)
	sharded.SampleShard("", "GPU", "compute", 100, 50)
	sharded.SampleShard("", "GPU", "compute", 200, 150)
	var a, b bytes.Buffer
	plain.WriteHeatStrip(&a, 4)
	sharded.WriteHeatStrip(&b, 4)
	if a.String() != b.String() {
		t.Fatalf("shard \"\" differs from Sample:\n%s\nvs\n%s", a.String(), b.String())
	}

	// Shard rows carry their label and sort after the primary rows.
	sharded.SampleShard("shard1", "GPU", "compute", 200, 200)
	tl := sharded.Snapshot(4)
	if len(tl.Engines) != 2 {
		t.Fatalf("engines = %d, want 2", len(tl.Engines))
	}
	if tl.Engines[0].Shard != "" || tl.Engines[1].Shard != "shard1" {
		t.Fatalf("shard order = %q, %q", tl.Engines[0].Shard, tl.Engines[1].Shard)
	}
	var strip bytes.Buffer
	sharded.WriteHeatStrip(&strip, 4)
	if !strings.Contains(strip.String(), "shard1:GPU/compute") {
		t.Fatalf("strip missing shard row:\n%s", strip.String())
	}

	var nilU *UtilTracker
	nilU.SampleShard("shard1", "GPU", "compute", 1, 1)
}
