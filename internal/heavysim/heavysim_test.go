package heavysim

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

func dataset(t *testing.T, sf float64) *tpch.Dataset {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: sf, Ratio: 1.0 / 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestQ6MatchesReference(t *testing.T) {
	ds := dataset(t, 1)
	db := New(Config{GPU: &simhw.RTX2080Ti})
	res, err := db.Run("Q6", ds)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Columns["revenue"].I64()[0], tpch.RefQ6(ds); got != want {
		t.Errorf("revenue = %d, want %d", got, want)
	}
	if res.ColdElapsed <= res.Elapsed {
		t.Error("cold start must cost more than hot")
	}
	// Q6 scans four whole lineitem columns.
	if want := int64(ds.Lineitem.Rows()) * 4 * 4; res.TransferBytes != want {
		t.Errorf("cold transfer = %d bytes, want %d", res.TransferBytes, want)
	}
}

func TestQ4MatchesReference(t *testing.T) {
	ds := dataset(t, 1)
	db := New(Config{GPU: &simhw.RTX2080Ti})
	res, err := db.Run("Q4", ds)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.RefQ4(ds)
	prio := res.Columns["o_orderpriority"].I64()
	cnt := res.Columns["order_count"].I64()
	if len(prio) != len(want) {
		t.Fatalf("groups = %d, want %d", len(prio), len(want))
	}
	for i := range prio {
		if want[prio[i]] != cnt[i] {
			t.Errorf("priority %d = %d, want %d", prio[i], cnt[i], want[prio[i]])
		}
	}
}

func TestQ1AndQ3SmallScale(t *testing.T) {
	ds := dataset(t, 1)
	db := New(Config{GPU: &simhw.RTX2080Ti})
	if _, err := db.Run("Q1", ds); err != nil {
		t.Errorf("Q1: %v", err)
	}
	// Q3 fits at SF1 (group buffer 4*1.5M*32B = 192MB).
	res, err := db.Run("Q3", ds)
	if err != nil {
		t.Fatalf("Q3 at SF1: %v", err)
	}
	want := tpch.RefQ3(ds)
	if res.Columns["l_orderkey"].Len() != len(want) {
		t.Errorf("Q3 groups = %d, want %d", res.Columns["l_orderkey"].Len(), len(want))
	}
}

// TestQ3AbortsAtPaperScale reproduces the paper's finding: Q3 cannot run on
// HeavyDB at SF >= 100 because the group-by buffer exceeds device memory.
func TestQ3AbortsAtPaperScale(t *testing.T) {
	for _, sf := range []float64{100, 120, 140} {
		ds := dataset(t, sf)
		db := New(Config{GPU: &simhw.RTX2080Ti})
		_, err := db.Run("Q3", ds)
		if !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("SF%g: expected OOM, got %v", sf, err)
		}
		// Q4 and Q6 still run at the same scale.
		if _, err := db.Run("Q4", ds); err != nil {
			t.Errorf("SF%g Q4: %v", sf, err)
		}
		if _, err := db.Run("Q6", ds); err != nil {
			t.Errorf("SF%g Q6: %v", sf, err)
		}
	}
}

func TestUnknownQuery(t *testing.T) {
	db := New(Config{GPU: &simhw.RTX2080Ti})
	if _, err := db.Run("Q99", dataset(t, 1)); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.rowRate() != 220 || c.compile() <= 0 || c.slotBytes() != 32 {
		t.Error("defaults wrong")
	}
	c = Config{RowMrate: 10, GroupSlotBytes: 64}
	if c.rowRate() != 10 || c.slotBytes() != 64 {
		t.Error("overrides ignored")
	}
	defer func() {
		if recover() == nil {
			t.Error("nil GPU must panic")
		}
	}()
	New(Config{})
}

// TestScalingWithSF checks that execution time grows with the generated
// data volume.
func TestScalingWithSF(t *testing.T) {
	db := New(Config{GPU: &simhw.RTX2080Ti})
	r1, err := db.Run("Q6", dataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	r5, err := db.Run("Q6", dataset(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if r5.Elapsed <= r1.Elapsed {
		t.Errorf("SF5 (%v) should cost more than SF1 (%v)", r5.Elapsed, r1.Elapsed)
	}
}
