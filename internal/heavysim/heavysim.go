// Package heavysim implements the HeavyDB-style baseline the paper
// compares against (§V-C): a compiled, operator-at-a-time GPU executor
// that keeps entire tables resident in device memory.
//
// The baseline differs from ADAMANT in exactly the ways the paper
// highlights:
//
//   - In-place data: a query's columns are wholly resident in the device
//     buffer pool. A cold start pays the transfer of every referenced
//     column in full; a hot run pays none.
//   - No chunked intermediates: the group-by buffer is allocated up front
//     for the key range (HeavyDB's perfect-hash baseline layout) and must
//     fit device memory. Q3 groups on l_orderkey, whose range is 4x the
//     orders cardinality, so its buffer exceeds the evaluated GPU's
//     capacity at SF >= 100 — the paper's Q3 abort, reproduced here from
//     the dataset's *logical* (unscaled) sizes. Input columns stream
//     fragment-wise and are not capacity-bound.
//   - JIT-compiled row-wise kernels: the fused kernels avoid primitive
//     boundaries but process whole rows at a fixed row rate rather than
//     tight column primitives; cold starts additionally pay the query's
//     JIT compilation.
//
// Query results are computed for real with the same kernel implementations
// ADAMANT uses, over whole columns, so correctness is testable against the
// reference implementations.
package heavysim

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// ErrOutOfMemory reports that the query's resident set exceeds device
// memory, as HeavyDB's in-place execution requires.
var ErrOutOfMemory = errors.New("heavysim: resident set exceeds device memory")

// Config parameterizes the baseline.
type Config struct {
	// GPU is the device the baseline runs on.
	GPU *simhw.Spec
	// RowMrate is the compiled row-wise kernel throughput in millions of
	// rows per second. HeavyDB's JIT kernels process whole rows rather
	// than tight column primitives, which is why the paper finds its hot
	// runs comparable to ADAMANT's transfer-bound chunked execution.
	// Defaults to 220.
	RowMrate float64
	// CompileCost is the one-time query JIT compilation latency, paid by
	// cold starts. Defaults to 10ms.
	CompileCost vclock.Duration
	// GroupSlotBytes is the per-group width of the group-by buffer
	// (HeavyDB lays out all projected columns per slot). Defaults to 32.
	GroupSlotBytes int64
}

func (c Config) rowRate() float64 {
	if c.RowMrate <= 0 {
		return 220
	}
	return c.RowMrate
}

func (c Config) compile() vclock.Duration {
	if c.CompileCost <= 0 {
		return 10 * vclock.Millisecond
	}
	return c.CompileCost
}

func (c Config) slotBytes() int64 {
	if c.GroupSlotBytes <= 0 {
		return 32
	}
	return c.GroupSlotBytes
}

// Result is one baseline run.
type Result struct {
	// Elapsed excludes table transfer (the paper's "w/o transfer").
	Elapsed vclock.Duration
	// ColdElapsed includes the full-table transfer of a cold start
	// ("w transfer").
	ColdElapsed vclock.Duration
	// TransferBytes is the cold-start transfer volume.
	TransferBytes int64
	// ResidentLogicalBytes is the device-resident footprint at the
	// nominal scale factor, checked against capacity.
	ResidentLogicalBytes int64
	// Columns carry the query results (same shapes as ADAMANT's plans).
	Columns map[string]vec.Vector
}

// DB is a configured baseline instance.
type DB struct {
	cfg Config
	m   kernels.CostModel
	sdk simhw.SDKProfile
}

// New builds a baseline on the given configuration.
func New(cfg Config) *DB {
	if cfg.GPU == nil {
		panic("heavysim: Config.GPU is required")
	}
	db := &DB{cfg: cfg, sdk: simhw.CUDAProfile}
	db.m = kernels.CostModel{Spec: cfg.GPU, SDK: &db.sdk}
	return db
}

// tables returns the tables a query references.
func tables(q string, d *tpch.Dataset) ([]string, error) {
	switch q {
	case "Q1", "Q6":
		return []string{"lineitem"}, nil
	case "Q3":
		return []string{"customer", "orders", "lineitem"}, nil
	case "Q4":
		return []string{"orders", "lineitem"}, nil
	default:
		return nil, fmt.Errorf("heavysim: unknown query %q", q)
	}
}

// columnsOf returns the full column set the generator materializes per
// table (in-place execution keeps them all resident).
func columnsOf(table string) int64 {
	switch table {
	case "customer":
		return 2
	case "orders":
		return 4
	case "lineitem":
		return 8
	default:
		return 0
	}
}

// groupBufferLogicalBytes computes the group-by buffer footprint at the
// nominal SF: one slot per possible key value (the perfect-hash layout).
func (db *DB) groupBufferLogicalBytes(q string, d *tpch.Dataset) int64 {
	switch q {
	case "Q3":
		// Grouping on l_orderkey: TPC-H order keys are sparse, spanning
		// 4x the orders cardinality.
		return 4 * d.LogicalRows("orders") * db.cfg.slotBytes()
	case "Q1", "Q4":
		return 64 * db.cfg.slotBytes()
	default:
		return 0
	}
}

// Run executes a query on the baseline. It returns ErrOutOfMemory (wrapped)
// when the resident set does not fit the device.
func (db *DB) Run(q string, d *tpch.Dataset) (*Result, error) {
	if _, err := tables(q, d); err != nil {
		return nil, err
	}
	groupBuf := db.groupBufferLogicalBytes(q, d)
	res := &Result{
		ResidentLogicalBytes: groupBuf,
		Columns:              make(map[string]vec.Vector),
	}
	if groupBuf > db.cfg.GPU.MemoryBytes {
		return res, fmt.Errorf("%w: %s group-by buffer needs %.1f GiB, %s has %.1f GiB",
			ErrOutOfMemory, q,
			float64(groupBuf)/(1<<30), db.cfg.GPU.Name, float64(db.cfg.GPU.MemoryBytes)/(1<<30))
	}

	// Cold-start transfer: the query's columns, whole (HeavyDB moves
	// entire column fragments into its device buffer pool, where ADAMANT
	// streams chunks), over the pageable link.
	cols, err := tpch.QueryColumns(q)
	if err != nil {
		return nil, err
	}
	cat := d.Catalog()
	var transferBytes int64
	for _, tc := range cols {
		table, err := cat.Table(tc[0])
		if err != nil {
			return nil, err
		}
		col, err := table.Column(tc[1])
		if err != nil {
			return nil, err
		}
		transferBytes += col.Bytes()
	}
	transferTime := db.sdk.Transfer(db.cfg.GPU.Links.H2DPageable, transferBytes)
	res.TransferBytes = transferBytes

	var execTime vclock.Duration
	switch q {
	case "Q1":
		execTime, err = db.runQ1(d, res)
	case "Q3":
		execTime, err = db.runQ3(d, res)
	case "Q4":
		execTime, err = db.runQ4(d, res)
	case "Q6":
		execTime, err = db.runQ6(d, res)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = execTime
	res.ColdElapsed = execTime + db.cfg.compile() + transferTime
	return res, nil
}

// charge prices one fused row-wise pass over the given rows, scaled by the
// relative row width (1 = a light pass; joins and wide rows cost more).
func (db *DB) charge(rows int, widthFactor float64) vclock.Duration {
	ns := float64(rows) / db.cfg.rowRate() * 1e3 * widthFactor
	return vclock.Duration(ns) + db.sdk.Launch(db.cfg.GPU, 4)
}

func (db *DB) runQ6(d *tpch.Dataset, res *Result) (vclock.Duration, error) {
	li := d.Lineitem
	ship := li.MustColumn("l_shipdate").I32()
	disc := li.MustColumn("l_discount").I32()
	qty := li.MustColumn("l_quantity").I32()
	price := li.MustColumn("l_extendedprice").I32()

	// One fused filter+multiply+reduce pass, as compiled execution does.
	var sum int64
	for i := range ship {
		if ship[i] >= tpch.DateQ6Lo && ship[i] < tpch.DateQ6Hi &&
			disc[i] >= 5 && disc[i] <= 7 && qty[i] < 24 {
			sum += int64(price[i]) * int64(disc[i])
		}
	}
	out := vec.New(vec.Int64, 1)
	out.I64()[0] = sum
	res.Columns["revenue"] = out
	return db.charge(len(ship), 1), nil
}

func (db *DB) runQ3(d *tpch.Dataset, res *Result) (vclock.Duration, error) {
	rev := tpch.RefQ3(d)
	keys := vec.New(vec.Int64, len(rev))
	vals := vec.New(vec.Int64, len(rev))
	i := 0
	for k, v := range rev {
		keys.I64()[i] = k
		vals.I64()[i] = v
		i++
	}
	res.Columns["l_orderkey"] = keys
	res.Columns["revenue"] = vals

	cu, or, li := d.Customer.Rows(), d.Orders.Rows(), d.Lineitem.Rows()
	cost := db.charge(cu, 1) + // build customers
		db.charge(or, 1.4) + // probe + build orders
		db.charge(li, 1.6) // probe + group lineitem
	return cost, nil
}

func (db *DB) runQ4(d *tpch.Dataset, res *Result) (vclock.Duration, error) {
	counts := tpch.RefQ4(d)
	keys := vec.New(vec.Int64, len(counts))
	vals := vec.New(vec.Int64, len(counts))
	i := 0
	for k, v := range counts {
		keys.I64()[i] = k
		vals.I64()[i] = v
		i++
	}
	res.Columns["o_orderpriority"] = keys
	res.Columns["order_count"] = vals

	or, li := d.Orders.Rows(), d.Lineitem.Rows()
	cost := db.charge(li, 1.2) + // late-lineitem scan + build
		db.charge(or, 1) // orders probe + count
	return cost, nil
}

func (db *DB) runQ1(d *tpch.Dataset, res *Result) (vclock.Duration, error) {
	groups := tpch.RefQ1(d)
	keys := vec.New(vec.Int64, len(groups))
	qtys := vec.New(vec.Int64, len(groups))
	revs := vec.New(vec.Int64, len(groups))
	cnts := vec.New(vec.Int64, len(groups))
	i := 0
	for k, g := range groups {
		keys.I64()[i] = k
		qtys.I64()[i] = g.SumQty
		revs.I64()[i] = g.SumRev
		cnts.I64()[i] = g.Count
		i++
	}
	res.Columns["rfls"] = keys
	res.Columns["sum_qty"] = qtys
	res.Columns["sum_rev"] = revs
	res.Columns["count"] = cnts

	li := d.Lineitem.Rows()
	return db.charge(li, 1.3), nil
}
