package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// portState is the runtime annotation of one producing output port: where
// its data lives (device ID + buffer), how much of it is valid for the
// current chunk, and the event at which it becomes available. This is the
// edge state (data ID, device ID, processed/fetched indexes) of §III-C.
type portState struct {
	dev        device.ID
	buf        devmem.BufferID
	capacity   int // allocated elements
	n          int // logical elements valid this chunk
	ready      vclock.Time
	persistent bool // survives chunk/pipeline boundaries
}

type alloc struct {
	dev device.ID
	buf devmem.BufferID
	// ref, when set, names the port whose state must be dropped with the
	// buffer so the next chunk re-allocates instead of using a dead ID.
	ref    graph.PortRef
	hasRef bool
}

// liveBuf identifies one device allocation owned by the running query.
type liveBuf struct {
	dev device.ID
	buf devmem.BufferID
}

type executor struct {
	ctx   context.Context
	rt    *hub.Runtime
	g     *graph.Graph
	opts  Options
	flags modeFlags

	ports   map[graph.PortRef]*portState
	base    vclock.Time
	chain   vclock.Time // serial dependency chain for non-overlapped models
	horizon vclock.Time

	// live tracks every buffer this query has allocated and not yet
	// freed, so cancellation and errors can release the query's whole
	// footprint — a session must never leak device or pinned memory into
	// a shared engine.
	live map[liveBuf]struct{}

	// remap redirects logical device IDs after a failover: once a device
	// dies and the query re-places, every plan reference to the dead
	// device resolves to its fallback. events and retries feed the
	// degradation fields of Stats.
	remap   map[device.ID]device.ID
	events  []RuntimeEvent
	retries int64

	// poolLeases are the buffer-pool leases the run holds on cached base
	// columns; poolPorts maps each pooled scan node to its lease. Pooled
	// buffers are pool-owned: they never enter live (the leak barrier must
	// not free them) and are returned by releaseLeases at teardown and
	// before every recovery attempt.
	poolLeases []*bufpool.Lease
	poolPorts  map[graph.NodeID]*bufpool.Lease

	// chunkEff is the effective chunk size in elements for the current
	// attempt. It starts at Options.chunkElems() and is halved by the
	// adaptive OOM ladder (recoverAttempt), never below minChunkElems().
	chunkEff int
	// faults counts device-interface errors per device across the whole
	// run, feeding Stats.FaultsByDevice and the session health tracker.
	faults map[device.ID]int64

	builders    map[graph.PortRef]*hostAccum
	trace       []FootprintSample
	chunksTotal int

	// re-planning state. estRows are the optimizer's per-pipeline input
	// estimates (graph.EstimateRows, aligned with the pipelines slice);
	// drift collects the estimated-vs-observed samples of the current
	// attempt; replanned bounds Options.Replan to one restart per query.
	estRows   []int
	drift     []DriftSample
	replanned bool
	replans   int

	// tracing state. rec is nil when tracing is off; every other field is
	// only consulted behind a rec != nil guard, so the disabled path does
	// no tracing work at all. qspan/pspan/cspan are the open container
	// spans; pidx/cidx/curNode/opLabel attribute the next engine span;
	// lastKernel is the most recent kernel span (its row count is learned
	// only after the count buffer is retrieved).
	rec        *trace.Recorder
	qspan      trace.SpanID
	pspan      trace.SpanID
	cspan      trace.SpanID
	lastKernel trace.SpanID
	pidx       int
	cidx       int
	curNode    int
	opLabel    string

	// per-pipeline state
	perChunkAllocs []alloc
	pipelineAllocs []alloc
	counts         map[graph.NodeID]devmem.BufferID
	staging        map[graph.NodeID][]devmem.BufferID
	pendingUses    map[graph.PortRef]int
}

// checkCtx reports the context's cancellation — and, when Options.Deadline
// is set, a virtual-time deadline overrun — as an execution error. It is
// consulted at pipeline and chunk boundaries: the granularity at which a
// query can stop without leaving a device operation half-issued.
func (x *executor) checkCtx() error {
	if x.ctx != nil {
		if err := x.ctx.Err(); err != nil {
			return fmt.Errorf("exec: query cancelled at chunk boundary: %w", err)
		}
	}
	if d := x.opts.Deadline; d > 0 {
		if elapsed := x.horizon.Sub(x.base); elapsed > d {
			if x.opts.Events != nil {
				x.opts.Events.Emit(telemetry.Event{
					Type: telemetry.EventDeadline, Query: x.opts.QueryID,
					VT:     int64(x.horizon),
					Detail: fmt.Sprintf("elapsed %v > deadline %v", elapsed, d),
				})
			}
			if x.rec != nil {
				x.rec.Add(trace.Span{
					Parent: x.qspan, Kind: trace.KindDeadline,
					Label: fmt.Sprintf("elapsed %v > deadline %v", elapsed, d),
					Start: x.horizon, End: x.horizon,
					Node: -1, Pipeline: -1, Chunk: -1,
				})
			}
			return fmt.Errorf("exec: query overran its deadline at chunk boundary (elapsed %v, deadline %v): %w",
				elapsed, d, vclock.ErrDeadline)
		}
	}
	return nil
}

// track records a device allocation as owned by this query.
func (x *executor) track(dev device.ID, buf devmem.BufferID) {
	x.live[liveBuf{dev, buf}] = struct{}{}
}

// parentSpan is the innermost open container span.
func (x *executor) parentSpan() trace.SpanID {
	if x.cspan != trace.NoSpan {
		return x.cspan
	}
	if x.pspan != trace.NoSpan {
		return x.pspan
	}
	return x.qspan
}

// setOp attributes the next engine spans to a plan node and operation
// label. A no-op without a recorder.
func (x *executor) setOp(node graph.NodeID, label string) {
	if x.rec == nil {
		return
	}
	x.curNode = int(node)
	x.opLabel = label
}

// free releases one tracked buffer. Frees deliberately bypass the failover
// remap and the retry wrapper (a buffer on a dead device must be freed
// there, and deletion never faults), so tracing wraps the raw device here.
func (x *executor) free(dev device.ID, buf devmem.BufferID) error {
	d, err := x.rt.Device(dev)
	if err != nil {
		return err
	}
	delete(x.live, liveBuf{dev, buf})
	if x.rec != nil {
		d = &traced{x: x, name: d.Info().Name, d: d}
	}
	return d.DeleteMemory(buf)
}

// releaseAll frees every buffer the query still owns: the delete phase on
// success, and the leak barrier on cancellation or error. Buffers already
// gone (views invalidated by a parent free) are skipped. The failover path
// passes traced=true so the re-placement's frees appear in the trace (they
// fall inside the statistics window); the deferred end-of-run teardown
// runs after statistics are assembled and stays untraced, keeping the
// trace's engine spans in balance with Stats.
func (x *executor) releaseAll(traced_ bool) {
	order := make([]liveBuf, 0, len(x.live))
	for lb := range x.live {
		order = append(order, lb)
	}
	// Free in a deterministic order: the virtual-time outcome is the same
	// either way, but traces are diffed byte-for-byte.
	sort.Slice(order, func(i, j int) bool {
		if order[i].dev != order[j].dev {
			return order[i].dev < order[j].dev
		}
		return order[i].buf < order[j].buf
	})
	for _, lb := range order {
		d, err := x.rt.Device(lb.dev)
		if err != nil {
			continue
		}
		if traced_ && x.rec != nil {
			x.setOp(-1, "failover teardown")
			d = &traced{x: x, name: d.Info().Name, d: d}
		}
		if err := d.DeleteMemory(lb.buf); err != nil && !errors.Is(err, devmem.ErrUnknownBuffer) {
			// Nothing actionable mid-teardown; the pool's accounting
			// stays consistent either way.
			continue
		}
	}
	x.live = make(map[liveBuf]struct{})
}

func (x *executor) run(pipelines []*graph.Pipeline) (*Result, error) {
	wallStart := time.Now()
	// Results are copied to the host before return, so everything the
	// query allocated — staging, scratch, accumulators, routed copies —
	// is released when it finishes, is cancelled, or fails. A shared
	// engine must come back to its memory baseline after every session.
	// Pool leases release after the query's own buffers: the pool keeps
	// its columns (that is the point), it only loses this query's
	// eviction pin.
	defer x.releaseLeases()
	defer x.releaseAll(false)

	// Establish the virtual time base: everything in this run happens
	// after all prior activity on every device. The device snapshot is
	// taken once so a device plugged mid-flight by another session cannot
	// skew the before/after statistics delta.
	devs := x.rt.Devices()
	before := make(map[device.ID]device.Stats)
	for i, d := range devs {
		id := device.ID(i)
		before[id] = d.Stats()
		if a := d.CopyEngine().Avail(); a > x.base {
			x.base = a
		}
		if a := d.ComputeEngine().Avail(); a > x.base {
			x.base = a
		}
	}
	x.chain = x.base
	x.horizon = x.base
	if x.rec != nil {
		x.qspan = x.rec.Add(trace.Span{
			Parent: trace.NoSpan, Kind: trace.KindQuery,
			Label: x.opts.Model.String(),
			Start: x.base, End: x.base,
			Node: -1, Pipeline: -1, Chunk: -1,
		})
		for _, note := range x.opts.PlanNotes {
			x.rec.Add(trace.Span{
				Parent: x.qspan, Kind: trace.KindAutoPlan,
				Label: note,
				Start: x.base, End: x.base,
				Node: -1, Pipeline: -1, Chunk: -1,
			})
		}
	}
	x.estRows = graph.EstimateRows(x.g, pipelines)

	// Each attempt runs the whole plan; recoverAttempt decides whether a
	// failed attempt may retry (failover onto a fallback device, or one
	// step of the adaptive OOM ladder), releasing everything the attempt
	// allocated so the plan restarts from its host-resident scans — the
	// coarsest but always-correct re-placement. The bound covers one
	// failover per plugged device plus the longest possible halving ladder
	// (chunk sizes are int: at most ~32 halvings) and a final re-place.
	maxAttempts := len(devs) + 34
	if x.opts.Replan != nil {
		maxAttempts++ // the one re-plan restart is not a failure
	}
	x.chunkEff = x.opts.chunkElems()
	var runErr error
	var columns []ResultColumn
	for attempt := 0; ; attempt++ {
		x.resetAttempt()
		columns, runErr = x.attemptRun(pipelines)
		if runErr == nil || attempt >= maxAttempts {
			break
		}
		if !x.recoverAttempt(runErr) {
			break
		}
	}

	// Statistics are assembled whether the run succeeded, failed or was
	// cancelled: an early return must still report the partial work done.
	res := &Result{Columns: columns}
	res.Stats = Stats{
		Elapsed:        x.horizon.Sub(x.base),
		Wall:           time.Since(wallStart),
		Chunks:         x.chunksTotal,
		Pipelines:      len(pipelines),
		Footprint:      x.trace,
		Retries:        x.retries,
		Events:         x.events,
		FaultsByDevice: x.faults,
		Drift:          x.drift,
		Replans:        x.replans,
	}
	for i, d := range devs {
		delta := statsDelta(d.Stats(), before[device.ID(i)])
		res.Stats.KernelTime += delta.KernelTime
		res.Stats.TransferTime += delta.TransferTime
		res.Stats.OverheadTime += delta.OverheadTime
		res.Stats.H2DBytes += delta.H2DBytes
		res.Stats.D2HBytes += delta.D2HBytes
		res.Stats.Launches += delta.Launches
		if pk := d.MemStats().Peak; pk > res.Stats.PeakDeviceBytes {
			res.Stats.PeakDeviceBytes = pk
		}
	}
	if runErr != nil {
		// Cancellation and faults still report the partial statistics, so
		// callers (the CLI's SIGINT path) can print what happened before
		// the cut.
		res.Columns = nil
		return res, runErr
	}
	return res, nil
}

// resetAttempt clears all per-attempt execution state so the plan can run
// (or re-run, after a failover) from its host-resident inputs.
func (x *executor) resetAttempt() {
	x.ports = make(map[graph.PortRef]*portState)
	x.builders = make(map[graph.PortRef]*hostAccum)
	x.pendingUses = make(map[graph.PortRef]int)
	x.perChunkAllocs = nil
	x.pipelineAllocs = nil
	x.counts = nil
	x.staging = nil
	x.drift = x.drift[:0]
	if x.flags.wholeInput {
		// Whole intermediates free as soon as every consumer anywhere in
		// the plan has run (the footprint curve of Figure 7 right).
		for _, e := range x.g.Edges() {
			x.pendingUses[graph.PortRef{Node: e.From, Port: e.FromPort}]++
		}
	}
	// A re-run happens strictly after everything the failed attempt
	// issued; the serial chain restarts at the current horizon.
	x.chain = x.horizon
}

// attemptRun executes every pipeline and collects the named results. It is
// one failover attempt: any error aborts the attempt and reports it.
func (x *executor) attemptRun(pipelines []*graph.Pipeline) ([]ResultColumn, error) {
	for i, p := range pipelines {
		if err := x.checkCtx(); err != nil {
			return nil, err
		}
		est := 0
		if i < len(x.estRows) {
			est = x.estRows[i]
		}
		actual := x.actualRows(p)
		x.drift = append(x.drift, DriftSample{Pipeline: p.Index, EstRows: est, ActualRows: actual})
		// Consult the re-planner at pipeline boundaries after the first:
		// the first pipeline reads host-resident scans whose cardinality
		// is exact, so only downstream pipelines can drift.
		if x.opts.Replan != nil && !x.replanned && i > 0 {
			if err := x.maybeReplan(p, est, actual); err != nil {
				return nil, err
			}
		}
		if err := x.runPipeline(p); err != nil {
			return nil, fmt.Errorf("exec: %s: %w", p, err)
		}
	}
	var columns []ResultColumn
	for _, r := range x.g.Results() {
		col, err := x.collectResult(r)
		if err != nil {
			return nil, err
		}
		columns = append(columns, col)
	}
	return columns, nil
}

// actualRows observes the pipeline's true input cardinality just before it
// runs: scan-fed pipelines read their host columns exactly, and
// intermediate-fed pipelines read the materialized port lengths their
// upstream pipelines produced.
func (x *executor) actualRows(p *graph.Pipeline) int {
	if sr := p.ScanRows(x.g); sr > 0 || len(p.Scans) > 0 {
		return sr
	}
	rows := 0
	for _, nid := range p.Nodes {
		for _, e := range x.g.Node(nid).Inputs() {
			if ps, ok := x.ports[graph.PortRef{Node: e.From, Port: e.FromPort}]; ok && ps.n > rows {
				rows = ps.n
			}
		}
	}
	return rows
}

// maybeReplan asks Options.Replan whether the observed drift warrants a
// restart with a new chunk size. A fired re-plan records the event and
// span, switches the effective chunk size, and aborts the attempt with
// errReplan so the attempt loop restarts from the host-resident scans —
// the same always-correct restart failover uses.
func (x *executor) maybeReplan(p *graph.Pipeline, est, actual int) error {
	nc, ok := x.opts.Replan(ReplanObservation{
		Pipeline: p.Index, EstRows: est, ActualRows: actual, ChunkElems: x.chunkEff,
	})
	if !ok {
		return nil
	}
	nc = (nc + 63) &^ 63
	if nc < 64 {
		nc = 64
	}
	if nc == x.chunkEff {
		return nil
	}
	x.replanned = true
	x.replans++
	x.events = append(x.events, RuntimeEvent{
		Kind: EventReplan, ChunkFrom: x.chunkEff, ChunkTo: nc,
	})
	if x.opts.Events != nil {
		x.opts.Events.Emit(telemetry.Event{
			Type: telemetry.EventReplan, Query: x.opts.QueryID,
			VT: int64(x.horizon),
			Detail: fmt.Sprintf("chunk %d->%d: pipeline %d rows est %d actual %d",
				x.chunkEff, nc, p.Index, est, actual),
		})
	}
	if x.rec != nil {
		x.rec.Add(trace.Span{
			Parent: x.qspan, Kind: trace.KindReplan,
			Label: fmt.Sprintf("chunk %d->%d: pipeline %d rows est %d actual %d",
				x.chunkEff, nc, p.Index, est, actual),
			Start: x.horizon, End: x.horizon,
			Node: -1, Pipeline: p.Index, Chunk: -1,
		})
	}
	x.chunkEff = nc
	return errReplan
}

func (x *executor) observe(t vclock.Time) {
	if t > x.horizon {
		x.horizon = t
	}
}

// ready returns the dependency event for the next operation: the serial
// chain for synchronous models, or the supplied data dependencies when the
// model allows overlap.
func (x *executor) ready(data vclock.Time) vclock.Time {
	if x.flags.overlap {
		return vclock.MaxTime(data, x.base)
	}
	return vclock.MaxTime(data, x.chain)
}

// advance records an operation's completion.
func (x *executor) advance(end vclock.Time) {
	x.observe(end)
	if !x.flags.overlap && end > x.chain {
		x.chain = end
	}
}

func (x *executor) runPipeline(p *graph.Pipeline) error {
	if x.rec != nil {
		x.pidx = p.Index
		x.pspan = x.rec.Add(trace.Span{
			Parent: x.qspan, Kind: trace.KindPipeline,
			Label: fmt.Sprintf("pipeline %d", p.Index),
			Start: x.horizon, End: x.horizon,
			Node: -1, Pipeline: p.Index, Chunk: -1,
		})
		defer func() {
			x.pspan, x.cspan = trace.NoSpan, trace.NoSpan
			x.pidx, x.cidx = -1, -1
		}()
	}
	rows := p.ScanRows(x.g)
	chunkElems := x.chunkEff
	if x.flags.wholeInput || rows == 0 || chunkElems > rows {
		chunkElems = rows
	}
	chunks := 1
	if rows > 0 && chunkElems > 0 {
		chunks = (rows + chunkElems - 1) / chunkElems
	}
	singlePass := chunks == 1

	x.perChunkAllocs = nil
	x.pipelineAllocs = nil
	x.counts = make(map[graph.NodeID]devmem.BufferID)
	x.staging = make(map[graph.NodeID][]devmem.BufferID)

	// ---- Stage phase: accumulators, count buffers, reusable staging and
	// scratch (Algorithm 3's first loop).
	if err := x.stagePhase(p, rows, chunkElems, singlePass); err != nil {
		return err
	}

	// ---- Copy/compute phase.
	if rows == 0 && len(p.Scans) > 0 {
		// A zero-row scan pipeline streams nothing: no chunk is staged and
		// no primitive launches. Accumulators keep their initialized state
		// (a sum over nothing is the init value) and streamed results are
		// pinned to empty so collection does not look for dead ports.
		x.emptyStreamedResults(p)
		return x.deletePhase()
	}
	primary, err := x.primaryDevice(p)
	if err != nil {
		return err
	}
	// Shallow pipelines (fewer than 1.5 kernels per streamed column — a
	// breaker straight after the transfer, like Q4's hash build) leave the
	// SDK no work to enqueue between pinned writes, triggering the
	// re-mapping pathology some drivers exhibit (the paper's Q4/OpenCL
	// case).
	shallow := len(p.Scans) > 0 && 2*len(p.Nodes) < 3*len(p.Scans)
	// chunkDone[s] is the completion of the chunk last staged in slot s;
	// a slot cannot be overwritten before its previous occupant finished.
	chunkDone := make([]vclock.Time, x.opts.stagingBuffers())
	for c := 0; c < chunks; c++ {
		// Chunk boundaries are the cancellation points: the previous
		// chunk's operations are fully issued and no buffer is in a
		// half-staged state.
		if err := x.checkCtx(); err != nil {
			return err
		}
		off := c * chunkElems
		n := rows - off
		if chunkElems > 0 && n > chunkElems {
			n = chunkElems
		}
		if rows == 0 {
			n = 0
		}
		x.chunksTotal++
		if x.rec != nil {
			x.cidx = c
			x.cspan = x.rec.Add(trace.Span{
				Parent: x.pspan, Kind: trace.KindChunk,
				Label: fmt.Sprintf("chunk %d", c),
				Start: x.horizon, End: x.horizon,
				Node: -1, Pipeline: p.Index, Chunk: c,
			})
		}

		// Stage this chunk's scan columns.
		slotFree := chunkDone[c%len(chunkDone)]
		if err := x.stageChunk(p, c, off, n, slotFree, shallow); err != nil {
			return err
		}

		// Execute every primitive of the pipeline over the chunk.
		var chunkEnd vclock.Time
		for _, nid := range p.Nodes {
			end, err := x.execNode(x.g.Node(nid), n, int64(off), singlePass)
			if err != nil {
				return err
			}
			if end > chunkEnd {
				chunkEnd = end
			}
		}
		chunkDone[c%len(chunkDone)] = chunkEnd

		// Per-chunk results concatenate on the host.
		if !singlePass {
			if err := x.appendChunkResults(p); err != nil {
				return err
			}
		}

		// Naive models release this chunk's allocations immediately.
		x.setOp(-1, "free chunk")
		for _, a := range x.perChunkAllocs {
			if err := x.free(a.dev, a.buf); err != nil {
				return err
			}
			if a.hasRef {
				delete(x.ports, a.ref)
			}
		}
		x.perChunkAllocs = nil

		if x.flags.syncPerChunk {
			x.setOp(-1, "chunk handshake")
			end := primary.Sync(x.ready(chunkEnd))
			x.advance(end)
		}
		if x.rec != nil {
			x.cspan, x.cidx = trace.NoSpan, -1
		}
	}

	return x.deletePhase()
}

// deletePhase releases pipeline-scoped buffers; accumulators and
// single-pass outputs stay for downstream pipelines and results.
func (x *executor) deletePhase() error {
	x.setOp(-1, "delete phase")
	for _, a := range x.pipelineAllocs {
		if err := x.free(a.dev, a.buf); err != nil {
			return err
		}
	}
	x.pipelineAllocs = nil
	return nil
}

// emptyStreamedResults registers empty host builders for every streamed
// (non-accumulating) result produced inside the pipeline, so a zero-row
// pipeline still yields its result columns — with zero rows.
func (x *executor) emptyStreamedResults(p *graph.Pipeline) {
	for _, r := range x.g.Results() {
		node := x.g.Node(r.Ref.Node)
		if node.IsScan() || node.Task.Accumulate {
			continue
		}
		for _, nid := range p.Nodes {
			if nid != r.Ref.Node {
				continue
			}
			if x.builders[r.Ref] == nil {
				x.builders[r.Ref] = newHostAccum(node.OutputSpec(r.Ref.Port).Type)
			}
			break
		}
	}
}

// primaryDevice is the device the pipeline's tasks run on (used for the
// per-chunk thread handshake).
func (x *executor) primaryDevice(p *graph.Pipeline) (device.Device, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("%w: pipeline %d has no tasks", graph.ErrBadGraph, p.Index)
	}
	_, d, err := x.device(x.g.Node(p.Nodes[0]).Device)
	return d, err
}

func (x *executor) stagePhase(p *graph.Pipeline, rows, chunkElems int, singlePass bool) error {
	// Accumulators and count buffers.
	for _, nid := range p.Nodes {
		n := x.g.Node(nid)
		t := n.Task
		dev, d, err := x.device(n.Device)
		if err != nil {
			return err
		}
		if t.Accumulate {
			x.setOp(nid, "accumulator")
			for port, spec := range t.Outputs {
				size := spec.Size.Elements(rows)
				buf, done, err := d.PrepareMemory(spec.Type, size, x.ready(x.base))
				if err != nil {
					return fmt.Errorf("%s: accumulator: %w", n, err)
				}
				x.track(dev, buf)
				x.advance(done)
				ps := &portState{dev: dev, buf: buf, capacity: size, n: size, ready: done, persistent: true}
				x.ports[graph.PortRef{Node: nid, Port: port}] = ps
				if t.InitKernel != "" {
					end, err := d.Execute(device.ExecRequest{
						Kernel: t.InitKernel,
						Args:   []devmem.BufferID{buf},
						Params: t.InitParams,
					}, x.ready(done))
					if err != nil {
						return fmt.Errorf("%s: init %s: %w", n, t.InitKernel, err)
					}
					ps.ready = end
					x.advance(end)
				}
			}
		}
		if t.EmitsCount {
			x.setOp(nid, "count buffer")
			buf, done, err := d.PrepareMemory(vec.Int64, 1, x.ready(x.base))
			if err != nil {
				return fmt.Errorf("%s: count buffer: %w", n, err)
			}
			x.track(dev, buf)
			x.advance(done)
			x.counts[nid] = buf
			x.pipelineAllocs = append(x.pipelineAllocs, alloc{dev: dev, buf: buf})
		}
	}

	// Base columns through the cross-query buffer pool: every model first
	// offers each scan to the pool. A leased column supersedes the model's
	// own staging — whole-input reads it directly, the chunked models view
	// chunks out of the resident column instead of re-shipping them — and
	// is pool-owned, so it appears in neither live nor the delete phase.
	if rows > 0 && x.opts.Pool != nil {
		for _, sid := range p.Scans {
			n := x.g.Node(sid)
			lease, ok, err := x.poolScan(sid, n)
			if err != nil {
				return fmt.Errorf("%s: pool: %w", n, err)
			}
			if !ok {
				continue
			}
			if x.flags.wholeInput {
				x.ports[graph.PortRef{Node: sid, Port: 0}] = &portState{
					dev: x.resolve(n.Device), buf: lease.Buffer(),
					capacity: rows, n: rows,
					ready: vclock.MaxTime(x.base, lease.Ready()),
				}
			}
		}
	}

	// Reusable staging double buffers (Figure 8).
	if x.flags.reuseStaging && !x.flags.wholeInput && rows > 0 {
		for _, sid := range p.Scans {
			if x.poolPorts[sid] != nil {
				continue
			}
			n := x.g.Node(sid)
			dev, d, err := x.device(n.Device)
			if err != nil {
				return err
			}
			x.setOp(sid, "staging "+n.Scan.Name)
			bufs := make([]devmem.BufferID, x.opts.stagingBuffers())
			for i := range bufs {
				var buf devmem.BufferID
				var done vclock.Time
				if x.flags.pinnedStaging {
					buf, done, err = d.AddPinnedMemory(n.Scan.Data.Type(), chunkElems, x.ready(x.base))
				} else {
					buf, done, err = d.PrepareMemory(n.Scan.Data.Type(), chunkElems, x.ready(x.base))
				}
				if err != nil {
					return fmt.Errorf("%s: staging: %w", n, err)
				}
				x.track(dev, buf)
				x.advance(done)
				bufs[i] = buf
				x.pipelineAllocs = append(x.pipelineAllocs, alloc{dev: dev, buf: buf})
			}
			x.staging[sid] = bufs
		}
	}

	// Whole-input staging (operator-at-a-time).
	if x.flags.wholeInput && rows > 0 {
		for _, sid := range p.Scans {
			if x.poolPorts[sid] != nil {
				continue
			}
			n := x.g.Node(sid)
			dev, d, err := x.device(n.Device)
			if err != nil {
				return err
			}
			x.setOp(sid, "place "+n.Scan.Name)
			buf, end, err := d.PlaceData(n.Scan.Data, x.ready(x.base))
			if err != nil {
				return fmt.Errorf("%s: place: %w", n, err)
			}
			x.track(dev, buf)
			x.advance(end)
			x.ports[graph.PortRef{Node: sid, Port: 0}] = &portState{
				dev: dev, buf: buf, capacity: rows, n: rows, ready: end,
			}
			x.pipelineAllocs = append(x.pipelineAllocs, alloc{dev: dev, buf: buf})
		}
	}

	// Reusable scratch for non-accumulating outputs.
	if x.flags.stagedScratch && !x.flags.wholeInput {
		per := chunkElems
		if rows == 0 {
			per = 0
		}
		for _, nid := range p.Nodes {
			n := x.g.Node(nid)
			t := n.Task
			if t.Accumulate {
				continue
			}
			dev, d, err := x.device(n.Device)
			if err != nil {
				return err
			}
			x.setOp(nid, "scratch")
			for port, spec := range t.Outputs {
				size := spec.Size.Elements(per)
				if size <= 0 {
					size = 1
				}
				buf, done, err := d.PrepareMemory(spec.Type, size, x.ready(x.base))
				if err != nil {
					return fmt.Errorf("%s: scratch: %w", n, err)
				}
				x.track(dev, buf)
				x.advance(done)
				x.ports[graph.PortRef{Node: nid, Port: port}] = &portState{
					dev: dev, buf: buf, capacity: size, ready: done, persistent: singlePass,
				}
				if !singlePass {
					x.pipelineAllocs = append(x.pipelineAllocs, alloc{dev: dev, buf: buf})
				}
			}
		}
	}
	return nil
}

// stageChunk transfers chunk c of every scan column to the device.
func (x *executor) stageChunk(p *graph.Pipeline, c, off, n int, slotFree vclock.Time, shallow bool) error {
	if n <= 0 {
		return nil
	}
	if x.flags.wholeInput {
		// Columns are already resident; narrow the ports to full length.
		return nil
	}
	for _, sid := range p.Scans {
		node := x.g.Node(sid)
		dev, d, err := x.device(node.Device)
		if err != nil {
			return err
		}
		hostChunk := node.Scan.Data.Slice(off, off+n)
		ref := graph.PortRef{Node: sid, Port: 0}
		x.setOp(sid, "stage "+node.Scan.Name)

		if lease := x.poolPorts[sid]; lease != nil {
			// The whole column is pool-resident: the chunk is a free view
			// into it, not a transfer. The view is query-owned (freed per
			// chunk); the column stays pooled.
			view, err := d.CreateChunk(lease.Buffer(), off, n)
			if err != nil {
				return fmt.Errorf("%s: view chunk %d: %w", node, c, err)
			}
			x.track(dev, view)
			x.ports[ref] = &portState{
				dev: dev, buf: view, capacity: n, n: n,
				ready: vclock.MaxTime(x.base, lease.Ready()),
			}
			x.perChunkAllocs = append(x.perChunkAllocs, alloc{dev: dev, buf: view, ref: ref, hasRef: true})
			continue
		}

		if x.flags.reuseStaging {
			slots := x.staging[sid]
			buf := slots[c%len(slots)]
			// The slot must not be overwritten before the chunk that
			// previously occupied it has been fully processed.
			end, err := d.PlaceDataInto(buf, 0, hostChunk, x.ready(slotFree))
			if err != nil {
				return fmt.Errorf("%s: stage chunk %d: %w", node, c, err)
			}
			if pen := d.Info().PinnedRemapPenalty; x.flags.pinnedStaging && shallow && pen > 0 {
				// The driver re-maps the pinned region synchronously:
				// effectively the transfer happens again, pen times.
				for r := 0; r < int(pen+0.5); r++ {
					end, err = d.PlaceDataInto(buf, 0, hostChunk, end)
					if err != nil {
						return fmt.Errorf("%s: remap chunk %d: %w", node, c, err)
					}
				}
			}
			x.advance(end)
			x.ports[ref] = &portState{dev: dev, buf: buf, capacity: cap0(x.chunkEff), n: n, ready: end, persistent: true}
			continue
		}

		// Naive: fresh allocation and transfer per chunk (Algorithm 1).
		buf, end, err := d.PlaceData(hostChunk, x.ready(x.base))
		if err != nil {
			return fmt.Errorf("%s: stage chunk %d: %w", node, c, err)
		}
		x.track(dev, buf)
		x.advance(end)
		x.ports[ref] = &portState{dev: dev, buf: buf, capacity: n, n: n, ready: end}
		x.perChunkAllocs = append(x.perChunkAllocs, alloc{dev: dev, buf: buf, ref: ref, hasRef: true})
	}
	return nil
}

func cap0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// execNode launches one primitive over the current chunk.
func (x *executor) execNode(n *graph.Node, chunkN int, chunkBase int64, singlePass bool) (vclock.Time, error) {
	t := n.Task
	dev, d, err := x.device(n.Device)
	if err != nil {
		return 0, err
	}

	var args []devmem.BufferID
	var views []devmem.BufferID
	dataReady := x.base

	// Input arguments: route cross-device data, then narrow each buffer
	// to its logical chunk length.
	inputNs := make([]int, 0, len(n.Inputs()))
	for i, e := range n.Inputs() {
		ref := graph.PortRef{Node: e.From, Port: e.FromPort}
		ps, ok := x.ports[ref]
		if !ok {
			return 0, fmt.Errorf("%s: input %d (%s) not materialized", n, i, e)
		}
		if ps.dev != dev {
			// Route through the wrapped endpoints so transfer faults on
			// either leg are retried like any other transfer.
			_, sd, err := x.device(ps.dev)
			if err != nil {
				return 0, err
			}
			x.setOp(e.From, "route")
			buf, end, err := hub.RouteBetween(sd, d, ps.buf, ps.n, x.ready(ps.ready))
			if err != nil {
				return 0, fmt.Errorf("%s: route input %d: %w", n, i, err)
			}
			x.track(dev, buf)
			x.advance(end)
			routed := *ps
			routed.dev = dev
			routed.buf = buf
			routed.capacity = ps.n
			routed.ready = end
			ps = &routed
			x.ports[ref] = ps
		}
		inputNs = append(inputNs, ps.n)
		arg := ps.buf
		if ps.n != ps.capacity {
			view, err := d.CreateChunk(ps.buf, 0, ps.n)
			if err != nil {
				return 0, fmt.Errorf("%s: view input %d: %w", n, i, err)
			}
			x.track(dev, view)
			views = append(views, view)
			arg = view
		}
		args = append(args, arg)
		if ps.ready > dataReady {
			dataReady = ps.ready
		}
	}

	// Output arguments.
	type outInfo struct {
		ref  graph.PortRef
		ps   *portState
		spec task.OutputSpec
	}
	outs := make([]outInfo, 0, len(t.Outputs))
	for port, spec := range t.Outputs {
		ref := graph.PortRef{Node: n.ID, Port: port}
		ps, ok := x.ports[ref]
		if !ok {
			// Per-chunk allocation (naive models).
			x.setOp(n.ID, "output")
			size := spec.Size.Elements(chunkN)
			if size <= 0 {
				size = 1
			}
			buf, done, err := d.PrepareMemory(spec.Type, size, x.ready(dataReady))
			if err != nil {
				return 0, fmt.Errorf("%s: output %d: %w", n, port, err)
			}
			x.track(dev, buf)
			if done > dataReady {
				dataReady = done
			}
			x.advance(done)
			ps = &portState{dev: dev, buf: buf, capacity: size, ready: done, persistent: singlePass && !x.flags.wholeInput}
			x.ports[ref] = ps
			if !singlePass && !t.Accumulate {
				x.perChunkAllocs = append(x.perChunkAllocs, alloc{dev: dev, buf: buf, ref: ref, hasRef: true})
			}
		}
		// Logical output length: input-sized ports follow the logical
		// length of their designated input port; fixed and estimated
		// ports expose capacity until a count narrows them.
		switch spec.Size.Kind {
		case task.SizeInput:
			port := spec.Size.N
			if port >= len(inputNs) {
				port = 0
			}
			if len(inputNs) > 0 {
				ps.n = inputNs[port]
			} else {
				ps.n = chunkN
			}
		default:
			ps.n = ps.capacity
		}
		if ps.ready > dataReady {
			dataReady = ps.ready // accumulators: wait for previous fold
		}
		arg := ps.buf
		if ps.n != ps.capacity {
			view, err := d.CreateChunk(ps.buf, 0, ps.n)
			if err != nil {
				return 0, fmt.Errorf("%s: view output %d: %w", n, port, err)
			}
			x.track(dev, view)
			views = append(views, view)
			arg = view
		}
		args = append(args, arg)
		outs = append(outs, outInfo{ref: ref, ps: ps, spec: spec})
	}
	if t.EmitsCount {
		args = append(args, x.counts[n.ID])
	}

	// Scalar parameters, with the chunk's global base row injected where
	// the kernel needs global positions.
	params := t.Params
	if t.ChunkBaseParam >= 0 {
		params = append([]int64(nil), t.Params...)
		params[t.ChunkBaseParam] = chunkBase
	}

	x.setOp(n.ID, t.Kernel)
	end, err := d.Execute(device.ExecRequest{Kernel: t.Kernel, Args: args, Params: params}, x.ready(dataReady))
	if err != nil {
		return 0, fmt.Errorf("%s: %w", n, err)
	}
	x.advance(end)
	if x.rec != nil && x.lastKernel != trace.NoSpan {
		// Input cardinality: the work this launch processed. The cost
		// catalog normalizes rates by this, not by the output Rows.
		units := int64(chunkN)
		for _, in := range inputNs {
			if int64(in) > units {
				units = int64(in)
			}
		}
		x.rec.SetUnits(x.lastKernel, units)
	}
	for _, o := range outs {
		o.ps.ready = end
	}

	// Retrieve the result cardinality and narrow the counted ports: the
	// host must know how much of the estimated output is real before it
	// can launch dependent kernels.
	if t.EmitsCount {
		x.setOp(n.ID, "count")
		host := vec.New(vec.Int64, 1)
		cend, err := d.RetrieveData(x.counts[n.ID], 0, 1, host, end)
		if err != nil {
			return 0, fmt.Errorf("%s: retrieve count: %w", n, err)
		}
		x.advance(cend)
		count := int(host.I64()[0])
		for _, port := range t.CountSets {
			ps := x.ports[graph.PortRef{Node: n.ID, Port: port}]
			if count > ps.capacity {
				return 0, fmt.Errorf("%s: count %d exceeds output capacity %d", n, count, ps.capacity)
			}
			ps.n = count
			ps.ready = cend
		}
		end = cend
	}

	// The kernel's result cardinality is known only now: streamed outputs
	// narrow to the count, everything else keeps its logical length.
	if x.rec != nil && x.lastKernel != trace.NoSpan {
		if ps0, ok := x.ports[graph.PortRef{Node: n.ID, Port: 0}]; ok {
			x.rec.SetRows(x.lastKernel, int64(ps0.n))
		}
		x.lastKernel = trace.NoSpan
	}

	// Views were only needed to shape this launch.
	x.setOp(n.ID, "free view")
	for _, v := range views {
		if err := x.free(dev, v); err != nil {
			return 0, err
		}
	}

	// Whole-input mode frees intermediates after their last consumer.
	if x.flags.wholeInput {
		if err := x.releaseDeadInputs(n); err != nil {
			return 0, err
		}
	}

	if x.opts.Trace {
		x.trace = append(x.trace, FootprintSample{Label: n.String(), Bytes: x.deviceBytes()})
	}
	return end, nil
}

func (x *executor) releaseDeadInputs(n *graph.Node) error {
	for _, e := range n.Inputs() {
		ref := graph.PortRef{Node: e.From, Port: e.FromPort}
		x.pendingUses[ref]--
		if x.pendingUses[ref] > 0 {
			continue
		}
		ps := x.ports[ref]
		if ps == nil || ps.persistent || x.isResult(ref) {
			continue
		}
		src := x.g.Node(e.From)
		if src.IsScan() {
			continue // freed in the delete phase
		}
		if src.Task != nil && src.Task.Accumulate {
			continue
		}
		x.setOp(e.From, "free dead input")
		if err := x.free(ps.dev, ps.buf); err != nil {
			return err
		}
		delete(x.ports, ref)
		if x.opts.Trace {
			x.trace = append(x.trace, FootprintSample{Label: "free " + src.String(), Bytes: x.deviceBytes()})
		}
	}
	return nil
}

func (x *executor) isResult(ref graph.PortRef) bool {
	for _, r := range x.g.Results() {
		if r.Ref == ref || (r.Avg && r.Count == ref) {
			return true
		}
	}
	return false
}

func (x *executor) deviceBytes() int64 {
	var total int64
	for _, d := range x.rt.Devices() {
		total += d.MemStats().Used
	}
	return total
}

// appendChunkResults concatenates per-chunk result ports on the host.
func (x *executor) appendChunkResults(p *graph.Pipeline) error {
	for _, r := range x.g.Results() {
		node := x.g.Node(r.Ref.Node)
		if node.IsScan() || node.Task.Accumulate {
			continue
		}
		inPipeline := false
		for _, nid := range p.Nodes {
			if nid == r.Ref.Node {
				inPipeline = true
				break
			}
		}
		if !inPipeline {
			continue
		}
		ps := x.ports[r.Ref]
		if ps == nil {
			continue
		}
		if ps.n == 0 {
			if x.builders[r.Ref] == nil {
				x.builders[r.Ref] = newHostAccum(node.OutputSpec(r.Ref.Port).Type)
			}
			continue
		}
		_, d, err := x.device(ps.dev)
		if err != nil {
			return err
		}
		x.setOp(r.Ref.Node, "result "+r.Name)
		host := vec.New(node.OutputSpec(r.Ref.Port).Type, ps.n)
		end, err := d.RetrieveData(ps.buf, 0, ps.n, host, x.ready(ps.ready))
		if err != nil {
			return fmt.Errorf("result %q: %w", r.Name, err)
		}
		x.advance(end)
		if x.builders[r.Ref] == nil {
			x.builders[r.Ref] = newHostAccum(host.Type())
		}
		if err := x.builders[r.Ref].append(host); err != nil {
			return fmt.Errorf("result %q: %w", r.Name, err)
		}
	}
	return nil
}

// collectResult retrieves one named result to the host. AVG results
// retrieve their SUM and COUNT partials and finalize the division here —
// after aggregation, so sharded runs can merge raw partials first and share
// the same finalization.
func (x *executor) collectResult(r graph.Result) (ResultColumn, error) {
	if r.Avg {
		sum, err := x.collectPort(r.Ref, r.Name)
		if err != nil {
			return ResultColumn{}, err
		}
		count, err := x.collectPort(r.Count, r.Name)
		if err != nil {
			return ResultColumn{}, err
		}
		if sum.Type() != vec.Int64 || sum.Len() != 1 || count.Type() != vec.Int64 || count.Len() != 1 {
			return ResultColumn{}, fmt.Errorf("exec: avg result %q needs int64 scalar sum and count partials", r.Name)
		}
		avg := FinalizeAvg(sum.I64()[0], count.I64()[0])
		return ResultColumn{Name: r.Name, Data: vec.FromFloat64([]float64{avg})}, nil
	}
	v, err := x.collectPort(r.Ref, r.Name)
	if err != nil {
		return ResultColumn{}, err
	}
	return ResultColumn{Name: r.Name, Data: v}, nil
}

// collectPort retrieves the raw contents of one result port.
func (x *executor) collectPort(ref graph.PortRef, name string) (vec.Vector, error) {
	r := graph.Result{Name: name, Ref: ref}
	if b, ok := x.builders[r.Ref]; ok {
		return b.vec(), nil
	}
	ps, ok := x.ports[r.Ref]
	if !ok {
		return vec.Vector{}, fmt.Errorf("exec: result %q was never materialized", r.Name)
	}
	if ps.n == 0 {
		// Canonical empty: the same nil-backed vector the per-chunk
		// accumulation path produces, so a zero-row result is bit-identical
		// across execution models.
		node := x.g.Node(r.Ref.Node)
		return newHostAccum(node.OutputSpec(r.Ref.Port).Type).vec(), nil
	}
	_, d, err := x.device(ps.dev)
	if err != nil {
		return vec.Vector{}, err
	}
	node := x.g.Node(r.Ref.Node)
	x.setOp(r.Ref.Node, "result "+r.Name)
	host := vec.New(node.OutputSpec(r.Ref.Port).Type, ps.n)
	end, err := d.RetrieveData(ps.buf, 0, ps.n, host, x.ready(ps.ready))
	if err != nil {
		return vec.Vector{}, fmt.Errorf("exec: retrieve result %q: %w", r.Name, err)
	}
	x.advance(end)
	return host, nil
}

// FinalizeAvg turns merged SUM and COUNT partials into the AVG value; a
// zero count (no qualifying rows) finalizes to 0 rather than NaN so the
// result is deterministic and comparable bit for bit.
func FinalizeAvg(sum, count int64) float64 {
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// hostAccum concatenates per-chunk result fragments on the host.
type hostAccum struct {
	t   vec.Type
	i32 []int32
	i64 []int64
	f64 []float64
}

func newHostAccum(t vec.Type) *hostAccum { return &hostAccum{t: t} }

func (h *hostAccum) append(v vec.Vector) error {
	if v.Type() != h.t {
		return fmt.Errorf("exec: result fragment type %s, want %s", v.Type(), h.t)
	}
	switch h.t {
	case vec.Int32:
		h.i32 = append(h.i32, v.I32()...)
	case vec.Int64:
		h.i64 = append(h.i64, v.I64()...)
	case vec.Float64:
		h.f64 = append(h.f64, v.F64()...)
	default:
		return fmt.Errorf("exec: cannot concatenate %s results across chunks", h.t)
	}
	return nil
}

func (h *hostAccum) vec() vec.Vector {
	switch h.t {
	case vec.Int32:
		return vec.FromInt32(h.i32)
	case vec.Int64:
		return vec.FromInt64(h.i64)
	case vec.Float64:
		return vec.FromFloat64(h.f64)
	default:
		return vec.Vector{}
	}
}
