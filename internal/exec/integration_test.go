package exec_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vec"
)

// testRig registers the paper's four driver configurations on one runtime.
type testRig struct {
	rt      *hub.Runtime
	devices map[string]device.ID
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	rt := hub.NewRuntime()
	rig := &testRig{rt: rt, devices: make(map[string]device.ID)}
	add := func(name string, d device.Device) {
		id, err := rt.Register(d)
		if err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
		rig.devices[name] = id
	}
	add("cuda", simcuda.New(&simhw.RTX2080Ti, nil))
	add("opencl-gpu", simopencl.NewGPU(&simhw.RTX2080Ti, nil))
	add("opencl-cpu", simopencl.NewCPU(&simhw.CoreI78700, nil))
	add("openmp", simomp.New(&simhw.CoreI78700, nil))
	return rig
}

func testDataset(t *testing.T) *tpch.Dataset {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 42})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds
}

var allModels = []exec.Model{
	exec.OperatorAtATime,
	exec.Chunked,
	exec.Pipelined,
	exec.FourPhaseChunked,
	exec.FourPhasePipelined,
}

// TestQ6AllDriversAllModels checks that every driver and every execution
// model produces the reference Q6 answer.
func TestQ6AllDriversAllModels(t *testing.T) {
	ds := testDataset(t)
	want := tpch.RefQ6(ds)
	rig := newRig(t)

	for name, dev := range rig.devices {
		for _, model := range allModels {
			t.Run(fmt.Sprintf("%s/%s", name, model), func(t *testing.T) {
				g, err := tpch.BuildQ6(ds, dev)
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				res, err := exec.Run(rig.rt, g, exec.Options{Model: model, ChunkElems: 8192})
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				col, ok := res.Column("revenue")
				if !ok {
					t.Fatalf("missing revenue column")
				}
				if got := col.I64()[0]; got != want {
					t.Errorf("revenue = %d, want %d", got, want)
				}
				if res.Stats.Elapsed <= 0 {
					t.Errorf("non-positive elapsed time %v", res.Stats.Elapsed)
				}
			})
		}
	}
}

// TestQ3AllModels checks the multi-join query on the CUDA driver across
// models, comparing per-group revenues.
func TestQ3AllModels(t *testing.T) {
	ds := testDataset(t)
	want := tpch.RefQ3(ds)
	rig := newRig(t)

	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			g, err := tpch.BuildQ3(ds, rig.devices["cuda"])
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			res, err := exec.Run(rig.rt, g, exec.Options{Model: model, ChunkElems: 8192})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			keys, _ := res.Column("l_orderkey")
			revs, _ := res.Column("revenue")
			got := make(map[int64]int64, keys.Len())
			for i := 0; i < keys.Len(); i++ {
				got[keys.I64()[i]] = revs.I64()[i]
			}
			if len(got) != len(want) {
				t.Fatalf("got %d groups, want %d", len(got), len(want))
			}
			checked := 0
			for k, v := range want {
				if got[k] != v {
					t.Errorf("group %d revenue = %d, want %d", k, got[k], v)
					checked++
					if checked > 5 {
						t.FailNow()
					}
				}
			}
		})
	}
}

// TestQ4AllModels checks the EXISTS-subquery plan.
func TestQ4AllModels(t *testing.T) {
	ds := testDataset(t)
	want := tpch.RefQ4(ds)
	rig := newRig(t)

	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			g, err := tpch.BuildQ4(ds, rig.devices["opencl-gpu"])
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			res, err := exec.Run(rig.rt, g, exec.Options{Model: model, ChunkElems: 8192})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			prio, _ := res.Column("o_orderpriority")
			cnt, _ := res.Column("order_count")
			got := make(map[int64]int64)
			for i := 0; i < prio.Len(); i++ {
				got[prio.I64()[i]] = cnt.I64()[i]
			}
			if len(got) != len(want) {
				t.Fatalf("got %d priorities, want %d (got=%v want=%v)", len(got), len(want), got, want)
			}
			for k, v := range want {
				if got[k] != v {
					t.Errorf("priority %d count = %d, want %d", k, got[k], v)
				}
			}
		})
	}
}

// TestQ1AllModels checks the multi-aggregate group-by plan.
func TestQ1AllModels(t *testing.T) {
	ds := testDataset(t)
	want := tpch.RefQ1(ds)
	rig := newRig(t)

	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) {
			g, err := tpch.BuildQ1(ds, rig.devices["openmp"])
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			res, err := exec.Run(rig.rt, g, exec.Options{Model: model, ChunkElems: 8192})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			gk, _ := res.Column("rfls_qty")
			gq, _ := res.Column("sum_qty")
			rk, _ := res.Column("rfls_rev")
			rv, _ := res.Column("sum_rev")
			ck, _ := res.Column("rfls_cnt")
			cv, _ := res.Column("count")

			gotQty := toMap(gk.I64(), gq.I64())
			gotRev := toMap(rk.I64(), rv.I64())
			gotCnt := toMap(ck.I64(), cv.I64())
			if len(gotQty) != len(want) {
				t.Fatalf("got %d groups, want %d", len(gotQty), len(want))
			}
			for k, w := range want {
				if gotQty[k] != w.SumQty {
					t.Errorf("group %d sum_qty = %d, want %d", k, gotQty[k], w.SumQty)
				}
				if gotRev[k] != w.SumRev {
					t.Errorf("group %d sum_rev = %d, want %d", k, gotRev[k], w.SumRev)
				}
				if gotCnt[k] != w.Count {
					t.Errorf("group %d count = %d, want %d", k, gotCnt[k], w.Count)
				}
			}
		})
	}
}

func toMap(keys, vals []int64) map[int64]int64 {
	m := make(map[int64]int64, len(keys))
	for i := range keys {
		m[keys[i]] = vals[i]
	}
	return m
}

// TestModelTimingOrder checks the headline performance relationships on a
// transfer-bound query: 4-phase beats naive chunked on CUDA, and
// operator-at-a-time (everything resident) beats both once data fits.
func TestModelTimingOrder(t *testing.T) {
	ds := testDataset(t)
	rig := newRig(t)

	elapsed := make(map[exec.Model]float64)
	for _, model := range allModels {
		g, err := tpch.BuildQ6(ds, rig.devices["cuda"])
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		res, err := exec.Run(rig.rt, g, exec.Options{Model: model, ChunkElems: 4096})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		elapsed[model] = res.Stats.Elapsed.Seconds()
	}
	if elapsed[exec.FourPhaseChunked] >= elapsed[exec.Chunked] {
		t.Errorf("4-phase chunked (%.6fs) should beat naive chunked (%.6fs)",
			elapsed[exec.FourPhaseChunked], elapsed[exec.Chunked])
	}
	if elapsed[exec.FourPhasePipelined] > elapsed[exec.FourPhaseChunked]*1.05 {
		t.Errorf("4-phase pipelined (%.6fs) should not lose to 4-phase chunked (%.6fs)",
			elapsed[exec.FourPhasePipelined], elapsed[exec.FourPhaseChunked])
	}
	t.Logf("timings: %v", ordered(elapsed))
}

func ordered(m map[exec.Model]float64) string {
	models := make([]exec.Model, 0, len(m))
	for k := range m {
		models = append(models, k)
	}
	sort.Slice(models, func(i, j int) bool { return models[i] < models[j] })
	s := ""
	for _, k := range models {
		s += fmt.Sprintf("%s=%.6fs ", k, m[k])
	}
	return s
}

// TestCrossDevicePipelineOverlap runs two independent pipelines on two
// devices under the overlapped model: their virtual execution must overlap
// (total < sum of the single-device runs).
func TestCrossDevicePipelineOverlap(t *testing.T) {
	ds := testDataset(t)
	rig := newRig(t)

	build := func(devA, devB device.ID) (*exec.Result, error) {
		g, err := tpch.BuildQ6(ds, devA)
		if err != nil {
			t.Fatal(err)
		}
		// A second, independent Q6-shaped aggregation on the other device
		// inside the same graph: separate scans, separate pipeline.
		li := ds.Lineitem
		qty := g.AddScan("lineitem.l_quantity#2", li.MustColumn("l_quantity"), devB)
		aggT, err := task.NewAggBlock(kernels.AggSum, vec.Int32, "sum(qty)")
		if err != nil {
			t.Fatal(err)
		}
		agg := g.AddTask(aggT, devB, qty)
		g.MarkResult("qty_total", g.Out(agg, 0))
		return exec.Run(rig.rt, g, exec.Options{Model: exec.Pipelined, ChunkElems: 8192})
	}

	same, err := build(rig.devices["cuda"], rig.devices["cuda"])
	if err != nil {
		t.Fatal(err)
	}
	split, err := build(rig.devices["cuda"], rig.devices["openmp"])
	if err != nil {
		t.Fatal(err)
	}

	if !vecEqualResults(same, split) {
		t.Error("device split changed the results")
	}
	if split.Stats.Elapsed >= same.Stats.Elapsed {
		t.Errorf("splitting across devices (%v) should beat one device (%v) under overlap",
			split.Stats.Elapsed, same.Stats.Elapsed)
	}
}

func vecEqualResults(a, b *exec.Result) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for _, col := range a.Columns {
		other, ok := b.Column(col.Name)
		if !ok || !vec.Equal(col.Data, other) {
			return false
		}
	}
	return true
}

// TestMixedDeviceQ3 places Q3's build pipelines on the CPU and its
// lineitem pipeline on the GPU by re-annotating the plan; the router moves
// the hash tables between devices and the results stay exact.
func TestMixedDeviceQ3(t *testing.T) {
	ds := testDataset(t)
	want := tpch.RefQ3(ds)
	rig := newRig(t)

	g, err := tpch.BuildQ3(ds, rig.devices["openmp"])
	if err != nil {
		t.Fatal(err)
	}
	// Move the heavy lineitem pipeline (and the final extract) to the GPU.
	pipelines, err := g.BuildPipelines()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pipelines[2:] {
		for _, nid := range p.Nodes {
			g.Node(nid).Device = rig.devices["cuda"]
		}
		for _, sid := range p.Scans {
			g.Node(sid).Device = rig.devices["cuda"]
		}
	}

	res, err := exec.Run(rig.rt, g, exec.Options{Model: exec.FourPhasePipelined, ChunkElems: 8192})
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := res.Column("l_orderkey")
	revs, _ := res.Column("revenue")
	if keys.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", keys.Len(), len(want))
	}
	for i := 0; i < keys.Len(); i++ {
		if want[keys.I64()[i]] != revs.I64()[i] {
			t.Fatalf("group %d revenue = %d, want %d", keys.I64()[i], revs.I64()[i], want[keys.I64()[i]])
		}
	}
}
