package exec_test

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
)

// TestDeviceDeathFiresAtEveryOp sweeps the death mark across every device
// operation of a chunked run: no op index — including the fault-exempt
// deletions at chunk boundaries — may let the run complete after its
// device was scheduled to die.
func TestDeviceDeathFiresAtEveryOp(t *testing.T) {
	n := 2048
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 100)
		b[i] = int32(i % 7)
	}
	for die := int64(2); die <= 120; die++ {
		rt := hub.NewRuntime()
		inj := fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), &fault.Plan{DieAfterOps: die})
		if _, err := rt.Register(inj); err != nil {
			continue
		}
		g := filterSumGraph(t, a, b, 50, 0)
		_, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 256})
		if err == nil {
			t.Errorf("die=%d: run SUCCEEDED, want device lost", die)
		} else if !errors.Is(err, fault.ErrDeviceLost) {
			t.Errorf("die=%d: err = %v, want device lost", die, err)
		}
	}
}
