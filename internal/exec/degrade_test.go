package exec_test

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
)

// TestEstimateDemandUnknownModel: demand estimation and execution both
// reject a model outside the enum with the typed sentinel.
func TestEstimateDemandUnknownModel(t *testing.T) {
	_, dev := gpuRuntime(t)
	g := filterSumGraph(t, []int32{1, 2, 3}, []int32{4, 5, 6}, 10, dev)
	for _, bad := range []exec.Model{exec.Model(-1), exec.Model(99)} {
		if _, err := exec.EstimateDemand(g, exec.Options{Model: bad}); !errors.Is(err, exec.ErrUnknownModel) {
			t.Errorf("EstimateDemand(model %d) = %v, want ErrUnknownModel", int(bad), err)
		}
	}
	rt, dev := gpuRuntime(t)
	g = filterSumGraph(t, []int32{1, 2, 3}, []int32{4, 5, 6}, 10, dev)
	if _, err := exec.Run(rt, g, exec.Options{Model: exec.Model(99)}); !errors.Is(err, exec.ErrUnknownModel) {
		t.Errorf("Run(model 99) = %v, want ErrUnknownModel", err)
	}
}

// TestEstimateDemandEmptyGraph: an empty plan is rejected as a bad graph,
// not a panic or a zero-demand admission.
func TestEstimateDemandEmptyGraph(t *testing.T) {
	g := graph.New()
	_, err := exec.EstimateDemand(g, exec.Options{Model: exec.Chunked})
	if !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("EstimateDemand(empty) = %v, want ErrBadGraph", err)
	}
}

// TestEstimateDemandZeroRows: a plan over zero-row tables estimates a
// finite (possibly zero) demand, and every model executes it to an empty
// result with aggregates at their init values.
func TestEstimateDemandZeroRows(t *testing.T) {
	rt, dev := gpuRuntime(t)
	g := filterSumGraph(t, nil, nil, 10, dev)
	demand, err := exec.EstimateDemand(g, exec.Options{Model: exec.OperatorAtATime})
	if err != nil {
		t.Fatalf("EstimateDemand(zero rows): %v", err)
	}
	for id, b := range demand {
		if b < 0 {
			t.Errorf("device %d demand = %d, want >= 0", id, b)
		}
	}

	for _, model := range allModels {
		g := filterSumGraph(t, nil, nil, 10, dev)
		res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 64})
		if err != nil {
			t.Errorf("%v over zero rows: %v", model, err)
			continue
		}
		sum, ok := res.Column("sum")
		if !ok || sum.Len() != 1 || sum.I64()[0] != 0 {
			t.Errorf("%v over zero rows: sum = %v, want [0]", model, sum)
		}
	}
}

// TestPartialStatsOnFault is the regression test for the early-return bug:
// a query that dies mid-run must still report the partial statistics it
// accumulated (chunks staged, virtual time spent) alongside the typed
// error, with its result columns cleared.
func TestPartialStatsOnFault(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{DieAfterOps: 30}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}

	n := 2048
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 100)
		b[i] = int32(i % 7)
	}
	g := filterSumGraph(t, a, b, 50, 0)
	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 128})
	if !errors.Is(err, fault.ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
	var lost *exec.DeviceLostError
	if !errors.As(err, &lost) || lost.Device != device.ID(0) {
		t.Errorf("err = %v, want DeviceLostError on device 0", err)
	}
	if res == nil {
		t.Fatal("failed run returned no Result: partial stats lost")
	}
	if res.Columns != nil {
		t.Errorf("failed run kept result columns: %v", res.Columns)
	}
	s := res.Stats
	if s.Chunks == 0 {
		t.Error("partial stats: Chunks = 0, want > 0 (the run staged chunks before dying)")
	}
	if s.Elapsed <= 0 {
		t.Errorf("partial stats: Elapsed = %v, want > 0", s.Elapsed)
	}
	if s.Launches == 0 && s.H2DBytes == 0 {
		t.Error("partial stats: no launches and no transfer bytes recorded")
	}
}

// TestRetryTransientRecovers: a scripted transient fault on one transfer is
// retried in virtual time and the query completes with the right answer and
// a non-zero retry count.
func TestRetryTransientRecovers(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{Script: []fault.Step{
		{At: 2, Op: -1, Kind: fault.Transient},
		{At: 9, Op: -1, Kind: fault.Launch},
	}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}

	a := []int32{1, 2, 3, 4}
	b := []int32{10, 20, 30, 40}
	var want int64
	for i, v := range a {
		if v < 3 {
			want += int64(b[i])
		}
	}
	g := filterSumGraph(t, a, b, 3, 0)
	res, err := exec.Run(rt, g, exec.Options{
		Model: exec.Chunked,
		Retry: exec.RetryPolicy{MaxRetries: 3},
	})
	if err != nil {
		t.Fatalf("run with retryable faults: %v", err)
	}
	sum, _ := res.Column("sum")
	if sum.I64()[0] != want {
		t.Errorf("sum = %d, want %d", sum.I64()[0], want)
	}
	if res.Stats.Retries == 0 {
		t.Error("Stats.Retries = 0, want > 0 after scripted transients")
	}
}

// TestRetryBudgetExhausts: with no retry budget, the first transient
// surfaces as a typed injected error.
func TestRetryBudgetExhausts(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{PTransient: 1.0} // every transfer fails
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	g := filterSumGraph(t, []int32{1, 2, 3}, []int32{4, 5, 6}, 10, 0)
	_, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked})
	if !errors.Is(err, fault.ErrTransient) || !errors.Is(err, fault.ErrInjected) {
		t.Errorf("err = %v, want a typed transient injected error", err)
	}
}

// TestFailoverReroutesToFallback (exec level): the primary dies mid-query
// and the configured fallback finishes it with the correct result and a
// failover event; the dead device keeps no allocations.
func TestFailoverReroutesToFallback(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{DieAfterOps: 12, Devices: []string{"cuda"}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}

	n := 512
	a := make([]int32, n)
	b := make([]int32, n)
	var want int64
	for i := range a {
		a[i] = int32(i % 10)
		b[i] = int32(i % 13)
		if a[i] < 5 {
			want += int64(b[i])
		}
	}
	g := filterSumGraph(t, a, b, 5, 0)
	res, err := exec.Run(rt, g, exec.Options{
		Model:          exec.Pipelined,
		ChunkElems:     64,
		FallbackDevice: &fb,
	})
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	sum, _ := res.Column("sum")
	if sum.I64()[0] != want {
		t.Errorf("sum after failover = %d, want %d", sum.I64()[0], want)
	}
	if len(res.Stats.Events) != 1 || res.Stats.Events[0].Kind != exec.EventFailover {
		t.Errorf("events = %v, want one failover", res.Stats.Events)
	}
	for i, d := range rt.Devices() {
		ms := d.MemStats()
		if ms.Used != 0 || ms.PinnedUsed != 0 || ms.LiveBuffers != 0 {
			t.Errorf("device %d not at baseline: used=%d pinned=%d live=%d",
				i, ms.Used, ms.PinnedUsed, ms.LiveBuffers)
		}
	}
}

// degradeWorkload builds a deterministic multi-chunk filter+sum plan and
// returns (a, b, expected sum for cut).
func degradeWorkload(n int, cut int64) (a, b []int32, want int64) {
	a = make([]int32, n)
	b = make([]int32, n)
	for i := range a {
		a[i] = int32(i % 100)
		b[i] = int32(i % 11)
		if int64(a[i]) < cut {
			want += int64(b[i])
		}
	}
	return a, b, want
}

// TestAdaptiveChunkingHalvesOnOOM: a single scripted OOM mid-run makes the
// adaptive ladder halve the effective chunk size once; the re-run completes
// with the baseline-identical result, one degrade event carrying the
// before/after sizes, and the fault counted against the device.
func TestAdaptiveChunkingHalvesOnOOM(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{Script: []fault.Step{{At: 8, Op: -1, Kind: fault.OOM}}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	a, b, want := degradeWorkload(2048, 50)
	g := filterSumGraph(t, a, b, 50, 0)
	res, err := exec.Run(rt, g, exec.Options{
		Model:            exec.Chunked,
		ChunkElems:       256,
		MinChunkElems:    64,
		AdaptiveChunking: true,
	})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	sum, _ := res.Column("sum")
	if sum.I64()[0] != want {
		t.Errorf("sum = %d, want %d", sum.I64()[0], want)
	}
	if len(res.Stats.Events) != 1 {
		t.Fatalf("events = %v, want exactly one degrade", res.Stats.Events)
	}
	ev := res.Stats.Events[0]
	if ev.Kind != exec.EventDegrade || ev.ChunkFrom != 256 || ev.ChunkTo != 128 {
		t.Errorf("event = %+v, want degrade chunk 256->128", ev)
	}
	if res.Stats.FaultsByDevice[device.ID(0)] == 0 {
		t.Error("FaultsByDevice[0] = 0, want > 0 after an injected OOM")
	}
}

// TestAdaptiveChunkingFloorReplacesOnHost: permanent OOM pressure on the
// GPU walks the ladder to its floor and then re-places the query onto the
// host-resident device; the result still matches and every device returns
// to its memory baseline.
func TestAdaptiveChunkingFloorReplacesOnHost(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{POOM: 1.0, Devices: []string{"cuda"}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Register(simomp.New(&simhw.CoreI78700, nil)); err != nil {
		t.Fatal(err)
	}
	a, b, want := degradeWorkload(1024, 40)
	g := filterSumGraph(t, a, b, 40, 0)
	res, err := exec.Run(rt, g, exec.Options{
		Model:            exec.Chunked,
		ChunkElems:       256,
		MinChunkElems:    64,
		AdaptiveChunking: true,
	})
	if err != nil {
		t.Fatalf("floor re-place run: %v", err)
	}
	sum, _ := res.Column("sum")
	if sum.I64()[0] != want {
		t.Errorf("sum = %d, want %d", sum.I64()[0], want)
	}
	evs := res.Stats.Events
	if len(evs) != 3 {
		t.Fatalf("events = %v, want two halvings then a re-place", evs)
	}
	if evs[0].ChunkFrom != 256 || evs[0].ChunkTo != 128 ||
		evs[1].ChunkFrom != 128 || evs[1].ChunkTo != 64 {
		t.Errorf("halving ladder = %v, %v; want 256->128 then 128->64", evs[0], evs[1])
	}
	last := evs[2]
	if last.Kind != exec.EventDegrade || last.From != device.ID(0) || last.To != device.ID(1) {
		t.Errorf("last event = %+v, want re-place 0->1", last)
	}
	for i, d := range rt.Devices() {
		ms := d.MemStats()
		if ms.Used != 0 || ms.PinnedUsed != 0 || ms.LiveBuffers != 0 {
			t.Errorf("device %d not at baseline: used=%d pinned=%d live=%d",
				i, ms.Used, ms.PinnedUsed, ms.LiveBuffers)
		}
	}
}

// TestAdaptiveOAATReplacesDirectly: operator-at-a-time has no chunks to
// shrink, so an OOM re-places straight onto the host device.
func TestAdaptiveOAATReplacesDirectly(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{POOM: 1.0, Devices: []string{"cuda"}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Register(simomp.New(&simhw.CoreI78700, nil)); err != nil {
		t.Fatal(err)
	}
	a, b, want := degradeWorkload(512, 30)
	g := filterSumGraph(t, a, b, 30, 0)
	res, err := exec.Run(rt, g, exec.Options{Model: exec.OperatorAtATime, AdaptiveChunking: true})
	if err != nil {
		t.Fatalf("oaat re-place run: %v", err)
	}
	sum, _ := res.Column("sum")
	if sum.I64()[0] != want {
		t.Errorf("sum = %d, want %d", sum.I64()[0], want)
	}
	if len(res.Stats.Events) != 1 || res.Stats.Events[0].From == res.Stats.Events[0].To {
		t.Errorf("events = %v, want exactly one re-place", res.Stats.Events)
	}
}

// TestOOMFailsFastWithoutAdaptive: without AdaptiveChunking an injected OOM
// surfaces as a typed error (wrapping both the OOM sentinel and OOMError)
// instead of silently degrading.
func TestOOMFailsFastWithoutAdaptive(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{POOM: 1.0}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	g := filterSumGraph(t, []int32{1, 2, 3, 4}, []int32{5, 6, 7, 8}, 3, 0)
	_, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 64})
	if !errors.Is(err, fault.ErrOOM) {
		t.Errorf("err = %v, want fault.ErrOOM", err)
	}
	var oom *exec.OOMError
	if !errors.As(err, &oom) || oom.Device != device.ID(0) {
		t.Errorf("err = %v, want OOMError on device 0", err)
	}
}

// TestDeadlineExceededAtChunkBoundary: a multi-chunk query with a tiny
// virtual-time deadline fails with the typed deadline sentinel at a chunk
// boundary, keeps its partial statistics, and leaks nothing.
func TestDeadlineExceededAtChunkBoundary(t *testing.T) {
	rt, dev := gpuRuntime(t)
	a, b, _ := degradeWorkload(4096, 50)
	g := filterSumGraph(t, a, b, 50, dev)
	res, err := exec.Run(rt, g, exec.Options{
		Model:      exec.Chunked,
		ChunkElems: 64,
		Deadline:   1, // one virtual nanosecond: the first boundary check trips
	})
	if !errors.Is(err, vclock.ErrDeadline) {
		t.Fatalf("err = %v, want vclock.ErrDeadline", err)
	}
	if res == nil || res.Columns != nil {
		t.Errorf("deadline failure: res = %+v, want partial stats without columns", res)
	}
	for i, d := range rt.Devices() {
		ms := d.MemStats()
		if ms.Used != 0 || ms.PinnedUsed != 0 || ms.LiveBuffers != 0 {
			t.Errorf("device %d not at baseline: used=%d pinned=%d live=%d",
				i, ms.Used, ms.PinnedUsed, ms.LiveBuffers)
		}
	}
}
