package exec

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// ErrUnknownModel reports an Options.Model outside the defined execution
// models. Validating up front keeps a bad model from silently running under
// zero-value flags (which happen to be the naive chunked policy).
var ErrUnknownModel = errors.New("exec: unknown execution model")

// RetryPolicy configures how the executor retries transient device faults
// (failed transfers, kernel launch errors). The zero value disables
// retries, preserving fail-fast behaviour for callers that never opted in.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts per device operation after
	// the first failure. Zero disables retrying.
	MaxRetries int
	// Backoff is the virtual-time delay before the first retry; it doubles
	// per attempt up to BackoffCap. Defaults to 50µs / 5ms when MaxRetries
	// is set — retries cost simulated time like everything else, so the
	// paper-style timing figures stay honest under faults.
	Backoff    vclock.Duration
	BackoffCap vclock.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		return RetryPolicy{}
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * vclock.Microsecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * vclock.Millisecond
	}
	return p
}

// DeviceLostError reports that a device died while a query was using it.
// The executor surfaces it (wrapped) when no fallback is configured, and
// consumes it internally when failover re-places the query.
type DeviceLostError struct {
	// Device is the runtime ID of the lost device.
	Device device.ID
	// Err is the underlying fault.
	Err error
}

// Error implements error.
func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("exec: device %v lost: %v", e.Device, e.Err)
}

// Unwrap exposes the underlying fault so errors.Is sees
// fault.ErrDeviceLost and fault.ErrInjected through the wrapper.
func (e *DeviceLostError) Unwrap() error { return e.Err }

// EventKind classifies a RuntimeEvent.
type EventKind int

// Runtime event kinds.
const (
	// EventFailover records a query re-placed from a lost device onto a
	// healthy fallback.
	EventFailover EventKind = iota
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventFailover:
		return "failover"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// RuntimeEvent is one entry of the execution event log: something the
// runtime did to keep the query alive, recorded so operators (and the
// acceptance tests) can see that degradation happened and where.
type RuntimeEvent struct {
	Kind EventKind
	// From and To are the devices involved (for EventFailover: the lost
	// device and its replacement).
	From device.ID
	To   device.ID
}

// String formats the event for logs.
func (e RuntimeEvent) String() string {
	return fmt.Sprintf("%s %v->%v", e.Kind, e.From, e.To)
}

// resolve follows the executor's failover remap chain: after a device dies
// and the query re-places onto a fallback, every logical reference to the
// dead device resolves to its replacement.
func (x *executor) resolve(id device.ID) device.ID {
	for i := 0; i <= len(x.remap); i++ {
		next, ok := x.remap[id]
		if !ok {
			return id
		}
		id = next
	}
	return id
}

// device resolves a logical device ID through the failover remap and wraps
// the device with the executor's retry policy. The returned ID is the
// effective device the query actually runs on; it is what port state,
// allocation tracking and routing must record.
func (x *executor) device(id device.ID) (device.ID, device.Device, error) {
	eff := x.resolve(id)
	d, err := x.rt.Device(eff)
	if err != nil {
		return eff, nil, err
	}
	if x.rec != nil {
		// Tracing sits inside the retrier: a faulted attempt consumes no
		// engine time and leaves no span, only the successful issue does.
		d = &traced{x: x, name: d.Info().Name, d: d}
	}
	return eff, &retrier{x: x, id: eff, d: d}, nil
}

// retrier wraps a device.Device with transient-fault retries. Each faulted
// operation is re-issued with capped exponential backoff charged in
// virtual-clock time; a device-lost fault is wrapped in DeviceLostError so
// the executor's failover loop can catch it with errors.As. Non-transient
// faults (OOM) pass through untouched.
type retrier struct {
	x  *executor
	id device.ID
	d  device.Device
}

var _ device.Device = (*retrier)(nil)

// attempt drives op under the retry policy. op receives the ready time for
// each try (later tries are pushed back by the backoff) and returns the
// operation's error.
func (r *retrier) attempt(ready vclock.Time, op func(vclock.Time) error) error {
	pol := r.x.opts.Retry.withDefaults()
	backoff := pol.Backoff
	for tries := 0; ; tries++ {
		err := op(ready)
		if err == nil {
			return nil
		}
		if errors.Is(err, fault.ErrDeviceLost) {
			return &DeviceLostError{Device: r.id, Err: err}
		}
		if tries >= pol.MaxRetries || !fault.IsTransient(err) {
			return err
		}
		r.x.retries++
		if r.x.rec != nil {
			// The retry span covers the backoff gap: virtual time the query
			// lost to the fault, annotated with the injector's error string.
			r.x.rec.Add(trace.Span{
				Parent: r.x.parentSpan(), Kind: trace.KindRetry,
				Label:  err.Error(),
				Device: r.d.Info().Name,
				Start:  ready, End: ready.Add(backoff),
				Node: r.x.curNode, Pipeline: r.x.pidx, Chunk: r.x.cidx,
			})
		}
		ready = ready.Add(backoff)
		backoff *= 2
		if backoff > pol.BackoffCap {
			backoff = pol.BackoffCap
		}
	}
}

// Initialize implements device.Device.
func (r *retrier) Initialize() error {
	return r.attempt(0, func(vclock.Time) error { return r.d.Initialize() })
}

// Info implements device.Device.
func (r *retrier) Info() device.Info { return r.d.Info() }

// PlaceData implements device.Device.
func (r *retrier) PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.PlaceData(data, at)
		return err
	})
	return buf, end, err
}

// PlaceDataInto implements device.Device.
func (r *retrier) PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.PlaceDataInto(id, off, data, at)
		return err
	})
	return end, err
}

// RetrieveData implements device.Device.
func (r *retrier) RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.RetrieveData(id, off, n, dst, at)
		return err
	})
	return end, err
}

// PrepareMemory implements device.Device.
func (r *retrier) PrepareMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.PrepareMemory(t, n, at)
		return err
	})
	return buf, end, err
}

// AddPinnedMemory implements device.Device.
func (r *retrier) AddPinnedMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.AddPinnedMemory(t, n, at)
		return err
	})
	return buf, end, err
}

// CreateChunk implements device.Device. Views are host-side bookkeeping;
// retries carry no virtual-time backoff.
func (r *retrier) CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error) {
	var buf devmem.BufferID
	err := r.attempt(0, func(vclock.Time) error {
		var err error
		buf, err = r.d.CreateChunk(id, off, n)
		return err
	})
	return buf, err
}

// TransformMemory implements device.Device.
func (r *retrier) TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.TransformMemory(id, target, at)
		return err
	})
	return end, err
}

// DeleteMemory implements device.Device. Deletion passes through: the leak
// barrier must always be able to free, and the injector never faults it.
func (r *retrier) DeleteMemory(id devmem.BufferID) error { return r.d.DeleteMemory(id) }

// PrepareKernel implements device.Device.
func (r *retrier) PrepareKernel(name, source string) error {
	return r.attempt(0, func(vclock.Time) error { return r.d.PrepareKernel(name, source) })
}

// Execute implements device.Device.
func (r *retrier) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.Execute(req, at)
		return err
	})
	return end, err
}

// Sync implements device.Device.
func (r *retrier) Sync(ready vclock.Time) vclock.Time { return r.d.Sync(ready) }

// Buffer implements device.Device.
func (r *retrier) Buffer(id devmem.BufferID) (*devmem.Buffer, error) { return r.d.Buffer(id) }

// CopyEngine implements device.Device.
func (r *retrier) CopyEngine() *vclock.Timeline { return r.d.CopyEngine() }

// ComputeEngine implements device.Device.
func (r *retrier) ComputeEngine() *vclock.Timeline { return r.d.ComputeEngine() }

// MemStats implements device.Device.
func (r *retrier) MemStats() devmem.Stats { return r.d.MemStats() }

// Stats implements device.Device.
func (r *retrier) Stats() device.Stats { return r.d.Stats() }

// Reset implements device.Device.
func (r *retrier) Reset() { r.d.Reset() }
