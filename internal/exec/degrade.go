package exec

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// ErrUnknownModel reports an Options.Model outside the defined execution
// models. Validating up front keeps a bad model from silently running under
// zero-value flags (which happen to be the naive chunked policy).
var ErrUnknownModel = errors.New("exec: unknown execution model")

// errReplan is the internal sentinel a fired Options.Replan hook aborts
// the attempt with; recoverAttempt consumes it and restarts with the
// already-switched chunk size. It never escapes run().
var errReplan = errors.New("exec: mid-query replan restart")

// RetryPolicy configures how the executor retries transient device faults
// (failed transfers, kernel launch errors). The zero value disables
// retries, preserving fail-fast behaviour for callers that never opted in.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts per device operation after
	// the first failure. Zero disables retrying.
	MaxRetries int
	// Backoff is the virtual-time delay before the first retry; it doubles
	// per attempt up to BackoffCap. Defaults to 50µs / 5ms when MaxRetries
	// is set — retries cost simulated time like everything else, so the
	// paper-style timing figures stay honest under faults.
	Backoff    vclock.Duration
	BackoffCap vclock.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		return RetryPolicy{}
	}
	if p.Backoff <= 0 {
		p.Backoff = 50 * vclock.Microsecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 5 * vclock.Millisecond
	}
	return p
}

// DeviceLostError reports that a device died while a query was using it.
// The executor surfaces it (wrapped) when no fallback is configured, and
// consumes it internally when failover re-places the query.
type DeviceLostError struct {
	// Device is the runtime ID of the lost device.
	Device device.ID
	// Err is the underlying fault.
	Err error
}

// Error implements error.
func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("exec: device %v lost: %v", e.Device, e.Err)
}

// Unwrap exposes the underlying fault so errors.Is sees
// fault.ErrDeviceLost and fault.ErrInjected through the wrapper.
func (e *DeviceLostError) Unwrap() error { return e.Err }

// OOMError reports a failed device allocation — an injected OOM fault or
// genuine pool exhaustion — attributed to the device it happened on. The
// adaptive-chunking ladder catches it with errors.As; without adaptive
// chunking it surfaces wrapped, so errors.Is still sees the underlying
// sentinel (fault.ErrOOM or devmem.ErrOutOfMemory).
type OOMError struct {
	// Device is the runtime ID of the device that ran out of memory.
	Device device.ID
	// Err is the underlying allocation failure.
	Err error
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("exec: device %v out of memory: %v", e.Device, e.Err)
}

// Unwrap exposes the underlying allocation failure.
func (e *OOMError) Unwrap() error { return e.Err }

// isOOM reports whether err is a device allocation failure: an injected
// OOM fault or the memory pool's genuine exhaustion.
func isOOM(err error) bool {
	return errors.Is(err, fault.ErrOOM) || errors.Is(err, devmem.ErrOutOfMemory)
}

// EventKind classifies a RuntimeEvent.
type EventKind int

// Runtime event kinds.
const (
	// EventFailover records a query re-placed from a lost device onto a
	// healthy fallback.
	EventFailover EventKind = iota
	// EventDegrade records one step of the adaptive OOM ladder: either the
	// effective chunk size halving (ChunkFrom > ChunkTo, From == To), or
	// the last-resort re-placement onto a host-resident device (From !=
	// To) once the chunk floor is reached.
	EventDegrade
	// EventReplan records a mid-query re-plan: the Options.Replan hook
	// resized the chunk (ChunkFrom -> ChunkTo) after observed pipeline
	// cardinality drifted from the estimate, and the attempt restarted.
	EventReplan
	// EventHedge records the shard coordinator launching a duplicate of a
	// straggling shard request on an idle peer (From: the straggler's shard
	// index, To: the hedge target's shard index, as pseudo device IDs).
	EventHedge
	// EventShardFailover records a shard partition re-dispatched onto a
	// healthy peer after its shard died mid-query.
	EventShardFailover
	// EventShardLost records a shard whose partition could not be recovered
	// — under LossPartial the query completes without it and flags
	// Stats.PartialShards.
	EventShardLost
)

// String returns the event kind's name.
func (k EventKind) String() string {
	switch k {
	case EventFailover:
		return "failover"
	case EventDegrade:
		return "degrade"
	case EventReplan:
		return "replan"
	case EventHedge:
		return "hedge"
	case EventShardFailover:
		return "shard-failover"
	case EventShardLost:
		return "shard-lost"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// RuntimeEvent is one entry of the execution event log: something the
// runtime did to keep the query alive, recorded so operators (and the
// acceptance tests) can see that degradation happened and where.
type RuntimeEvent struct {
	Kind EventKind
	// From and To are the devices involved (for EventFailover: the lost
	// device and its replacement; for an EventDegrade re-placement: the
	// OOM device and the host-resident target).
	From device.ID
	To   device.ID
	// ChunkFrom and ChunkTo are the effective chunk sizes before and after
	// an EventDegrade halving step (both zero otherwise).
	ChunkFrom int
	ChunkTo   int
}

// String formats the event for logs.
func (e RuntimeEvent) String() string {
	if (e.Kind == EventDegrade || e.Kind == EventReplan) && e.ChunkTo > 0 && e.ChunkFrom != e.ChunkTo {
		return fmt.Sprintf("%s chunk %d->%d on %v", e.Kind, e.ChunkFrom, e.ChunkTo, e.From)
	}
	return fmt.Sprintf("%s %v->%v", e.Kind, e.From, e.To)
}

// recoverAttempt decides whether the attempt loop in run() may retry after
// runErr. It implements the two self-healing paths:
//
//   - Failover: a *DeviceLostError with a configured, live fallback remaps
//     the dead device onto it (at most once per plugged device).
//   - Adaptive OOM degradation: with Options.AdaptiveChunking set, an
//     *OOMError first halves the effective chunk size down to
//     minChunkElems(), then — at the floor, or under a whole-input model
//     with no chunks to shrink — re-places the query onto a host-resident
//     device as the last resort.
//
// Every step releases the failed attempt's buffers (traced, inside the
// statistics window), appends a RuntimeEvent, and records an annotation
// span, so the virtual-time cost of degradation stays visible. It returns
// false when runErr is not recoverable and the loop must surface it.
func (x *executor) recoverAttempt(runErr error) bool {
	if errors.Is(runErr, errReplan) {
		// The hook already recorded the event/span and switched chunkEff;
		// just release the aborted attempt's buffers and restart.
		x.releaseAll(true)
		x.releaseLeases()
		return true
	}
	var lost *DeviceLostError
	if errors.As(runErr, &lost) && x.opts.FallbackDevice != nil {
		fb := x.resolve(*x.opts.FallbackDevice)
		if fb == lost.Device {
			return false // the fallback itself is the dead device
		}
		if _, err := x.rt.Device(fb); err != nil {
			return false
		}
		x.events = append(x.events, RuntimeEvent{Kind: EventFailover, From: lost.Device, To: fb})
		if x.opts.Events != nil {
			x.opts.Events.Emit(telemetry.Event{
				Type: telemetry.EventFailover, Query: x.opts.QueryID,
				VT: int64(x.horizon), Device: x.deviceName(lost.Device),
				Detail: fmt.Sprintf("%v->%v: %v", lost.Device, fb, lost.Err),
			})
		}
		if x.rec != nil {
			x.rec.Add(trace.Span{
				Parent: x.qspan, Kind: trace.KindFailover,
				Label: fmt.Sprintf("%v->%v: %v", lost.Device, fb, lost.Err),
				Start: x.horizon, End: x.horizon,
				Node: -1, Pipeline: -1, Chunk: -1,
			})
		}
		x.remap[lost.Device] = fb
		x.releaseAll(true)
		// Drop this query's eviction pins, then purge the dead device's
		// cached columns: unreferenced entries free immediately (deletion
		// works on dead devices), entries still leased by other queries
		// are doomed and freed on their last release — never leaked.
		x.releaseLeases()
		x.opts.Pool.InvalidateDevice(lost.Device)
		return true
	}
	var oom *OOMError
	if !x.opts.AdaptiveChunking || !errors.As(runErr, &oom) {
		return false
	}
	if !x.flags.wholeInput {
		if half := ((x.chunkEff / 2) + 63) &^ 63; half >= x.opts.minChunkElems() && half < x.chunkEff {
			x.events = append(x.events, RuntimeEvent{
				Kind: EventDegrade, From: oom.Device, To: oom.Device,
				ChunkFrom: x.chunkEff, ChunkTo: half,
			})
			if x.opts.Events != nil {
				x.opts.Events.Emit(telemetry.Event{
					Type: telemetry.EventDegrade, Query: x.opts.QueryID,
					VT: int64(x.horizon), Device: x.deviceName(oom.Device),
					Detail: fmt.Sprintf("chunk %d->%d: %v", x.chunkEff, half, oom.Err),
				})
			}
			if x.rec != nil {
				x.rec.Add(trace.Span{
					Parent: x.qspan, Kind: trace.KindDegrade,
					Label: fmt.Sprintf("chunk %d->%d: %v", x.chunkEff, half, oom.Err),
					Start: x.horizon, End: x.horizon,
					Node: -1, Pipeline: -1, Chunk: -1,
				})
			}
			x.chunkEff = half
			x.releaseAll(true)
			x.releaseLeases()
			return true
		}
	}
	// Chunk floor reached (or nothing to shrink): re-place the query onto a
	// host-resident device, where "device memory" is host memory and the
	// working set fits by construction.
	host, ok := x.hostFallback(oom.Device)
	if !ok {
		return false
	}
	x.events = append(x.events, RuntimeEvent{Kind: EventDegrade, From: oom.Device, To: host})
	if x.opts.Events != nil {
		x.opts.Events.Emit(telemetry.Event{
			Type: telemetry.EventDegrade, Query: x.opts.QueryID,
			VT: int64(x.horizon), Device: x.deviceName(oom.Device),
			Detail: fmt.Sprintf("re-place %v->%v: %v", oom.Device, host, oom.Err),
		})
	}
	if x.rec != nil {
		x.rec.Add(trace.Span{
			Parent: x.qspan, Kind: trace.KindDegrade,
			Label: fmt.Sprintf("re-place %v->%v: %v", oom.Device, host, oom.Err),
			Start: x.horizon, End: x.horizon,
			Node: -1, Pipeline: -1, Chunk: -1,
		})
	}
	x.remap[oom.Device] = host
	x.releaseAll(true)
	// The device is under genuine memory pressure; give its cached
	// columns back before the re-placed attempt runs.
	x.releaseLeases()
	x.opts.Pool.InvalidateDevice(oom.Device)
	return true
}

// deviceName resolves a runtime device ID to its plug name for event
// attribution; lost devices still resolve (the runtime keeps them).
func (x *executor) deviceName(id device.ID) string {
	if d, err := x.rt.Device(id); err == nil {
		return d.Info().Name
	}
	return fmt.Sprintf("device-%d", id)
}

// hostFallback picks the device the OOM last-resort re-placement targets:
// the configured fallback when it resolves to a host-resident device, else
// the lowest-ID host-resident device other than the one that ran out of
// memory. ok is false when the runtime has no such device.
func (x *executor) hostFallback(avoid device.ID) (device.ID, bool) {
	if x.opts.FallbackDevice != nil {
		fb := x.resolve(*x.opts.FallbackDevice)
		if fb != avoid {
			if d, err := x.rt.Device(fb); err == nil && d.Info().HostResident {
				return fb, true
			}
		}
	}
	for i, d := range x.rt.Devices() {
		id := device.ID(i)
		if id != avoid && x.resolve(id) == id && d.Info().HostResident {
			return id, true
		}
	}
	return 0, false
}

// resolve follows the executor's failover remap chain: after a device dies
// and the query re-places onto a fallback, every logical reference to the
// dead device resolves to its replacement.
func (x *executor) resolve(id device.ID) device.ID {
	for i := 0; i <= len(x.remap); i++ {
		next, ok := x.remap[id]
		if !ok {
			return id
		}
		id = next
	}
	return id
}

// device resolves a logical device ID through the failover remap and wraps
// the device with the executor's retry policy. The returned ID is the
// effective device the query actually runs on; it is what port state,
// allocation tracking and routing must record.
func (x *executor) device(id device.ID) (device.ID, device.Device, error) {
	eff := x.resolve(id)
	d, err := x.rt.Device(eff)
	if err != nil {
		return eff, nil, err
	}
	if x.rec != nil {
		// Tracing sits inside the retrier: a faulted attempt consumes no
		// engine time and leaves no span, only the successful issue does.
		d = &traced{x: x, name: d.Info().Name, d: d}
	}
	return eff, &retrier{x: x, id: eff, d: d}, nil
}

// retrier wraps a device.Device with transient-fault retries. Each faulted
// operation is re-issued with capped exponential backoff charged in
// virtual-clock time; a device-lost fault is wrapped in DeviceLostError so
// the executor's failover loop can catch it with errors.As. Non-transient
// faults (OOM) pass through untouched.
type retrier struct {
	x  *executor
	id device.ID
	d  device.Device
}

var _ device.Device = (*retrier)(nil)

// attempt drives op under the retry policy. op receives the ready time for
// each try (later tries are pushed back by the backoff) and returns the
// operation's error.
func (r *retrier) attempt(ready vclock.Time, op func(vclock.Time) error) error {
	pol := r.x.opts.Retry.withDefaults()
	backoff := pol.Backoff
	for tries := 0; ; tries++ {
		err := op(ready)
		if err == nil {
			return nil
		}
		// Every faulted operation counts against the device's health window,
		// whether it is retried, degraded around, or surfaced.
		r.x.faults[r.id]++
		if errors.Is(err, fault.ErrDeviceLost) {
			return &DeviceLostError{Device: r.id, Err: err}
		}
		if isOOM(err) {
			return &OOMError{Device: r.id, Err: err}
		}
		if tries >= pol.MaxRetries || !fault.IsTransient(err) {
			return err
		}
		r.x.retries++
		if r.x.opts.Events != nil {
			r.x.opts.Events.Emit(telemetry.Event{
				Type: telemetry.EventRetry, Query: r.x.opts.QueryID,
				VT: int64(ready), Device: r.d.Info().Name,
				Detail: err.Error(),
			})
		}
		if r.x.rec != nil {
			// The retry span covers the backoff gap: virtual time the query
			// lost to the fault, annotated with the injector's error string.
			r.x.rec.Add(trace.Span{
				Parent: r.x.parentSpan(), Kind: trace.KindRetry,
				Label:  err.Error(),
				Device: r.d.Info().Name,
				Start:  ready, End: ready.Add(backoff),
				Node: r.x.curNode, Pipeline: r.x.pidx, Chunk: r.x.cidx,
			})
		}
		ready = ready.Add(backoff)
		backoff *= 2
		if backoff > pol.BackoffCap {
			backoff = pol.BackoffCap
		}
	}
}

// Initialize implements device.Device.
func (r *retrier) Initialize() error {
	return r.attempt(0, func(vclock.Time) error { return r.d.Initialize() })
}

// Info implements device.Device.
func (r *retrier) Info() device.Info { return r.d.Info() }

// PlaceData implements device.Device.
func (r *retrier) PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.PlaceData(data, at)
		return err
	})
	return buf, end, err
}

// PlaceDataInto implements device.Device.
func (r *retrier) PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.PlaceDataInto(id, off, data, at)
		return err
	})
	return end, err
}

// RetrieveData implements device.Device.
func (r *retrier) RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.RetrieveData(id, off, n, dst, at)
		return err
	})
	return end, err
}

// PrepareMemory implements device.Device.
func (r *retrier) PrepareMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.PrepareMemory(t, n, at)
		return err
	})
	return buf, end, err
}

// AddPinnedMemory implements device.Device.
func (r *retrier) AddPinnedMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	var buf devmem.BufferID
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		buf, end, err = r.d.AddPinnedMemory(t, n, at)
		return err
	})
	return buf, end, err
}

// CreateChunk implements device.Device. Views are host-side bookkeeping;
// retries carry no virtual-time backoff.
func (r *retrier) CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error) {
	var buf devmem.BufferID
	err := r.attempt(0, func(vclock.Time) error {
		var err error
		buf, err = r.d.CreateChunk(id, off, n)
		return err
	})
	return buf, err
}

// TransformMemory implements device.Device.
func (r *retrier) TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.TransformMemory(id, target, at)
		return err
	})
	return end, err
}

// DeleteMemory implements device.Device. Deletion passes through: the leak
// barrier must always be able to free, and the injector never faults it.
func (r *retrier) DeleteMemory(id devmem.BufferID) error { return r.d.DeleteMemory(id) }

// PrepareKernel implements device.Device.
func (r *retrier) PrepareKernel(name, source string) error {
	return r.attempt(0, func(vclock.Time) error { return r.d.PrepareKernel(name, source) })
}

// Execute implements device.Device.
func (r *retrier) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	end := ready
	err := r.attempt(ready, func(at vclock.Time) error {
		var err error
		end, err = r.d.Execute(req, at)
		return err
	})
	return end, err
}

// Sync implements device.Device.
func (r *retrier) Sync(ready vclock.Time) vclock.Time { return r.d.Sync(ready) }

// Buffer implements device.Device.
func (r *retrier) Buffer(id devmem.BufferID) (*devmem.Buffer, error) { return r.d.Buffer(id) }

// CopyEngine implements device.Device.
func (r *retrier) CopyEngine() *vclock.Timeline { return r.d.CopyEngine() }

// ComputeEngine implements device.Device.
func (r *retrier) ComputeEngine() *vclock.Timeline { return r.d.ComputeEngine() }

// MemStats implements device.Device.
func (r *retrier) MemStats() devmem.Stats { return r.d.MemStats() }

// Stats implements device.Device.
func (r *retrier) Stats() device.Stats { return r.d.Stats() }

// Reset implements device.Device.
func (r *retrier) Reset() { r.d.Reset() }
