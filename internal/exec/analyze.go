package exec

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// nodeCost aggregates the engine spans attributed to one plan node.
type nodeCost struct {
	busy     vclock.Duration
	launches int
	h2d      int64
	d2h      int64
	rows     int64
	sawRows  bool
}

// WriteAnalyze renders the executed plan annotated with measured execution
// detail: per-primitive virtual busy time, kernel launch counts, bytes
// moved, and actual-vs-estimated result rows, followed by a totals line
// whose per-primitive sum balances against the Stats decomposition. The
// spans are one query's trace (Options.Recorder); stats is that query's
// Stats.
func WriteAnalyze(w io.Writer, g *graph.Graph, pipelines []*graph.Pipeline, stats Stats, spans []trace.Span) {
	est := graph.EstimateRows(g, pipelines)

	costs := make(map[int]*nodeCost)
	var attributed, unattributed vclock.Duration
	for i := range spans {
		s := &spans[i]
		if !s.Kind.Engine() {
			continue
		}
		if s.Node < 0 {
			unattributed += s.Duration()
			continue
		}
		c := costs[s.Node]
		if c == nil {
			c = &nodeCost{}
			costs[s.Node] = c
		}
		c.busy += s.Duration()
		attributed += s.Duration()
		switch s.Kind {
		case trace.KindKernel:
			c.launches++
			// Streamed primitives emit rows per chunk; accumulating
			// breakers fold, so only the final state counts.
			if n := g.Node(graph.NodeID(s.Node)); n.Task != nil && n.Task.Accumulate {
				c.rows = s.Rows
			} else {
				c.rows += s.Rows
			}
			c.sawRows = true
		case trace.KindH2D:
			c.h2d += s.Bytes
		case trace.KindD2H:
			c.d2h += s.Bytes
		}
	}

	fmt.Fprintf(w, "explain analyze: %d pipelines, %d chunks, elapsed %v\n",
		stats.Pipelines, stats.Chunks, stats.Elapsed)
	for _, pl := range pipelines {
		fmt.Fprintf(w, "pipeline %d", pl.Index)
		if len(pl.DependsOn) > 0 {
			fmt.Fprintf(w, " (after %v)", pl.DependsOn)
		}
		if rows := pl.ScanRows(g); rows > 0 {
			fmt.Fprintf(w, " — %d rows", rows)
		} else if est[pl.Index] > 0 {
			fmt.Fprintf(w, " — ~%d rows (estimated)", est[pl.Index])
		}
		fmt.Fprintln(w)
		for _, sid := range pl.Scans {
			fmt.Fprintf(w, "  scan %s", g.Node(sid).Scan.Name)
			if c := costs[int(sid)]; c != nil {
				fmt.Fprintf(w, " — %v", c.busy)
				if c.h2d > 0 {
					fmt.Fprintf(w, ", %dB H2D", c.h2d)
				}
			}
			fmt.Fprintln(w)
		}
		for _, nid := range pl.Nodes {
			n := g.Node(nid)
			dagger := ""
			if n.Breaker() {
				dagger = " †"
			}
			fmt.Fprintf(w, "  %s%s", n.Task, dagger)
			if c := costs[int(nid)]; c != nil {
				fmt.Fprintf(w, " — %v", c.busy)
				if c.launches > 0 {
					fmt.Fprintf(w, ", %d launches", c.launches)
				}
				if c.h2d > 0 {
					fmt.Fprintf(w, ", %dB H2D", c.h2d)
				}
				if c.d2h > 0 {
					fmt.Fprintf(w, ", %dB D2H", c.d2h)
				}
				if c.sawRows {
					fmt.Fprintf(w, ", rows %d (est %d)",
						c.rows, n.OutputSpec(0).Size.Elements(est[pl.Index]))
				}
			}
			fmt.Fprintln(w)
		}
	}
	if results := g.Results(); len(results) > 0 {
		fmt.Fprint(w, "returns:")
		for _, r := range results {
			fmt.Fprintf(w, " %s", r.Name)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "totals: primitives %v + other %v = %v device busy (kernels %v + transfers %v + overhead %v); elapsed %v\n",
		attributed, unattributed, attributed+unattributed,
		stats.KernelTime, stats.TransferTime, stats.OverheadTime, stats.Elapsed)
}
