package exec

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// poolScan leases a scan's base column from the cross-query buffer pool.
// ok=false (with a nil error) means the pool does not apply — disabled,
// host-resident target, column too large, capacity fully leased, or the
// cold load itself ran out of memory — and the caller must stage through
// its legacy private path. A warm hit costs no device traffic; a cold
// miss runs place_data through this query's wrapped device, so the h2d
// span, fault injection and retries land in this query's trace exactly
// like a private transfer would.
func (x *executor) poolScan(sid graph.NodeID, node *graph.Node) (*bufpool.Lease, bool, error) {
	pool := x.opts.Pool
	if pool == nil {
		return nil, false, nil
	}
	if l := x.poolPorts[sid]; l != nil {
		return l, true, nil
	}
	eff := x.resolve(node.Device)
	if !pool.Covers(eff) {
		return nil, false, nil
	}
	_, d, err := x.device(node.Device)
	if err != nil {
		return nil, false, err
	}
	key := bufpool.KeyFor(node.Scan.Name, node.Scan.Data)
	start := x.horizon
	lease, hit, err := pool.Acquire(eff, key, func() (devmem.BufferID, vclock.Time, error) {
		x.setOp(sid, "place "+node.Scan.Name)
		return d.PlaceData(node.Scan.Data, x.ready(x.base))
	})
	if err != nil {
		if bufpool.Declined(err) || isOOM(err) {
			// Legacy staging takes over; a genuine OOM resurfaces there
			// and enters the adaptive ladder as usual.
			return nil, false, nil
		}
		return nil, false, err
	}
	x.advance(vclock.MaxTime(x.base, lease.Ready()))
	x.poolLeases = append(x.poolLeases, lease)
	x.poolPorts[sid] = lease
	if x.rec != nil {
		outcome := "miss"
		if hit {
			outcome = "hit"
		}
		x.rec.Add(trace.Span{
			Parent: x.parentSpan(), Kind: trace.KindCache,
			Label: fmt.Sprintf("%s %s", outcome, node.Scan.Name),
			Start: start, End: x.horizon,
			Node: int(sid), Pipeline: x.pidx, Chunk: x.cidx,
		})
	}
	return lease, true, nil
}

// releaseLeases drops every pool lease the run holds: at teardown, and
// before each recovery attempt so a dead device's pooled columns can be
// invalidated instead of staying pinned by this query's references.
func (x *executor) releaseLeases() {
	for _, l := range x.poolLeases {
		l.Release()
	}
	x.poolLeases = nil
	x.poolPorts = make(map[graph.NodeID]*bufpool.Lease)
}
