package exec_test

import (
	"testing"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/tpch"
)

// TestEstimateDemandFusedQ6 pins the admission working set of the fused Q6
// plan under every model. Fusion runs before demand estimation, so the
// estimator never sees the chain intermediates — the fused estimate must
// not charge the bitmap, materialize and map buffers the unfused plan
// bounces through device memory, and under the 4-phase models (pinned
// staging, nothing device-resident but outputs) it collapses to the
// 8-byte accumulator alone.
func TestEstimateDemandFusedQ6(t *testing.T) {
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g, err := tpch.BuildQuery("Q6", ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	fg := graph.Fuse(g)
	if fg == g {
		t.Fatal("Q6 did not fuse")
	}

	// 1514 lineitem rows at ratio 1/4096; chunk 512. The fused plan holds
	// the four int32 scan columns (per the model's staging rules) plus the
	// 8-byte accumulator — and nothing else.
	cases := []struct {
		model          exec.Model
		unfused, fused int64
	}{
		{exec.OperatorAtATime, 49432, 24232}, // whole columns + accumulator
		{exec.Chunked, 16728, 8200},          // staging chunks + accumulator
		{exec.Pipelined, 24920, 16392},       // double-buffered staging + accumulator
		{exec.FourPhaseChunked, 8536, 8},     // pinned staging: accumulator only
		{exec.FourPhasePipelined, 8536, 8},
	}
	for _, tc := range cases {
		opts := exec.Options{Model: tc.model, ChunkElems: 512}
		du, err := exec.EstimateDemand(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		df, err := exec.EstimateDemand(fg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if du[0] != tc.unfused {
			t.Errorf("%v: unfused demand = %d, want %d", tc.model, du[0], tc.unfused)
		}
		if df[0] != tc.fused {
			t.Errorf("%v: fused demand = %d, want %d", tc.model, df[0], tc.fused)
		}
		if df[0] >= du[0] {
			t.Errorf("%v: fusion did not shrink the working set (%d -> %d)", tc.model, du[0], df[0])
		}
	}
}

// TestEstimateDemandFusedPoolNoDoubleSkip: pool-covered scan columns are
// skipped from the query's demand exactly once on the fused plan — the
// fused graph holds each base column as a single scan node, so the pool
// exemption composes with fusion instead of double-discounting, and the
// remainder is exactly the fused node's accumulator.
func TestEstimateDemandFusedPoolNoDoubleSkip(t *testing.T) {
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: 1.0 / 4096, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rt, dev := gpuRuntime(t)
	g, err := tpch.BuildQuery("Q6", ds, dev)
	if err != nil {
		t.Fatal(err)
	}
	fg := graph.Fuse(g)
	pool := bufpool.New(bufpool.Config{
		Capacity: 1 << 30,
		Policy:   bufpool.CostAware,
		Device:   rt.Device,
	})
	d, err := exec.EstimateDemand(fg, exec.Options{Model: exec.Chunked, ChunkElems: 512, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if d[dev] != 8 {
		t.Errorf("fused+pooled demand = %d, want the bare 8-byte accumulator", d[dev])
	}
}
