package exec_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/profile"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// tracedRun executes filterSumGraph on a fresh single-GPU runtime with a
// recorder attached and returns the spans with the run's stats.
func tracedRun(t *testing.T, raw, b []int32, cut int64, model exec.Model, chunk int) ([]trace.Span, exec.Stats) {
	t.Helper()
	rt, dev := gpuRuntime(t)
	g := filterSumGraph(t, raw, b, cut, dev)
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: chunk, Recorder: rec})
	if err != nil {
		t.Fatalf("%v chunk=%d: %v", model, chunk, err)
	}
	return rec.Spans(), res.Stats
}

// checkTraceInvariants verifies the structural guarantees every trace must
// satisfy; it returns an error describing the first violation.
func checkTraceInvariants(spans []trace.Span, stats exec.Stats) error {
	// Spans nest within their parents (envelope widening guarantees
	// containment even when a child was scheduled ahead of its container).
	for _, s := range spans {
		if s.Parent == trace.NoSpan {
			continue
		}
		p := spans[s.Parent]
		if s.Start < p.Start || s.End > p.End {
			return fmt.Errorf("span %d [%v,%v] escapes parent %d [%v,%v]",
				s.ID, s.Start, s.End, p.ID, p.Start, p.End)
		}
	}

	// The executor issues one query's operations serially, so the engine
	// spans of one device engine never overlap.
	type lane struct{ dev, eng string }
	last := map[lane]trace.Span{}
	for _, s := range spans {
		if !s.Kind.Engine() {
			continue
		}
		l := lane{s.Device, s.Engine}
		if prev, ok := last[l]; ok && s.Start < prev.End {
			return fmt.Errorf("%s/%s: span %d starts %v before span %d ends %v",
				s.Device, s.Engine, s.ID, s.Start, prev.ID, prev.End)
		}
		last[l] = s
	}

	// The engine spans balance against the Stats decomposition exactly:
	// durations against the virtual-time split, byte counts against the
	// bytes-moved counters, kernel spans against the launch counter.
	var busy vclock.Duration
	var h2d, d2h, launches int64
	var queryDur vclock.Duration
	for _, s := range spans {
		switch {
		case s.Kind == trace.KindQuery:
			queryDur = s.Duration()
		case s.Kind.Engine():
			busy += s.Duration()
			switch s.Kind {
			case trace.KindH2D:
				h2d += s.Bytes
			case trace.KindD2H:
				d2h += s.Bytes
			case trace.KindKernel:
				launches++
			}
		}
	}
	if want := stats.KernelTime + stats.TransferTime + stats.OverheadTime; busy != want {
		return fmt.Errorf("engine spans sum to %v, stats decompose to %v", busy, want)
	}
	if h2d != stats.H2DBytes || d2h != stats.D2HBytes {
		return fmt.Errorf("span bytes %d/%d, stats %d/%d", h2d, d2h, stats.H2DBytes, stats.D2HBytes)
	}
	if launches != stats.Launches {
		return fmt.Errorf("%d kernel spans, stats count %d launches", launches, stats.Launches)
	}
	// The query envelope covers at least the measured elapsed time (frees
	// trailing past the observed horizon may widen it further).
	if queryDur < stats.Elapsed {
		return fmt.Errorf("query span %v shorter than elapsed %v", queryDur, stats.Elapsed)
	}

	// The profiler's span fold conserves the same quantities: attributed
	// device time balances the Stats decomposition exactly, as do the byte
	// and launch counters, and the per-kind split sums to the total.
	attr := profile.Attribute(spans)
	if want := int64(stats.KernelTime + stats.TransferTime + stats.OverheadTime); attr.DeviceNS != want {
		return fmt.Errorf("profile attributes %d device-ns, stats decompose to %d", attr.DeviceNS, want)
	}
	if attr.H2DBytes != stats.H2DBytes || attr.D2HBytes != stats.D2HBytes {
		return fmt.Errorf("profile bytes %d/%d, stats %d/%d", attr.H2DBytes, attr.D2HBytes, stats.H2DBytes, stats.D2HBytes)
	}
	if attr.Launches != stats.Launches {
		return fmt.Errorf("profile counts %d launches, stats %d", attr.Launches, stats.Launches)
	}
	var kindSum int64
	for _, ns := range attr.BusyNS {
		kindSum += ns
	}
	if kindSum != attr.DeviceNS {
		return fmt.Errorf("profile kind split sums to %d, total %d", kindSum, attr.DeviceNS)
	}
	return nil
}

// Property: for random data, chunk sizes and models, traces nest, engine
// lanes never overlap, span sums balance the Stats decomposition, and the
// same workload on a fresh runtime reproduces the identical trace.
func TestTraceInvariantsProperty(t *testing.T) {
	models := exec.Models()
	f := func(raw []int32, chunkRaw uint16, cut int32, modelRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		b := make([]int32, len(raw))
		for i := range b {
			b[i] = int32(i % 97)
		}
		chunk := int(chunkRaw)%len(raw) + 64
		model := models[int(modelRaw)%len(models)]

		spans, stats := tracedRun(t, raw, b, int64(cut), model, chunk)
		if err := checkTraceInvariants(spans, stats); err != nil {
			t.Logf("%v chunk=%d: %v", model, chunk, err)
			return false
		}
		again, _ := tracedRun(t, raw, b, int64(cut), model, chunk)
		if !reflect.DeepEqual(spans, again) {
			t.Logf("%v chunk=%d: trace not reproducible across fresh runtimes", model, chunk)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// checkFuseInvariants verifies the structural guarantees of fuse spans:
// every fuse span is a pure annotation (no engine time, not a container)
// riding a fused kernel launch with the identical extent, and every fused
// kernel launch carries exactly one such annotation. It returns the number
// of fuse spans.
func checkFuseInvariants(spans []trace.Span) (int, error) {
	type extent struct {
		label      string
		device     string
		node       int
		chunk      int
		start, end vclock.Time
	}
	fusedKernels := map[extent]int{}
	for _, s := range spans {
		if s.Kind == trace.KindKernel && strings.HasPrefix(s.Label, "fused_") {
			fusedKernels[extent{s.Label, s.Device, s.Node, s.Chunk, s.Start, s.End}]++
		}
	}
	var fuses int
	for _, s := range spans {
		if s.Kind != trace.KindFuse {
			continue
		}
		fuses++
		if s.Kind.Engine() || s.Kind.Container() {
			return 0, fmt.Errorf("fuse span %d classified as engine/container", s.ID)
		}
		if s.Engine != "" || s.Bytes != 0 {
			return 0, fmt.Errorf("fuse span %d carries engine time or bytes", s.ID)
		}
		key := extent{s.Label, s.Device, s.Node, s.Chunk, s.Start, s.End}
		if fusedKernels[key] == 0 {
			return 0, fmt.Errorf("fuse span %d (%s @%v) has no kernel span of the same extent", s.ID, s.Label, s.Start)
		}
		fusedKernels[key]--
	}
	for k, n := range fusedKernels {
		if n != 0 {
			return 0, fmt.Errorf("fused kernel launch %q has %d unannotated launches", k.label, n)
		}
	}
	return fuses, nil
}

// Property: fusing a fusible plan preserves every trace invariant, yields
// the identical answer, annotates each fused launch with exactly one fuse
// span, and visibly shortens the trace.
func TestTraceInvariantsFusedProperty(t *testing.T) {
	models := exec.Models()
	f := func(raw []int32, chunkRaw uint16, cut int32, modelRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		b := make([]int32, len(raw))
		for i := range b {
			b[i] = int32(i % 97)
		}
		chunk := int(chunkRaw)%len(raw) + 64
		model := models[int(modelRaw)%len(models)]

		spans, _ := tracedRun(t, raw, b, int64(cut), model, chunk)

		rt, dev := gpuRuntime(t)
		g := filterSumGraph(t, raw, b, int64(cut), dev)
		fg := graph.Fuse(g)
		if fg == g {
			t.Log("filterSumGraph stopped fusing")
			return false
		}
		rec := trace.NewRecorder()
		res, err := exec.Run(rt, fg, exec.Options{Model: model, ChunkElems: chunk, Recorder: rec})
		if err != nil {
			t.Logf("fused %v chunk=%d: %v", model, chunk, err)
			return false
		}
		fspans := rec.Spans()
		if err := checkTraceInvariants(fspans, res.Stats); err != nil {
			t.Logf("fused %v chunk=%d: %v", model, chunk, err)
			return false
		}
		fuses, err := checkFuseInvariants(fspans)
		if err != nil || fuses == 0 {
			t.Logf("fused %v chunk=%d: %d fuse spans, %v", model, chunk, fuses, err)
			return false
		}
		// The unfused trace carries no fuse spans at all.
		if n, err := checkFuseInvariants(spans); err != nil || n != 0 {
			t.Logf("unfused trace has %d fuse spans (%v)", n, err)
			return false
		}
		var want int64
		for i, v := range raw {
			if v < cut {
				want += int64(b[i])
			}
		}
		col, ok := res.Column("sum")
		if !ok || col.I64()[0] != want {
			t.Logf("fused %v chunk=%d: got %v, want %d", model, chunk, col, want)
			return false
		}
		if len(fspans) >= len(spans) {
			t.Logf("fused trace has %d spans, unfused %d: fusion did not shorten it", len(fspans), len(spans))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTraceRecordsRetries: a run under scripted transient faults records
// exactly as many retry spans as Stats.Retries, each carrying the injected
// error and a backoff-long duration.
func TestTraceRecordsRetries(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{Script: []fault.Step{
		{At: 2, Op: -1, Kind: fault.Transient},
		{At: 9, Op: -1, Kind: fault.Launch},
	}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	g := filterSumGraph(t, []int32{1, 2, 3, 4}, []int32{10, 20, 30, 40}, 3, 0)
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{
		Model:    exec.Chunked,
		Recorder: rec,
		Retry:    exec.RetryPolicy{MaxRetries: 3},
	})
	if err != nil {
		t.Fatalf("run with retryable faults: %v", err)
	}
	var retries int64
	for _, s := range rec.Spans() {
		if s.Kind != trace.KindRetry {
			continue
		}
		retries++
		if s.Label == "" || s.Duration() <= 0 {
			t.Errorf("retry span %d: label=%q dur=%v, want fault text and backoff", s.ID, s.Label, s.Duration())
		}
	}
	if retries != res.Stats.Retries || retries == 0 {
		t.Errorf("%d retry spans, stats count %d", retries, res.Stats.Retries)
	}
}

// TestTraceRecordsFailover: when the primary dies and the query re-places
// onto the fallback, the trace carries one failover span naming both
// devices and spans attributed to both device names.
func TestTraceRecordsFailover(t *testing.T) {
	rt := hub.NewRuntime()
	plan := &fault.Plan{DieAfterOps: 12, Devices: []string{"cuda"}}
	if _, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan)); err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	n := 512
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 10)
		b[i] = int32(i % 13)
	}
	g := filterSumGraph(t, a, b, 5, 0)
	rec := trace.NewRecorder()
	res, err := exec.Run(rt, g, exec.Options{
		Model:          exec.Pipelined,
		ChunkElems:     64,
		Recorder:       rec,
		FallbackDevice: &fb,
	})
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	var failoverSpans int
	devices := map[string]bool{}
	for _, s := range rec.Spans() {
		if s.Kind == trace.KindFailover {
			failoverSpans++
		}
		if s.Device != "" {
			devices[s.Device] = true
		}
	}
	var failoverEvents int
	for _, ev := range res.Stats.Events {
		if ev.Kind == exec.EventFailover {
			failoverEvents++
		}
	}
	if failoverSpans != failoverEvents || failoverSpans == 0 {
		t.Errorf("%d failover spans, stats log %d failover events", failoverSpans, failoverEvents)
	}
	if len(devices) != 2 {
		t.Errorf("trace attributes spans to %d devices, want both primary and fallback", len(devices))
	}
}
