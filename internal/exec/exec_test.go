package exec_test

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// gpuRuntime builds a single-GPU runtime.
func gpuRuntime(t *testing.T) (*hub.Runtime, device.ID) {
	t.Helper()
	rt := hub.NewRuntime()
	id, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	return rt, id
}

// filterSumGraph builds: filter(a < cut) -> materialize(b) -> sum.
func filterSumGraph(t *testing.T, a, b []int32, cut int64, dev device.ID) *graph.Graph {
	t.Helper()
	g := graph.New()
	sa := g.AddScan("a", vec.FromInt32(a), dev)
	sb := g.AddScan("b", vec.FromInt32(b), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, cut, 0, "a<cut"), dev, sa)
	m, err := task.NewMaterialize(vec.Int32, "b")
	if err != nil {
		t.Fatal(err)
	}
	mat := g.AddTask(m, dev, sb, g.Out(f, 0))
	cast := g.AddTask(task.NewMapCast("widen"), dev, g.Out(mat, 0))
	aggT, err := task.NewAggBlock(kernels.AggSum, vec.Int64, "sum")
	if err != nil {
		t.Fatal(err)
	}
	agg := g.AddTask(aggT, dev, g.Out(cast, 0))
	g.MarkResult("sum", g.Out(agg, 0))
	return g
}

// Property: every execution model computes the same answer for random data
// and random chunk sizes, and matches the host loop.
func TestModelEquivalenceProperty(t *testing.T) {
	rt, dev := gpuRuntime(t)
	f := func(raw []int32, chunkRaw uint16, cut int32) bool {
		if len(raw) == 0 {
			return true
		}
		b := make([]int32, len(raw))
		for i := range b {
			b[i] = int32(i % 97)
		}
		var want int64
		for i, v := range raw {
			if v < cut {
				want += int64(b[i])
			}
		}
		chunk := int(chunkRaw)%len(raw) + 64

		for _, model := range []exec.Model{exec.OperatorAtATime, exec.Chunked, exec.Pipelined, exec.FourPhaseChunked, exec.FourPhasePipelined} {
			g := filterSumGraph(t, raw, b, int64(cut), dev)
			res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: chunk})
			if err != nil {
				t.Logf("%v chunk=%d: %v", model, chunk, err)
				return false
			}
			col, ok := res.Column("sum")
			if !ok || col.I64()[0] != want {
				t.Logf("%v chunk=%d: got %v, want %d", model, chunk, col, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPerChunkResultConcat returns a materialized column from a chunked
// pipeline: fragments must concatenate in order.
func TestPerChunkResultConcat(t *testing.T) {
	rt, dev := gpuRuntime(t)
	n := 1000
	a := make([]int32, n)
	for i := range a {
		a[i] = int32(i)
	}
	g := graph.New()
	sa := g.AddScan("a", vec.FromInt32(a), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 500, 0, "a>=500"), dev, sa)
	m, _ := task.NewMaterialize(vec.Int32, "a")
	mat := g.AddTask(m, dev, sa, g.Out(f, 0))
	g.MarkResult("kept", g.Out(mat, 0))

	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 128})
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := res.Column("kept")
	if kept.Len() != 500 {
		t.Fatalf("kept %d rows, want 500", kept.Len())
	}
	for i := 0; i < 500; i++ {
		if kept.I32()[i] != int32(500+i) {
			t.Fatalf("kept[%d] = %d", i, kept.I32()[i])
		}
	}
}

// TestOOMSurfacesFromOAAT: operator-at-a-time fails once the resident set
// exceeds device memory, while chunked succeeds (Figure 7's point).
func TestOOMSurfacesFromOAAT(t *testing.T) {
	tiny := &simhw.Spec{
		Name: "tiny-gpu", Class: simhw.ClassGPU, MemoryBytes: 1 << 20,
		StreamGBps: 100, RandomGBps: 10, AtomicMops: 100,
		Links: simhw.Links{
			H2DPageable: simhw.LinkCurve{PeakGBps: 6},
			H2DPinned:   simhw.LinkCurve{PeakGBps: 12},
			D2HPageable: simhw.LinkCurve{PeakGBps: 6},
			D2HPinned:   simhw.LinkCurve{PeakGBps: 12},
		},
	}
	rt := hub.NewRuntime()
	dev, err := rt.Register(simcuda.New(tiny, nil))
	if err != nil {
		t.Fatal(err)
	}

	n := 1 << 18 // 1 MiB per column: two columns cannot fit the 1 MiB card
	a := make([]int32, n)
	b := make([]int32, n)

	g := filterSumGraph(t, a, b, 10, dev)
	if _, err := exec.Run(rt, g, exec.Options{Model: exec.OperatorAtATime}); !errors.Is(err, devmem.ErrOutOfMemory) {
		t.Errorf("OAAT should OOM: %v", err)
	}

	g = filterSumGraph(t, a, b, 10, dev)
	if _, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 1 << 14}); err != nil {
		t.Errorf("chunked should fit: %v", err)
	}
}

// TestCountOverflowSurfaces: an undersized estimated output fails loudly.
func TestCountOverflowSurfaces(t *testing.T) {
	rt, dev := gpuRuntime(t)
	n := 1000
	a := make([]int32, n) // all zero: every row matches < 10
	g := graph.New()
	sa := g.AddScan("a", vec.FromInt32(a), dev)
	fp := g.AddTask(task.NewFilterPosition(kernels.CmpLt, 10, 0, 0.01, "underestimated"), dev, sa)
	g.MarkResult("pos", g.Out(fp, 0))
	if _, err := exec.Run(rt, g, exec.Options{Model: exec.OperatorAtATime}); err == nil {
		t.Error("undersized position buffer should fail")
	}
}

// TestStatsSanity checks the accounting of a serial execution.
func TestStatsSanity(t *testing.T) {
	rt, dev := gpuRuntime(t)
	n := 4096
	a := make([]int32, n)
	b := make([]int32, n)
	g := filterSumGraph(t, a, b, 10, dev)
	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Chunks != 4 || s.Pipelines != 1 {
		t.Errorf("chunks=%d pipelines=%d", s.Chunks, s.Pipelines)
	}
	if s.H2DBytes < int64(n)*8 {
		t.Errorf("H2D bytes = %d, want >= both columns", s.H2DBytes)
	}
	if s.Launches == 0 || s.Elapsed <= 0 || s.Wall <= 0 {
		t.Errorf("stats = %+v", s)
	}
	// Serial model: total time covers its parts.
	if s.Elapsed < s.KernelTime {
		t.Errorf("elapsed %v < kernel time %v", s.Elapsed, s.KernelTime)
	}
	if s.PeakDeviceBytes <= 0 {
		t.Error("peak device bytes missing")
	}
}

// TestFootprintTrace verifies the per-primitive memory samples.
func TestFootprintTrace(t *testing.T) {
	rt, dev := gpuRuntime(t)
	a := make([]int32, 1024)
	b := make([]int32, 1024)
	g := filterSumGraph(t, a, b, 10, dev)
	res, err := exec.Run(rt, g, exec.Options{Model: exec.OperatorAtATime, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Footprint) < 4 {
		t.Fatalf("footprint has %d samples", len(res.Stats.Footprint))
	}
	var peak int64
	for _, s := range res.Stats.Footprint {
		if s.Bytes > peak {
			peak = s.Bytes
		}
		if s.Label == "" {
			t.Error("unlabeled footprint sample")
		}
	}
	if peak <= 0 {
		t.Error("footprint never rose")
	}
}

// TestRepeatedRunsIndependent: back-to-back runs on one runtime report
// comparable elapsed times (the virtual time base advances per run).
func TestRepeatedRunsIndependent(t *testing.T) {
	rt, dev := gpuRuntime(t)
	a := make([]int32, 4096)
	b := make([]int32, 4096)

	var first, second exec.Stats
	for i, out := range []*exec.Stats{&first, &second} {
		g := filterSumGraph(t, a, b, 10, dev)
		res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 1024})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		*out = res.Stats
	}
	ratio := float64(first.Elapsed) / float64(second.Elapsed)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("elapsed drifted across runs: %v vs %v", first.Elapsed, second.Elapsed)
	}
}

// TestModelStrings covers diagnostics.
func TestModelStrings(t *testing.T) {
	names := map[exec.Model]string{
		exec.OperatorAtATime:    "operator-at-a-time",
		exec.Chunked:            "chunked",
		exec.Pipelined:          "pipelined",
		exec.FourPhaseChunked:   "4-phase chunked",
		exec.FourPhasePipelined: "4-phase pipelined",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d: %s != %s", m, m, want)
		}
	}
	if exec.Model(99).String() == "" {
		t.Error("unknown model needs diagnostics")
	}
	if len(exec.Models()) != 5 {
		t.Error("Models() incomplete")
	}
}

// TestStagingDepth checks that deeper prefetch keeps results identical.
// Performance-wise double buffering is already optimal here — the copy
// engine saturates, so extra buffers only add stage-phase allocation cost
// (BenchmarkAblationPrefetchDepth quantifies it); the test bounds that
// overhead rather than expecting a speedup.
func TestStagingDepth(t *testing.T) {
	rt, dev := gpuRuntime(t)
	n := 1 << 16
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 100)
		b[i] = int32(i % 7)
	}

	var baseline int64
	var twoBufElapsed, deepElapsed int64
	for _, depth := range []int{2, 4} {
		g := filterSumGraph(t, a, b, 50, dev)
		res, err := exec.Run(rt, g, exec.Options{
			Model: exec.FourPhasePipelined, ChunkElems: 2048, StagingBuffers: depth,
		})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		col, _ := res.Column("sum")
		if baseline == 0 {
			baseline = col.I64()[0]
			twoBufElapsed = int64(res.Stats.Elapsed)
		} else {
			if col.I64()[0] != baseline {
				t.Errorf("depth %d changed the answer: %d vs %d", depth, col.I64()[0], baseline)
			}
			deepElapsed = int64(res.Stats.Elapsed)
		}
	}
	if deepElapsed > 2*twoBufElapsed {
		t.Errorf("4 staging buffers (%d) cost more than 2x double buffering (%d)", deepElapsed, twoBufElapsed)
	}
}
