package exec_test

import (
	"testing"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
)

// poolFor builds a pool over the runtime's device resolver.
func poolFor(rt *hub.Runtime, capacity int64) *bufpool.Manager {
	return bufpool.New(bufpool.Config{Capacity: capacity, Device: rt.Device})
}

// TestPooledMatchesUnpooledAllModels: with the buffer pool enabled, every
// execution model computes the same result as its legacy private-transfer
// path — on the cold run that fills the pool and on the warm run that
// reads from it.
func TestPooledMatchesUnpooledAllModels(t *testing.T) {
	n := 3000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 1009)
		b[i] = int32(i % 97)
	}
	var want int64
	for i, v := range a {
		if v < 500 {
			want += int64(b[i])
		}
	}

	for _, model := range []exec.Model{
		exec.OperatorAtATime, exec.Chunked, exec.Pipelined,
		exec.FourPhaseChunked, exec.FourPhasePipelined,
	} {
		t.Run(model.String(), func(t *testing.T) {
			rt, dev := gpuRuntime(t)
			pool := poolFor(rt, 1<<20)
			for run := 0; run < 2; run++ {
				g := filterSumGraph(t, a, b, 500, dev)
				res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 512, Pool: pool})
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				col, ok := res.Column("sum")
				if !ok || col.I64()[0] != want {
					t.Fatalf("run %d: got %v, want %d", run, col, want)
				}
			}
			st := pool.Stats()
			if st.Misses != 2 {
				t.Errorf("misses = %d, want 2 (columns a and b, loaded once)", st.Misses)
			}
			if st.Hits != 2 {
				t.Errorf("hits = %d, want 2 (warm run reuses both)", st.Hits)
			}
			// After both queries only pooled bytes remain on the device.
			d, err := rt.Device(dev)
			if err != nil {
				t.Fatal(err)
			}
			ms := d.MemStats()
			if ms.Used != ms.PooledUsed || ms.PooledUsed != pool.CachedBytes(dev) {
				t.Errorf("device used=%d pooled=%d, pool says %d: query-held bytes leaked",
					ms.Used, ms.PooledUsed, pool.CachedBytes(dev))
			}
			if mc, ok := d.(device.MemChecker); ok {
				if err := mc.CheckMemAccounting(); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestWarmRunIssuesNoBaseColumnTransfers: the second pooled run of the
// same plan moves zero H2D bytes — the refactored transfer path resolves
// every base column from the pool.
func TestWarmRunIssuesNoBaseColumnTransfers(t *testing.T) {
	n := 2048
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i)
		b[i] = int32(i % 13)
	}
	rt, dev := gpuRuntime(t)
	pool := poolFor(rt, 1<<20)
	opts := exec.Options{Model: exec.FourPhasePipelined, ChunkElems: 512, Pool: pool}

	g := filterSumGraph(t, a, b, 1000, dev)
	if _, err := exec.Run(rt, g, opts); err != nil {
		t.Fatal(err)
	}
	d, err := rt.Device(dev)
	if err != nil {
		t.Fatal(err)
	}
	coldH2D := d.Stats().H2DBytes

	g = filterSumGraph(t, a, b, 1000, dev)
	if _, err := exec.Run(rt, g, opts); err != nil {
		t.Fatal(err)
	}
	if warm := d.Stats().H2DBytes - coldH2D; warm != 0 {
		t.Errorf("warm run shipped %d H2D bytes, want 0", warm)
	}
}

// TestPoolSurvivesFailover: a pooled query whose primary dies mid-run
// fails over to the fallback and still matches the fault-free answer; the
// dead device's cached columns are invalidated, not leaked.
func TestPoolSurvivesFailover(t *testing.T) {
	n := 2048
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 701)
		b[i] = int32(i % 31)
	}
	var want int64
	for i, v := range a {
		if v < 350 {
			want += int64(b[i])
		}
	}

	rt := hub.NewRuntime()
	plan := &fault.Plan{DieAfterOps: 12, Devices: []string{"cuda"}}
	gpu, err := rt.Register(fault.Wrap(simcuda.New(&simhw.RTX2080Ti, nil), plan))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	pool := poolFor(rt, 1<<20)

	// Warm the pool on the GPU before the death window opens wide: the
	// first run dies mid-flight and fails over.
	g := filterSumGraph(t, a, b, 350, gpu)
	res, err := exec.Run(rt, g, exec.Options{
		Model: exec.Chunked, ChunkElems: 256, Pool: pool, FallbackDevice: &fb,
	})
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	col, ok := res.Column("sum")
	if !ok || col.I64()[0] != want {
		t.Fatalf("failover result %v, want %d", col, want)
	}
	if got := pool.CachedBytes(gpu); got != 0 {
		t.Errorf("dead device still caches %d bytes; failover must invalidate", got)
	}
	if st := pool.Stats(); st.Invalidations == 0 {
		t.Error("no invalidation recorded on device death")
	}
	// The GPU's memory drained even though the pool had marked buffers.
	d, err := rt.Device(gpu)
	if err != nil {
		t.Fatal(err)
	}
	if ms := d.MemStats(); ms.PooledUsed != 0 {
		t.Errorf("dead device pooled bytes = %d, want 0", ms.PooledUsed)
	}
}

// TestPoolDeclinesOversizedColumnGracefully: a column larger than the pool
// capacity silently uses the legacy path — same answer, nothing cached.
func TestPoolDeclinesOversizedColumnGracefully(t *testing.T) {
	n := 4096
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 211)
		b[i] = int32(i % 7)
	}
	var want int64
	for i, v := range a {
		if v < 100 {
			want += int64(b[i])
		}
	}
	rt, dev := gpuRuntime(t)
	pool := poolFor(rt, 100) // 100 B: every 16 KiB column declines
	g := filterSumGraph(t, a, b, 100, dev)
	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 512, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	col, ok := res.Column("sum")
	if !ok || col.I64()[0] != want {
		t.Fatalf("got %v, want %d", col, want)
	}
	st := pool.Stats()
	if st.Entries != 0 || st.CachedBytes != 0 {
		t.Errorf("oversized columns were cached: %+v", st)
	}
	// The executor checks capacity up front, so the scans never even count
	// as pool lookups — and memory fully drains at query end.
	d, err := rt.Device(dev)
	if err != nil {
		t.Fatal(err)
	}
	if ms := d.MemStats(); ms.Used != 0 {
		t.Errorf("device used = %d after query, want 0", ms.Used)
	}
}
