package exec

import (
	"strings"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// traced wraps a device.Device and records one trace span per engine
// operation. It sits between the retrier and the device (so only
// operations that actually ran are recorded; faulted attempts consume no
// engine time and leave no span) and is only installed when the executor
// carries a recorder — the nil-recorder hot path never sees it.
//
// Span start times are recovered from the engine timelines: the device
// reports only an operation's completion, but the timeline's busy counter
// advances by exactly the operation's scheduled duration, and the executor
// issues one query's operations serially, so start = end - busyDelta. An
// operation that schedules several back-to-back segments in one call (a
// fresh placement's allocation + copy) records one span covering both.
type traced struct {
	x    *executor
	name string
	d    device.Device
}

var _ device.Device = (*traced)(nil)

// record appends one engine span. Zero-duration spans are kept only for
// transfers (their byte counts feed the bytes-moved invariants); free,
// sync, transform and alloc operations that cost nothing (views,
// host-resident devices) record nothing.
func (t *traced) record(kind trace.Kind, label, engine string, tl *vclock.Timeline, busyBefore vclock.Duration, end vclock.Time, bytes int64) {
	x := t.x
	delta := tl.Busy() - busyBefore
	if delta == 0 && kind != trace.KindH2D && kind != trace.KindD2H {
		return
	}
	id := x.rec.Add(trace.Span{
		Parent:   x.parentSpan(),
		Kind:     kind,
		Label:    label,
		Device:   t.name,
		Engine:   engine,
		Start:    end.Add(-delta),
		End:      end,
		Bytes:    bytes,
		Node:     x.curNode,
		Pipeline: x.pidx,
		Chunk:    x.cidx,
	})
	if kind == trace.KindKernel {
		x.lastKernel = id
		// A fused single-pass kernel gets a companion fuse annotation with
		// the same extent: never engine time (the kernel span already
		// carries that), but it lets summaries and invariants show which
		// launches replaced whole primitive chains.
		if strings.HasPrefix(label, "fused_") {
			x.rec.Add(trace.Span{
				Parent:   x.parentSpan(),
				Kind:     trace.KindFuse,
				Label:    label,
				Device:   t.name,
				Start:    end.Add(-delta),
				End:      end,
				Node:     x.curNode,
				Pipeline: x.pidx,
				Chunk:    x.cidx,
			})
		}
	}
}

// Initialize implements device.Device.
func (t *traced) Initialize() error { return t.d.Initialize() }

// Info implements device.Device.
func (t *traced) Info() device.Info { return t.d.Info() }

// PlaceData implements device.Device.
func (t *traced) PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	buf, end, err := t.d.PlaceData(data, ready)
	if err == nil {
		t.record(trace.KindH2D, t.x.opLabel, "copy", tl, busy, end, data.Bytes())
	}
	return buf, end, err
}

// PlaceDataInto implements device.Device.
func (t *traced) PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	end, err := t.d.PlaceDataInto(id, off, data, ready)
	if err == nil {
		t.record(trace.KindH2D, t.x.opLabel, "copy", tl, busy, end, data.Bytes())
	}
	return end, err
}

// RetrieveData implements device.Device.
func (t *traced) RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	end, err := t.d.RetrieveData(id, off, n, dst, ready)
	if err == nil {
		t.record(trace.KindD2H, t.x.opLabel, "copy", tl, busy, end, bytesFor(dst.Type(), n))
	}
	return end, err
}

// PrepareMemory implements device.Device.
func (t *traced) PrepareMemory(typ vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	buf, end, err := t.d.PrepareMemory(typ, n, ready)
	if err == nil {
		t.record(trace.KindAlloc, t.x.opLabel, "copy", tl, busy, end, bytesFor(typ, n))
	}
	return buf, end, err
}

// AddPinnedMemory implements device.Device.
func (t *traced) AddPinnedMemory(typ vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	buf, end, err := t.d.AddPinnedMemory(typ, n, ready)
	if err == nil {
		t.record(trace.KindPinnedAlloc, t.x.opLabel, "copy", tl, busy, end, bytesFor(typ, n))
	}
	return buf, end, err
}

// CreateChunk implements device.Device. Views are host-side bookkeeping:
// no engine time, no span.
func (t *traced) CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error) {
	return t.d.CreateChunk(id, off, n)
}

// TransformMemory implements device.Device.
func (t *traced) TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error) {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	end, err := t.d.TransformMemory(id, target, ready)
	if err == nil {
		t.record(trace.KindTransform, t.x.opLabel, "copy", tl, busy, end, 0)
	}
	return end, err
}

// DeleteMemory implements device.Device. The device reports no completion
// event for a free; the span ends when the copy engine next becomes idle,
// which is exactly the free's end because deletions schedule at the
// engine's availability.
func (t *traced) DeleteMemory(id devmem.BufferID) error {
	tl := t.d.CopyEngine()
	busy := tl.Busy()
	err := t.d.DeleteMemory(id)
	if err == nil {
		t.record(trace.KindFree, t.x.opLabel, "copy", tl, busy, tl.Avail(), 0)
	}
	return err
}

// PrepareKernel implements device.Device.
func (t *traced) PrepareKernel(name, source string) error { return t.d.PrepareKernel(name, source) }

// Execute implements device.Device. The span covers the SDK launch
// overhead plus the kernel body and is labelled with the kernel name.
func (t *traced) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	tl := t.d.ComputeEngine()
	busy := tl.Busy()
	end, err := t.d.Execute(req, ready)
	if err == nil {
		t.record(trace.KindKernel, req.Kernel, "compute", tl, busy, end, 0)
	}
	return end, err
}

// Sync implements device.Device.
func (t *traced) Sync(ready vclock.Time) vclock.Time {
	tl := t.d.ComputeEngine()
	busy := tl.Busy()
	end := t.d.Sync(ready)
	t.record(trace.KindSync, t.x.opLabel, "compute", tl, busy, end, 0)
	return end
}

// Buffer implements device.Device.
func (t *traced) Buffer(id devmem.BufferID) (*devmem.Buffer, error) { return t.d.Buffer(id) }

// CopyEngine implements device.Device.
func (t *traced) CopyEngine() *vclock.Timeline { return t.d.CopyEngine() }

// ComputeEngine implements device.Device.
func (t *traced) ComputeEngine() *vclock.Timeline { return t.d.ComputeEngine() }

// MemStats implements device.Device.
func (t *traced) MemStats() devmem.Stats { return t.d.MemStats() }

// Stats implements device.Device.
func (t *traced) Stats() device.Stats { return t.d.Stats() }

// Reset implements device.Device.
func (t *traced) Reset() { t.d.Reset() }
