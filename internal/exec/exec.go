// Package exec implements ADAMANT's execution models (§IV of the paper):
// operator-at-a-time, chunked execution (Algorithm 1), pipelined execution
// with copy/compute overlap (Algorithm 2), and the 4-phase pipelined model
// with pinned memory and buffer reuse (Algorithm 3, Figure 8).
//
// All models drive the same primitive graph through the same device
// interfaces; they differ only in how input columns are staged (whole,
// per-chunk allocations, or reusable double buffers), whether buffers are
// pinned, whether transfers overlap kernel execution, and when scratch
// memory is allocated and released. That separation — execution policy on
// one side, pluggable devices on the other — is the paper's core design.
package exec

import (
	"context"
	"fmt"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Model selects the execution model.
type Model int

// Execution models.
const (
	// OperatorAtATime keeps whole columns and whole intermediates in
	// device memory, one primitive at a time. Fast when everything fits;
	// fails with OOM when it does not (the scalability limit of §IV-A).
	OperatorAtATime Model = iota
	// Chunked is the naive chunked model of Algorithm 1: every chunk is
	// transferred, processed through the whole pipeline, and its scratch
	// released, strictly serially.
	Chunked
	// Pipelined overlaps chunk transfer with pipeline execution using
	// rotating pageable staging buffers (Algorithm 2).
	Pipelined
	// FourPhaseChunked stages pinned double buffers and reusable scratch
	// up front, processes chunks serially, and frees everything in a
	// delete phase (Algorithm 3 without overlap).
	FourPhaseChunked
	// FourPhasePipelined is the full Algorithm 3: pinned double buffers,
	// buffer reuse, and copy/compute overlap.
	FourPhasePipelined
)

// String returns the model's name as used in the paper's figures.
func (m Model) String() string {
	switch m {
	case OperatorAtATime:
		return "operator-at-a-time"
	case Chunked:
		return "chunked"
	case Pipelined:
		return "pipelined"
	case FourPhaseChunked:
		return "4-phase chunked"
	case FourPhasePipelined:
		return "4-phase pipelined"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Models lists all execution models in presentation order.
func Models() []Model {
	return []Model{OperatorAtATime, Chunked, Pipelined, FourPhaseChunked, FourPhasePipelined}
}

// valid reports whether m names a defined execution model.
func (m Model) valid() bool {
	return m >= OperatorAtATime && m <= FourPhasePipelined
}

// modeFlags are the policy knobs a model maps onto.
type modeFlags struct {
	wholeInput    bool // transfer entire columns up front
	reuseStaging  bool // rotate persistent staging buffers instead of per-chunk allocs
	pinnedStaging bool // staging (and result) buffers in pinned memory
	stagedScratch bool // allocate scratch once per pipeline, delete at the end
	overlap       bool // let transfers run ahead of execution
	syncPerChunk  bool // charge the transfer/execute thread handshake per chunk
}

func (m Model) flags() modeFlags {
	switch m {
	case OperatorAtATime:
		return modeFlags{wholeInput: true, stagedScratch: true}
	case Chunked:
		return modeFlags{}
	case Pipelined:
		return modeFlags{reuseStaging: true, stagedScratch: true, overlap: true, syncPerChunk: true}
	case FourPhaseChunked:
		return modeFlags{reuseStaging: true, pinnedStaging: true, stagedScratch: true}
	case FourPhasePipelined:
		return modeFlags{reuseStaging: true, pinnedStaging: true, stagedScratch: true, overlap: true, syncPerChunk: true}
	default:
		return modeFlags{}
	}
}

// Options configures one execution.
type Options struct {
	// Model selects the execution model. The zero value is
	// OperatorAtATime.
	Model Model
	// ChunkElems is the chunk size in elements (rounded up to a multiple
	// of 64 so bitmap chunks stay word-aligned). Defaults to 2^25, the
	// paper's chunk size. Ignored by OperatorAtATime.
	ChunkElems int
	// StagingBuffers is the number of rotating staging buffers per scan
	// in the buffer-reusing models (Figure 8 uses 2: double buffering).
	// Values above 2 deepen the transfer prefetch under the overlapped
	// models. Defaults to 2.
	StagingBuffers int
	// Trace records a device-memory footprint sample after every
	// primitive execution (Figure 7 right).
	Trace bool
	// Recorder, when non-nil, records a span for every simulated
	// operation the query issues (transfers, kernels, allocations, chunk
	// and pipeline boundaries, retries, failovers) with virtual times.
	// Recording does not perturb the simulation: virtual timings are
	// identical with and without a recorder. Nil disables tracing at zero
	// cost.
	Recorder *trace.Recorder
	// Retry configures transient-fault retries at the device interfaces.
	// The zero value disables retrying.
	Retry RetryPolicy
	// FallbackDevice, when set, names the device the query re-places onto
	// if one of its devices dies mid-run (a DeviceLost fault). Nil (the
	// default) disables failover: a lost device fails the query. It is a
	// pointer because ID 0 is a valid device.
	FallbackDevice *device.ID
	// AdaptiveChunking enables graceful OOM degradation: when a device
	// allocation fails (an injected OOM fault or genuine pool exhaustion),
	// the chunk-streaming models halve the effective chunk size and re-run
	// the plan, stepping down to MinChunkElems; once at the floor (or
	// under OperatorAtATime, which has no chunks to shrink) the query
	// re-places onto a host-resident device as the last resort. Every step
	// is recorded as an EventDegrade and, when tracing, a degrade span, so
	// the virtual-time cost of degradation stays visible. False (the
	// default) keeps OOM fail-fast.
	AdaptiveChunking bool
	// MinChunkElems is the adaptive-chunking floor in elements (rounded up
	// to a multiple of 64). Zero means DefaultMinChunkElems. Values above
	// ChunkElems clamp to it.
	MinChunkElems int
	// Deadline, when positive, is the query's virtual-time budget: at every
	// chunk and pipeline boundary the executor compares the virtual time
	// elapsed since the query began against it and fails with an error
	// wrapping vclock.ErrDeadline once exceeded. The query's buffers are
	// released like any other failure. Zero disables the deadline.
	Deadline vclock.Duration
	// Events, when non-nil, receives structured runtime events (retries,
	// failovers, degrade steps, deadline overruns) stamped with QueryID
	// and virtual time. Like the Recorder, emission never perturbs the
	// simulation, and a nil sink costs nothing on the hot path.
	Events *telemetry.EventSink
	// QueryID tags emitted events and spans digests with the caller's
	// query number (the facade assigns one per execution).
	QueryID uint64
	// Tenant is an opaque workload label for per-tenant resource
	// attribution. The executor ignores it; the facade profiler keys
	// ledger entries by (shape, tenant).
	Tenant string
	// Pool, when non-nil, is the cross-query buffer pool base columns are
	// leased from instead of being shipped through the query's private
	// transfer path. Warm columns cost no bus traffic; cold columns load
	// once, with concurrent queries joining the in-flight transfer. Nil
	// (the default) keeps the legacy per-query path and byte-identical
	// traces.
	Pool *bufpool.Manager
	// PlanNotes, when non-empty, are the auto-planner's decision
	// annotations: each becomes a zero-extent autoplan span at the query
	// start, so plans are auditable from the trace alone. Recorded only
	// when a Recorder is set; never perturbs execution.
	PlanNotes []string
	// Replan, when non-nil, is consulted at every pipeline boundary after
	// the first with the pipeline's estimated vs observed input
	// cardinality. If it returns a new chunk size, the executor restarts
	// the attempt from the host-resident scans with the new size — the
	// same restart mechanism as failover and the adaptive-OOM ladder, so
	// results stay bit-identical by construction. At most one re-plan
	// fires per query.
	Replan ReplanFunc
}

// ReplanObservation is what the executor tells the re-planner at a
// pipeline boundary: the pipeline about to run, its estimated input rows
// (graph.EstimateRows), the rows actually observed from upstream, and the
// chunk size currently in effect.
type ReplanObservation struct {
	Pipeline   int
	EstRows    int
	ActualRows int
	ChunkElems int
}

// ReplanFunc decides whether to restart the attempt with a new chunk size.
// Returning replan=false continues undisturbed.
type ReplanFunc func(o ReplanObservation) (newChunkElems int, replan bool)

// DriftSample records one pipeline's estimated vs observed input
// cardinality — the estimate error the re-planner acts on, exposed in
// Stats so tests can assert on drift without parsing traces.
type DriftSample struct {
	Pipeline   int
	EstRows    int
	ActualRows int
}

// DefaultChunkElems is the paper's chunk size (2^25 values).
const DefaultChunkElems = 1 << 25

// DefaultMinChunkElems is the adaptive-chunking floor when Options leaves
// MinChunkElems zero: small enough that a working set which still OOMs at
// this chunk size needs a different device, not a smaller chunk.
const DefaultMinChunkElems = 1024

func (o Options) chunkElems() int {
	c := o.ChunkElems
	if c <= 0 {
		c = DefaultChunkElems
	}
	return (c + 63) &^ 63
}

func (o Options) minChunkElems() int {
	m := o.MinChunkElems
	if m <= 0 {
		m = DefaultMinChunkElems
	}
	if c := o.chunkElems(); m > c {
		m = c
	}
	return (m + 63) &^ 63
}

func (o Options) stagingBuffers() int {
	if o.StagingBuffers < 2 {
		return 2
	}
	return o.StagingBuffers
}

// ResultColumn is one named query output retrieved to the host.
type ResultColumn struct {
	Name string
	Data vec.Vector
}

// FootprintSample is one point of the memory-footprint trace.
type FootprintSample struct {
	Label string
	Bytes int64
}

// Stats summarizes one execution.
type Stats struct {
	// Elapsed is the virtual execution time (what the paper's figures
	// report).
	Elapsed vclock.Duration
	// Wall is the host wall-clock time spent, for the curious.
	Wall time.Duration
	// KernelTime is the summed virtual kernel body time; TransferTime
	// the summed transfer time; OverheadTime the summed launch, argument
	// mapping, allocation and transform cost (Figure 10's overhead).
	KernelTime   vclock.Duration
	TransferTime vclock.Duration
	OverheadTime vclock.Duration
	// H2DBytes and D2HBytes count payload bytes moved.
	H2DBytes int64
	D2HBytes int64
	// Launches counts kernel dispatches.
	Launches int64
	// Chunks counts chunk iterations across all pipelines; Pipelines the
	// pipeline count.
	Chunks    int
	Pipelines int
	// PeakDeviceBytes is the high-water device memory across devices.
	PeakDeviceBytes int64
	// Footprint holds the trace when Options.Trace is set.
	Footprint []FootprintSample
	// Retries counts device operations re-issued after transient faults.
	Retries int64
	// Events is the runtime event log: failovers and other degradation
	// actions taken to keep the query alive.
	Events []RuntimeEvent
	// FaultsByDevice counts device-interface errors observed per device
	// during the run — every faulted operation, whether it was retried,
	// degraded around, or surfaced. The per-device health tracker feeds
	// its error-rate window from these counts.
	FaultsByDevice map[device.ID]int64
	// Drift holds the per-pipeline estimated-vs-observed input
	// cardinalities from the last attempt (index order follows pipeline
	// execution order).
	Drift []DriftSample
	// Replans counts mid-query re-plan restarts taken by Options.Replan.
	Replans int
	// Shards holds the per-partition execution summaries when the query ran
	// through the shard coordinator (one entry per table partition, in
	// partition order). Nil for unsharded runs.
	Shards []ShardStat
	// PartialShards lists the shard indexes whose partitions were lost and
	// excluded from the result under the Partial shard-loss mode, in
	// ascending order. Empty means the result covers every partition.
	PartialShards []int
}

// ShardStat summarizes one partition of a sharded execution: which shard
// finally produced it, how long it took in virtual time, and which
// robustness paths fired along the way.
type ShardStat struct {
	// Shard is the partition index; Ran is the shard that produced the
	// accepted result (differs from Shard after a hedge win or failover).
	Shard int
	Ran   int
	// Rows is the partition's input row count.
	Rows int
	// Elapsed is the partition's accepted virtual execution time (the
	// hedged path's ledger time when the hedge won); Wall is host time.
	Elapsed vclock.Duration
	Wall    time.Duration
	// Hedged marks a duplicate request launched after the shard straggled
	// past the hedge threshold; HedgeWon marks the duplicate finishing
	// first. FailedOver marks the partition re-dispatched after its shard
	// died; Lost marks an unrecoverable partition (Partial mode only).
	Hedged     bool
	HedgeWon   bool
	FailedOver bool
	Lost       bool
}

// Result is the outcome of one execution.
type Result struct {
	Columns []ResultColumn
	Stats   Stats
}

// Column returns a result column by name.
func (r *Result) Column(name string) (vec.Vector, bool) {
	for _, c := range r.Columns {
		if c.Name == name {
			return c.Data, true
		}
	}
	return vec.Vector{}, false
}

// Run executes the primitive graph on the runtime's devices under the
// given options and returns the named results with execution statistics.
func Run(rt *hub.Runtime, g *graph.Graph, opts Options) (*Result, error) {
	return RunContext(context.Background(), rt, g, opts)
}

// RunContext is Run with cancellation: the context is checked at every
// chunk and pipeline boundary, and a cancelled query releases every device
// and pinned buffer it allocated before returning. On cancellation the
// returned error wraps ctx.Err() and the returned Result, when non-nil,
// carries the partial execution statistics accumulated so far (no result
// columns).
func RunContext(ctx context.Context, rt *hub.Runtime, g *graph.Graph, opts Options) (*Result, error) {
	if !opts.Model.valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownModel, int(opts.Model))
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		return nil, err
	}
	x := &executor{
		ctx:       ctx,
		rt:        rt,
		g:         g,
		opts:      opts,
		flags:     opts.Model.flags(),
		ports:     make(map[graph.PortRef]*portState),
		live:      make(map[liveBuf]struct{}),
		remap:     make(map[device.ID]device.ID),
		faults:    make(map[device.ID]int64),
		poolPorts: make(map[graph.NodeID]*bufpool.Lease),

		rec:        opts.Recorder,
		qspan:      trace.NoSpan,
		pspan:      trace.NoSpan,
		cspan:      trace.NoSpan,
		lastKernel: trace.NoSpan,
		pidx:       -1,
		cidx:       -1,
		curNode:    -1,
	}
	return x.run(pipelines)
}

// statsDelta subtracts device counters captured before the run.
func statsDelta(after, before device.Stats) device.Stats {
	return device.Stats{
		H2DTransfers: after.H2DTransfers - before.H2DTransfers,
		H2DBytes:     after.H2DBytes - before.H2DBytes,
		D2HTransfers: after.D2HTransfers - before.D2HTransfers,
		D2HBytes:     after.D2HBytes - before.D2HBytes,
		TransferTime: after.TransferTime - before.TransferTime,
		Launches:     after.Launches - before.Launches,
		KernelTime:   after.KernelTime - before.KernelTime,
		OverheadTime: after.OverheadTime - before.OverheadTime,
	}
}
