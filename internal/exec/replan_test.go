package exec_test

import (
	"reflect"
	"testing"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
)

// TestReplanRestart drives the mid-query re-plan path directly: on a
// multi-pipeline query a hook that fires at the first boundary must
// restart the attempt into the new chunk size, record the event, the
// span and the telemetry emission, and change nothing about the answer.
func TestReplanRestart(t *testing.T) {
	ds := testDataset(t)
	rt, dev := gpuRuntime(t)

	baseG, err := tpch.BuildQ3(ds, dev)
	if err != nil {
		t.Fatal(err)
	}
	base, err := exec.Run(rt, baseG, exec.Options{Model: exec.Chunked, ChunkElems: 512})
	if err != nil {
		t.Fatal(err)
	}

	g, err := tpch.BuildQ3(ds, dev)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	sink := telemetry.NewEventSink(16)
	var observed []exec.ReplanObservation
	res, err := exec.Run(rt, g, exec.Options{
		Model: exec.Chunked, ChunkElems: 512, Recorder: rec, Events: sink,
		Replan: func(o exec.ReplanObservation) (int, bool) {
			observed = append(observed, o)
			if o.ChunkElems == 128 {
				return 0, false
			}
			return 100, true // unaligned on purpose: the executor rounds to 128
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Columns, res.Columns) {
		t.Error("re-planned run changed the result")
	}
	if res.Stats.Replans != 1 {
		t.Fatalf("replans = %d, want 1", res.Stats.Replans)
	}
	if len(observed) == 0 {
		t.Fatal("hook never observed a boundary")
	}
	if o := observed[0]; o.ChunkElems != 512 || o.Pipeline == 0 {
		t.Errorf("first observation %+v: want chunk 512 at a non-first pipeline", o)
	}

	var events, spans int
	for _, e := range res.Stats.Events {
		if e.Kind == exec.EventReplan {
			events++
			if e.ChunkFrom != 512 || e.ChunkTo != 128 {
				t.Errorf("replan event %d->%d, want 512->128 (64-aligned)", e.ChunkFrom, e.ChunkTo)
			}
		}
	}
	for _, s := range rec.Spans() {
		if s.Kind == trace.KindReplan {
			spans++
		}
	}
	if events != 1 || spans != 1 {
		t.Errorf("%d replan events, %d replan spans; want 1 and 1", events, spans)
	}
	if sink.Total(telemetry.EventReplan) != 1 {
		t.Errorf("telemetry EventReplan total = %d, want 1", sink.Total(telemetry.EventReplan))
	}

	// Drift samples cover every pipeline even on the restarted attempt.
	if len(res.Stats.Drift) != res.Stats.Pipelines {
		t.Errorf("drift samples %d != pipelines %d", len(res.Stats.Drift), res.Stats.Pipelines)
	}
}

// TestReplanDeclined covers the hook's two refusal shapes — ok=false and
// a proposal equal to the current chunk — neither of which may restart.
func TestReplanDeclined(t *testing.T) {
	ds := testDataset(t)
	rt, dev := gpuRuntime(t)
	for name, hook := range map[string]exec.ReplanFunc{
		"declines": func(o exec.ReplanObservation) (int, bool) { return 0, false },
		"same":     func(o exec.ReplanObservation) (int, bool) { return o.ChunkElems, true },
	} {
		g, err := tpch.BuildQ3(ds, dev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 512, Replan: hook})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.Replans != 0 {
			t.Errorf("%s: replans = %d, want 0", name, res.Stats.Replans)
		}
	}
}
