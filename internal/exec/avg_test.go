package exec_test

import (
	"math"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// avgGraph builds: filter(a < cut) -> materialize(b) -> cast -> SUM, COUNT,
// with AVG marked as the SUM/COUNT pair. The division happens at result
// collection, after aggregation, so sharded runs can merge the raw partials
// with the same finalization.
func avgGraph(t *testing.T, a, b []int32, cut int64, dev device.ID) *graph.Graph {
	t.Helper()
	g := graph.New()
	sa := g.AddScan("a", vec.FromInt32(a), dev)
	sb := g.AddScan("b", vec.FromInt32(b), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, cut, 0, "a<cut"), dev, sa)
	m, err := task.NewMaterialize(vec.Int32, "b")
	if err != nil {
		t.Fatal(err)
	}
	mat := g.AddTask(m, dev, sb, g.Out(f, 0))
	cast := g.AddTask(task.NewMapCast("widen"), dev, g.Out(mat, 0))
	mkAgg := func(op kernels.AggOp) graph.NodeID {
		at, err := task.NewAggBlock(op, vec.Int64, op.String())
		if err != nil {
			t.Fatal(err)
		}
		return g.AddTask(at, dev, g.Out(cast, 0))
	}
	sum := mkAgg(kernels.AggSum)
	cnt := mkAgg(kernels.AggCount)
	g.MarkResult("sum", g.Out(sum, 0))
	g.MarkResultAvg("avg", g.Out(sum, 0), g.Out(cnt, 0))
	return g
}

// TestAvgResultAllModels pins the AVG collection path: every execution
// model finalizes the marked SUM/COUNT pair to the same single Float64
// value the host loop computes, and the SUM partial stays independently
// retrievable.
func TestAvgResultAllModels(t *testing.T) {
	rt, dev := gpuRuntime(t)
	n := 1000
	a := make([]int32, n)
	b := make([]int32, n)
	for i := range a {
		a[i] = int32(i % 311)
		b[i] = int32(i % 97)
	}
	const cut = 150
	var wantSum, wantCnt int64
	for i, v := range a {
		if v < cut {
			wantSum += int64(b[i])
			wantCnt++
		}
	}
	want := float64(wantSum) / float64(wantCnt)

	for _, model := range []exec.Model{
		exec.OperatorAtATime, exec.Chunked, exec.Pipelined,
		exec.FourPhaseChunked, exec.FourPhasePipelined,
	} {
		g := avgGraph(t, a, b, cut, dev)
		res, err := exec.Run(rt, g, exec.Options{Model: model, ChunkElems: 128})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		col, ok := res.Column("avg")
		if !ok {
			t.Fatalf("%v: no avg column", model)
		}
		if col.Type() != vec.Float64 || col.Len() != 1 {
			t.Fatalf("%v: avg is %s len %d, want one Float64", model, col.Type(), col.Len())
		}
		if got := col.F64()[0]; got != want {
			t.Errorf("%v: avg %v, want %v", model, got, want)
		}
		s, ok := res.Column("sum")
		if !ok || s.I64()[0] != wantSum {
			t.Errorf("%v: sum %v, want %d", model, s, wantSum)
		}
	}
}

// TestAvgResultEmpty pins the zero-count finalization: AVG over no
// qualifying rows is 0, not NaN, so results stay bit-comparable.
func TestAvgResultEmpty(t *testing.T) {
	rt, dev := gpuRuntime(t)
	a := []int32{5, 6, 7, 8}
	b := []int32{1, 2, 3, 4}
	g := avgGraph(t, a, b, -1, dev) // nothing passes a < -1
	res, err := exec.Run(rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	col, ok := res.Column("avg")
	if !ok || col.Len() != 1 {
		t.Fatalf("avg column missing: %v", col)
	}
	if got := col.F64()[0]; got != 0 || math.IsNaN(got) {
		t.Errorf("empty avg = %v, want 0", got)
	}
}

// TestFinalizeAvg pins the shared partial-folding helper directly.
func TestFinalizeAvg(t *testing.T) {
	for _, tc := range []struct {
		sum, count int64
		want       float64
	}{
		{0, 0, 0},
		{42, 0, 0},
		{10, 4, 2.5},
		{-9, 3, -3},
	} {
		if got := exec.FinalizeAvg(tc.sum, tc.count); got != tc.want {
			t.Errorf("FinalizeAvg(%d, %d) = %v, want %v", tc.sum, tc.count, got, tc.want)
		}
	}
}
