package exec

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/vec"
)

// bytesFor mirrors vec.Vector.Bytes without allocating: the accounted
// footprint of n elements of type t.
func bytesFor(t vec.Type, n int) int64 {
	if n <= 0 {
		return 0
	}
	switch t {
	case vec.Int32:
		return 4 * int64(n)
	case vec.Int64, vec.Float64:
		return 8 * int64(n)
	case vec.Bits:
		return 8 * int64((n+63)/64)
	default:
		return 0
	}
}

// EstimateDemand returns the query's estimated device-memory working set,
// per device, under the given options — the quantity the session scheduler
// admits against (the paper's Figure 7 memory analysis, applied up front).
//
// The estimate follows the same sizing rules the executor uses when it
// allocates: whole columns under operator-at-a-time, staging double
// buffers and per-chunk scratch under the chunked models, accumulator and
// count buffers per task. Pinned staging is page-locked host memory and
// does not count against device capacity, so the 4-phase models charge no
// staging to the device. The estimate is deliberately conservative: it
// sums across pipelines instead of modelling intermediate frees, so an
// admitted query never out-grows its reservation mid-flight.
func EstimateDemand(g *graph.Graph, opts Options) (map[device.ID]int64, error) {
	if !opts.Model.valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownModel, int(opts.Model))
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		return nil, err
	}
	flags := opts.Model.flags()
	demand := make(map[device.ID]int64)
	add := func(dev device.ID, b int64) {
		if b > 0 {
			demand[dev] += b
		}
	}

	for _, p := range pipelines {
		rows := p.ScanRows(g)
		chunk := opts.chunkElems()
		if flags.wholeInput || rows == 0 || chunk > rows {
			chunk = rows
		}

		for _, sid := range p.Scans {
			n := g.Node(sid)
			t := n.Scan.Data.Type()
			// Columns the buffer pool covers are charged once to the pool
			// by the pool itself, not per query: double-counting them here
			// would make a warm workload look like it still ships every
			// column and starve admission. Columns the pool can never hold
			// (larger than its capacity) stay charged to the query.
			if opts.Pool != nil && opts.Pool.Covers(n.Device) &&
				bufpool.KeyFor(n.Scan.Name, n.Scan.Data).Bytes() <= opts.Pool.Capacity() {
				continue
			}
			switch {
			case flags.wholeInput:
				add(n.Device, bytesFor(t, rows))
			case flags.reuseStaging:
				if !flags.pinnedStaging {
					add(n.Device, int64(opts.stagingBuffers())*bytesFor(t, opts.chunkElems()))
				}
			default:
				add(n.Device, bytesFor(t, chunk))
			}
		}

		for _, nid := range p.Nodes {
			n := g.Node(nid)
			t := n.Task
			per := chunk
			if t.Accumulate {
				per = rows
			}
			for _, spec := range t.Outputs {
				size := spec.Size.Elements(per)
				if size <= 0 {
					size = 1
				}
				add(n.Device, bytesFor(spec.Type, size))
			}
			if t.EmitsCount {
				add(n.Device, 8)
			}
		}
	}
	return demand, nil
}
