package primitive

import "testing"

func TestSignaturesComplete(t *testing.T) {
	kinds := []Kind{
		Scan, Map, AggBlock, HashAgg, HashBuild, HashProbe, SortAgg,
		FilterBitmap, FilterPosition, PrefixSumKind, Materialize,
		MaterializePosition, HashExtract, FusedAgg, FusedMaterialize,
	}
	for _, k := range kinds {
		sig, err := SignatureOf(k)
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if sig.Kind != k {
			t.Errorf("%s: signature kind mismatch", k)
		}
		if k.String() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	if _, err := SignatureOf(Kind(200)); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestBreakersMatchTableI(t *testing.T) {
	breakers := map[Kind]bool{
		AggBlock: true, HashAgg: true, HashBuild: true, SortAgg: true, PrefixSumKind: true,
		FusedAgg: true, // a fused chain ends in its AGG_BLOCK, which breaks
	}
	for k := range Signatures {
		if k.Breaker() != breakers[k] {
			t.Errorf("%s: breaker = %v, want %v", k, k.Breaker(), breakers[k])
		}
	}
}

func TestAcceptsInput(t *testing.T) {
	cases := []struct {
		kind Kind
		port int
		sem  Semantic
		want bool
	}{
		{Map, 0, Numeric, true},
		{Map, 3, Numeric, true}, // variadic tail
		{Map, 0, Bitmap, false},
		{Materialize, 0, Numeric, true},
		{Materialize, 1, Bitmap, true},
		{Materialize, 1, Position, false},
		{MaterializePosition, 1, Position, true},
		{FilterBitmap, 0, Numeric, true},
		{FilterBitmap, 0, Bitmap, true},    // combining filter results
		{FilterBitmap, 1, HashTable, true}, // semi-join filter
		{FilterBitmap, 0, PrefixSum, false},
		{AggBlock, 0, Numeric, true},
		{AggBlock, 0, Bitmap, true}, // COUNT over a bitmap
		{AggBlock, 0, HashTable, false},
		{HashProbe, 1, HashTable, true},
		{HashProbe, 1, Numeric, false},
		{SortAgg, 2, PrefixSum, true},
		{SortAgg, 3, Numeric, false}, // not variadic
		{HashExtract, 0, HashTable, true},
		{Scan, 0, Numeric, false}, // scans have no inputs
	}
	for _, c := range cases {
		sig := Signatures[c.kind]
		if got := sig.AcceptsInput(c.port, c.sem); got != c.want {
			t.Errorf("%s port %d accepts %s = %v, want %v", c.kind, c.port, c.sem, got, c.want)
		}
	}
}

func TestSemanticStrings(t *testing.T) {
	for sem, want := range map[Semantic]string{
		Numeric: "NUMERIC", Bitmap: "BITMAP", Position: "POSITION",
		PrefixSum: "PREFIX_SUM", HashTable: "HASH_TABLE", Generic: "GENERIC",
	} {
		if sem.String() != want {
			t.Errorf("%d: %s != %s", sem, sem.String(), want)
		}
	}
	if Semantic(99).String() == "" || Kind(99).String() == "" {
		t.Error("unknown values need diagnostics")
	}
}
