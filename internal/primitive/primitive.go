// Package primitive defines ADAMANT's database primitives: the granular
// functions that build database operators (§III-B2, Table I of the paper),
// together with the I/O semantics that let the runtime wire independently
// implemented primitives into one plan (§III-B3).
//
// A primitive definition is a functional signature — which semantic kinds
// of data flow in, which flow out, and whether the primitive is a pipeline
// breaker. The task layer checks every plugged implementation against these
// signatures, which is what makes it safe to combine, say, an OpenCL
// arithmetic primitive with a CUDA reduce in a single plan.
package primitive

import "fmt"

// Semantic classifies the data flowing along a plan edge (§III-B3). A
// downstream primitive declares which semantics it accepts, so a selection
// that produces a BITMAP is always paired with the bitmap-consuming
// MATERIALIZE, never the position-list variant.
type Semantic uint8

// Edge semantics.
const (
	Numeric   Semantic = iota // column values
	Bitmap                    // bit-packed filter result
	Position                  // position-list filter/join result
	PrefixSum                 // PREFIX_SUM output, consumed by SORT_AGG
	HashTable                 // HASH_BUILD / HASH_AGG output
	Generic                   // custom data semantic
)

// String returns the paper's spelling of the semantic.
func (s Semantic) String() string {
	switch s {
	case Numeric:
		return "NUMERIC"
	case Bitmap:
		return "BITMAP"
	case Position:
		return "POSITION"
	case PrefixSum:
		return "PREFIX_SUM"
	case HashTable:
		return "HASH_TABLE"
	case Generic:
		return "GENERIC"
	default:
		return fmt.Sprintf("SEMANTIC(%d)", uint8(s))
	}
}

// Kind names a primitive definition from Table I. Scan is the pseudo
// primitive the runtime uses for pipeline inputs.
type Kind uint8

// Primitive kinds.
const (
	Scan Kind = iota
	Map
	AggBlock
	HashAgg
	HashBuild
	HashProbe
	SortAgg
	FilterBitmap
	FilterPosition
	PrefixSumKind
	Materialize
	MaterializePosition
	// HashExtract is an implementation-level materialization that turns a
	// HASH_TABLE into dense key/aggregate columns for retrieval.
	HashExtract
	// FusedAgg is the single-pass fusion of a selection-filter →
	// arithmetic-map → AGG_BLOCK chain: it reads the chain's base columns
	// directly and reduces to a scalar without bitmap or gathered-column
	// intermediates. Produced only by the fusion pass over internal/graph;
	// dispatched by the execution models like any other Table-I primitive.
	FusedAgg
	// FusedMaterialize is the single-pass fusion of a selection-filter →
	// (optional map) → MATERIALIZE chain, compacting survivors straight
	// from the base columns.
	FusedMaterialize
)

// String returns the paper's spelling of the primitive.
func (k Kind) String() string {
	switch k {
	case Scan:
		return "SCAN"
	case Map:
		return "MAP"
	case AggBlock:
		return "AGG_BLOCK"
	case HashAgg:
		return "HASH_AGG"
	case HashBuild:
		return "HASH_BUILD"
	case HashProbe:
		return "HASH_PROBE"
	case SortAgg:
		return "SORT_AGG"
	case FilterBitmap:
		return "FILTER_BITMAP"
	case FilterPosition:
		return "FILTER_POSITION"
	case PrefixSumKind:
		return "PREFIX_SUM"
	case Materialize:
		return "MATERIALIZE"
	case MaterializePosition:
		return "MATERIALIZE_POSITION"
	case HashExtract:
		return "HASH_EXTRACT"
	case FusedAgg:
		return "FUSED_AGG_BLOCK"
	case FusedMaterialize:
		return "FUSED_MATERIALIZE"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Signature is a primitive definition: the semantic I/O contract every
// implementation of the primitive must honor.
type Signature struct {
	Kind Kind
	// Inputs are the accepted semantics per input port, in port order.
	// Variadic primitives (MAP over 1..k columns) set Variadic and the
	// last input semantic repeats.
	Inputs   []Semantic
	Variadic bool
	// Outputs are the produced semantics per output port.
	Outputs []Semantic
	// Breaker marks pipeline breakers (the daggers of Table I): their
	// results materialize in device memory and terminate the pipeline.
	Breaker bool
}

// Signatures holds the primitive definitions of Table I, indexed by Kind.
var Signatures = map[Kind]Signature{
	Scan:                {Kind: Scan, Outputs: []Semantic{Numeric}},
	Map:                 {Kind: Map, Inputs: []Semantic{Numeric}, Variadic: true, Outputs: []Semantic{Numeric}},
	AggBlock:            {Kind: AggBlock, Inputs: []Semantic{Numeric}, Variadic: true, Outputs: []Semantic{Numeric}, Breaker: true},
	HashAgg:             {Kind: HashAgg, Inputs: []Semantic{Numeric, Numeric}, Variadic: true, Outputs: []Semantic{HashTable}, Breaker: true},
	HashBuild:           {Kind: HashBuild, Inputs: []Semantic{Numeric}, Outputs: []Semantic{HashTable}, Breaker: true},
	HashProbe:           {Kind: HashProbe, Inputs: []Semantic{Numeric, HashTable}, Outputs: []Semantic{Position, Position}, Breaker: false},
	SortAgg:             {Kind: SortAgg, Inputs: []Semantic{Numeric, Numeric, PrefixSum}, Outputs: []Semantic{Numeric, Numeric}, Breaker: true},
	FilterBitmap:        {Kind: FilterBitmap, Inputs: []Semantic{Numeric}, Variadic: true, Outputs: []Semantic{Bitmap}},
	FilterPosition:      {Kind: FilterPosition, Inputs: []Semantic{Numeric}, Outputs: []Semantic{Position}},
	PrefixSumKind:       {Kind: PrefixSumKind, Inputs: []Semantic{Numeric}, Outputs: []Semantic{PrefixSum}, Breaker: true},
	Materialize:         {Kind: Materialize, Inputs: []Semantic{Numeric, Bitmap}, Outputs: []Semantic{Numeric}},
	MaterializePosition: {Kind: MaterializePosition, Inputs: []Semantic{Numeric, Position}, Outputs: []Semantic{Numeric}},
	HashExtract:         {Kind: HashExtract, Inputs: []Semantic{HashTable}, Outputs: []Semantic{Numeric, Numeric}},
	FusedAgg:            {Kind: FusedAgg, Inputs: []Semantic{Numeric}, Variadic: true, Outputs: []Semantic{Numeric}, Breaker: true},
	FusedMaterialize:    {Kind: FusedMaterialize, Inputs: []Semantic{Numeric}, Variadic: true, Outputs: []Semantic{Numeric}},
}

// SignatureOf returns the definition for a kind.
func SignatureOf(k Kind) (Signature, error) {
	sig, ok := Signatures[k]
	if !ok {
		return Signature{}, fmt.Errorf("primitive: no signature for %s", k)
	}
	return sig, nil
}

// Breaker reports whether the kind is a pipeline breaker.
func (k Kind) Breaker() bool { return Signatures[k].Breaker }

// AcceptsInput reports whether the primitive accepts sem at input port i.
func (s Signature) AcceptsInput(i int, sem Semantic) bool {
	if len(s.Inputs) == 0 {
		return false
	}
	if i >= len(s.Inputs) {
		if !s.Variadic {
			return false
		}
		i = len(s.Inputs) - 1
	}
	want := s.Inputs[i]
	// FILTER_BITMAP also accepts bitmaps (combining previous filter
	// results) and hash tables (set-membership semi-join filters).
	if s.Kind == FilterBitmap && (sem == Bitmap || sem == HashTable) {
		return true
	}
	// AGG_BLOCK's COUNT variant reduces a filter bitmap directly, saving
	// the materialization.
	if s.Kind == AggBlock && sem == Bitmap {
		return true
	}
	return want == sem
}
