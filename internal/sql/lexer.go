// Package sql implements a small SQL front-end for ADAMANT: a lexer,
// parser, and planner for the analytical subset the paper evaluates —
// single-table SELECTs with conjunctive predicates, BETWEEN, column
// comparisons, IN-subquery semi-joins (the relational form of Q3/Q4's
// joins), scalar aggregates, and single-column GROUP BY.
//
// The paper assumes query plans arrive "from any existing optimizer" as
// annotated primitive graphs; this package is that front: it translates
// SQL text into the primitive graph the runtime executes, choosing
// FILTER_BITMAP/MATERIALIZE/HASH_* primitives exactly as the hand-built
// TPC-H plans do.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString // quoted literal (dates)
	tokSymbol // punctuation and operators
	tokKeyword
)

// token is one lexeme with its position for error messages.
type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents lower-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"GROUP": true, "BY": true, "IN": true, "BETWEEN": true, "AS": true,
	"SUM": true, "COUNT": true, "MIN": true, "MAX": true, "DATE": true,
	"NOT": true, "ORDER": true, "DESC": true, "ASC": true, "LIMIT": true,
}

// lex splits a query into tokens. Errors carry byte offsets.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++

		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}

		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1])) && expectsValue(out)):
			start := i
			i++
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})

		case c == '\'':
			start := i
			i++
			for i < len(input) && input[i] != '\'' {
				i++
			}
			if i >= len(input) {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			out = append(out, token{kind: tokString, text: input[start+1 : i], pos: start})
			i++

		case strings.ContainsRune("()*,+.", rune(c)):
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++

		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				out = append(out, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}

		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				out = append(out, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				out = append(out, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}

		case c == '=':
			out = append(out, token{kind: tokSymbol, text: "=", pos: i})
			i++

		case c == '-':
			out = append(out, token{kind: tokSymbol, text: "-", pos: i})
			i++

		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(input)})
	return out, nil
}

// expectsValue reports whether a minus sign at the current position starts
// a negative literal (after an operator or opening context) rather than
// being a binary operator.
func expectsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokSymbol:
		return last.text != ")"
	case tokKeyword:
		return true
	default:
		return false
	}
}
