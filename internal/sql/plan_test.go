package sql

import (
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vec"
)

type rig struct {
	rt  *hub.Runtime
	cfg PlanConfig
	ds  *tpch.Dataset
}

func newRig(t *testing.T) *rig {
	t.Helper()
	ds, err := tpch.Generate(tpch.Config{SF: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rt := hub.NewRuntime()
	dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	return &rig{rt: rt, cfg: PlanConfig{Catalog: ds.Catalog(), Device: dev}, ds: ds}
}

// runSQL parses, plans and executes a query under two execution models,
// checking they agree, and returns the chunked run's result.
func (r *rig) runSQL(t *testing.T, query string) *exec.Result {
	t.Helper()
	ast, err := Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var results []*exec.Result
	for _, model := range []exec.Model{exec.Chunked, exec.FourPhasePipelined} {
		g, err := Plan(ast, r.cfg)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		res, err := exec.Run(r.rt, g, exec.Options{Model: model, ChunkElems: 8192})
		if err != nil {
			t.Fatalf("run (%v): %v", model, err)
		}
		results = append(results, res)
	}
	for _, col := range results[0].Columns {
		other, ok := results[1].Column(col.Name)
		if !ok || !vec.Equal(col.Data, other) {
			t.Fatalf("models disagree on column %q", col.Name)
		}
	}
	return results[0]
}

func TestSQLQ6(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
		  AND l_discount BETWEEN 5 AND 7
		  AND l_quantity < 24`)
	col, _ := res.Column("revenue")
	if got, want := col.I64()[0], tpch.RefQ6(r.ds); got != want {
		t.Errorf("revenue = %d, want %d", got, want)
	}
}

func TestSQLQ4(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT o_orderpriority, COUNT(*) AS order_count
		FROM orders
		WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
		  AND o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
		GROUP BY o_orderpriority`)
	want := tpch.RefQ4(r.ds)
	prio, _ := res.Column("o_orderpriority")
	cnt, _ := res.Column("order_count")
	if prio.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", prio.Len(), len(want))
	}
	for i := 0; i < prio.Len(); i++ {
		if want[prio.I64()[i]] != cnt.I64()[i] {
			t.Errorf("priority %d = %d, want %d", prio.I64()[i], cnt.I64()[i], want[prio.I64()[i]])
		}
	}
}

func TestSQLQ3NestedIn(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT l_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue
		FROM lineitem
		WHERE l_shipdate > DATE '1995-03-15'
		  AND l_orderkey IN (
			SELECT o_orderkey FROM orders
			WHERE o_orderdate < DATE '1995-03-15'
			  AND o_custkey IN (SELECT c_custkey FROM customer WHERE c_mktsegment = 1))
		GROUP BY l_orderkey`)
	want := tpch.RefQ3(r.ds)
	keys, _ := res.Column("l_orderkey")
	revs, _ := res.Column("revenue")
	if keys.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", keys.Len(), len(want))
	}
	for i := 0; i < keys.Len(); i++ {
		if want[keys.I64()[i]] != revs.I64()[i] {
			t.Fatalf("group %d revenue = %d, want %d", keys.I64()[i], revs.I64()[i], want[keys.I64()[i]])
		}
	}
	// Extraction sorts by key.
	for i := 1; i < keys.Len(); i++ {
		if keys.I64()[i-1] >= keys.I64()[i] {
			t.Fatal("group keys not sorted")
		}
	}
}

func TestSQLMultipleAggregatesAligned(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT l_rfls, SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice * (100 - l_discount)) AS sum_rev,
		       COUNT(*) AS cnt
		FROM lineitem
		WHERE l_shipdate <= 2436
		GROUP BY l_rfls`)
	want := tpch.RefQ1(r.ds)
	keys, _ := res.Column("l_rfls")
	qty, _ := res.Column("sum_qty")
	rev, _ := res.Column("sum_rev")
	cnt, _ := res.Column("cnt")
	if keys.Len() != len(want) {
		t.Fatalf("groups = %d, want %d", keys.Len(), len(want))
	}
	for i := 0; i < keys.Len(); i++ {
		w := want[keys.I64()[i]]
		if qty.I64()[i] != w.SumQty || rev.I64()[i] != w.SumRev || cnt.I64()[i] != w.Count {
			t.Errorf("group %d = (%d,%d,%d), want (%d,%d,%d)", keys.I64()[i],
				qty.I64()[i], rev.I64()[i], cnt.I64()[i], w.SumQty, w.SumRev, w.Count)
		}
	}
}

func TestSQLProjection(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `SELECT l_quantity FROM lineitem WHERE l_quantity >= 49`)
	col, _ := res.Column("l_quantity")
	qty := r.ds.Lineitem.MustColumn("l_quantity").I32()
	want := 0
	for _, v := range qty {
		if v >= 49 {
			want++
		}
	}
	if col.Len() != want {
		t.Errorf("projected %d rows, want %d", col.Len(), want)
	}
	for i := 0; i < col.Len(); i++ {
		if col.I32()[i] < 49 {
			t.Fatal("projection kept a filtered row")
		}
	}
}

func TestSQLScalarAggsAndCountStar(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `SELECT MIN(l_quantity) AS lo, MAX(l_quantity) AS hi, COUNT(*) AS n FROM lineitem`)
	lo, _ := res.Column("lo")
	hi, _ := res.Column("hi")
	n, _ := res.Column("n")
	if lo.I64()[0] != 1 || hi.I64()[0] != 50 {
		t.Errorf("min/max = %d/%d", lo.I64()[0], hi.I64()[0])
	}
	if n.I64()[0] != int64(r.ds.Lineitem.Rows()) {
		t.Errorf("count = %d, want %d", n.I64()[0], r.ds.Lineitem.Rows())
	}

	res = r.runSQL(t, `SELECT COUNT(*) AS n FROM lineitem WHERE l_discount = 10`)
	nf, _ := res.Column("n")
	disc := r.ds.Lineitem.MustColumn("l_discount").I32()
	var want int64
	for _, d := range disc {
		if d == 10 {
			want++
		}
	}
	if nf.I64()[0] != want {
		t.Errorf("filtered count = %d, want %d", nf.I64()[0], want)
	}
}

func TestSQLPlanErrors(t *testing.T) {
	r := newRig(t)
	bad := map[string]string{
		"unknown table":          `SELECT a FROM nope`,
		"unknown column":         `SELECT zzz FROM lineitem`,
		"bare col with agg":      `SELECT l_quantity, SUM(l_discount) FROM lineitem`,
		"non-group bare col":     `SELECT l_quantity, COUNT(*) FROM lineitem GROUP BY l_rfls`,
		"group without agg":      `SELECT l_rfls FROM lineitem GROUP BY l_rfls`,
		"count expr":             `SELECT COUNT(l_quantity) FROM lineitem GROUP BY l_rfls`,
		"unknown subquery table": `SELECT l_quantity FROM lineitem WHERE l_orderkey IN (SELECT x FROM nope)`,
	}
	for name, q := range bad {
		ast, err := Parse(q)
		if err != nil {
			continue // some are parse-time errors; fine either way
		}
		if _, err := Plan(ast, r.cfg); err == nil {
			t.Errorf("%s: accepted %q", name, q)
		} else if !strings.Contains(err.Error(), "sql:") {
			t.Errorf("%s: error %q lacks prefix", name, err)
		}
	}
	if _, err := Plan(&Query{}, PlanConfig{}); err == nil {
		t.Error("nil catalog accepted")
	}
}

func TestSQLInt64ColumnRejected(t *testing.T) {
	table := storage.NewTable("t", 2)
	table.MustAddColumn("a", vec.FromInt64([]int64{1, 2}))
	cat := storage.NewCatalog()
	cat.Add(table)
	ast := mustParse(t, `SELECT a FROM t WHERE a < 5`)
	if _, err := Plan(ast, PlanConfig{Catalog: cat}); err == nil {
		t.Error("int64 column accepted by int32 dialect")
	}
}

// TestSQLNotIn checks the anti-join form against a host-side reference.
func TestSQLNotIn(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT COUNT(*) AS n
		FROM orders
		WHERE o_orderkey NOT IN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)`)
	// Complement of Q4's late-order set over all orders.
	commit := r.ds.Lineitem.MustColumn("l_commitdate").I32()
	receipt := r.ds.Lineitem.MustColumn("l_receiptdate").I32()
	lkey := r.ds.Lineitem.MustColumn("l_orderkey").I32()
	late := map[int32]bool{}
	for i := range commit {
		if commit[i] < receipt[i] {
			late[lkey[i]] = true
		}
	}
	var want int64
	for _, ok := range r.ds.Orders.MustColumn("o_orderkey").I32() {
		if !late[ok] {
			want++
		}
	}
	col, _ := res.Column("n")
	if col.I64()[0] != want {
		t.Errorf("n = %d, want %d", col.I64()[0], want)
	}
}

// TestSQLOrGroups checks parenthesized OR groups against a host loop.
func TestSQLOrGroups(t *testing.T) {
	r := newRig(t)
	res := r.runSQL(t, `
		SELECT COUNT(*) AS n FROM lineitem
		WHERE (l_quantity < 3 OR l_quantity > 48 OR l_discount = 10)
		  AND l_shipdate > 100`)
	qty := r.ds.Lineitem.MustColumn("l_quantity").I32()
	disc := r.ds.Lineitem.MustColumn("l_discount").I32()
	ship := r.ds.Lineitem.MustColumn("l_shipdate").I32()
	var want int64
	for i := range qty {
		if (qty[i] < 3 || qty[i] > 48 || disc[i] == 10) && ship[i] > 100 {
			want++
		}
	}
	col, _ := res.Column("n")
	if col.I64()[0] != want {
		t.Errorf("n = %d, want %d", col.I64()[0], want)
	}
}

// TestSQLNewSyntaxErrors covers the new constructs' error paths.
func TestSQLNewSyntaxErrors(t *testing.T) {
	bad := []string{
		`SELECT a FROM t WHERE a NOT < 3`,
		`SELECT a FROM t WHERE NOT a IN (SELECT b FROM u)`,
		`SELECT a FROM t WHERE (a < 3)`,
		`SELECT a FROM t WHERE (a < 3 OR b IN (SELECT c FROM u))`,
		`SELECT a FROM t WHERE (a < 3 OR (b < 4 OR c < 5))`,
	}
	r := newRig(t)
	for _, q := range bad {
		ast, err := Parse(q)
		if err != nil {
			continue
		}
		if _, err := Plan(ast, r.cfg); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

// TestSQLOrderByLimit covers host-side ordering and truncation.
func TestSQLOrderByLimit(t *testing.T) {
	r := newRig(t)
	ast := mustParse(t, `
		SELECT l_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue
		FROM lineitem
		WHERE l_shipdate > DATE '1995-03-15'
		GROUP BY l_orderkey
		ORDER BY revenue DESC
		LIMIT 10`)
	g, err := Plan(ast, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if err := PostProcess(res, ast); err != nil {
		t.Fatal(err)
	}
	keys, _ := res.Column("l_orderkey")
	revs, _ := res.Column("revenue")
	if revs.Len() != 10 || keys.Len() != 10 {
		t.Fatalf("rows = %d, want 10", revs.Len())
	}
	for i := 1; i < revs.Len(); i++ {
		if revs.I64()[i-1] < revs.I64()[i] {
			t.Fatal("revenues not descending")
		}
	}
	// The top row matches a host-side scan for the maximum.
	ship := r.ds.Lineitem.MustColumn("l_shipdate").I32()
	lkey := r.ds.Lineitem.MustColumn("l_orderkey").I32()
	price := r.ds.Lineitem.MustColumn("l_extendedprice").I32()
	disc := r.ds.Lineitem.MustColumn("l_discount").I32()
	rev := map[int64]int64{}
	for i := range ship {
		if ship[i] > 1169 { // 1995-03-15
			rev[int64(lkey[i])] += int64(price[i]) * (100 - int64(disc[i]))
		}
	}
	var best int64
	for _, v := range rev {
		if v > best {
			best = v
		}
	}
	if revs.I64()[0] != best {
		t.Errorf("top revenue = %d, want %d", revs.I64()[0], best)
	}
	// Keys stay aligned with their revenues.
	if rev[keys.I64()[0]] != revs.I64()[0] {
		t.Error("ORDER BY broke column alignment")
	}
}

// TestPostProcessErrors covers the ordering error paths.
func TestPostProcessErrors(t *testing.T) {
	r := newRig(t)
	ast := mustParse(t, `SELECT COUNT(*) AS n FROM lineitem ORDER BY missing`)
	g, err := Plan(ast, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.rt, g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := PostProcess(res, ast); err == nil {
		t.Error("ordering by a missing column accepted")
	}
	// ORDER BY ASC (explicit) and plain LIMIT paths.
	ast2 := mustParse(t, `SELECT COUNT(*) AS n FROM lineitem ORDER BY n ASC LIMIT 5`)
	g2, _ := Plan(ast2, r.cfg)
	res2, err := exec.Run(r.rt, g2, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := PostProcess(res2, ast2); err != nil {
		t.Errorf("asc+limit: %v", err)
	}
}

// TestSQLOrderProjectionInt32 orders a projection by its own int32 column.
func TestSQLOrderProjectionInt32(t *testing.T) {
	r := newRig(t)
	ast := mustParse(t, `SELECT l_quantity FROM lineitem WHERE l_quantity >= 48 ORDER BY l_quantity LIMIT 7`)
	g, err := Plan(ast, r.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.rt, g, exec.Options{Model: exec.Chunked, ChunkElems: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if err := PostProcess(res, ast); err != nil {
		t.Fatal(err)
	}
	col, _ := res.Column("l_quantity")
	if col.Len() != 7 {
		t.Fatalf("rows = %d", col.Len())
	}
	for i := 0; i < col.Len(); i++ {
		if col.I32()[i] != 48 {
			t.Errorf("row %d = %d, want 48 (the minimum qualifying value)", i, col.I32()[i])
		}
	}
}
