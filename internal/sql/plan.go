package sql

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

// PlanConfig parameterizes SQL-to-primitive-graph lowering.
type PlanConfig struct {
	// Catalog resolves table and column names.
	Catalog *storage.Catalog
	// Device annotates every node (single-device plans; multi-device
	// placement goes through the plan-builder API instead).
	Device device.ID
	// GroupsHint estimates the distinct group count for GROUP BY sizing.
	// Zero means a quarter of the table's rows.
	GroupsHint int
}

// Plan lowers a parsed query onto ADAMANT's primitives: conjunctive
// filters become FILTER_BITMAP chains, IN subqueries become
// HASH_BUILD(set) + semi-join filters, SELECT expressions become
// MATERIALIZE + MAP chains, and aggregates become AGG_BLOCK or
// HASH_AGG/HASH_EXTRACT pipelines.
func Plan(q *Query, cfg PlanConfig) (*graph.Graph, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("sql: PlanConfig.Catalog is required")
	}
	g := graph.New()
	l := &lowerer{g: g, cfg: cfg}
	if err := l.lowerQuery(q); err != nil {
		return nil, err
	}
	return g, nil
}

type lowerer struct {
	g   *graph.Graph
	cfg PlanConfig
}

// block is the lowering state of one query block: its table, the scan
// ports created so far (one per referenced column), and the combined
// filter bitmap (invalid port when the block has no WHERE clause).
type block struct {
	table  *storage.Table
	scans  map[string]graph.PortRef
	bitmap graph.PortRef
	hasBM  bool
}

func (l *lowerer) resolveTable(name string) (*storage.Table, error) {
	t, err := l.cfg.Catalog.Table(name)
	if err != nil {
		return nil, fmt.Errorf("sql: %w", err)
	}
	return t, nil
}

// scan returns (creating once) the scan port for a column of the block's
// table, validating its type.
func (l *lowerer) scan(b *block, col string) (graph.PortRef, error) {
	if ref, ok := b.scans[col]; ok {
		return ref, nil
	}
	data, err := b.table.Column(col)
	if err != nil {
		return graph.PortRef{}, fmt.Errorf("sql: %w", err)
	}
	if data.Type() != vec.Int32 {
		return graph.PortRef{}, fmt.Errorf("sql: column %s.%s has type %s; the dialect supports int32 columns", b.table.Name, col, data.Type())
	}
	ref := l.g.AddScan(b.table.Name+"."+col, data, l.cfg.Device)
	b.scans[col] = ref
	return ref, nil
}

func cmpKernel(op CmpOp) kernels.CmpOp {
	return [...]kernels.CmpOp{kernels.CmpLt, kernels.CmpLe, kernels.CmpGt, kernels.CmpGe, kernels.CmpEq, kernels.CmpNe}[op]
}

// lowerBlock lowers a block's FROM/WHERE into scans plus a combined filter
// bitmap.
func (l *lowerer) lowerBlock(q *Query) (*block, error) {
	table, err := l.resolveTable(q.Table)
	if err != nil {
		return nil, err
	}
	b := &block{table: table, scans: make(map[string]graph.PortRef)}

	// Lower IN subqueries first: their build pipelines must precede the
	// pipelines that consume the key sets, and pipeline execution order
	// follows node creation order.
	sets := make(map[int]graph.PortRef)
	for i, cond := range q.Where {
		if cond.Kind != CondIn {
			continue
		}
		set, err := l.lowerKeySet(cond.Sub)
		if err != nil {
			return nil, err
		}
		sets[i] = set
	}

	for i, cond := range q.Where {
		bm, err := l.lowerCond(b, cond, sets[i])
		if err != nil {
			return nil, err
		}
		if b.hasBM {
			n := l.g.AddTask(task.NewBitmapAnd(), l.cfg.Device, b.bitmap, bm)
			b.bitmap = l.g.Out(n, 0)
		} else {
			b.bitmap = bm
			b.hasBM = true
		}
	}
	return b, nil
}

// lowerCond lowers one condition to a bitmap port. For CondIn, set is the
// pre-lowered key-set port.
func (l *lowerer) lowerCond(b *block, cond Cond, set graph.PortRef) (graph.PortRef, error) {
	switch cond.Kind {
	case CondCmp:
		col, err := l.scan(b, cond.Col)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewFilterBitmap(cmpKernel(cond.Op), cond.Value, cond.Value, cond.String()), l.cfg.Device, col)
		return l.g.Out(n, 0), nil

	case CondBetween:
		col, err := l.scan(b, cond.Col)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewFilterBitmap(kernels.CmpBetween, cond.Lo, cond.Hi, cond.String()), l.cfg.Device, col)
		return l.g.Out(n, 0), nil

	case CondColCmp:
		a, err := l.scan(b, cond.Col)
		if err != nil {
			return graph.PortRef{}, err
		}
		c2, err := l.scan(b, cond.Col2)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewFilterColCmp(cmpKernel(cond.Op), cond.String()), l.cfg.Device, a, c2)
		return l.g.Out(n, 0), nil

	case CondIn:
		col, err := l.scan(b, cond.Col)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewSemiJoinFilter(cond.String()), l.cfg.Device, col, set)
		bm := l.g.Out(n, 0)
		if cond.Negated {
			inv := l.g.AddTask(task.NewBitmapNot(), l.cfg.Device, bm)
			bm = l.g.Out(inv, 0)
		}
		return bm, nil

	case CondOr:
		var combined graph.PortRef
		for i, branch := range cond.Or {
			if branch.Kind == CondIn || branch.Kind == CondOr {
				return graph.PortRef{}, fmt.Errorf("sql: OR branches must be simple comparisons")
			}
			bm, err := l.lowerCond(b, branch, graph.PortRef{})
			if err != nil {
				return graph.PortRef{}, err
			}
			if i == 0 {
				combined = bm
				continue
			}
			n := l.g.AddTask(task.NewBitmapOr(), l.cfg.Device, combined, bm)
			combined = l.g.Out(n, 0)
		}
		return combined, nil

	default:
		return graph.PortRef{}, fmt.Errorf("sql: unsupported condition %v", cond)
	}
}

// lowerKeySet lowers an IN subquery into a HASH_BUILD(set) pipeline and
// returns the hash-table port.
func (l *lowerer) lowerKeySet(sub *Query) (graph.PortRef, error) {
	b, err := l.lowerBlock(sub)
	if err != nil {
		return graph.PortRef{}, err
	}
	keyCol := sub.Items[0].Expr.Col
	keys, err := l.scan(b, keyCol)
	if err != nil {
		return graph.PortRef{}, err
	}
	if b.hasBM {
		m, err := task.NewMaterialize(vec.Int32, keyCol)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(m, l.cfg.Device, keys, b.bitmap)
		keys = l.g.Out(n, 0)
	}
	build := l.g.AddTask(task.NewHashBuildSet(b.table.Rows(), "build("+keyCol+" set)"), l.cfg.Device, keys)
	return l.g.Out(build, 0), nil
}

// value materializes a column through the block's bitmap (when present).
func (l *lowerer) value(b *block, col string) (graph.PortRef, error) {
	ref, err := l.scan(b, col)
	if err != nil {
		return graph.PortRef{}, err
	}
	if !b.hasBM {
		return ref, nil
	}
	m, err := task.NewMaterialize(vec.Int32, col)
	if err != nil {
		return graph.PortRef{}, err
	}
	n := l.g.AddTask(m, l.cfg.Device, ref, b.bitmap)
	return l.g.Out(n, 0), nil
}

// exprInt64 lowers a value expression to an int64 column port.
func (l *lowerer) exprInt64(b *block, e *Expr) (graph.PortRef, error) {
	switch e.Kind {
	case ExprColumn:
		v, err := l.value(b, e.Col)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewMapCast(e.Col), l.cfg.Device, v)
		return l.g.Out(n, 0), nil
	case ExprMul:
		a, err := l.value(b, e.A)
		if err != nil {
			return graph.PortRef{}, err
		}
		c, err := l.value(b, e.B)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewMapMul(e.String()), l.cfg.Device, a, c)
		return l.g.Out(n, 0), nil
	case ExprMulComplement:
		a, err := l.value(b, e.A)
		if err != nil {
			return graph.PortRef{}, err
		}
		c, err := l.value(b, e.B)
		if err != nil {
			return graph.PortRef{}, err
		}
		n := l.g.AddTask(task.NewMapMulComplement(e.K, e.String()), l.cfg.Device, a, c)
		return l.g.Out(n, 0), nil
	default:
		return graph.PortRef{}, fmt.Errorf("sql: unsupported expression %s", e)
	}
}

func aggKernelOp(a AggFunc) (kernels.AggOp, error) {
	switch a {
	case AggSum:
		return kernels.AggSum, nil
	case AggMin:
		return kernels.AggMin, nil
	case AggMax:
		return kernels.AggMax, nil
	case AggCount:
		return kernels.AggCount, nil
	default:
		return 0, fmt.Errorf("sql: unsupported aggregate")
	}
}

func (l *lowerer) lowerQuery(q *Query) error {
	b, err := l.lowerBlock(q)
	if err != nil {
		return err
	}

	hasAgg := false
	for _, item := range q.Items {
		if item.Agg != AggNone {
			hasAgg = true
		}
	}

	switch {
	case q.GroupBy != "":
		return l.lowerGrouped(q, b)
	case hasAgg:
		return l.lowerScalarAggs(q, b)
	default:
		return l.lowerProjection(q, b)
	}
}

// lowerProjection returns materialized columns (or expressions) directly.
func (l *lowerer) lowerProjection(q *Query, b *block) error {
	for _, item := range q.Items {
		if item.Expr.Kind == ExprColumn {
			v, err := l.value(b, item.Expr.Col)
			if err != nil {
				return err
			}
			l.g.MarkResult(item.Alias, v)
			continue
		}
		v, err := l.exprInt64(b, item.Expr)
		if err != nil {
			return err
		}
		l.g.MarkResult(item.Alias, v)
	}
	return nil
}

// lowerScalarAggs lowers ungrouped aggregates to AGG_BLOCK reductions.
func (l *lowerer) lowerScalarAggs(q *Query, b *block) error {
	for _, item := range q.Items {
		if item.Agg == AggNone {
			return fmt.Errorf("sql: %q mixes bare columns with aggregates without GROUP BY", item.Alias)
		}
		if item.Agg == AggCount && item.Expr == nil {
			if err := l.lowerCountStar(q, b, item.Alias); err != nil {
				return err
			}
			continue
		}
		op, err := aggKernelOp(item.Agg)
		if err != nil {
			return err
		}
		v, err := l.exprInt64(b, item.Expr)
		if err != nil {
			return err
		}
		aggT, err := task.NewAggBlock(op, vec.Int64, item.Alias)
		if err != nil {
			return err
		}
		n := l.g.AddTask(aggT, l.cfg.Device, v)
		l.g.MarkResult(item.Alias, l.g.Out(n, 0))
	}
	return nil
}

// lowerCountStar counts qualifying rows: popcount of the filter bitmap, or
// a COUNT reduction over any column when the query has no WHERE clause.
func (l *lowerer) lowerCountStar(q *Query, b *block, alias string) error {
	if b.hasBM {
		n := l.g.AddTask(task.NewAggCountBits(alias), l.cfg.Device, b.bitmap)
		l.g.MarkResult(alias, l.g.Out(n, 0))
		return nil
	}
	cols := b.table.ColumnNames()
	if len(cols) == 0 {
		return fmt.Errorf("sql: COUNT(*) on empty table %s", q.Table)
	}
	ref, err := l.scan(b, cols[0])
	if err != nil {
		return err
	}
	aggT, err := task.NewAggBlock(kernels.AggCount, vec.Int32, alias)
	if err != nil {
		return err
	}
	n := l.g.AddTask(aggT, l.cfg.Device, ref)
	l.g.MarkResult(alias, l.g.Out(n, 0))
	return nil
}

// lowerGrouped lowers GROUP BY queries to HASH_AGG pipelines, one shared
// group-key column feeding one hash table per aggregate, each extracted to
// dense columns.
func (l *lowerer) lowerGrouped(q *Query, b *block) error {
	groupsHint := l.cfg.GroupsHint
	if groupsHint <= 0 {
		groupsHint = b.table.Rows()/4 + 1
	}
	keys, err := l.value(b, q.GroupBy)
	if err != nil {
		return err
	}

	var keyResult string
	type pending struct {
		alias string
		table graph.NodeID
	}
	var aggs []pending

	for _, item := range q.Items {
		if item.Agg == AggNone {
			if item.Expr.Kind != ExprColumn || item.Expr.Col != q.GroupBy {
				return fmt.Errorf("sql: %q is not the GROUP BY column nor an aggregate", item.Alias)
			}
			keyResult = item.Alias
			continue
		}
		var tbl graph.NodeID
		switch {
		case item.Agg == AggCount && item.Expr == nil:
			tbl = l.g.AddTask(task.NewHashAggCount(groupsHint, item.Alias), l.cfg.Device, keys)
		default:
			op, err := aggKernelOp(item.Agg)
			if err != nil {
				return err
			}
			if op == kernels.AggCount {
				return fmt.Errorf("sql: COUNT over an expression is not supported; use COUNT(*)")
			}
			v, err := l.exprInt64(b, item.Expr)
			if err != nil {
				return err
			}
			tbl = l.g.AddTask(task.NewHashAgg(op, groupsHint, item.Alias), l.cfg.Device, keys, v)
		}
		aggs = append(aggs, pending{alias: item.Alias, table: tbl})
	}
	if len(aggs) == 0 {
		return fmt.Errorf("sql: GROUP BY without aggregates is not supported")
	}

	for i, a := range aggs {
		ext := l.g.AddTask(task.NewHashExtract(groupsHint, "extract "+a.alias), l.cfg.Device, l.g.Out(a.table, 0))
		if i == 0 && keyResult != "" {
			l.g.MarkResult(keyResult, l.g.Out(ext, 0))
		}
		l.g.MarkResult(a.alias, l.g.Out(ext, 1))
	}
	return nil
}
