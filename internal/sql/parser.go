package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns SQL text into an AST, validating the dialect's structure.
// Name resolution against a catalog happens in the planner.
func Parse(query string) (*Query, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input starting at %s", p.peek())
	}
	return q, nil
}

// maxNesting bounds recursive descent (parenthesized OR groups and IN
// subqueries can nest), so adversarial input fails with an error instead of
// exhausting the goroutine stack.
const maxNesting = 100

type parser struct {
	toks  []token
	i     int
	depth int
}

// enter guards one level of recursive descent.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNesting {
		return p.errorf("query nested deeper than %d levels", maxNesting)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text, when given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = [...]string{"end of query", "identifier", "number", "string", "symbol", "keyword"}[kind]
		}
		return token{}, p.errorf("expected %s, got %s", want, p.peek())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	q.Table = t.text

	if p.accept(tokKeyword, "WHERE") {
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}

	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		q.GroupBy = col
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		q.OrderBy = col
		if p.accept(tokKeyword, "DESC") {
			q.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}

	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, p.errorf("negative LIMIT")
		}
		q.Limit = int(n)
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	switch {
	case p.accept(tokKeyword, "SUM"):
		item.Agg = AggSum
	case p.accept(tokKeyword, "MIN"):
		item.Agg = AggMin
	case p.accept(tokKeyword, "MAX"):
		item.Agg = AggMax
	case p.accept(tokKeyword, "COUNT"):
		item.Agg = AggCount
	}

	if item.Agg != AggNone {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return item, err
		}
		if item.Agg == AggCount && p.accept(tokSymbol, "*") {
			// COUNT(*): no expression.
		} else {
			expr, err := p.parseExpr()
			if err != nil {
				return item, err
			}
			item.Expr = expr
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return item, err
		}
	} else {
		expr, err := p.parseExpr()
		if err != nil {
			return item, err
		}
		item.Expr = expr
	}

	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Alias = a.text
	} else {
		item.Alias = defaultAlias(item)
	}
	return item, nil
}

func defaultAlias(item SelectItem) string {
	if item.Agg == AggNone {
		if item.Expr.Kind == ExprColumn {
			return item.Expr.Col
		}
		return "expr"
	}
	if item.Expr == nil {
		return "count"
	}
	name := item.Expr.Col
	if item.Expr.Kind != ExprColumn {
		name = item.Expr.A
	}
	return strings.ToLower(item.Agg.String()) + "_" + name
}

// parseExpr parses: col | col * col | col * (k - col).
func (p *parser) parseExpr() (*Expr, error) {
	a, err := p.parseColumn()
	if err != nil {
		return nil, err
	}
	if !p.accept(tokSymbol, "*") {
		return &Expr{Kind: ExprColumn, Col: a}, nil
	}
	if p.accept(tokSymbol, "(") {
		k, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "-"); err != nil {
			return nil, err
		}
		b, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprMulComplement, A: a, B: b, K: k}, nil
	}
	b, err := p.parseColumn()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ExprMul, A: a, B: b}, nil
}

// parseColumn accepts bare or table-qualified column names, returning the
// bare name (the dialect is single-table per query block).
func (p *parser) parseColumn() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	if p.accept(tokSymbol, ".") {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		return c.text, nil
	}
	return t.text, nil
}

func (p *parser) parseCond() (Cond, error) {
	if err := p.enter(); err != nil {
		return Cond{}, err
	}
	defer p.leave()
	// Parenthesized OR group: ( cond OR cond [OR cond...] ).
	if p.at(tokSymbol, "(") {
		save := p.i
		p.next()
		first, err := p.parseCond()
		if err != nil {
			return Cond{}, err
		}
		if !p.at(tokKeyword, "OR") {
			// Not an OR group (e.g. a parenthesized future extension):
			// rewind and fail with a clear message.
			p.i = save
			return Cond{}, p.errorf("parenthesized conditions must combine with OR")
		}
		branches := []Cond{first}
		for p.accept(tokKeyword, "OR") {
			next, err := p.parseCond()
			if err != nil {
				return Cond{}, err
			}
			branches = append(branches, next)
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondOr, Or: branches}, nil
	}

	col, err := p.parseColumn()
	if err != nil {
		return Cond{}, err
	}

	negated := false
	if p.accept(tokKeyword, "NOT") {
		negated = true
		if !p.at(tokKeyword, "IN") {
			return Cond{}, p.errorf("expected IN after NOT")
		}
	}

	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return Cond{}, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondBetween, Col: col, Lo: lo, Hi: hi}, nil
	}

	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return Cond{}, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return Cond{}, err
		}
		if len(sub.Items) != 1 || sub.Items[0].Agg != AggNone || sub.Items[0].Expr.Kind != ExprColumn {
			return Cond{}, p.errorf("IN subquery must select a single bare column")
		}
		if sub.GroupBy != "" {
			return Cond{}, p.errorf("IN subquery cannot use GROUP BY")
		}
		return Cond{Kind: CondIn, Col: col, Sub: sub, Negated: negated}, nil
	}
	if negated {
		return Cond{}, p.errorf("NOT applies only to IN")
	}

	op, err := p.parseCmpOp()
	if err != nil {
		return Cond{}, err
	}
	if p.at(tokIdent, "") {
		col2, err := p.parseColumn()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondColCmp, Col: col, Op: op, Col2: col2}, nil
	}
	v, err := p.parseLiteral()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Kind: CondCmp, Col: col, Op: op, Value: v}, nil
}

func (p *parser) parseCmpOp() (CmpOp, error) {
	for op, text := range map[CmpOp]string{
		OpLe: "<=", OpGe: ">=", OpNe: "<>", OpLt: "<", OpGt: ">", OpEq: "=",
	} {
		if p.at(tokSymbol, text) {
			p.next()
			return op, nil
		}
	}
	return 0, p.errorf("expected comparison operator, got %s", p.peek())
}

// parseLiteral accepts an integer or a DATE 'yyyy-mm-dd' literal (encoded
// as days since 1992-01-01, the storage layer's date epoch).
func (p *parser) parseLiteral() (int64, error) {
	if p.accept(tokKeyword, "DATE") {
		s, err := p.expect(tokString, "")
		if err != nil {
			return 0, err
		}
		d, err := parseDate(s.text)
		if err != nil {
			return 0, p.errorf("%v", err)
		}
		return d, nil
	}
	return p.parseInt()
}

func (p *parser) parseInt() (int64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", t.text)
	}
	return v, nil
}

// parseDate converts 'yyyy-mm-dd' to epoch days (1992-01-01 = 0), matching
// the TPC-H generator's date encoding.
func parseDate(s string) (int64, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad date literal %q (want yyyy-mm-dd)", s)
	}
	var ymd [3]int
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil {
			return 0, fmt.Errorf("bad date literal %q", s)
		}
		ymd[i] = v
	}
	return civilToDays(ymd[0], ymd[1], ymd[2]) - civilToDays(1992, 1, 1), nil
}

// civilToDays is Howard Hinnant's days-from-civil algorithm (days since
// 1970-01-01).
func civilToDays(y, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := y / 400
	if y < 0 {
		era = (y - 399) / 400
	}
	yoe := y - era*400
	mAdj := m + 9
	if m > 2 {
		mAdj = m - 3
	}
	doy := (153*mAdj+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int64(era)*146097 + int64(doe) - 719468
}
