package sql

import "fmt"

// The AST mirrors the supported dialect:
//
//	SELECT item [, item...]
//	FROM table
//	[WHERE cond AND cond ...]
//	[GROUP BY column]
//
// with items being columns, arithmetic expressions, or aggregates, and
// conditions being column-vs-literal comparisons, BETWEEN, column-vs-column
// comparisons, and (possibly nested) IN-subquery semi-joins.

// Query is one SELECT statement.
type Query struct {
	Items   []SelectItem
	Table   string
	Where   []Cond // conjunctive
	GroupBy string // empty when ungrouped
	// OrderBy names a result column for host-side ordering of the
	// retrieved rows; Desc flips it; Limit truncates (0 = all rows).
	OrderBy string
	Desc    bool
	Limit   int
}

// AggFunc names an aggregate.
type AggFunc int

// Aggregates.
const (
	AggNone AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggCount
)

func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggCount:
		return "COUNT"
	default:
		return "NONE"
	}
}

// SelectItem is one output: a bare column or an aggregate over an
// expression (COUNT(*) has a nil expression).
type SelectItem struct {
	Agg   AggFunc
	Expr  *Expr  // nil for COUNT(*)
	Alias string // output column name
}

// ExprKind classifies the supported value expressions.
type ExprKind int

// Expression kinds.
const (
	ExprColumn        ExprKind = iota // column
	ExprMul                           // a * b
	ExprMulComplement                 // a * (k - b), the fixed-point (1-discount) form
)

// Expr is a value expression over a single table's columns.
type Expr struct {
	Kind ExprKind
	Col  string // ExprColumn
	A, B string // ExprMul / ExprMulComplement operands
	K    int64  // ExprMulComplement constant
}

func (e *Expr) String() string {
	switch e.Kind {
	case ExprColumn:
		return e.Col
	case ExprMul:
		return fmt.Sprintf("%s * %s", e.A, e.B)
	case ExprMulComplement:
		return fmt.Sprintf("%s * (%d - %s)", e.A, e.K, e.B)
	default:
		return "?"
	}
}

// Columns lists the columns the expression reads.
func (e *Expr) Columns() []string {
	switch e.Kind {
	case ExprColumn:
		return []string{e.Col}
	default:
		return []string{e.A, e.B}
	}
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpLt CmpOp = iota
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
)

func (op CmpOp) String() string {
	return [...]string{"<", "<=", ">", ">=", "=", "<>"}[op]
}

// CondKind classifies WHERE conditions.
type CondKind int

// Condition kinds.
const (
	CondCmp     CondKind = iota // col op literal
	CondBetween                 // col BETWEEN lo AND hi
	CondColCmp                  // col op col
	CondIn                      // col [NOT] IN (SELECT key FROM ...)
	CondOr                      // ( cond OR cond [OR cond...] )
)

// Cond is one conjunct of the WHERE clause.
type Cond struct {
	Kind    CondKind
	Col     string
	Op      CmpOp
	Value   int64  // CondCmp
	Lo, Hi  int64  // CondBetween
	Col2    string // CondColCmp right-hand column
	Sub     *Query // CondIn subquery (single bare column selected)
	Negated bool   // CondIn: NOT IN
	Or      []Cond // CondOr branches
}

func (c Cond) String() string {
	switch c.Kind {
	case CondCmp:
		return fmt.Sprintf("%s %s %d", c.Col, c.Op, c.Value)
	case CondBetween:
		return fmt.Sprintf("%s BETWEEN %d AND %d", c.Col, c.Lo, c.Hi)
	case CondColCmp:
		return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Col2)
	case CondIn:
		not := ""
		if c.Negated {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sIN (SELECT %s FROM %s ...)", c.Col, not, c.Sub.Items[0].Alias, c.Sub.Table)
	case CondOr:
		return fmt.Sprintf("(%d-way OR)", len(c.Or))
	default:
		return "?"
	}
}
