package sql

import (
	"fmt"
	"sort"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/vec"
)

// PostProcess applies the query's ORDER BY and LIMIT to a retrieved result,
// reordering all result columns in lockstep by the named column. Ordering
// happens on the host after retrieval — presentation work the executor
// does not offload (the paper's plans end at aggregation; top-k display is
// host-side).
func PostProcess(res *exec.Result, q *Query) error {
	if q.OrderBy == "" && q.Limit == 0 {
		return nil
	}

	rows := -1
	for _, col := range res.Columns {
		if rows < 0 {
			rows = col.Data.Len()
		}
		if col.Data.Len() != rows {
			return fmt.Errorf("sql: result columns disagree on row count; cannot order")
		}
	}
	if rows <= 0 {
		return nil
	}

	perm := make([]int, rows)
	for i := range perm {
		perm[i] = i
	}

	if q.OrderBy != "" {
		key, ok := res.Column(q.OrderBy)
		if !ok {
			return fmt.Errorf("sql: ORDER BY %s is not a result column", q.OrderBy)
		}
		less, err := lessFunc(key)
		if err != nil {
			return err
		}
		sort.SliceStable(perm, func(i, j int) bool {
			if q.Desc {
				return less(perm[j], perm[i])
			}
			return less(perm[i], perm[j])
		})
	}

	limit := rows
	if q.Limit > 0 && q.Limit < limit {
		limit = q.Limit
	}

	for ci, col := range res.Columns {
		out := vec.New(col.Data.Type(), limit)
		if err := permute(out, col.Data, perm[:limit]); err != nil {
			return err
		}
		res.Columns[ci].Data = out
	}
	return nil
}

func lessFunc(key vec.Vector) (func(i, j int) bool, error) {
	switch key.Type() {
	case vec.Int32:
		s := key.I32()
		return func(i, j int) bool { return s[i] < s[j] }, nil
	case vec.Int64:
		s := key.I64()
		return func(i, j int) bool { return s[i] < s[j] }, nil
	default:
		return nil, fmt.Errorf("sql: cannot order by %s column", key.Type())
	}
}

func permute(dst, src vec.Vector, perm []int) error {
	switch src.Type() {
	case vec.Int32:
		d, s := dst.I32(), src.I32()
		for i, p := range perm {
			d[i] = s[p]
		}
	case vec.Int64:
		d, s := dst.I64(), src.I64()
		for i, p := range perm {
			d[i] = s[p]
		}
	default:
		return fmt.Errorf("sql: cannot reorder %s result column", src.Type())
	}
	return nil
}
