package sql

import (
	"strings"
	"sync"
	"testing"

	"github.com/adamant-db/adamant/internal/storage"
	"github.com/adamant-db/adamant/internal/vec"
)

// fuzzCatalog is a tiny catalog whose table/column names overlap the seed
// corpus, so the planner path gets exercised whenever a fuzzed query happens
// to parse and resolve.
var fuzzCatalog = sync.OnceValue(func() *storage.Catalog {
	c := storage.NewCatalog()
	li := storage.NewTable("lineitem", 64)
	for _, col := range []string{
		"l_extendedprice", "l_discount", "l_quantity", "l_shipdate",
		"l_orderkey", "l_commitdate", "l_receiptdate",
	} {
		data := make([]int32, 64)
		for i := range data {
			data[i] = int32(i % 11)
		}
		li.MustAddColumn(col, vec.FromInt32(data))
	}
	c.Add(li)
	ord := storage.NewTable("orders", 16)
	for _, col := range []string{"o_orderkey", "o_orderdate", "o_orderpriority", "o_custkey"} {
		data := make([]int32, 16)
		for i := range data {
			data[i] = int32(i % 5)
		}
		ord.MustAddColumn(col, vec.FromInt32(data))
	}
	c.Add(ord)
	return c
})

// fuzzSeeds is the corpus: the TPC-H-style queries the dialect targets plus
// the known-tricky shapes (nested IN subqueries, parenthesized OR groups,
// negative literals, date literals, malformed input).
var fuzzSeeds = []string{
	`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
	 WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
	   AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24`,
	`SELECT o_orderpriority, COUNT(*) AS order_count FROM orders
	 WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
	   AND o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
	 GROUP BY o_orderpriority`,
	`SELECT l_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue FROM lineitem
	 WHERE l_orderkey IN (SELECT o_orderkey FROM orders WHERE o_custkey IN
	   (SELECT o_custkey FROM orders WHERE o_orderdate < 10))
	 GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10`,
	`SELECT MIN(l_quantity), MAX(l_quantity) FROM lineitem WHERE (l_discount = 1 OR l_quantity > 40)`,
	`SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)`,
	`SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_quantity <> -5`,
	`SELECT a FROM`,
	`SELECT a FROM t WHERE ((((a = 1 OR b = 2))))`,
	`SELECT 'unterminated`,
	"SELECT \x80\xff FROM t",
	strings.Repeat("SELECT a FROM t WHERE a IN (", 40) + "SELECT b FROM u" + strings.Repeat(")", 40),
}

// FuzzParse asserts the front-end's contract under arbitrary input: lex and
// parse either succeed or fail with an error — never a panic, never runaway
// recursion — and anything that parses survives planning against a catalog.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		if len(query) > 1<<16 {
			return // bound per-input work, not a parser limit
		}
		q, err := Parse(query)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "sql:") {
				t.Fatalf("error %q lacks the sql: prefix", err)
			}
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
		// Planning may reject the query (unknown names, unsupported
		// shapes) but must not panic either.
		_, _ = Plan(q, PlanConfig{Catalog: fuzzCatalog(), Device: 0})
	})
}

// FuzzLex asserts the lexer alone never panics and always terminates with
// an EOF token on inputs it accepts.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream not EOF-terminated: %v", toks)
		}
	})
}

// TestParseDepthLimit pins the recursion bound: nesting beyond maxNesting
// must fail with a depth error instead of exhausting the stack.
func TestParseDepthLimit(t *testing.T) {
	deep := strings.Repeat("SELECT a FROM t WHERE a IN (", maxNesting+8) +
		"SELECT b FROM u" + strings.Repeat(")", maxNesting+8)
	_, err := Parse(deep)
	if err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("deep IN nesting: %v", err)
	}
	// Parenthesized OR groups recurse through parseCond directly.
	parens := "SELECT a FROM t WHERE " + strings.Repeat("(", maxNesting+8) +
		"a = 1 OR b = 2" + strings.Repeat(")", maxNesting+8)
	_, err = Parse(parens)
	if err == nil || !strings.Contains(err.Error(), "nested deeper") {
		t.Fatalf("deep OR nesting: %v", err)
	}
	// Nesting at the limit still parses.
	const ok = 20
	shallow := strings.Repeat("SELECT a FROM t WHERE a IN (", ok) +
		"SELECT b FROM u" + strings.Repeat(")", ok)
	if _, err := Parse(shallow); err != nil {
		t.Fatalf("nesting depth %d should parse: %v", ok, err)
	}
}
