package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	ast, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return ast
}

func TestParseQ6Style(t *testing.T) {
	q := mustParse(t, `
		SELECT SUM(l_extendedprice * l_discount) AS revenue
		FROM lineitem
		WHERE l_shipdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31'
		  AND l_discount BETWEEN 5 AND 7
		  AND l_quantity < 24`)
	if q.Table != "lineitem" || len(q.Items) != 1 || len(q.Where) != 3 {
		t.Fatalf("shape: %+v", q)
	}
	item := q.Items[0]
	if item.Agg != AggSum || item.Alias != "revenue" || item.Expr.Kind != ExprMul {
		t.Errorf("item = %+v", item)
	}
	if q.Where[0].Kind != CondBetween || q.Where[0].Lo != 731 || q.Where[0].Hi != 1095 {
		t.Errorf("date range = %+v (1994-01-01 should be day 731)", q.Where[0])
	}
	if q.Where[2].Kind != CondCmp || q.Where[2].Op != OpLt || q.Where[2].Value != 24 {
		t.Errorf("quantity cond = %+v", q.Where[2])
	}
}

func TestParseQ4Style(t *testing.T) {
	q := mustParse(t, `
		SELECT o_orderpriority, COUNT(*) AS order_count
		FROM orders
		WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
		  AND o_orderkey IN (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)
		GROUP BY o_orderpriority`)
	if q.GroupBy != "o_orderpriority" {
		t.Errorf("group by = %q", q.GroupBy)
	}
	if q.Items[1].Agg != AggCount || q.Items[1].Expr != nil {
		t.Errorf("count item = %+v", q.Items[1])
	}
	in := q.Where[2]
	if in.Kind != CondIn || in.Sub.Table != "lineitem" {
		t.Fatalf("in cond = %+v", in)
	}
	if in.Sub.Where[0].Kind != CondColCmp || in.Sub.Where[0].Col2 != "l_receiptdate" {
		t.Errorf("sub cond = %+v", in.Sub.Where[0])
	}
}

func TestParseNestedIn(t *testing.T) {
	q := mustParse(t, `
		SELECT l_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue
		FROM lineitem
		WHERE l_shipdate > DATE '1995-03-15'
		  AND l_orderkey IN (
			SELECT o_orderkey FROM orders
			WHERE o_orderdate < DATE '1995-03-15'
			  AND o_custkey IN (SELECT c_custkey FROM customer WHERE c_mktsegment = 1))
		GROUP BY l_orderkey`)
	if q.Items[1].Expr.Kind != ExprMulComplement || q.Items[1].Expr.K != 100 {
		t.Errorf("revenue expr = %+v", q.Items[1].Expr)
	}
	inner := q.Where[1].Sub.Where[1]
	if inner.Kind != CondIn || inner.Sub.Table != "customer" {
		t.Errorf("nested in = %+v", inner)
	}
}

func TestParseQualifiedColumnsAndAliases(t *testing.T) {
	q := mustParse(t, `SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_quantity <> -5`)
	if q.Items[0].Expr.Col != "l_quantity" || q.Items[0].Alias != "l_quantity" {
		t.Errorf("qualified column = %+v", q.Items[0])
	}
	if q.Where[0].Op != OpNe || q.Where[0].Value != -5 {
		t.Errorf("cond = %+v", q.Where[0])
	}
}

func TestParseDefaultAliases(t *testing.T) {
	q := mustParse(t, `SELECT SUM(a), COUNT(*), MIN(b), a * c FROM t`)
	want := []string{"sum_a", "count", "min_b", "expr"}
	for i, w := range want {
		if q.Items[i].Alias != w {
			t.Errorf("item %d alias = %q, want %q", i, q.Items[i].Alias, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a <",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN (SELECT SUM(b) FROM u)",
		"SELECT a FROM t WHERE a IN (SELECT b, c FROM u)",
		"SELECT a FROM t WHERE a IN (SELECT b FROM u GROUP BY b)",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t trailing garbage",
		"SELECT a FROM t WHERE a = DATE 'not-a-date'",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE a ~ 3",
		"SELECT SUM(a FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		} else if !strings.HasPrefix(err.Error(), "sql:") {
			t.Errorf("%q: error %q lacks package prefix", q, err)
		}
	}
}

func TestDateLiteral(t *testing.T) {
	if d, err := parseDate("1992-01-01"); err != nil || d != 0 {
		t.Errorf("epoch = %d, %v", d, err)
	}
	if d, err := parseDate("1992-01-02"); err != nil || d != 1 {
		t.Errorf("epoch+1 = %d, %v", d, err)
	}
	if d, err := parseDate("1998-12-01"); err != nil || d != 2526 {
		t.Errorf("1998-12-01 = %d, %v", d, err)
	}
	for _, bad := range []string{"1992", "1992-1", "x-y-z", "1992-01-01-01"} {
		if _, err := parseDate(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestLexCoverage(t *testing.T) {
	toks, err := lex("a >= 10, b <= (c) <> 'x' - 3")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{">=", "<=", "<>", "x"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %q", want, joined)
		}
	}
	if _, err := lex("a @ b"); err == nil {
		t.Error("accepted invalid character")
	}
	if toks[len(toks)-1].String() != "end of query" {
		t.Error("EOF diagnostics")
	}
}
