// Package simhw models the co-processor hardware that ADAMANT's experiments
// run on.
//
// The paper evaluates on two physical setups (Table II: an i7-8700 with a
// GeForce RTX 2080 Ti, and a Xeon Gold 5220R with an Nvidia A100), accessed
// through three SDKs (CUDA, OpenCL, OpenMP). This package substitutes those
// machines with calibrated software models: a Spec describes the raw device
// (memory capacity, interconnect bandwidth curves, compute throughput), and
// an SDKProfile describes the software stack's efficiency on top of it
// (OpenCL's translation overheads, OpenMP's explicit thread scheduling, CUDA
// kernel launch latency). The primitive kernels combine both into virtual
// execution times, which is what lets the experiments reproduce the paper's
// relative results (Figures 3, 5, 9, 10, 11) deterministically on any host.
package simhw

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Class distinguishes broad device architectures.
type Class int

// Device classes.
const (
	ClassCPU Class = iota
	ClassGPU
)

// String returns "cpu" or "gpu".
func (c Class) String() string {
	if c == ClassGPU {
		return "gpu"
	}
	return "cpu"
}

// LinkCurve models the effective cost of moving bytes across an interconnect
// (PCIe for discrete GPUs, memory bus for host-resident devices) as a fixed
// per-transfer latency plus a bandwidth term. Effective bandwidth therefore
// ramps up with transfer size and saturates at PeakGBps, matching the shape
// of the paper's Figure 3.
type LinkCurve struct {
	PeakGBps float64         // asymptotic bandwidth in GB/s (1e9 bytes)
	Latency  vclock.Duration // fixed setup latency per transfer
}

// Cost returns the virtual time to move the given number of bytes.
func (l LinkCurve) Cost(bytes int64) vclock.Duration {
	if bytes <= 0 {
		return l.Latency
	}
	ns := float64(bytes) / l.PeakGBps // GB/s == bytes/ns
	return l.Latency + vclock.Duration(ns)
}

// EffectiveGBps reports the achieved bandwidth for a transfer of the given
// size, as plotted in Figure 3.
func (l LinkCurve) EffectiveGBps(bytes int64) float64 {
	c := l.Cost(bytes)
	if c <= 0 {
		return l.PeakGBps
	}
	return float64(bytes) / float64(c)
}

// Links groups the four transfer directions/modes a discrete device exposes.
type Links struct {
	H2DPageable LinkCurve
	H2DPinned   LinkCurve
	D2HPageable LinkCurve
	D2HPinned   LinkCurve
}

// Spec describes one simulated processor. The throughput fields are
// calibrated against published microbenchmarks for the corresponding parts,
// but only their ratios matter for reproducing the paper's findings.
type Spec struct {
	Name        string
	Class       Class
	MemoryBytes int64 // device memory capacity
	Cores       int   // parallel hardware lanes (CPU threads / GPU SM lanes)

	// StreamGBps is the attainable memory bandwidth for sequential,
	// coalesced kernels (map, filter, reduce).
	StreamGBps float64
	// RandomGBps is the attainable bandwidth for data-dependent
	// gather/scatter access (hash probes, materialization).
	RandomGBps float64
	// AtomicMops is the device-wide throughput of conflicting atomic
	// read-modify-write operations, in millions per second.
	AtomicMops float64
	// KernelLaunch is the fixed cost of dispatching one kernel.
	KernelLaunch vclock.Duration

	Links Links
}

// HostResident reports whether the device shares the host address space, in
// which case place_data/retrieve_data degenerate to no-copy registration.
func (s *Spec) HostResident() bool { return s.Class == ClassCPU }

// StreamCost returns the time for a kernel that touches the given number of
// bytes with sequential access.
func (s *Spec) StreamCost(bytes int64) vclock.Duration {
	if bytes <= 0 {
		return 0
	}
	return vclock.Duration(float64(bytes) / s.StreamGBps)
}

// RandomCost returns the time for a kernel performing data-dependent access
// over the given number of bytes.
func (s *Spec) RandomCost(bytes int64) vclock.Duration {
	if bytes <= 0 {
		return 0
	}
	return vclock.Duration(float64(bytes) / s.RandomGBps)
}

// AtomicCost returns the time for n device-wide conflicting atomic
// operations, scaled by a contention factor (1 = nominal contention).
func (s *Spec) AtomicCost(n int64, contention float64) vclock.Duration {
	if n <= 0 {
		return 0
	}
	if contention < 1 {
		contention = 1
	}
	ns := float64(n) / s.AtomicMops * 1e3 * contention // Mops = ops/µs → ns per op = 1e3/Mops
	return vclock.Duration(ns)
}

func (s *Spec) String() string {
	return fmt.Sprintf("%s (%s, %.1f GiB)", s.Name, s.Class, float64(s.MemoryBytes)/(1<<30))
}

// GiB is a convenience for capacity literals.
const GiB = int64(1) << 30

// Predefined device specs. GPU bandwidth and capacity figures follow the
// vendors' data sheets; PCIe curves reflect gen3 x16 (2080 Ti and older) and
// gen4 x16 (A100), with pageable transfers at roughly half the pinned rate,
// as the paper's Figure 3 reports.
var (
	RTX2080Ti = Spec{
		Name:         "GeForce RTX 2080 Ti",
		Class:        ClassGPU,
		MemoryBytes:  11 * GiB,
		Cores:        4352,
		StreamGBps:   550,
		RandomGBps:   95,
		AtomicMops:   800,
		KernelLaunch: 6 * vclock.Microsecond,
		Links: Links{
			H2DPageable: LinkCurve{PeakGBps: 6.2, Latency: 12 * vclock.Microsecond},
			H2DPinned:   LinkCurve{PeakGBps: 12.1, Latency: 9 * vclock.Microsecond},
			D2HPageable: LinkCurve{PeakGBps: 5.8, Latency: 12 * vclock.Microsecond},
			D2HPinned:   LinkCurve{PeakGBps: 12.8, Latency: 9 * vclock.Microsecond},
		},
	}

	A100 = Spec{
		Name:         "Nvidia A100",
		Class:        ClassGPU,
		MemoryBytes:  40 * GiB,
		Cores:        6912,
		StreamGBps:   1400,
		RandomGBps:   240,
		AtomicMops:   1800,
		KernelLaunch: 5 * vclock.Microsecond,
		Links: Links{
			H2DPageable: LinkCurve{PeakGBps: 9.6, Latency: 10 * vclock.Microsecond},
			H2DPinned:   LinkCurve{PeakGBps: 24.5, Latency: 7 * vclock.Microsecond},
			D2HPageable: LinkCurve{PeakGBps: 9.1, Latency: 10 * vclock.Microsecond},
			D2HPinned:   LinkCurve{PeakGBps: 25.9, Latency: 7 * vclock.Microsecond},
		},
	}

	GTX1050 = Spec{
		Name:         "GeForce GTX 1050",
		Class:        ClassGPU,
		MemoryBytes:  4 * GiB,
		Cores:        640,
		StreamGBps:   110,
		RandomGBps:   22,
		AtomicMops:   230,
		KernelLaunch: 8 * vclock.Microsecond,
		Links: Links{
			H2DPageable: LinkCurve{PeakGBps: 4.8, Latency: 14 * vclock.Microsecond},
			H2DPinned:   LinkCurve{PeakGBps: 10.9, Latency: 11 * vclock.Microsecond},
			D2HPageable: LinkCurve{PeakGBps: 4.5, Latency: 14 * vclock.Microsecond},
			D2HPinned:   LinkCurve{PeakGBps: 11.4, Latency: 11 * vclock.Microsecond},
		},
	}

	GTX1080 = Spec{
		Name:         "GeForce GTX 1080",
		Class:        ClassGPU,
		MemoryBytes:  8 * GiB,
		Cores:        2560,
		StreamGBps:   300,
		RandomGBps:   55,
		AtomicMops:   520,
		KernelLaunch: 7 * vclock.Microsecond,
		Links: Links{
			H2DPageable: LinkCurve{PeakGBps: 5.9, Latency: 13 * vclock.Microsecond},
			H2DPinned:   LinkCurve{PeakGBps: 11.8, Latency: 10 * vclock.Microsecond},
			D2HPageable: LinkCurve{PeakGBps: 5.5, Latency: 13 * vclock.Microsecond},
			D2HPinned:   LinkCurve{PeakGBps: 12.3, Latency: 10 * vclock.Microsecond},
		},
	}

	CoreI78700 = Spec{
		Name:         "Intel Core i7-8700",
		Class:        ClassCPU,
		MemoryBytes:  32 * GiB,
		Cores:        12,
		StreamGBps:   38,
		RandomGBps:   9,
		AtomicMops:   420,
		KernelLaunch: 900 * vclock.Nanosecond,
		Links: Links{
			// Host-resident: "transfers" are address-space registrations.
			H2DPageable: LinkCurve{PeakGBps: 38, Latency: 300 * vclock.Nanosecond},
			H2DPinned:   LinkCurve{PeakGBps: 38, Latency: 300 * vclock.Nanosecond},
			D2HPageable: LinkCurve{PeakGBps: 38, Latency: 300 * vclock.Nanosecond},
			D2HPinned:   LinkCurve{PeakGBps: 38, Latency: 300 * vclock.Nanosecond},
		},
	}

	XeonGold5220R = Spec{
		Name:         "Intel Xeon Gold 5220R",
		Class:        ClassCPU,
		MemoryBytes:  192 * GiB,
		Cores:        48,
		StreamGBps:   105,
		RandomGBps:   21,
		AtomicMops:   950,
		KernelLaunch: 1100 * vclock.Nanosecond,
		Links: Links{
			H2DPageable: LinkCurve{PeakGBps: 105, Latency: 350 * vclock.Nanosecond},
			H2DPinned:   LinkCurve{PeakGBps: 105, Latency: 350 * vclock.Nanosecond},
			D2HPageable: LinkCurve{PeakGBps: 105, Latency: 350 * vclock.Nanosecond},
			D2HPinned:   LinkCurve{PeakGBps: 105, Latency: 350 * vclock.Nanosecond},
		},
	}
)

// Setup pairs the host CPU and the discrete GPU of one evaluation machine,
// mirroring Table II of the paper.
type Setup struct {
	Name string
	CPU  Spec
	GPU  Spec
}

// The paper's two environments.
var (
	Setup1 = Setup{Name: "Setup 1", CPU: CoreI78700, GPU: RTX2080Ti}
	Setup2 = Setup{Name: "Setup 2", CPU: XeonGold5220R, GPU: A100}
)

// AllGPUs lists the GPU specs used in the capacity analysis of Figure 7.
func AllGPUs() []Spec {
	return []Spec{GTX1050, GTX1080, RTX2080Ti, A100}
}
