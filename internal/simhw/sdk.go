package simhw

import "github.com/adamant-db/adamant/internal/vclock"

// SDKProfile captures how a programming SDK behaves on top of a raw device.
// The paper shows that the SDK choice alone changes transfer bandwidth
// (Figure 3), per-kernel handling overhead (Figure 10), and the scaling of
// contended primitives (Figure 9); these knobs encode exactly those effects.
type SDKProfile struct {
	Name string

	// TransferEfficiency scales the device link bandwidth. OpenCL's
	// translation layer achieves a consistently lower rate than CUDA.
	TransferEfficiency float64
	// TransferLatency is added to every transfer on top of the link's own
	// setup latency.
	TransferLatency vclock.Duration

	// LaunchOverhead is added to the device's kernel dispatch cost.
	LaunchOverhead vclock.Duration
	// ArgMapCost is charged once per kernel argument. OpenCL requires the
	// host to map every buffer to the kernel explicitly (clSetKernelArg),
	// which the paper identifies as its dominant handling overhead.
	ArgMapCost vclock.Duration
	// CompileCost is the runtime kernel compilation cost charged by
	// prepare_kernel. Zero for SDKs without runtime compilation.
	CompileCost vclock.Duration

	// ComputeEfficiency scales the device's streaming/random throughput.
	// OpenMP's explicitly scheduled hardware threads leave bandwidth on
	// the table relative to OpenCL's internal scheduling on CPUs.
	ComputeEfficiency float64
	// AtomicEfficiency scales atomic throughput.
	AtomicEfficiency float64

	// GroupScalePenalty is the fractional slowdown of hash aggregation
	// per doubling of the group count (static thread scheduling makes
	// OpenCL degrade sharply; CUDA stays nearly flat).
	GroupScalePenalty float64
	// BuildScalePenalty is the fractional slowdown of hash build/probe
	// per doubling of the input size beyond 2^20 elements (repeated
	// contended insertions into one global table).
	BuildScalePenalty float64
	// MaterializePenalty multiplies the cost of extracting values through
	// a bitmap. GPUs pay for cooperative bit extraction across threads;
	// CPUs process 32-value runs per thread and barely notice.
	MaterializePenalty float64
	// ProbePenalty multiplies hash-probe cost. The paper observes CUDA's
	// probe underperforming OpenCL's (thread ordering on global memory
	// accesses, Figure 9(e)).
	ProbePenalty float64

	// PinnedEfficiency scales bandwidth on the pinned links only. OpenCL
	// re-maps the host pointer on every enqueue, so its pinned path keeps
	// less of the link's peak than CUDA's (the paper's Figure 3 gap and
	// the Q4 pathology in Figure 11).
	PinnedEfficiency float64
	// PinnedRemapPenalty models the OpenCL driver pathology the paper
	// observes on Q4: when a pipeline has too few kernels between writes
	// to a pinned region, the driver re-maps the host pointer
	// synchronously, costing this multiple of the transfer time again.
	// Zero disables it (CUDA's page-locked memory needs no re-mapping).
	PinnedRemapPenalty float64
	// SyncCost is the host-side price of one cross-thread synchronization
	// at a chunk boundary (the fetched_until/processed_until handshake of
	// Algorithms 2-3). Charged per chunk by the overlapped execution
	// models; OpenCL's event machinery makes it expensive.
	SyncCost vclock.Duration

	// SupportsRuntimeCompile reports whether prepare_kernel is available
	// (the paper makes kernel management optional for SDKs without it).
	SupportsRuntimeCompile bool
	// SupportsPinned reports whether add_pinned_memory uses a genuinely
	// faster host-visible allocation.
	SupportsPinned bool
}

// TransferPinned returns the cost of moving bytes over a pinned link under
// this SDK, applying the SDK's pinned-path efficiency.
func (p *SDKProfile) TransferPinned(link LinkCurve, bytes int64) vclock.Duration {
	eff := p.PinnedEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	scaled := LinkCurve{PeakGBps: link.PeakGBps * eff, Latency: link.Latency}
	return p.Transfer(scaled, bytes)
}

// Transfer returns the cost of moving bytes over the given link under this
// SDK.
func (p *SDKProfile) Transfer(link LinkCurve, bytes int64) vclock.Duration {
	eff := p.TransferEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	scaled := LinkCurve{PeakGBps: link.PeakGBps * eff, Latency: link.Latency}
	return scaled.Cost(bytes) + p.TransferLatency
}

// Launch returns the fixed dispatch cost of one kernel with the given number
// of buffer arguments on the given device.
func (p *SDKProfile) Launch(spec *Spec, args int) vclock.Duration {
	return spec.KernelLaunch + p.LaunchOverhead + vclock.Duration(int64(p.ArgMapCost)*int64(args))
}

// Stream returns the cost of a sequential-access kernel body touching the
// given number of bytes.
func (p *SDKProfile) Stream(spec *Spec, bytes int64) vclock.Duration {
	return scale(spec.StreamCost(bytes), p.ComputeEfficiency)
}

// Random returns the cost of a gather/scatter kernel body touching the given
// number of bytes.
func (p *SDKProfile) Random(spec *Spec, bytes int64) vclock.Duration {
	return scale(spec.RandomCost(bytes), p.ComputeEfficiency)
}

// Atomic returns the cost of n contended atomic operations.
func (p *SDKProfile) Atomic(spec *Spec, n int64, contention float64) vclock.Duration {
	return scale(spec.AtomicCost(n, contention), p.AtomicEfficiency)
}

func scale(d vclock.Duration, eff float64) vclock.Duration {
	if eff <= 0 {
		eff = 1
	}
	return vclock.Duration(float64(d) / eff)
}

// Predefined SDK profiles, calibrated against the relative behaviours the
// paper reports for its four driver configurations.
var (
	// CUDAProfile models the vendor SDK: best transfer rates, cheap
	// launches, no per-argument mapping, flat group scaling.
	CUDAProfile = SDKProfile{
		Name:                   "CUDA",
		TransferEfficiency:     1.0,
		TransferLatency:        0,
		LaunchOverhead:         2 * vclock.Microsecond,
		ArgMapCost:             0,
		CompileCost:            0,
		ComputeEfficiency:      1.0,
		AtomicEfficiency:       1.0,
		GroupScalePenalty:      0.06,
		BuildScalePenalty:      0.26,
		MaterializePenalty:     2.3,
		ProbePenalty:           1.6,
		PinnedEfficiency:       1.0,
		SyncCost:               6 * vclock.Microsecond,
		SupportsRuntimeCompile: false,
		SupportsPinned:         true,
	}

	// OpenCLGPUProfile models the wrapper SDK on a GPU: translation
	// overhead on transfers, explicit data mapping per kernel argument,
	// runtime compilation, and statically scheduled threads that degrade
	// with group counts.
	OpenCLGPUProfile = SDKProfile{
		Name:                   "OpenCL",
		TransferEfficiency:     0.72,
		TransferLatency:        8 * vclock.Microsecond,
		LaunchOverhead:         9 * vclock.Microsecond,
		ArgMapCost:             3 * vclock.Microsecond,
		CompileCost:            55 * vclock.Millisecond,
		ComputeEfficiency:      0.97,
		AtomicEfficiency:       0.90,
		GroupScalePenalty:      0.34,
		BuildScalePenalty:      0.17,
		MaterializePenalty:     2.5,
		ProbePenalty:           1.1,
		PinnedEfficiency:       0.75,
		PinnedRemapPenalty:     5.0,
		SyncCost:               60 * vclock.Microsecond,
		SupportsRuntimeCompile: true,
		SupportsPinned:         true,
	}

	// OpenCLCPUProfile models OpenCL driving the host CPU. Its internal
	// scheduling outperforms OpenMP's explicit thread scheduling for
	// streaming kernels.
	OpenCLCPUProfile = SDKProfile{
		Name:                   "OpenCL",
		TransferEfficiency:     1.0,
		TransferLatency:        2 * vclock.Microsecond,
		LaunchOverhead:         7 * vclock.Microsecond,
		ArgMapCost:             2 * vclock.Microsecond,
		CompileCost:            40 * vclock.Millisecond,
		ComputeEfficiency:      0.96,
		AtomicEfficiency:       0.95,
		GroupScalePenalty:      0.04,
		BuildScalePenalty:      0.02,
		MaterializePenalty:     0.45,
		PinnedEfficiency:       1.0,
		SyncCost:               25 * vclock.Microsecond,
		SupportsRuntimeCompile: true,
		SupportsPinned:         false,
	}

	// OpenMPProfile models the CPU-native SDK: no transfers to speak of,
	// cheap launches, but explicitly scheduled hardware threads that cost
	// streaming bandwidth.
	OpenMPProfile = SDKProfile{
		Name:                   "OpenMP",
		TransferEfficiency:     1.0,
		TransferLatency:        500 * vclock.Nanosecond,
		LaunchOverhead:         3 * vclock.Microsecond,
		ArgMapCost:             0,
		CompileCost:            0,
		ComputeEfficiency:      0.79,
		AtomicEfficiency:       0.92,
		GroupScalePenalty:      0.05,
		BuildScalePenalty:      0.02,
		MaterializePenalty:     0.50,
		PinnedEfficiency:       1.0,
		SyncCost:               4 * vclock.Microsecond,
		SupportsRuntimeCompile: false,
		SupportsPinned:         false,
	}
)
