package simhw

import (
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vclock"
)

func TestLinkCurveShape(t *testing.T) {
	l := LinkCurve{PeakGBps: 10, Latency: 10 * vclock.Microsecond}
	if l.Cost(0) != l.Latency {
		t.Error("zero-byte transfer should cost the latency")
	}
	// Effective bandwidth ramps with transfer size toward the peak.
	small := l.EffectiveGBps(1 << 10)
	big := l.EffectiveGBps(1 << 30)
	if small >= big {
		t.Errorf("bandwidth did not ramp: %v vs %v", small, big)
	}
	if big > 10 || big < 9 {
		t.Errorf("large transfer should approach peak: %v", big)
	}
}

func TestLinkCurveMonotonicProperty(t *testing.T) {
	l := LinkCurve{PeakGBps: 6.2, Latency: 12 * vclock.Microsecond}
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return l.Cost(x) <= l.Cost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecCosts(t *testing.T) {
	s := &RTX2080Ti
	if s.StreamCost(0) != 0 || s.RandomCost(0) != 0 || s.AtomicCost(0, 1) != 0 {
		t.Error("zero work should cost zero")
	}
	if s.StreamCost(1<<30) >= s.RandomCost(1<<30) {
		t.Error("random access must cost more than streaming")
	}
	// Contention scales atomics; sub-1 contention clamps.
	if s.AtomicCost(1000, 2) <= s.AtomicCost(1000, 1) {
		t.Error("contention should increase atomic cost")
	}
	if s.AtomicCost(1000, 0.5) != s.AtomicCost(1000, 1) {
		t.Error("contention below 1 should clamp")
	}
}

func TestHostResident(t *testing.T) {
	if RTX2080Ti.HostResident() || A100.HostResident() {
		t.Error("GPUs are not host resident")
	}
	if !CoreI78700.HostResident() || !XeonGold5220R.HostResident() {
		t.Error("CPUs are host resident")
	}
}

// TestPaperRelations checks the cross-device/SDK orderings the paper's
// figures rely on.
func TestPaperRelations(t *testing.T) {
	const gb = int64(1) << 30

	// Figure 3: CUDA transfers beat OpenCL on the same link; pinned beats
	// pageable for both SDKs.
	for _, gpu := range []*Spec{&RTX2080Ti, &A100} {
		cudaPag := CUDAProfile.Transfer(gpu.Links.H2DPageable, gb)
		oclPag := OpenCLGPUProfile.Transfer(gpu.Links.H2DPageable, gb)
		if cudaPag >= oclPag {
			t.Errorf("%s: CUDA pageable (%v) should beat OpenCL (%v)", gpu.Name, cudaPag, oclPag)
		}
		cudaPin := CUDAProfile.TransferPinned(gpu.Links.H2DPinned, gb)
		if cudaPin >= cudaPag {
			t.Errorf("%s: CUDA pinned (%v) should beat pageable (%v)", gpu.Name, cudaPin, cudaPag)
		}
		oclPin := OpenCLGPUProfile.TransferPinned(gpu.Links.H2DPinned, gb)
		oclPagCost := OpenCLGPUProfile.Transfer(gpu.Links.H2DPageable, gb)
		if oclPin >= oclPagCost {
			t.Errorf("%s: OpenCL pinned (%v) should still beat pageable (%v)", gpu.Name, oclPin, oclPagCost)
		}
	}

	// A100 moves data faster than the 2080 Ti.
	if CUDAProfile.Transfer(A100.Links.H2DPinned, gb) >= CUDAProfile.Transfer(RTX2080Ti.Links.H2DPinned, gb) {
		t.Error("A100 transfers should beat 2080 Ti")
	}

	// Figure 9(a): OpenCL beats OpenMP on CPUs for streaming kernels.
	for _, cpu := range []*Spec{&CoreI78700, &XeonGold5220R} {
		if OpenCLCPUProfile.Stream(cpu, gb) >= OpenMPProfile.Stream(cpu, gb) {
			t.Errorf("%s: OpenCL streaming should beat OpenMP", cpu.Name)
		}
	}

	// Figure 10: OpenCL's per-launch handling exceeds CUDA's and OpenMP's.
	oclLaunch := OpenCLGPUProfile.Launch(&RTX2080Ti, 4)
	cudaLaunch := CUDAProfile.Launch(&RTX2080Ti, 4)
	if oclLaunch <= cudaLaunch {
		t.Error("OpenCL launch handling should exceed CUDA")
	}
	if OpenCLCPUProfile.Launch(&CoreI78700, 4) <= OpenMPProfile.Launch(&CoreI78700, 4) {
		t.Error("OpenCL launch handling should exceed OpenMP")
	}

	// Figure 9(c): OpenCL degrades more with group counts than CUDA.
	if OpenCLGPUProfile.GroupScalePenalty <= CUDAProfile.GroupScalePenalty {
		t.Error("OpenCL group scaling penalty should exceed CUDA")
	}

	// GPUs out-stream CPUs.
	if CUDAProfile.Stream(&RTX2080Ti, gb) >= OpenMPProfile.Stream(&CoreI78700, gb) {
		t.Error("GPU streaming should beat CPU")
	}
}

func TestSDKScaleClamps(t *testing.T) {
	p := SDKProfile{Name: "x", TransferEfficiency: 0, ComputeEfficiency: -1, PinnedEfficiency: 2}
	link := LinkCurve{PeakGBps: 10}
	if p.Transfer(link, 1<<20) != link.Cost(1<<20) {
		t.Error("zero efficiency should clamp to 1")
	}
	if p.TransferPinned(link, 1<<20) != link.Cost(1<<20) {
		t.Error("out-of-range pinned efficiency should clamp to 1")
	}
	if p.Stream(&RTX2080Ti, 1<<20) != RTX2080Ti.StreamCost(1<<20) {
		t.Error("negative compute efficiency should clamp to 1")
	}
}

func TestSetups(t *testing.T) {
	if Setup1.GPU.Name != RTX2080Ti.Name || Setup2.GPU.Name != A100.Name {
		t.Error("setups do not match Table II")
	}
	if len(AllGPUs()) != 4 {
		t.Error("capacity analysis expects 4 GPUs")
	}
	if RTX2080Ti.String() == "" || ClassGPU.String() != "gpu" || ClassCPU.String() != "cpu" {
		t.Error("diagnostics broken")
	}
}
