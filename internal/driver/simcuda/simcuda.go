// Package simcuda plugs a CUDA-programmed GPU into ADAMANT's device layer.
//
// It mirrors the paper's vendor-SDK configuration: precompiled kernels (no
// runtime compilation, so prepare_kernel is unsupported and execute works
// out of the box), page-locked host memory through add_pinned_memory
// (cudaHostAlloc), and the best transfer bandwidth of the evaluated SDKs.
// Buffers are tagged with the CUDA device-pointer format; feeding them to a
// device of another SDK requires transform_memory, as in Figure 4.
package simcuda

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
)

// New returns a CUDA driver for the given GPU. A nil registry selects the
// built-in kernel set.
func New(gpu *simhw.Spec, reg *kernels.Registry) *device.Sim {
	return device.NewSim(device.SimConfig{
		Name:     gpu.Name + "/cuda",
		Spec:     gpu,
		SDK:      &simhw.CUDAProfile,
		Format:   devmem.FormatCUDA,
		Registry: reg,
	})
}
