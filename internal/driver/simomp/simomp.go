// Package simomp plugs the host CPU, programmed OpenMP-style, into
// ADAMANT's device layer.
//
// The device is host-resident: place_data and retrieve_data degenerate to
// address-space registrations (zero copy), there is no pinned-memory fast
// path, and kernels are precompiled (prepare_kernel is unsupported).
// Kernel bodies fan out across real goroutines, standing in for OpenMP's
// parallel-for worker threads; the explicit thread scheduling costs
// streaming bandwidth relative to OpenCL's internal scheduler, as the paper
// observes in Figure 9(a).
package simomp

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
)

// New returns an OpenMP driver for the given host CPU. A nil registry
// selects the built-in kernel set.
func New(cpu *simhw.Spec, reg *kernels.Registry) *device.Sim {
	return device.NewSim(device.SimConfig{
		Name:     cpu.Name + "/openmp",
		Spec:     cpu,
		SDK:      &simhw.OpenMPProfile,
		Format:   devmem.FormatRaw,
		Registry: reg,
	})
}
