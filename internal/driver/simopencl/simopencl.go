// Package simopencl plugs an OpenCL-programmed device into ADAMANT's device
// layer, covering both the GPU and CPU configurations the paper evaluates.
//
// It mirrors the paper's case study (§III-A1, Listings 1–5): buffers are
// cl_mem objects created by place_data, pinned space comes from
// CL_MEM_ALLOC_HOST_PTR, kernels are compiled at runtime by prepare_kernel
// (all built-ins at initialize time), and execute maps every buffer
// argument explicitly before enqueueing the NDRange — the per-argument
// mapping cost that dominates OpenCL's handling overhead in Figure 10.
package simopencl

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
)

// NewGPU returns an OpenCL driver for the given GPU. A nil registry selects
// the built-in kernel set.
func NewGPU(gpu *simhw.Spec, reg *kernels.Registry) *device.Sim {
	return device.NewSim(device.SimConfig{
		Name:     gpu.Name + "/opencl",
		Spec:     gpu,
		SDK:      &simhw.OpenCLGPUProfile,
		Format:   devmem.FormatOpenCL,
		Registry: reg,
	})
}

// NewCPU returns an OpenCL driver for the given host CPU. OpenCL schedules
// CPU hardware threads internally, which the paper finds beats OpenMP's
// explicit scheduling for streaming primitives.
func NewCPU(cpu *simhw.Spec, reg *kernels.Registry) *device.Sim {
	return device.NewSim(device.SimConfig{
		Name:     cpu.Name + "/opencl",
		Spec:     cpu,
		SDK:      &simhw.OpenCLCPUProfile,
		Format:   devmem.FormatOpenCL,
		Registry: reg,
	})
}
