package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vec"
)

// Fig9Primitives reproduces Figure 9: throughput profiles of the filter
// (bitmap and with materialization), hash aggregation, hash build and hash
// probe primitives on every driver of both setups.
//
// Expected shapes, per the paper:
//   - (a) filters are selectivity-insensitive; OpenCL beats OpenMP on CPU
//     and matches CUDA on GPU.
//   - (b) adding materialization drops GPUs to roughly 30% of the
//     bitmap-only throughput; CPUs barely notice.
//   - (c) OpenCL (GPU) hash aggregation degrades sharply with group count;
//     CUDA stays nearly flat.
//   - (d,e) hash build/probe throughput drops with input size on GPUs
//     (shared global table, atomic insertion); CPUs stay flat.
func Fig9Primitives(cfg Config, w io.Writer) error {
	nFilter := 1 << 26
	nHash := 1 << 24
	if cfg.Quick {
		nFilter = 1 << 20
		nHash = 1 << 18
	}

	for _, setup := range []simhw.Setup{simhw.Setup1, simhw.Setup2} {
		if err := fig9Filters(cfg, w, setup, nFilter); err != nil {
			return err
		}
		if err := fig9HashAgg(cfg, w, setup, nHash); err != nil {
			return err
		}
		if err := fig9BuildProbe(cfg, w, setup, nHash); err != nil {
			return err
		}
	}
	return nil
}

func fig9Filters(cfg Config, w io.Writer, setup simhw.Setup, n int) error {
	selectivities := []int{10, 30, 50, 70, 90}

	header := []string{"driver", "variant"}
	for _, s := range selectivities {
		header = append(header, fmt.Sprintf("sel%d%%", s))
	}
	t := NewTable(fmt.Sprintf("Figure 9(a,b) [%s]: filter throughput (million values/s) vs selectivity", setup.Name), header...)

	r, err := newRig(setup)
	if err != nil {
		return err
	}
	for _, drv := range r.drivers() {
		d, err := r.rt.Device(drv.ID)
		if err != nil {
			return err
		}
		p, err := newProf(d)
		if err != nil {
			return err
		}
		in := randomInt32(n, 100, cfg.Seed)
		bufIn, err := p.place(in)
		if err != nil {
			return err
		}
		bm, err := p.alloc(vec.Bits, n)
		if err != nil {
			return err
		}
		matOut, err := p.alloc(vec.Int32, n)
		if err != nil {
			return err
		}
		count, err := p.alloc(vec.Int64, 1)
		if err != nil {
			return err
		}

		bitmapRow := []any{d.Info().Name, "bitmap"}
		matRow := []any{d.Info().Name, "bitmap+materialize"}
		for _, sel := range selectivities {
			fDur, err := p.run("filter_bitmap_i32", []devmem.BufferID{bufIn, bm},
				int64(kernels.CmpLt), int64(sel), 0)
			if err != nil {
				return err
			}
			mDur, err := p.run("materialize_bitmap_i32", []devmem.BufferID{bufIn, bm, matOut, count})
			if err != nil {
				return err
			}
			bitmapRow = append(bitmapRow, mops(n, fDur))
			matRow = append(matRow, mops(n, fDur+mDur))
		}
		t.Add(bitmapRow...)
		t.Add(matRow...)
		p.free(bufIn, bm, matOut, count)
	}
	return cfg.report(w, "fig9-filter/"+setup.Name, t)
}

func fig9HashAgg(cfg Config, w io.Writer, setup simhw.Setup, n int) error {
	groupSweep := []int{1 << 8, 1 << 12, 1 << 16, 1 << 20}

	header := []string{"driver"}
	for _, g := range groupSweep {
		header = append(header, fmt.Sprintf("2^%d groups", log2(g)))
	}
	t := NewTable(fmt.Sprintf("Figure 9(c) [%s]: hash aggregation throughput (million values/s) vs group count", setup.Name), header...)

	r, err := newRig(setup)
	if err != nil {
		return err
	}
	for _, drv := range r.drivers() {
		d, err := r.rt.Device(drv.ID)
		if err != nil {
			return err
		}
		p, err := newProf(d)
		if err != nil {
			return err
		}
		row := []any{d.Info().Name}
		for _, groups := range groupSweep {
			keys, err := p.place(randomInt32(n, int32(groups), cfg.Seed))
			if err != nil {
				return err
			}
			vals, err := p.place(onesInt64(n))
			if err != nil {
				return err
			}
			table, err := p.alloc(vec.Int64, kernels.HashTableLen(groups))
			if err != nil {
				return err
			}
			if _, err := p.run("hash_table_init", []devmem.BufferID{table}); err != nil {
				return err
			}
			dur, err := p.run("hash_agg_i32_i64", []devmem.BufferID{keys, vals, table},
				int64(kernels.AggSum), int64(groups))
			if err != nil {
				return err
			}
			row = append(row, mops(n, dur))
			p.free(keys, vals, table)
		}
		t.Add(row...)
	}
	return cfg.report(w, "fig9-hashagg/"+setup.Name, t)
}

func fig9BuildProbe(cfg Config, w io.Writer, setup simhw.Setup, maxN int) error {
	var sizes []int
	for n := 1 << 20; n <= maxN; n <<= 2 {
		sizes = append(sizes, n)
	}
	if cfg.Quick {
		sizes = []int{1 << 14, 1 << 16, 1 << 18}
	}

	header := []string{"driver", "phase"}
	for _, n := range sizes {
		header = append(header, fmt.Sprintf("2^%d", log2(n)))
	}
	t := NewTable(fmt.Sprintf("Figure 9(d,e) [%s]: hash build/probe throughput (million values/s) vs data size", setup.Name), header...)

	r, err := newRig(setup)
	if err != nil {
		return err
	}
	for _, drv := range r.drivers() {
		d, err := r.rt.Device(drv.ID)
		if err != nil {
			return err
		}
		p, err := newProf(d)
		if err != nil {
			return err
		}
		buildRow := []any{d.Info().Name, "build"}
		probeRow := []any{d.Info().Name, "probe"}
		for _, n := range sizes {
			keys, err := p.place(sequentialInt32(n))
			if err != nil {
				return err
			}
			table, err := p.alloc(vec.Int64, kernels.HashTableLen(n))
			if err != nil {
				return err
			}
			if _, err := p.run("hash_table_init", []devmem.BufferID{table}); err != nil {
				return err
			}
			bDur, err := p.run("hash_build_pk_i32", []devmem.BufferID{keys, table}, 0)
			if err != nil {
				return err
			}
			bm, err := p.alloc(vec.Bits, n)
			if err != nil {
				return err
			}
			pDur, err := p.run("hash_probe_exists_i32", []devmem.BufferID{keys, table, bm})
			if err != nil {
				return err
			}
			buildRow = append(buildRow, mops(n, bDur))
			probeRow = append(probeRow, mops(n, pDur))
			p.free(keys, table, bm)
		}
		t.Add(buildRow...)
		t.Add(probeRow...)
	}
	return cfg.report(w, "fig9-buildprobe/"+setup.Name, t)
}

func onesInt64(n int) vec.Vector {
	v := vec.New(vec.Int64, n)
	s := v.I64()
	for i := range s {
		s[i] = 1
	}
	return v
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
