// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): transfer bandwidth profiles (Figure 3), map/reduce
// throughput (Figure 5), the memory-capacity analysis and footprint trace
// (Figure 7), primitive profiles (Figure 9), abstraction-layer overhead
// (Figure 10), the execution-model comparison and the HeavyDB baseline
// (Figure 11), and the device table (Table II).
//
// Each experiment is a named generator that runs the corresponding
// workload through the real ADAMANT stack (devices, task layer, execution
// models) and emits the same rows/series the paper reports. Absolute
// numbers come from the calibrated virtual-time models; the claims under
// test are the relative shapes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

// Config scales the experiments.
type Config struct {
	// Quick shrinks workloads for CI-speed runs; the full profile matches
	// the paper's sizes (scaled by Ratio where physical data is needed).
	Quick bool
	// Ratio down-scales generated TPC-H data from the nominal scale
	// factors. Zero selects 1/512 (full) or 1/4096 (quick).
	Ratio float64
	// Seed feeds the data generators.
	Seed uint64
	// Ctx, when set, cancels in-flight query executions at chunk
	// boundaries (the CLI wires SIGINT here). Nil means background.
	Ctx context.Context
	// Results, when set, collects machine-readable records alongside the
	// text tables (the CLI's -json flag wires a collector here).
	Results *Collector
}

// report writes the table as text and, when a collector is configured,
// extracts its numeric cells into records under the experiment name.
func (c Config) report(w io.Writer, experiment string, t *Table) error {
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	c.Results.AddTable(experiment, t, c.Seed, c.ratio())
	return nil
}

// reportPhase is report with a phase label ("cold", "warm") stamped on the
// extracted records.
func (c Config) reportPhase(w io.Writer, experiment, phase string, t *Table) error {
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	c.Results.AddTablePhase(experiment, phase, t, c.Seed, c.ratio())
	return nil
}

// Context returns the configured cancellation context, or background.
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c Config) ratio() float64 {
	if c.Ratio > 0 && c.Ratio <= 1 {
		return c.Ratio
	}
	if c.Quick {
		return 1.0 / 1024
	}
	return 1.0 / 64
}

// chunkElems scales the paper's 2^25-value chunk with the data ratio so
// chunk counts match the paper's.
func (c Config) chunkElems() int {
	chunk := int(float64(int64(1)<<25) * c.ratio())
	if chunk < 1024 {
		chunk = 1024
	}
	return (chunk + 63) &^ 63
}

// Generator produces one experiment's report.
type Generator func(cfg Config, w io.Writer) error

var registry = map[string]Generator{
	"table2":     Table2,
	"fig3":       Fig3Bandwidth,
	"fig5":       Fig5MapReduce,
	"fig6":       Fig6Timelines,
	"fig7":       Fig7Capacity,
	"fig9":       Fig9Primitives,
	"fig10":      Fig10Overhead,
	"fig11":      Fig11Models,
	"heavydb":    Fig11HeavyDB,
	"chunksweep": ChunkSweep,
	"cache":      CacheWarm,
	"fuse":       FuseSpeedup,
	"auto":       AutoPlan,
	"shard":      ShardScale,
	"profile":    ProfileOverhead,
}

// Names lists the experiment identifiers in run order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Generator, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return g, nil
}

// RunAll executes every experiment in order, stopping between experiments
// (and, through each generator, at query chunk boundaries) when the
// configured context is cancelled.
func RunAll(cfg Config, w io.Writer) error {
	for _, name := range Names() {
		if err := cfg.Context().Err(); err != nil {
			return fmt.Errorf("experiments: interrupted before %s: %w", name, err)
		}
		if err := registry[name](cfg, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
	}
	return nil
}

// rig is the standard four-driver runtime of the paper's evaluation on one
// setup.
type rig struct {
	rt     *hub.Runtime
	cuda   device.ID
	oclGPU device.ID
	oclCPU device.ID
	omp    device.ID
}

func newRig(setup simhw.Setup) (*rig, error) {
	rt := hub.NewRuntime()
	r := &rig{rt: rt}
	var err error
	if r.cuda, err = rt.Register(simcuda.New(&setup.GPU, nil)); err != nil {
		return nil, err
	}
	if r.oclGPU, err = rt.Register(simopencl.NewGPU(&setup.GPU, nil)); err != nil {
		return nil, err
	}
	if r.oclCPU, err = rt.Register(simopencl.NewCPU(&setup.CPU, nil)); err != nil {
		return nil, err
	}
	if r.omp, err = rt.Register(simomp.New(&setup.CPU, nil)); err != nil {
		return nil, err
	}
	return r, nil
}

// drivers lists the rig's devices with their figure labels.
func (r *rig) drivers() []struct {
	Label string
	ID    device.ID
} {
	return []struct {
		Label string
		ID    device.ID
	}{
		{"CUDA (GPU)", r.cuda},
		{"OpenCL (GPU)", r.oclGPU},
		{"OpenCL (CPU)", r.oclCPU},
		{"OpenMP (CPU)", r.omp},
	}
}

// dataset generates TPC-H data at the nominal SF, scaled by the config.
func (c Config) dataset(sf float64) (*tpch.Dataset, error) {
	return tpch.Generate(tpch.Config{SF: sf, Ratio: c.ratio(), Seed: c.Seed})
}
