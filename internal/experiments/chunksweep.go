package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

// ChunkSweep quantifies the chunk-size trade-off behind the paper's choice
// of 2^25 values: small chunks drown in per-chunk latency and handling,
// oversized chunks lose transfer/compute overlap and spike device memory.
// The sweep runs Q6 under 4-phase pipelined execution around the scaled
// optimum.
func ChunkSweep(cfg Config, w io.Writer) error {
	ds, err := cfg.dataset(100)
	if err != nil {
		return err
	}
	base := cfg.chunkElems()

	t := NewTable("Chunk-size sweep: Q6, 4-phase pipelined, CUDA (virtual seconds)",
		"chunk values", "vs 2^25-scaled", "elapsed s", "chunks", "peak device MiB")
	t.Note = fmt.Sprintf("data scaled by %.5f; the paper's 2^25 corresponds to %d values here", cfg.ratio(), base)

	for _, mult := range []struct {
		label  string
		factor float64
	}{
		{"1/16x", 1.0 / 16}, {"1/4x", 0.25}, {"1x", 1}, {"4x", 4}, {"16x", 16},
	} {
		chunk := int(float64(base) * mult.factor)
		if chunk < 64 {
			chunk = 64
		}
		r, err := newRig(simhw.Setup1)
		if err != nil {
			return err
		}
		g, err := tpch.BuildQ6(ds, r.cuda)
		if err != nil {
			return err
		}
		res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{Model: exec.FourPhasePipelined, ChunkElems: chunk})
		if err != nil {
			return err
		}
		t.Add(chunk, mult.label, seconds(res.Stats.Elapsed), res.Stats.Chunks,
			fmt.Sprintf("%.1f", float64(res.Stats.PeakDeviceBytes)/(1<<20)))
	}
	return cfg.report(w, "chunksweep", t)
}
