package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vec"
)

// Fig3Bandwidth reproduces Figure 3: achieved H2D and D2H bandwidth for
// CUDA vs OpenCL across GPUs, for pageable and pinned transfers, over a
// sweep of transfer sizes. The expected shape: bandwidth ramps with size,
// CUDA above OpenCL throughout, pinned above pageable, A100 above 2080 Ti.
func Fig3Bandwidth(cfg Config, w io.Writer) error {
	sizesMiB := []int{1, 4, 16, 64, 256, 1024}
	if cfg.Quick {
		sizesMiB = []int{1, 8, 64}
	}

	header := append([]string{"gpu", "sdk", "mode", "dir"}, sizeHeaders(sizesMiB)...)
	t := NewTable("Figure 3: data transfer bandwidth (GB/s) by SDK, GPU, direction, and transfer size", header...)
	t.Note = "H2D: host to device, D2H: device to host; pinned via add_pinned_memory"

	for _, gpu := range []*simhw.Spec{&simhw.RTX2080Ti, &simhw.A100} {
		for _, mk := range []struct {
			label string
			build func() device.Device
		}{
			{"CUDA", func() device.Device { return simcuda.New(gpu, nil) }},
			{"OpenCL", func() device.Device { return simopencl.NewGPU(gpu, nil) }},
		} {
			for _, pinned := range []bool{false, true} {
				mode := "pageable"
				if pinned {
					mode = "pinned"
				}
				h2d := []any{gpu.Name, mk.label, mode, "H2D"}
				d2h := []any{gpu.Name, mk.label, mode, "D2H"}
				for _, mib := range sizesMiB {
					up, down, err := measureTransfer(mk.build(), mib<<20, pinned)
					if err != nil {
						return err
					}
					h2d = append(h2d, up)
					d2h = append(d2h, down)
				}
				t.Add(h2d...)
				t.Add(d2h...)
			}
		}
	}
	return cfg.report(w, "fig3", t)
}

func sizeHeaders(sizesMiB []int) []string {
	out := make([]string, len(sizesMiB))
	for i, s := range sizesMiB {
		out[i] = fmt.Sprintf("%dMiB", s)
	}
	return out
}

// measureTransfer times one H2D and one D2H transfer of the given size
// through the device interfaces and reports achieved GB/s.
func measureTransfer(d device.Device, bytes int, pinned bool) (h2d, d2h string, err error) {
	if err := d.Initialize(); err != nil {
		return "", "", err
	}
	n := bytes / 4
	host := vec.New(vec.Int32, n)

	var id devmem.BufferID
	if pinned {
		id, _, err = d.AddPinnedMemory(vec.Int32, n, d.CopyEngine().Avail())
	} else {
		id, _, err = d.PrepareMemory(vec.Int32, n, d.CopyEngine().Avail())
	}
	if err != nil {
		return "", "", err
	}
	start := d.CopyEngine().Avail()
	end, err := d.PlaceDataInto(id, 0, host, start)
	if err != nil {
		return "", "", err
	}
	h2d = gbps(int64(bytes), end.Sub(start))

	back := vec.New(vec.Int32, n)
	end2, err := d.RetrieveData(id, 0, n, back, end)
	if err != nil {
		return "", "", err
	}
	d2h = gbps(int64(bytes), end2.Sub(end))
	return h2d, d2h, d.DeleteMemory(id)
}
