package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

// Fig7Capacity reproduces Figure 7: the scalability limit of
// operator-at-a-time execution.
//
// Left: the logical input size of each evaluated query, and of the full
// dataset, against GPU memory capacities over a scale-factor sweep — only
// some queries fit in device memory, and the full dataset rarely does.
//
// Right: the device-memory footprint over the execution steps of Q6 under
// operator-at-a-time execution, showing intermediates piling on top of the
// resident columns (traced live from the device memory pools).
func Fig7Capacity(cfg Config, w io.Writer) error {
	sfs := []float64{1, 10, 30, 100, 140, 300}

	header := []string{"input"}
	for _, sf := range sfs {
		header = append(header, fmt.Sprintf("SF%g (GiB)", sf))
	}
	t := NewTable("Figure 7 (left): query input sizes vs GPU memory capacities", header...)

	for _, q := range []string{"Q1", "Q3", "Q4", "Q6"} {
		row := []any{q + " input"}
		for _, sf := range sfs {
			b, err := tpch.QueryInputBytes(q, sf)
			if err != nil {
				return err
			}
			row = append(row, gib(b))
		}
		t.Add(row...)
	}
	row := []any{"full dataset"}
	for _, sf := range sfs {
		row = append(row, gib(tpch.DatasetBytes(sf)))
	}
	t.Add(row...)
	for _, gpu := range simhw.AllGPUs() {
		t.Add(fmt.Sprintf("capacity: %s", gpu.Name), gib(gpu.MemoryBytes), "", "", "", "", "")
	}
	if err := cfg.report(w, "fig7-capacity", t); err != nil {
		return err
	}

	// Right: Q6 footprint trace under operator-at-a-time.
	ds, err := cfg.dataset(10)
	if err != nil {
		return err
	}
	r, err := newRig(simhw.Setup1)
	if err != nil {
		return err
	}
	g, err := tpch.BuildQ6(ds, r.cuda)
	if err != nil {
		return err
	}
	res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{Model: exec.OperatorAtATime, Trace: true})
	if err != nil {
		return err
	}

	t2 := NewTable("Figure 7 (right): device memory footprint during Q6, operator-at-a-time",
		"step", "after", "device MiB")
	t2.Note = fmt.Sprintf("dataset SF10 scaled by %.5f; peak %.1f MiB", cfg.ratio(), float64(res.Stats.PeakDeviceBytes)/(1<<20))
	for i, s := range res.Stats.Footprint {
		t2.Add(i+1, s.Label, fmt.Sprintf("%.2f", float64(s.Bytes)/(1<<20)))
	}
	return cfg.report(w, "fig7-footprint", t2)
}
