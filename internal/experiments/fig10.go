package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

// Fig10Overhead reproduces Figure 10: the overhead of the abstraction
// layers, measured as the difference between a query's overall execution
// time and the summed processing time of its individual primitives, per
// driver and query. Expected shape: OpenCL shows the largest overhead
// (explicit per-argument data mapping), CUDA and OpenMP stay small, and
// the overhead is minor relative to total execution either way.
func Fig10Overhead(cfg Config, w io.Writer) error {
	ds, err := cfg.dataset(100)
	if err != nil {
		return err
	}
	r, err := newRig(simhw.Setup1)
	if err != nil {
		return err
	}

	t := NewTable("Figure 10: abstraction-layer overhead (chunked execution)",
		"query", "driver", "total ms", "primitives ms", "transfer ms", "overhead ms", "overhead %")
	t.Note = fmt.Sprintf("TPC-H SF100 scaled by %.5f; chunk %d values", cfg.ratio(), cfg.chunkElems())

	for _, q := range []string{"Q3", "Q4", "Q6"} {
		for _, drv := range r.drivers() {
			g, err := tpch.BuildQuery(q, ds, drv.ID)
			if err != nil {
				return err
			}
			res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{Model: exec.Chunked, ChunkElems: cfg.chunkElems()})
			if err != nil {
				return err
			}
			total := res.Stats.Elapsed
			prims := res.Stats.KernelTime
			transfer := res.Stats.TransferTime
			over := total - prims - transfer
			if over < 0 {
				over = 0
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(over) / float64(total)
			}
			t.Add(q, drv.Label, millis(total), millis(prims), millis(transfer), millis(over), fmt.Sprintf("%.1f", pct))
		}
	}
	return cfg.report(w, "fig10", t)
}
