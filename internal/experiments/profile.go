package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	adamant "github.com/adamant-db/adamant"
)

// profilePlan builds the Q6 revenue plan on the facade plan API (the
// profiler lives behind the facade, so the overhead experiment drives the
// same path production traffic takes).
func profilePlan(eng *adamant.Engine, dev adamant.DeviceID, price, disc []int32) *adamant.Plan {
	plan := eng.NewPlan().On(dev)
	p := plan.ScanInt32("l_extendedprice", price)
	d := plan.ScanInt32("l_discount", disc)
	keep := plan.FilterBetween(d, 5, 7)
	rev := plan.Mul(plan.Materialize(p, keep), plan.Materialize(d, keep))
	plan.Return("revenue", plan.SumInt64(rev))
	return plan
}

// ProfileOverhead measures what the fleet profiler costs on the
// concurrent-throughput path: the BenchmarkConcurrentThroughput workload
// (concurrent Q6 sessions through admission over one shared GPU) run on a
// telemetry-armed engine, with the profiler + SLO tracking off and then
// on. Both phases execute identical session counts, so the wall-clock
// delta is the profiler's ledger fold, anomaly anchoring, and SLO window
// arithmetic — the target is <2% overhead.
func ProfileOverhead(cfg Config, w io.Writer) error {
	const sf = 10
	ds, err := cfg.dataset(sf)
	if err != nil {
		return err
	}
	price := ds.Lineitem.MustColumn("l_extendedprice").I32()
	disc := ds.Lineitem.MustColumn("l_discount").I32()

	rounds := 30
	if cfg.Quick {
		rounds = 8
	}
	const conc = 8

	measure := func(profiled bool) (time.Duration, int64, error) {
		eng := adamant.NewEngine(adamant.WithMaxConcurrent(4)).
			WithTelemetry(adamant.TelemetryConfig{})
		if profiled {
			eng.WithProfile(adamant.ProfileConfig{}).WithSLO(time.Hour, 0.99)
		}
		gpu, err := eng.Plug(adamant.RTX2080Ti, adamant.CUDA)
		if err != nil {
			return 0, 0, err
		}
		opts := adamant.ExecOptions{Model: adamant.FourPhasePipelined, ChunkElems: cfg.chunkElems(), Tenant: "bench"}
		start := time.Now()
		var queries int64
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			errs := make(chan error, conc)
			for s := 0; s < conc; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := eng.Execute(profilePlan(eng, gpu, price, disc), opts); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				return 0, 0, err
			}
			queries += conc
		}
		return time.Since(start), queries, nil
	}

	cols := []string{"phase", "queries", "wall ms", "us/query", "overhead %"}
	off := NewTable("Profiler overhead: concurrent Q6 sessions, profiler+SLO off (wall milliseconds)", cols...)
	on := NewTable("Profiler overhead: concurrent Q6 sessions, profiler+SLO on (wall milliseconds)", cols...)
	off.Note = fmt.Sprintf("%d rounds x %d concurrent sessions, telemetry armed in both phases; ledger keyed by plan shape + tenant", rounds, conc)

	row := func(t *Table, phase string, wall time.Duration, queries int64, overhead string) {
		t.Add(phase, queries,
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Microsecond)/float64(queries)),
			overhead)
	}

	baseWall, baseQueries, err := measure(false)
	if err != nil {
		return err
	}
	row(off, "off", baseWall, baseQueries, "n/a")
	if err := cfg.reportPhase(w, "profile", "off", off); err != nil {
		return err
	}

	onWall, onQueries, err := measure(true)
	if err != nil {
		return err
	}
	row(on, "on", onWall, onQueries,
		fmt.Sprintf("%.2f", 100*(float64(onWall)-float64(baseWall))/float64(baseWall)))
	return cfg.reportPhase(w, "profile", "on", on)
}
