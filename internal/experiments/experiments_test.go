package experiments

import (
	"errors"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/heavysim"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
)

var quickCfg = Config{Quick: true, Seed: 7}

// TestAllGeneratorsRun smoke-runs every experiment in quick mode and checks
// that each emits its titled report.
func TestAllGeneratorsRun(t *testing.T) {
	titles := map[string]string{
		"table2":     "Table II",
		"fig3":       "Figure 3",
		"fig5":       "Figure 5",
		"fig6":       "Figure 6",
		"fig7":       "Figure 7",
		"fig9":       "Figure 9",
		"fig10":      "Figure 10",
		"fig11":      "Figure 11",
		"heavydb":    "HeavyDB",
		"chunksweep": "Chunk-size sweep",
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			gen, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := gen(quickCfg, &sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), titles[name]) {
				t.Errorf("output missing title %q:\n%s", titles[name], sb.String())
			}
			if strings.Count(sb.String(), "\n") < 5 {
				t.Error("suspiciously short report")
			}
		})
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).ratio() != 1.0/64 {
		t.Error("full ratio default")
	}
	if (Config{Quick: true}).ratio() != 1.0/1024 {
		t.Error("quick ratio default")
	}
	if (Config{Ratio: 0.5}).ratio() != 0.5 {
		t.Error("explicit ratio ignored")
	}
	if c := (Config{}).chunkElems(); c%64 != 0 || c <= 0 {
		t.Errorf("chunk = %d", c)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Add(1, "xyz")
	tb.Note = "note"
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "note", "a", "bb", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestFig11Shapes verifies the headline execution-model relations of
// Figure 11 directly, at a slightly larger scale than the smoke run:
//   - CUDA 4-phase beats chunked on every query, most on Q6;
//   - OpenCL's 4-phase on Q4 is slower than its chunked run (the paper's
//     pinned-memory pathology);
//   - OpenCL's 4-phase on Q6 is faster than its chunked run;
//   - CUDA beats OpenCL throughout.
func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration shapes need the larger profile")
	}
	cfg := Config{Ratio: 1.0 / 200, Seed: 7}
	ds, err := cfg.dataset(100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newRig(simhw.Setup1)
	if err != nil {
		t.Fatal(err)
	}

	run := func(q string, dev int, model exec.Model) vclock.Duration {
		t.Helper()
		var id = r.cuda
		if dev == 1 {
			id = r.oclGPU
		}
		g, err := tpch.BuildQuery(q, ds, id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(r.rt, g, exec.Options{Model: model, ChunkElems: cfg.chunkElems()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Elapsed
	}

	gains := map[string]float64{}
	for _, q := range []string{"Q3", "Q4", "Q6"} {
		chunked := run(q, 0, exec.Chunked)
		fourPP := run(q, 0, exec.FourPhasePipelined)
		if fourPP >= chunked {
			t.Errorf("CUDA %s: 4-phase (%v) should beat chunked (%v)", q, fourPP, chunked)
		}
		gains[q] = float64(chunked) / float64(fourPP)

		oclChunked := run(q, 1, exec.Chunked)
		if chunked >= oclChunked {
			t.Errorf("%s: CUDA chunked (%v) should beat OpenCL (%v)", q, chunked, oclChunked)
		}
	}
	if gains["Q6"] <= gains["Q3"] {
		t.Errorf("Q6 gain (%.2f) should exceed Q3's (%.2f)", gains["Q6"], gains["Q3"])
	}

	// The OpenCL inversions.
	q4Chunked := run("Q4", 1, exec.Chunked)
	q4FourPP := run("Q4", 1, exec.FourPhasePipelined)
	if q4FourPP <= q4Chunked {
		t.Errorf("OpenCL Q4: 4-phase (%v) should LOSE to chunked (%v)", q4FourPP, q4Chunked)
	}
	q6Chunked := run("Q6", 1, exec.Chunked)
	q6FourPP := run("Q6", 1, exec.FourPhasePipelined)
	if q6FourPP >= q6Chunked {
		t.Errorf("OpenCL Q6: 4-phase (%v) should beat chunked (%v)", q6FourPP, q6Chunked)
	}
}

// TestHeavyDBShapes verifies the baseline relations: hot is within ~2x of
// ADAMANT chunked, cold costs more than hot, ADAMANT's 4-phase beats both,
// and Q3 aborts.
func TestHeavyDBShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration shapes need the larger profile")
	}
	cfg := Config{Ratio: 1.0 / 200, Seed: 7}
	ds, err := cfg.dataset(100)
	if err != nil {
		t.Fatal(err)
	}
	r, err := newRig(simhw.Setup1)
	if err != nil {
		t.Fatal(err)
	}
	db := heavysim.New(heavysim.Config{GPU: &simhw.RTX2080Ti})

	if _, err := db.Run("Q3", ds); !errors.Is(err, heavysim.ErrOutOfMemory) {
		t.Errorf("Q3 should abort: %v", err)
	}

	for _, q := range []string{"Q4", "Q6"} {
		hres, err := db.Run(q, ds)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		g, err := tpch.BuildQuery(q, ds, r.cuda)
		if err != nil {
			t.Fatal(err)
		}
		chunked, err := exec.Run(r.rt, g, exec.Options{Model: exec.Chunked, ChunkElems: cfg.chunkElems()})
		if err != nil {
			t.Fatal(err)
		}
		g, _ = tpch.BuildQuery(q, ds, r.cuda)
		fourPP, err := exec.Run(r.rt, g, exec.Options{Model: exec.FourPhasePipelined, ChunkElems: cfg.chunkElems()})
		if err != nil {
			t.Fatal(err)
		}

		ratio := float64(hres.Elapsed) / float64(chunked.Stats.Elapsed)
		if ratio < 0.5 || ratio > 3 {
			t.Errorf("%s: HeavyDB hot (%v) should be comparable to chunked (%v)", q, hres.Elapsed, chunked.Stats.Elapsed)
		}
		if vclock.Duration(fourPP.Stats.Elapsed) >= hres.Elapsed {
			t.Errorf("%s: ADAMANT 4-phase (%v) should beat HeavyDB hot (%v)", q, fourPP.Stats.Elapsed, hres.Elapsed)
		}
		if hres.ColdElapsed <= hres.Elapsed {
			t.Errorf("%s: cold (%v) should exceed hot (%v)", q, hres.ColdElapsed, hres.Elapsed)
		}
	}
}
