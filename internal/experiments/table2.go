package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
)

// Table2 reproduces Table II: the two evaluation environments, as
// modelled.
func Table2(cfg Config, w io.Writer) error {
	t := NewTable("Table II: device information (simulated)",
		"", "Setup 1", "Setup 2")
	s1, s2 := simhw.Setup1, simhw.Setup2
	t.Add("CPU", s1.CPU.Name, s2.CPU.Name)
	t.Add("CPU cores", s1.CPU.Cores, s2.CPU.Cores)
	t.Add("CPU stream GB/s", s1.CPU.StreamGBps, s2.CPU.StreamGBps)
	t.Add("GPU", s1.GPU.Name, s2.GPU.Name)
	t.Add("GPU memory GiB", gib(s1.GPU.MemoryBytes), gib(s2.GPU.MemoryBytes))
	t.Add("GPU stream GB/s", s1.GPU.StreamGBps, s2.GPU.StreamGBps)
	t.Add("PCIe pinned GB/s (H2D)", s1.GPU.Links.H2DPinned.PeakGBps, s2.GPU.Links.H2DPinned.PeakGBps)
	t.Add("PCIe pageable GB/s (H2D)", s1.GPU.Links.H2DPageable.PeakGBps, s2.GPU.Links.H2DPageable.PeakGBps)
	t.Add("SDKs", "OpenCL, OpenMP, CUDA", "OpenCL, OpenMP, CUDA")
	t.Add("OpenCL kernel compile (startup)",
		startupCompile(&simhw.OpenCLGPUProfile), startupCompile(&simhw.OpenCLCPUProfile))
	return cfg.report(w, "table2", t)
}

// startupCompile reports the one-time runtime-compilation cost of the
// built-in kernel set under an SDK with a runtime compiler.
func startupCompile(p *simhw.SDKProfile) string {
	n := len(kernels.NewRegistry().Names())
	total := vclock.Duration(int64(p.CompileCost) * int64(n))
	return fmt.Sprintf("%d kernels, %s", n, total)
}
