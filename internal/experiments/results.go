package experiments

import (
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// Record is one machine-readable measurement extracted from an experiment
// table: the numeric cell at (row, column), keyed by the row's label cells
// and the column header, stamped with the run's seed and data ratio.
type Record struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
	Seed       uint64  `json:"seed"`
	Ratio      float64 `json:"ratio"`
	// Phase distinguishes measurements of the same metric taken at
	// different cache states ("cold", "warm"); empty for single-phase
	// experiments.
	Phase string `json:"phase,omitempty"`
}

// Collector accumulates Records across experiments so a bench run can emit
// machine-readable results alongside the text tables. Safe for concurrent
// use; a nil Collector discards everything.
type Collector struct {
	mu      sync.Mutex
	records []Record
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add appends one record.
func (c *Collector) Add(r Record) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
}

// AddTable extracts every numeric cell of the table into records. The
// metric name joins the row's leading label cells with the column header
// ("<label>/.../<header>"); the unit comes from the table title's
// parenthetical when it names a known unit, with per-cell overrides for
// ratio ("1.23x") and percentage cells.
func (c *Collector) AddTable(experiment string, t *Table, seed uint64, ratio float64) {
	c.AddTablePhase(experiment, "", t, seed, ratio)
}

// AddTablePhase is AddTable with a phase label ("cold", "warm") stamped on
// every extracted record, for experiments that measure the same metric at
// different cache states.
func (c *Collector) AddTablePhase(experiment, phase string, t *Table, seed uint64, ratio float64) {
	if c == nil {
		return
	}
	unit := tableUnit(t.Title)
	for _, row := range t.Rows {
		key, span := rowKey(row)
		for i, cell := range row {
			if i <= span {
				continue // part of the key
			}
			v, u, ok := parseCell(cell)
			if !ok {
				continue
			}
			header := ""
			if i < len(t.Header) {
				header = t.Header[i]
			}
			if u == "" {
				u = headerUnit(header)
			}
			if u == "" {
				u = unit
			}
			c.Add(Record{
				Experiment: experiment,
				Metric:     key + "/" + header,
				Value:      v,
				Unit:       u,
				Seed:       seed,
				Ratio:      ratio,
				Phase:      phase,
			})
		}
	}
}

// Records returns a copy of everything collected so far.
func (c *Collector) Records() []Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// WriteJSON emits the collected records as one indented JSON array.
func (c *Collector) WriteJSON(w io.Writer) error {
	records := c.Records()
	if records == nil {
		records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// rowKey joins the row's label cells and reports the index of the last one.
// Labels span from the first cell through the last non-empty cell that does
// not parse as a number — so a numeric label (a scale factor, a chunk size)
// sandwiched between text labels stays in the key, and only the trailing
// numeric cells become records. Empty cells are skipped.
func rowKey(row []string) (string, int) {
	span := 0
	for i, cell := range row {
		c := strings.TrimSpace(cell)
		if _, _, ok := parseCell(cell); !ok && c != "" && !isSentinel(c) {
			span = i
		}
	}
	var parts []string
	for _, cell := range row[:span+1] {
		if c := strings.TrimSpace(cell); c != "" && !isSentinel(c) {
			parts = append(parts, cell)
		}
	}
	return strings.Join(parts, "/"), span
}

// isSentinel reports non-numeric data placeholders ("inf", "n/a", "OOM")
// that mark an unmeasurable cell — they are data, not row labels, so they
// neither extend the label span nor produce records.
func isSentinel(cell string) bool {
	switch cell {
	case "inf", "n/a", "OOM":
		return true
	}
	return false
}

// knownUnits maps title parentheticals onto record units.
var knownUnits = map[string]string{
	"GB/s":               "GB/s",
	"GiB":                "GiB",
	"million values/s":   "Mvalues/s",
	"virtual seconds":    "s",
	"virtual ms":         "ms",
	"simulated":          "",
	"chunked execution":  "",
	"operator-at-a-time": "",
}

// headerUnit recognizes an explicit unit in a column header ("elapsed s",
// "peak device MiB", "SF100 (GiB)", "overhead %"). Only standalone unit
// tokens count: sweep-descriptor headers ("4MiB", "sel10%", "2^8 groups")
// describe the measurement point, not the value's unit, and fall through
// to the table-wide unit.
func headerUnit(header string) string {
	for _, f := range strings.Fields(header) {
		switch strings.Trim(f, "()") {
		case "GB/s":
			return "GB/s"
		case "Mval/s", "Mvalues/s":
			return "Mvalues/s"
		case "GiB":
			return "GiB"
		case "MiB":
			return "MiB"
		case "ms":
			return "ms"
		case "s":
			return "s"
		case "%":
			return "%"
		case "chunks", "launches":
			return "count"
		}
	}
	return ""
}

// tableUnit extracts a unit from the table title's parentheticals, e.g.
// "... bandwidth (GB/s) by SDK" yields "GB/s". Non-unit parentheticals
// ("Figure 9(c)", "(simulated)") are skipped.
func tableUnit(title string) string {
	for rest := title; ; {
		open := strings.Index(rest, "(")
		if open < 0 {
			return ""
		}
		rest = rest[open+1:]
		close := strings.Index(rest, ")")
		if close < 0 {
			return ""
		}
		if u, ok := knownUnits[rest[:close]]; ok && u != "" {
			return u
		}
		rest = rest[close+1:]
	}
}

// parseCell interprets a table cell as a number, handling the report
// helpers' suffixed forms: "1.23x" (speedup ratio) and "45%" carry their
// own units; "inf", "n/a", "OOM" and text cells do not parse.
func parseCell(s string) (value float64, unit string, ok bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", false
	}
	suffix := ""
	switch {
	case strings.HasSuffix(s, "x") && strings.Contains(s, "."):
		// ratioStr output ("1.23x") always carries a decimal point;
		// "1x"/"16x" sweep labels do not and stay labels.
		suffix = "x"
	case strings.HasSuffix(s, "%"):
		suffix = "%"
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, suffix), 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		// ParseFloat accepts "inf"/"NaN", which JSON cannot encode.
		return 0, "", false
	}
	return v, suffix, true
}
