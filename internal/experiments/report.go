package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Table is one report: a titled grid of rows, printed aligned.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable starts a report with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo prints the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// seconds formats a virtual duration as fractional seconds.
func seconds(d vclock.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

// millis formats a virtual duration as milliseconds.
func millis(d vclock.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds()*1e3)
}

// gbps formats a bandwidth given bytes and a duration.
func gbps(bytes int64, d vclock.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(bytes)/float64(d))
}

// mops formats element throughput in millions of values per second.
func mops(n int, d vclock.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1f", float64(n)/d.Seconds()/1e6)
}

// gib formats a byte count in GiB.
func gib(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<30))
}

// ratioStr formats a speedup ratio.
func ratioStr(num, den vclock.Duration) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(num)/float64(den))
}
