package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// FuseSpeedup measures operator fusion on Q6 at SF 100 on CUDA: the same
// plan executed unfused (eight kernel launches plus bitmap and gathered
// intermediates bounced through device memory) and fused (one single-pass
// kernel over the four base columns), under every execution model. The
// eliminated materialization traffic is the same effect behind the paper's
// Figure 11 gap to HeavyDB, whose JIT-compiled queries run exactly such
// fused kernels; here the fused path closes that gap inside the ADAMANT
// primitive framework itself.
func FuseSpeedup(cfg Config, w io.Writer) error {
	const sf = 100
	ds, err := cfg.dataset(sf)
	if err != nil {
		return err
	}

	models := []struct {
		label string
		model exec.Model
	}{
		{"oaat", exec.OperatorAtATime},
		{"chunked", exec.Chunked},
		{"pipelined", exec.Pipelined},
		{"4p-chunked", exec.FourPhaseChunked},
		{"4p-pipelined", exec.FourPhasePipelined},
	}

	unfused := NewTable("Fusion off: Q6 as an eight-primitive chain (virtual seconds)",
		"query", "SF", "model", "elapsed s", "kernels")
	fused := NewTable("Fusion on: Q6 as one single-pass fused kernel (virtual seconds)",
		"query", "SF", "model", "elapsed s", "kernels", "speedup")
	unfused.Note = fmt.Sprintf("data scaled by %.5f; chunk %d values", cfg.ratio(), cfg.chunkElems())

	for _, m := range models {
		r, err := newRig(simhw.Setup1)
		if err != nil {
			return err
		}
		var elapsed [2]vclock.Duration
		var launches [2]int64
		for i, doFuse := range []bool{false, true} {
			g, err := tpch.BuildQuery("Q6", ds, r.cuda)
			if err != nil {
				return err
			}
			if doFuse {
				g = graph.Fuse(g)
			}
			res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{
				Model: m.model, ChunkElems: cfg.chunkElems(),
			})
			if err != nil {
				return err
			}
			elapsed[i] = res.Stats.Elapsed
			launches[i] = res.Stats.Launches
		}
		unfused.Add("Q6", sf, m.label, seconds(elapsed[0]), launches[0])
		fused.Add("Q6", sf, m.label, seconds(elapsed[1]), launches[1],
			ratioStr(elapsed[0], elapsed[1]))
	}

	if err := cfg.reportPhase(w, "fuse", "unfused", unfused); err != nil {
		return err
	}
	if err := cfg.reportPhase(w, "fuse", "fused", fused); err != nil {
		return err
	}
	return fuseHostPhase(cfg, w)
}

// fuseHostPhase wall-clock times the actual host kernels on a Q6-shaped
// workload: the unfused nine-launch primitive sequence against one fused
// single-pass launch, best of three rounds each. This is the real-silicon
// counterpart of the virtual-time tables above (and of BenchmarkFusedQ6 in
// internal/kernels): no simulated transfers, just the kernel loops.
func fuseHostPhase(cfg Config, w io.Writer) error {
	rows := 1 << 20
	if cfg.Quick {
		rows = 1 << 17
	}
	ship, disc, qty, price := fuseHostColumns(rows, cfg.Seed)
	reg := kernels.NewRegistry()
	lookup := func(name string) (*kernels.Kernel, error) { return reg.Lookup(name) }

	// Unfused: filter x3, and x2, materialize x2, map, agg — with the
	// intermediate buffers the chain bounces through, allocated up front
	// so the timing covers kernel work.
	filter, err := lookup("filter_bitmap_i32")
	if err != nil {
		return err
	}
	and, err := lookup("bitmap_and")
	if err != nil {
		return err
	}
	mat, err := lookup("materialize_bitmap_i32")
	if err != nil {
		return err
	}
	mul, err := lookup("map_mul_i32_i64")
	if err != nil {
		return err
	}
	agg, err := lookup("agg_block_i64")
	if err != nil {
		return err
	}
	fusedK, err := lookup("fused_filter_agg")
	if err != nil {
		return err
	}
	ctx := &kernels.Ctx{}
	bm1 := vec.New(vec.Bits, rows)
	bm2 := vec.New(vec.Bits, rows)
	bm3 := vec.New(vec.Bits, rows)
	bmA := vec.New(vec.Bits, rows)
	bmB := vec.New(vec.Bits, rows)
	matPrice := make([]int32, rows)
	matDisc := make([]int32, rows)
	revenue := make([]int64, rows)
	count := vec.New(vec.Int64, 1)
	unfusedRun := func() (int64, error) {
		steps := []struct {
			k      *kernels.Kernel
			args   []vec.Vector
			params []int64
		}{
			{filter, []vec.Vector{ship, bm1}, []int64{int64(kernels.CmpBetween), 1000, 1364}},
			{filter, []vec.Vector{disc, bm2}, []int64{int64(kernels.CmpBetween), 5, 7}},
			{filter, []vec.Vector{qty, bm3}, []int64{int64(kernels.CmpLt), 24, 0}},
			{and, []vec.Vector{bm1, bm2, bmA}, nil},
			{and, []vec.Vector{bmA, bm3, bmB}, nil},
			{mat, []vec.Vector{price, bmB, vec.FromInt32(matPrice), count}, nil},
			{mat, []vec.Vector{disc, bmB, vec.FromInt32(matDisc), count}, nil},
		}
		for _, s := range steps {
			if err := s.k.Fn(ctx, s.args, s.params); err != nil {
				return 0, err
			}
		}
		n := int(count.I64()[0])
		rev := vec.FromInt64(revenue[:n])
		if err := mul.Fn(ctx, []vec.Vector{vec.FromInt32(matPrice[:n]), vec.FromInt32(matDisc[:n]), rev}, nil); err != nil {
			return 0, err
		}
		acc := vec.New(vec.Int64, 1)
		if err := agg.Fn(ctx, []vec.Vector{rev, acc}, []int64{int64(kernels.AggSum)}); err != nil {
			return 0, err
		}
		return acc.I64()[0], nil
	}
	fusedRun := func() (int64, error) {
		acc := vec.New(vec.Int64, 1)
		params := []int64{
			3,
			0, int64(kernels.CmpBetween), 1000, 1364,
			1, int64(kernels.CmpBetween), 5, 7,
			2, int64(kernels.CmpLt), 24, 0,
			kernels.FusedMapMul, 3, 1, 0,
			int64(kernels.AggSum),
		}
		if err := fusedK.Fn(ctx, []vec.Vector{ship, disc, qty, price, acc}, params); err != nil {
			return 0, err
		}
		return acc.I64()[0], nil
	}

	best := func(run func() (int64, error)) (int64, time.Duration, error) {
		var val int64
		var min time.Duration
		for r := 0; r < 3; r++ {
			start := time.Now()
			v, err := run()
			d := time.Since(start)
			if err != nil {
				return 0, 0, err
			}
			if r == 0 || d < min {
				val, min = v, d
			}
		}
		return val, min, nil
	}
	uval, ud, err := best(unfusedRun)
	if err != nil {
		return err
	}
	fval, fd, err := best(fusedRun)
	if err != nil {
		return err
	}
	if uval != fval {
		return fmt.Errorf("fuse host phase: fused revenue %d != unfused %d", fval, uval)
	}

	host := NewTable("Host kernels: Q6 chain wall time, best of 3 (real milliseconds)",
		"rows", "unfused ms", "fused ms", "speedup")
	host.Note = "single-pass fused kernel vs the nine-launch primitive sequence on the CPU"
	host.Add(rows,
		fmt.Sprintf("%.3f", float64(ud.Nanoseconds())/1e6),
		fmt.Sprintf("%.3f", float64(fd.Nanoseconds())/1e6),
		fmt.Sprintf("%.2fx", float64(ud)/float64(fd)))
	return cfg.reportPhase(w, "fuse", "host", host)
}

// fuseHostColumns fills four Q6-shaped int32 columns (shipdate over a
// multi-year span, discount 0..10, quantity 1..50, price in the thousands)
// with a seeded LCG; combined predicate selectivity lands near TPC-H Q6's
// ~2%.
func fuseHostColumns(rows int, seed uint64) (ship, disc, qty, price vec.Vector) {
	s := make([]int32, rows)
	d := make([]int32, rows)
	q := make([]int32, rows)
	p := make([]int32, rows)
	x := seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 33
	}
	for i := range s {
		s[i] = int32(next() % 2557)
		d[i] = int32(next() % 11)
		q[i] = int32(1 + next()%50)
		p[i] = int32(1000 + next()%99000)
	}
	return vec.FromInt32(s), vec.FromInt32(d), vec.FromInt32(q), vec.FromInt32(p)
}
