package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
)

// CacheWarm measures the device buffer pool on a repeated workload: Q6 at
// SF 100 on CUDA, run three times on the same runtime with the pool
// enabled. The first run is cold — every base column ships host-to-device
// and lands in the pool; the later runs are warm — base columns resolve to
// cached device buffers and the H2D traffic drops to the result path. The
// hot-vs-cold gap is the same effect Figure 11 (right) reports for the
// HeavyDB baseline's "w transfer" vs "w/o transfer" columns, reproduced
// here on the ADAMANT stack itself.
func CacheWarm(cfg Config, w io.Writer) error {
	const sf = 100
	ds, err := cfg.dataset(sf)
	if err != nil {
		return err
	}

	models := []struct {
		label string
		model exec.Model
	}{
		{"oaat", exec.OperatorAtATime},
		{"chunked", exec.Chunked},
		{"4p-pipelined", exec.FourPhasePipelined},
	}

	cold := NewTable("Cache cold: first Q6 run, pool empty (virtual seconds)",
		"query", "SF", "model", "elapsed s", "H2D MiB")
	warm := NewTable("Cache warm: third Q6 run, base columns pooled (virtual seconds)",
		"query", "SF", "model", "elapsed s", "H2D MiB", "speedup vs cold", "hit %")
	cold.Note = fmt.Sprintf("data scaled by %.5f; chunk %d values; 1 GiB pool, cost-aware eviction", cfg.ratio(), cfg.chunkElems())

	for _, m := range models {
		r, err := newRig(simhw.Setup1)
		if err != nil {
			return err
		}
		pool := bufpool.New(bufpool.Config{
			Capacity: 1 << 30,
			Policy:   bufpool.CostAware,
			Device:   r.rt.Device,
		})

		var elapsed [3]vclock.Duration
		var h2d [3]int64
		for i := range elapsed {
			g, err := tpch.BuildQuery("Q6", ds, r.cuda)
			if err != nil {
				return err
			}
			res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{
				Model: m.model, ChunkElems: cfg.chunkElems(), Pool: pool,
			})
			if err != nil {
				return err
			}
			elapsed[i] = res.Stats.Elapsed
			h2d[i] = res.Stats.H2DBytes
		}
		st := pool.Stats()
		cold.Add("Q6", sf, m.label, seconds(elapsed[0]), mib(h2d[0]))
		warm.Add("Q6", sf, m.label, seconds(elapsed[2]), mib(h2d[2]),
			ratioStr(elapsed[0], elapsed[2]), fmt.Sprintf("%.0f%%", 100*st.HitRatio()))
	}

	if err := cfg.reportPhase(w, "cache", "cold", cold); err != nil {
		return err
	}
	return cfg.reportPhase(w, "cache", "warm", warm)
}

// mib renders a byte count in MiB for a table cell.
func mib(b int64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}
