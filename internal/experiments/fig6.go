package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
)

// Fig6Timelines reproduces Figure 6's execution-flow diagrams from real
// runs: the copy and compute engine timelines of Q6 under (a) naive chunked
// execution (strictly serial), (b) pipelined execution (transfers overlap
// kernels), and (c) 4-phase pipelined execution (pinned transfers, shorter
// copy spans, same overlap). Each row is one engine; filled spans are busy
// time.
func Fig6Timelines(cfg Config, w io.Writer) error {
	ds, err := cfg.dataset(1)
	if err != nil {
		return err
	}
	// Eight chunks make the copy/compute interleaving visible.
	chunk := ds.Lineitem.Rows()/8 + 64

	for _, model := range []exec.Model{exec.Chunked, exec.Pipelined, exec.FourPhasePipelined} {
		rt := hub.NewRuntime()
		d := simcuda.New(&simhw.RTX2080Ti, nil)
		id, err := rt.Register(d)
		if err != nil {
			return err
		}
		log := &device.EventLog{}
		d.SetEventLog(log)

		g, err := tpch.BuildQ6(ds, id)
		if err != nil {
			return err
		}
		res, err := exec.RunContext(cfg.Context(), rt, g, exec.Options{Model: model, ChunkElems: chunk})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "\n== Figure 6: %v — Q6 engine timelines (elapsed %v) ==\n", model, res.Stats.Elapsed)
		device.RenderTimeline(w, log.Events(), 100)
	}
	return nil
}
