package experiments

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// prof profiles individual primitives on one device, the way §V-A measures
// them: data resident, per-kernel timing from the device's own events.
type prof struct {
	d device.Device
}

func newProf(d device.Device) (*prof, error) {
	if err := d.Initialize(); err != nil {
		return nil, err
	}
	return &prof{d: d}, nil
}

// place puts a host vector on the device (outside the timed region).
func (p *prof) place(v vec.Vector) (devmem.BufferID, error) {
	id, _, err := p.d.PlaceData(v, p.d.CopyEngine().Avail())
	return id, err
}

// alloc reserves a device buffer (outside the timed region).
func (p *prof) alloc(t vec.Type, n int) (devmem.BufferID, error) {
	id, _, err := p.d.PrepareMemory(t, n, p.d.CopyEngine().Avail())
	return id, err
}

// run executes one kernel and returns its virtual duration (launch
// overhead included, as a wall-clock measurement would).
func (p *prof) run(kernel string, args []devmem.BufferID, params ...int64) (vclock.Duration, error) {
	start := p.d.ComputeEngine().Avail()
	end, err := p.d.Execute(device.ExecRequest{Kernel: kernel, Args: args, Params: params}, start)
	if err != nil {
		return 0, err
	}
	return end.Sub(start), nil
}

// free releases buffers, ignoring already-freed views.
func (p *prof) free(ids ...devmem.BufferID) {
	for _, id := range ids {
		_ = p.d.DeleteMemory(id)
	}
}

// randomInt32 produces a deterministic pseudo-random column in [0, mod).
func randomInt32(n int, mod int32, seed uint64) vec.Vector {
	v := vec.New(vec.Int32, n)
	s := v.I32()
	state := seed ^ 0xD1B54A32D192ED03
	for i := range s {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		s[i] = int32(z % uint64(mod))
	}
	return v
}

// sequentialInt32 produces 0..n-1, a unique-key column for PK builds.
func sequentialInt32(n int) vec.Vector {
	v := vec.New(vec.Int32, n)
	s := v.I32()
	for i := range s {
		s[i] = int32(i)
	}
	return v
}
