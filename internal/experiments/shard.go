package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/shard"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
)

// stallDevice wall-clock-stalls every kernel launch — the host-time
// straggler a wedged shard would be. Virtual timings stay untouched, so
// only wall time (and the hedging that bounds it) changes.
type stallDevice struct {
	device.Device
	delay time.Duration
}

func (s *stallDevice) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	time.Sleep(s.delay)
	return s.Device.Execute(req, ready)
}

// shardFleet builds n single-GPU shards, each its own runtime with an
// optional buffer pool; stall, when nonzero, brakes the last shard.
func shardFleet(n int, pooled bool, stall time.Duration) ([]shard.Shard, error) {
	shards := make([]shard.Shard, n)
	for i := range shards {
		rt := hub.NewRuntime()
		var d device.Device = simcuda.New(&simhw.Setup1.GPU, nil)
		if stall > 0 && i == n-1 {
			d = &stallDevice{Device: d, delay: stall}
		}
		if _, err := rt.Register(d); err != nil {
			return nil, err
		}
		var pool *bufpool.Manager
		if pooled {
			pool = bufpool.New(bufpool.Config{
				Capacity: 1 << 30,
				Policy:   bufpool.CostAware,
				Device:   rt.Device,
			})
		}
		shards[i] = shard.Shard{Name: fmt.Sprintf("shard%d", i), RT: rt, Pool: pool}
	}
	return shards, nil
}

// ShardScale measures scatter/gather scale-out: Q6 at SF 100 over fleets
// of 1, 2, 4 and 8 runtime shards, cold (pools empty) and warm (base
// columns pooled per shard after two priming runs). Virtual elapsed time
// is the max over partitions, so throughput grows with the fleet; the
// straggler phase then brakes one shard in host time and shows hedged
// retries bounding the wall-clock tail the straggler would otherwise set.
func ShardScale(cfg Config, w io.Writer) error {
	const sf = 100
	ds, err := cfg.dataset(sf)
	if err != nil {
		return err
	}
	rows := ds.Lineitem.Rows()

	cold := NewTable("Shard scale-out cold: first Q6 run per fleet, pools empty (virtual seconds)",
		"query", "SF", "shards", "elapsed s", "speedup vs 1", "Mrows/s")
	warm := NewTable("Shard scale-out warm: third Q6 run, base columns pooled per shard",
		"query", "SF", "shards", "elapsed s", "speedup vs 1", "Mrows/s")
	cold.Note = fmt.Sprintf("data scaled by %.5f; chunk %d values; partitions merge exactly (SUM re-aggregated)",
		cfg.ratio(), cfg.chunkElems())

	var coldBase, warmBase vclock.Duration
	for _, n := range []int{1, 2, 4, 8} {
		shards, err := shardFleet(n, true, 0)
		if err != nil {
			return err
		}
		coord, err := shard.New(shard.Config{Shards: shards})
		if err != nil {
			return err
		}
		var elapsed [3]vclock.Duration
		for i := range elapsed {
			g, err := tpch.BuildQuery("Q6", ds, 0)
			if err != nil {
				return err
			}
			res, scattered, err := coord.Run(cfg.Context(), g, exec.Options{
				Model: exec.Chunked, ChunkElems: cfg.chunkElems(),
			}, 0)
			if err != nil {
				return err
			}
			if !scattered {
				return fmt.Errorf("experiments: scatter planner declined Q6")
			}
			elapsed[i] = res.Stats.Elapsed
		}
		coord.Drain()
		if n == 1 {
			coldBase, warmBase = elapsed[0], elapsed[2]
		}
		cold.Add("Q6", sf, n, seconds(elapsed[0]), ratioStr(coldBase, elapsed[0]), mops(rows, elapsed[0]))
		warm.Add("Q6", sf, n, seconds(elapsed[2]), ratioStr(warmBase, elapsed[2]), mops(rows, elapsed[2]))
	}
	if err := cfg.reportPhase(w, "shard", "cold", cold); err != nil {
		return err
	}
	if err := cfg.reportPhase(w, "shard", "warm", warm); err != nil {
		return err
	}

	// Straggler cell: 4 shards, the last one stalling every launch in host
	// time. Unhedged, the query's wall clock is gated on the straggler;
	// hedged, the duplicate attempt on an idle healthy shard wins. The cell
	// runs on a 16x smaller slice so the injected stall dominates the
	// healthy shards' own host time and the hedge threshold stays sharp —
	// the effect under test is the race, not kernel throughput.
	sds, err := tpch.Generate(tpch.Config{SF: sf, Ratio: cfg.ratio() / 16, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	stall := 50 * time.Millisecond
	if cfg.Quick {
		stall = 15 * time.Millisecond
	}
	strag := NewTable("Shard straggler: 4 shards, one stalling every launch in host time (wall milliseconds)",
		"query", "mode", "wall ms", "hedge wins")
	strag.Note = "virtual elapsed is identical in both modes; hedging only bounds host wall time"
	for _, mode := range []struct {
		label string
		hedge shard.HedgePolicy
	}{
		{"unhedged", shard.HedgePolicy{}},
		{"hedged", shard.HedgePolicy{Enabled: true, MinDelay: time.Millisecond, Poll: 200 * time.Microsecond}},
	} {
		shards, err := shardFleet(4, false, stall)
		if err != nil {
			return err
		}
		coord, err := shard.New(shard.Config{Shards: shards, Hedge: mode.hedge})
		if err != nil {
			return err
		}
		g, err := tpch.BuildQuery("Q6", sds, 0)
		if err != nil {
			return err
		}
		start := time.Now()
		res, scattered, err := coord.Run(cfg.Context(), g, exec.Options{
			Model: exec.OperatorAtATime,
		}, 0)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		if !scattered {
			return fmt.Errorf("experiments: scatter planner declined Q6")
		}
		var wins int
		for _, s := range res.Stats.Shards {
			if s.HedgeWon {
				wins++
			}
		}
		coord.Drain()
		strag.Add("Q6", mode.label, fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)), wins)
	}
	return cfg.reportPhase(w, "shard", "straggler", strag)
}
