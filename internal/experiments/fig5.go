package experiments

import (
	"io"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vec"
)

// Fig5MapReduce reproduces Figure 5: throughput of the MAP and AGG_BLOCK
// (reduce) primitives over 2^28 random integers on every driver of both
// setups. Expected shape: the simple streaming primitives are largely
// SDK-insensitive per device class, with GPUs far above CPUs.
func Fig5MapReduce(cfg Config, w io.Writer) error {
	n := 1 << 28
	if cfg.Quick {
		n = 1 << 22
	}

	t := NewTable("Figure 5: map and reduce throughput (million values/s), 2^28 ints",
		"setup", "driver", "map Mval/s", "reduce Mval/s")

	for _, setup := range []simhw.Setup{simhw.Setup1, simhw.Setup2} {
		r, err := newRig(setup)
		if err != nil {
			return err
		}
		for _, drv := range r.drivers() {
			d, err := r.rt.Device(drv.ID)
			if err != nil {
				return err
			}
			p, err := newProf(d)
			if err != nil {
				return err
			}
			a := randomInt32(n, 1<<20, cfg.Seed)
			bufA, err := p.place(a)
			if err != nil {
				return err
			}
			bufB, err := p.place(randomInt32(n, 1<<20, cfg.Seed+1))
			if err != nil {
				return err
			}
			out, err := p.alloc(vec.Int64, n)
			if err != nil {
				return err
			}
			mapDur, err := p.run("map_mul_i32_i64", []devmem.BufferID{bufA, bufB, out})
			if err != nil {
				return err
			}
			scalar, err := p.alloc(vec.Int64, 1)
			if err != nil {
				return err
			}
			redDur, err := p.run("agg_block_i32", []devmem.BufferID{bufA, scalar}, int64(kernels.AggSum))
			if err != nil {
				return err
			}
			t.Add(setup.Name, d.Info().Name, mops(n, mapDur), mops(n, redDur))
			p.free(bufA, bufB, out, scalar)
		}
	}
	return cfg.report(w, "fig5", t)
}
