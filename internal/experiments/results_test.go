package experiments

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestCollectorAddTable(t *testing.T) {
	tb := NewTable("demo throughput (GB/s)", "gpu", "sdk", "4MiB", "64MiB")
	tb.Add("2080 Ti", "CUDA", "10.5", "12.0")
	tb.Add("2080 Ti", "OpenCL", "8.1", "inf")
	c := NewCollector()
	c.AddTable("demo", tb, 42, 0.25)

	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (inf cell skipped): %+v", len(recs), recs)
	}
	first := recs[0]
	if first.Experiment != "demo" || first.Metric != "2080 Ti/CUDA/4MiB" {
		t.Errorf("bad keying: %+v", first)
	}
	if first.Value != 10.5 || first.Unit != "GB/s" || first.Seed != 42 || first.Ratio != 0.25 {
		t.Errorf("bad record fields: %+v", first)
	}
}

func TestCollectorNumericLabelInKey(t *testing.T) {
	// A numeric label (scale factor) between text labels stays in the key.
	tb := NewTable("models (virtual seconds)", "setup", "query", "SF", "driver", "chunked")
	tb.Add("Setup 1", "Q6", 100, "CUDA", "1.25")
	c := NewCollector()
	c.AddTable("fig11", tb, 1, 1)
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1: %+v", len(recs), recs)
	}
	if recs[0].Metric != "Setup 1/Q6/100/CUDA/chunked" {
		t.Errorf("metric = %q", recs[0].Metric)
	}
	if recs[0].Unit != "s" {
		t.Errorf("unit = %q, want s (from title)", recs[0].Unit)
	}
}

func TestCollectorCellAndHeaderUnits(t *testing.T) {
	tb := NewTable("sweep (virtual seconds)", "chunk", "label", "elapsed s", "chunks", "peak device MiB", "speedup")
	tb.Add(1024, "1x", "0.5", 7, "3.2", "1.40x")
	c := NewCollector()
	c.AddTable("sweep", tb, 1, 1)
	units := map[string]string{}
	for _, r := range c.Records() {
		units[r.Metric] = r.Unit
	}
	want := map[string]string{
		"1024/1x/elapsed s":       "s",
		"1024/1x/chunks":          "count",
		"1024/1x/peak device MiB": "MiB",
		"1024/1x/speedup":         "x",
	}
	for m, u := range want {
		if units[m] != u {
			t.Errorf("unit[%s] = %q, want %q (all: %v)", m, units[m], u, units)
		}
	}
}

func TestCollectorWriteJSON(t *testing.T) {
	c := NewCollector()
	c.Add(Record{Experiment: "e", Metric: "m", Value: 1.5, Unit: "s", Seed: 7, Ratio: 0.5})
	var sb strings.Builder
	if err := c.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, sb.String())
	}
	if len(back) != 1 || back[0] != (Record{Experiment: "e", Metric: "m", Value: 1.5, Unit: "s", Seed: 7, Ratio: 0.5}) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestCollectorNil(t *testing.T) {
	var c *Collector
	c.Add(Record{})
	c.AddTable("e", NewTable("t", "a"), 0, 0)
	if c.Records() != nil {
		t.Error("nil collector should have no records")
	}
	var sb strings.Builder
	if err := c.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("nil collector JSON = %q, want []", sb.String())
	}
}

// TestQuickRunCollects runs one real experiment with a collector attached
// and checks records flow out stamped with the config's seed and ratio.
func TestQuickRunCollects(t *testing.T) {
	cfg := quickCfg
	cfg.Results = NewCollector()
	gen, err := Lookup("table2")
	if err != nil {
		t.Fatal(err)
	}
	if err := gen(cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	recs := cfg.Results.Records()
	if len(recs) == 0 {
		t.Fatal("no records collected from table2")
	}
	for _, r := range recs {
		if r.Experiment != "table2" || r.Seed != cfg.Seed || r.Ratio != cfg.ratio() {
			t.Errorf("bad stamping: %+v", r)
		}
	}
}
