package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/heavysim"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/vclock"
)

// fig11Models are the execution models Figure 11 compares.
var fig11Models = []exec.Model{exec.Chunked, exec.FourPhaseChunked, exec.FourPhasePipelined}

// Fig11Models reproduces Figure 11 (left): Q3, Q4, Q6 at larger scale
// factors under chunked vs 4-phase chunked vs 4-phase pipelined execution,
// for the OpenCL and CUDA GPU drivers. Expected shapes: 4-phase beats
// naive chunked by up to ~3x (best on Q6, worst on Q3); pipelining adds
// little over 4-phase chunked because transfer dominates; OpenCL's 4-phase
// on Q4 is ~2x *slower* than its chunked run (pinned re-mapping and
// per-chunk synchronization with nothing to hide), while CUDA still gains
// ~1.5x there; CUDA beats OpenCL throughout.
func Fig11Models(cfg Config, w io.Writer) error {
	sfs := []float64{100, 120, 140}
	if cfg.Quick {
		sfs = []float64{100}
	}

	t := NewTable("Figure 11: execution model comparison (virtual seconds)",
		"setup", "query", "SF", "driver", "chunked", "4p-chunked", "4p-pipelined", "best vs chunked")
	t.Note = fmt.Sprintf("data scaled by %.5f; chunk %d values (2^25 scaled)", cfg.ratio(), cfg.chunkElems())

	setups := []simhw.Setup{simhw.Setup1}
	if !cfg.Quick {
		// "This performance difference is subject to change with newer
		// GPUs" — include the A100 setup in the full profile.
		setups = append(setups, simhw.Setup2)
	}

	for _, setup := range setups {
		for _, sf := range sfs {
			ds, err := cfg.dataset(sf)
			if err != nil {
				return err
			}
			for _, q := range []string{"Q3", "Q4", "Q6"} {
				r, err := newRig(setup)
				if err != nil {
					return err
				}
				for _, dr := range []struct {
					label string
					id    device.ID
				}{
					{"OpenCL", r.oclGPU},
					{"CUDA", r.cuda},
				} {
					var times [3]vclock.Duration
					for i, model := range fig11Models {
						g, err := tpch.BuildQuery(q, ds, dr.id)
						if err != nil {
							return err
						}
						res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{Model: model, ChunkElems: cfg.chunkElems()})
						if err != nil {
							return err
						}
						times[i] = res.Stats.Elapsed
					}
					best := times[1]
					if times[2] < best {
						best = times[2]
					}
					t.Add(setup.Name, q, sf, dr.label, seconds(times[0]), seconds(times[1]), seconds(times[2]), ratioStr(times[0], best))
				}
			}
		}
	}
	return cfg.report(w, "fig11", t)
}

// Fig11HeavyDB reproduces Figure 11 (right): the HeavyDB baseline with and
// without transfer against ADAMANT's chunked and 4-phase models on CUDA at
// SF 100/120/140. Expected shapes: HeavyDB hot is comparable to chunked;
// ADAMANT gains up to ~2x over hot and ~4x over cold on Q4/Q6; HeavyDB
// aborts on Q3 because the in-place group-by buffer exceeds device memory.
func Fig11HeavyDB(cfg Config, w io.Writer) error {
	sfs := []float64{100, 120, 140}
	if cfg.Quick {
		sfs = []float64{100}
	}

	t := NewTable("Figure 11 (right): HeavyDB comparison (virtual seconds)",
		"query", "SF", "heavydb w transfer", "heavydb w/o transfer", "adamant chunked", "adamant 4p-pipelined")
	t.Note = "HeavyDB capacity checks use logical (unscaled) sizes; OOM marks the paper's Q3 abort"

	for _, sf := range sfs {
		ds, err := cfg.dataset(sf)
		if err != nil {
			return err
		}
		for _, q := range []string{"Q3", "Q4", "Q6"} {
			r, err := newRig(simhw.Setup1)
			if err != nil {
				return err
			}

			var cold, hot string
			db := heavysim.New(heavysim.Config{GPU: &simhw.RTX2080Ti})
			hres, err := db.Run(q, ds)
			switch {
			case errors.Is(err, heavysim.ErrOutOfMemory):
				cold, hot = "OOM", "OOM"
			case err != nil:
				return err
			default:
				cold, hot = seconds(hres.ColdElapsed), seconds(hres.Elapsed)
			}

			var ours [2]string
			for i, model := range []exec.Model{exec.Chunked, exec.FourPhasePipelined} {
				g, err := tpch.BuildQuery(q, ds, r.cuda)
				if err != nil {
					return err
				}
				res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{Model: model, ChunkElems: cfg.chunkElems()})
				if err != nil {
					return err
				}
				ours[i] = seconds(res.Stats.Elapsed)
			}
			t.Add(q, fmt.Sprintf("SF%g", sf), cold, hot, ours[0], ours[1])
		}
	}
	return cfg.report(w, "heavydb", t)
}
