package experiments

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// AutoPlan measures the cost-catalog auto planner against the full manual
// configuration matrix of the paper's Figures 9/10: Q6 at SF 1 under every
// (driver, execution model) cell by hand, then the same query auto-planned
// from a cold catalog (calibration probes only) and from a warm catalog
// (trained on the manual sweep's traces). The claim under test is the
// feedback loop closing: the warm planner should land within a few percent
// of the best hand-picked cell, and the cold planner should never pick a
// pathological one.
func AutoPlan(cfg Config, w io.Writer) error {
	const sf = 1
	ds, err := cfg.dataset(sf)
	if err != nil {
		return err
	}

	models := []struct {
		label string
		model exec.Model
	}{
		{"oaat", exec.OperatorAtATime},
		{"chunked", exec.Chunked},
		{"pipelined", exec.Pipelined},
		{"4p-chunked", exec.FourPhaseChunked},
		{"4p-pipelined", exec.FourPhasePipelined},
	}

	r, err := newRig(simhw.Setup1)
	if err != nil {
		return err
	}
	ids := []device.ID{r.cuda, r.oclGPU, r.oclCPU, r.omp}
	rows := int64(ds.Lineitem.Rows())

	// Manual sweep: every (driver, model) cell by hand, traces feeding the
	// warm catalog exactly as the engine's own feedback path would.
	warmCat := cost.New()
	manual := NewTable("Manual sweep: Q6 under every (driver, model) cell (virtual seconds)",
		"query", "SF", "driver", "model", "elapsed s")
	manual.Note = fmt.Sprintf("data scaled by %.5f; chunk %d values", cfg.ratio(), cfg.chunkElems())
	var best vclock.Duration
	bestCell := ""
	for _, drv := range r.drivers() {
		dev, err := r.rt.Device(drv.ID)
		if err != nil {
			return err
		}
		name := dev.Info().Name
		for _, m := range models {
			g, err := tpch.BuildQuery("Q6", ds, drv.ID)
			if err != nil {
				return err
			}
			rec := trace.NewRecorder()
			res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{
				Model: m.model, ChunkElems: cfg.chunkElems(), Recorder: rec,
			})
			if err != nil {
				return err
			}
			warmCat.ObserveSpans(rec.Spans())
			warmCat.ObserveQuery(m.model.String(), name, rows, res.Stats.Elapsed)
			if bestCell == "" || res.Stats.Elapsed < best {
				best = res.Stats.Elapsed
				bestCell = drv.Label + "/" + m.label
			}
			manual.Add("Q6", sf, drv.Label, m.label, seconds(res.Stats.Elapsed))
		}
	}
	if err := cfg.reportPhase(w, "auto", "manual", manual); err != nil {
		return err
	}

	// Cold: calibration probes only — the planner has never seen the query.
	coldCat := cost.New()
	if err := cost.Calibrate(r.rt, ids, coldCat); err != nil {
		return err
	}
	cold := NewTable("Auto, cold catalog: calibration probes only (virtual seconds)",
		"query", "model", "chunk", "device", "elapsed s", "vs best")
	cold.Note = fmt.Sprintf("best manual cell: %s at %s", bestCell, seconds(best))
	if err := runAutoCell(cfg, r, ds, coldCat, best, cold); err != nil {
		return err
	}
	if err := cfg.reportPhase(w, "auto", "cold", cold); err != nil {
		return err
	}

	// Warm: the manual sweep's own traces close the loop.
	warm := NewTable("Auto, warm catalog: trained on the manual sweep (virtual seconds)",
		"query", "model", "chunk", "device", "elapsed s", "vs best")
	warm.Note = fmt.Sprintf("best manual cell: %s at %s", bestCell, seconds(best))
	if err := runAutoCell(cfg, r, ds, warmCat, best, warm); err != nil {
		return err
	}
	return cfg.reportPhase(w, "auto", "warm", warm)
}

// runAutoCell plans Q6 from the catalog, executes the decision, and adds
// the row (with its ratio against the best manual cell) to the table.
func runAutoCell(cfg Config, r *rig, ds *tpch.Dataset, cat *cost.Catalog, best vclock.Duration, t *Table) error {
	ids := []device.ID{r.cuda, r.oclGPU, r.oclCPU, r.omp}
	g, err := tpch.BuildQuery("Q6", ds, r.cuda)
	if err != nil {
		return err
	}
	dec, err := cost.NewPlanner(cat).Plan(g, r.rt, cost.PlanOptions{
		Candidates: ids, MaxChunk: cfg.chunkElems(),
	})
	if err != nil {
		return err
	}
	res, err := exec.RunContext(cfg.Context(), r.rt, g, exec.Options{
		Model: dec.Model, ChunkElems: dec.ChunkElems,
		PlanNotes: dec.Notes, Replan: dec.Replan(),
	})
	if err != nil {
		return err
	}
	t.Add("Q6", dec.Model.String(), dec.ChunkElems, dec.Driver,
		seconds(res.Stats.Elapsed), ratioStr(res.Stats.Elapsed, best))
	return nil
}
