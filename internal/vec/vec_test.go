package vec

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	cases := []struct {
		typ   Type
		bytes int64
	}{
		{Int32, 40},
		{Int64, 80},
		{Float64, 80},
		{Bits, 8},
	}
	for _, c := range cases {
		v := New(c.typ, 10)
		if v.Type() != c.typ || v.Len() != 10 {
			t.Errorf("%s: type/len wrong", c.typ)
		}
		if v.Bytes() != c.bytes {
			t.Errorf("%s: bytes = %d, want %d", c.typ, v.Bytes(), c.bytes)
		}
		if !v.Valid() {
			t.Errorf("%s: not valid", c.typ)
		}
	}
	var zero Vector
	if zero.Valid() {
		t.Error("zero vector should be invalid")
	}
}

func TestFromWrappers(t *testing.T) {
	i32 := FromInt32([]int32{1, 2, 3})
	if i32.Len() != 3 || i32.I32()[1] != 2 {
		t.Error("FromInt32 broken")
	}
	i64 := FromInt64([]int64{4, 5})
	if i64.I64()[0] != 4 {
		t.Error("FromInt64 broken")
	}
	f64 := FromFloat64([]float64{1.5})
	if f64.F64()[0] != 1.5 {
		t.Error("FromFloat64 broken")
	}
	bm := FromBits([]uint64{0b101}, 3)
	if !bm.Bit(0) || bm.Bit(1) || !bm.Bit(2) {
		t.Error("FromBits broken")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on I64 of Int32 vector")
		}
	}()
	New(Int32, 4).I64()
}

func TestSliceViewsShareStorage(t *testing.T) {
	v := New(Int32, 100)
	v.I32()[50] = 99
	s := v.Slice(40, 60)
	if s.Len() != 20 {
		t.Fatalf("slice len = %d", s.Len())
	}
	if s.I32()[10] != 99 {
		t.Error("slice does not share storage")
	}
	s.I32()[0] = -1
	if v.I32()[40] != -1 {
		t.Error("write through slice not visible")
	}
}

func TestBitmapSliceAlignment(t *testing.T) {
	v := New(Bits, 256)
	v.SetBit(130, true)
	s := v.Slice(128, 256)
	if !s.Bit(2) {
		t.Error("aligned bitmap slice lost bit")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned bitmap slice")
		}
	}()
	v.Slice(3, 67)
}

func TestSliceBounds(t *testing.T) {
	v := New(Int32, 10)
	for _, c := range [][2]int{{-1, 5}, {5, 3}, {0, 11}} {
		func() {
			defer func() { recover() }()
			v.Slice(c[0], c[1])
			t.Errorf("slice [%d:%d) did not panic", c[0], c[1])
		}()
	}
}

func TestCopyCloneZero(t *testing.T) {
	a := FromInt32([]int32{1, 2, 3, 4})
	b := New(Int32, 4)
	if n := b.CopyFrom(a); n != 4 {
		t.Errorf("copied %d", n)
	}
	if !Equal(a, b) {
		t.Error("copy not equal")
	}
	c := a.Clone()
	c.I32()[0] = 9
	if a.I32()[0] != 1 {
		t.Error("clone shares storage")
	}
	a.Zero()
	for _, x := range a.I32() {
		if x != 0 {
			t.Error("zero failed")
		}
	}
	// Short destination copies the prefix.
	d := New(Int32, 2)
	if n := d.CopyFrom(c); n != 2 {
		t.Errorf("short copy = %d", n)
	}
}

func TestEqual(t *testing.T) {
	if Equal(FromInt32([]int32{1}), FromInt64([]int64{1})) {
		t.Error("different types equal")
	}
	if Equal(FromInt32([]int32{1}), FromInt32([]int32{1, 2})) {
		t.Error("different lengths equal")
	}
	a := New(Bits, 10)
	b := New(Bits, 10)
	a.SetBit(3, true)
	if Equal(a, b) {
		t.Error("different bitmaps equal")
	}
	b.SetBit(3, true)
	if !Equal(a, b) {
		t.Error("equal bitmaps unequal")
	}
}

func TestPopcountMasksTail(t *testing.T) {
	v := New(Bits, 70)
	words := v.Words()
	words[0] = ^uint64(0)
	words[1] = ^uint64(0) // bits 64..127, but only 64..69 are logical
	if got := v.Popcount(); got != 70 {
		t.Errorf("popcount = %d, want 70", got)
	}
}

func TestSetBitClear(t *testing.T) {
	v := New(Bits, 64)
	v.SetBit(5, true)
	v.SetBit(5, false)
	if v.Bit(5) {
		t.Error("clear failed")
	}
}

// Property: Popcount agrees with a naive per-bit count for random words.
func TestPopcountProperty(t *testing.T) {
	f := func(words []uint64, tail uint8) bool {
		if len(words) == 0 {
			return true
		}
		n := (len(words)-1)*64 + int(tail%64) + 1
		v := FromBits(words, n)
		naive := 0
		for i := 0; i < n; i++ {
			if v.Bit(i) {
				naive++
			}
		}
		return v.Popcount() == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: slicing then copying roundtrips arbitrary int32 data.
func TestSliceCopyRoundtripProperty(t *testing.T) {
	f := func(data []int32, loRaw, hiRaw uint16) bool {
		v := FromInt32(data)
		if len(data) == 0 {
			return true
		}
		lo := int(loRaw) % len(data)
		hi := lo + int(hiRaw)%(len(data)-lo+1)
		s := v.Slice(lo, hi)
		out := New(Int32, s.Len())
		out.CopyFrom(s)
		for i := 0; i < s.Len(); i++ {
			if out.I32()[i] != data[lo+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsBitCount(t *testing.T) {
	v := New(Bits, 130)
	if len(v.Words()) != 3 {
		t.Errorf("words = %d, want 3", len(v.Words()))
	}
	v.Words()[2] = 0b11
	if got := v.Popcount(); got != 2 {
		t.Errorf("popcount = %d, want 2", got)
	}
	_ = bits.OnesCount64 // anchor: the implementation must mask beyond 130
}

func TestTypeStrings(t *testing.T) {
	for typ, want := range map[Type]string{
		Int32: "int32", Int64: "int64", Float64: "float64", Bits: "bits",
	} {
		if typ.String() != want {
			t.Errorf("%d: %s != %s", typ, typ.String(), want)
		}
	}
	if Invalid.String() == "" || Type(99).String() == "" {
		t.Error("invalid types need diagnostics")
	}
}

func TestElemBytes(t *testing.T) {
	if Int32.ElemBytes() != 4 || Int64.ElemBytes() != 8 || Float64.ElemBytes() != 8 || Bits.ElemBytes() != 0 {
		t.Error("ElemBytes wrong")
	}
}

func TestFloat64AndInt64Paths(t *testing.T) {
	f := New(Float64, 4)
	f.F64()[2] = 1.5
	c := f.Clone()
	if !Equal(f, c) {
		t.Error("float clone not equal")
	}
	c.F64()[2] = 2.5
	if Equal(f, c) {
		t.Error("mutated float clone still equal")
	}
	f.Zero()
	if f.F64()[2] != 0 {
		t.Error("float zero failed")
	}
	s := f.Slice(1, 3)
	if s.Len() != 2 {
		t.Error("float slice")
	}
	dst := New(Float64, 2)
	dst.CopyFrom(s)

	i := FromInt64([]int64{7, 8, 9})
	i.Zero()
	if i.I64()[0] != 0 {
		t.Error("int64 zero failed")
	}
	i2 := i.Slice(1, 3)
	out := New(Int64, 2)
	out.CopyFrom(i2)
	if out.I64()[0] != 0 {
		t.Error("int64 slice copy")
	}
	if !Equal(i2, out) {
		t.Error("int64 equal")
	}
}

func TestBitsZeroCloneEqual(t *testing.T) {
	b := New(Bits, 130)
	b.SetBit(129, true)
	c := b.Clone()
	if !Equal(b, c) {
		t.Error("bits clone")
	}
	b.Zero()
	if b.Popcount() != 0 {
		t.Error("bits zero")
	}
}

func TestStringsAndDiagnostics(t *testing.T) {
	v := FromInt32([]int32{1, 2})
	if v.String() == "" {
		t.Error("vector diagnostics")
	}
	var zero Vector
	if Equal(zero, Vector{}) != true {
		t.Error("two invalid vectors are equal")
	}
}

func TestConstructionPanics(t *testing.T) {
	cases := []func(){
		func() { New(Invalid, 4) },
		func() { New(Int32, -1) },
		func() { FromBits([]uint64{}, 64) },
		func() { New(Bits, 64).Slice(3, 10) },
		func() { Vector{}.Slice(0, 0) },
		func() { New(Int32, 4).CopyFrom(New(Int64, 4)) },
		func() { New(Bits, 64).Bit(64) },
		func() { New(Bits, 64).SetBit(-1, true) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
	// Aligned views expose words without panic.
	v := New(Bits, 128)
	v.SetBit(64, true)
	if v.Slice(64, 128).Words()[0] != 1 {
		t.Error("aligned view words")
	}
}
