// Package vec implements the typed column vectors that flow between the
// host, the device drivers, and the primitive kernels.
//
// ADAMANT's primitives (Table I of the paper) exchange NUMERIC columns,
// BITMAPs, POSITION lists, PREFIX_SUMs and HASH_TABLEs. All of these are
// represented here as flat, densely packed vectors so that simulated device
// transfers can account for exact byte counts and kernels can run over
// contiguous memory. Vectors support zero-copy slicing, which the runtime
// uses to implement the create_chunk device interface.
package vec

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Type identifies the physical element type of a Vector.
type Type uint8

// Supported physical types.
const (
	Invalid Type = iota
	Int32        // 32-bit signed integers (the paper's column type)
	Int64        // 64-bit signed integers (aggregates, hash tables)
	Float64      // 64-bit floats (derived measures)
	Bits         // bit-packed boolean bitmap
)

// String returns the lowercase type name.
func (t Type) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case Bits:
		return "bits"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(t))
	}
}

// ElemBytes returns the storage size of one element; for Bits it returns 0
// (use Vector.Bytes for bitmap sizes).
func (t Type) ElemBytes() int64 {
	switch t {
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// Vector is a typed, contiguous column of values. The zero Vector is invalid;
// construct vectors with New or the From helpers. Slicing produces views that
// share the underlying storage.
type Vector struct {
	typ Type
	i32 []int32
	i64 []int64
	f64 []float64
	bit []uint64
	n   int // logical length in elements (bits for Bits vectors)
	off int // bit offset of element 0 inside bit[0]; always 0 for non-Bits
}

// New allocates a zeroed vector of n elements of type t.
func New(t Type, n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("vec: negative length %d", n))
	}
	v := Vector{typ: t, n: n}
	switch t {
	case Int32:
		v.i32 = make([]int32, n)
	case Int64:
		v.i64 = make([]int64, n)
	case Float64:
		v.f64 = make([]float64, n)
	case Bits:
		v.bit = make([]uint64, (n+63)/64)
	default:
		panic("vec: New with invalid type")
	}
	return v
}

// FromInt32 wraps an existing slice without copying.
func FromInt32(s []int32) Vector { return Vector{typ: Int32, i32: s, n: len(s)} }

// FromInt64 wraps an existing slice without copying.
func FromInt64(s []int64) Vector { return Vector{typ: Int64, i64: s, n: len(s)} }

// FromFloat64 wraps an existing slice without copying.
func FromFloat64(s []float64) Vector { return Vector{typ: Float64, f64: s, n: len(s)} }

// FromBits wraps bit-packed words holding n logical bits without copying.
func FromBits(words []uint64, n int) Vector {
	if need := (n + 63) / 64; len(words) < need {
		panic(fmt.Sprintf("vec: FromBits needs %d words for %d bits, got %d", need, n, len(words)))
	}
	return Vector{typ: Bits, bit: words, n: n}
}

// Type reports the element type. The zero Vector reports Invalid.
func (v Vector) Type() Type { return v.typ }

// Len reports the logical element count (bit count for bitmaps).
func (v Vector) Len() int { return v.n }

// Valid reports whether the vector was properly constructed.
func (v Vector) Valid() bool { return v.typ != Invalid }

// Bytes reports the storage footprint of the logical contents, which is what
// the simulated devices charge for transfers and allocations.
func (v Vector) Bytes() int64 {
	switch v.typ {
	case Int32:
		return 4 * int64(v.n)
	case Int64, Float64:
		return 8 * int64(v.n)
	case Bits:
		return 8 * int64((v.n+63)/64)
	default:
		return 0
	}
}

// DataID returns an opaque identity of the vector's backing storage: the
// address of its first backing element. Two vectors sharing the same
// storage at the same offset (the column itself, handed around by value)
// report the same non-zero value; vectors over distinct arrays report
// distinct values. The buffer-pool cache keys base columns by it, so
// re-generating a dataset (new arrays, same contents) can never alias a
// stale cache entry. Invalid and empty vectors report 0.
func (v Vector) DataID() uintptr {
	switch v.typ {
	case Int32:
		if len(v.i32) == 0 {
			return 0
		}
		return uintptr(unsafe.Pointer(unsafe.SliceData(v.i32)))
	case Int64:
		if len(v.i64) == 0 {
			return 0
		}
		return uintptr(unsafe.Pointer(unsafe.SliceData(v.i64)))
	case Float64:
		if len(v.f64) == 0 {
			return 0
		}
		return uintptr(unsafe.Pointer(unsafe.SliceData(v.f64)))
	case Bits:
		if len(v.bit) == 0 {
			return 0
		}
		return uintptr(unsafe.Pointer(unsafe.SliceData(v.bit)))
	default:
		return 0
	}
}

// I32 returns the backing int32 slice. It panics for other types.
func (v Vector) I32() []int32 {
	v.mustBe(Int32)
	return v.i32[:v.n]
}

// I64 returns the backing int64 slice. It panics for other types.
func (v Vector) I64() []int64 {
	v.mustBe(Int64)
	return v.i64[:v.n]
}

// F64 returns the backing float64 slice. It panics for other types.
func (v Vector) F64() []float64 {
	v.mustBe(Float64)
	return v.f64[:v.n]
}

// Words returns the backing bitmap words. It panics for other types. Only
// word-aligned views expose their words; see Slice.
func (v Vector) Words() []uint64 {
	v.mustBe(Bits)
	if v.off != 0 {
		panic("vec: Words on unaligned bitmap view")
	}
	return v.bit[:(v.n+63)/64]
}

func (v Vector) mustBe(t Type) {
	if v.typ != t {
		panic(fmt.Sprintf("vec: %s vector used as %s", v.typ, t))
	}
}

// Slice returns the view v[i:j). For Bits vectors i must be 64-bit aligned
// so the view can share packed words; the runtime only chunks at aligned
// boundaries.
func (v Vector) Slice(i, j int) Vector {
	if i < 0 || j < i || j > v.n {
		panic(fmt.Sprintf("vec: slice [%d:%d) of %d", i, j, v.n))
	}
	out := v
	out.n = j - i
	switch v.typ {
	case Int32:
		out.i32 = v.i32[i:]
	case Int64:
		out.i64 = v.i64[i:]
	case Float64:
		out.f64 = v.f64[i:]
	case Bits:
		if i%64 != 0 {
			panic(fmt.Sprintf("vec: bitmap slice offset %d not 64-aligned", i))
		}
		out.bit = v.bit[i/64:]
	default:
		panic("vec: slice of invalid vector")
	}
	return out
}

// CopyFrom copies min(v.Len, src.Len) elements from src into v and returns
// the number of elements copied. Types must match. For Bits vectors both
// must be word-aligned views.
func (v Vector) CopyFrom(src Vector) int {
	if v.typ != src.typ {
		panic(fmt.Sprintf("vec: copy %s into %s", src.typ, v.typ))
	}
	n := v.n
	if src.n < n {
		n = src.n
	}
	switch v.typ {
	case Int32:
		copy(v.i32[:n], src.i32[:n])
	case Int64:
		copy(v.i64[:n], src.i64[:n])
	case Float64:
		copy(v.f64[:n], src.f64[:n])
	case Bits:
		copy(v.bit[:(n+63)/64], src.bit[:(n+63)/64])
	default:
		panic("vec: copy of invalid vector")
	}
	return n
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := New(v.typ, v.n)
	out.CopyFrom(v)
	return out
}

// Zero clears all elements.
func (v Vector) Zero() {
	switch v.typ {
	case Int32:
		clear(v.i32[:v.n])
	case Int64:
		clear(v.i64[:v.n])
	case Float64:
		clear(v.f64[:v.n])
	case Bits:
		clear(v.bit[:(v.n+63)/64])
	}
}

// Bit reports bit i of a bitmap vector.
func (v Vector) Bit(i int) bool {
	v.mustBe(Bits)
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("vec: bit %d of %d", i, v.n))
	}
	return v.bit[i/64]&(1<<uint(i%64)) != 0
}

// SetBit sets bit i of a bitmap vector to b.
func (v Vector) SetBit(i int, b bool) {
	v.mustBe(Bits)
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("vec: bit %d of %d", i, v.n))
	}
	if b {
		v.bit[i/64] |= 1 << uint(i%64)
	} else {
		v.bit[i/64] &^= 1 << uint(i%64)
	}
}

// Popcount returns the number of set bits in a bitmap vector, masking any
// trailing bits beyond the logical length.
func (v Vector) Popcount() int {
	v.mustBe(Bits)
	total := 0
	full := v.n / 64
	for _, w := range v.bit[:full] {
		total += bits.OnesCount64(w)
	}
	if rem := v.n % 64; rem != 0 {
		total += bits.OnesCount64(v.bit[full] & (1<<uint(rem) - 1))
	}
	return total
}

// Equal reports whether two vectors have the same type, length and contents.
func Equal(a, b Vector) bool {
	if a.typ != b.typ || a.n != b.n {
		return false
	}
	switch a.typ {
	case Int32:
		for i := 0; i < a.n; i++ {
			if a.i32[i] != b.i32[i] {
				return false
			}
		}
	case Int64:
		for i := 0; i < a.n; i++ {
			if a.i64[i] != b.i64[i] {
				return false
			}
		}
	case Float64:
		for i := 0; i < a.n; i++ {
			if a.f64[i] != b.f64[i] {
				return false
			}
		}
	case Bits:
		for i := 0; i < a.n; i++ {
			if a.Bit(i) != b.Bit(i) {
				return false
			}
		}
	case Invalid:
		return true
	}
	return true
}

// String summarizes the vector for diagnostics.
func (v Vector) String() string {
	return fmt.Sprintf("vec{%s, n=%d, %dB}", v.typ, v.n, v.Bytes())
}
