// Package hub implements ADAMANT's data transfer hub and device registry
// (§III-C of the paper).
//
// The Runtime tracks every plugged co-processor. The router handles all
// SDK-to-SDK and device-to-device movement of intermediate results: when an
// edge's data lives on a different device than its consumer, the router
// either re-tags the memory object in place (transform_memory, the cheap
// path the paper's transformation interface enables) or bounces the data
// through the host (retrieve + place, the naive path), depending on whether
// the two endpoints share physical memory.
package hub

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Hub errors.
var ErrUnknownDevice = errors.New("hub: unknown device")

// Runtime is the registry of plugged devices, shared by the execution
// models. It is safe for concurrent use: many executors read the registry
// while sessions come and go, so the device slice is guarded and never
// aliased out.
type Runtime struct {
	mu      sync.RWMutex
	devices []device.Device
}

// NewRuntime returns an empty runtime.
func NewRuntime() *Runtime { return &Runtime{} }

// Register plugs a device into the runtime, initializing it, and returns
// its ID.
func (r *Runtime) Register(d device.Device) (device.ID, error) {
	if err := d.Initialize(); err != nil {
		return 0, fmt.Errorf("hub: initialize %s: %w", d.Info().Name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices = append(r.devices, d)
	return device.ID(len(r.devices) - 1), nil
}

// Device resolves an ID.
func (r *Runtime) Device(id device.ID) (device.Device, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(r.devices) {
		return nil, fmt.Errorf("%w: %v", ErrUnknownDevice, id)
	}
	return r.devices[id], nil
}

// Devices lists the registered devices in registration order. The returned
// slice is a copy: callers cannot observe (or race with) later Register
// calls through it.
func (r *Runtime) Devices() []device.Device {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]device.Device, len(r.devices))
	copy(out, r.devices)
	return out
}

// Route moves the first n elements of a buffer from one device to another
// and returns the destination buffer and its availability event. Same
// device is a no-op. Distinct devices bounce through the host: retrieve on
// the source's copy engine, place on the destination's; the two legs
// serialize, as a staged cudaMemcpyPeer-less transfer would.
func (r *Runtime) Route(src, dst device.ID, buf devmem.BufferID, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	if src == dst {
		return buf, ready, nil
	}
	sd, err := r.Device(src)
	if err != nil {
		return 0, ready, err
	}
	dd, err := r.Device(dst)
	if err != nil {
		return 0, ready, err
	}
	return RouteBetween(sd, dd, buf, n, ready)
}

// RouteBetween is Route over already-resolved device endpoints. Callers
// that wrap devices (fault injection, retry policies) route through the
// wrappers so both transfer legs see the same policies as every other
// device operation. The endpoints must be distinct devices; same-device
// short-circuiting is the caller's concern.
func RouteBetween(sd, dd device.Device, buf devmem.BufferID, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	b, err := sd.Buffer(buf)
	if err != nil {
		return 0, ready, err
	}
	if n < 0 {
		n = b.Data.Len()
	}
	host := vec.New(b.Data.Type(), n)
	mid, err := sd.RetrieveData(buf, 0, n, host, ready)
	if err != nil {
		return 0, ready, fmt.Errorf("hub: route retrieve from %s: %w", sd.Info().Name, err)
	}
	out, end, err := dd.PlaceData(host, mid)
	if err != nil {
		return 0, ready, fmt.Errorf("hub: route place to %s: %w", dd.Info().Name, err)
	}
	return out, end, nil
}
