package hub

import (
	"errors"
	"sync"
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vec"
)

func twoDeviceRuntime(t *testing.T) (*Runtime, device.ID, device.ID) {
	t.Helper()
	rt := NewRuntime()
	cpu, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	return rt, cpu, gpu
}

func TestRegisterAndResolve(t *testing.T) {
	rt, cpu, gpu := twoDeviceRuntime(t)
	if len(rt.Devices()) != 2 {
		t.Fatalf("devices = %d", len(rt.Devices()))
	}
	d, err := rt.Device(cpu)
	if err != nil || !d.Info().HostResident {
		t.Errorf("cpu lookup: %v", err)
	}
	if _, err := rt.Device(gpu + 10); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device: %v", err)
	}
}

func TestRouteSameDeviceNoOp(t *testing.T) {
	rt, _, gpu := twoDeviceRuntime(t)
	d, _ := rt.Device(gpu)
	id, done, err := d.PlaceData(vec.FromInt32([]int32{1, 2}), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, end, err := rt.Route(gpu, gpu, id, -1, done)
	if err != nil {
		t.Fatal(err)
	}
	if out != id || end != done {
		t.Error("same-device route must be a no-op")
	}
}

func TestRouteCrossDevice(t *testing.T) {
	rt, cpu, gpu := twoDeviceRuntime(t)
	src, _ := rt.Device(cpu)
	dst, _ := rt.Device(gpu)

	id, done, err := src.PlaceData(vec.FromInt32([]int32{7, 8, 9}), 0)
	if err != nil {
		t.Fatal(err)
	}
	routed, end, err := rt.Route(cpu, gpu, id, -1, done)
	if err != nil {
		t.Fatal(err)
	}
	if end <= done {
		t.Error("cross-device route must consume time")
	}
	b, err := dst.Buffer(routed)
	if err != nil {
		t.Fatal(err)
	}
	if b.Data.I32()[2] != 9 {
		t.Errorf("routed data = %v", b.Data.I32())
	}
	if b.Format != devmem.FormatCUDA {
		t.Errorf("routed buffer format = %v, want the target SDK's", b.Format)
	}
}

func TestRoutePartial(t *testing.T) {
	rt, cpu, gpu := twoDeviceRuntime(t)
	src, _ := rt.Device(cpu)
	dst, _ := rt.Device(gpu)
	id, done, _ := src.PlaceData(vec.FromInt32([]int32{1, 2, 3, 4}), 0)
	routed, _, err := rt.Route(cpu, gpu, id, 2, done)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := dst.Buffer(routed)
	if b.Data.Len() != 2 {
		t.Errorf("partial route moved %d elements", b.Data.Len())
	}
}

// TestConcurrentRegisterAndLookup hammers the registry from writers and
// readers at once; meaningful under -race.
func TestConcurrentRegisterAndLookup(t *testing.T) {
	rt := NewRuntime()
	if _, err := rt.Register(simomp.New(&simhw.CoreI78700, nil)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, readers, rounds = 4, 4, 16
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := rt.Register(simomp.New(&simhw.CoreI78700, nil)); err != nil {
					t.Errorf("register: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				devs := rt.Devices()
				if len(devs) < 1 {
					t.Error("registry lost its seed device")
					return
				}
				if _, err := rt.Device(device.ID(0)); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(rt.Devices()); got != 1+writers*rounds {
		t.Errorf("devices = %d, want %d", got, 1+writers*rounds)
	}
}

func TestRouteErrors(t *testing.T) {
	rt, cpu, gpu := twoDeviceRuntime(t)
	if _, _, err := rt.Route(cpu, gpu, 999, -1, 0); err == nil {
		t.Error("routing an unknown buffer must fail")
	}
	if _, _, err := rt.Route(device.ID(9), gpu, 1, -1, 0); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown source: %v", err)
	}
}
