package session

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/adamant-db/adamant/internal/device"
)

// TestPoolChargeCountsAgainstAdmission: pool-held bytes shrink the room
// queries can be admitted into. A demand that fits beside the pool admits
// immediately; one that does not (and has no reclaimer to evict) queues
// until the pool releases — it is not hard-rejected, because pooled bytes
// are evictable in principle.
func TestPoolChargeCountsAgainstAdmission(t *testing.T) {
	s := NewScheduler(Config{})
	s.SetBudget(0, 1000)
	s.PoolCharge(0, 600)
	if got := s.PoolHeld(0); got != 600 {
		t.Fatalf("pool held = %d, want 600", got)
	}
	g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 400}})
	if err != nil {
		t.Fatalf("demand beside the pool must admit: %v", err)
	}
	g.Release()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Request{Demand: map[device.ID]int64{0: 500}})
		errc <- err
	}()
	waitUntil(t, "misfit queued", func() bool { return s.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}

	s.PoolRelease(0, 600)
	if got := s.PoolHeld(0); got != 0 {
		t.Fatalf("pool held = %d after release", got)
	}
	g, err = s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 500}})
	if err != nil {
		t.Fatalf("after pool release: %v", err)
	}
	g.Release()
}

// TestPoolReleaseClampsAtZero: an over-release (double invalidation) never
// drives the ledger negative.
func TestPoolReleaseClampsAtZero(t *testing.T) {
	s := NewScheduler(Config{})
	s.PoolCharge(0, 100)
	s.PoolRelease(0, 400)
	if got := s.PoolHeld(0); got != 0 {
		t.Fatalf("pool held = %d, want clamp at 0", got)
	}
}

// fakeReclaimer evicts up to avail bytes when asked.
type fakeReclaimer struct {
	avail int64
	calls int
}

func (f *fakeReclaimer) ReclaimForAdmission(_ device.ID, want int64) int64 {
	f.calls++
	freed := want
	if freed > f.avail {
		freed = f.avail
	}
	f.avail -= freed
	return freed
}

// TestAdmissionEvictsPoolToFit: a query that does not fit beside the pool's
// cached bytes triggers reclaim, and admission succeeds with the freed room.
func TestAdmissionEvictsPoolToFit(t *testing.T) {
	s := NewScheduler(Config{})
	s.SetBudget(0, 1000)
	rec := &fakeReclaimer{avail: 800}
	s.SetPoolReclaimer(rec)
	s.PoolCharge(0, 800)

	g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 700}})
	if err != nil {
		t.Fatalf("admission should reclaim pool bytes: %v", err)
	}
	defer g.Release()
	if rec.calls == 0 {
		t.Fatal("reclaimer was never asked")
	}
	// 700 needed, 200 free: at least 500 must have come out of the pool.
	if held := s.PoolHeld(0); held > 300 {
		t.Fatalf("pool still holds %d, want <= 300", held)
	}
}

// TestAdmissionWaitsWhenPoolCannotYield: if the pool's bytes are all
// leased (reclaim frees nothing) a misfit query stays queued — it must not
// dispatch over budget, and it must not be hard-rejected either.
func TestAdmissionWaitsWhenPoolCannotYield(t *testing.T) {
	s := NewScheduler(Config{})
	s.SetBudget(0, 1000)
	rec := &fakeReclaimer{avail: 0} // everything leased
	s.SetPoolReclaimer(rec)
	s.PoolCharge(0, 800)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Request{Demand: map[device.ID]int64{0: 700}})
		errc <- err
	}()
	waitUntil(t, "misfit queued", func() bool { return s.Stats().Queued == 1 })
	if rec.calls == 0 {
		t.Fatal("reclaimer was never asked")
	}
	if held := s.PoolHeld(0); held != 800 {
		t.Fatalf("pool held = %d, want 800 untouched", held)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
}

// TestQueuedQueryDispatchesAfterPoolRelease: a queued query waiting on pool
// bytes dispatches when the pool releases them (invalidation path).
func TestQueuedQueryDispatchesAfterPoolRelease(t *testing.T) {
	s := NewScheduler(Config{MaxQueued: 4})
	s.SetBudget(0, 1000)
	s.PoolCharge(0, 900)

	admitted := make(chan *Grant, 1)
	errc := make(chan error, 1)
	go func() {
		g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 500}})
		if err != nil {
			errc <- err
			return
		}
		admitted <- g
	}()
	waitUntil(t, "query queued", func() bool { return s.Stats().Queued == 1 })

	s.PoolRelease(0, 900)
	select {
	case g := <-admitted:
		g.Release()
	case err := <-errc:
		t.Fatalf("admit failed: %v", err)
	case <-contextDone(t):
		t.Fatal("query never dispatched after pool release")
	}
}

// contextDone returns a channel that closes after the test's patience runs
// out, mirroring waitUntil's deadline for select-based waits.
func contextDone(t *testing.T) <-chan struct{} {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx.Done()
}
