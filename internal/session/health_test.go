package session

import (
	"testing"

	"github.com/adamant-db/adamant/internal/device"
)

func TestHealthTrackerTripsOnErrorRate(t *testing.T) {
	h := NewHealthTracker(HealthPolicy{Window: 4, TripRatio: 0.5, MinObservations: 4, ProbeSuccesses: 2})
	// Three observations: below MinObservations, no trip even at 100% errors.
	for i := 0; i < 3; i++ {
		if h.Observe(0, false) {
			t.Fatalf("tripped after %d observations, below MinObservations", i+1)
		}
	}
	if h.Open(0) {
		t.Fatal("breaker open before MinObservations reached")
	}
	// Fourth fills the window at 4/4 errors >= 0.5 ratio: trip.
	if !h.Observe(0, false) {
		t.Fatal("did not trip at 100% error rate with a full window")
	}
	if !h.Open(0) {
		t.Fatal("Open(0) = false after trip")
	}
	// Further observations on an open breaker never re-trip.
	if h.Observe(0, false) {
		t.Fatal("re-tripped an already-open breaker")
	}
	if got := h.OpenDevices(); len(got) != 1 || got[0] != device.ID(0) {
		t.Fatalf("OpenDevices() = %v, want [0]", got)
	}
}

func TestHealthTrackerStaysClosedUnderRatio(t *testing.T) {
	h := NewHealthTracker(HealthPolicy{Window: 8, TripRatio: 0.5, MinObservations: 4, ProbeSuccesses: 3})
	// Three successes then two failures keep the error rate strictly below
	// the 0.5 trip ratio (1/4, then 2/5): no trip.
	for i := 0; i < 3; i++ {
		h.Observe(1, true)
	}
	for i := 0; i < 2; i++ {
		if h.Observe(1, false) {
			t.Fatalf("tripped at failure %d, error rate still below ratio", i+1)
		}
	}
	if h.Open(1) {
		t.Fatal("breaker open below the trip ratio")
	}
	// A third failure makes it 3 errors in 6 observations — at the ratio.
	if !h.Observe(1, false) {
		t.Fatal("3 errors in 6 observations must reach ratio 0.5 and trip")
	}
}

func TestHealthTrackerForceOpen(t *testing.T) {
	h := NewHealthTracker(HealthPolicy{})
	if !h.ForceOpen(2) {
		t.Fatal("ForceOpen on a closed breaker must report the transition")
	}
	if h.ForceOpen(2) {
		t.Fatal("ForceOpen on an open breaker must be a no-op")
	}
	if !h.Open(2) {
		t.Fatal("breaker not open after ForceOpen")
	}
}

func TestHealthTrackerProbationReadmits(t *testing.T) {
	h := NewHealthTracker(HealthPolicy{Window: 4, TripRatio: 0.25, MinObservations: 2, ProbeSuccesses: 3})
	h.ForceOpen(0)
	// Two successes, then a failure: streak resets.
	if h.ProbeResult(0, true) || h.ProbeResult(0, true) {
		t.Fatal("readmitted before ProbeSuccesses consecutive successes")
	}
	if h.ProbeResult(0, false) {
		t.Fatal("a failed probe must not readmit")
	}
	// Three consecutive successes close the breaker.
	for i := 0; i < 2; i++ {
		if h.ProbeResult(0, true) {
			t.Fatalf("readmitted after only %d consecutive successes", i+1)
		}
	}
	if !h.ProbeResult(0, true) {
		t.Fatal("three consecutive successes must close the breaker")
	}
	if h.Open(0) {
		t.Fatal("breaker still open after probation succeeded")
	}
	// The error window was cleared: one fresh failure (above MinObservations
	// only with more data) must not immediately re-trip.
	if h.Observe(0, false) {
		t.Fatal("stale pre-quarantine window survived readmission")
	}
}
