// Package session implements ADAMANT's query admission control: the layer
// that turns a single-query executor into a multi-session server.
//
// Concurrent queries share the plugged co-processors, and a co-processor's
// memory is a hard budget: the paper's Figure 7 analysis shows how quickly
// an operator-at-a-time working set exhausts device memory, and a second
// query OOM-ing a running one is the failure mode a server cannot afford.
// The Scheduler therefore admits each query against per-device memory
// budgets and a configurable concurrency cap before the runtime layer
// touches any device. A query whose estimated working set can never fit a
// device's budget is rejected up front with a typed admission error; a
// query that fits the budget but not the memory currently available waits
// in an admission queue (FIFO or priority order) until running sessions
// release their grants.
package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/vclock"
)

// ErrAdmission is the sentinel all admission rejections wrap; match it with
// errors.Is and recover the details with errors.As on *AdmissionError.
var ErrAdmission = errors.New("session: admission denied")

// AdmissionError reports why a query was refused admission, with the
// numbers that caused the rejection.
type AdmissionError struct {
	// Device is the device whose budget was exceeded (valid when Need > 0).
	Device device.ID
	// Need is the query's estimated working set on that device.
	Need int64
	// Budget is the device's admission budget.
	Budget int64
	// InUse is the memory already reserved on the device when the request
	// was refused (valid when Need > 0).
	InUse int64
	// Wait and Deadline report a load-shedding rejection: the predicted
	// queue wait already exceeded the request's deadline (both zero
	// otherwise).
	Wait     vclock.Duration
	Deadline vclock.Duration
	// Reason is a human-readable explanation.
	Reason string
	// Err, when non-nil, is an additional sentinel the rejection wraps
	// (vclock.ErrDeadline for load shedding).
	Err error
}

// Error implements error.
func (e *AdmissionError) Error() string {
	if e.Need > 0 {
		return fmt.Sprintf("session: admission denied: %s on %v (need %d B, budget %d B, in use %d B)",
			e.Reason, e.Device, e.Need, e.Budget, e.InUse)
	}
	if e.Deadline > 0 {
		return fmt.Sprintf("session: admission denied: %s (predicted wait %v, deadline %v)",
			e.Reason, e.Wait, e.Deadline)
	}
	return "session: admission denied: " + e.Reason
}

// Unwrap makes errors.Is(err, ErrAdmission) hold for every AdmissionError,
// and errors.Is(err, vclock.ErrDeadline) hold for shedding rejections.
func (e *AdmissionError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrAdmission, e.Err}
	}
	return []error{ErrAdmission}
}

// Policy selects the order in which queued sessions are admitted.
type Policy int

// Admission policies.
const (
	// FIFO admits queued sessions strictly in arrival order.
	FIFO Policy = iota
	// Priority admits the highest-priority waiter first (ties in arrival
	// order). Like FIFO it never admits past the first waiter that does
	// not fit, so large queries cannot starve behind a stream of small
	// ones.
	Priority
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Priority:
		return "priority"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// MaxConcurrent caps the number of concurrently admitted sessions.
	// Zero or negative means unlimited.
	MaxConcurrent int
	// Policy selects the queue ordering (default FIFO).
	Policy Policy
	// MaxQueued caps the admission queue length; an arrival beyond the cap
	// is rejected with an AdmissionError instead of waiting. Zero or
	// negative means unlimited.
	MaxQueued int
}

// Request describes one query asking for admission.
type Request struct {
	// Priority orders waiters under the Priority policy; higher runs
	// first. Ignored under FIFO.
	Priority int
	// Demand is the query's estimated device-memory working set, per
	// device. Devices without a configured budget are not checked.
	Demand map[device.ID]int64
	// Deadline, when positive, is the query's virtual-time budget. A
	// request whose predicted queue wait (the summed Cost of the sessions
	// already waiting) exceeds its deadline is shed at admission — rejected
	// with an AdmissionError wrapping vclock.ErrDeadline — instead of
	// queueing for a slot it can no longer use.
	Deadline vclock.Duration
	// Cost is the query's predicted virtual runtime, used to estimate the
	// queue wait ahead of later arrivals. Zero is a valid (optimistic)
	// estimate.
	Cost vclock.Duration
}

// Stats summarizes a scheduler's activity.
type Stats struct {
	// Admitted counts sessions granted so far; Rejected counts typed
	// admission refusals; Waited counts admissions that had to queue
	// before running.
	Admitted int64
	Rejected int64
	Waited   int64
	// Shed counts rejections by deadline-aware load shedding (a subset of
	// Rejected).
	Shed int64
	// Queued and Running are the current queue depth and admitted count.
	Queued  int
	Running int
}

// admitOutcome is what a waiter receives when the scheduler decides its
// fate: a grant, or a typed rejection discovered at dispatch time (its
// remapped demand can no longer fit any budget).
type admitOutcome struct {
	g   *Grant
	err error
}

type waiter struct {
	req    Request
	seq    uint64
	ready  chan admitOutcome
	queued bool
}

// Scheduler admits query sessions against per-device memory budgets and a
// concurrency cap. It is safe for concurrent use.
type Scheduler struct {
	mu         sync.Mutex
	cfg        Config
	budgets    map[device.ID]int64
	inUse      map[device.ID]int64
	poolHeld   map[device.ID]int64
	quarantine map[device.ID]device.ID
	reclaim    PoolReclaimer
	running    int
	seq        uint64
	queue      []*waiter
	stats      Stats
	events     *telemetry.EventSink
}

// PoolReclaimer lets admission evict cold cached columns to make room for
// a waiting query. The buffer pool implements it. It is invoked with the
// scheduler's lock held, so implementations must never call back into the
// scheduler; they return the bytes actually freed and the scheduler
// adjusts its own pool ledger.
type PoolReclaimer interface {
	ReclaimForAdmission(dev device.ID, want int64) int64
}

// SetPoolReclaimer wires the buffer pool's eviction into dispatch: a
// waiter that does not fit because cached columns occupy budget triggers
// reclaim before being declared a misfit.
func (s *Scheduler) SetPoolReclaimer(r PoolReclaimer) {
	s.mu.Lock()
	s.reclaim = r
	s.mu.Unlock()
}

// PoolCharge records bytes the buffer pool holds on a device, charged once
// against the device's admission budget regardless of how many queries
// read the cached column. It implements the pool's Accountant and must be
// called without the scheduler lock held (the pool guarantees this).
func (s *Scheduler) PoolCharge(dev device.ID, bytes int64) {
	s.mu.Lock()
	s.poolHeld[dev] += bytes
	s.mu.Unlock()
}

// PoolRelease returns pool-held bytes (eviction, invalidation, flush) and
// re-runs dispatch: freed capacity may admit a waiter.
func (s *Scheduler) PoolRelease(dev device.ID, bytes int64) {
	s.mu.Lock()
	s.poolHeld[dev] -= bytes
	if s.poolHeld[dev] < 0 {
		s.poolHeld[dev] = 0
	}
	s.dispatchLocked()
	s.mu.Unlock()
}

// PoolHeld reports the pool-held bytes currently charged on a device.
func (s *Scheduler) PoolHeld(dev device.ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poolHeld[dev]
}

// SetEvents wires the scheduler's admission decisions (sheds, quarantines,
// readmissions) into a telemetry event sink. A nil sink (the default)
// disables emission at zero cost.
func (s *Scheduler) SetEvents(sink *telemetry.EventSink) {
	s.mu.Lock()
	s.events = sink
	s.mu.Unlock()
}

// NewScheduler returns a scheduler with no device budgets configured.
func NewScheduler(cfg Config) *Scheduler {
	return &Scheduler{
		cfg:        cfg,
		budgets:    make(map[device.ID]int64),
		inUse:      make(map[device.ID]int64),
		poolHeld:   make(map[device.ID]int64),
		quarantine: make(map[device.ID]device.ID),
	}
}

// Quarantine marks a device unhealthy and names the device that stands in
// for it. Subsequent admissions charge the quarantined device's estimated
// demand against the fallback's budget — the memory the re-placed query
// will actually use — instead of the dead device's. Quarantining is how a
// server keeps admitting after a co-processor dies: the executor fails the
// query over, and the scheduler stops reserving memory nobody can use.
func (s *Scheduler) Quarantine(dev, fallback device.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dev == fallback {
		return
	}
	s.quarantine[dev] = fallback
	if s.events != nil {
		s.events.Emit(telemetry.Event{
			Type: telemetry.EventQuarantine, Device: dev.String(),
			Detail: fmt.Sprintf("demand remapped to %v", fallback),
		})
	}
	// Queued waiters keep their logical demand; dispatch remaps it against
	// the quarantine state of the moment the grant is issued, so a waiter
	// queued before this call is charged to the fallback too.
	s.dispatchLocked()
}

// Readmit clears a device's quarantine (it recovered or was replaced) and
// re-runs dispatch immediately: waiters queued while their demand was being
// charged to the fallback re-evaluate against the readmitted device's own
// budget without waiting for the next Release.
func (s *Scheduler) Readmit(dev device.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, was := s.quarantine[dev]; was && s.events != nil {
		s.events.Emit(telemetry.Event{Type: telemetry.EventReadmit, Device: dev.String()})
	}
	delete(s.quarantine, dev)
	s.dispatchLocked()
}

// Quarantined lists the currently quarantined devices.
func (s *Scheduler) Quarantined() []device.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]device.ID, 0, len(s.quarantine))
	for dev := range s.quarantine {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// remapDemandLocked redirects demand on quarantined devices onto their
// fallbacks, following chains (a fallback that later dies itself) with a
// step bound so a configuration cycle cannot loop forever.
func (s *Scheduler) remapDemandLocked(demand map[device.ID]int64) map[device.ID]int64 {
	if len(s.quarantine) == 0 || len(demand) == 0 {
		return demand
	}
	out := make(map[device.ID]int64, len(demand))
	for dev, need := range demand {
		for step := 0; step <= len(s.quarantine); step++ {
			next, ok := s.quarantine[dev]
			if !ok {
				break
			}
			dev = next
		}
		out[dev] += need
	}
	return out
}

// SetBudget sets the admission budget for a device in bytes. A non-positive
// budget removes the device from admission checking (unlimited).
func (s *Scheduler) SetBudget(dev device.ID, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes <= 0 {
		delete(s.budgets, dev)
		return
	}
	s.budgets[dev] = bytes
	s.dispatchLocked()
}

// Budget reports the configured budget for a device (0 = unlimited).
func (s *Scheduler) Budget(dev device.ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budgets[dev]
}

// InUse reports the memory currently reserved on a device by admitted
// sessions.
func (s *Scheduler) InUse(dev device.ID) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse[dev]
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = len(s.queue)
	st.Running = s.running
	return st
}

// Admit blocks until the request is granted, its context is cancelled, or
// the request is rejected. A request whose demand can never fit a device's
// budget — or that finds the admission queue full — fails immediately with
// an error wrapping ErrAdmission. The caller must Release the returned
// grant when the query finishes.
func (s *Scheduler) Admit(ctx context.Context, req Request) (*Grant, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	// Hard reject: the working set — viewed through the current quarantine
	// remap, the budget a re-placed query would actually consume — exceeds
	// a budget outright, so no amount of waiting makes it fit (the paper's
	// OOM analysis, Fig. 7). The logical demand stays on the request:
	// dispatch re-remaps against the quarantine state of the grant moment.
	for dev, need := range s.remapDemandLocked(req.Demand) {
		if b, ok := s.budgets[dev]; ok && need > b {
			s.stats.Rejected++
			inUse := s.inUse[dev]
			s.mu.Unlock()
			return nil, &AdmissionError{
				Device: dev, Need: need, Budget: b, InUse: inUse,
				Reason: "working set exceeds device budget",
			}
		}
	}
	if s.cfg.MaxQueued > 0 && len(s.queue) >= s.cfg.MaxQueued {
		s.stats.Rejected++
		n := len(s.queue)
		s.mu.Unlock()
		return nil, &AdmissionError{Reason: fmt.Sprintf("admission queue full (%d waiting)", n)}
	}
	// Load shedding: a deadline-carrying request whose predicted wait — the
	// summed cost estimates of the sessions already queued ahead of it —
	// exceeds its deadline would only burn a queue slot to time out later;
	// reject it now with the deadline sentinel.
	if req.Deadline > 0 {
		if wait := s.queuedCostLocked(); wait > req.Deadline {
			s.stats.Rejected++
			s.stats.Shed++
			if s.events != nil {
				s.events.Emit(telemetry.Event{
					Type:   telemetry.EventShed,
					Detail: fmt.Sprintf("predicted wait %v > deadline %v", wait, req.Deadline),
				})
			}
			s.mu.Unlock()
			return nil, &AdmissionError{
				Wait: wait, Deadline: req.Deadline,
				Reason: "shed: predicted queue wait exceeds deadline",
				Err:    vclock.ErrDeadline,
			}
		}
	}
	w := &waiter{req: req, seq: s.seq, ready: make(chan admitOutcome, 1)}
	s.seq++
	s.queue = append(s.queue, w)
	s.dispatchLocked()
	if len(w.ready) == 0 {
		s.stats.Waited++
		w.queued = true
	}
	s.mu.Unlock()

	select {
	case o := <-w.ready:
		return o.g, o.err
	case <-ctx.Done():
		s.mu.Lock()
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		s.mu.Unlock()
		// The outcome raced the cancellation: take it and release any grant
		// so the reserved memory is returned.
		o := <-w.ready
		o.g.Release()
		return nil, ctx.Err()
	}
}

// queuedCostLocked sums the predicted runtime of every queued session: the
// wait a new arrival would see before its turn (admission never overtakes
// the first misfit, so everything queued runs first).
func (s *Scheduler) queuedCostLocked() vclock.Duration {
	var total vclock.Duration
	for _, w := range s.queue {
		total += w.req.Cost
	}
	return total
}

// fitsLocked reports whether a demand map can be charged right now. Bytes
// held by the buffer pool count against the budget alongside query
// reservations: they are real device memory, just charged once.
func (s *Scheduler) fitsLocked(demand map[device.ID]int64) bool {
	if s.cfg.MaxConcurrent > 0 && s.running >= s.cfg.MaxConcurrent {
		return false
	}
	for dev, need := range demand {
		if b, ok := s.budgets[dev]; ok && s.inUse[dev]+s.poolHeld[dev]+need > b {
			return false
		}
	}
	return true
}

// reclaimForLocked asks the buffer pool to evict cold columns on every
// device where the demand overflows the budget only because of pool-held
// bytes. It returns true if any bytes were reclaimed. Called with s.mu
// held; the reclaimer never calls back into the scheduler.
func (s *Scheduler) reclaimForLocked(demand map[device.ID]int64) bool {
	if s.reclaim == nil {
		return false
	}
	any := false
	for dev, need := range demand {
		b, ok := s.budgets[dev]
		if !ok {
			continue
		}
		over := s.inUse[dev] + s.poolHeld[dev] + need - b
		if over <= 0 || s.poolHeld[dev] == 0 {
			continue
		}
		if freed := s.reclaim.ReclaimForAdmission(dev, over); freed > 0 {
			s.poolHeld[dev] -= freed
			if s.poolHeld[dev] < 0 {
				s.poolHeld[dev] = 0
			}
			any = true
		}
	}
	return any
}

// dispatchLocked grants queued waiters, in policy order, until the first
// one that does not fit. Stopping at the first misfit keeps admission fair:
// a large query at the head is never overtaken indefinitely by small ones.
// Demand is remapped through the quarantine table here, at grant time, so
// quarantining or readmitting a device immediately re-prices every queued
// waiter; the grant records the effective (charged) demand so its release
// stays symmetric even if the quarantine table changes mid-run. A waiter
// whose remapped demand can no longer fit any budget is rejected with a
// typed error instead of blocking the head of the queue forever.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		idx := 0
		if s.cfg.Policy == Priority {
			idx = s.frontByPriorityLocked()
		}
		w := s.queue[idx]
		eff := s.remapDemandLocked(w.req.Demand)
		if dev, need, b, never := s.neverFitsLocked(eff); never {
			s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
			s.stats.Rejected++
			w.ready <- admitOutcome{err: &AdmissionError{
				Device: dev, Need: need, Budget: b, InUse: s.inUse[dev],
				Reason: "remapped working set exceeds device budget",
			}}
			continue
		}
		if !s.fitsLocked(eff) {
			// Cached columns are the softest reservation on the device:
			// evict cold entries before declaring the head a misfit.
			if !s.reclaimForLocked(eff) || !s.fitsLocked(eff) {
				return
			}
		}
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.running++
		for dev, need := range eff {
			s.inUse[dev] += need
		}
		s.stats.Admitted++
		w.ready <- admitOutcome{g: &Grant{s: s, demand: eff, queued: w.queued}}
	}
}

// neverFitsLocked reports the first device (in ID order, for deterministic
// errors) whose demand exceeds its whole budget — a waiter that can never
// be granted no matter how much memory is released.
func (s *Scheduler) neverFitsLocked(demand map[device.ID]int64) (device.ID, int64, int64, bool) {
	devs := make([]device.ID, 0, len(demand))
	for dev := range demand {
		devs = append(devs, dev)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		if b, ok := s.budgets[dev]; ok && demand[dev] > b {
			return dev, demand[dev], b, true
		}
	}
	return 0, 0, 0, false
}

// frontByPriorityLocked returns the index of the highest-priority waiter,
// ties broken by arrival order.
func (s *Scheduler) frontByPriorityLocked() int {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		w, b := s.queue[i], s.queue[best]
		if w.req.Priority > b.req.Priority ||
			(w.req.Priority == b.req.Priority && w.seq < b.seq) {
			best = i
		}
	}
	return best
}

// snapshotQueueLocked returns the queue in admission order (for tests and
// introspection).
func (s *Scheduler) snapshotQueueLocked() []*waiter {
	out := append([]*waiter(nil), s.queue...)
	if s.cfg.Policy == Priority {
		sort.SliceStable(out, func(i, j int) bool {
			if out[i].req.Priority != out[j].req.Priority {
				return out[i].req.Priority > out[j].req.Priority
			}
			return out[i].seq < out[j].seq
		})
	}
	return out
}

// QueuedPriorities lists the priorities of the waiting sessions in the
// order they would be admitted.
func (s *Scheduler) QueuedPriorities() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.snapshotQueueLocked()
	out := make([]int, len(q))
	for i, w := range q {
		out[i] = w.req.Priority
	}
	return out
}

// Grant is an admitted session's reservation. Release returns the reserved
// memory and concurrency slot; it is idempotent.
type Grant struct {
	s      *Scheduler
	demand map[device.ID]int64
	queued bool
	once   sync.Once
}

// Queued reports whether the session waited in the admission queue before
// this grant (it did not fit — or was behind a misfit — on arrival).
func (g *Grant) Queued() bool { return g != nil && g.queued }

// Release returns the grant's reservations and wakes eligible waiters.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.once.Do(func() {
		g.s.mu.Lock()
		g.s.running--
		for dev, need := range g.demand {
			g.s.inUse[dev] -= need
		}
		g.s.dispatchLocked()
		g.s.mu.Unlock()
	})
}
