package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/vclock"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestRejectOverBudget(t *testing.T) {
	s := NewScheduler(Config{})
	s.SetBudget(0, 100)
	_, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 200}})
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission, got %v", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Need != 200 || ae.Budget != 100 {
		t.Fatalf("admission error detail = %+v", ae)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnbudgetedDeviceUnchecked(t *testing.T) {
	s := NewScheduler(Config{})
	g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{3: 1 << 40}})
	if err != nil {
		t.Fatalf("unbudgeted device must admit: %v", err)
	}
	g.Release()
}

func TestQueueUntilRelease(t *testing.T) {
	s := NewScheduler(Config{})
	s.SetBudget(0, 100)
	a, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 60}})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Grant, 1)
	go func() {
		b, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 60}})
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()
	waitUntil(t, "B queued", func() bool { return s.Stats().Queued == 1 })
	select {
	case <-got:
		t.Fatal("B admitted while A holds the budget")
	default:
	}
	a.Release()
	b := <-got
	b.Release()
	st := s.Stats()
	if st.Admitted != 2 || st.Waited != 1 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxConcurrent(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1})
	a, _ := s.Admit(context.Background(), Request{})
	done := make(chan *Grant, 1)
	go func() {
		g, err := s.Admit(context.Background(), Request{})
		if err != nil {
			t.Error(err)
		}
		done <- g
	}()
	waitUntil(t, "second session queued", func() bool { return s.Stats().Queued == 1 })
	a.Release()
	g := <-done
	g.Release()
}

func TestCancelWhileQueued(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1})
	a, _ := s.Admit(context.Background(), Request{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Request{})
		errc <- err
	}()
	waitUntil(t, "waiter queued", func() bool { return s.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if st := s.Stats(); st.Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	a.Release()
	// The slot is free again for a fresh session.
	g, err := s.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestQueueFullRejects(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, MaxQueued: 1})
	a, _ := s.Admit(context.Background(), Request{})
	go s.Admit(context.Background(), Request{}) // fills the queue
	waitUntil(t, "queue filled", func() bool { return s.Stats().Queued == 1 })
	_, err := s.Admit(context.Background(), Request{})
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("want ErrAdmission on full queue, got %v", err)
	}
	a.Release()
}

func TestPriorityOrder(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1, Policy: Priority})
	a, _ := s.Admit(context.Background(), Request{})

	order := make(chan int, 2)
	var wg sync.WaitGroup
	launch := func(prio int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := s.Admit(context.Background(), Request{Priority: prio})
			if err != nil {
				t.Error(err)
				return
			}
			order <- prio
			g.Release()
		}()
		waitUntil(t, "waiter enqueued", func() bool { return len(s.QueuedPriorities()) >= 1 })
	}
	launch(1)
	waitUntil(t, "low queued", func() bool { return s.Stats().Queued == 1 })
	launch(5)
	waitUntil(t, "high queued", func() bool { return s.Stats().Queued == 2 })
	if q := s.QueuedPriorities(); len(q) != 2 || q[0] != 5 || q[1] != 1 {
		t.Fatalf("queue order = %v", q)
	}
	a.Release()
	wg.Wait()
	if first, second := <-order, <-order; first != 5 || second != 1 {
		t.Fatalf("admission order = %d then %d, want 5 then 1", first, second)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1})
	a, _ := s.Admit(context.Background(), Request{})
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Priority is ignored under FIFO: arrival order wins.
			g, err := s.Admit(context.Background(), Request{Priority: i})
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			g.Release()
		}()
		waitUntil(t, "waiter queued", func() bool { return s.Stats().Queued == i })
	}
	a.Release()
	wg.Wait()
	if first, second := <-order, <-order; first != 1 || second != 2 {
		t.Fatalf("admission order = %d then %d, want 1 then 2", first, second)
	}
}

func TestHeadOfLineBlocksSmaller(t *testing.T) {
	// A large query at the head of the queue must not be starved by small
	// ones that would fit: dispatch stops at the first misfit.
	s := NewScheduler(Config{})
	s.SetBudget(0, 100)
	a, _ := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 80}})

	bigDone := make(chan struct{})
	go func() {
		g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 90}})
		if err != nil {
			t.Error(err)
		}
		close(bigDone)
		g.Release()
	}()
	waitUntil(t, "big queued", func() bool { return s.Stats().Queued == 1 })

	smallDone := make(chan struct{})
	go func() {
		g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 10}})
		if err != nil {
			t.Error(err)
		}
		close(smallDone)
		g.Release()
	}()
	waitUntil(t, "small queued", func() bool { return s.Stats().Queued == 2 })
	select {
	case <-smallDone:
		t.Fatal("small query jumped the big head-of-line waiter")
	default:
	}
	a.Release()
	<-bigDone
	<-smallDone
}

func TestGrantReleaseIdempotent(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 2})
	s.SetBudget(0, 100)
	g, _ := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 60}})
	if got := s.InUse(0); got != 60 {
		t.Fatalf("InUse(0) = %d while grant held, want 60", got)
	}
	g.Release()
	if got := s.InUse(0); got != 0 {
		t.Fatalf("InUse(0) = %d after release, want 0", got)
	}
	g.Release()
	if got := s.InUse(0); got != 0 {
		t.Fatalf("InUse(0) = %d after double release, want 0 (refund must not repeat)", got)
	}
	if st := s.Stats(); st.Running != 0 {
		t.Fatalf("double release corrupted running count: %+v", st)
	}
}

func TestAdmissionErrorDetail(t *testing.T) {
	// A hard rejection reports the full arithmetic the operator needs:
	// demand, budget, and what is currently charged to the device.
	s := NewScheduler(Config{})
	s.SetBudget(0, 100)
	g, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 60}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	_, err = s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 200}})
	var ae *AdmissionError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AdmissionError, got %v", err)
	}
	if ae.Need != 200 || ae.Budget != 100 || ae.InUse != 60 {
		t.Fatalf("admission error detail = %+v, want need=200 budget=100 inuse=60", ae)
	}
	want := "session: admission denied: " + ae.Reason + " on dev0 (need 200 B, budget 100 B, in use 60 B)"
	if got := err.Error(); got != want {
		t.Fatalf("message = %q, want %q", got, want)
	}
}

func TestReadmitRedispatchesWaiters(t *testing.T) {
	// A waiter queued because its demand was remapped onto an overloaded
	// stand-in must be granted as soon as Readmit restores the quarantined
	// device — without any Release happening in between.
	s := NewScheduler(Config{})
	s.SetBudget(0, 100)
	s.SetBudget(1, 50)
	s.Quarantine(0, 1)
	a, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.InUse(1); got != 40 {
		t.Fatalf("InUse(1) = %d, want remapped demand 40", got)
	}
	got := make(chan *Grant, 1)
	go func() {
		b, err := s.Admit(context.Background(), Request{Demand: map[device.ID]int64{0: 40}})
		if err != nil {
			t.Error(err)
		}
		got <- b
	}()
	waitUntil(t, "B queued behind the quarantine", func() bool { return s.Stats().Queued == 1 })
	select {
	case <-got:
		t.Fatal("B admitted while the stand-in is out of budget")
	default:
	}
	s.Readmit(0)
	b := <-got
	if got := s.InUse(0); got != 40 {
		t.Fatalf("InUse(0) = %d after readmit, want 40", got)
	}
	b.Release()
	a.Release()
}

func TestLoadSheddingOnPredictedWait(t *testing.T) {
	s := NewScheduler(Config{MaxConcurrent: 1})
	a, _ := s.Admit(context.Background(), Request{})
	go s.Admit(context.Background(), Request{Cost: 100}) // queued, predicted cost 100ns
	waitUntil(t, "costly waiter queued", func() bool { return s.Stats().Queued == 1 })
	_, err := s.Admit(context.Background(), Request{Deadline: 50})
	if !errors.Is(err, ErrAdmission) || !errors.Is(err, vclock.ErrDeadline) {
		t.Fatalf("want ErrAdmission and vclock.ErrDeadline, got %v", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Wait != 100 || ae.Deadline != 50 {
		t.Fatalf("shed detail = %+v, want wait=100 deadline=50", ae)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v, want Shed=1", st)
	}
	a.Release()
}
