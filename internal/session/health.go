package session

import (
	"sort"
	"sync"

	"github.com/adamant-db/adamant/internal/device"
)

// HealthPolicy parameterizes the per-device circuit breaker. The zero value
// is usable: every field defaults to a sensible setting via withDefaults.
type HealthPolicy struct {
	// Window is the sliding observation window per device: the breaker
	// computes its error rate over the last Window operations observed on
	// the device. Default 8.
	Window int
	// TripRatio is the error fraction within the window at or above which
	// the breaker opens and the device is quarantined. Default 0.5.
	TripRatio float64
	// MinObservations is the minimum number of observations in the window
	// before the breaker may trip — a single early fault on a fresh device
	// must not quarantine it. Default 4.
	MinObservations int
	// ProbeSuccesses is the number of consecutive successful probation
	// probes after which an open breaker closes and the device is
	// readmitted. Default 3.
	ProbeSuccesses int
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.Window <= 0 {
		p.Window = 8
	}
	if p.TripRatio <= 0 || p.TripRatio > 1 {
		p.TripRatio = 0.5
	}
	if p.MinObservations <= 0 {
		p.MinObservations = 4
	}
	if p.MinObservations > p.Window {
		p.MinObservations = p.Window
	}
	if p.ProbeSuccesses <= 0 {
		p.ProbeSuccesses = 3
	}
	return p
}

// deviceHealth is one device's breaker state.
type deviceHealth struct {
	window []bool // ring buffer of outcomes, true = ok
	next   int    // ring write position
	filled int    // observations recorded, capped at len(window)
	open   bool   // breaker open: device quarantined, on probation
	streak int    // consecutive successful probes while open
}

// HealthTracker is the per-device circuit breaker behind automatic
// quarantine and readmission. It is a pure state machine over fault
// observations: callers feed it operation outcomes (Observe) and probation
// probe results (ProbeResult); it decides when a device's breaker trips
// open and when enough consecutive probes have succeeded to close it again.
// It never touches devices or the scheduler itself — the facade translates
// its decisions into Quarantine/Readmit calls. Safe for concurrent use.
type HealthTracker struct {
	mu     sync.Mutex
	policy HealthPolicy
	devs   map[device.ID]*deviceHealth
}

// NewHealthTracker returns a tracker with the given policy (zero fields
// take their defaults).
func NewHealthTracker(policy HealthPolicy) *HealthTracker {
	return &HealthTracker{policy: policy.withDefaults(), devs: make(map[device.ID]*deviceHealth)}
}

// Policy returns the tracker's effective (defaulted) policy.
func (h *HealthTracker) Policy() HealthPolicy { return h.policy }

func (h *HealthTracker) stateLocked(dev device.ID) *deviceHealth {
	d := h.devs[dev]
	if d == nil {
		d = &deviceHealth{window: make([]bool, h.policy.Window)}
		h.devs[dev] = d
	}
	return d
}

// Observe records one operation outcome on a device (ok=false for a fault)
// and reports whether this observation tripped the breaker open. Outcomes
// observed while the breaker is already open only keep the window current;
// recovery goes through ProbeResult.
func (h *HealthTracker) Observe(dev device.ID, ok bool) (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.stateLocked(dev)
	d.window[d.next] = ok
	d.next = (d.next + 1) % len(d.window)
	if d.filled < len(d.window) {
		d.filled++
	}
	if d.open || d.filled < h.policy.MinObservations {
		return false
	}
	errs := 0
	for i := 0; i < d.filled; i++ {
		if !d.window[i] {
			errs++
		}
	}
	if float64(errs) >= h.policy.TripRatio*float64(d.filled) {
		d.open = true
		d.streak = 0
		return true
	}
	return false
}

// ForceOpen trips a device's breaker unconditionally — the caller saw
// conclusive evidence (a device-lost failover) that outvotes any error-rate
// window. It reports whether the breaker was previously closed.
func (h *HealthTracker) ForceOpen(dev device.ID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.stateLocked(dev)
	if d.open {
		return false
	}
	d.open = true
	d.streak = 0
	return true
}

// Open reports whether a device's breaker is open (the device is on
// probation).
func (h *HealthTracker) Open(dev device.ID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.devs[dev]
	return d != nil && d.open
}

// OpenDevices lists the devices whose breakers are open, in ID order.
func (h *HealthTracker) OpenDevices() []device.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []device.ID
	for dev, d := range h.devs {
		if d.open {
			out = append(out, dev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ProbeResult records one probation probe outcome on an open breaker and
// reports whether the device just earned readmission (ProbeSuccesses
// consecutive successes). Readmission closes the breaker and clears the
// observation window so stale faults cannot immediately re-trip it. A probe
// failure resets the streak. Results for closed breakers are ignored.
func (h *HealthTracker) ProbeResult(dev device.ID, ok bool) (readmit bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.devs[dev]
	if d == nil || !d.open {
		return false
	}
	if !ok {
		d.streak = 0
		return false
	}
	d.streak++
	if d.streak < h.policy.ProbeSuccesses {
		return false
	}
	d.open = false
	d.streak = 0
	d.filled = 0
	d.next = 0
	return true
}
