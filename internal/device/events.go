package device

import (
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Event is one recorded device operation: which engine ran it, what it was,
// and its virtual time span. Event logs reconstruct the copy/compute
// timelines of the paper's Figure 6 from actual executions.
type Event struct {
	Engine string // "copy" or "compute"
	Label  string // kernel name or transfer kind
	Start  vclock.Time
	End    vclock.Time
}

// EventLog collects events from one or more devices. The zero value is
// ready to use; a nil *EventLog discards events.
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// Add appends one event.
func (l *EventLog) Add(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a snapshot of the recorded events in insertion order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Reset clears the log.
func (l *EventLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = l.events[:0]
	l.mu.Unlock()
}

// SetEventLog attaches (or detaches, with nil) an event log to the device.
// Subsequent transfers and kernel launches record their spans.
func (s *Sim) SetEventLog(log *EventLog) {
	s.mu.Lock()
	s.events = log
	s.mu.Unlock()
}

func (s *Sim) record(engine, label string, start, end vclock.Time) {
	s.mu.Lock()
	log := s.events
	s.mu.Unlock()
	if log != nil {
		log.Add(Event{Engine: engine, Label: label, Start: start, End: end})
	}
}
