package device

import (
	"testing"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/vec"
)

func TestEventLogRecords(t *testing.T) {
	d := newCUDA(t)
	log := &EventLog{}
	d.SetEventLog(log)

	buf, done, err := d.PlaceData(vec.FromInt32([]int32{1, 2, 3, 4}), 0)
	if err != nil {
		t.Fatal(err)
	}
	bm, allocDone, err := d.PrepareMemory(vec.Bits, 4, done)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Execute(ExecRequest{
		Kernel: "filter_bitmap_i32", Args: []devmem.BufferID{buf, bm}, Params: []int64{0, 10, 0},
	}, allocDone); err != nil {
		t.Fatal(err)
	}

	events := log.Events()
	var kinds []string
	for _, e := range events {
		if e.End <= e.Start {
			t.Errorf("event %s/%s has empty span", e.Engine, e.Label)
		}
		kinds = append(kinds, e.Engine+"/"+e.Label)
	}
	want := []string{"copy/alloc", "copy/h2d", "copy/alloc", "compute/filter_bitmap_i32"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %s, want %s", i, kinds[i], want[i])
		}
	}

	// Detaching stops recording; nil logs never panic.
	d.SetEventLog(nil)
	if _, _, err := d.PlaceData(vec.FromInt32([]int32{1}), 0); err != nil {
		t.Fatal(err)
	}
	if len(log.Events()) != len(events) {
		t.Error("detached log still recording")
	}
	log.Reset()
	if len(log.Events()) != 0 {
		t.Error("reset did not clear")
	}
	var nilLog *EventLog
	nilLog.Add(Event{})
	if nilLog.Events() != nil {
		t.Error("nil log events")
	}
	nilLog.Reset()
}

func TestEventLogPinnedLabels(t *testing.T) {
	d := newCUDA(t)
	log := &EventLog{}
	d.SetEventLog(log)

	buf, _, err := d.AddPinnedMemory(vec.Int32, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PlaceDataInto(buf, 0, vec.New(vec.Int32, 16), 0); err != nil {
		t.Fatal(err)
	}
	events := log.Events()
	if events[0].Label != "pinned-alloc" || events[1].Label != "h2d-pinned" {
		t.Errorf("labels = %s, %s", events[0].Label, events[1].Label)
	}
}
