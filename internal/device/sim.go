package device

import (
	"fmt"
	"sync"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// SimConfig parameterizes a simulated device.
type SimConfig struct {
	// Name identifies the device instance (defaults to spec/SDK names).
	Name string
	// Spec is the modelled hardware.
	Spec *simhw.Spec
	// SDK is the modelled software stack on top of it.
	SDK *simhw.SDKProfile
	// Format is the SDK's native memory-object format.
	Format devmem.Format
	// Registry supplies the kernel implementations. Nil means the
	// built-in registry.
	Registry *kernels.Registry
	// Workers overrides the goroutine fan-out of kernel bodies.
	Workers int
}

// Sim is a complete simulated co-processor. Kernel bodies run natively on
// the host (producing real results); all costs — transfers, launches,
// kernel execution — are charged in virtual time against the device's copy
// and compute engines according to the Spec and SDKProfile.
//
// Sim implements Device. It is safe for concurrent use, though the
// execution models serialize dependent operations through event times.
type Sim struct {
	cfg       SimConfig
	pool      *devmem.Pool
	copyTL    *vclock.Timeline
	computeTL *vclock.Timeline

	mu       sync.Mutex
	prepared map[string]bool
	stats    Stats
	inited   bool
	events   *EventLog
}

var _ Device = (*Sim)(nil)

// NewSim builds a simulated device from the config.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Spec == nil || cfg.SDK == nil {
		panic("device: SimConfig requires Spec and SDK")
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("%s/%s", cfg.Spec.Name, cfg.SDK.Name)
	}
	if cfg.Registry == nil {
		cfg.Registry = kernels.NewRegistry()
	}
	capacity := cfg.Spec.MemoryBytes
	if cfg.Spec.HostResident() {
		capacity = 0 // host memory: unlimited for our purposes
	}
	return &Sim{
		cfg:       cfg,
		pool:      devmem.NewPool(cfg.Name, capacity),
		copyTL:    vclock.NewTimeline(cfg.Name + "/copy"),
		computeTL: vclock.NewTimeline(cfg.Name + "/compute"),
		prepared:  make(map[string]bool),
	}
}

// Initialize sets device properties and, on SDKs with runtime compilation,
// compiles every registered kernel, as the paper's runtime does at startup.
func (s *Sim) Initialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inited {
		return nil
	}
	if s.cfg.SDK.SupportsRuntimeCompile {
		for _, name := range s.cfg.Registry.Names() {
			s.prepared[name] = true
			s.stats.KernelsBuilt++
			s.stats.CompileTime += s.cfg.SDK.CompileCost
		}
	}
	s.inited = true
	return nil
}

// Info implements Device.
func (s *Sim) Info() Info {
	return Info{
		Name:               s.cfg.Name,
		SDK:                s.cfg.SDK.Name,
		MemoryBytes:        s.cfg.Spec.MemoryBytes,
		Format:             s.cfg.Format,
		HostResident:       s.cfg.Spec.HostResident(),
		PinnedTransfer:     s.cfg.SDK.SupportsPinned,
		PinnedRemapPenalty: s.cfg.SDK.PinnedRemapPenalty,
		RuntimeCompile:     s.cfg.SDK.SupportsRuntimeCompile,
	}
}

// allocCost models driver-side allocation latency: device allocations are
// cheap-ish; page-locking pinned memory is slow, which is why the 4-phase
// model amortizes it in a dedicated stage phase.
func (s *Sim) allocCost(bytes int64, pinnedMem bool) vclock.Duration {
	if s.cfg.Spec.HostResident() {
		return 1 * vclock.Microsecond
	}
	if pinnedMem {
		return 100*vclock.Microsecond + vclock.Duration(float64(bytes)/8.0) // ~8 GB/s page-locking
	}
	// cudaMalloc/cudaFree-style driver calls synchronize and map pages.
	return 25*vclock.Microsecond + vclock.Duration(float64(bytes)/200.0) // ~200 GB/s mapping
}

// PlaceData implements Device: allocate a buffer and copy host data into it.
func (s *Sim) PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	if s.cfg.Spec.HostResident() {
		b := s.pool.Adopt(data, s.cfg.Format)
		start, end := s.copyTL.Schedule(ready, s.cfg.SDK.TransferLatency)
		s.addTransfer(true, data.Bytes(), s.cfg.SDK.TransferLatency)
		s.record("copy", "register", start, end)
		return b.ID, end, nil
	}
	b, err := s.pool.Alloc(data.Type(), data.Len(), s.cfg.Format)
	if err != nil {
		return 0, ready, err
	}
	ac := s.allocCost(b.Bytes(), false)
	allocStart, allocEnd := s.copyTL.Schedule(ready, ac)
	s.addOverhead(ac)
	s.noteAlloc(b.Bytes(), false)
	s.record("copy", "alloc", allocStart, allocEnd)

	b.Data.CopyFrom(data)
	cost := s.cfg.SDK.Transfer(s.cfg.Spec.Links.H2DPageable, data.Bytes())
	start, end := s.copyTL.Schedule(allocEnd, cost)
	s.addTransfer(true, data.Bytes(), cost)
	s.record("copy", "h2d", start, end)
	return b.ID, end, nil
}

// PlaceDataInto implements Device: copy host data into an existing buffer
// at an element offset. Transfers into pinned buffers use the fast pinned
// link (Figure 3).
func (s *Sim) PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error) {
	b, err := s.pool.Get(id)
	if err != nil {
		return ready, err
	}
	if off < 0 || off+data.Len() > b.Data.Len() {
		return ready, fmt.Errorf("%w: write [%d,%d) into %d", devmem.ErrBadRange, off, off+data.Len(), b.Data.Len())
	}
	b.Data.Slice(off, off+data.Len()).CopyFrom(data)

	cost := s.cfg.SDK.Transfer(s.cfg.Spec.Links.H2DPageable, data.Bytes())
	label := "h2d"
	if b.Pinned {
		cost = s.cfg.SDK.TransferPinned(s.cfg.Spec.Links.H2DPinned, data.Bytes())
		label = "h2d-pinned"
	}
	if s.cfg.Spec.HostResident() {
		cost = s.cfg.SDK.TransferLatency
	}
	start, end := s.copyTL.Schedule(ready, cost)
	s.addTransfer(true, data.Bytes(), cost)
	s.record("copy", label, start, end)
	return end, nil
}

// RetrieveData implements Device: copy a device buffer range back to the
// host. Pinned buffers come back over the fast pinned link.
func (s *Sim) RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error) {
	b, err := s.pool.Get(id)
	if err != nil {
		return ready, err
	}
	if n < 0 {
		n = b.Data.Len() - off
	}
	if off < 0 || n < 0 || off+n > b.Data.Len() {
		return ready, fmt.Errorf("%w: read [%d,%d) of %d", devmem.ErrBadRange, off, off+n, b.Data.Len())
	}
	src := b.Data.Slice(off, off+n)
	if dst.Len() < n {
		return ready, fmt.Errorf("%w: retrieve %d elements into %d", devmem.ErrBadRange, n, dst.Len())
	}
	dst.Slice(0, n).CopyFrom(src)

	cost := s.cfg.SDK.Transfer(s.cfg.Spec.Links.D2HPageable, src.Bytes())
	if b.Pinned {
		cost = s.cfg.SDK.TransferPinned(s.cfg.Spec.Links.D2HPinned, src.Bytes())
	}
	if s.cfg.Spec.HostResident() {
		cost = s.cfg.SDK.TransferLatency
	}
	start, end := s.copyTL.Schedule(ready, cost)
	s.addTransfer(false, src.Bytes(), cost)
	s.record("copy", "d2h", start, end)
	return end, nil
}

// PrepareMemory implements Device.
func (s *Sim) PrepareMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	b, err := s.pool.Alloc(t, n, s.cfg.Format)
	if err != nil {
		return 0, ready, err
	}
	ac := s.allocCost(b.Bytes(), false)
	start, end := s.copyTL.Schedule(ready, ac)
	s.addOverhead(ac)
	s.noteAlloc(b.Bytes(), false)
	s.record("copy", "alloc", start, end)
	return b.ID, end, nil
}

// AddPinnedMemory implements Device.
func (s *Sim) AddPinnedMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error) {
	b, err := s.pool.AllocPinned(t, n, s.cfg.Format)
	if err != nil {
		return 0, ready, err
	}
	ac := s.allocCost(b.Bytes(), true)
	start, end := s.copyTL.Schedule(ready, ac)
	s.addOverhead(ac)
	s.noteAlloc(b.Bytes(), true)
	s.record("copy", "pinned-alloc", start, end)
	return b.ID, end, nil
}

// CreateChunk implements Device.
func (s *Sim) CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error) {
	b, err := s.pool.CreateChunk(id, off, n)
	if err != nil {
		return 0, err
	}
	return b.ID, nil
}

// TransformMemory implements Device: re-tag the memory object to the target
// SDK format without moving data.
func (s *Sim) TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error) {
	if err := s.pool.Transform(id, target); err != nil {
		return ready, err
	}
	const cost = 2 * vclock.Microsecond
	_, end := s.copyTL.Schedule(ready, cost)
	s.addOverhead(cost)
	return end, nil
}

// DeleteMemory implements Device. Freeing device memory is a synchronizing
// driver call (cudaFree-style), so naive models that free per chunk pay for
// it; view deletions are host-side bookkeeping and free.
func (s *Sim) DeleteMemory(id devmem.BufferID) error {
	b, err := s.pool.Get(id)
	if err != nil {
		return err
	}
	if !b.IsView() && !s.cfg.Spec.HostResident() {
		const cost = 20 * vclock.Microsecond
		s.copyTL.Schedule(s.copyTL.Avail(), cost)
		s.addOverhead(cost)
	}
	return s.pool.Free(id)
}

// PrepareKernel implements Device. SDKs without runtime compilation reject
// it, which is why the paper makes kernel management optional.
func (s *Sim) PrepareKernel(name, _ string) error {
	if !s.cfg.SDK.SupportsRuntimeCompile {
		return fmt.Errorf("%w: %s has no runtime compiler", ErrNotSupported, s.cfg.SDK.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prepared[name] = true
	s.stats.KernelsBuilt++
	s.stats.CompileTime += s.cfg.SDK.CompileCost
	return nil
}

// Execute implements Device: validate the launch, price it (SDK launch and
// argument-mapping overhead plus the kernel's own cost model), schedule it
// on the compute engine, and run the kernel body natively.
func (s *Sim) Execute(req ExecRequest, ready vclock.Time) (vclock.Time, error) {
	k, err := s.cfg.Registry.Lookup(req.Kernel)
	if err != nil {
		return ready, err
	}
	if s.cfg.SDK.SupportsRuntimeCompile {
		s.mu.Lock()
		ok := s.prepared[req.Kernel]
		s.mu.Unlock()
		if !ok {
			return ready, fmt.Errorf("%w: %q on %s", ErrKernelNotPrepared, req.Kernel, s.cfg.Name)
		}
	}

	args := make([]vec.Vector, len(req.Args))
	for i, id := range req.Args {
		b, err := s.pool.Get(id)
		if err != nil {
			return ready, fmt.Errorf("arg %d of %s: %w", i, req.Kernel, err)
		}
		if b.Format != s.cfg.Format {
			return ready, fmt.Errorf("%w: arg %d of %s is %s, device expects %s",
				ErrFormatMismatch, i, req.Kernel, b.Format, s.cfg.Format)
		}
		args[i] = b.Data
	}
	if err := k.Validate(args, req.Params); err != nil {
		return ready, err
	}

	m := kernels.CostModel{Spec: s.cfg.Spec, SDK: s.cfg.SDK}
	launch := s.cfg.SDK.Launch(s.cfg.Spec, len(req.Args))
	body := k.Cost(m, args, req.Params)
	start, end := s.computeTL.Schedule(ready, launch+body)
	s.record("compute", req.Kernel, start, end)

	// A mis-typed launch must surface as a launch error, not crash the
	// engine — the same contract a real driver's error codes provide.
	ctx := &kernels.Ctx{Workers: s.cfg.Workers}
	if err := runKernel(k, ctx, args, req.Params); err != nil {
		return ready, fmt.Errorf("kernel %s on %s: %w", req.Kernel, s.cfg.Name, err)
	}

	s.mu.Lock()
	s.stats.Launches++
	s.stats.KernelTime += body
	s.stats.OverheadTime += launch
	s.mu.Unlock()
	return end, nil
}

// Sync implements Device: charge one chunk-boundary synchronization between
// the transfer and execution threads on the compute engine.
func (s *Sim) Sync(ready vclock.Time) vclock.Time {
	start, end := s.computeTL.Schedule(ready, s.cfg.SDK.SyncCost)
	s.addOverhead(s.cfg.SDK.SyncCost)
	s.record("compute", "sync", start, end)
	return end
}

// Buffer implements Device.
func (s *Sim) Buffer(id devmem.BufferID) (*devmem.Buffer, error) { return s.pool.Get(id) }

// CopyEngine implements Device.
func (s *Sim) CopyEngine() *vclock.Timeline { return s.copyTL }

// ComputeEngine implements Device.
func (s *Sim) ComputeEngine() *vclock.Timeline { return s.computeTL }

// MemStats implements Device.
func (s *Sim) MemStats() devmem.Stats { return s.pool.Stats() }

// Stats implements Device.
func (s *Sim) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset implements Device: frees all device memory and rewinds timelines
// and counters; compiled kernels survive, as on a real device.
func (s *Sim) Reset() {
	s.pool.Reset()
	s.copyTL.Reset()
	s.computeTL.Reset()
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
}

// runKernel executes a kernel body, converting panics (mis-typed buffers,
// out-of-range access) into errors.
func runKernel(k *kernels.Kernel, ctx *kernels.Ctx, args []vec.Vector, params []int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", kernels.ErrBadArgs, r)
		}
	}()
	return k.Fn(ctx, args, params)
}

func (s *Sim) addTransfer(h2d bool, bytes int64, cost vclock.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h2d {
		s.stats.H2DTransfers++
		s.stats.H2DBytes += bytes
	} else {
		s.stats.D2HTransfers++
		s.stats.D2HBytes += bytes
	}
	s.stats.TransferTime += cost
}

func (s *Sim) addOverhead(d vclock.Duration) {
	s.mu.Lock()
	s.stats.OverheadTime += d
	s.mu.Unlock()
}

func (s *Sim) noteAlloc(bytes int64, pinnedMem bool) {
	s.mu.Lock()
	if pinnedMem {
		s.stats.PinnedAlloced += bytes
	} else {
		s.stats.BytesAlloced += bytes
	}
	s.mu.Unlock()
}
