// Package device defines ADAMANT's device layer: the pluggable interface
// boundary between the query runtime and a co-processor SDK (§III-A of the
// paper).
//
// The Device interface carries the paper's ten interface functions —
// place_data, retrieve_data, prepare_memory, transform_memory,
// delete_memory, prepare_kernel, initialize, create_chunk,
// add_pinned_memory and execute — in Go spelling. Any SDK/co-processor pair
// that implements it can be plugged into the unified runtime without
// touching the execution models, which is the paper's central claim.
//
// The package also provides Sim, a complete simulated implementation
// parameterized by a hardware Spec and an SDKProfile. The driver packages
// (simcuda, simopencl, simomp) instantiate Sim the way the paper's case
// study wires OpenCL listings into the interfaces.
package device

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// Device errors.
var (
	// ErrNotSupported is returned by optional interfaces (kernel
	// management) on SDKs without them.
	ErrNotSupported = errors.New("device: operation not supported by this SDK")
	// ErrKernelNotPrepared is returned by Execute on SDKs with runtime
	// compilation when the kernel was never passed to PrepareKernel.
	ErrKernelNotPrepared = errors.New("device: kernel not prepared")
	// ErrFormatMismatch is returned by Execute when a buffer argument is
	// in another SDK's memory-object format (Figure 4); the runtime must
	// route it through TransformMemory first.
	ErrFormatMismatch = errors.New("device: buffer format mismatch")
)

// ID names a registered device within the runtime.
type ID int

// Info describes a plugged device to the runtime.
type Info struct {
	// Name identifies the device instance, e.g. "gpu0/cuda".
	Name string
	// SDK is the SDK family name ("CUDA", "OpenCL", "OpenMP").
	SDK string
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// Format is the SDK's native memory-object format.
	Format devmem.Format
	// HostResident devices share the host address space; transfers to
	// them degenerate to registrations.
	HostResident bool
	// PinnedTransfer reports whether add_pinned_memory provides a faster
	// transfer path.
	PinnedTransfer bool
	// PinnedRemapPenalty is the SDK's re-mapping pathology factor for
	// pinned regions rewritten with little intervening kernel work (the
	// paper's OpenCL Q4 anomaly); zero when the SDK has none.
	PinnedRemapPenalty float64
	// RuntimeCompile reports whether prepare_kernel is supported.
	RuntimeCompile bool
}

// ExecRequest is one kernel launch: the task layer resolves a primitive's
// implementation to a kernel name, buffer arguments and scalar parameters,
// and the device dispatches it (the paper's task->execute()).
type ExecRequest struct {
	Kernel string
	Args   []devmem.BufferID
	Params []int64
}

// Stats aggregates a device's activity, split so the abstraction-overhead
// experiment (Figure 10) can subtract kernel body time from total time.
type Stats struct {
	H2DTransfers  int64
	H2DBytes      int64
	D2HTransfers  int64
	D2HBytes      int64
	TransferTime  vclock.Duration // virtual time spent moving data
	Launches      int64
	KernelTime    vclock.Duration // kernel body time (the primitive itself)
	OverheadTime  vclock.Duration // launch, arg mapping, alloc, transform
	KernelsBuilt  int64
	CompileTime   vclock.Duration
	BytesAlloced  int64
	PinnedAlloced int64
}

// Device is the pluggable co-processor interface.
//
// All time-consuming operations follow event semantics: they accept the
// virtual time at which their inputs are ready and return the virtual
// completion time. Transfers serialize on the device's copy engine and
// kernel launches on its compute engine, so execution models express
// copy/compute overlap by scheduling onto both engines and synchronizing on
// the returned events (§IV).
type Device interface {
	// Initialize prepares the device: sets device properties and, on SDKs
	// with runtime compilation, compiles the registered kernels, as the
	// paper's runtime does at startup.
	Initialize() error

	// Info describes the device.
	Info() Info

	// PlaceData pushes a host vector into a fresh device buffer (H2D).
	PlaceData(data vec.Vector, ready vclock.Time) (devmem.BufferID, vclock.Time, error)

	// PlaceDataInto pushes a host vector into an existing device buffer
	// at the given element offset, the form used to stage chunks into
	// (possibly pinned) reusable buffers.
	PlaceDataInto(id devmem.BufferID, off int, data vec.Vector, ready vclock.Time) (vclock.Time, error)

	// RetrieveData copies a device buffer range back into a host vector
	// (D2H). off and n are in elements; n < 0 means the whole buffer.
	RetrieveData(id devmem.BufferID, off, n int, dst vec.Vector, ready vclock.Time) (vclock.Time, error)

	// PrepareMemory allocates an uninitialized device buffer. The
	// allocation is a driver call that starts no earlier than ready; the
	// returned event is its completion.
	PrepareMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error)

	// AddPinnedMemory reserves host-accessible page-locked memory, with
	// the same event semantics as PrepareMemory (page-locking is slow,
	// which is why the 4-phase model amortizes it in its stage phase).
	AddPinnedMemory(t vec.Type, n int, ready vclock.Time) (devmem.BufferID, vclock.Time, error)

	// CreateChunk registers a view of a subset of an existing buffer.
	CreateChunk(id devmem.BufferID, off, n int) (devmem.BufferID, error)

	// TransformMemory converts a buffer between SDK memory-object formats
	// in place, without moving data through the host.
	TransformMemory(id devmem.BufferID, target devmem.Format, ready vclock.Time) (vclock.Time, error)

	// DeleteMemory releases a buffer.
	DeleteMemory(id devmem.BufferID) error

	// PrepareKernel compiles a kernel from source at runtime. SDKs
	// without runtime compilation return ErrNotSupported.
	PrepareKernel(name, source string) error

	// Execute dispatches a kernel on the device's compute engine.
	Execute(req ExecRequest, ready vclock.Time) (vclock.Time, error)

	// Sync charges one chunk-boundary synchronization between the
	// transfer and execution threads (the fetched_until/processed_until
	// handshake of Algorithms 2-3) and returns its completion time.
	Sync(ready vclock.Time) vclock.Time

	// Buffer resolves a buffer for host-side inspection (the runtime uses
	// it to wire kernel arguments and read results it has retrieved).
	Buffer(id devmem.BufferID) (*devmem.Buffer, error)

	// CopyEngine and ComputeEngine expose the device's timelines so the
	// runtime can attach them to a query's clock.
	CopyEngine() *vclock.Timeline
	ComputeEngine() *vclock.Timeline

	// MemStats reports memory-pool accounting.
	MemStats() devmem.Stats

	// Stats reports cumulative activity counters.
	Stats() Stats

	// Reset clears device memory and counters between runs.
	Reset()
}

// String formats an ID for diagnostics.
func (id ID) String() string { return fmt.Sprintf("dev%d", int(id)) }

// PoolMarker is the optional interface of devices whose memory manager can
// distinguish buffers owned by the cross-query buffer pool from buffers
// owned by an in-flight query. The buffer-pool layer marks a cached column
// on adoption and unmarks it on eviction, so the devmem accounting
// invariant (pool-held + query-held + free == capacity) stays checkable.
// Wrapper devices (fault injection) forward the call to their inner device.
type PoolMarker interface {
	MarkPooled(id devmem.BufferID, pooled bool) error
}

// MemChecker is the optional interface of devices that can audit their
// memory accounting (see devmem.Pool.CheckAccounting). Tests and the
// buffer-pool layer use it to verify the accounting invariant after
// acquire/release/evict transitions.
type MemChecker interface {
	CheckMemAccounting() error
}

// MarkPooled marks a buffer as pool-owned in the simulated device's memory
// manager, implementing PoolMarker.
func (s *Sim) MarkPooled(id devmem.BufferID, pooled bool) error {
	return s.pool.SetPooled(id, pooled)
}

// CheckMemAccounting audits the simulated device's memory accounting,
// implementing MemChecker.
func (s *Sim) CheckMemAccounting() error { return s.pool.CheckAccounting() }
