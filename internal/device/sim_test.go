package device

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

func newCUDA(t *testing.T) *Sim {
	t.Helper()
	d := NewSim(SimConfig{Spec: &simhw.RTX2080Ti, SDK: &simhw.CUDAProfile, Format: devmem.FormatCUDA})
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	return d
}

func newOpenCL(t *testing.T) *Sim {
	t.Helper()
	d := NewSim(SimConfig{Spec: &simhw.RTX2080Ti, SDK: &simhw.OpenCLGPUProfile, Format: devmem.FormatOpenCL})
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	return d
}

func newOpenMP(t *testing.T) *Sim {
	t.Helper()
	d := NewSim(SimConfig{Spec: &simhw.CoreI78700, SDK: &simhw.OpenMPProfile, Format: devmem.FormatRaw})
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlaceRetrieveRoundtrip(t *testing.T) {
	d := newCUDA(t)
	host := vec.FromInt32([]int32{1, 2, 3, 4, 5})
	id, done, err := d.PlaceData(host, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("transfer must consume virtual time")
	}
	back := vec.New(vec.Int32, 5)
	end, err := d.RetrieveData(id, 0, -1, back, done)
	if err != nil {
		t.Fatal(err)
	}
	if end <= done {
		t.Error("retrieve must consume virtual time")
	}
	if !vec.Equal(host, back) {
		t.Error("roundtrip corrupted data")
	}

	// Partial retrieve.
	part := vec.New(vec.Int32, 2)
	if _, err := d.RetrieveData(id, 2, 2, part, end); err != nil {
		t.Fatal(err)
	}
	if part.I32()[0] != 3 || part.I32()[1] != 4 {
		t.Errorf("partial retrieve = %v", part.I32())
	}

	st := d.Stats()
	if st.H2DTransfers != 1 || st.D2HTransfers != 2 || st.H2DBytes != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPlaceDataIntoPinnedFaster(t *testing.T) {
	d := newCUDA(t)
	data := vec.New(vec.Int32, 1<<20)

	pageable, _, err := d.PrepareMemory(vec.Int32, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinned, _, err := d.AddPinnedMemory(vec.Int32, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}

	base := d.CopyEngine().Avail()
	e1, err := d.PlaceDataInto(pageable, 0, data, base)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := d.PlaceDataInto(pinned, 0, data, e1)
	if err != nil {
		t.Fatal(err)
	}
	if e2-e1 >= e1-base {
		t.Errorf("pinned transfer (%v) should beat pageable (%v)", e2-e1, e1-base)
	}
}

func TestPlaceDataIntoBounds(t *testing.T) {
	d := newCUDA(t)
	buf, _, _ := d.PrepareMemory(vec.Int32, 10, 0)
	if _, err := d.PlaceDataInto(buf, 8, vec.New(vec.Int32, 5), 0); !errors.Is(err, devmem.ErrBadRange) {
		t.Errorf("out-of-range write: %v", err)
	}
}

func TestOOMPropagates(t *testing.T) {
	small := &simhw.Spec{
		Name: "tiny", Class: simhw.ClassGPU, MemoryBytes: 1 << 10,
		StreamGBps: 1, RandomGBps: 1, AtomicMops: 1,
		Links: simhw.Links{H2DPageable: simhw.LinkCurve{PeakGBps: 1}},
	}
	d := NewSim(SimConfig{Spec: small, SDK: &simhw.CUDAProfile, Format: devmem.FormatCUDA})
	if _, _, err := d.PlaceData(vec.New(vec.Int32, 1<<20), 0); !errors.Is(err, devmem.ErrOutOfMemory) {
		t.Errorf("expected OOM, got %v", err)
	}
}

func TestHostResidentZeroCopy(t *testing.T) {
	d := newOpenMP(t)
	host := vec.FromInt32([]int32{1, 2, 3})
	id, _, err := d.PlaceData(host, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Buffer(id)
	if err != nil {
		t.Fatal(err)
	}
	b.Data.I32()[0] = 42
	if host.I32()[0] != 42 {
		t.Error("host-resident place copied instead of adopting")
	}
}

func TestExecute(t *testing.T) {
	d := newCUDA(t)
	a, _, _ := d.PlaceData(vec.FromInt32([]int32{1, 2, 3}), 0)
	b, _, _ := d.PlaceData(vec.FromInt32([]int32{4, 5, 6}), 0)
	out, _, err := d.PrepareMemory(vec.Int64, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	end, err := d.Execute(ExecRequest{Kernel: "map_mul_i32_i64", Args: []devmem.BufferID{a, b, out}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Error("execution must consume virtual time")
	}
	ob, _ := d.Buffer(out)
	if ob.Data.I64()[2] != 18 {
		t.Errorf("kernel result = %v", ob.Data.I64())
	}
	st := d.Stats()
	if st.Launches != 1 || st.KernelTime < 0 || st.OverheadTime <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExecuteErrors(t *testing.T) {
	d := newCUDA(t)
	if _, err := d.Execute(ExecRequest{Kernel: "nope"}, 0); !errors.Is(err, kernels.ErrUnknownKernel) {
		t.Errorf("unknown kernel: %v", err)
	}
	a, _, _ := d.PlaceData(vec.FromInt32([]int32{1}), 0)
	if _, err := d.Execute(ExecRequest{Kernel: "map_mul_i32_i64", Args: []devmem.BufferID{a, a, a}}, 0); err == nil {
		t.Error("type-mismatched args must fail")
	}
	if _, err := d.Execute(ExecRequest{Kernel: "map_mul_i32_i64", Args: []devmem.BufferID{a}}, 0); !errors.Is(err, kernels.ErrBadArgs) {
		t.Errorf("wrong arity: %v", err)
	}
	if _, err := d.Execute(ExecRequest{Kernel: "map_mul_i32_i64", Args: []devmem.BufferID{a, a, 999}}, 0); !errors.Is(err, devmem.ErrUnknownBuffer) {
		t.Errorf("unknown buffer: %v", err)
	}
}

func TestFormatMismatch(t *testing.T) {
	d := newCUDA(t)
	a, _, _ := d.PlaceData(vec.FromInt32([]int32{1}), 0)
	if _, err := d.TransformMemory(a, devmem.FormatThrust, 0); err != nil {
		t.Fatalf("transform: %v", err)
	}
	_, err := d.Execute(ExecRequest{Kernel: "filter_bitmap_i32", Args: []devmem.BufferID{a, a}, Params: []int64{0, 0, 0}}, 0)
	if !errors.Is(err, ErrFormatMismatch) {
		t.Errorf("foreign format: %v", err)
	}
	// Transforming back re-enables execution (with proper args).
	if _, err := d.TransformMemory(a, devmem.FormatCUDA, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTransformMemoryReady(t *testing.T) {
	d := newCUDA(t)
	a, done, _ := d.PlaceData(vec.FromInt32([]int32{1}), 0)
	end, err := d.TransformMemory(a, devmem.FormatThrust, done)
	if err != nil {
		t.Fatal(err)
	}
	if end <= done {
		t.Error("transform must consume time after its dependency")
	}
}

func TestRuntimeCompilation(t *testing.T) {
	// CUDA: precompiled; prepare_kernel unsupported, execution works.
	cuda := newCUDA(t)
	if err := cuda.PrepareKernel("x", "src"); !errors.Is(err, ErrNotSupported) {
		t.Errorf("CUDA prepare_kernel: %v", err)
	}

	// OpenCL: built-ins compiled at Initialize; custom kernels need
	// explicit preparation.
	reg := kernels.NewRegistry()
	reg.Register(&kernels.Kernel{
		Name: "custom_noop", NArgs: 0,
		Fn:   func(*kernels.Ctx, []vec.Vector, []int64) error { return nil },
		Cost: func(kernels.CostModel, []vec.Vector, []int64) vclock.Duration { return 0 },
	})
	d := NewSim(SimConfig{Spec: &simhw.RTX2080Ti, SDK: &simhw.OpenCLGPUProfile, Format: devmem.FormatOpenCL, Registry: reg})

	// Before Initialize nothing is compiled.
	if _, err := d.Execute(ExecRequest{Kernel: "custom_noop"}, 0); !errors.Is(err, ErrKernelNotPrepared) {
		t.Errorf("pre-init execute: %v", err)
	}
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Execute(ExecRequest{Kernel: "custom_noop"}, 0); err != nil {
		t.Errorf("post-init execute: %v", err)
	}
	st := d.Stats()
	if st.KernelsBuilt == 0 || st.CompileTime == 0 {
		t.Errorf("compilation not accounted: %+v", st)
	}

	// A kernel registered after Initialize needs PrepareKernel.
	reg.Register(&kernels.Kernel{
		Name: "late_kernel", NArgs: 0,
		Fn:   func(*kernels.Ctx, []vec.Vector, []int64) error { return nil },
		Cost: func(kernels.CostModel, []vec.Vector, []int64) vclock.Duration { return 0 },
	})
	if _, err := d.Execute(ExecRequest{Kernel: "late_kernel"}, 0); !errors.Is(err, ErrKernelNotPrepared) {
		t.Errorf("unprepared late kernel: %v", err)
	}
	if err := d.PrepareKernel("late_kernel", "src"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Execute(ExecRequest{Kernel: "late_kernel"}, 0); err != nil {
		t.Errorf("prepared late kernel: %v", err)
	}
}

func TestCreateChunkAndViews(t *testing.T) {
	d := newCUDA(t)
	parent, _, _ := d.PlaceData(vec.FromInt32([]int32{0, 1, 2, 3, 4, 5, 6, 7}), 0)
	view, err := d.CreateChunk(parent, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	vb, _ := d.Buffer(view)
	if vb.Data.Len() != 4 || vb.Data.I32()[0] != 2 {
		t.Errorf("view = %v", vb.Data)
	}
	if err := d.DeleteMemory(view); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Buffer(view); err == nil {
		t.Error("deleted view still resolvable")
	}
}

func TestSyncCost(t *testing.T) {
	d := newOpenCL(t)
	end := d.Sync(100)
	if end <= 100 {
		t.Error("sync must consume time")
	}
}

func TestResetKeepsCompiledKernels(t *testing.T) {
	d := newOpenCL(t)
	a, _, _ := d.PlaceData(vec.FromInt32([]int32{1}), 0)
	_ = a
	d.Reset()
	if d.MemStats().LiveBuffers != 0 {
		t.Error("reset did not clear memory")
	}
	if d.CopyEngine().Avail() != 0 {
		t.Error("reset did not rewind timelines")
	}
	// Built-in kernels stay compiled across Reset.
	b, _, _ := d.PlaceData(vec.FromInt32([]int32{1}), 0)
	bm, _, _ := d.PrepareMemory(vec.Bits, 1, 0)
	if _, err := d.Execute(ExecRequest{Kernel: "filter_bitmap_i32", Args: []devmem.BufferID{b, bm}, Params: []int64{0, 0, 0}}, 0); err != nil {
		t.Errorf("execute after reset: %v", err)
	}
}

func TestEventMonotonicity(t *testing.T) {
	d := newCUDA(t)
	var last vclock.Time
	for i := 0; i < 5; i++ {
		_, done, err := d.PlaceData(vec.New(vec.Int32, 1024), last)
		if err != nil {
			t.Fatal(err)
		}
		if done <= last {
			t.Fatalf("event %d not after its dependency", i)
		}
		last = done
	}
}

func TestInfo(t *testing.T) {
	d := newOpenCL(t)
	info := d.Info()
	if info.SDK != "OpenCL" || !info.RuntimeCompile || !info.PinnedTransfer || info.HostResident {
		t.Errorf("info = %+v", info)
	}
	if info.PinnedRemapPenalty <= 0 {
		t.Error("OpenCL should carry the pinned remap pathology")
	}
	if newCUDA(t).Info().PinnedRemapPenalty != 0 {
		t.Error("CUDA should not carry the pinned remap pathology")
	}
	if ID(3).String() != "dev3" {
		t.Error("ID diagnostics")
	}
}
