package device

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/vclock"
)

// RenderTimeline prints one text row per engine from an event log,
// bucketing busy spans into width columns over the events' full time range
// — the textual form of the paper's Figure 6 execution-flow diagrams.
// Transfers render as '-', kernel executions as '#'.
func RenderTimeline(w io.Writer, events []Event, width int) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no events)")
		return
	}
	start, end := events[0].Start, events[0].End
	for _, e := range events {
		if e.Start < start {
			start = e.Start
		}
		if e.End > end {
			end = e.End
		}
	}
	span := end.Sub(start)
	if span <= 0 {
		span = 1
	}

	glyph := map[string]byte{"copy": '-', "compute": '#'}
	for _, engine := range []string{"copy", "compute"} {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		var busy vclock.Duration
		for _, e := range events {
			if e.Engine != engine {
				continue
			}
			busy += e.End.Sub(e.Start)
			lo := int(int64(e.Start.Sub(start)) * int64(width) / int64(span))
			hi := int(int64(e.End.Sub(start)) * int64(width) / int64(span))
			if hi == lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = glyph[engine]
			}
		}
		util := 100 * float64(busy) / float64(span)
		fmt.Fprintf(w, "%-8s |%s| %4.1f%% busy\n", engine, string(row), util)
	}
}
