package task

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/vec"
)

// This file is the built-in task library: one constructor per primitive
// implementation in the default kernel set. Custom implementations plug in
// by building a Task that names a kernel registered with the device's
// kernel registry; Validate enforces the Table I signature either way.

// NewFilterBitmap filters an int32 column against constants into a bitmap.
func NewFilterBitmap(op kernels.CmpOp, lo, hi int64, label string) *Task {
	t, _ := NewFilterBitmapTyped(vec.Int32, op, lo, hi, label)
	return t
}

// NewFilterBitmapTyped is NewFilterBitmap for a chosen column type (Int32
// or Int64).
func NewFilterBitmapTyped(typ vec.Type, op kernels.CmpOp, lo, hi int64, label string) (*Task, error) {
	kernel, err := pickByType(typ, "filter_bitmap_i32", "filter_bitmap_i64")
	if err != nil {
		return nil, err
	}
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         kernel,
		Params:         []int64{int64(op), lo, hi},
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}, nil
}

// NewFilterColCmp filters by comparing two int32 columns element-wise.
func NewFilterColCmp(op kernels.CmpOp, label string) *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "filter_bitmap_colcmp_i32",
		Params:         []int64{int64(op)},
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewBitmapAnd intersects two filter bitmaps.
func NewBitmapAnd() *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "bitmap_and",
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          "and",
	}
}

// NewBitmapOr unions two filter bitmaps.
func NewBitmapOr() *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "bitmap_or",
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          "or",
	}
}

// NewBitmapNot complements a filter bitmap (anti-join form).
func NewBitmapNot() *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "bitmap_not",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          "not",
	}
}

// NewBitmapAndNot keeps rows in the first bitmap that are absent from the
// second.
func NewBitmapAndNot() *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "bitmap_andnot",
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          "andnot",
	}
}

// NewSemiJoinFilter marks probe-side rows whose key exists in a hash table
// (EXISTS subqueries). Inputs: keys, table.
func NewSemiJoinFilter(label string) *Task {
	return &Task{
		Kind:           primitive.FilterBitmap,
		Kernel:         "hash_probe_exists_i32",
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Bitmap, Type: vec.Bits, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewFilterPosition filters an int32 column into a position list sized by
// the optimizer's selectivity estimate.
func NewFilterPosition(op kernels.CmpOp, lo, hi int64, estimate float64, label string) *Task {
	return &Task{
		Kind:    primitive.FilterPosition,
		Kernel:  "filter_pos_i32",
		Params:  []int64{int64(op), lo, hi},
		NInputs: 1,
		Outputs: []OutputSpec{
			{Semantic: primitive.Position, Type: vec.Int32, Size: Estimated(estimate)},
		},
		EmitsCount:     true,
		CountSets:      []int{0},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewMaterialize compacts a value column through a bitmap. t selects the
// value type (Int32 or Int64).
func NewMaterialize(t vec.Type, label string) (*Task, error) {
	kernel, err := pickByType(t, "materialize_bitmap_i32", "materialize_bitmap_i64")
	if err != nil {
		return nil, err
	}
	return &Task{
		Kind:           primitive.Materialize,
		Kernel:         kernel,
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: t, Size: OfInput()}},
		EmitsCount:     true,
		CountSets:      []int{0},
		ChunkBaseParam: -1,
		Label:          label,
	}, nil
}

// NewMaterializePosition gathers a value column by a position list.
func NewMaterializePosition(t vec.Type, label string) (*Task, error) {
	kernel, err := pickByType(t, "materialize_pos_i32", "materialize_pos_i64")
	if err != nil {
		return nil, err
	}
	return &Task{
		Kind:           primitive.MaterializePosition,
		Kernel:         kernel,
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: t, Size: OfInputPort(1)}},
		ChunkBaseParam: -1,
		Label:          label,
	}, nil
}

func pickByType(t vec.Type, i32, i64 string) (string, error) {
	switch t {
	case vec.Int32:
		return i32, nil
	case vec.Int64:
		return i64, nil
	default:
		return "", fmt.Errorf("%w: no kernel variant for %s", ErrBadTask, t)
	}
}

// NewMapMul multiplies two int32 columns into an int64 column.
func NewMapMul(label string) *Task {
	return &Task{
		Kind:           primitive.Map,
		Kernel:         "map_mul_i32_i64",
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewMapMulComplement computes a * (k - b) over two int32 columns.
func NewMapMulComplement(k int64, label string) *Task {
	return &Task{
		Kind:           primitive.Map,
		Kernel:         "map_mul_complement_i32_i64",
		Params:         []int64{k},
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewMapCast widens an int32 column to int64.
func NewMapCast(label string) *Task {
	return &Task{
		Kind:           primitive.Map,
		Kernel:         "map_cast_i32_i64",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewAggBlock reduces a column to a scalar, accumulating across chunks. t
// selects the input type (Int32 or Int64).
func NewAggBlock(op kernels.AggOp, t vec.Type, label string) (*Task, error) {
	kernel, err := pickByType(t, "agg_block_i32", "agg_block_i64")
	if err != nil {
		return nil, err
	}
	var identity int64
	switch op {
	case kernels.AggMin:
		identity = int64(^uint64(0) >> 1) // MaxInt64
	case kernels.AggMax:
		identity = -int64(^uint64(0)>>1) - 1 // MinInt64
	}
	return &Task{
		Kind:           primitive.AggBlock,
		Kernel:         kernel,
		Params:         []int64{int64(op)},
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(1)}},
		Accumulate:     true,
		InitKernel:     "fill_i64",
		InitParams:     []int64{identity},
		ChunkBaseParam: -1,
		Label:          label,
	}, nil
}

// NewAggCountBits counts set bits of a filter bitmap, accumulating across
// chunks (COUNT(*) without materialization).
func NewAggCountBits(label string) *Task {
	return &Task{
		Kind:           primitive.AggBlock,
		Kernel:         "agg_count_bits",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(1)}},
		Accumulate:     true,
		InitKernel:     "fill_i64",
		InitParams:     []int64{0},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewGroupBoundaries emits the 0/1 group-boundary indicator of a sorted
// int32 key column, the input PREFIX_SUM needs to derive SORT_AGG's group
// indexes.
func NewGroupBoundaries(label string) *Task {
	return &Task{
		Kind:           primitive.Map,
		Kernel:         "map_boundary_i32",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int32, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewPrefixSumInclusive scans an int32 column (inclusive prefix sum), the
// variant that turns group-transition indicators into group indexes.
func NewPrefixSumInclusive(label string) *Task {
	t := NewPrefixSum(label)
	t.Kernel = "prefix_sum_inclusive_i32"
	return t
}

// NewPrefixSum scans an int32 column (exclusive prefix sum).
func NewPrefixSum(label string) *Task {
	return &Task{
		Kind:           primitive.PrefixSumKind,
		Kernel:         "prefix_sum_i32",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.PrefixSum, Type: vec.Int32, Size: OfInput()}},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewHashBuildPK builds a key→row-position table over a unique-key column.
// totalRows sizes the table for the full build side.
func NewHashBuildPK(totalRows int, label string) *Task {
	return &Task{
		Kind:           primitive.HashBuild,
		Kernel:         "hash_build_pk_i32",
		Params:         []int64{0},
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.HashTable, Type: vec.Int64, Size: Exact(kernels.HashTableLen(totalRows))}},
		Accumulate:     true,
		InitKernel:     "hash_table_init",
		ChunkBaseParam: 0,
		Label:          label,
	}
}

// NewHashBuildSet builds a key set (semi-join build side). distinct sizes
// the table for the expected distinct key count.
func NewHashBuildSet(distinct int, label string) *Task {
	return &Task{
		Kind:           primitive.HashBuild,
		Kernel:         "hash_build_set_i32",
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.HashTable, Type: vec.Int64, Size: Exact(kernels.HashTableLen(distinct))}},
		Accumulate:     true,
		InitKernel:     "hash_table_init",
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewHashProbe probes a table with a key column, emitting join pairs
// (probe-side global positions, build payloads). estimate is the expected
// match fraction for output sizing.
func NewHashProbe(estimate float64, label string) *Task {
	return &Task{
		Kind:    primitive.HashProbe,
		Kernel:  "hash_probe_i32",
		Params:  []int64{0},
		NInputs: 2,
		Outputs: []OutputSpec{
			{Semantic: primitive.Position, Type: vec.Int32, Size: Estimated(estimate)},
			{Semantic: primitive.Position, Type: vec.Int64, Size: Estimated(estimate)},
		},
		EmitsCount:     true,
		CountSets:      []int{0, 1},
		ChunkBaseParam: 0,
		Label:          label,
	}
}

// NewHashAgg aggregates an int64 value column grouped by an int32 key
// column into a shared table. groupsHint (expected distinct groups) feeds
// the cost model and sizes the table.
func NewHashAgg(op kernels.AggOp, groupsHint int, label string) *Task {
	var identity int64
	switch op {
	case kernels.AggMin:
		identity = int64(^uint64(0) >> 1)
	case kernels.AggMax:
		identity = -int64(^uint64(0)>>1) - 1
	}
	return &Task{
		Kind:           primitive.HashAgg,
		Kernel:         "hash_agg_i32_i64",
		Params:         []int64{int64(op), int64(groupsHint)},
		NInputs:        2,
		Outputs:        []OutputSpec{{Semantic: primitive.HashTable, Type: vec.Int64, Size: Exact(kernels.HashTableLen(groupsHint))}},
		Accumulate:     true,
		InitKernel:     "hash_table_init",
		InitParams:     []int64{identity},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewHashAggCount counts rows per int32 key into a shared table.
func NewHashAggCount(groupsHint int, label string) *Task {
	return &Task{
		Kind:           primitive.HashAgg,
		Kernel:         "hash_agg_count_i32",
		Params:         []int64{int64(groupsHint)},
		NInputs:        1,
		Outputs:        []OutputSpec{{Semantic: primitive.HashTable, Type: vec.Int64, Size: Exact(kernels.HashTableLen(groupsHint))}},
		Accumulate:     true,
		InitKernel:     "hash_table_init",
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewHashExtract compacts a hash table into dense key and aggregate
// columns. maxGroups sizes the outputs.
func NewHashExtract(maxGroups int, label string) *Task {
	return &Task{
		Kind:    primitive.HashExtract,
		Kernel:  "hash_extract",
		NInputs: 1,
		Outputs: []OutputSpec{
			{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(maxGroups)},
			{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(maxGroups)},
		},
		EmitsCount:     true,
		CountSets:      []int{0, 1},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewSortAgg aggregates an int64 value column over sorted int32 keys using
// a group-index prefix sum (SORT_AGG). maxGroups sizes the outputs.
func NewSortAgg(op kernels.AggOp, maxGroups int, label string) *Task {
	return &Task{
		Kind:    primitive.SortAgg,
		Kernel:  "sort_agg_i32_i64",
		Params:  []int64{int64(op)},
		NInputs: 3,
		Outputs: []OutputSpec{
			{Semantic: primitive.Numeric, Type: vec.Int32, Size: Exact(maxGroups)},
			{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(maxGroups)},
		},
		EmitsCount:     true,
		CountSets:      []int{0, 1},
		Accumulate:     false,
		ChunkBaseParam: -1,
		Label:          label,
	}
}
