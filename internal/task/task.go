// Package task implements ADAMANT's task layer (§III-B of the paper): the
// intermediate layer that encapsulates concrete implementations of database
// primitives and links them to the device drivers.
//
// A Task is one instantiated primitive: the kernel implementing it (the
// kernel container), its scalar parameters, and the shapes of its outputs
// (the data container information the runtime's prepare_output_buffer
// needs). Tasks are validated against the primitive definitions of Table I,
// so any custom implementation that honors the I/O semantics can be plugged
// in — including mixing implementations from different SDKs in one plan.
package task

import (
	"errors"
	"fmt"

	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/vec"
)

// Task errors.
var ErrBadTask = errors.New("task: invalid task definition")

// SizeKind selects how an output buffer is sized from the input chunk size.
type SizeKind uint8

// Output sizing rules.
const (
	// SizeInput sizes the output to the logical length of an input port
	// (N selects the port; the OfInput constructor uses port 0). Maps and
	// filters follow their value input; MATERIALIZE_POSITION follows its
	// position list.
	SizeInput SizeKind = iota
	// SizeFixed sizes the output to a constant element count
	// (aggregation scalars, hash tables sized for the full build side).
	SizeFixed
	// SizeFraction sizes the output to an estimated fraction of the
	// input chunk (selective position lists). The estimate comes from the
	// optimizer; kernels fail loudly on overflow.
	SizeFraction
)

// SizeRule computes an output buffer's element count for a chunk of n input
// rows.
type SizeRule struct {
	Kind SizeKind
	N    int     // element count for SizeFixed
	Frac float64 // estimated selectivity for SizeFraction
}

// Elements returns the buffer size for an input chunk of n elements.
func (r SizeRule) Elements(n int) int {
	switch r.Kind {
	case SizeFixed:
		return r.N
	case SizeFraction:
		e := int(float64(n)*r.Frac) + 64
		if e > n {
			e = n
		}
		return e
	default:
		return n
	}
}

// Exact returns a SizeRule for a constant element count.
func Exact(n int) SizeRule { return SizeRule{Kind: SizeFixed, N: n} }

// OfInput returns the rule sizing the output like input port 0.
func OfInput() SizeRule { return SizeRule{Kind: SizeInput} }

// OfInputPort returns the rule sizing the output like the given input port.
func OfInputPort(port int) SizeRule { return SizeRule{Kind: SizeInput, N: port} }

// Estimated returns a fraction-of-input rule.
func Estimated(frac float64) SizeRule { return SizeRule{Kind: SizeFraction, Frac: frac} }

// OutputSpec describes one output port of a task.
type OutputSpec struct {
	// Semantic is the edge semantic the port produces.
	Semantic primitive.Semantic
	// Type is the physical vector type of the buffer.
	Type vec.Type
	// Size tells prepare_output_buffer how large to allocate.
	Size SizeRule
}

// Task is an instantiated primitive: a kernel container (which
// implementation runs, with which parameters) plus the data container
// information (output shapes and chunk-state conventions) the runtime needs
// to execute it on any plugged device.
type Task struct {
	// Kind is the Table I primitive this task implements.
	Kind primitive.Kind
	// Kernel names the implementation in the device's kernel registry.
	Kernel string
	// Params are the scalar launch parameters.
	Params []int64
	// NInputs is the number of buffer inputs (kernel args are inputs
	// followed by outputs, then the count buffer if EmitsCount).
	NInputs int
	// Outputs describe the data outputs, in kernel argument order.
	Outputs []OutputSpec

	// EmitsCount marks kernels that report a result cardinality through a
	// trailing 1-element int64 buffer. The runtime retrieves it after the
	// launch and propagates it as the logical length of the output ports
	// listed in CountSets.
	EmitsCount bool
	// CountSets lists the output ports whose logical length the count
	// sets.
	CountSets []int

	// Accumulate marks pipeline-breaker tasks whose outputs persist in
	// device memory and fold results across chunks (aggregates, hash
	// tables). Non-accumulating outputs are per-chunk scratch.
	Accumulate bool
	// InitKernel, when set, runs once over the accumulator outputs before
	// the first chunk (e.g. hash_table_init, fill_i64 with an aggregate
	// identity).
	InitKernel string
	// InitParams are the scalar parameters of InitKernel.
	InitParams []int64

	// ChunkBaseParam is the index within Params that the runtime
	// overwrites with the chunk's global row offset, so kernels that emit
	// positions (hash_build_pk, hash_probe) produce global row numbers
	// under chunked execution. -1 when unused.
	ChunkBaseParam int

	// Label is a diagnostic name, e.g. "filter(l_shipdate>=d)".
	Label string
}

// Validate checks the task against its primitive definition.
func (t *Task) Validate() error {
	sig, err := primitive.SignatureOf(t.Kind)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadTask, err)
	}
	if t.Kernel == "" {
		return fmt.Errorf("%w: %s task has no kernel", ErrBadTask, t.Kind)
	}
	if t.NInputs < len(sig.Inputs) && !sig.Variadic {
		return fmt.Errorf("%w: %s needs %d inputs, task declares %d", ErrBadTask, t.Kind, len(sig.Inputs), t.NInputs)
	}
	if len(t.Outputs) != len(sig.Outputs) {
		return fmt.Errorf("%w: %s produces %d outputs, task declares %d", ErrBadTask, t.Kind, len(sig.Outputs), len(t.Outputs))
	}
	for i, out := range t.Outputs {
		if out.Semantic != sig.Outputs[i] {
			return fmt.Errorf("%w: %s output %d is %s, signature requires %s",
				ErrBadTask, t.Kind, i, out.Semantic, sig.Outputs[i])
		}
	}
	for _, p := range t.CountSets {
		if p < 0 || p >= len(t.Outputs) {
			return fmt.Errorf("%w: %s count sets unknown port %d", ErrBadTask, t.Kind, p)
		}
	}
	if t.ChunkBaseParam >= len(t.Params) {
		return fmt.Errorf("%w: %s chunk-base param %d out of %d params", ErrBadTask, t.Kind, t.ChunkBaseParam, len(t.Params))
	}
	return nil
}

// String summarizes the task.
func (t *Task) String() string {
	if t.Label != "" {
		return fmt.Sprintf("%s[%s]", t.Kind, t.Label)
	}
	return fmt.Sprintf("%s[%s]", t.Kind, t.Kernel)
}
