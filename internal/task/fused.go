package task

import (
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/vec"
)

// Constructors for the fused single-pass primitives the fusion pass over
// internal/graph emits. A fused task's inputs are the distinct base columns
// the original chain touched; the predicate list and map expression travel
// in the scalar parameters (the fused kernels' micro-program encoding).

// FusedPred is one conjunctive predicate of a fused chain. Col indexes the
// fused task's input ports (= kernel column arguments).
type FusedPred struct {
	Col    int
	Op     kernels.CmpOp
	Lo, Hi int64
}

// FusedMap is the map expression of a fused chain over input-port indices.
// Kind is one of kernels.FusedMapCol / FusedMapMul / FusedMapMulComp; B and
// K are ignored by kinds that do not use them.
type FusedMap struct {
	Kind int64
	A, B int
	K    int64
}

func fusedParams(preds []FusedPred, m FusedMap) []int64 {
	params := make([]int64, 0, 1+4*len(preds)+4)
	params = append(params, int64(len(preds)))
	for _, p := range preds {
		params = append(params, int64(p.Col), int64(p.Op), p.Lo, p.Hi)
	}
	return append(params, m.Kind, int64(m.A), int64(m.B), m.K)
}

// NewFusedFilterAgg builds the fused filter→map→reduce task: a pipeline
// breaker accumulating into a 1-element int64 scalar across chunks, exactly
// like AGG_BLOCK. nCols is the number of base-column inputs.
func NewFusedFilterAgg(op kernels.AggOp, preds []FusedPred, m FusedMap, nCols int, label string) *Task {
	var identity int64
	switch op {
	case kernels.AggMin:
		identity = int64(^uint64(0) >> 1) // MaxInt64
	case kernels.AggMax:
		identity = -int64(^uint64(0)>>1) - 1 // MinInt64
	}
	return &Task{
		Kind:           primitive.FusedAgg,
		Kernel:         "fused_filter_agg",
		Params:         append(fusedParams(preds, m), int64(op)),
		NInputs:        nCols,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: vec.Int64, Size: Exact(1)}},
		Accumulate:     true,
		InitKernel:     "fill_i64",
		InitParams:     []int64{identity},
		ChunkBaseParam: -1,
		Label:          label,
	}
}

// NewFusedFilterMat builds the fused filter→(map)→materialize task,
// compacting survivors straight from the base columns. t is the output
// column type the original chain produced (Int32 for a bare materialize of
// an int32 column, Int64 after a widening map).
func NewFusedFilterMat(t vec.Type, preds []FusedPred, m FusedMap, nCols int, label string) *Task {
	return &Task{
		Kind:           primitive.FusedMaterialize,
		Kernel:         "fused_filter_mat",
		Params:         fusedParams(preds, m),
		NInputs:        nCols,
		Outputs:        []OutputSpec{{Semantic: primitive.Numeric, Type: t, Size: OfInput()}},
		EmitsCount:     true,
		CountSets:      []int{0},
		ChunkBaseParam: -1,
		Label:          label,
	}
}
