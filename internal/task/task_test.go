package task

import (
	"errors"
	"testing"

	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/primitive"
	"github.com/adamant-db/adamant/internal/vec"
)

func TestSizeRules(t *testing.T) {
	if OfInput().Elements(100) != 100 {
		t.Error("OfInput")
	}
	if Exact(7).Elements(100) != 7 {
		t.Error("Exact")
	}
	est := Estimated(0.25).Elements(1000)
	if est < 250 || est > 1000 {
		t.Errorf("Estimated(0.25) of 1000 = %d", est)
	}
	// Estimates never exceed the input size.
	if Estimated(5).Elements(100) != 100 {
		t.Errorf("oversized estimate = %d", Estimated(5).Elements(100))
	}
}

// TestLibraryTasksValidate checks every built-in constructor against the
// primitive signatures.
func TestLibraryTasksValidate(t *testing.T) {
	mat32, err := NewMaterialize(vec.Int32, "m32")
	if err != nil {
		t.Fatal(err)
	}
	mat64, err := NewMaterialize(vec.Int64, "m64")
	if err != nil {
		t.Fatal(err)
	}
	matPos, err := NewMaterializePosition(vec.Int32, "mp")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggBlock(kernels.AggMin, vec.Int64, "min")
	if err != nil {
		t.Fatal(err)
	}

	tasks := []*Task{
		NewFilterBitmap(kernels.CmpLt, 10, 0, "f"),
		NewFilterColCmp(kernels.CmpLt, "fc"),
		NewBitmapAnd(),
		NewBitmapOr(),
		NewSemiJoinFilter("semi"),
		NewFilterPosition(kernels.CmpGe, 5, 0, 0.3, "fp"),
		mat32, mat64, matPos, agg,
		NewAggCountBits("count"),
		NewMapMul("mul"),
		NewMapMulComplement(100, "mc"),
		NewMapCast("cast"),
		NewPrefixSum("ps"),
		NewHashBuildPK(1000, "pk"),
		NewHashBuildSet(1000, "set"),
		NewHashProbe(0.5, "probe"),
		NewHashAgg(kernels.AggSum, 64, "agg"),
		NewHashAggCount(64, "aggc"),
		NewHashExtract(64, "ext"),
		NewSortAgg(kernels.AggSum, 64, "sa"),
	}
	for _, task := range tasks {
		if err := task.Validate(); err != nil {
			t.Errorf("%s: %v", task, err)
		}
		if task.String() == "" {
			t.Errorf("%s: empty diagnostics", task.Kernel)
		}
	}
}

func TestMinMaxIdentities(t *testing.T) {
	minT, _ := NewAggBlock(kernels.AggMin, vec.Int64, "min")
	if minT.InitKernel != "fill_i64" || minT.InitParams[0] != int64(^uint64(0)>>1) {
		t.Errorf("min identity = %v", minT.InitParams)
	}
	maxT, _ := NewAggBlock(kernels.AggMax, vec.Int64, "max")
	if maxT.InitParams[0] != -int64(^uint64(0)>>1)-1 {
		t.Errorf("max identity = %v", maxT.InitParams)
	}
	hmin := NewHashAgg(kernels.AggMin, 8, "hmin")
	if hmin.InitParams[0] != int64(^uint64(0)>>1) {
		t.Errorf("hash min identity = %v", hmin.InitParams)
	}
}

func TestMaterializeRejectsUnsupportedTypes(t *testing.T) {
	if _, err := NewMaterialize(vec.Bits, "bad"); !errors.Is(err, ErrBadTask) {
		t.Errorf("bits materialize: %v", err)
	}
	if _, err := NewAggBlock(kernels.AggSum, vec.Float64, "bad"); !errors.Is(err, ErrBadTask) {
		t.Errorf("float agg: %v", err)
	}
}

func TestValidateCatchesBadTasks(t *testing.T) {
	// No kernel.
	bad := &Task{Kind: primitive.Map, NInputs: 1, Outputs: []OutputSpec{{Semantic: primitive.Numeric}}, ChunkBaseParam: -1}
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("missing kernel: %v", err)
	}
	// Wrong output semantic.
	bad = &Task{Kind: primitive.FilterBitmap, Kernel: "x", NInputs: 1,
		Outputs: []OutputSpec{{Semantic: primitive.Numeric}}, ChunkBaseParam: -1}
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("wrong semantic: %v", err)
	}
	// Wrong output count.
	bad = &Task{Kind: primitive.HashProbe, Kernel: "x", NInputs: 2,
		Outputs: []OutputSpec{{Semantic: primitive.Position}}, ChunkBaseParam: -1}
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("wrong output count: %v", err)
	}
	// Count port out of range.
	bad = NewFilterBitmap(kernels.CmpLt, 1, 0, "f")
	bad.EmitsCount = true
	bad.CountSets = []int{5}
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("bad count port: %v", err)
	}
	// Chunk-base param out of range.
	bad = NewFilterBitmap(kernels.CmpLt, 1, 0, "f")
	bad.ChunkBaseParam = 10
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("bad chunk-base param: %v", err)
	}
	// Too few inputs for a non-variadic primitive.
	bad = &Task{Kind: primitive.MaterializePosition, Kernel: "x", NInputs: 1,
		Outputs: []OutputSpec{{Semantic: primitive.Numeric}}, ChunkBaseParam: -1}
	if err := bad.Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("too few inputs: %v", err)
	}
}

func TestTableSizing(t *testing.T) {
	pk := NewHashBuildPK(1000, "pk")
	if pk.Outputs[0].Size.Elements(0) != kernels.HashTableLen(1000) {
		t.Error("PK table sized wrong")
	}
	if pk.ChunkBaseParam != 0 {
		t.Error("PK build must take the chunk base")
	}
	probe := NewHashProbe(0.5, "p")
	if len(probe.CountSets) != 2 || !probe.EmitsCount {
		t.Error("probe must count both outputs")
	}
}
