package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/fault"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/session"
	"github.com/adamant-db/adamant/internal/shard"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// brakeDevice wall-clock-stalls every kernel launch: the host-time
// straggler a wedged or oversubscribed shard would be. Virtual timings are
// untouched, so results and stats stay bit-identical.
type brakeDevice struct {
	device.Device
	delay time.Duration
}

func (b *brakeDevice) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	time.Sleep(b.delay)
	return b.Device.Execute(req, ready)
}

// fleet builds n single-GPU shards, each with its own runtime and
// scheduler. brake[i], when set, wraps shard i's device in a launch stall.
func fleet(t *testing.T, n int, brake map[int]time.Duration) []shard.Shard {
	t.Helper()
	shards := make([]shard.Shard, n)
	for i := range shards {
		rt := hub.NewRuntime()
		var d device.Device = simcuda.New(&simhw.RTX2080Ti, nil)
		if delay, ok := brake[i]; ok {
			d = &brakeDevice{Device: d, delay: delay}
		}
		if _, err := rt.Register(d); err != nil {
			t.Fatal(err)
		}
		shards[i] = shard.Shard{
			Name:  fmt.Sprintf("shard%d", i),
			RT:    rt,
			Sched: session.NewScheduler(session.Config{}),
		}
	}
	return shards
}

// dyingFleet builds n shards whose listed members die after a few device
// operations.
func dyingFleet(t *testing.T, n int, die map[int]int64) []shard.Shard {
	t.Helper()
	shards := make([]shard.Shard, n)
	for i := range shards {
		rt := hub.NewRuntime()
		var d device.Device = simcuda.New(&simhw.RTX2080Ti, nil)
		if ops, ok := die[i]; ok {
			d = fault.Wrap(d, &fault.Plan{DieAfterOps: ops})
		}
		if _, err := rt.Register(d); err != nil {
			t.Fatal(err)
		}
		shards[i] = shard.Shard{Name: fmt.Sprintf("shard%d", i), RT: rt}
	}
	return shards
}

// wideGraph builds one plan exercising every merge kind at once: SUM, MIN,
// MAX and COUNT partials, an AVG shipped as raw SUM+COUNT, and a
// row-concatenated output column.
func wideGraph(t *testing.T, dev device.ID, a, b []int32, cut int64) *graph.Graph {
	t.Helper()
	g := graph.New()
	sa := g.AddScan("t.a", vec.FromInt32(a), dev)
	sb := g.AddScan("t.b", vec.FromInt32(b), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, cut, 0, "a<cut"), dev, sa)
	mt, err := task.NewMaterialize(vec.Int32, "b|f")
	if err != nil {
		t.Fatal(err)
	}
	m := g.AddTask(mt, dev, sb, g.Out(f, 0))
	cast := g.AddTask(task.NewMapCast("widen"), dev, g.Out(m, 0))
	mkAgg := func(op kernels.AggOp) graph.NodeID {
		at, err := task.NewAggBlock(op, vec.Int64, op.String())
		if err != nil {
			t.Fatal(err)
		}
		return g.AddTask(at, dev, g.Out(cast, 0))
	}
	sum := mkAgg(kernels.AggSum)
	min := mkAgg(kernels.AggMin)
	max := mkAgg(kernels.AggMax)
	cnt := mkAgg(kernels.AggCount)
	bits := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(f, 0))
	g.MarkResult("sum", g.Out(sum, 0))
	g.MarkResult("min", g.Out(min, 0))
	g.MarkResult("max", g.Out(max, 0))
	g.MarkResult("matched", g.Out(bits, 0))
	g.MarkResultAvg("avg", g.Out(sum, 0), g.Out(cnt, 0))
	g.MarkResult("rows", g.Out(cast, 0))
	return g
}

// groupGraph builds a hash group-by: sum(vals) grouped by keys, extracted
// as sorted (key, sum) columns.
func groupGraph(t *testing.T, dev device.ID, keys, vals []int32) *graph.Graph {
	t.Helper()
	g := graph.New()
	sk := g.AddScan("t.k", vec.FromInt32(keys), dev)
	sv := g.AddScan("t.v", vec.FromInt32(vals), dev)
	cast := g.AddTask(task.NewMapCast("widen"), dev, sv)
	ha := g.AddTask(task.NewHashAgg(kernels.AggSum, 4096, "group"), dev, sk, g.Out(cast, 0))
	ex := g.AddTask(task.NewHashExtract(4096, "extract"), dev, g.Out(ha, 0))
	g.MarkResult("k", g.Out(ex, 0))
	g.MarkResult("sum", g.Out(ex, 1))
	return g
}

func sameColumns(t *testing.T, label string, want, got *exec.Result) {
	t.Helper()
	if len(want.Columns) != len(got.Columns) {
		t.Fatalf("%s: %d columns, want %d", label, len(got.Columns), len(want.Columns))
	}
	for i, wc := range want.Columns {
		gc := got.Columns[i]
		if wc.Name != gc.Name {
			t.Fatalf("%s: column %d = %q, want %q", label, i, gc.Name, wc.Name)
		}
		if wc.Data.Type() != gc.Data.Type() || wc.Data.Len() != gc.Data.Len() {
			t.Fatalf("%s: column %q shape %v/%d vs %v/%d", label, wc.Name,
				gc.Data.Type(), gc.Data.Len(), wc.Data.Type(), wc.Data.Len())
		}
		equal := true
		switch wc.Data.Type() {
		case vec.Int32:
			equal = reflect.DeepEqual(wc.Data.I32(), gc.Data.I32())
		case vec.Int64:
			equal = reflect.DeepEqual(wc.Data.I64(), gc.Data.I64())
		case vec.Float64:
			equal = reflect.DeepEqual(wc.Data.F64(), gc.Data.F64())
		}
		if !equal {
			t.Errorf("%s: column %q diverged", label, wc.Name)
		}
	}
}

func randomData(seed int64, rows int) (a, b []int32) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]int32, rows)
	b = make([]int32, rows)
	for i := range a {
		a[i] = int32(rng.Intn(1000))
		b[i] = int32(rng.Intn(1000))
	}
	return a, b
}

// TestShardedMatchesUnsharded is the exactness core: every merge kind, over
// shard counts 1..8, row counts that do and do not split evenly, and both
// streaming models, reproduces the single-runtime answer bit for bit.
func TestShardedMatchesUnsharded(t *testing.T) {
	rowsCases := []int{2048, 777, 130}
	models := []exec.Model{exec.OperatorAtATime, exec.Chunked}
	for _, rows := range rowsCases {
		a, b := randomData(int64(rows), rows)
		for _, model := range models {
			opts := exec.Options{Model: model, ChunkElems: 256}
			baseRT := hub.NewRuntime()
			if _, err := baseRT.Register(simcuda.New(&simhw.RTX2080Ti, nil)); err != nil {
				t.Fatal(err)
			}
			want, err := exec.Run(baseRT, wideGraph(t, 0, a, b, 500), opts)
			if err != nil {
				t.Fatalf("unsharded baseline: %v", err)
			}
			wantGroup, err := exec.Run(baseRT, groupGraph(t, 0, a, b), opts)
			if err != nil {
				t.Fatalf("unsharded group baseline: %v", err)
			}
			for n := 1; n <= 8; n++ {
				c, err := shard.New(shard.Config{Shards: fleet(t, n, nil)})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("rows=%d model=%v shards=%d", rows, model, n)
				got, scattered, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !scattered {
					t.Fatalf("%s: planner declined the wide graph", label)
				}
				sameColumns(t, label, want, got)
				if len(got.Stats.Shards) != n {
					t.Fatalf("%s: %d shard stats", label, len(got.Stats.Shards))
				}
				gotGroup, scattered, err := c.Run(context.Background(), groupGraph(t, 0, a, b), opts, 0)
				if err != nil {
					t.Fatalf("%s group: %v", label, err)
				}
				if !scattered {
					t.Fatalf("%s: planner declined the group graph", label)
				}
				sameColumns(t, label+" group", wantGroup, gotGroup)
				c.Drain()
			}
		}
	}
}

// TestExplicitBoundaries: a skewed explicit partition layout still merges
// exactly; malformed layouts are typed errors before anything runs.
func TestExplicitBoundaries(t *testing.T) {
	const rows = 1024
	a, b := randomData(7, rows)
	opts := exec.Options{Model: exec.Chunked, ChunkElems: 256}
	baseRT := hub.NewRuntime()
	if _, err := baseRT.Register(simcuda.New(&simhw.RTX2080Ti, nil)); err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(baseRT, wideGraph(t, 0, a, b, 500), opts)
	if err != nil {
		t.Fatal(err)
	}

	// One shard holds 4x the rows of the other three combined slots.
	c, err := shard.New(shard.Config{
		Shards:     fleet(t, 4, nil),
		Boundaries: []int{0, 832, 896, 960, 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "skewed", want, got)
	if got.Stats.Shards[0].Rows != 832 {
		t.Errorf("skewed partition rows = %d, want 832", got.Stats.Shards[0].Rows)
	}

	bad := [][]int{
		{0, 512, 1024},            // wrong count for 4 shards
		{0, 100, 512, 768, 1024},  // unaligned interior cut
		{0, 512, 256, 768, 1024},  // not monotone
		{64, 512, 768, 896, 1024}, // does not start at 0
		{0, 512, 768, 896, 999},   // does not end at rows
	}
	for _, bounds := range bad {
		cb, err := shard.New(shard.Config{Shards: fleet(t, 4, nil), Boundaries: bounds})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := cb.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0); err == nil {
			t.Errorf("boundaries %v accepted", bounds)
		}
	}
}

// TestShardFailover: a shard that dies mid-query gets its partition
// re-dispatched to a healthy peer, the result stays exact, and the death
// mark persists so the next query avoids the dead shard from the start.
func TestShardFailover(t *testing.T) {
	const rows = 1024
	a, b := randomData(11, rows)
	opts := exec.Options{Model: exec.Chunked, ChunkElems: 256}
	baseRT := hub.NewRuntime()
	if _, err := baseRT.Register(simcuda.New(&simhw.RTX2080Ti, nil)); err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(baseRT, wideGraph(t, 0, a, b, 500), opts)
	if err != nil {
		t.Fatal(err)
	}

	sink := telemetry.NewEventSink(64)
	c, err := shard.New(shard.Config{
		Shards: dyingFleet(t, 3, map[int]int64{1: 9}),
		Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	sameColumns(t, "failover", want, got)
	st := got.Stats.Shards[1]
	if !st.FailedOver || st.Ran == 1 {
		t.Errorf("partition 1 stat = %+v, want failed over off shard 1", st)
	}
	if dead := c.Dead(); len(dead) != 1 || dead[0] != 1 {
		t.Errorf("dead = %v, want [1]", dead)
	}
	if n := sink.Totals()[telemetry.EventShardFailover]; n == 0 {
		t.Error("no shard_failover event emitted")
	}
	var failoverEvents int
	for _, ev := range got.Stats.Events {
		if ev.Kind == exec.EventShardFailover {
			failoverEvents++
		}
	}
	if failoverEvents == 0 {
		t.Error("no EventShardFailover in the result event log")
	}

	// Second query: partition 1 is reassigned at dispatch, not after
	// another failed attempt.
	got2, _, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if err != nil {
		t.Fatalf("post-death run: %v", err)
	}
	sameColumns(t, "post-death", want, got2)
	if st := got2.Stats.Shards[1]; !st.FailedOver || st.Ran == 1 {
		t.Errorf("post-death partition 1 stat = %+v", st)
	}
	c.Drain()
}

// TestShardLossModes: with every shard dead the Fail mode surfaces a typed
// *LostError; the Partial mode (failover disabled) completes without the
// dead shard's partition and flags exactly that partition.
func TestShardLossModes(t *testing.T) {
	const rows = 1024
	a, b := randomData(13, rows)
	opts := exec.Options{Model: exec.Chunked, ChunkElems: 256}

	// Every shard dies: nothing to fail over to.
	c, err := shard.New(shard.Config{
		Shards: dyingFleet(t, 2, map[int]int64{0: 7, 1: 7}),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, scattered, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if !scattered || err == nil {
		t.Fatalf("all-dead run: scattered=%v err=%v", scattered, err)
	}
	if !errors.Is(err, shard.ErrShardLost) {
		t.Fatalf("all-dead error %v does not match ErrShardLost", err)
	}
	var lost *shard.LostError
	if !errors.As(err, &lost) {
		t.Fatalf("all-dead error %v is not a *LostError", err)
	}

	// One shard dies, failover disabled, Partial mode: the rest of the
	// answer arrives with the loss flagged exactly.
	cp, err := shard.New(shard.Config{
		Shards:       dyingFleet(t, 4, map[int]int64{2: 9}),
		Loss:         shard.LossPartial,
		MaxFailovers: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := cp.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if !reflect.DeepEqual(got.Stats.PartialShards, []int{2}) {
		t.Fatalf("PartialShards = %v, want [2]", got.Stats.PartialShards)
	}
	if !got.Stats.Shards[2].Lost {
		t.Errorf("partition 2 stat not marked lost: %+v", got.Stats.Shards[2])
	}

	// The partial answer equals the unsharded answer over the surviving
	// partitions only.
	bounds := graph.ShardBoundaries(rows, 4)
	var sa, sb []int32
	for p := 0; p < 4; p++ {
		if p == 2 {
			continue
		}
		sa = append(sa, a[bounds[p]:bounds[p+1]]...)
		sb = append(sb, b[bounds[p]:bounds[p+1]]...)
	}
	baseRT := hub.NewRuntime()
	if _, err := baseRT.Register(simcuda.New(&simhw.RTX2080Ti, nil)); err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(baseRT, wideGraph(t, 0, sa, sb, 500), opts)
	if err != nil {
		t.Fatal(err)
	}
	sameColumns(t, "partial", want, got)
	cp.Drain()
}

// TestShardDeadlineTyped: the query's virtual-time budget applies per shard
// on its own clocks; an impossible budget fails every partition with the
// typed deadline error, not a loss or a wrong answer.
func TestShardDeadlineTyped(t *testing.T) {
	const rows = 4096
	a, b := randomData(17, rows)
	c, err := shard.New(shard.Config{Shards: fleet(t, 2, nil)})
	if err != nil {
		t.Fatal(err)
	}
	opts := exec.Options{Model: exec.Chunked, ChunkElems: 128, Deadline: vclock.Duration(1)}
	_, scattered, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
	if !scattered || err == nil {
		t.Fatalf("deadline run: scattered=%v err=%v", scattered, err)
	}
	if !errors.Is(err, vclock.ErrDeadline) {
		t.Fatalf("deadline error = %v", err)
	}
}

// TestHedgingBoundsTailLatency is the straggler acceptance case: on a
// fleet whose last shard stalls every kernel launch in host time, hedged
// runs complete near the healthy shards' pace while unhedged runs are
// gated on the straggler. The hedged tail (max of the runs) must stay
// under twice the unhedged median — comfortably, since the hedge escapes
// a stall tens of times longer than the healthy wall time.
func TestHedgingBoundsTailLatency(t *testing.T) {
	const rows = 2048
	const runs = 5
	a, b := randomData(23, rows)
	opts := exec.Options{Model: exec.OperatorAtATime}
	brake := map[int]time.Duration{3: 20 * time.Millisecond}

	baseRT := hub.NewRuntime()
	if _, err := baseRT.Register(simcuda.New(&simhw.RTX2080Ti, nil)); err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(baseRT, wideGraph(t, 0, a, b, 500), opts)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(c *shard.Coordinator, expectHedge bool) []time.Duration {
		t.Helper()
		walls := make([]time.Duration, 0, runs)
		for i := 0; i < runs; i++ {
			start := time.Now()
			got, scattered, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0)
			if err != nil || !scattered {
				t.Fatalf("run %d: scattered=%v err=%v", i, scattered, err)
			}
			walls = append(walls, time.Since(start))
			sameColumns(t, fmt.Sprintf("hedge run %d", i), want, got)
			st := got.Stats.Shards[3]
			if expectHedge && !(st.Hedged && st.HedgeWon && st.Ran != 3) {
				t.Errorf("run %d: straggler partition stat = %+v, want a winning hedge off shard 3", i, st)
			}
		}
		c.Drain()
		return walls
	}

	unhedged, err := shard.New(shard.Config{Shards: fleet(t, 4, brake)})
	if err != nil {
		t.Fatal(err)
	}
	slowWalls := measure(unhedged, false)

	hedged, err := shard.New(shard.Config{
		Shards: fleet(t, 4, brake),
		Hedge: shard.HedgePolicy{
			Enabled:  true,
			MinDelay: time.Millisecond,
			Poll:     200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fastWalls := measure(hedged, true)

	sort.Slice(slowWalls, func(i, j int) bool { return slowWalls[i] < slowWalls[j] })
	sort.Slice(fastWalls, func(i, j int) bool { return fastWalls[i] < fastWalls[j] })
	median := slowWalls[len(slowWalls)/2]
	tail := fastWalls[len(fastWalls)-1]
	t.Logf("unhedged median %v, hedged tail %v", median, tail)
	if tail > 2*median {
		t.Errorf("hedged tail %v exceeds 2x unhedged median %v", tail, median)
	}
}

// TestShardTraceGrafted: sharded runs keep the deterministic trace shape —
// one shard container span per partition, in partition order, with the
// winner's spans grafted beneath it.
func TestShardTraceGrafted(t *testing.T) {
	const rows = 1024
	a, b := randomData(29, rows)
	c, err := shard.New(shard.Config{Shards: fleet(t, 3, nil)})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	opts := exec.Options{Model: exec.Chunked, ChunkElems: 256, Recorder: rec}
	if _, _, err := c.Run(context.Background(), wideGraph(t, 0, a, b, 500), opts, 0); err != nil {
		t.Fatal(err)
	}
	var containers []trace.Span
	childOf := map[trace.SpanID]int{}
	for _, s := range rec.Spans() {
		if s.Kind == trace.KindShard {
			containers = append(containers, s)
		}
	}
	if len(containers) != 3 {
		t.Fatalf("%d shard containers, want 3", len(containers))
	}
	for _, s := range rec.Spans() {
		for i, cont := range containers {
			if s.Parent == cont.ID {
				childOf[cont.ID] = i
			}
		}
	}
	if len(childOf) != 3 {
		t.Errorf("only %d containers have grafted children", len(childOf))
	}
	c.Drain()
}
