// Coordinator-side gather: folding per-shard partial results back into the
// unsharded answer, per the ScatterSpec's merge rules. Every fold here is
// exact — integer partial aggregates add or take extrema, sorted group
// lists k-way merge, row partitions concatenate in partition order — so
// the merged columns are bit-identical to the unsharded run's.
package shard

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/vec"
)

// gather merges the surviving partitions' result sets into the query's
// columns, in the original result order.
func gather(spec *graph.ScatterSpec, outs []partOut) ([]exec.ResultColumn, error) {
	var alive []*exec.Result
	for p := range outs {
		if !outs[p].lost {
			alive = append(alive, outs[p].res)
		}
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("shard: no surviving partitions to gather")
	}
	type groupPair struct{ keys, vals []int64 }
	groups := map[string]groupPair{}

	cols := make([]exec.ResultColumn, 0, len(spec.Merges))
	for _, m := range spec.Merges {
		var data vec.Vector
		switch m.Kind {
		case graph.MergeFirst:
			v, err := column(alive[0], m.Name)
			if err != nil {
				return nil, err
			}
			data = v

		case graph.MergeConcat:
			parts := make([]vec.Vector, len(alive))
			for i, res := range alive {
				v, err := column(res, m.Name)
				if err != nil {
					return nil, err
				}
				parts[i] = v
			}
			v, err := concat(m.Name, parts)
			if err != nil {
				return nil, err
			}
			data = v

		case graph.MergeAgg:
			acc := m.Op.MergeIdentity()
			for _, res := range alive {
				v, err := scalar(res, m.Name)
				if err != nil {
					return nil, err
				}
				acc = m.Op.Merge(acc, v)
			}
			data = vec.FromInt64([]int64{acc})

		case graph.MergeAvg:
			sum := m.Op.MergeIdentity()
			count := m.CountOp.MergeIdentity()
			for _, res := range alive {
				s, err := scalar(res, m.Sum)
				if err != nil {
					return nil, err
				}
				n, err := scalar(res, m.Count)
				if err != nil {
					return nil, err
				}
				sum = m.Op.Merge(sum, s)
				count = m.CountOp.Merge(count, n)
			}
			data = vec.FromFloat64([]float64{exec.FinalizeAvg(sum, count)})

		case graph.MergeGroup:
			key := m.Keys + "\x00" + m.Vals
			pair, done := groups[key]
			if !done {
				lists := make([]groupList, len(alive))
				for i, res := range alive {
					kv, err := column(res, m.Keys)
					if err != nil {
						return nil, err
					}
					vv, err := column(res, m.Vals)
					if err != nil {
						return nil, err
					}
					if kv.Type() != vec.Int64 || vv.Type() != vec.Int64 || kv.Len() != vv.Len() {
						return nil, fmt.Errorf("shard: group pair %q/%q malformed", m.Keys, m.Vals)
					}
					lists[i] = groupList{keys: kv.I64(), vals: vv.I64()}
				}
				pair.keys, pair.vals = mergeGroups(lists, m.Op)
				groups[key] = pair
			}
			if m.Port == 0 {
				data = vec.FromInt64(pair.keys)
			} else {
				data = vec.FromInt64(pair.vals)
			}

		default:
			return nil, fmt.Errorf("shard: unknown merge kind %v for %q", m.Kind, m.Name)
		}
		cols = append(cols, exec.ResultColumn{Name: m.Name, Data: data})
	}
	return cols, nil
}

// column finds a named column in one shard's result set.
func column(res *exec.Result, name string) (vec.Vector, error) {
	for _, c := range res.Columns {
		if c.Name == name {
			return c.Data, nil
		}
	}
	return vec.Vector{}, fmt.Errorf("shard: shard result misses column %q", name)
}

// scalar reads a one-element int64 partial.
func scalar(res *exec.Result, name string) (int64, error) {
	v, err := column(res, name)
	if err != nil {
		return 0, err
	}
	if v.Type() != vec.Int64 || v.Len() != 1 {
		return 0, fmt.Errorf("shard: partial %q is not an int64 scalar (%s len %d)", name, v.Type(), v.Len())
	}
	return v.I64()[0], nil
}

// concat joins row-aligned shard columns in partition order (= global row
// order for partitioned tables).
func concat(name string, parts []vec.Vector) (vec.Vector, error) {
	t := parts[0].Type()
	n := 0
	for _, p := range parts {
		if p.Type() != t {
			return vec.Vector{}, fmt.Errorf("shard: column %q type differs across shards", name)
		}
		n += p.Len()
	}
	switch t {
	case vec.Int32:
		var out []int32
		if n > 0 {
			out = make([]int32, 0, n)
			for _, p := range parts {
				out = append(out, p.I32()...)
			}
		}
		return vec.FromInt32(out), nil
	case vec.Int64:
		var out []int64
		if n > 0 {
			out = make([]int64, 0, n)
			for _, p := range parts {
				out = append(out, p.I64()...)
			}
		}
		return vec.FromInt64(out), nil
	case vec.Float64:
		var out []float64
		if n > 0 {
			out = make([]float64, 0, n)
			for _, p := range parts {
				out = append(out, p.F64()...)
			}
		}
		return vec.FromFloat64(out), nil
	default:
		return vec.Vector{}, fmt.Errorf("shard: column %q has unconcatenatable type %s", name, t)
	}
}

// mergeGroups k-way-merges per-shard sorted distinct-key (key, value)
// lists, folding values of equal keys with op.Merge. The inputs are sorted
// ascending with distinct keys (hash_extract sorts its compaction), so the
// output is the globally sorted distinct key list — exactly what the
// unsharded extract produces.
func mergeGroups(lists []groupList, op kernels.AggOp) (keys, vals []int64) {
	at := make([]int, len(lists))
	for {
		min, any := int64(0), false
		for i, l := range lists {
			if at[i] >= len(l.keys) {
				continue
			}
			if !any || l.keys[at[i]] < min {
				min, any = l.keys[at[i]], true
			}
		}
		if !any {
			return keys, vals
		}
		acc := op.MergeIdentity()
		for i, l := range lists {
			if at[i] < len(l.keys) && l.keys[at[i]] == min {
				acc = op.Merge(acc, l.vals[at[i]])
				at[i]++
			}
		}
		keys = append(keys, min)
		vals = append(vals, acc)
	}
}

// groupList is one shard's sorted (key, value) group column pair.
type groupList struct{ keys, vals []int64 }
