// Package shard implements sharded multi-runtime execution: a coordinator
// that partitions a query's base table across N independent runtimes
// ("shards", each with its own devices, virtual clocks, admission scheduler
// and buffer pool), scatters the per-partition subplans, and gathers the
// partial results back into the unsharded answer.
//
// The paper's executor is a single-box design; this package is the
// robustness layer above it. The scatter rewrite is planned statically by
// graph.Scatter and is exact by construction — every merge reproduces the
// unsharded columns bit for bit, or the planner declines and the caller
// runs unsharded. On top of that the coordinator adds the tail-latency and
// fault machinery a fleet of runtimes needs: per-shard virtual-time
// deadlines (each partition gets the query's budget on its own clock),
// hedged retries (a duplicate request for a straggling partition on an
// idle peer, first result wins), bounded retry-then-failover when a shard
// dies mid-query, and a configurable shard-loss mode that either fails the
// query with a typed error or returns the surviving partitions flagged in
// Stats.PartialShards. A sharded query therefore returns the exact answer,
// a typed error, or an explicitly flagged partial answer — never a silent
// wrong result.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/session"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// ErrShardLost is the sentinel every unrecoverable shard loss wraps under
// the Fail loss mode. Match with errors.Is.
var ErrShardLost = errors.New("shard: partition lost")

// LostError is the typed failure surfaced when a partition's shard died
// and no healthy peer (or failover budget) remained to re-run it.
type LostError struct {
	// Partition is the lost table partition's index; Shard names the last
	// shard that tried it.
	Partition int
	Shard     string
	// Err is the underlying device loss.
	Err error
}

func (e *LostError) Error() string {
	return fmt.Sprintf("shard: partition %d lost on %s: %v", e.Partition, e.Shard, e.Err)
}

func (e *LostError) Unwrap() error { return e.Err }

// Is matches ErrShardLost.
func (e *LostError) Is(target error) bool { return target == ErrShardLost }

// Shard is one member runtime of the coordinator: its own device registry,
// and optionally its own admission scheduler and buffer pool — the same
// stack a standalone engine runs, reused per shard.
type Shard struct {
	// Name labels the shard in events, traces and errors.
	Name string
	// RT is the shard's device registry. Required.
	RT *hub.Runtime
	// Sched, when non-nil, admission-controls every attempt dispatched to
	// this shard against the shard's own device budgets and queue.
	Sched *session.Scheduler
	// Pool, when non-nil, is the shard's cross-query buffer pool; attempts
	// on this shard run with it, and it is invalidated wholesale when the
	// shard is marked dead.
	Pool *bufpool.Manager
}

// LossMode selects what the coordinator does with a partition it cannot
// recover.
type LossMode int

// Loss modes.
const (
	// LossFail fails the whole query with a *LostError (default).
	LossFail LossMode = iota
	// LossPartial completes the query without the lost partitions and
	// lists them in Stats.PartialShards — explicitly flagged, never
	// silent.
	LossPartial
)

// String names the loss mode.
func (m LossMode) String() string {
	switch m {
	case LossFail:
		return "fail"
	case LossPartial:
		return "partial"
	default:
		return fmt.Sprintf("loss(%d)", int(m))
	}
}

// HedgePolicy configures hedged retries for straggling partitions. The
// policy is wall-clock based: virtual clocks are per-shard and advance
// only as work completes, so a wedged or genuinely slow shard is visible
// only in host time.
type HedgePolicy struct {
	// Enabled arms hedging.
	Enabled bool
	// Factor scales the peer quantile into the hedge threshold: a
	// partition still running after Factor × quantile(completed peer
	// walls) is a straggler. Default 2.
	Factor float64
	// Quantile is the completed-peer wall-time quantile the threshold
	// derives from, in [0,1]. Default 0.5 (the median).
	Quantile float64
	// MinPeers is how many partitions must have completed before any
	// hedge fires (the quantile is meaningless earlier). Default 2.
	MinPeers int
	// MinDelay floors the threshold so near-instant peers cannot trigger
	// hedges on scheduling noise. Default 2ms.
	MinDelay time.Duration
	// Poll is the straggler-check interval. Default 500µs.
	Poll time.Duration
}

func (p HedgePolicy) normalized() HedgePolicy {
	if p.Factor <= 0 {
		p.Factor = 2
	}
	if p.Quantile <= 0 || p.Quantile > 1 {
		p.Quantile = 0.5
	}
	if p.MinPeers <= 0 {
		p.MinPeers = 2
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 2 * time.Millisecond
	}
	if p.Poll <= 0 {
		p.Poll = 500 * time.Microsecond
	}
	return p
}

// Config configures a Coordinator.
type Config struct {
	// Shards are the member runtimes; partition i is initially assigned
	// to shard i. At least one shard is required.
	Shards []Shard
	// Hedge configures hedged retries (disabled by default).
	Hedge HedgePolicy
	// Loss selects the shard-loss degradation mode (default LossFail).
	Loss LossMode
	// MaxFailovers bounds how many times one partition may be
	// re-dispatched after shard deaths. Zero means len(Shards)-1 (every
	// peer gets one chance); negative disables failover entirely.
	MaxFailovers int
	// Rewrite, when non-nil, transforms each shard graph before execution
	// (the engine passes its fusion pass here so shards fuse exactly like
	// the unsharded path).
	Rewrite func(*graph.Graph) *graph.Graph
	// Boundaries, when non-nil, overrides the even 64-aligned partition
	// bounds (len(Shards)+1 ascending row indexes from 0 to the
	// partitioned table's rows) — the knob skew experiments turn.
	Boundaries []int
	// Events, when non-nil, receives shard_straggler / shard_hedge /
	// shard_failover / shard_lost telemetry events.
	Events *telemetry.EventSink
}

// Coordinator plans and runs scattered queries over a fixed shard set.
// It is safe for concurrent use; shard-death marks persist across queries
// (a dead runtime stays dead until ReviveAll).
type Coordinator struct {
	cfg          Config
	maxFailovers int

	mu     sync.Mutex
	dead   []bool
	active []int

	wg sync.WaitGroup
}

// New validates the configuration and returns a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: no shards configured")
	}
	for i, s := range cfg.Shards {
		if s.RT == nil {
			return nil, fmt.Errorf("shard: shard %d has no runtime", i)
		}
		if s.Name == "" {
			cfg.Shards[i].Name = fmt.Sprintf("shard%d", i)
		}
	}
	cfg.Hedge = cfg.Hedge.normalized()
	maxFailovers := cfg.MaxFailovers
	if maxFailovers == 0 {
		maxFailovers = len(cfg.Shards) - 1
	} else if maxFailovers < 0 {
		maxFailovers = 0
	}
	return &Coordinator{
		cfg:          cfg,
		maxFailovers: maxFailovers,
		dead:         make([]bool, len(cfg.Shards)),
		active:       make([]int, len(cfg.Shards)),
	}, nil
}

// Shards reports the configured shard count.
func (c *Coordinator) Shards() int { return len(c.cfg.Shards) }

// Dead lists the shards currently marked dead, ascending.
func (c *Coordinator) Dead() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, d := range c.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// ReviveAll clears every shard-death mark (the harnesses' reset between
// differential runs over rebuilt runtimes).
func (c *Coordinator) ReviveAll() {
	c.mu.Lock()
	for i := range c.dead {
		c.dead[i] = false
	}
	c.mu.Unlock()
}

// Drain blocks until every in-flight attempt — including cancelled hedge
// losers abandoned by first-result-wins races — has exited. Harnesses call
// it before asserting on pool or memory baselines.
func (c *Coordinator) Drain() { c.wg.Wait() }

// markDead flags a shard dead and invalidates its buffer pool so doomed
// leases drain instead of pinning the dead runtime's cache entries.
func (c *Coordinator) markDead(s int) {
	c.mu.Lock()
	was := c.dead[s]
	c.dead[s] = true
	c.mu.Unlock()
	if !was {
		c.cfg.Shards[s].Pool.InvalidateAll()
	}
}

// pickHealthy returns the first live shard other than exclude, in index
// order (deterministic failover targets).
func (c *Coordinator) pickHealthy(exclude int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.cfg.Shards {
		if i != exclude && !c.dead[i] {
			return i, true
		}
	}
	return 0, false
}

// pickIdle returns a live shard other than exclude with no attempt
// currently running — the hedge target.
func (c *Coordinator) pickIdle(exclude int) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.cfg.Shards {
		if i != exclude && !c.dead[i] && c.active[i] == 0 {
			return i, true
		}
	}
	return 0, false
}

func (c *Coordinator) isDead(s int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[s]
}

func (c *Coordinator) trackActive(s, delta int) {
	c.mu.Lock()
	c.active[s] += delta
	c.mu.Unlock()
}

// Run executes g scattered over the shard set. priority orders each
// partition attempt in its shard's admission queue (same semantics as the
// unsharded path's session priority). scattered reports whether the
// planner accepted the graph: when false, nothing ran and the caller
// should execute unsharded (result and error are nil). When true, the
// result is bit-identical to the unsharded run, or the error is typed.
func (c *Coordinator) Run(ctx context.Context, g *graph.Graph, opts exec.Options, priority int) (res *exec.Result, scattered bool, err error) {
	spec, ok := graph.Scatter(g)
	if !ok {
		return nil, false, nil
	}
	np := len(c.cfg.Shards)
	bounds := c.cfg.Boundaries
	if bounds == nil {
		bounds = graph.ShardBoundaries(spec.PartRows, np)
	} else if err := checkBounds(bounds, np, spec.PartRows); err != nil {
		return nil, true, err
	}
	graphs := make([]*graph.Graph, np)
	for p := range graphs {
		sg, err := spec.ShardGraph(bounds[p], bounds[p+1])
		if err != nil {
			return nil, true, err
		}
		if c.cfg.Rewrite != nil {
			sg = c.cfg.Rewrite(sg)
		}
		graphs[p] = sg
	}

	r := &runState{c: c, opts: opts, graphs: graphs, bounds: bounds, priority: priority}
	start := time.Now()
	outs := make([]partOut, np)
	var wg sync.WaitGroup
	for p := 0; p < np; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			outs[p] = r.runPartition(ctx, p)
		}(p)
	}
	wg.Wait()

	for p := range outs {
		if outs[p].err != nil {
			return nil, true, outs[p].err
		}
	}
	var lost []int
	for p := range outs {
		if outs[p].lost {
			lost = append(lost, p)
		}
	}
	if len(lost) == np {
		return nil, true, &LostError{
			Partition: lost[0],
			Shard:     c.cfg.Shards[outs[lost[0]].stat.Ran].Name,
			Err:       errors.New("every partition lost"),
		}
	}

	cols, err := gather(spec, outs)
	if err != nil {
		return nil, true, err
	}
	stats := r.assemble(outs, time.Since(start))
	r.graft(outs)
	return &exec.Result{Columns: cols, Stats: stats}, true, nil
}

// checkBounds validates explicit partition boundaries.
func checkBounds(b []int, shards, rows int) error {
	if len(b) != shards+1 {
		return fmt.Errorf("shard: %d boundaries for %d shards (want %d)", len(b), shards, shards+1)
	}
	if b[0] != 0 || b[shards] != rows {
		return fmt.Errorf("shard: boundaries must span [0, %d], got [%d, %d]", rows, b[0], b[shards])
	}
	for i := 1; i <= shards; i++ {
		if b[i] < b[i-1] {
			return fmt.Errorf("shard: boundaries not ascending at %d", i)
		}
		if i < shards && b[i]%64 != 0 {
			return fmt.Errorf("shard: interior boundary %d not 64-aligned", b[i])
		}
	}
	return nil
}

// partOut is one partition's outcome.
type partOut struct {
	res    *exec.Result
	rec    *trace.Recorder
	stat   exec.ShardStat
	events []exec.RuntimeEvent
	lost   bool
	err    error
}

// attemptDone is one attempt's outcome inside a hedged race.
type attemptDone struct {
	res   *exec.Result
	rec   *trace.Recorder
	shard int
	hedge bool
	err   error
}

// runState is the per-query coordinator state.
type runState struct {
	c        *Coordinator
	opts     exec.Options
	graphs   []*graph.Graph
	bounds   []int
	priority int

	mu    sync.Mutex
	walls []time.Duration
}

func (r *runState) recordWall(w time.Duration) {
	r.mu.Lock()
	r.walls = append(r.walls, w)
	r.mu.Unlock()
}

// hedgeThreshold derives the current straggler threshold from completed
// peers, or reports that not enough peers have finished yet.
func (r *runState) hedgeThreshold() (time.Duration, bool) {
	h := r.c.cfg.Hedge
	r.mu.Lock()
	if len(r.walls) < h.MinPeers {
		r.mu.Unlock()
		return 0, false
	}
	sorted := make([]time.Duration, len(r.walls))
	copy(sorted, r.walls)
	r.mu.Unlock()
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	q := sorted[int(float64(len(sorted)-1)*h.Quantile)]
	th := time.Duration(float64(q) * h.Factor)
	if th < h.MinDelay {
		th = h.MinDelay
	}
	return th, true
}

func (r *runState) emit(t telemetry.EventType, shard int, detail string) {
	sink := r.opts.Events
	if sink == nil {
		sink = r.c.cfg.Events
	}
	sink.Emit(telemetry.Event{
		Type:   t,
		Query:  r.opts.QueryID,
		Device: r.c.cfg.Shards[shard].Name,
		Detail: detail,
	})
}

// attempt runs one partition once on one shard: per-shard admission (the
// shard's own scheduler, budgets and queue), then execution on the shard's
// runtime with the shard's buffer pool. The partition inherits the query's
// full virtual-time deadline on the shard's own clocks — shards execute
// concurrently in virtual time, so each partition must individually fit
// the budget for the scattered query to fit it.
func (r *runState) attempt(ctx context.Context, p, s int) (*exec.Result, *trace.Recorder, error) {
	sh := r.c.cfg.Shards[s]
	r.c.trackActive(s, 1)
	defer r.c.trackActive(s, -1)
	aopts := r.opts
	aopts.Pool = sh.Pool
	if r.opts.Recorder.Enabled() {
		aopts.Recorder = trace.NewRecorder()
	}
	if sh.Sched != nil {
		demand, err := exec.EstimateDemand(r.graphs[p], aopts)
		if err != nil {
			return nil, aopts.Recorder, err
		}
		grant, err := sh.Sched.Admit(ctx, session.Request{Priority: r.priority, Demand: demand, Deadline: aopts.Deadline})
		if err != nil {
			return nil, aopts.Recorder, err
		}
		defer grant.Release()
	}
	res, err := exec.RunContext(ctx, sh.RT, r.graphs[p], aopts)
	return res, aopts.Recorder, err
}

// race runs a partition on its assigned shard, hedging a duplicate onto an
// idle peer if the attempt exceeds the straggler threshold. First
// successful result wins; the loser's context is cancelled and the
// abandoned attempt drains in the background (releasing its admission
// grant and pool leases on exit) so the winner's latency is not gated on
// it. The returned outcome is the winner's, or the primary's error when
// both attempts fail.
func (r *runState) race(ctx context.Context, p, s int) (attemptDone, bool) {
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	ch := make(chan attemptDone, 2)
	r.c.wg.Add(1)
	go func() {
		defer r.c.wg.Done()
		res, rec, err := r.attempt(primCtx, p, s)
		ch <- attemptDone{res: res, rec: rec, shard: s, err: err}
	}()

	h := r.c.cfg.Hedge
	var (
		hedgeCancel   context.CancelFunc
		hedgeLaunched bool // a hedge is currently in flight
		hedgedEver    bool // any hedge launched during this race
		straggled     bool
		primFail      *attemptDone
	)
	defer func() {
		if hedgeCancel != nil {
			hedgeCancel()
		}
	}()
	var pollC <-chan time.Time
	if h.Enabled {
		t := time.NewTicker(h.Poll)
		defer t.Stop()
		pollC = t.C
	}
	start := time.Now()
	for {
		select {
		case d := <-ch:
			if d.err == nil {
				return d, hedgedEver
			}
			if d.hedge {
				if primFail != nil {
					return *primFail, hedgedEver
				}
				// The hedge lost to a fault; keep waiting for the primary.
				hedgeLaunched = false
				continue
			}
			if hedgeLaunched {
				// Primary failed with a hedge in flight: its result (or
				// error) decides next, so wait for it.
				primFail = &d
				continue
			}
			return d, hedgedEver
		case <-pollC:
			if hedgeLaunched || primFail != nil {
				continue
			}
			th, ok := r.hedgeThreshold()
			if !ok || time.Since(start) < th {
				continue
			}
			if !straggled {
				straggled = true
				r.emit(telemetry.EventShardStraggler, s,
					fmt.Sprintf("partition %d running %v, threshold %v", p, time.Since(start).Round(time.Microsecond), th))
			}
			hs, idle := r.c.pickIdle(s)
			if !idle {
				continue
			}
			hedgeLaunched = true
			hedgedEver = true
			r.emit(telemetry.EventShardHedge, hs, fmt.Sprintf("partition %d duplicated from %s", p, r.c.cfg.Shards[s].Name))
			hctx, hc := context.WithCancel(ctx)
			hedgeCancel = hc
			r.c.wg.Add(1)
			go func() {
				defer r.c.wg.Done()
				res, rec, err := r.attempt(hctx, p, hs)
				ch <- attemptDone{res: res, rec: rec, shard: hs, hedge: true, err: err}
			}()
		}
	}
}

// runPartition drives one partition to an accepted result, a typed error,
// or (under LossPartial) an explicit loss: hedged races on the assigned
// shard, bounded failover onto healthy peers when a shard dies.
func (r *runState) runPartition(ctx context.Context, p int) partOut {
	c := r.c
	out := partOut{stat: exec.ShardStat{Shard: p, Ran: p, Rows: r.bounds[p+1] - r.bounds[p]}}
	assigned := p
	if c.isDead(p) {
		next, ok := c.pickHealthy(p)
		if !ok {
			return r.losePartition(ctx, &out, p, p, errors.New("no healthy shard"))
		}
		out.stat.FailedOver = true
		out.events = append(out.events, exec.RuntimeEvent{Kind: exec.EventShardFailover, From: device.ID(p), To: device.ID(next)})
		r.emit(telemetry.EventShardFailover, next, fmt.Sprintf("partition %d re-assigned from dead %s", p, c.cfg.Shards[p].Name))
		assigned = next
	}
	failovers := 0
	start := time.Now()
	for {
		d, hedged := r.race(ctx, p, assigned)
		if hedged {
			out.stat.Hedged = true
		}
		if d.err == nil {
			out.res, out.rec = d.res, d.rec
			out.stat.Ran = d.shard
			out.stat.HedgeWon = d.hedge
			out.stat.Elapsed = d.res.Stats.Elapsed
			out.stat.Wall = time.Since(start)
			r.recordWall(out.stat.Wall)
			return out
		}
		if ctx.Err() != nil {
			out.err = d.err
			return out
		}
		var dl *exec.DeviceLostError
		if !errors.As(d.err, &dl) {
			// Deadline, admission, OOM, validation: typed failures the
			// caller must see — failing over would mask a real limit.
			out.err = d.err
			return out
		}
		c.markDead(assigned)
		if failovers < c.maxFailovers {
			if next, ok := c.pickHealthy(assigned); ok {
				failovers++
				out.stat.FailedOver = true
				out.events = append(out.events, exec.RuntimeEvent{Kind: exec.EventShardFailover, From: device.ID(assigned), To: device.ID(next)})
				r.emit(telemetry.EventShardFailover, next, fmt.Sprintf("partition %d re-dispatched after %s died", p, c.cfg.Shards[assigned].Name))
				assigned = next
				continue
			}
		}
		return r.losePartition(ctx, &out, p, assigned, d.err)
	}
}

// losePartition finalizes an unrecoverable partition under the configured
// loss mode.
func (r *runState) losePartition(_ context.Context, out *partOut, p, shard int, cause error) partOut {
	out.events = append(out.events, exec.RuntimeEvent{Kind: exec.EventShardLost, From: device.ID(shard)})
	r.emit(telemetry.EventShardLost, shard, fmt.Sprintf("partition %d unrecoverable: %v", p, cause))
	if r.c.cfg.Loss == LossPartial {
		out.stat.Ran = shard
		out.stat.Lost = true
		out.lost = true
		return *out
	}
	out.err = &LostError{Partition: p, Shard: r.c.cfg.Shards[shard].Name, Err: cause}
	return *out
}

// assemble folds the per-partition stats into the query's Stats: virtual
// elapsed is the max across partitions (shards run concurrently on
// independent clocks), counters sum over the accepted attempts (abandoned
// hedge losers are not counted), and the event log concatenates
// coordinator events and per-attempt events in partition order.
func (r *runState) assemble(outs []partOut, wall time.Duration) exec.Stats {
	var st exec.Stats
	st.Wall = wall
	for p := range outs {
		o := &outs[p]
		st.Shards = append(st.Shards, o.stat)
		st.Events = append(st.Events, o.events...)
		if o.lost {
			st.PartialShards = append(st.PartialShards, p)
			continue
		}
		s := &o.res.Stats
		if s.Elapsed > st.Elapsed {
			st.Elapsed = s.Elapsed
		}
		st.KernelTime += s.KernelTime
		st.TransferTime += s.TransferTime
		st.OverheadTime += s.OverheadTime
		st.H2DBytes += s.H2DBytes
		st.D2HBytes += s.D2HBytes
		st.Launches += s.Launches
		st.Chunks += s.Chunks
		st.Pipelines += s.Pipelines
		st.Retries += s.Retries
		st.Replans += s.Replans
		if s.PeakDeviceBytes > st.PeakDeviceBytes {
			st.PeakDeviceBytes = s.PeakDeviceBytes
		}
		st.Events = append(st.Events, s.Events...)
		if len(s.FaultsByDevice) > 0 {
			if st.FaultsByDevice == nil {
				st.FaultsByDevice = make(map[device.ID]int64)
			}
			for dev, n := range s.FaultsByDevice {
				st.FaultsByDevice[dev] += n
			}
		}
	}
	return st
}

// graft folds the accepted attempts' recorders into the query recorder,
// one KindShard container per partition in partition order, so the trace
// stays a deterministic function of the plan even though shards executed
// concurrently.
func (r *runState) graft(outs []partOut) {
	if !r.opts.Recorder.Enabled() {
		return
	}
	for p := range outs {
		o := &outs[p]
		label := fmt.Sprintf("partition %d on %s", p, r.c.cfg.Shards[o.stat.Ran].Name)
		if o.stat.HedgeWon {
			label += " (hedge won)"
		}
		if o.lost {
			label = fmt.Sprintf("partition %d lost", p)
		}
		var start, end vclock.Time
		if o.rec != nil {
			for _, s := range o.rec.Spans() {
				if s.Parent != trace.NoSpan {
					continue
				}
				if start == 0 && end == 0 || s.Start < start {
					start = s.Start
				}
				if s.End > end {
					end = s.End
				}
			}
		}
		id := r.opts.Recorder.Add(trace.Span{
			Parent: trace.NoSpan, Kind: trace.KindShard, Label: label,
			Start: start, End: end, Node: -1, Pipeline: -1, Chunk: -1,
		})
		if !o.lost {
			r.opts.Recorder.Graft(id, o.rec)
		}
	}
}
