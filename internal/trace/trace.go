// Package trace records per-query execution traces of the simulated
// ADAMANT stack.
//
// The paper's entire evaluation (§V) decomposes query time into data
// transfer, kernel execution, and runtime overhead. The executor's Stats
// report those sums per query; this package records the individual
// operations behind the sums — every transfer, kernel launch, allocation,
// chunk and pipeline boundary, retry and failover — as spans with virtual
// start/end times taken from the vclock timelines. Because every time in a
// span is virtual, a trace is a pure function of (plan, data, options,
// fault seed): running the same query twice yields bit-for-bit identical
// traces, which turns traces into golden, diffable test artifacts instead
// of flaky timings.
//
// The one exception is the admission-wait span: waiting in the session
// queue happens in host wall time (virtual time is per-device, not global),
// so admission spans carry a Wall duration and zero-length virtual times,
// and the deterministic renderers (summary, Chrome export) omit the wall
// figure.
package trace

import (
	"fmt"
	"sync"
	"time"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Kind classifies a span.
type Kind uint8

// Span kinds. The first three are containers (the query, one pipeline, one
// chunk iteration); the engine kinds occupy virtual time on a device
// engine; the remaining kinds annotate runtime decisions.
const (
	// KindQuery is the root container: one per execution attempt set.
	KindQuery Kind = iota
	// KindPipeline contains everything one pipeline issued.
	KindPipeline
	// KindChunk contains one chunk iteration of a pipeline.
	KindChunk
	// KindH2D is a host-to-device transfer (place_data). A fresh
	// placement's driver-side allocation is folded into its span: the
	// device schedules allocation and copy back to back in one call.
	KindH2D
	// KindD2H is a device-to-host transfer (retrieve_data).
	KindD2H
	// KindAlloc is a device-memory allocation (prepare_memory).
	KindAlloc
	// KindPinnedAlloc is a pinned host allocation (add_pinned_memory).
	KindPinnedAlloc
	// KindFree is a buffer release (delete_memory). View and host-resident
	// frees cost nothing and record no span.
	KindFree
	// KindKernel is a kernel dispatch: SDK launch overhead plus the kernel
	// body, as one compute-engine span.
	KindKernel
	// KindSync is a chunk-boundary transfer/execute thread handshake.
	KindSync
	// KindTransform is a memory-format transform (transform_memory).
	KindTransform
	// KindRetry annotates a transient fault being retried: the span covers
	// the virtual backoff before the re-attempt and its label carries the
	// injected fault.
	KindRetry
	// KindFailover annotates a query re-placing from a lost device onto
	// its fallback.
	KindFailover
	// KindAdmission is the wait in the session admission queue. Wall time
	// only; excluded from deterministic renderings.
	KindAdmission
	// KindDegrade annotates one step of the adaptive OOM ladder: a halving
	// of the effective chunk size, or the last-resort re-placement onto a
	// host-resident device. The label carries the sizes (or devices) and
	// the allocation failure that forced the step.
	KindDegrade
	// KindDeadline annotates a query failing its virtual-time deadline at
	// a chunk boundary.
	KindDeadline
	// KindCache annotates a buffer-pool lookup for a base column: a warm
	// hit, a shared join onto an in-flight transfer, or the cold miss
	// that loaded it. Annotation only, never engine time — the cold load's
	// h2d/alloc spans are recorded separately by the device wrapper.
	KindCache
	// KindFuse annotates a fused single-pass kernel launch: the launch
	// itself is a normal KindKernel compute span, and the fuse span (same
	// extent, annotation only — never engine time) marks that it replaced a
	// whole filter→map→{reduce,materialize} chain, so summaries show which
	// primitives ran fused.
	KindFuse
	// KindAutoPlan annotates one cost-catalog planner decision (placement,
	// execution model, or initial chunk size) taken before the query ran.
	// Annotation only, zero virtual extent at the query start.
	KindAutoPlan
	// KindReplan annotates a mid-query re-plan: observed pipeline
	// cardinality drifted from the estimate, and the executor restarted the
	// attempt with a new chunk size. The label carries the old and new chunk
	// sizes and the drifted pipeline's estimated vs actual rows.
	KindReplan
	// KindShard is the container for one shard partition of a scattered
	// query: the shard coordinator grafts each partition's spans (recorded
	// into a per-shard recorder, because shards execute concurrently) under
	// one shard span per partition, in partition order. Its label carries
	// the partition index and the shard that ran it.
	KindShard

	numKinds
)

// String returns the kind's name as used in trace renderings.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindPipeline:
		return "pipeline"
	case KindChunk:
		return "chunk"
	case KindH2D:
		return "h2d"
	case KindD2H:
		return "d2h"
	case KindAlloc:
		return "alloc"
	case KindPinnedAlloc:
		return "pinned-alloc"
	case KindFree:
		return "free"
	case KindKernel:
		return "kernel"
	case KindSync:
		return "sync"
	case KindTransform:
		return "transform"
	case KindRetry:
		return "retry"
	case KindFailover:
		return "failover"
	case KindAdmission:
		return "admission"
	case KindDegrade:
		return "degrade"
	case KindDeadline:
		return "deadline"
	case KindCache:
		return "cache"
	case KindFuse:
		return "fuse"
	case KindAutoPlan:
		return "autoplan"
	case KindReplan:
		return "replan"
	case KindShard:
		return "shard"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Container reports whether the kind is a grouping span (query, pipeline,
// chunk) whose extent is the envelope of its children.
func (k Kind) Container() bool {
	return k == KindQuery || k == KindPipeline || k == KindChunk || k == KindShard
}

// Engine reports whether the kind occupies busy time on a device engine
// timeline. The sum of engine-span durations in a single-query trace equals
// the query's KernelTime + TransferTime + OverheadTime.
func (k Kind) Engine() bool {
	switch k {
	case KindH2D, KindD2H, KindAlloc, KindPinnedAlloc, KindFree, KindKernel, KindSync, KindTransform:
		return true
	default:
		return false
	}
}

// SpanID indexes a span within its recorder.
type SpanID int32

// NoSpan is the nil parent reference.
const NoSpan SpanID = -1

// Span is one recorded operation or grouping.
type Span struct {
	// ID is the span's index in the recorder; Parent links to the
	// enclosing container (NoSpan for roots).
	ID     SpanID
	Parent SpanID
	// Kind classifies the span; Label carries the operation detail (kernel
	// name, scan column, fault description, ...).
	Kind  Kind
	Label string
	// Device and Engine attribute engine spans to a device timeline
	// ("copy" or "compute"). Both empty for containers and annotations.
	Device string
	Engine string
	// Start and End are virtual times. Containers hold the envelope of
	// their children.
	Start vclock.Time
	End   vclock.Time
	// Bytes is the payload moved (transfers) or allocated (allocations).
	Bytes int64
	// Rows is the logical output cardinality a kernel produced (set after
	// count retrieval for counted kernels; 0 when not applicable).
	Rows int64
	// Units is the input cardinality a kernel processed — the work the
	// span's duration bought. The cost catalog normalizes by this, not
	// Rows: an aggregate over a million rows outputs one row but did a
	// million rows of work. 0 when not applicable.
	Units int64
	// Node, Pipeline and Chunk attribute the span to the plan: graph node
	// ID, pipeline index, chunk index. -1 when not applicable.
	Node     int
	Pipeline int
	Chunk    int
	// Wall is the host wall-clock duration for admission spans, which
	// have no virtual extent. Excluded from deterministic renderings.
	Wall time.Duration
}

// Duration returns the span's virtual extent.
func (s *Span) Duration() vclock.Duration { return s.End.Sub(s.Start) }

// Recorder collects the spans of one query execution. A nil *Recorder is a
// valid, disabled recorder: every method is a no-op, so call sites need no
// guards and the disabled path costs nothing.
//
// Span times are exact for the single query the executor issues serially;
// concurrent queries sharing a device should record into separate
// recorders per query (the executor does).
type Recorder struct {
	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether the recorder records.
func (r *Recorder) Enabled() bool { return r != nil }

// Add records a span, assigns its ID, and widens every ancestor
// container's envelope to include it (overlapped execution models schedule
// child operations before or after the instant a container was opened).
// It returns the new span's ID, or NoSpan on a nil recorder.
func (r *Recorder) Add(s Span) SpanID {
	if r == nil {
		return NoSpan
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.ID = SpanID(len(r.spans))
	r.spans = append(r.spans, s)
	for p := s.Parent; p != NoSpan; {
		a := &r.spans[p]
		if s.Start < a.Start {
			a.Start = s.Start
		}
		if s.End > a.End {
			a.End = s.End
		}
		p = a.Parent
	}
	return s.ID
}

// SetRows updates a recorded span's output cardinality (kernels learn
// their true output length only after the count buffer is retrieved).
func (r *Recorder) SetRows(id SpanID, rows int64) {
	if r == nil || id == NoSpan {
		return
	}
	r.mu.Lock()
	if int(id) < len(r.spans) {
		r.spans[id].Rows = rows
	}
	r.mu.Unlock()
}

// SetUnits updates a recorded span's input cardinality (known to the
// executor at launch, not to the device layer that records the span).
func (r *Recorder) SetUnits(id SpanID, units int64) {
	if r == nil || id == NoSpan {
		return
	}
	r.mu.Lock()
	if int(id) < len(r.spans) {
		r.spans[id].Units = units
	}
	r.mu.Unlock()
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Graft re-records every span of child under the given parent span: roots
// of the child recorder become children of parent, and nested structure is
// preserved through re-assigned IDs. The shard coordinator uses it to fold
// per-shard recorders (shards execute concurrently, so they must not share
// one recorder's span ordering) into the query's recorder in deterministic
// partition order. A nil receiver or nil child no-ops.
func (r *Recorder) Graft(parent SpanID, child *Recorder) {
	if r == nil || child == nil {
		return
	}
	ids := make(map[SpanID]SpanID)
	for _, s := range child.Spans() {
		oldID := s.ID
		if p, ok := ids[s.Parent]; ok {
			s.Parent = p
		} else {
			s.Parent = parent
		}
		ids[oldID] = r.Add(s)
	}
}

// Spans returns a copy of the recorded spans in record order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
