package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/vclock"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKindClasses(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.Container() && k.Engine() {
			t.Errorf("%v is both container and engine", k)
		}
	}
	if !KindQuery.Container() || !KindChunk.Container() {
		t.Error("query/chunk must be containers")
	}
	for _, k := range []Kind{KindH2D, KindD2H, KindAlloc, KindPinnedAlloc, KindFree, KindKernel, KindSync, KindTransform} {
		if !k.Engine() {
			t.Errorf("%v must be an engine kind", k)
		}
	}
	for _, k := range []Kind{KindRetry, KindFailover, KindAdmission} {
		if k.Engine() || k.Container() {
			t.Errorf("%v must be an annotation", k)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if id := r.Add(Span{Kind: KindKernel}); id != NoSpan {
		t.Errorf("nil Add = %d, want NoSpan", id)
	}
	r.SetRows(0, 5) // must not panic
	if r.Len() != 0 || r.Spans() != nil {
		t.Error("nil recorder reports spans")
	}
}

func TestRecorderEnvelopeWidening(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	q := r.Add(Span{Kind: KindQuery, Parent: NoSpan, Start: 100, End: 100, Node: -1, Pipeline: -1, Chunk: -1})
	p := r.Add(Span{Kind: KindPipeline, Parent: q, Start: 100, End: 100, Pipeline: 0, Node: -1, Chunk: -1})
	// A child scheduled before the container opened (overlap) and one after.
	r.Add(Span{Kind: KindH2D, Parent: p, Start: 40, End: 90, Bytes: 64})
	k := r.Add(Span{Kind: KindKernel, Parent: p, Start: 120, End: 250})
	r.SetRows(k, 17)
	r.SetRows(SpanID(99), 1) // out of range: ignored

	spans := r.Spans()
	if len(spans) != 4 || r.Len() != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, id := range []SpanID{q, p} {
		s := spans[id]
		if s.Start != 40 || s.End != 250 {
			t.Errorf("span %d envelope = [%v,%v], want [40,250]", id, s.Start, s.End)
		}
	}
	if spans[k].Rows != 17 {
		t.Errorf("rows = %d, want 17", spans[k].Rows)
	}
	if d := spans[q].Duration(); d != 210 {
		t.Errorf("query duration = %v, want 210ns", d)
	}
	// Spans() returns a copy: mutating it must not touch the recorder.
	spans[0].Label = "mutated"
	if r.Spans()[0].Label == "mutated" {
		t.Error("Spans aliases internal storage")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.ObserveQuery(QueryStats{
		Elapsed: 2 * vclock.Millisecond, KernelTime: vclock.Millisecond,
		TransferTime: 600 * vclock.Microsecond, OverheadTime: 400 * vclock.Microsecond,
		H2DBytes: 1024, D2HBytes: 8, Launches: 7, Chunks: 3, Pipelines: 1,
		Retries: 2, Failovers: 1, Queued: true,
	})
	m.ObserveQuery(QueryStats{Elapsed: 50 * vclock.Microsecond, Err: true})
	m.ObserveQuery(QueryStats{Elapsed: 10 * vclock.Second})

	var b strings.Builder
	m.WriteSnapshot(&b, []DeviceRow{{Name: "RTX2080Ti/CUDA", Launches: 7, KernelTime: vclock.Millisecond, H2DBytes: 1024}})
	out := b.String()
	for _, want := range []string{
		"queries            3 (1 errors, 1 queued before running)",
		"pipelines          1 over 3 chunks",
		"kernel launches    7",
		"1024 H2D, 8 D2H",
		"2 retries, 1 failovers",
		"<=100µs:1", ">1s:1",
		"device RTX2080Ti/CUDA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}

	var nilM *Metrics
	nilM.ObserveQuery(QueryStats{}) // no-op
	b.Reset()
	nilM.WriteSnapshot(&b, nil)
	if !strings.Contains(b.String(), "disabled") {
		t.Errorf("nil snapshot = %q", b.String())
	}
}

func sampleSpans() []Span {
	return []Span{
		{ID: 0, Parent: NoSpan, Kind: KindQuery, Label: "chunked", Start: 0, End: 1000, Node: -1, Pipeline: -1, Chunk: -1},
		{ID: 1, Parent: 0, Kind: KindPipeline, Start: 0, End: 900, Pipeline: 0, Node: -1, Chunk: -1},
		{ID: 2, Parent: 1, Kind: KindChunk, Start: 0, End: 500, Pipeline: 0, Chunk: 0, Node: -1},
		{ID: 3, Parent: 2, Kind: KindH2D, Label: "stage price", Device: "gpu", Engine: "copy", Start: 0, End: 200, Bytes: 512, Pipeline: 0, Chunk: 0, Node: 0},
		{ID: 4, Parent: 2, Kind: KindKernel, Label: "filter_bitmap_i32", Device: "gpu", Engine: "compute", Start: 200, End: 450, Rows: 64, Pipeline: 0, Chunk: 0, Node: 1},
		{ID: 5, Parent: 2, Kind: KindChunk, Start: 500, End: 900, Pipeline: 0, Chunk: 1, Node: -1},
		{ID: 6, Parent: 0, Kind: KindRetry, Label: "injected: transient", Start: 450, End: 460, Pipeline: 0, Node: -1, Chunk: -1},
		{ID: 7, Parent: 0, Kind: KindFailover, Label: "device(0)->device(1)", Start: 900, End: 900, Node: -1, Pipeline: -1, Chunk: -1},
		{ID: 8, Parent: 0, Kind: KindD2H, Label: "result sum", Device: "gpu", Engine: "copy", Start: 900, End: 950, Bytes: 8, Pipeline: -1, Chunk: -1, Node: 2},
		{ID: 9, Parent: NoSpan, Kind: KindAdmission, Label: "admission", Wall: 123, Node: -1, Pipeline: -1, Chunk: -1},
	}
}

func TestWriteSummary(t *testing.T) {
	var b strings.Builder
	WriteSummary(&b, sampleSpans())
	out := b.String()
	for _, want := range []string{
		"trace summary: 10 spans",
		`query "chunked" +0s..+1µs (1µs)`,
		"retries: 1",
		"failover: device(0)->device(1)",
		"pipeline 0 (2 chunks):",
		"stage price", "512B",
		"filter_bitmap_i32", "rows=64",
		"outside pipelines:",
		"result sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "123") {
		t.Errorf("summary leaks wall time:\n%s", out)
	}

	// Determinism: rendering the same spans twice is byte-identical.
	var b2 strings.Builder
	WriteSummary(&b2, sampleSpans())
	if b2.String() != out {
		t.Error("summary not deterministic")
	}
}

func TestWriteChrome(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 thread-name metadata records (executor, gpu/copy, gpu/compute)
	// plus one complete event per span.
	if got, want := len(doc.TraceEvents), 3+10; got != want {
		t.Fatalf("%d events, want %d", got, want)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" {
			names[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"executor", "gpu/copy", "gpu/compute"} {
		if !names[want] {
			t.Errorf("missing track %q", want)
		}
	}
	var b2 strings.Builder
	if err := WriteChrome(&b2, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Error("chrome export not deterministic")
	}
}
