package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto). Only the fields we emit.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	TS    float64        `json:"ts"`             // microseconds
	Dur   *float64       `json:"dur,omitempty"`  // microseconds
	Args  map[string]any `json:"args,omitempty"` // small, fixed keys
}

// WriteChrome renders spans as Chrome trace_event JSON. Containers and
// annotations land on an "executor" track; engine spans land on one track
// per device engine, so copy/compute overlap in the pipelined models is
// visually inspectable. All timestamps are virtual and rebased to the
// trace's Epoch, so the output is deterministic for a deterministic
// workload regardless of engine warm-up (admission spans, whose only
// extent is wall time, render as zero-length markers at the origin).
func WriteChrome(w io.Writer, spans []Span) error {
	epoch := Epoch(spans)
	type track struct {
		name string
		tid  int
	}
	tracks := map[string]track{"": {name: "executor", tid: 0}}
	order := []track{{name: "executor", tid: 0}}
	for _, s := range spans {
		if !s.Kind.Engine() {
			continue
		}
		key := s.Device + "/" + s.Engine
		if _, ok := tracks[key]; !ok {
			t := track{name: key, tid: len(order)}
			tracks[key] = t
			order = append(order, t)
		}
	}

	events := make([]chromeEvent, 0, len(spans)+len(order))
	for _, t := range order {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   t.tid,
			Args:  map[string]any{"name": t.name},
		})
	}
	for i := range spans {
		s := &spans[i]
		tid := 0
		if s.Kind.Engine() {
			tid = tracks[s.Device+"/"+s.Engine].tid
		}
		name := s.Label
		if name == "" {
			name = s.Kind.String()
		}
		ts := float64(s.Start.Sub(epoch)) / 1e3
		if ts < 0 { // admission spans carry no virtual time; pin to origin
			ts = 0
		}
		dur := float64(s.Duration()) / 1e3
		args := map[string]any{}
		if s.Bytes > 0 {
			args["bytes"] = s.Bytes
		}
		if s.Rows > 0 {
			args["rows"] = s.Rows
		}
		if s.Node >= 0 {
			args["node"] = s.Node
		}
		if s.Chunk >= 0 {
			args["chunk"] = s.Chunk
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name:  name,
			Cat:   s.Kind.String(),
			Phase: "X",
			TID:   tid,
			TS:    ts,
			Dur:   &dur,
			Args:  args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string][]chromeEvent{"traceEvents": events})
}
