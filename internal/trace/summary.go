package trace

import (
	"fmt"
	"io"

	"github.com/adamant-db/adamant/internal/vclock"
)

// Epoch returns the trace's virtual origin: the earliest start among the
// spans that carry virtual time (admission spans don't — they are recorded
// before the query touches any timeline). Renderers subtract it, so a
// trace reads identically whether the engine was fresh or had already
// advanced its device timelines running earlier queries.
func Epoch(spans []Span) vclock.Time {
	var epoch vclock.Time
	found := false
	for i := range spans {
		s := &spans[i]
		if s.Kind == KindAdmission {
			continue
		}
		if !found || s.Start < epoch {
			epoch = s.Start
			found = true
		}
	}
	return epoch
}

// summaryGroup aggregates the engine spans sharing one
// (pipeline, kind, device/engine, label) identity.
type summaryGroup struct {
	pipeline int
	kind     Kind
	device   string
	engine   string
	label    string
	count    int
	busy     vclock.Duration
	bytes    int64
	rows     int64
}

// WriteSummary renders a compact, deterministic digest of a trace: the
// query envelope, per-pipeline chunk counts, and every engine-span group
// with its operation count, total busy time and bytes moved. Groups appear
// in first-recorded order (the executor issues operations
// deterministically), so two runs of the same workload render byte-equal
// summaries — the golden-trace harness diffs exactly this text.
func WriteSummary(w io.Writer, spans []Span) {
	fmt.Fprintf(w, "trace summary: %d spans\n", len(spans))
	epoch := Epoch(spans)

	chunksPer := map[int]int{}
	var retries, failovers int
	var groups []*summaryGroup
	index := map[summaryGroup]*summaryGroup{}
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case KindQuery:
			fmt.Fprintf(w, "query %q %v..%v (%v)\n", s.Label,
				vclock.Time(0).Add(s.Start.Sub(epoch)), vclock.Time(0).Add(s.End.Sub(epoch)), s.Duration())
			continue
		case KindChunk:
			chunksPer[s.Pipeline]++
			continue
		case KindPipeline, KindAdmission:
			continue
		case KindRetry:
			retries++
			continue
		case KindFailover:
			failovers++
			fmt.Fprintf(w, "failover: %s\n", s.Label)
			continue
		case KindDegrade:
			fmt.Fprintf(w, "degrade: %s\n", s.Label)
			continue
		case KindDeadline:
			fmt.Fprintf(w, "deadline: %s\n", s.Label)
			continue
		case KindAutoPlan:
			fmt.Fprintf(w, "autoplan: %s\n", s.Label)
			continue
		case KindReplan:
			fmt.Fprintf(w, "replan: %s\n", s.Label)
			continue
		}
		key := summaryGroup{
			pipeline: s.Pipeline, kind: s.Kind,
			device: s.Device, engine: s.Engine, label: s.Label,
		}
		g := index[key]
		if g == nil {
			cp := key
			g = &cp
			index[key] = g
			groups = append(groups, g)
		}
		g.count++
		g.busy += s.Duration()
		g.bytes += s.Bytes
		g.rows += s.Rows
	}
	if retries > 0 {
		fmt.Fprintf(w, "retries: %d\n", retries)
	}

	pipeline := -2 // sentinel distinct from the -1 "no pipeline" scope
	for _, g := range groups {
		if g.pipeline != pipeline {
			pipeline = g.pipeline
			if pipeline < 0 {
				fmt.Fprintf(w, "outside pipelines:\n")
			} else {
				fmt.Fprintf(w, "pipeline %d (%d chunks):\n", pipeline, chunksPer[pipeline])
			}
		}
		fmt.Fprintf(w, "  %-12s %-28s %-24s x%-4d %v", g.kind, g.label, g.device+":"+g.engine, g.count, g.busy)
		if g.bytes > 0 {
			fmt.Fprintf(w, "  %dB", g.bytes)
		}
		if g.rows > 0 {
			fmt.Fprintf(w, "  rows=%d", g.rows)
		}
		fmt.Fprintln(w)
	}
}
