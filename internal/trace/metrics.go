package trace

import (
	"fmt"
	"io"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
)

// QueryStats is the per-query observation the metrics registry folds in.
// It mirrors the executor's Stats without importing it (exec imports this
// package, not the other way round).
type QueryStats struct {
	Elapsed      vclock.Duration
	KernelTime   vclock.Duration
	TransferTime vclock.Duration
	OverheadTime vclock.Duration
	H2DBytes     int64
	D2HBytes     int64
	Launches     int64
	Chunks       int
	Pipelines    int
	Retries      int64
	Failovers    int64
	// Degrades counts adaptive OOM degradation steps (chunk halvings and
	// host re-placements) the query took.
	Degrades int64
	// Shed marks a query rejected by admission-side load shedding because
	// its predicted queue wait exceeded its deadline.
	Shed bool
	// Queued marks a query that waited in the admission queue before
	// running.
	Queued bool
	// Err marks a query that finished with an error.
	Err bool
}

// elapsedBuckets are the upper bounds of the elapsed-time histogram, in
// virtual time. The last bucket is unbounded.
var elapsedBuckets = []vclock.Duration{
	100 * vclock.Microsecond,
	vclock.Millisecond,
	10 * vclock.Millisecond,
	100 * vclock.Millisecond,
	vclock.Second,
}

// Metrics is a cumulative, engine-lifetime registry of execution counters:
// the aggregate view the per-query traces roll up into. It is safe for
// concurrent use.
type Metrics struct {
	mu           sync.Mutex
	queries      int64
	errors       int64
	chunks       int64
	pipelines    int64
	h2dBytes     int64
	d2hBytes     int64
	launches     int64
	retries      int64
	failovers    int64
	degrades     int64
	shed         int64
	waits        int64
	kernelTime   vclock.Duration
	transferTime vclock.Duration
	overheadTime vclock.Duration
	elapsedTotal vclock.Duration
	elapsedHist  []int64 // len(elapsedBuckets)+1
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{elapsedHist: make([]int64, len(elapsedBuckets)+1)}
}

// ObserveQuery folds one finished query into the registry. Nil receivers
// are no-ops so call sites need no guards.
func (m *Metrics) ObserveQuery(q QueryStats) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	if q.Err {
		m.errors++
	}
	m.chunks += int64(q.Chunks)
	m.pipelines += int64(q.Pipelines)
	m.h2dBytes += q.H2DBytes
	m.d2hBytes += q.D2HBytes
	m.launches += q.Launches
	m.retries += q.Retries
	m.failovers += q.Failovers
	m.degrades += q.Degrades
	if q.Shed {
		m.shed++
	}
	if q.Queued {
		m.waits++
	}
	m.kernelTime += q.KernelTime
	m.transferTime += q.TransferTime
	m.overheadTime += q.OverheadTime
	m.elapsedTotal += q.Elapsed
	i := 0
	for i < len(elapsedBuckets) && q.Elapsed > elapsedBuckets[i] {
		i++
	}
	m.elapsedHist[i]++
}

// defaultNsPerByte is the virtual cost per payload byte assumed before any
// query completes: on the order of a 10 GB/s interconnect, the right ballpark
// for the simulated PCIe links.
const defaultNsPerByte = 0.1

// NsPerByte estimates the engine's observed virtual cost per payload byte
// moved — total elapsed virtual time over total bytes transferred. The
// facade multiplies it by a request's demand estimate to predict queue wait
// for admission-side load shedding. Before any query completes (or on a nil
// registry) it reports defaultNsPerByte.
func (m *Metrics) NsPerByte() float64 {
	if m == nil {
		return defaultNsPerByte
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	moved := m.h2dBytes + m.d2hBytes
	if moved <= 0 || m.elapsedTotal <= 0 {
		return defaultNsPerByte
	}
	return float64(m.elapsedTotal) / float64(moved)
}

// DeviceRow is one device's cumulative counters for the snapshot, pulled
// from the device registry by the caller (the device layer keeps the
// per-device truth; the registry only aggregates queries).
type DeviceRow struct {
	Name         string
	Launches     int64
	KernelTime   vclock.Duration
	TransferTime vclock.Duration
	OverheadTime vclock.Duration
	H2DBytes     int64
	D2HBytes     int64
}

// WriteSnapshot renders the registry (and optional per-device rows) as the
// text form `adamant-run -metrics` and Engine.MetricsSnapshot print. All
// figures are counts or virtual durations, so the snapshot of a
// deterministic workload is itself deterministic.
func (m *Metrics) WriteSnapshot(w io.Writer, devices []DeviceRow) {
	if m == nil {
		fmt.Fprintln(w, "metrics: disabled")
		return
	}
	m.mu.Lock()
	fmt.Fprintf(w, "queries            %d (%d errors, %d queued before running)\n", m.queries, m.errors, m.waits)
	fmt.Fprintf(w, "pipelines          %d over %d chunks\n", m.pipelines, m.chunks)
	fmt.Fprintf(w, "kernel launches    %d\n", m.launches)
	fmt.Fprintf(w, "virtual time       elapsed %v = kernels %v + transfers %v + overhead %v (busy)\n",
		m.elapsedTotal, m.kernelTime, m.transferTime, m.overheadTime)
	fmt.Fprintf(w, "bytes moved        %d H2D, %d D2H\n", m.h2dBytes, m.d2hBytes)
	fmt.Fprintf(w, "degradation        %d retries, %d failovers, %d degrades, %d shed\n",
		m.retries, m.failovers, m.degrades, m.shed)
	fmt.Fprintf(w, "elapsed histogram ")
	for i, n := range m.elapsedHist {
		if i < len(elapsedBuckets) {
			fmt.Fprintf(w, " <=%v:%d", elapsedBuckets[i], n)
		} else {
			fmt.Fprintf(w, " >%v:%d", elapsedBuckets[len(elapsedBuckets)-1], n)
		}
	}
	fmt.Fprintln(w)
	m.mu.Unlock()

	for _, d := range devices {
		fmt.Fprintf(w, "device %-24s %d launches, kernels %v, transfers %v, overhead %v, %d B H2D, %d B D2H\n",
			d.Name, d.Launches, d.KernelTime, d.TransferTime, d.OverheadTime, d.H2DBytes, d.D2HBytes)
	}
}
