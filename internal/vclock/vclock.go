// Package vclock provides the virtual time base used by the simulated
// co-processors.
//
// ADAMANT's experiments measure how query execution time decomposes into
// data transfer, kernel execution, and runtime overhead. Reproducing those
// experiments on arbitrary development machines requires a deterministic
// clock: every simulated device advances virtual time according to its cost
// model instead of the host's wall clock. The package implements a small
// discrete-event scheduler built from independent Timelines (one per device
// engine, e.g. a GPU's copy engine and compute engine), so copy/compute
// overlap in the pipelined execution models is modelled by scheduling work
// on different timelines and synchronizing on completion events.
package vclock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrDeadline is the sentinel wrapped by every virtual-time deadline
// violation: the executor when a query overruns its deadline at a chunk
// boundary, and the session scheduler when it sheds a request whose
// predicted queue wait already exceeds its deadline. It lives here because
// both layers charge deadlines against the virtual clock, and both must
// surface the same typed error without importing each other.
var ErrDeadline = errors.New("vclock: virtual-time deadline exceeded")

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// DurationOf converts a standard library duration into a virtual duration.
func DurationOf(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a virtual duration to a standard library duration for
// formatting and comparisons.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as floating point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration like time.Duration.
func (d Duration) String() string { return d.Std().String() }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as an offset from the simulation epoch.
func (t Time) String() string { return fmt.Sprintf("+%s", time.Duration(t)) }

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Timeline is a serially ordered virtual execution engine: work scheduled on
// a timeline runs in FIFO order with no overlap, like commands submitted to
// a single CUDA stream or an OpenCL in-order command queue. Distinct
// timelines run concurrently with each other; cross-timeline dependencies
// are expressed through the ready argument of Schedule.
//
// A Timeline is safe for concurrent use.
type Timeline struct {
	mu    sync.Mutex
	name  string
	avail Time     // when the engine becomes free
	busy  Duration // total busy time accumulated
	ops   int64
}

// NewTimeline returns an idle timeline with the given diagnostic name.
func NewTimeline(name string) *Timeline {
	return &Timeline{name: name}
}

// Name returns the diagnostic name supplied at construction.
func (tl *Timeline) Name() string { return tl.name }

// Schedule enqueues an operation of length dur whose inputs become available
// at ready. It returns the virtual start and completion times. The operation
// starts at the later of ready and the completion of all previously
// scheduled work on this timeline.
func (tl *Timeline) Schedule(ready Time, dur Duration) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	start = MaxTime(ready, tl.avail)
	end = start.Add(dur)
	tl.avail = end
	tl.busy += dur
	tl.ops++
	return start, end
}

// Avail reports when the timeline next becomes free.
func (tl *Timeline) Avail() Time {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.avail
}

// Busy reports the total busy time accumulated on the timeline.
func (tl *Timeline) Busy() Duration {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.busy
}

// Ops reports how many operations have been scheduled.
func (tl *Timeline) Ops() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.ops
}

// Reset returns the timeline to the idle state at the simulation epoch.
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.avail = 0
	tl.busy = 0
	tl.ops = 0
}

// Clock aggregates the timelines of one simulation run. Execution models
// create a Clock per query execution; the elapsed virtual time of the run is
// the maximum completion time observed across all timelines.
type Clock struct {
	mu        sync.Mutex
	timelines []*Timeline
	horizon   Time // latest completion event observed
}

// NewClock returns an empty clock at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Timeline creates and registers a new timeline on the clock.
func (c *Clock) Timeline(name string) *Timeline {
	tl := NewTimeline(name)
	c.mu.Lock()
	c.timelines = append(c.timelines, tl)
	c.mu.Unlock()
	return tl
}

// Attach registers an externally created timeline so that Horizon and Reset
// take it into account.
func (c *Clock) Attach(tl *Timeline) {
	c.mu.Lock()
	c.timelines = append(c.timelines, tl)
	c.mu.Unlock()
}

// Observe records a completion event, extending the clock horizon.
func (c *Clock) Observe(t Time) {
	c.mu.Lock()
	if t > c.horizon {
		c.horizon = t
	}
	c.mu.Unlock()
}

// Horizon reports the latest completion time across all observed events and
// registered timelines.
func (c *Clock) Horizon() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.horizon
	for _, tl := range c.timelines {
		if a := tl.Avail(); a > h {
			h = a
		}
	}
	return h
}

// Reset rewinds the clock and all registered timelines to the epoch.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.horizon = 0
	for _, tl := range c.timelines {
		tl.Reset()
	}
}
