package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimelineSerializes(t *testing.T) {
	tl := NewTimeline("q")
	s1, e1 := tl.Schedule(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first op: got [%v,%v], want [0,100]", s1, e1)
	}
	// Second op is ready early but must wait for the engine.
	s2, e2 := tl.Schedule(10, 50)
	if s2 != 100 || e2 != 150 {
		t.Fatalf("second op: got [%v,%v], want [100,150]", s2, e2)
	}
	// Third op is ready late; the engine idles until then.
	s3, e3 := tl.Schedule(500, 25)
	if s3 != 500 || e3 != 525 {
		t.Fatalf("third op: got [%v,%v], want [500,525]", s3, e3)
	}
	if tl.Busy() != 175 {
		t.Errorf("busy = %v, want 175", tl.Busy())
	}
	if tl.Ops() != 3 {
		t.Errorf("ops = %d, want 3", tl.Ops())
	}
}

func TestTimelineNegativeDuration(t *testing.T) {
	tl := NewTimeline("q")
	s, e := tl.Schedule(10, -5)
	if s != 10 || e != 10 {
		t.Fatalf("negative duration: got [%v,%v], want [10,10]", s, e)
	}
}

func TestTwoTimelinesOverlap(t *testing.T) {
	copyQ := NewTimeline("copy")
	computeQ := NewTimeline("compute")

	// Transfer chunk 0, compute on it while transferring chunk 1.
	_, t0 := copyQ.Schedule(0, 100)
	_, t1 := copyQ.Schedule(0, 100) // queued behind t0
	_, c0 := computeQ.Schedule(t0, 80)
	_, c1 := computeQ.Schedule(MaxTime(t1, c0), 80)

	if t1 != 200 {
		t.Errorf("second transfer ends at %v, want 200", t1)
	}
	if c0 != 180 {
		t.Errorf("first compute ends at %v, want 180", c0)
	}
	// Second compute waits for its transfer (200) rather than compute
	// availability (180): overlap hides 80 of the 100.
	if c1 != 280 {
		t.Errorf("second compute ends at %v, want 280", c1)
	}
}

func TestTimelineConcurrentSafety(t *testing.T) {
	tl := NewTimeline("q")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Schedule(0, 7)
			}
		}()
	}
	wg.Wait()
	if got, want := tl.Busy(), Duration(32*100*7); got != want {
		t.Errorf("busy = %v, want %v", got, want)
	}
	if tl.Avail() != Time(32*100*7) {
		t.Errorf("avail = %v, want %v", tl.Avail(), 32*100*7)
	}
}

func TestClockHorizon(t *testing.T) {
	c := NewClock()
	a := c.Timeline("a")
	b := c.Timeline("b")
	a.Schedule(0, 100)
	b.Schedule(0, 300)
	if c.Horizon() != 300 {
		t.Errorf("horizon = %v, want 300", c.Horizon())
	}
	c.Observe(1000)
	if c.Horizon() != 1000 {
		t.Errorf("horizon after observe = %v, want 1000", c.Horizon())
	}
	c.Reset()
	if c.Horizon() != 0 || a.Avail() != 0 || b.Avail() != 0 {
		t.Error("reset did not rewind clock and timelines")
	}
}

func TestClockAttach(t *testing.T) {
	c := NewClock()
	tl := NewTimeline("ext")
	tl.Schedule(0, 42)
	c.Attach(tl)
	if c.Horizon() != 42 {
		t.Errorf("horizon = %v, want 42", c.Horizon())
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Std() != 1500*time.Microsecond {
		t.Errorf("Std = %v", d.Std())
	}
	if d.Seconds() != 0.0015 {
		t.Errorf("Seconds = %v", d.Seconds())
	}
	if DurationOf(2*time.Millisecond) != 2*Millisecond {
		t.Errorf("DurationOf mismatch")
	}
	if got := Time(100).Add(50 * Nanosecond); got != 150 {
		t.Errorf("Add = %v", got)
	}
	if got := Time(100).Sub(40); got != 60 {
		t.Errorf("Sub = %v", got)
	}
}

// Property: scheduling never goes backwards, and busy time accumulates
// exactly.
func TestTimelineMonotonicProperty(t *testing.T) {
	f := func(readies []uint32, durs []uint16) bool {
		tl := NewTimeline("p")
		var lastEnd Time
		var busy Duration
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			ready := Time(readies[i])
			dur := Duration(durs[i])
			start, end := tl.Schedule(ready, dur)
			if start < ready || start < lastEnd || end != start.Add(dur) {
				return false
			}
			lastEnd = end
			busy += dur
		}
		return tl.Busy() == busy && tl.Avail() == lastEnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 || MaxTime(4, 4) != 4 {
		t.Error("MaxTime broken")
	}
}
