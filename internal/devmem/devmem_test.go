package devmem

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/vec"
)

func TestAllocAndCapacity(t *testing.T) {
	p := NewPool("gpu", 1024)
	b, err := p.Alloc(vec.Int32, 128, FormatCUDA) // 512 bytes
	if err != nil {
		t.Fatal(err)
	}
	if b.Bytes() != 512 || b.Format != FormatCUDA || b.Pinned {
		t.Errorf("unexpected buffer %+v", b)
	}
	if _, err := p.Alloc(vec.Int32, 128, FormatCUDA); err != nil {
		t.Fatalf("second alloc should fit: %v", err)
	}
	_, err = p.Alloc(vec.Int32, 1, FormatCUDA)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("expected OOM, got %v", err)
	}
	st := p.Stats()
	if st.Used != 1024 || st.Peak != 1024 || st.Allocs != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnlimitedPool(t *testing.T) {
	p := NewPool("cpu", 0)
	if _, err := p.Alloc(vec.Int64, 1<<20, FormatRaw); err != nil {
		t.Fatalf("unlimited pool refused: %v", err)
	}
}

func TestPinnedDoesNotConsumeDevice(t *testing.T) {
	p := NewPool("gpu", 100)
	b, err := p.AllocPinned(vec.Int32, 1000, FormatCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Pinned {
		t.Error("buffer not pinned")
	}
	st := p.Stats()
	if st.Used != 0 || st.PinnedUsed != 4000 {
		t.Errorf("stats = %+v", st)
	}
	if err := p.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	if p.Stats().PinnedUsed != 0 {
		t.Error("pinned bytes not released")
	}
}

func TestFreeAndDoubleFree(t *testing.T) {
	p := NewPool("gpu", 1024)
	b, _ := p.Alloc(vec.Int32, 64, FormatCUDA)
	if err := p.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 0 {
		t.Error("bytes not released")
	}
	if err := p.Free(b.ID); !errors.Is(err, ErrUnknownBuffer) {
		t.Errorf("double free: %v", err)
	}
	if _, err := p.Get(b.ID); !errors.Is(err, ErrUnknownBuffer) {
		t.Errorf("stale get: %v", err)
	}
}

func TestChunkViews(t *testing.T) {
	p := NewPool("gpu", 1<<20)
	parent, _ := p.Alloc(vec.Int32, 100, FormatCUDA)
	parent.Data.I32()[42] = 7

	view, err := p.CreateChunk(parent.ID, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !view.IsView() || view.Offset != 40 || view.Data.Len() != 10 {
		t.Errorf("view = %+v", view)
	}
	if view.Data.I32()[2] != 7 {
		t.Error("view does not share storage")
	}
	usedBefore := p.Used()
	if usedBefore != 400 {
		t.Errorf("views must not be charged: used = %d", usedBefore)
	}

	// Freeing the view releases only the view.
	if err := p.Free(view.ID); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 400 {
		t.Error("freeing view released parent bytes")
	}

	// Freeing the parent invalidates dependent views.
	view2, _ := p.CreateChunk(parent.ID, 0, 5)
	if err := p.Free(parent.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(view2.ID); !errors.Is(err, ErrUnknownBuffer) {
		t.Errorf("orphan view still resolvable: %v", err)
	}
}

func TestChunkBounds(t *testing.T) {
	p := NewPool("gpu", 1<<20)
	parent, _ := p.Alloc(vec.Int32, 100, FormatCUDA)
	for _, c := range [][2]int{{-1, 10}, {95, 10}, {0, 101}} {
		if _, err := p.CreateChunk(parent.ID, c[0], c[1]); !errors.Is(err, ErrBadRange) {
			t.Errorf("chunk [%d,+%d): %v", c[0], c[1], err)
		}
	}
	if _, err := p.CreateChunk(999, 0, 1); !errors.Is(err, ErrUnknownBuffer) {
		t.Errorf("chunk of unknown parent: %v", err)
	}
}

func TestTransform(t *testing.T) {
	p := NewPool("gpu", 1<<20)
	b, _ := p.Alloc(vec.Int32, 10, FormatCUDA)
	if err := p.Transform(b.ID, FormatThrust); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(b.ID)
	if got.Format != FormatThrust {
		t.Errorf("format = %v", got.Format)
	}
	if p.Stats().Transforms != 1 {
		t.Error("transform not counted")
	}
	if err := p.Transform(999, FormatRaw); !errors.Is(err, ErrUnknownBuffer) {
		t.Errorf("transform unknown: %v", err)
	}
}

func TestAdopt(t *testing.T) {
	p := NewPool("cpu", 0)
	host := vec.FromInt32([]int32{1, 2, 3})
	b := p.Adopt(host, FormatRaw)
	if !b.Pinned || b.Data.Len() != 3 {
		t.Errorf("adopted = %+v", b)
	}
	b.Data.I32()[0] = 9
	if host.I32()[0] != 9 {
		t.Error("adopt copied instead of sharing")
	}
}

func TestReset(t *testing.T) {
	p := NewPool("gpu", 1024)
	p.Alloc(vec.Int32, 64, FormatCUDA)
	p.Reset()
	st := p.Stats()
	if st.Used != 0 || st.LiveBuffers != 0 || st.Allocs != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestFormatStrings(t *testing.T) {
	for f, want := range map[Format]string{
		FormatRaw: "raw", FormatCUDA: "cuda", FormatOpenCL: "opencl",
		FormatThrust: "thrust", FormatBoost: "boost",
	} {
		if f.String() != want {
			t.Errorf("%v != %s", f, want)
		}
	}
	if Format(200).String() == "" {
		t.Error("unknown format needs diagnostic")
	}
}

// Property: used bytes always equal the sum of live non-view, non-pinned
// buffers across random alloc/free sequences.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewPool("gpu", 1<<20)
		var live []BufferID
		var expect int64
		for _, op := range ops {
			switch {
			case op%3 != 0 || len(live) == 0:
				n := int(op)%64 + 1
				b, err := p.Alloc(vec.Int32, n, FormatCUDA)
				if err != nil {
					return false
				}
				live = append(live, b.ID)
				expect += int64(4 * n)
			default:
				id := live[int(op)%len(live)]
				b, err := p.Get(id)
				if err != nil {
					return false
				}
				expect -= b.Bytes()
				if err := p.Free(id); err != nil {
					return false
				}
				for i, l := range live {
					if l == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
			if p.Used() != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
