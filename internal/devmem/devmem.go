// Package devmem implements the simulated device memory that backs
// ADAMANT's data-management interfaces (place_data, prepare_memory,
// create_chunk, add_pinned_memory, delete_memory, transform_memory).
//
// Each simulated co-processor owns a Pool with the capacity of the physical
// card it models. Buffers allocated from the pool hold real host memory (so
// the kernels compute real results), but allocation accounting follows the
// device's capacity: exceeding it fails with ErrOutOfMemory exactly as a
// real cudaMalloc would, which is what makes the operator-at-a-time
// scalability experiments (Figure 7) and the HeavyDB Q3 abort reproducible.
//
// Pinned buffers model page-locked host memory: they are addressable by
// both host and device, transfer at the faster pinned-link rate, and do not
// consume device memory. Every buffer carries a Format tag identifying the
// SDK representation of the memory object (Figure 4 of the paper); the
// transform_memory interface re-tags a buffer without moving data, which is
// precisely the optimization the paper's data-transformation interface
// enables.
package devmem

import (
	"errors"
	"fmt"
	"sync"

	"github.com/adamant-db/adamant/internal/vec"
)

// BufferID names one buffer within a device's pool. IDs are never reused
// within a pool's lifetime so that stale references fail loudly.
type BufferID int32

// Format identifies the SDK-level representation of a memory object. Two
// SDKs can address the same physical device memory through incompatible
// handle types (e.g. a CUDA device pointer vs. an OpenCL cl_mem vs. a Thrust
// device_vector); kernels require their own format and the runtime inserts
// transform_memory calls at format boundaries.
type Format uint8

// Known formats.
const (
	FormatRaw    Format = iota // host-native slice
	FormatCUDA                 // CUDA device pointer
	FormatOpenCL               // OpenCL cl_mem object
	FormatThrust               // Thrust device_vector
	FormatBoost                // Boost.Compute vector
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "raw"
	case FormatCUDA:
		return "cuda"
	case FormatOpenCL:
		return "opencl"
	case FormatThrust:
		return "thrust"
	case FormatBoost:
		return "boost"
	default:
		return fmt.Sprintf("format(%d)", uint8(f))
	}
}

// Pool errors.
var (
	ErrOutOfMemory   = errors.New("devmem: device out of memory")
	ErrUnknownBuffer = errors.New("devmem: unknown buffer id")
	ErrBadRange      = errors.New("devmem: chunk range out of bounds")
)

// Buffer is one allocation (or chunk view) in a device pool. Buffers are
// handed out by pointer; the pool retains ownership and invalidates them on
// Free or Reset.
type Buffer struct {
	ID     BufferID
	Data   vec.Vector
	Pinned bool
	Format Format

	// Parent is nonzero for chunk views created by CreateChunk; views
	// share their parent's storage and are not charged against capacity.
	Parent BufferID
	// Offset is the element offset of the view within the parent.
	Offset int
	// Pooled marks a buffer owned by the cross-query buffer pool rather
	// than an in-flight query. Pooled bytes are a subset of Used; the
	// distinction is what lets the accounting invariant split device memory
	// into pool-held + query-held + free.
	Pooled bool
}

// Bytes reports the buffer's accounted size.
func (b *Buffer) Bytes() int64 { return b.Data.Bytes() }

// IsView reports whether the buffer is a chunk view of another buffer.
func (b *Buffer) IsView() bool { return b.Parent != 0 }

// Stats summarizes a pool's accounting counters.
type Stats struct {
	Capacity    int64 // device memory capacity in bytes
	Used        int64 // device bytes currently allocated
	PinnedUsed  int64 // pinned host bytes currently allocated
	PooledUsed  int64 // subset of Used owned by the cross-query buffer pool
	Peak        int64 // high-water mark of Used
	Allocs      int64 // total device allocations performed
	Frees       int64 // total buffers freed
	Transforms  int64 // transform_memory calls
	LiveBuffers int   // buffers (including views) currently alive
}

// Pool is the memory manager of one simulated device. It is safe for
// concurrent use.
type Pool struct {
	mu       sync.Mutex
	name     string
	capacity int64
	used     int64
	pinned   int64
	pooled   int64
	peak     int64
	allocs   int64
	frees    int64
	xforms   int64
	buffers  map[BufferID]*Buffer
	next     BufferID
}

// NewPool creates a pool with the given capacity in bytes. A non-positive
// capacity means unlimited (used for host-resident devices).
func NewPool(name string, capacity int64) *Pool {
	return &Pool{
		name:     name,
		capacity: capacity,
		buffers:  make(map[BufferID]*Buffer),
	}
}

// Name returns the pool's diagnostic name.
func (p *Pool) Name() string { return p.name }

// Alloc reserves a zeroed device buffer of n elements of type t tagged with
// the given format. It fails with ErrOutOfMemory when the device capacity
// would be exceeded.
func (p *Pool) Alloc(t vec.Type, n int, format Format) (*Buffer, error) {
	return p.alloc(t, n, format, false)
}

// AllocPinned reserves page-locked host memory visible to both host and
// device. Pinned buffers do not consume device capacity.
func (p *Pool) AllocPinned(t vec.Type, n int, format Format) (*Buffer, error) {
	return p.alloc(t, n, format, true)
}

func (p *Pool) alloc(t vec.Type, n int, format Format, pinnedBuf bool) (*Buffer, error) {
	data := vec.New(t, n)
	size := data.Bytes()

	p.mu.Lock()
	defer p.mu.Unlock()
	if !pinnedBuf && p.capacity > 0 && p.used+size > p.capacity {
		return nil, fmt.Errorf("%w: %s needs %d bytes, %d of %d in use",
			ErrOutOfMemory, p.name, size, p.used, p.capacity)
	}
	p.next++
	b := &Buffer{ID: p.next, Data: data, Pinned: pinnedBuf, Format: format}
	p.buffers[b.ID] = b
	p.allocs++
	if pinnedBuf {
		p.pinned += size
	} else {
		p.used += size
		if p.used > p.peak {
			p.peak = p.used
		}
	}
	return b, nil
}

// Adopt registers an existing host vector as a zero-copy buffer. It is used
// by host-resident devices, whose place_data degenerates to registration.
// Adopted buffers count as pinned host bytes while registered, so Free's
// pinned accounting stays symmetric.
func (p *Pool) Adopt(data vec.Vector, format Format) *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	b := &Buffer{ID: p.next, Data: data, Pinned: true, Format: format}
	p.buffers[b.ID] = b
	p.allocs++
	p.pinned += data.Bytes()
	return b
}

// Get resolves a buffer ID.
func (p *Pool) Get(id BufferID) (*Buffer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buffers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d in pool %s", ErrUnknownBuffer, id, p.name)
	}
	return b, nil
}

// CreateChunk registers a view of elements [off, off+n) of the parent
// buffer. Views share storage, are not charged against capacity, and become
// invalid when their parent is freed.
func (p *Pool) CreateChunk(parent BufferID, off, n int) (*Buffer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pb, ok := p.buffers[parent]
	if !ok {
		return nil, fmt.Errorf("%w: parent %d in pool %s", ErrUnknownBuffer, parent, p.name)
	}
	if off < 0 || n < 0 || off+n > pb.Data.Len() {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadRange, off, off+n, pb.Data.Len())
	}
	p.next++
	b := &Buffer{
		ID:     p.next,
		Data:   pb.Data.Slice(off, off+n),
		Pinned: pb.Pinned,
		Format: pb.Format,
		Parent: parent,
		Offset: off,
	}
	p.buffers[b.ID] = b
	return b, nil
}

// Transform re-tags a buffer with a new SDK format without moving data,
// implementing the transform_memory device interface.
func (p *Pool) Transform(id BufferID, target Format) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buffers[id]
	if !ok {
		return fmt.Errorf("%w: %d in pool %s", ErrUnknownBuffer, id, p.name)
	}
	b.Format = target
	p.xforms++
	return nil
}

// Free releases a buffer. Freeing a parent invalidates its views; freeing a
// view releases only the view. Double frees fail with ErrUnknownBuffer.
func (p *Pool) Free(id BufferID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buffers[id]
	if !ok {
		return fmt.Errorf("%w: free %d in pool %s", ErrUnknownBuffer, id, p.name)
	}
	delete(p.buffers, id)
	p.frees++
	if !b.IsView() {
		if b.Pinned {
			p.pinned -= b.Bytes()
		} else {
			p.used -= b.Bytes()
			if b.Pooled {
				p.pooled -= b.Bytes()
			}
		}
		// Invalidate dependent views.
		for vid, vb := range p.buffers {
			if vb.Parent == id {
				delete(p.buffers, vid)
				p.frees++
			}
		}
	}
	return nil
}

// SetPooled marks (or unmarks) a buffer as owned by the cross-query buffer
// pool, moving its bytes between the query-held and pool-held sides of the
// accounting split. Views and pinned buffers cannot be pooled: the pool
// caches whole device-resident columns.
func (p *Pool) SetPooled(id BufferID, pooled bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.buffers[id]
	if !ok {
		return fmt.Errorf("%w: pool-mark %d in pool %s", ErrUnknownBuffer, id, p.name)
	}
	if b.IsView() || b.Pinned {
		return fmt.Errorf("devmem: pool-mark %d in pool %s: views and pinned buffers cannot be pooled", id, p.name)
	}
	if b.Pooled == pooled {
		return nil
	}
	b.Pooled = pooled
	if pooled {
		p.pooled += b.Bytes()
	} else {
		p.pooled -= b.Bytes()
	}
	return nil
}

// CheckAccounting verifies the pool's byte accounting invariant by
// recomputing every counter from the live buffer set: pool-held +
// query-held + free must equal the device capacity, pooled bytes must be a
// subset of used bytes, and no counter may have drifted from the buffers
// that back it. It is the cheap self-audit the buffer-pool layer runs after
// acquire/release/evict transitions (including the fault-injected
// device-death path), so a leak or double-free surfaces at the mutation
// that caused it instead of as an unexplained OOM later.
func (p *Pool) CheckAccounting() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var used, pinned, pooled int64
	for _, b := range p.buffers {
		if b.IsView() {
			if _, ok := p.buffers[b.Parent]; !ok {
				return fmt.Errorf("devmem: %s: view %d outlived parent %d", p.name, b.ID, b.Parent)
			}
			continue
		}
		switch {
		case b.Pinned:
			pinned += b.Bytes()
		default:
			used += b.Bytes()
			if b.Pooled {
				pooled += b.Bytes()
			}
		}
	}
	if used != p.used || pinned != p.pinned || pooled != p.pooled {
		return fmt.Errorf("devmem: %s: accounting drift: counters used=%d pinned=%d pooled=%d, buffers used=%d pinned=%d pooled=%d",
			p.name, p.used, p.pinned, p.pooled, used, pinned, pooled)
	}
	if p.pooled < 0 || p.pooled > p.used {
		return fmt.Errorf("devmem: %s: pooled bytes %d outside [0, used=%d]", p.name, p.pooled, p.used)
	}
	if p.capacity > 0 {
		// pool-held + query-held + free == capacity, all non-negative.
		free := p.capacity - p.used
		if free < 0 {
			return fmt.Errorf("devmem: %s: used %d exceeds capacity %d", p.name, p.used, p.capacity)
		}
		if queryHeld := p.used - p.pooled; p.pooled+queryHeld+free != p.capacity {
			return fmt.Errorf("devmem: %s: pooled %d + query %d + free %d != capacity %d",
				p.name, p.pooled, queryHeld, free, p.capacity)
		}
	}
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Capacity:    p.capacity,
		Used:        p.used,
		PinnedUsed:  p.pinned,
		PooledUsed:  p.pooled,
		Peak:        p.peak,
		Allocs:      p.allocs,
		Frees:       p.frees,
		Transforms:  p.xforms,
		LiveBuffers: len(p.buffers),
	}
}

// Used reports the device bytes currently allocated.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Reset frees every buffer and clears the counters, as the deletion phase of
// the 4-phase execution model does between queries.
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buffers = make(map[BufferID]*Buffer)
	p.used = 0
	p.pinned = 0
	p.pooled = 0
	p.peak = 0
	p.allocs = 0
	p.frees = 0
	p.xforms = 0
}
