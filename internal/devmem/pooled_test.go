package devmem

import (
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/vec"
)

// TestSetPooledMovesAccounting: marking a buffer pooled moves its bytes to
// the pool-held side and back, and the invariant audit passes after every
// transition.
func TestSetPooledMovesAccounting(t *testing.T) {
	p := NewPool("gpu", 4096)
	b, err := p.Alloc(vec.Int32, 256, FormatCUDA) // 1024 bytes
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PooledUsed != 0 {
		t.Fatalf("fresh alloc pooled = %d, want 0", st.PooledUsed)
	}
	if err := p.SetPooled(b.ID, true); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PooledUsed != 1024 || st.Used != 1024 {
		t.Fatalf("after mark: stats %+v", st)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-mark must not double-count.
	if err := p.SetPooled(b.ID, true); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PooledUsed != 1024 {
		t.Fatalf("re-mark drifted: pooled = %d", st.PooledUsed)
	}
	if err := p.SetPooled(b.ID, false); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.PooledUsed != 0 {
		t.Fatalf("after unmark: pooled = %d", st.PooledUsed)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestSetPooledFreeReleasesPooledBytes: freeing a pooled buffer returns its
// bytes from the pooled counter too.
func TestSetPooledFreeReleasesPooledBytes(t *testing.T) {
	p := NewPool("gpu", 4096)
	b, err := p.Alloc(vec.Int32, 256, FormatCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPooled(b.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b.ID); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Used != 0 || st.PooledUsed != 0 {
		t.Fatalf("after free: stats %+v", st)
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestSetPooledRejectsViewsAndPinned: the pool caches whole device columns,
// never chunk views or pinned host staging.
func TestSetPooledRejectsViewsAndPinned(t *testing.T) {
	p := NewPool("gpu", 8192)
	parent, err := p.Alloc(vec.Int32, 512, FormatCUDA)
	if err != nil {
		t.Fatal(err)
	}
	view, err := p.CreateChunk(parent.ID, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPooled(view.ID, true); err == nil {
		t.Error("pool-marking a view must fail")
	}
	pinned, err := p.AllocPinned(vec.Int32, 64, FormatCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPooled(pinned.ID, true); err == nil {
		t.Error("pool-marking a pinned buffer must fail")
	}
	if err := p.SetPooled(9999, true); err == nil {
		t.Error("pool-marking an unknown buffer must fail")
	}
	if err := p.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAccountingDetectsDrift: a hand-corrupted counter is caught by
// the audit with a drift message.
func TestCheckAccountingDetectsDrift(t *testing.T) {
	p := NewPool("gpu", 4096)
	b, err := p.Alloc(vec.Int32, 64, FormatCUDA)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPooled(b.ID, true); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.pooled += 8 // simulate a lost release
	p.mu.Unlock()
	err = p.CheckAccounting()
	if err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("corrupted counter not caught: %v", err)
	}
}

// TestPooledAccountingProperty: after an arbitrary alloc / mark / unmark /
// free sequence the recomputed invariant holds.
func TestPooledAccountingProperty(t *testing.T) {
	p := NewPool("gpu", 1<<20)
	var live []BufferID
	seq := []struct {
		op   int // 0 alloc, 1 mark, 2 unmark, 3 free
		pick int
	}{
		{0, 0}, {0, 0}, {1, 0}, {0, 0}, {1, 1}, {2, 0}, {3, 0},
		{0, 0}, {1, 2}, {3, 1}, {1, 0}, {3, 0}, {3, 0},
	}
	for i, s := range seq {
		switch s.op {
		case 0:
			b, err := p.Alloc(vec.Int32, 128+32*i, FormatCUDA)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, b.ID)
		case 1, 2:
			if s.pick < len(live) {
				if err := p.SetPooled(live[s.pick], s.op == 1); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if len(live) > 0 {
				if err := p.Free(live[0]); err != nil {
					t.Fatal(err)
				}
				live = live[1:]
			}
		}
		if err := p.CheckAccounting(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.Used != 0 || st.PooledUsed != 0 {
		t.Fatalf("final stats %+v", st)
	}
}
