package bufpool_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/adamant-db/adamant/internal/bufpool"
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// rig is one simulated GPU behind the pool's Device resolver.
type rig struct {
	dev *device.Sim
}

func newRig(t *testing.T) *rig {
	t.Helper()
	d := simcuda.New(&simhw.RTX2080Ti, nil)
	if err := d.Initialize(); err != nil {
		t.Fatal(err)
	}
	return &rig{dev: d}
}

func (r *rig) resolve(id device.ID) (device.Device, error) {
	if id != 0 {
		return nil, fmt.Errorf("no device %d", id)
	}
	return r.dev, nil
}

// column builds an n-element int32 host column named name.
func column(name string, n int) (string, vec.Vector) {
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(i)
	}
	return name, vec.FromInt32(data)
}

// loader returns a LoadFunc that ships v to the rig's device, counting calls.
func (r *rig) loader(v vec.Vector, calls *int) bufpool.LoadFunc {
	return func() (devmem.BufferID, vclock.Time, error) {
		if calls != nil {
			*calls++
		}
		return r.dev.PlaceData(v, 0)
	}
}

// audit fails the test if the device's memory accounting invariant broke.
func (r *rig) audit(t *testing.T) {
	t.Helper()
	if err := r.dev.CheckMemAccounting(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]bufpool.Policy{
		"cost": bufpool.CostAware, "cost-aware": bufpool.CostAware,
		"costaware": bufpool.CostAware, "lru": bufpool.LRU,
	} {
		got, err := bufpool.ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := bufpool.ParsePolicy("fifo"); err == nil {
		t.Error("unknown policy must error")
	}
	if bufpool.CostAware.String() != "cost" || bufpool.LRU.String() != "lru" {
		t.Error("policy String mismatch")
	}
}

func TestKeyBytes(t *testing.T) {
	_, v := column("a", 100)
	k := bufpool.KeyFor("a", v)
	if k.Bytes() != 400 {
		t.Errorf("int32 key bytes = %d, want 400", k.Bytes())
	}
	bits := bufpool.Key{Name: "m", Type: vec.Bits, Len: 100}
	if bits.Bytes() != 16 {
		t.Errorf("bits key bytes = %d, want 16 (2 words)", bits.Bytes())
	}
	// Distinct backing arrays must produce distinct keys even under the
	// same catalog name, so a regenerated dataset cannot alias stale data.
	_, v2 := column("a", 100)
	if bufpool.KeyFor("a", v2) == k {
		t.Error("fresh backing array aliased the old key")
	}
}

func TestNewRequiresDeviceResolver(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without Device must panic")
		}
	}()
	bufpool.New(bufpool.Config{Capacity: 1024})
}

func TestCoversGatesPooling(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	if !m.Covers(0) {
		t.Error("GPU device must be covered")
	}
	if m.Covers(7) {
		t.Error("unresolvable device must not be covered")
	}

	var nilPool *bufpool.Manager
	if nilPool.Covers(0) {
		t.Error("nil pool covers nothing")
	}
	zero := bufpool.New(bufpool.Config{Device: r.resolve})
	if zero.Covers(0) {
		t.Error("zero-capacity pool covers nothing")
	}

	host := simomp.New(&simhw.CoreI78700, nil)
	hm := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: func(device.ID) (device.Device, error) {
		return host, nil
	}})
	if hm.Covers(0) {
		t.Error("host-resident device must not be covered: caching saves no transfer")
	}
}

func TestAcquireMissThenHit(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	name, v := column("l_qty", 1000)
	key := bufpool.KeyFor(name, v)

	calls := 0
	l1, hit, err := m.Acquire(0, key, r.loader(v, &calls))
	if err != nil || hit {
		t.Fatalf("cold acquire: hit=%v err=%v", hit, err)
	}
	if l1.Bytes() != 4000 {
		t.Errorf("lease bytes = %d", l1.Bytes())
	}
	r.audit(t)
	if ms := r.dev.MemStats(); ms.PooledUsed != 4000 {
		t.Errorf("device pooled bytes = %d, want 4000", ms.PooledUsed)
	}

	l2, hit, err := m.Acquire(0, key, r.loader(v, &calls))
	if err != nil || !hit {
		t.Fatalf("warm acquire: hit=%v err=%v", hit, err)
	}
	if calls != 1 {
		t.Errorf("load ran %d times, want 1", calls)
	}
	if l2.Buffer() != l1.Buffer() {
		t.Error("warm hit returned a different buffer")
	}
	l1.Release()
	l2.Release()
	l2.Release() // idempotent
	var nilLease *bufpool.Lease
	nilLease.Release() // nil-safe

	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.CachedBytes != 4000 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", got)
	}
	if m.CachedBytes(0) != 4000 {
		t.Errorf("CachedBytes = %d", m.CachedBytes(0))
	}
	r.audit(t)
}

func TestAcquireDeclinesImpossibleColumns(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1000, Device: r.resolve})

	_, _, err := m.Acquire(0, bufpool.Key{Name: "empty", Type: vec.Int32}, r.loader(vec.Vector{}, nil))
	if !bufpool.Declined(err) {
		t.Errorf("empty column: %v", err)
	}

	name, v := column("big", 10_000) // 40 KB > 1000 B capacity
	_, _, err = m.Acquire(0, bufpool.KeyFor(name, v), r.loader(v, nil))
	if !bufpool.Declined(err) {
		t.Errorf("oversized column: %v", err)
	}
	if st := m.Stats(); st.Declined != 2 {
		t.Errorf("declined = %d, want 2", st.Declined)
	}
	if bufpool.Declined(errors.New("other")) {
		t.Error("Declined must be false for foreign errors")
	}
}

func TestAcquireDeclinesWhenFullyLeased(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 4000, Device: r.resolve})
	nameA, a := column("a", 1000) // fills the pool exactly
	lease, _, err := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, nil))
	if err != nil {
		t.Fatal(err)
	}
	// a is leased, so it cannot be evicted to admit b.
	nameB, b := column("b", 1000)
	_, _, err = m.Acquire(0, bufpool.KeyFor(nameB, b), r.loader(b, nil))
	if !bufpool.Declined(err) {
		t.Errorf("fully leased pool: %v", err)
	}
	lease.Release()
	// Now a is evictable and b fits.
	lb, hit, err := m.Acquire(0, bufpool.KeyFor(nameB, b), r.loader(b, nil))
	if err != nil || hit {
		t.Fatalf("post-release acquire: hit=%v err=%v", hit, err)
	}
	lb.Release()
	st := m.Stats()
	if st.Evictions != 1 || st.EvictedBytes != 4000 {
		t.Errorf("stats %+v", st)
	}
	r.audit(t)
}

// fixedCost is a CostModel pinned to a constant.
type fixedCost float64

func (c fixedCost) NsPerByte() float64 { return float64(c) }

func TestCostAwareEvictsCheapestReload(t *testing.T) {
	r := newRig(t)
	sink := telemetry.NewEventSink(16)
	m := bufpool.New(bufpool.Config{
		Capacity: 12_000, Policy: bufpool.CostAware, Cost: fixedCost(2),
		Device: r.resolve, Events: sink,
	})
	nameSmall, small := column("small", 1000) // 4000 B — cheapest to re-ship
	nameBig, big := column("big", 2000)       // 8000 B
	ls, _, err := m.Acquire(0, bufpool.KeyFor(nameSmall, small), r.loader(small, nil))
	if err != nil {
		t.Fatal(err)
	}
	ls.Release()
	lb, _, err := m.Acquire(0, bufpool.KeyFor(nameBig, big), r.loader(big, nil))
	if err != nil {
		t.Fatal(err)
	}
	lb.Release()

	// 4000 B more: small (cost 4000×2) must go, big (8000×2) must stay.
	nameNew, fresh := column("fresh", 1000)
	ln, _, err := m.Acquire(0, bufpool.KeyFor(nameNew, fresh), r.loader(fresh, nil))
	if err != nil {
		t.Fatal(err)
	}
	ln.Release()

	if _, hit, _ := m.Acquire(0, bufpool.KeyFor(nameBig, big), r.loader(big, nil)); !hit {
		t.Error("expensive column was evicted; cost-aware policy must keep it")
	}
	if sink.Total(telemetry.EventCacheEvict) == 0 {
		t.Error("eviction emitted no event")
	}
	r.audit(t)
}

func TestLRUEvictsOldest(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 12_000, Policy: bufpool.LRU, Device: r.resolve})
	nameOld, old := column("old", 2000) // 8000 B: expensive to reload, but oldest
	nameHot, hot := column("hot", 500)  // 2000 B, most recently used
	lo, _, err := m.Acquire(0, bufpool.KeyFor(nameOld, old), r.loader(old, nil))
	if err != nil {
		t.Fatal(err)
	}
	lo.Release()
	lh, _, err := m.Acquire(0, bufpool.KeyFor(nameHot, hot), r.loader(hot, nil))
	if err != nil {
		t.Fatal(err)
	}
	lh.Release()

	// 4000 B more needs 2000 freed: LRU takes the oldest entry (old)
	// even though cost-aware would have preferred the cheap one (hot).
	nameNew, fresh := column("fresh", 1000)
	ln, _, err := m.Acquire(0, bufpool.KeyFor(nameNew, fresh), r.loader(fresh, nil))
	if err != nil {
		t.Fatal(err)
	}
	ln.Release()
	lh2, hit, err := m.Acquire(0, bufpool.KeyFor(nameHot, hot), r.loader(hot, nil))
	if err != nil || !hit {
		t.Errorf("LRU evicted the most recently used entry: hit=%v err=%v", hit, err)
	}
	lh2.Release()
	r.audit(t)
}

func TestLoadFailureLeavesNoEntry(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	name, v := column("a", 100)
	key := bufpool.KeyFor(name, v)
	boom := errors.New("bus on fire")
	_, _, err := m.Acquire(0, key, func() (devmem.BufferID, vclock.Time, error) {
		return 0, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("load error not surfaced: %v", err)
	}
	if st := m.Stats(); st.CachedBytes != 0 || st.Entries != 0 {
		t.Errorf("failed load left residue: %+v", st)
	}
	// A retry can now load normally.
	l, hit, err := m.Acquire(0, key, r.loader(v, nil))
	if err != nil || hit {
		t.Fatalf("retry after failed load: hit=%v err=%v", hit, err)
	}
	l.Release()
	r.audit(t)
}

// accountLog records Accountant calls.
type accountLog struct {
	mu      sync.Mutex
	charged int64
}

func (a *accountLog) PoolCharge(_ device.ID, b int64) {
	a.mu.Lock()
	a.charged += b
	a.mu.Unlock()
}

func (a *accountLog) PoolRelease(_ device.ID, b int64) {
	a.mu.Lock()
	a.charged -= b
	a.mu.Unlock()
}

func (a *accountLog) net() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.charged
}

func TestAccountantBalancesAcrossLifecycle(t *testing.T) {
	r := newRig(t)
	acct := &accountLog{}
	m := bufpool.New(bufpool.Config{Capacity: 8000, Device: r.resolve, Accountant: acct})

	nameA, a := column("a", 1000)
	la, _, err := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, nil))
	if err != nil {
		t.Fatal(err)
	}
	if acct.net() != 4000 {
		t.Errorf("after load: net charge %d, want 4000", acct.net())
	}
	la.Release()

	// Failed load must settle to zero net.
	nameB, b := column("b", 500)
	boom := errors.New("nope")
	if _, _, err := m.Acquire(0, bufpool.KeyFor(nameB, b), func() (devmem.BufferID, vclock.Time, error) {
		return 0, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if acct.net() != 4000 {
		t.Errorf("after failed load: net %d, want 4000", acct.net())
	}

	// Eviction during a new acquire releases the evicted charge.
	nameC, c := column("c", 1500) // 6000 B forces evicting a
	lc, _, err := m.Acquire(0, bufpool.KeyFor(nameC, c), r.loader(c, nil))
	if err != nil {
		t.Fatal(err)
	}
	lc.Release()
	if acct.net() != 6000 {
		t.Errorf("after evict+load: net %d, want 6000", acct.net())
	}

	if freed := m.Flush(); freed != 6000 {
		t.Errorf("flush freed %d, want 6000", freed)
	}
	if acct.net() != 0 {
		t.Errorf("after flush: net %d, want 0", acct.net())
	}
	if ms := r.dev.MemStats(); ms.Used != 0 || ms.PooledUsed != 0 {
		t.Errorf("device not clean after flush: %+v", ms)
	}
	r.audit(t)
}

func TestReclaimForAdmission(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	nameA, a := column("a", 1000)
	la, _, err := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, nil))
	if err != nil {
		t.Fatal(err)
	}
	nameB, b := column("b", 1000)
	lb, _, err := m.Acquire(0, bufpool.KeyFor(nameB, b), r.loader(b, nil))
	if err != nil {
		t.Fatal(err)
	}
	lb.Release()

	// a is leased and must survive; b is reclaimable.
	if freed := m.ReclaimForAdmission(0, 1); freed != 4000 {
		t.Errorf("reclaim freed %d, want 4000 (entry granularity)", freed)
	}
	if freed := m.ReclaimForAdmission(0, 1); freed != 0 {
		t.Errorf("second reclaim freed %d, want 0: only a leased entry remains", freed)
	}
	if m.ReclaimForAdmission(0, 0) != 0 || m.ReclaimForAdmission(3, 10) != 0 {
		t.Error("degenerate reclaims must free nothing")
	}
	var nilPool *bufpool.Manager
	if nilPool.ReclaimForAdmission(0, 10) != 0 {
		t.Error("nil pool reclaim")
	}
	if _, hit, _ := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, nil)); !hit {
		t.Error("leased entry was reclaimed")
	}
	la.Release()
	r.audit(t)
}

func TestInvalidateDeviceFreesAndDooms(t *testing.T) {
	r := newRig(t)
	sink := telemetry.NewEventSink(16)
	acct := &accountLog{}
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve, Accountant: acct})
	m.SetEvents(sink)

	nameA, a := column("a", 1000)
	nameB, b := column("b", 500)
	la, _, err := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, nil))
	if err != nil {
		t.Fatal(err)
	}
	lb, _, err := m.Acquire(0, bufpool.KeyFor(nameB, b), r.loader(b, nil))
	if err != nil {
		t.Fatal(err)
	}
	lb.Release()

	m.InvalidateDevice(0) // b freed now; a doomed until la releases
	if st := m.Stats(); st.Invalidations != 1 || st.Entries != 0 || st.CachedBytes != 4000 {
		t.Errorf("after invalidate: %+v", st)
	}
	if acct.net() != 4000 {
		t.Errorf("doomed bytes must stay charged: net %d", acct.net())
	}
	if sink.Total(telemetry.EventCacheInvalidate) != 1 {
		t.Error("invalidate emitted no event")
	}

	// A fresh acquire must not see the stale entry.
	calls := 0
	la2, hit, err := m.Acquire(0, bufpool.KeyFor(nameA, a), r.loader(a, &calls))
	if err != nil || hit || calls != 1 {
		t.Fatalf("post-invalidate acquire: hit=%v calls=%d err=%v", hit, calls, err)
	}
	la2.Release()

	la.Release() // last ref on the doomed entry frees it
	if acct.net() != 4000 {
		t.Errorf("after doomed release: net %d, want only the reloaded column", acct.net())
	}
	if m.CachedBytes(0) != 4000 {
		t.Errorf("cached bytes = %d", m.CachedBytes(0))
	}
	m.InvalidateDevice(0)
	m.InvalidateDevice(3) // unknown device is a no-op
	var nilPool *bufpool.Manager
	nilPool.InvalidateDevice(0)
	if ms := r.dev.MemStats(); ms.Used != 0 {
		t.Errorf("device leaked %d bytes after invalidation", ms.Used)
	}
	r.audit(t)
}

func TestTimelineTracksOutcomes(t *testing.T) {
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	name, v := column("a", 100)
	key := bufpool.KeyFor(name, v)
	l, _, err := m.Acquire(0, key, r.loader(v, nil))
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	for i := 0; i < 600; i++ { // overflow the ring: only recent hits remain
		l, hit, err := m.Acquire(0, key, r.loader(v, nil))
		if err != nil || !hit {
			t.Fatal(err)
		}
		l.Release()
	}
	tl := m.Timeline()
	if len(tl) != 512 {
		t.Fatalf("timeline length %d, want ring cap 512", len(tl))
	}
	for i, p := range tl {
		if !p.Hit {
			t.Fatalf("point %d (seq %d) is a miss; the cold miss must have rolled off", i, p.Seq)
		}
		if i > 0 && p.Seq != tl[i-1].Seq+1 {
			t.Fatalf("timeline seq gap at %d", i)
		}
	}
	var nilPool *bufpool.Manager
	if nilPool.Timeline() != nil || nilPool.CachedBytes(0) != 0 {
		t.Error("nil pool accessors")
	}
	if (bufpool.Stats{}).HitRatio() != 0 {
		t.Error("empty stats hit ratio must be 0")
	}
	if nilPool.Stats() != (bufpool.Stats{}) || nilPool.Flush() != 0 {
		t.Error("nil pool stats/flush")
	}
}
