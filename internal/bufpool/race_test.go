package bufpool_test

import (
	"sync"
	"testing"

	"github.com/adamant-db/adamant/internal/bufpool"
)

// TestSharedScanSingleTransfer: N goroutines racing on the same cold
// column must produce exactly one host-to-device transfer — the first
// acquirer loads, everyone else joins the in-flight transfer or hits the
// published entry. Run with -race: this is the pool's central concurrency
// claim (the paper's shared-scan batching across concurrent queries).
func TestSharedScanSingleTransfer(t *testing.T) {
	const workers = 16
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	name, v := column("l_shipdate", 4096)
	key := bufpool.KeyFor(name, v)

	var wg sync.WaitGroup
	leases := make([]*bufpool.Lease, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leases[i], _, errs[i] = m.Acquire(0, key, r.loader(v, nil))
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	buf := leases[0].Buffer()
	for i, l := range leases {
		if l.Buffer() != buf {
			t.Fatalf("worker %d got buffer %d, want shared %d", i, l.Buffer(), buf)
		}
	}

	if ds := r.dev.Stats(); ds.H2DTransfers != 1 {
		t.Errorf("device saw %d H2D transfers, want exactly 1", ds.H2DTransfers)
	}
	st := m.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.SharedJoins != workers-1 {
		t.Errorf("hits %d + joins %d = %d, want %d: every waiter counted once",
			st.Hits, st.SharedJoins, st.Hits+st.SharedJoins, workers-1)
	}
	if st.Entries != 1 || st.CachedBytes != key.Bytes() {
		t.Errorf("stats %+v", st)
	}

	for _, l := range leases {
		l.Release()
	}
	r.audit(t)
	// All leases released: the entry is evictable and the ledger balances.
	if freed := m.Flush(); freed != key.Bytes() {
		t.Errorf("flush freed %d, want %d", freed, key.Bytes())
	}
	if ms := r.dev.MemStats(); ms.Used != 0 || ms.PooledUsed != 0 {
		t.Errorf("device not clean: %+v", ms)
	}
}

// TestConcurrentMixedColumns: racing goroutines over several distinct
// columns each trigger exactly one load per column, under -race.
func TestConcurrentMixedColumns(t *testing.T) {
	const workers, cols = 12, 4
	r := newRig(t)
	m := bufpool.New(bufpool.Config{Capacity: 1 << 20, Device: r.resolve})
	keys := make([]bufpool.Key, cols)
	loaders := make([]bufpool.LoadFunc, cols)
	for c := 0; c < cols; c++ {
		name, v := column("col", 1024+c)
		keys[c] = bufpool.KeyFor(name, v)
		loaders[c] = r.loader(v, nil)
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for c := 0; c < cols; c++ {
				l, _, err := m.Acquire(0, keys[(i+c)%cols], loaders[(i+c)%cols])
				if err != nil {
					t.Error(err)
					return
				}
				l.Release()
			}
		}(i)
	}
	wg.Wait()

	if ds := r.dev.Stats(); ds.H2DTransfers != cols {
		t.Errorf("device saw %d transfers, want %d (one per column)", ds.H2DTransfers, cols)
	}
	st := m.Stats()
	if st.Misses != cols {
		t.Errorf("misses = %d, want %d", st.Misses, cols)
	}
	if total := st.Hits + st.SharedJoins + st.Misses; total != workers*cols {
		t.Errorf("lookups = %d, want %d", total, workers*cols)
	}
	r.audit(t)
}
