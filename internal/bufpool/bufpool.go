// Package bufpool implements the cross-query device buffer pool: a
// per-device cache of base-column buffers that survives query teardown.
//
// Queries acquire base columns through ref-counted leases instead of
// issuing their own place_data calls. A warm acquire returns the cached
// buffer with no bus traffic; a cold acquire runs the caller's transfer
// exactly once, with concurrent queries over the same cold column joining
// the in-flight transfer (shared scans) instead of issuing duplicates.
// Eviction is cost-aware: the victim is the refs==0 entry whose reload
// cost (bytes × the engine's measured ns/byte) is lowest, so the columns
// that are most expensive to re-ship stay resident. Leased entries are
// never evicted.
//
// The pool owns its bytes: the devmem layer marks pooled buffers so the
// accounting invariant pool-held + query-held + free == capacity stays
// checkable, and the session scheduler charges pooled bytes once to the
// pool (not per query). On device death the fault layer invalidates the
// device's entries — unreferenced buffers are freed immediately (delete
// is exempt from faults), leased ones are doomed and freed on the last
// release — so a dead device never leaks pooled memory.
package bufpool

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/devmem"
	"github.com/adamant-db/adamant/internal/telemetry"
	"github.com/adamant-db/adamant/internal/vclock"
	"github.com/adamant-db/adamant/internal/vec"
)

// ErrDeclined is returned by Acquire when the pool cannot hold the column:
// it is larger than the pool capacity, every resident byte is leased by
// in-flight queries, or the device was invalidated mid-load. Callers fall
// back to their legacy private transfer path.
var ErrDeclined = errors.New("bufpool: declined, column not poolable right now")

// Declined reports whether an Acquire error means "use the legacy path"
// rather than a real device failure.
func Declined(err error) bool { return errors.Is(err, ErrDeclined) }

// Policy selects the eviction order among refs==0 entries.
type Policy uint8

const (
	// CostAware evicts the entry with the lowest reload cost
	// (bytes × measured ns/byte), least-recently-used breaking ties.
	CostAware Policy = iota
	// LRU evicts the least-recently-used entry regardless of size.
	LRU
)

// String returns the policy name as accepted by ParsePolicy.
func (p Policy) String() string {
	if p == LRU {
		return "lru"
	}
	return "cost"
}

// ParsePolicy parses a policy name ("cost" or "lru").
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "cost", "cost-aware", "costaware":
		return CostAware, nil
	case "lru":
		return LRU, nil
	default:
		return CostAware, fmt.Errorf("bufpool: unknown policy %q (want cost or lru)", s)
	}
}

// CostModel supplies the measured transfer cost used by cost-aware
// eviction. *trace.Metrics implements it with its EWMA ns/byte.
type CostModel interface {
	NsPerByte() float64
}

// Accountant is the admission-side ledger the pool charges its bytes to,
// so cached columns count against a device's budget exactly once instead
// of once per query. *session.Scheduler implements it. The pool only
// calls the Accountant with its own lock released; the scheduler may in
// turn call Manager.ReclaimForAdmission (which never calls back).
type Accountant interface {
	PoolCharge(dev device.ID, bytes int64)
	PoolRelease(dev device.ID, bytes int64)
}

// Config parameterizes a Manager.
type Config struct {
	// Capacity is the per-device pool capacity in bytes. Zero disables
	// pooling (Covers reports false everywhere).
	Capacity int64
	// Policy selects the eviction order.
	Policy Policy
	// Cost supplies ns/byte for cost-aware eviction; nil falls back to
	// size-only ordering (equivalent, since the EWMA is global).
	Cost CostModel
	// Device resolves a device ID to the runtime's device (the
	// fault-wrapped instance), used to free evicted buffers and mark
	// pooled ownership. Required.
	Device func(device.ID) (device.Device, error)
	// Accountant, when non-nil, is charged for pool-held bytes.
	Accountant Accountant
	// Events, when non-nil, receives evict/invalidate events.
	Events *telemetry.EventSink
}

// Key identifies a cacheable base column: its catalog name, shape, and the
// identity of its host backing storage. Including the storage identity
// means a re-generated dataset (same name, fresh arrays) can never alias a
// stale entry.
type Key struct {
	Name string
	Type vec.Type
	Len  int
	Data uintptr
}

// KeyFor builds the cache key for a named base column.
func KeyFor(name string, v vec.Vector) Key {
	return Key{Name: name, Type: v.Type(), Len: v.Len(), Data: v.DataID()}
}

// Bytes returns the device footprint of the keyed column.
func (k Key) Bytes() int64 {
	if k.Type == vec.Bits {
		return 8 * int64((k.Len+63)/64)
	}
	return k.Type.ElemBytes() * int64(k.Len)
}

// LoadFunc performs the cold transfer for a missing column and returns the
// device buffer plus the virtual time it is ready. It runs on the calling
// query's device wrapper so its h2d span, fault injection and retries land
// in that query's trace.
type LoadFunc func() (devmem.BufferID, vclock.Time, error)

type entry struct {
	key     Key
	dev     device.ID
	buf     devmem.BufferID
	bytes   int64
	ready   vclock.Time
	refs    int
	uses    int64
	lastUse int64
	loading chan struct{} // non-nil while the cold transfer is in flight
	invalid bool          // device invalidated mid-load; discard on completion
	doomed  bool          // invalidated while leased; free on last release
}

type devCache struct {
	entries map[Key]*entry
	bytes   int64 // pooled bytes physically held, incl. doomed-but-leased
	probed  bool
	skip    bool // host-resident or unresolvable: never pooled
}

// TimelinePoint is one lookup outcome in the hit-ratio timeline. Joined
// lookups (shared scans) count as hits: they avoided a transfer.
type TimelinePoint struct {
	Seq uint64 `json:"seq"`
	Hit bool   `json:"hit"`
}

// timelineCap bounds the hit-ratio ring.
const timelineCap = 512

// Stats is a point-in-time snapshot of pool activity. Counters are
// lifetime; CachedBytes/Entries are current.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	SharedJoins   uint64 `json:"shared_joins"`
	Declined      uint64 `json:"declined"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	EvictedBytes  int64  `json:"evicted_bytes"`
	LoadedBytes   int64  `json:"loaded_bytes"`
	CachedBytes   int64  `json:"cached_bytes"`
	Entries       int    `json:"entries"`
	Capacity      int64  `json:"capacity"`
}

// HitRatio returns lifetime (hits+joins)/(hits+joins+misses), or 0 with no
// lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.SharedJoins + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SharedJoins) / float64(total)
}

// Manager is the buffer pool: one logical pool partitioned per device. It
// is safe for concurrent use. The Manager never calls the Accountant or a
// device while another component's lock could be waiting on m.mu in the
// opposite order: devices and the event sink are leaf locks, and the
// Accountant is only invoked with m.mu released.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	devs  map[device.ID]*devCache
	clock int64

	hits, misses, joins, declined uint64
	evictions, invalidations      uint64
	evictedBytes, loadedBytes     int64

	ring      [timelineCap]TimelinePoint
	ringLen   int
	ringStart int
	lookups   uint64
}

// New returns a Manager for the config. Config.Device is required.
func New(cfg Config) *Manager {
	if cfg.Device == nil {
		panic("bufpool: Config.Device is required")
	}
	return &Manager{cfg: cfg, devs: make(map[device.ID]*devCache)}
}

// Capacity returns the per-device capacity.
func (m *Manager) Capacity() int64 { return m.cfg.Capacity }

// SetEvents wires evict/invalidate events into a telemetry sink (the
// facade arms telemetry after the pool is built).
func (m *Manager) SetEvents(sink *telemetry.EventSink) {
	m.mu.Lock()
	m.cfg.Events = sink
	m.mu.Unlock()
}

// Policy returns the eviction policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

func (m *Manager) cacheFor(dev device.ID) *devCache {
	dc := m.devs[dev]
	if dc == nil {
		dc = &devCache{entries: make(map[Key]*entry)}
		m.devs[dev] = dc
	}
	return dc
}

func (m *Manager) tick() int64 {
	m.clock++
	return m.clock
}

func (m *Manager) point(hit bool) {
	m.lookups++
	p := TimelinePoint{Seq: m.lookups, Hit: hit}
	if m.ringLen < timelineCap {
		m.ring[(m.ringStart+m.ringLen)%timelineCap] = p
		m.ringLen++
	} else {
		m.ring[m.ringStart] = p
		m.ringStart = (m.ringStart + 1) % timelineCap
	}
}

// Covers reports whether the pool caches columns for the device: pooling
// is enabled and the device resolves to a non-host-resident target (a
// host-resident "transfer" is a registration; caching it saves nothing).
func (m *Manager) Covers(dev device.ID) bool {
	if m == nil || m.cfg.Capacity <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dc := m.cacheFor(dev)
	if !dc.probed {
		dc.probed = true
		d, err := m.cfg.Device(dev)
		dc.skip = err != nil || d.Info().HostResident
	}
	return !dc.skip
}

// nsPerByte returns the cost model's current estimate, or a neutral 1.
func (m *Manager) nsPerByte() float64 {
	if m.cfg.Cost == nil {
		return 1
	}
	if ns := m.cfg.Cost.NsPerByte(); ns > 0 {
		return ns
	}
	return 1
}

// victimLocked picks the next eviction victim among refs==0, fully loaded
// entries, or nil if every resident byte is pinned by a lease.
func (m *Manager) victimLocked(dc *devCache) *entry {
	ns := m.nsPerByte()
	var best *entry
	var bestScore float64
	for _, e := range dc.entries {
		if e.refs > 0 || e.loading != nil {
			continue
		}
		var score float64
		if m.cfg.Policy == LRU {
			score = float64(e.lastUse)
		} else {
			score = float64(e.bytes) * ns
		}
		if best == nil || score < bestScore ||
			(score == bestScore && e.lastUse < best.lastUse) {
			best, bestScore = e, score
		}
	}
	return best
}

// evictLocked evicts victims until at least want bytes were freed or no
// victim remains, returning the bytes actually freed. Buffers are deleted
// through the runtime device (a leaf; safe under m.mu). The scheduler
// charge for freed bytes is NOT released here — callers decide (Acquire
// releases it via the Accountant; ReclaimForAdmission returns it to the
// scheduler, which adjusts its own ledger).
func (m *Manager) evictLocked(dc *devCache, dev device.ID, want int64) int64 {
	var freed int64
	for freed < want {
		e := m.victimLocked(dc)
		if e == nil {
			break
		}
		delete(dc.entries, e.key)
		dc.bytes -= e.bytes
		freed += e.bytes
		m.evictions++
		m.evictedBytes += e.bytes
		m.deleteBuffer(dev, e.buf)
		m.cfg.Events.Emit(telemetry.Event{
			Type:   telemetry.EventCacheEvict,
			Device: dev.String(),
			Detail: fmt.Sprintf("%s (%d B, %d uses)", e.key.Name, e.bytes, e.uses),
		})
	}
	return freed
}

// deleteBuffer frees a pooled buffer on the runtime device, tolerating a
// device that has since been reset. DeleteMemory is exempt from fault
// injection and works on dead devices, so invalidation cannot leak.
func (m *Manager) deleteBuffer(dev device.ID, buf devmem.BufferID) {
	d, err := m.cfg.Device(dev)
	if err != nil {
		return
	}
	_ = d.DeleteMemory(buf)
}

// markPooled flags pool ownership in the device's memory accounting.
func (m *Manager) markPooled(dev device.ID, buf devmem.BufferID, pooled bool) error {
	d, err := m.cfg.Device(dev)
	if err != nil {
		return err
	}
	if pm, ok := d.(device.PoolMarker); ok {
		return pm.MarkPooled(buf, pooled)
	}
	return nil
}

// account settles the admission ledger outside m.mu.
func (m *Manager) account(dev device.ID, charge, release int64) {
	if m.cfg.Accountant == nil {
		return
	}
	if charge > 0 {
		m.cfg.Accountant.PoolCharge(dev, charge)
	}
	if release > 0 {
		m.cfg.Accountant.PoolRelease(dev, release)
	}
}

// Acquire leases the keyed column on the device. A warm hit returns
// immediately (hit=true) with no device traffic. A cold miss reserves
// capacity (evicting if needed), runs load exactly once, and publishes the
// buffer; concurrent acquirers of the same cold column block on that one
// transfer and then lease the shared buffer. The caller must Release the
// lease when its query no longer reads the buffer.
//
// Errors for which Declined(err) is true mean the pool cannot hold the
// column (too large, capacity fully leased, device invalidated); the
// caller should fall back to its private transfer path. Any other error
// is the load's own failure (OOM, device lost) surfaced unchanged.
func (m *Manager) Acquire(dev device.ID, key Key, load LoadFunc) (*Lease, bool, error) {
	need := key.Bytes()
	if need <= 0 {
		m.mu.Lock()
		m.declined++
		m.mu.Unlock()
		return nil, false, fmt.Errorf("%w: empty column", ErrDeclined)
	}
	joined := false
	m.mu.Lock()
	dc := m.cacheFor(dev)
	for {
		e := dc.entries[key]
		if e == nil {
			break
		}
		if e.loading != nil {
			// Shared scan: join the in-flight transfer.
			if !joined {
				joined = true
				m.joins++
				m.point(true)
			}
			ch := e.loading
			m.mu.Unlock()
			<-ch
			m.mu.Lock()
			continue // entry may have been republished or dropped
		}
		e.refs++
		e.uses++
		e.lastUse = m.tick()
		if !joined {
			m.hits++
			m.point(true)
		}
		m.mu.Unlock()
		return &Lease{m: m, e: e}, true, nil
	}
	if need > m.cfg.Capacity {
		m.declined++
		m.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d B column exceeds %d B pool", ErrDeclined, need, m.cfg.Capacity)
	}
	var evicted int64
	if dc.bytes+need > m.cfg.Capacity {
		evicted = m.evictLocked(dc, dev, dc.bytes+need-m.cfg.Capacity)
		if dc.bytes+need > m.cfg.Capacity {
			m.declined++
			m.mu.Unlock()
			m.account(dev, 0, evicted)
			return nil, false, fmt.Errorf("%w: pool capacity fully leased", ErrDeclined)
		}
	}
	e := &entry{key: key, dev: dev, bytes: need, loading: make(chan struct{})}
	dc.entries[key] = e
	dc.bytes += need
	m.misses++
	m.point(false)
	m.mu.Unlock()
	// Settle the ledger before the transfer so admission sees the bytes
	// the load is about to occupy.
	m.account(dev, need, evicted)

	buf, ready, err := load()
	if err == nil {
		if merr := m.markPooled(dev, buf, true); merr != nil {
			m.deleteBuffer(dev, buf)
			err = fmt.Errorf("%w: mark pooled: %v", ErrDeclined, merr)
		}
	}

	m.mu.Lock()
	invalid := e.invalid
	if err == nil && invalid {
		// Device was invalidated while the transfer ran; do not publish.
		err = fmt.Errorf("%w: device invalidated during load", ErrDeclined)
	}
	if err != nil {
		if dc.entries[key] == e {
			delete(dc.entries, key)
		}
		dc.bytes -= need
		close(e.loading)
		e.loading = nil
		m.mu.Unlock()
		if invalid && buf != 0 {
			m.deleteBuffer(dev, buf)
		}
		m.account(dev, 0, need)
		return nil, false, err
	}
	e.buf = buf
	e.ready = ready
	e.refs = 1
	e.uses = 1
	e.lastUse = m.tick()
	m.loadedBytes += need
	close(e.loading)
	e.loading = nil
	m.mu.Unlock()
	return &Lease{m: m, e: e}, false, nil
}

// Lease is a ref-counted claim on a pooled buffer. While any lease is
// live the entry cannot be evicted or reclaimed. Release is idempotent.
type Lease struct {
	m        *Manager
	e        *entry
	released bool
}

// Buffer returns the pooled device buffer.
func (l *Lease) Buffer() devmem.BufferID { return l.e.buf }

// Ready returns the virtual time the buffer's contents were ready.
func (l *Lease) Ready() vclock.Time { return l.e.ready }

// Bytes returns the buffer's device footprint.
func (l *Lease) Bytes() int64 { return l.e.bytes }

// Release drops the lease. The last release of a doomed entry (device
// invalidated while leased) frees the buffer and settles the ledger.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	m := l.m
	m.mu.Lock()
	if l.released {
		m.mu.Unlock()
		return
	}
	l.released = true
	e := l.e
	e.refs--
	var freed int64
	if e.doomed && e.refs == 0 {
		freed = e.bytes
		if dc := m.devs[e.dev]; dc != nil {
			dc.bytes -= e.bytes
		}
	}
	m.mu.Unlock()
	if freed > 0 {
		m.deleteBuffer(e.dev, e.buf)
		m.account(e.dev, 0, freed)
	}
}

// ReclaimForAdmission evicts unreferenced entries on the device until at
// least want bytes were freed (or none remain) and returns the bytes
// freed. It is called by the session scheduler while it holds its own
// admission lock, so it must not — and does not — call the Accountant;
// the scheduler adjusts its pool ledger with the return value.
func (m *Manager) ReclaimForAdmission(dev device.ID, want int64) int64 {
	if m == nil || want <= 0 {
		return 0
	}
	m.mu.Lock()
	dc := m.devs[dev]
	if dc == nil {
		m.mu.Unlock()
		return 0
	}
	freed := m.evictLocked(dc, dev, want)
	m.mu.Unlock()
	return freed
}

// InvalidateDevice drops every cached column on the device after death or
// quarantine. Unreferenced entries are freed immediately (DeleteMemory is
// exempt from faults and works on dead devices). Leased entries are
// doomed: they leave the cache now and are freed on their last Release.
// Entries still loading are flagged so their loader discards the buffer
// instead of publishing it.
func (m *Manager) InvalidateDevice(dev device.ID) {
	if m == nil {
		return
	}
	m.mu.Lock()
	dc := m.devs[dev]
	if dc == nil {
		m.mu.Unlock()
		return
	}
	var freed int64
	dropped := 0
	sink := m.cfg.Events
	for k, e := range dc.entries {
		if e.loading != nil {
			e.invalid = true
			continue
		}
		delete(dc.entries, k)
		dropped++
		if e.refs > 0 {
			e.doomed = true
			continue
		}
		dc.bytes -= e.bytes
		freed += e.bytes
		m.deleteBuffer(dev, e.buf)
	}
	if dropped > 0 {
		m.invalidations++
	}
	m.mu.Unlock()
	if dropped > 0 {
		sink.Emit(telemetry.Event{
			Type:   telemetry.EventCacheInvalidate,
			Device: dev.String(),
			Detail: fmt.Sprintf("%d entries dropped, %d B freed", dropped, freed),
		})
	}
	if freed > 0 {
		m.account(dev, 0, freed)
	}
}

// InvalidateAll drops every cached column on every device — the shard
// coordinator's path when a whole shard runtime is removed after death.
// Unlike Flush, leased entries do not survive: they are doomed exactly as
// InvalidateDevice dooms them, so a flushed dead shard cannot leave
// pinned leases behind (they free on their last Release). A nil manager
// no-ops.
func (m *Manager) InvalidateAll() {
	if m == nil {
		return
	}
	m.mu.Lock()
	devs := make([]device.ID, 0, len(m.devs))
	for dev := range m.devs {
		devs = append(devs, dev)
	}
	m.mu.Unlock()
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	for _, dev := range devs {
		m.InvalidateDevice(dev)
	}
}

// Flush evicts every unreferenced entry on every device and returns the
// bytes freed. Leased entries survive. The differential fault harness
// flushes before comparing device memory baselines.
func (m *Manager) Flush() int64 {
	if m == nil {
		return 0
	}
	type devFree struct {
		dev   device.ID
		freed int64
	}
	var frees []devFree
	m.mu.Lock()
	for dev, dc := range m.devs {
		if f := m.evictLocked(dc, dev, dc.bytes); f > 0 {
			frees = append(frees, devFree{dev, f})
		}
	}
	m.mu.Unlock()
	var total int64
	for _, f := range frees {
		m.account(f.dev, 0, f.freed)
		total += f.freed
	}
	return total
}

// Stats snapshots pool-wide activity.
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Hits:          m.hits,
		Misses:        m.misses,
		SharedJoins:   m.joins,
		Declined:      m.declined,
		Evictions:     m.evictions,
		Invalidations: m.invalidations,
		EvictedBytes:  m.evictedBytes,
		LoadedBytes:   m.loadedBytes,
		Capacity:      m.cfg.Capacity,
	}
	for _, dc := range m.devs {
		s.CachedBytes += dc.bytes
		s.Entries += len(dc.entries)
	}
	return s
}

// CachedBytes returns the pooled bytes currently held on one device.
func (m *Manager) CachedBytes(dev device.ID) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if dc := m.devs[dev]; dc != nil {
		return dc.bytes
	}
	return 0
}

// Timeline returns the most recent lookup outcomes, oldest first. Joined
// lookups count as hits (the transfer was avoided).
func (m *Manager) Timeline() []TimelinePoint {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TimelinePoint, m.ringLen)
	for i := 0; i < m.ringLen; i++ {
		out[i] = m.ring[(m.ringStart+i)%timelineCap]
	}
	return out
}
