// Package profile is ADAMANT's fleet profiler: it folds the span stream
// every finished query already produces into per-workload resource
// attribution, answering the operational questions one-query traces
// cannot — who is consuming the fleet, which workload regressed, and
// whether the service is burning its error budget.
//
// The ledger keys usage by a normalized plan shape (graph.Fingerprint)
// plus an optional tenant label, so "all the Q6-shaped traffic from
// tenant A" aggregates regardless of constants, scale factor, or device
// placement. Tables are bounded: at most MaxShapes keys are tracked and
// overflow folds into a reserved "~other" bucket, so a high-cardinality
// workload cannot grow the profiler without bound. Everything follows the
// tracing discipline of the rest of the engine: a nil *Profiler no-ops on
// every method (profiling off is zero-alloc on the query path), and all
// reports iterate in sorted order, so output is deterministic.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// OtherKey is the reserved shape the ledger folds overflow into once
// MaxShapes distinct (shape, tenant) keys are tracked.
const OtherKey = "~other"

// Config bounds the profiler and tunes anomaly detection. The zero value
// selects the defaults noted per field.
type Config struct {
	// TopK bounds the per-metric leader tables in reports and the
	// Prometheus export (default 10).
	TopK int
	// MaxShapes bounds distinct (shape, tenant) ledger keys; overflow
	// aggregates under OtherKey (default 256).
	MaxShapes int
	// AnomalyFactor is the measured-vs-expected rate ratio treated as a
	// deviation (default 2.0: twice as slow as the catalog EWMA).
	AnomalyFactor float64
	// AnomalySustain is how many consecutive deviating observations of
	// the same (primitive, driver, bucket) fire a perf anomaly
	// (default 3 — one slow span is noise, a run of them is a signal).
	AnomalySustain int
	// AnomalyMinSamples is the catalog sample count below which an entry
	// is considered untrained and never flags (default 8).
	AnomalyMinSamples int64
}

func (c Config) topK() int {
	if c.TopK <= 0 {
		return 10
	}
	return c.TopK
}

func (c Config) maxShapes() int {
	if c.MaxShapes <= 0 {
		return 256
	}
	return c.MaxShapes
}

// QueryRecord is the per-query input to Observe: the stats the facade
// already computed plus the span stream of the finished attempt. Spans
// may be nil when tracing is off — attribution then covers only the
// stats-level fields.
type QueryRecord struct {
	Query  uint64
	Shape  string
	Tenant string
	Device string
	Model  string
	// VT is the engine's virtual clock at query finish; SLO windows and
	// anomaly events are stamped with it.
	VT  vclock.Time
	Err bool

	Elapsed      vclock.Duration
	KernelTime   vclock.Duration
	TransferTime vclock.Duration
	OverheadTime vclock.Duration
	H2DBytes     int64
	D2HBytes     int64
	Launches     int64
	Retries      int64
	Replans      int
	Failovers    int
	Degrades     int

	Spans []trace.Span
}

// Attribution is the span-stream fold for one query: engine busy time by
// span kind and by shard, byte/launch/cache counters, and the admission
// wait. Produced by Attribute; aggregated into Usage by the ledger.
type Attribution struct {
	// BusyNS is virtual engine-busy nanoseconds by span kind name (h2d,
	// d2h, alloc, pinned-alloc, free, kernel, sync, transform). The sum
	// equals DeviceNS, which balances exactly against the query's
	// KernelTime + TransferTime + OverheadTime.
	BusyNS   map[string]int64
	DeviceNS int64

	H2DBytes    int64
	D2HBytes    int64
	Launches    int64
	CacheHits   int64
	CacheMisses int64

	// AdmissionWait is host wall time spent queued for admission.
	AdmissionWait time.Duration

	// ShardBusyNS splits DeviceNS by the shard partition that spent it
	// (key = shard name, e.g. "shard2"); unsharded work is under "".
	ShardBusyNS map[string]int64
}

// shardOf walks a span's container chain to the enclosing shard
// partition, returning the shard name from its "partition N on <shard>"
// label. Parent IDs are absolute recorder indexes; base is the absolute
// index of spans[0], so slices taken mid-recorder still resolve. Spans
// whose chain leaves the slice are unsharded ("").
func shardOf(spans []trace.Span, i, base int) string {
	for hops := 0; hops < len(spans); hops++ {
		p := int(spans[i].Parent) - base
		if p < 0 || p >= len(spans) {
			return ""
		}
		if spans[p].Kind == trace.KindShard {
			label := spans[p].Label
			if at := strings.LastIndex(label, " on "); at >= 0 {
				return label[at+len(" on "):]
			}
			return label
		}
		i = p
	}
	return ""
}

// Attribute folds one query's span stream into its Attribution. It is
// stateless and allocation-proportional to the number of distinct kinds
// and shards, not spans.
func Attribute(spans []trace.Span) Attribution {
	a := Attribution{
		BusyNS:      make(map[string]int64),
		ShardBusyNS: make(map[string]int64),
	}
	if len(spans) == 0 {
		return a
	}
	base := int(spans[0].ID)
	for i := range spans {
		s := &spans[i]
		switch {
		case s.Kind.Engine():
			d := int64(s.Duration())
			a.BusyNS[s.Kind.String()] += d
			a.DeviceNS += d
			a.ShardBusyNS[shardOf(spans, i, base)] += d
			switch s.Kind {
			case trace.KindH2D:
				a.H2DBytes += s.Bytes
			case trace.KindD2H:
				a.D2HBytes += s.Bytes
			case trace.KindKernel:
				a.Launches++
			}
		case s.Kind == trace.KindAdmission:
			a.AdmissionWait += s.Wall
		case s.Kind == trace.KindCache:
			if strings.HasPrefix(s.Label, "hit ") {
				a.CacheHits++
			} else if strings.HasPrefix(s.Label, "miss ") {
				a.CacheMisses++
			}
		}
	}
	return a
}

// Usage is the accumulated ledger entry for one (shape, tenant) key.
type Usage struct {
	Shape  string `json:"shape"`
	Tenant string `json:"tenant,omitempty"`

	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors,omitempty"`
	Sheds   int64 `json:"sheds,omitempty"`

	ElapsedNS  int64 `json:"elapsed_ns"`
	DeviceNS   int64 `json:"device_ns"`
	KernelNS   int64 `json:"kernel_ns"`
	TransferNS int64 `json:"transfer_ns"`
	OverheadNS int64 `json:"overhead_ns"`

	H2DBytes    int64 `json:"h2d_bytes"`
	D2HBytes    int64 `json:"d2h_bytes"`
	Launches    int64 `json:"launches"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`

	Retries   int64 `json:"retries,omitempty"`
	Replans   int64 `json:"replans,omitempty"`
	Failovers int64 `json:"failovers,omitempty"`
	Degrades  int64 `json:"degrades,omitempty"`

	AdmissionWait time.Duration `json:"admission_wait_ns,omitempty"`

	// ShardNS splits DeviceNS by shard partition; empty for unsharded
	// workloads (unsharded busy time accrues under key "").
	ShardNS map[string]int64 `json:"shard_ns,omitempty"`
}

func (u *Usage) clone() Usage {
	out := *u
	if len(u.ShardNS) > 0 {
		out.ShardNS = make(map[string]int64, len(u.ShardNS))
		for k, v := range u.ShardNS {
			out.ShardNS[k] = v
		}
	} else {
		out.ShardNS = nil
	}
	return out
}

type ledgerKey struct {
	shape  string
	tenant string
}

// Profiler is the fleet ledger plus the anomaly detector and, when
// configured, the SLO tracker. A nil *Profiler no-ops on every method.
type Profiler struct {
	mu      sync.Mutex
	cfg     Config
	ledger  map[ledgerKey]*Usage
	detect  *Detector
	slo     *SLO
	queries int64
}

// New returns a profiler with the given bounds.
func New(cfg Config) *Profiler {
	return &Profiler{
		cfg:    cfg,
		ledger: make(map[ledgerKey]*Usage),
		detect: newDetector(cfg),
	}
}

// SetSLO attaches an SLO tracker (nil detaches).
func (p *Profiler) SetSLO(s *SLO) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.slo = s
	p.mu.Unlock()
}

// SLOTracker returns the attached SLO tracker, if any.
func (p *Profiler) SLOTracker() *SLO {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slo
}

// Enabled reports whether the profiler records.
func (p *Profiler) Enabled() bool { return p != nil }

// usageFor resolves the ledger entry for a key, folding overflow into
// OtherKey once MaxShapes keys exist. Callers hold p.mu.
func (p *Profiler) usageFor(shape, tenant string) *Usage {
	k := ledgerKey{shape, tenant}
	if u := p.ledger[k]; u != nil {
		return u
	}
	if len(p.ledger) >= p.cfg.maxShapes() {
		k = ledgerKey{OtherKey, ""}
		if u := p.ledger[k]; u != nil {
			return u
		}
	}
	u := &Usage{Shape: k.shape, Tenant: k.tenant}
	p.ledger[k] = u
	return u
}

// Observe folds one finished query into the ledger, runs anomaly
// detection over its spans, and feeds the SLO tracker. It returns the
// anomalies detected (nil almost always) and the SLO burn alerts that
// newly fired, so the caller can emit events and force trace retention.
// Nil profilers return nothing.
func (p *Profiler) Observe(rec QueryRecord) ([]Anomaly, []BurnAlert) {
	if p == nil {
		return nil, nil
	}
	attr := Attribute(rec.Spans)

	p.mu.Lock()
	p.queries++
	u := p.usageFor(rec.Shape, rec.Tenant)
	u.Queries++
	if rec.Err {
		u.Errors++
	}
	u.ElapsedNS += int64(rec.Elapsed)
	u.KernelNS += int64(rec.KernelTime)
	u.TransferNS += int64(rec.TransferTime)
	u.OverheadNS += int64(rec.OverheadTime)
	if len(rec.Spans) > 0 {
		u.DeviceNS += attr.DeviceNS
		u.H2DBytes += attr.H2DBytes
		u.D2HBytes += attr.D2HBytes
		u.Launches += attr.Launches
		u.CacheHits += attr.CacheHits
		u.CacheMisses += attr.CacheMisses
		u.AdmissionWait += attr.AdmissionWait
		for shard, ns := range attr.ShardBusyNS {
			if shard == "" {
				continue
			}
			if u.ShardNS == nil {
				u.ShardNS = make(map[string]int64)
			}
			u.ShardNS[shard] += ns
		}
	} else {
		// No trace: fall back to the stats-level balance, which equals
		// the span fold exactly when spans are present.
		u.DeviceNS += int64(rec.KernelTime + rec.TransferTime + rec.OverheadTime)
		u.H2DBytes += rec.H2DBytes
		u.D2HBytes += rec.D2HBytes
		u.Launches += rec.Launches
	}
	u.Retries += rec.Retries
	u.Replans += int64(rec.Replans)
	u.Failovers += int64(rec.Failovers)
	u.Degrades += int64(rec.Degrades)
	detect := p.detect
	slo := p.slo
	p.mu.Unlock()

	anomalies := detect.Observe(rec.Spans)
	var alerts []BurnAlert
	if slo != nil {
		alerts = slo.Observe(rec.VT, rec.Elapsed, rec.Err)
	}
	return anomalies, alerts
}

// ObserveShed charges one admission-shed query to the ledger (the query
// never ran, so only the shed counter moves).
func (p *Profiler) ObserveShed(shape, tenant string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.usageFor(shape, tenant).Sheds++
	p.mu.Unlock()
}

// Queries reports how many finished queries the profiler has folded.
func (p *Profiler) Queries() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queries
}

// Anomalies reports how many perf anomalies have fired.
func (p *Profiler) Anomalies() int64 {
	if p == nil {
		return 0
	}
	return p.detect.Fired()
}

// Usages returns a copy of every ledger entry, sorted by shape then
// tenant. Nil profilers return nil.
func (p *Profiler) Usages() []Usage {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]Usage, 0, len(p.ledger))
	for _, u := range p.ledger {
		out = append(out, u.clone())
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shape != out[j].Shape {
			return out[i].Shape < out[j].Shape
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}

// Metric names accepted by TopK.
const (
	MetricDeviceNS = "device_ns"
	MetricBytes    = "bytes"
	MetricErrors   = "errors"
)

func metricValue(u *Usage, metric string) int64 {
	switch metric {
	case MetricDeviceNS:
		return u.DeviceNS
	case MetricBytes:
		return u.H2DBytes + u.D2HBytes
	case MetricErrors:
		return u.Errors + u.Sheds
	default:
		return 0
	}
}

// TopK returns the top-K ledger entries by the given metric (value
// descending, then shape/tenant ascending for determinism). Zero-valued
// entries are skipped.
func (p *Profiler) TopK(metric string) []Usage {
	if p == nil {
		return nil
	}
	all := p.Usages()
	filtered := all[:0]
	for _, u := range all {
		u := u
		if metricValue(&u, metric) > 0 {
			filtered = append(filtered, u)
		}
	}
	sort.SliceStable(filtered, func(i, j int) bool {
		vi, vj := metricValue(&filtered[i], metric), metricValue(&filtered[j], metric)
		if vi != vj {
			return vi > vj
		}
		if filtered[i].Shape != filtered[j].Shape {
			return filtered[i].Shape < filtered[j].Shape
		}
		return filtered[i].Tenant < filtered[j].Tenant
	})
	if k := p.cfg.topK(); len(filtered) > k {
		filtered = filtered[:k]
	}
	return filtered
}

func keyLabel(u *Usage) string {
	if u.Tenant == "" {
		return u.Shape
	}
	return u.Shape + " tenant=" + u.Tenant
}

// WriteReport renders the ledger as a deterministic text report: the
// top-K tables by device time, bytes moved, and errors+sheds, plus the
// SLO state when a tracker is attached. Nil profilers render a disabled
// notice.
func (p *Profiler) WriteReport(w io.Writer) {
	if p == nil {
		fmt.Fprintln(w, "profile: disabled")
		return
	}
	p.mu.Lock()
	queries := p.queries
	slo := p.slo
	p.mu.Unlock()
	fmt.Fprintf(w, "profile: %d queries, %d shapes, %d anomalies\n",
		queries, len(p.Usages()), p.Anomalies())

	sections := []struct {
		metric string
		title  string
		cell   func(u *Usage) string
	}{
		{MetricDeviceNS, "top by device time", func(u *Usage) string {
			return fmt.Sprintf("%v busy, %d queries, %d launches", vclock.Duration(u.DeviceNS), u.Queries, u.Launches)
		}},
		{MetricBytes, "top by bytes moved", func(u *Usage) string {
			return fmt.Sprintf("%d B h2d, %d B d2h, %d/%d cache hits", u.H2DBytes, u.D2HBytes, u.CacheHits, u.CacheHits+u.CacheMisses)
		}},
		{MetricErrors, "top by errors+sheds", func(u *Usage) string {
			return fmt.Sprintf("%d errors, %d sheds, %d retries", u.Errors, u.Sheds, u.Retries)
		}},
	}
	for _, sec := range sections {
		rows := p.TopK(sec.metric)
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s:\n", sec.title)
		width := 0
		for i := range rows {
			if n := len(keyLabel(&rows[i])); n > width {
				width = n
			}
		}
		for i := range rows {
			u := &rows[i]
			fmt.Fprintf(w, "  %-*s  %s\n", width, keyLabel(u), sec.cell(u))
			if sec.metric == MetricDeviceNS && len(u.ShardNS) > 0 {
				shards := make([]string, 0, len(u.ShardNS))
				for s := range u.ShardNS {
					shards = append(shards, s)
				}
				sort.Strings(shards)
				parts := make([]string, 0, len(shards))
				for _, s := range shards {
					parts = append(parts, fmt.Sprintf("%s %v", s, vclock.Duration(u.ShardNS[s])))
				}
				fmt.Fprintf(w, "  %-*s    shards: %s\n", width, "", strings.Join(parts, ", "))
			}
		}
	}
	if slo != nil {
		slo.WriteText(w)
	}
}
