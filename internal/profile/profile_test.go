package profile

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// span is a test shorthand for a trace.Span with an absolute ID and parent.
func span(id, parent int, kind trace.Kind, label, device string, start, end vclock.Time) trace.Span {
	p := trace.SpanID(parent)
	if parent < 0 {
		p = trace.NoSpan
	}
	return trace.Span{ID: trace.SpanID(id), Parent: p, Kind: kind, Label: label, Device: device, Start: start, End: end}
}

func TestAttributeFold(t *testing.T) {
	kernel := span(2, 1, trace.KindKernel, "filter", "GPU", 100, 300)
	kernel.Units = 1024
	h2d := span(3, 0, trace.KindH2D, "l_discount", "GPU", 0, 50)
	h2d.Bytes = 4096
	d2h := span(4, 0, trace.KindD2H, "result", "GPU", 300, 320)
	d2h.Bytes = 64
	adm := span(5, 0, trace.KindAdmission, "admitted", "", 0, 0)
	adm.Wall = 7 * time.Millisecond
	spans := []trace.Span{
		span(0, -1, trace.KindQuery, "q", "", 0, 320),
		span(1, 0, trace.KindShard, "partition 2 on shard2", "", 0, 300),
		kernel,
		h2d,
		d2h,
		adm,
		span(6, 0, trace.KindCache, "hit l_discount", "", 0, 0),
		span(7, 0, trace.KindCache, "miss l_extendedprice", "", 0, 0),
		span(8, 1, trace.KindAlloc, "buf", "GPU", 50, 60),
	}
	a := Attribute(spans)
	if got := a.BusyNS["kernel"]; got != 200 {
		t.Fatalf("kernel busy = %d, want 200", got)
	}
	if got := a.BusyNS["h2d"]; got != 50 {
		t.Fatalf("h2d busy = %d, want 50", got)
	}
	if got := a.BusyNS["alloc"]; got != 10 {
		t.Fatalf("alloc busy = %d, want 10", got)
	}
	if a.DeviceNS != 200+50+20+10 {
		t.Fatalf("DeviceNS = %d, want 280", a.DeviceNS)
	}
	if a.H2DBytes != 4096 || a.D2HBytes != 64 {
		t.Fatalf("bytes = %d/%d, want 4096/64", a.H2DBytes, a.D2HBytes)
	}
	if a.Launches != 1 {
		t.Fatalf("launches = %d, want 1", a.Launches)
	}
	if a.CacheHits != 1 || a.CacheMisses != 1 {
		t.Fatalf("cache = %d/%d, want 1/1", a.CacheHits, a.CacheMisses)
	}
	if a.AdmissionWait != 7*time.Millisecond {
		t.Fatalf("admission wait = %v", a.AdmissionWait)
	}
	// Kernel and alloc sit under the shard container; transfers do not.
	if got := a.ShardBusyNS["shard2"]; got != 210 {
		t.Fatalf("shard2 busy = %d, want 210", got)
	}
	if got := a.ShardBusyNS[""]; got != 70 {
		t.Fatalf("unsharded busy = %d, want 70", got)
	}
}

// Attribution must resolve shard containers when the slice was taken
// mid-recorder: IDs and parents are absolute, the base offset rebases them.
func TestAttributeMidRecorderBase(t *testing.T) {
	kernel := span(102, 101, trace.KindKernel, "agg", "GPU", 0, 90)
	spans := []trace.Span{
		span(100, -1, trace.KindQuery, "q", "", 0, 100),
		span(101, 100, trace.KindShard, "partition 0 on shard1", "", 0, 90),
		kernel,
	}
	a := Attribute(spans)
	if got := a.ShardBusyNS["shard1"]; got != 90 {
		t.Fatalf("shard1 busy = %d, want 90", got)
	}
}

func TestShardOfChainLeavesSlice(t *testing.T) {
	// Parent points below the slice base: unsharded.
	k := span(10, 3, trace.KindKernel, "k", "GPU", 0, 5)
	spans := []trace.Span{k}
	a := Attribute(spans)
	if got := a.ShardBusyNS[""]; got != 5 {
		t.Fatalf("unsharded busy = %d, want 5", got)
	}
	if len(a.ShardBusyNS) != 1 {
		t.Fatalf("shard keys = %v, want only \"\"", a.ShardBusyNS)
	}
}

func TestAttributeEmpty(t *testing.T) {
	a := Attribute(nil)
	if a.DeviceNS != 0 || len(a.BusyNS) != 0 {
		t.Fatalf("empty fold = %+v", a)
	}
}

func TestObserveSpansVsStatsFallbackAgree(t *testing.T) {
	kernel := span(1, 0, trace.KindKernel, "filter", "GPU", 0, 100)
	h2d := span(2, 0, trace.KindH2D, "col", "GPU", 100, 140)
	h2d.Bytes = 512
	spans := []trace.Span{span(0, -1, trace.KindQuery, "q", "", 0, 140), kernel, h2d}

	rec := QueryRecord{
		Shape: "s1", Elapsed: 140, KernelTime: 100, TransferTime: 40,
		H2DBytes: 512, Launches: 1,
	}
	withSpans := rec
	withSpans.Spans = spans

	a, b := New(Config{}), New(Config{})
	a.Observe(withSpans)
	b.Observe(rec)
	ua, ub := a.Usages()[0], b.Usages()[0]
	if ua.DeviceNS != ub.DeviceNS || ua.H2DBytes != ub.H2DBytes || ua.Launches != ub.Launches {
		t.Fatalf("span fold %+v disagrees with stats fallback %+v", ua, ub)
	}
}

func TestLedgerOverflowFoldsToOther(t *testing.T) {
	p := New(Config{MaxShapes: 2})
	p.Observe(QueryRecord{Shape: "a", Elapsed: 1})
	p.Observe(QueryRecord{Shape: "b", Elapsed: 1})
	p.Observe(QueryRecord{Shape: "c", Tenant: "t", Elapsed: 1})
	p.Observe(QueryRecord{Shape: "d", Elapsed: 1})
	p.ObserveShed("e", "t2")
	us := p.Usages()
	if len(us) != 3 {
		t.Fatalf("ledger keys = %d, want 3 (a, b, ~other)", len(us))
	}
	var other *Usage
	for i := range us {
		if us[i].Shape == OtherKey {
			other = &us[i]
		}
	}
	if other == nil {
		t.Fatalf("no %s bucket in %+v", OtherKey, us)
	}
	if other.Queries != 2 || other.Sheds != 1 || other.Tenant != "" {
		t.Fatalf("overflow bucket = %+v, want 2 queries + 1 shed, no tenant", *other)
	}
	// Existing keys keep accumulating after overflow.
	p.Observe(QueryRecord{Shape: "a", Elapsed: 1})
	for _, u := range p.Usages() {
		if u.Shape == "a" && u.Queries != 2 {
			t.Fatalf("shape a queries = %d, want 2", u.Queries)
		}
	}
}

func TestTenantSplitsLedgerKeys(t *testing.T) {
	p := New(Config{})
	p.Observe(QueryRecord{Shape: "q6", Tenant: "alice", Elapsed: 1})
	p.Observe(QueryRecord{Shape: "q6", Tenant: "bob", Elapsed: 1})
	p.Observe(QueryRecord{Shape: "q6", Elapsed: 1})
	if got := len(p.Usages()); got != 3 {
		t.Fatalf("ledger keys = %d, want 3 (same shape, three tenants)", got)
	}
}

func TestTopKOrderingAndBound(t *testing.T) {
	p := New(Config{TopK: 2})
	p.Observe(QueryRecord{Shape: "small", KernelTime: 10})
	p.Observe(QueryRecord{Shape: "big", KernelTime: 100})
	p.Observe(QueryRecord{Shape: "mid", KernelTime: 50})
	p.Observe(QueryRecord{Shape: "zero"}) // zero device time: skipped
	top := p.TopK(MetricDeviceNS)
	if len(top) != 2 || top[0].Shape != "big" || top[1].Shape != "mid" {
		t.Fatalf("top = %+v, want [big mid]", top)
	}
	// Ties break by shape ascending for determinism.
	p2 := New(Config{})
	p2.Observe(QueryRecord{Shape: "bb", KernelTime: 10})
	p2.Observe(QueryRecord{Shape: "aa", KernelTime: 10})
	top2 := p2.TopK(MetricDeviceNS)
	if top2[0].Shape != "aa" || top2[1].Shape != "bb" {
		t.Fatalf("tie order = %s,%s, want aa,bb", top2[0].Shape, top2[1].Shape)
	}
	if got := p2.TopK("bogus"); len(got) != 0 {
		t.Fatalf("unknown metric returned %d rows", len(got))
	}
}

func TestTopKMetrics(t *testing.T) {
	p := New(Config{})
	p.Observe(QueryRecord{Shape: "mover", H2DBytes: 1000, D2HBytes: 24})
	p.Observe(QueryRecord{Shape: "failer", Err: true, Elapsed: 1})
	p.ObserveShed("shed", "")
	if top := p.TopK(MetricBytes); len(top) != 1 || top[0].Shape != "mover" {
		t.Fatalf("bytes top = %+v", top)
	}
	top := p.TopK(MetricErrors)
	if len(top) != 2 {
		t.Fatalf("errors top = %+v, want failer and shed", top)
	}
}

func TestWriteReport(t *testing.T) {
	p := New(Config{})
	kernel := span(1, 0, trace.KindKernel, "filter", "GPU", 0, 100)
	spans := []trace.Span{span(0, -1, trace.KindQuery, "q", "", 0, 100), kernel}
	p.Observe(QueryRecord{Shape: "q6", Tenant: "alice", Elapsed: 100, KernelTime: 100, Spans: spans})
	p.SetSLO(NewSLO(SLOConfig{Target: 1000}))
	p.Observe(QueryRecord{Shape: "q6", Tenant: "alice", Elapsed: 100, KernelTime: 100, Spans: spans})

	var sb strings.Builder
	p.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{
		"profile: 2 queries, 1 shapes, 0 anomalies",
		"top by device time:",
		"q6 tenant=alice",
		"slo: target",
		"1/1 good",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Identical state renders identical bytes.
	var sb2 strings.Builder
	p.WriteReport(&sb2)
	if sb2.String() != out {
		t.Fatalf("report not deterministic:\n%s\nvs\n%s", out, sb2.String())
	}
}

func TestWriteReportShardBreakdown(t *testing.T) {
	p := New(Config{})
	kernel := span(2, 1, trace.KindKernel, "agg", "GPU", 0, 40)
	spans := []trace.Span{
		span(0, -1, trace.KindQuery, "q", "", 0, 40),
		span(1, 0, trace.KindShard, "partition 1 on shard3", "", 0, 40),
		kernel,
	}
	p.Observe(QueryRecord{Shape: "scatter", Elapsed: 40, KernelTime: 40, Spans: spans})
	var sb strings.Builder
	p.WriteReport(&sb)
	if !strings.Contains(sb.String(), "shards: shard3 40ns") {
		t.Fatalf("report missing shard breakdown:\n%s", sb.String())
	}
}

func TestNilProfilerNoOps(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Fatal("nil profiler enabled")
	}
	a, b := p.Observe(QueryRecord{Shape: "x"})
	if a != nil || b != nil {
		t.Fatal("nil Observe returned data")
	}
	p.ObserveShed("x", "")
	p.SetSLO(NewSLO(SLOConfig{Target: 1}))
	if p.SLOTracker() != nil || p.Queries() != 0 || p.Anomalies() != 0 {
		t.Fatal("nil profiler leaked state")
	}
	if p.Usages() != nil || p.TopK(MetricDeviceNS) != nil {
		t.Fatal("nil profiler returned usages")
	}
	var sb strings.Builder
	p.WriteReport(&sb)
	if sb.String() != "profile: disabled\n" {
		t.Fatalf("nil report = %q", sb.String())
	}
}

func TestProfilerQueriesCounter(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 5; i++ {
		p.Observe(QueryRecord{Shape: fmt.Sprintf("s%d", i)})
	}
	if p.Queries() != 5 {
		t.Fatalf("queries = %d, want 5", p.Queries())
	}
}
