package profile

import (
	"testing"

	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// kernelSpan builds one kernel span processing units at nsPerUnit.
func kernelSpan(label, device string, units, nsPerUnit int64) []trace.Span {
	return []trace.Span{{
		ID: 0, Parent: trace.NoSpan, Kind: trace.KindKernel,
		Label: label, Device: device, Units: units,
		Start: 0, End: vclock.Time(units * nsPerUnit),
	}}
}

func h2dSpan(device string, bytes, nsPerByte int64) []trace.Span {
	return []trace.Span{{
		ID: 0, Parent: trace.NoSpan, Kind: trace.KindH2D,
		Label: "col", Device: device, Bytes: bytes,
		Start: 0, End: vclock.Time(bytes * nsPerByte),
	}}
}

func TestDetectorFiresOnSustainedDeviation(t *testing.T) {
	d := newDetector(Config{AnomalyFactor: 2, AnomalySustain: 2, AnomalyMinSamples: 4})
	for i := 0; i < 4; i++ {
		if out := d.Observe(kernelSpan("scan", "GPU", 1024, 10)); len(out) != 0 {
			t.Fatalf("training fired %+v", out)
		}
	}
	// First deviation arms the streak but does not fire.
	if out := d.Observe(kernelSpan("scan", "GPU", 1024, 100)); len(out) != 0 {
		t.Fatalf("single deviation fired %+v", out)
	}
	// Second consecutive deviation reaches sustain and fires.
	out := d.Observe(kernelSpan("scan", "GPU", 1024, 100))
	if len(out) != 1 {
		t.Fatalf("sustained deviation fired %d anomalies, want 1", len(out))
	}
	a := out[0]
	if a.Primitive != "scan" || a.Driver != "GPU" || a.Bucket != cost.BucketOf(1024) {
		t.Fatalf("anomaly = %+v", a)
	}
	if a.Factor <= 2 || a.Measured != 100 {
		t.Fatalf("anomaly rates = %+v", a)
	}
	if d.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", d.Fired())
	}
	// The streak re-armed: a fresh sustained run (slower still, to outrun
	// the EWMA the slow spans dragged up) fires again.
	d.Observe(kernelSpan("scan", "GPU", 1024, 1000))
	out = d.Observe(kernelSpan("scan", "GPU", 1024, 1000))
	if len(out) != 1 || d.Fired() != 2 {
		t.Fatalf("re-armed fire = %d anomalies, %d fired", len(out), d.Fired())
	}
}

func TestDetectorCompliantResetsStreak(t *testing.T) {
	d := newDetector(Config{AnomalyFactor: 2, AnomalySustain: 2, AnomalyMinSamples: 4})
	for i := 0; i < 4; i++ {
		d.Observe(kernelSpan("scan", "GPU", 1024, 10))
	}
	d.Observe(kernelSpan("scan", "GPU", 1024, 100)) // streak 1; EWMA drags to 32.5
	d.Observe(kernelSpan("scan", "GPU", 1024, 33))  // compliant: streak resets
	out := d.Observe(kernelSpan("scan", "GPU", 1024, 200))
	if len(out) != 0 || d.Fired() != 0 {
		t.Fatalf("streak survived a compliant observation: %+v", out)
	}
}

func TestDetectorUntrainedNeverFlags(t *testing.T) {
	d := newDetector(Config{AnomalyFactor: 2, AnomalySustain: 1, AnomalyMinSamples: 4})
	for i := 0; i < 3; i++ {
		d.Observe(kernelSpan("scan", "GPU", 1024, 10))
	}
	// Samples (3) below the floor (4): even a 100x outlier stays quiet.
	if out := d.Observe(kernelSpan("scan", "GPU", 1024, 1000)); len(out) != 0 {
		t.Fatalf("untrained entry fired %+v", out)
	}
}

func TestDetectorTransferAnomalies(t *testing.T) {
	d := newDetector(Config{AnomalyFactor: 2, AnomalySustain: 1, AnomalyMinSamples: 2})
	d.Observe(h2dSpan("GPU", 4096, 1))
	d.Observe(h2dSpan("GPU", 4096, 1))
	out := d.Observe(h2dSpan("GPU", 4096, 10))
	if len(out) != 1 || out[0].Primitive != cost.PrimH2D {
		t.Fatalf("h2d anomaly = %+v", out)
	}
	// Zero-byte transfers are ignored.
	if out := d.Observe(h2dSpan("GPU", 0, 10)); len(out) != 0 {
		t.Fatalf("zero-byte transfer fired %+v", out)
	}
}

func TestDetectorUnitsFallsBackToRows(t *testing.T) {
	d := newDetector(Config{AnomalyFactor: 2, AnomalySustain: 1, AnomalyMinSamples: 2})
	rowsSpan := func(nsPerRow int64) []trace.Span {
		return []trace.Span{{
			ID: 0, Parent: trace.NoSpan, Kind: trace.KindKernel,
			Label: "agg", Device: "GPU", Rows: 1024,
			Start: 0, End: vclock.Time(1024 * nsPerRow),
		}}
	}
	d.Observe(rowsSpan(10))
	d.Observe(rowsSpan(10))
	if out := d.Observe(rowsSpan(100)); len(out) != 1 {
		t.Fatalf("rows-normalized anomaly = %+v", out)
	}
}

func TestDetectorNilSafe(t *testing.T) {
	var d *Detector
	if d.Observe(kernelSpan("scan", "GPU", 1, 1)) != nil || d.Fired() != 0 {
		t.Fatal("nil detector leaked state")
	}
}

func TestProfilerObserveSurfacesAnomaliesAndAlerts(t *testing.T) {
	p := New(Config{AnomalyFactor: 2, AnomalySustain: 1, AnomalyMinSamples: 1})
	p.SetSLO(NewSLO(SLOConfig{Target: 100, Objective: 0.9}))
	train := QueryRecord{Shape: "q", Elapsed: 50, Spans: kernelSpan("scan", "GPU", 1024, 10)}
	if an, al := p.Observe(train); len(an) != 0 || len(al) != 0 {
		t.Fatalf("training observe fired %v %v", an, al)
	}
	slow := QueryRecord{Shape: "q", VT: 10, Elapsed: 500, Spans: kernelSpan("scan", "GPU", 1024, 100)}
	anomalies, alerts := p.Observe(slow)
	if len(anomalies) != 1 || p.Anomalies() != 1 {
		t.Fatalf("anomalies = %+v (count %d)", anomalies, p.Anomalies())
	}
	if len(alerts) != 2 {
		t.Fatalf("slo alerts = %+v, want fast+slow (500 > target 100)", alerts)
	}
}
