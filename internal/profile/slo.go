package profile

import (
	"fmt"
	"io"
	"sync"

	"github.com/adamant-db/adamant/internal/vclock"
)

// SLOConfig defines a latency service-level objective plus the
// multi-window burn-rate alerting policy evaluated over it. The policy is
// the standard two-window scheme: a fast window catches sharp incidents
// (burn rate >= FastBurn means the monthly budget would be gone in
// hours), a slow window catches slow leaks (anything sustainedly above
// 1x). Windows are virtual time, like everything else the engine
// measures, so tests and replays evaluate identically.
type SLOConfig struct {
	// Target is the latency threshold: a query is "good" when it
	// finishes without error within Target virtual time.
	Target vclock.Duration
	// Objective is the goal fraction of good queries, e.g. 0.99.
	// Values outside (0, 1) default to 0.99.
	Objective float64
	// FastWindow/SlowWindow are the burn evaluation windows (defaults
	// 5m / 1h of virtual time).
	FastWindow vclock.Duration
	SlowWindow vclock.Duration
	// FastBurn/SlowBurn are the firing thresholds (defaults 5.0 / 1.05).
	FastBurn float64
	SlowBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.FastWindow <= 0 {
		c.FastWindow = vclock.Duration(5 * 60 * 1e9)
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = vclock.Duration(60 * 60 * 1e9)
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 5.0
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 1.05
	}
	return c
}

// BurnAlert is one burn-rate window newly crossing its threshold.
type BurnAlert struct {
	// Window is "fast" or "slow".
	Window string
	// Burn is the burn rate at the crossing: the window's bad fraction
	// over the error budget (1 - objective). Burn 1.0 spends the budget
	// exactly; FastBurn/SlowBurn are the firing thresholds.
	Burn float64
	// Bad and Total are the window's population at the crossing.
	Bad   int64
	Total int64
}

type sloOutcome struct {
	vt  vclock.Time
	bad bool
}

// SLO tracks good/total query outcomes against a latency objective and
// evaluates two burn-rate windows over virtual time. A nil *SLO no-ops.
type SLO struct {
	mu  sync.Mutex
	cfg SLOConfig

	good  int64
	total int64

	window []sloOutcome // outcomes within the slow window, oldest first

	fastFiring bool
	slowFiring bool
	fastBurn   float64
	slowBurn   float64
}

// NewSLO returns a tracker for the given objective.
func NewSLO(cfg SLOConfig) *SLO {
	return &SLO{cfg: cfg.withDefaults()}
}

// Config reports the tracker's effective (defaulted) configuration.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// burnOver evaluates the burn rate over outcomes newer than now-win.
func (s *SLO) burnOver(now vclock.Time, win vclock.Duration) (burn float64, bad, total int64) {
	for _, o := range s.window {
		if int64(now.Sub(o.vt)) >= int64(win) {
			continue
		}
		total++
		if o.bad {
			bad++
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	budget := 1 - s.cfg.Objective
	return (float64(bad) / float64(total)) / budget, bad, total
}

// Observe records one finished query (bad when it errored or overran the
// latency target) and re-evaluates both burn windows at virtual time vt.
// It returns the windows that transitioned from quiet to firing — each
// deserves one slo_burn event. Nil trackers return nil.
func (s *SLO) Observe(vt vclock.Time, elapsed vclock.Duration, failed bool) []BurnAlert {
	if s == nil {
		return nil
	}
	bad := failed || elapsed > s.cfg.Target
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if !bad {
		s.good++
	}
	s.window = append(s.window, sloOutcome{vt: vt, bad: bad})
	// Prune everything older than the slow window (the widest).
	keep := s.window[:0]
	for _, o := range s.window {
		if int64(vt.Sub(o.vt)) < int64(s.cfg.SlowWindow) {
			keep = append(keep, o)
		}
	}
	s.window = keep

	var alerts []BurnAlert
	fast, fbad, ftotal := s.burnOver(vt, s.cfg.FastWindow)
	slow, sbad, stotal := s.burnOver(vt, s.cfg.SlowWindow)
	s.fastBurn, s.slowBurn = fast, slow
	if firing := fast >= s.cfg.FastBurn; firing != s.fastFiring {
		s.fastFiring = firing
		if firing {
			alerts = append(alerts, BurnAlert{Window: "fast", Burn: fast, Bad: fbad, Total: ftotal})
		}
	}
	if firing := slow >= s.cfg.SlowBurn; firing != s.slowFiring {
		s.slowFiring = firing
		if firing {
			alerts = append(alerts, BurnAlert{Window: "slow", Burn: slow, Bad: sbad, Total: stotal})
		}
	}
	return alerts
}

// SLOSnapshot is the tracker's exportable state.
type SLOSnapshot struct {
	Enabled    bool    `json:"enabled"`
	TargetNS   int64   `json:"target_ns,omitempty"`
	Objective  float64 `json:"objective,omitempty"`
	Good       int64   `json:"good"`
	Total      int64   `json:"total"`
	FastBurn   float64 `json:"fast_burn"`
	SlowBurn   float64 `json:"slow_burn"`
	FastFiring bool    `json:"fast_firing"`
	SlowFiring bool    `json:"slow_firing"`
}

// Snapshot exports the tracker's current state. Nil trackers report
// Enabled false.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SLOSnapshot{
		Enabled:    true,
		TargetNS:   int64(s.cfg.Target),
		Objective:  s.cfg.Objective,
		Good:       s.good,
		Total:      s.total,
		FastBurn:   s.fastBurn,
		SlowBurn:   s.slowBurn,
		FastFiring: s.fastFiring,
		SlowFiring: s.slowFiring,
	}
}

// WriteText renders the SLO state as one deterministic report block.
func (s *SLO) WriteText(w io.Writer) {
	snap := s.Snapshot()
	if !snap.Enabled {
		fmt.Fprintln(w, "slo: disabled")
		return
	}
	attained := 1.0
	if snap.Total > 0 {
		attained = float64(snap.Good) / float64(snap.Total)
	}
	fmt.Fprintf(w, "slo: target %v at %.4g: %d/%d good (%.4f), burn fast %.2f (firing %v) slow %.2f (firing %v)\n",
		vclock.Duration(snap.TargetNS), snap.Objective, snap.Good, snap.Total, attained,
		snap.FastBurn, snap.FastFiring, snap.SlowBurn, snap.SlowFiring)
}
