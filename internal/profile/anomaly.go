package profile

import (
	"sync"
	"sync/atomic"

	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/trace"
)

// Anomaly is one sustained measured-vs-expected rate deviation: the
// catalog's EWMA says this (primitive, driver, bucket) should run at
// Expected ns/unit, but the last AnomalySustain observations all measured
// more than AnomalyFactor times that. It links a fleet-level regression
// to a concrete primitive on a concrete driver at a concrete size.
type Anomaly struct {
	Primitive string  `json:"primitive"`
	Driver    string  `json:"driver"`
	Bucket    int     `json:"bucket"`
	Measured  float64 `json:"measured_ns_per_unit"`
	Expected  float64 `json:"expected_ns_per_unit"`
	Factor    float64 `json:"factor"` // Measured / Expected
}

// Detector anchors live span rates against a cost-catalog EWMA. It keeps
// its own catalog (fed from the same spans it checks) so anomaly
// detection works whether or not the engine runs in auto-planning mode;
// each observation is compared against the estimate *before* being folded
// in, so a slow run cannot mask itself by dragging its own baseline.
type Detector struct {
	mu      sync.Mutex
	catalog *cost.Catalog
	streaks map[cost.Key]int
	fired   atomic.Int64

	factor     float64
	sustain    int
	minSamples int64
}

func newDetector(cfg Config) *Detector {
	factor := cfg.AnomalyFactor
	if factor <= 1 {
		factor = 2.0
	}
	sustain := cfg.AnomalySustain
	if sustain <= 0 {
		sustain = 3
	}
	minSamples := cfg.AnomalyMinSamples
	if minSamples <= 0 {
		minSamples = 8
	}
	return &Detector{
		catalog:    cost.New(),
		streaks:    make(map[cost.Key]int),
		factor:     factor,
		sustain:    sustain,
		minSamples: minSamples,
	}
}

// Fired reports how many anomalies the detector has emitted.
func (d *Detector) Fired() int64 {
	if d == nil {
		return 0
	}
	return d.fired.Load()
}

// check compares one (key, units, duration) observation against the
// learned rate, updates the streak, and appends a fired anomaly. Callers
// hold d.mu.
func (d *Detector) check(k cost.Key, units, durNS int64, out []Anomaly) []Anomaly {
	if units <= 0 || durNS < 0 {
		return out
	}
	entry, ok := d.catalog.Nearest(k)
	if ok && entry.Samples >= d.minSamples && entry.NsPerUnit > 0 {
		measured := float64(durNS) / float64(units)
		ratio := measured / entry.NsPerUnit
		if ratio > d.factor {
			d.streaks[k]++
			if d.streaks[k] == d.sustain {
				d.streaks[k] = 0 // re-arm: the next sustained run fires again
				d.fired.Add(1)
				out = append(out, Anomaly{
					Primitive: k.Primitive,
					Driver:    k.Driver,
					Bucket:    k.Bucket,
					Measured:  measured,
					Expected:  entry.NsPerUnit,
					Factor:    ratio,
				})
			}
		} else {
			d.streaks[k] = 0
		}
	}
	return out
}

// Observe anchors one query's spans against the catalog, then folds them
// in as training data. Returns the anomalies that fired (usually nil).
func (d *Detector) Observe(spans []trace.Span) []Anomaly {
	if d == nil || len(spans) == 0 {
		return nil
	}
	var out []Anomaly
	d.mu.Lock()
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case trace.KindKernel:
			units := s.Units
			if units < 1 {
				units = s.Rows
			}
			if units < 1 {
				units = 1
			}
			k := cost.Key{Primitive: s.Label, Driver: s.Device, Bucket: cost.BucketOf(units)}
			out = d.check(k, units, int64(s.Duration()), out)
			d.catalog.Observe(k, units, s.Duration())
		case trace.KindH2D:
			if s.Bytes > 0 {
				k := cost.Key{Primitive: cost.PrimH2D, Driver: s.Device, Bucket: cost.BucketOf(s.Bytes)}
				out = d.check(k, s.Bytes, int64(s.Duration()), out)
				d.catalog.Observe(k, s.Bytes, s.Duration())
			}
		case trace.KindD2H:
			if s.Bytes > 0 {
				k := cost.Key{Primitive: cost.PrimD2H, Driver: s.Device, Bucket: cost.BucketOf(s.Bytes)}
				out = d.check(k, s.Bytes, int64(s.Duration()), out)
				d.catalog.Observe(k, s.Bytes, s.Duration())
			}
		}
	}
	d.mu.Unlock()
	return out
}
