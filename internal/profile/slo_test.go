package profile

import (
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/vclock"
)

func TestSLODefaults(t *testing.T) {
	cfg := NewSLO(SLOConfig{Target: 100}).Config()
	if cfg.Objective != 0.99 {
		t.Fatalf("objective = %v, want 0.99", cfg.Objective)
	}
	if cfg.FastWindow != vclock.Duration(5*60*1e9) || cfg.SlowWindow != vclock.Duration(60*60*1e9) {
		t.Fatalf("windows = %v/%v", cfg.FastWindow, cfg.SlowWindow)
	}
	if cfg.FastBurn != 5.0 || cfg.SlowBurn != 1.05 {
		t.Fatalf("burn thresholds = %v/%v", cfg.FastBurn, cfg.SlowBurn)
	}
	// Objective outside (0,1) falls back; slow window clamps to fast.
	cfg = NewSLO(SLOConfig{Target: 100, Objective: 1.5, FastWindow: 1000, SlowWindow: 10}).Config()
	if cfg.Objective != 0.99 || cfg.SlowWindow != cfg.FastWindow {
		t.Fatalf("clamped config = %+v", cfg)
	}
	var nilSLO *SLO
	if nilSLO.Config() != (SLOConfig{}) || nilSLO.Observe(0, 0, false) != nil {
		t.Fatal("nil SLO leaked state")
	}
	if nilSLO.Snapshot().Enabled {
		t.Fatal("nil snapshot enabled")
	}
}

func TestSLOBurnFiresOnTransitionOnly(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 100, Objective: 0.9})
	// All-bad traffic: burn = 1.0/0.1 = 10, above both thresholds.
	alerts := s.Observe(10, 200, false)
	if len(alerts) != 2 {
		t.Fatalf("first bad query fired %d alerts, want fast+slow", len(alerts))
	}
	var windows []string
	for _, a := range alerts {
		windows = append(windows, a.Window)
		if a.Burn < 5 || a.Bad != 1 || a.Total != 1 {
			t.Fatalf("alert = %+v", a)
		}
	}
	if strings.Join(windows, ",") != "fast,slow" {
		t.Fatalf("windows = %v", windows)
	}
	// Still firing: no repeat alerts.
	if alerts = s.Observe(20, 200, false); len(alerts) != 0 {
		t.Fatalf("repeat bad query fired %d alerts, want 0", len(alerts))
	}
	// Flood of good traffic drops the burn below both thresholds (quiet).
	for i := 0; i < 40; i++ {
		if alerts = s.Observe(vclock.Time(30+i), 50, false); len(alerts) != 0 {
			t.Fatalf("good query fired alerts %+v", alerts)
		}
	}
	snap := s.Snapshot()
	if snap.FastFiring || snap.SlowFiring {
		t.Fatalf("still firing after recovery: %+v", snap)
	}
	// A fresh bad run re-fires: the transition re-armed.
	var refired int
	for i := 0; i < 40; i++ {
		refired += len(s.Observe(vclock.Time(100+i), 200, false))
	}
	if refired == 0 {
		t.Fatal("burn never re-fired after recovery")
	}
}

func TestSLOErrorCountsAsBad(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 100, Objective: 0.9})
	s.Observe(0, 10, true) // fast, but errored
	snap := s.Snapshot()
	if snap.Good != 0 || snap.Total != 1 {
		t.Fatalf("snapshot = %+v, want 0/1 good", snap)
	}
}

func TestSLOWindowPruning(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 100, Objective: 0.9, FastWindow: 100, SlowWindow: 1000})
	s.Observe(0, 200, false) // bad at vt 0
	// Beyond the fast window but within slow: fast forgets, slow remembers.
	alerts := s.Observe(500, 50, false)
	_ = alerts
	snap := s.Snapshot()
	if snap.FastBurn != 0 {
		t.Fatalf("fast burn = %v, want 0 (bad outcome aged out)", snap.FastBurn)
	}
	if snap.SlowBurn == 0 {
		t.Fatalf("slow burn = %v, want > 0 (bad outcome still in window)", snap.SlowBurn)
	}
	// Beyond the slow window: everything pruned, burn goes quiet.
	s.Observe(5000, 50, false)
	snap = s.Snapshot()
	if snap.SlowBurn != 0 {
		t.Fatalf("slow burn = %v after pruning, want 0", snap.SlowBurn)
	}
	if snap.Good != 2 || snap.Total != 3 {
		t.Fatalf("lifetime counters pruned too: %+v", snap)
	}
}

func TestSLOWriteText(t *testing.T) {
	s := NewSLO(SLOConfig{Target: 100, Objective: 0.9})
	s.Observe(0, 50, false)
	var sb strings.Builder
	s.WriteText(&sb)
	if !strings.Contains(sb.String(), "1/1 good (1.0000)") {
		t.Fatalf("text = %q", sb.String())
	}
	var nilSLO *SLO
	sb.Reset()
	nilSLO.WriteText(&sb)
	if sb.String() != "slo: disabled\n" {
		t.Fatalf("nil text = %q", sb.String())
	}
}
