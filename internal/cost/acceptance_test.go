package cost

import (
	"testing"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/driver/simopencl"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/tpch"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// TestAutoWithinTenPercentOfBest is the acceptance sweep: for Q6 and Q3
// over the full four-driver rig, run every (driver, model) cell by hand,
// train the catalog on those runs' traces, then let the planner choose.
// The warm auto configuration must land within 10% of the best manual
// cell, and even the cold (calibration-only) configuration must never be
// pathological — no worse than 3x the best cell.
func TestAutoWithinTenPercentOfBest(t *testing.T) {
	ratio := 1.0 / 1024
	ds, err := tpch.Generate(tpch.Config{SF: 1, Ratio: ratio, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	newFourRig := func() (*hub.Runtime, []device.ID) {
		rt := hub.NewRuntime()
		var ids []device.ID
		for _, dev := range []device.Device{
			simcuda.New(&simhw.RTX2080Ti, nil),
			simopencl.NewGPU(&simhw.RTX2080Ti, nil),
			simopencl.NewCPU(&simhw.CoreI78700, nil),
			simomp.New(&simhw.CoreI78700, nil),
		} {
			id, err := rt.Register(dev)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		return rt, ids
	}

	for _, q := range []string{"Q6", "Q3"} {
		rt, ids := newFourRig()
		warm := New()
		var best vclock.Duration
		bestSet := false

		// The manual matrix: every (driver, model) cell, traces feeding the
		// warm catalog the same way the engine's feedback path does.
		for _, id := range ids {
			dev, err := rt.Device(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range exec.Models() {
				g, err := tpch.BuildQuery(q, ds, id)
				if err != nil {
					t.Fatal(err)
				}
				rec := trace.NewRecorder()
				res, err := exec.Run(rt, g, exec.Options{
					Model: m, ChunkElems: 2048, Recorder: rec,
				})
				if err != nil {
					t.Fatalf("%s manual %v on %s: %v", q, m, dev.Info().Name, err)
				}
				warm.ObserveSpans(rec.Spans())
				warm.ObserveQuery(m.String(), dev.Info().Name, int64(ds.Lineitem.Rows()), res.Stats.Elapsed)
				if !bestSet || res.Stats.Elapsed < best {
					best, bestSet = res.Stats.Elapsed, true
				}
			}
		}

		runAuto := func(cat *Catalog) (vclock.Duration, *Decision) {
			g, err := tpch.BuildQuery(q, ds, ids[0])
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewPlanner(cat).Plan(g, rt, PlanOptions{Candidates: ids, MaxChunk: 2048})
			if err != nil {
				t.Fatal(err)
			}
			res, err := exec.Run(rt, g, exec.Options{
				Model: dec.Model, ChunkElems: dec.ChunkElems,
				PlanNotes: dec.Notes, Replan: dec.Replan(),
			})
			if err != nil {
				t.Fatalf("%s auto run (%v, chunk %d): %v", q, dec.Model, dec.ChunkElems, err)
			}
			return res.Stats.Elapsed, dec
		}

		warmElapsed, warmDec := runAuto(warm)
		t.Logf("%s: best manual %v; warm auto %v (%v on %s, chunk %d)",
			q, best, warmElapsed, warmDec.Model, warmDec.Driver, warmDec.ChunkElems)
		if float64(warmElapsed) > 1.1*float64(best) {
			t.Errorf("%s: warm auto %v exceeds 110%% of best manual %v", q, warmElapsed, best)
		}

		cold := New()
		if err := Calibrate(rt, ids, cold); err != nil {
			t.Fatal(err)
		}
		coldElapsed, coldDec := runAuto(cold)
		t.Logf("%s: cold auto %v (%v on %s, chunk %d)",
			q, coldElapsed, coldDec.Model, coldDec.Driver, coldDec.ChunkElems)
		if float64(coldElapsed) > 3*float64(best) {
			t.Errorf("%s: cold auto %v is pathological against best manual %v", q, coldElapsed, best)
		}
	}
}
