package cost

import (
	"fmt"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/place"
	"github.com/adamant-db/adamant/internal/vclock"
)

// Model-shape constants for the cold compositional predictions: the
// per-chunk bookkeeping the chunked models pay, the per-chunk thread
// handshake the overlapped models pay, and the effective transfer discount
// of pinned staging.
const (
	perChunkOverhead = 20 * vclock.Microsecond
	perChunkSync     = 5 * vclock.Microsecond
	pinnedFactor     = 0.6
)

// PlanOptions configures one planning pass.
type PlanOptions struct {
	// Candidates are the devices the placer may choose from. Required.
	Candidates []device.ID
	// MaxChunk caps the initial chunk size (default exec.DefaultChunkElems).
	MaxChunk int
	// MinChunk floors it (default exec.DefaultMinChunkElems).
	MinChunk int
	// MemFraction is the share of a device's memory the planned working
	// set may occupy before the chunk size halves (default 0.5, leaving
	// headroom for the adaptive-OOM ladder to never be the first resort).
	MemFraction float64
}

func (o PlanOptions) maxChunk() int {
	if o.MaxChunk > 0 {
		return o.MaxChunk
	}
	return exec.DefaultChunkElems
}

func (o PlanOptions) minChunk() int {
	if o.MinChunk > 0 {
		return o.MinChunk
	}
	return exec.DefaultMinChunkElems
}

func (o PlanOptions) memFraction() float64 {
	if o.MemFraction > 0 {
		return o.MemFraction
	}
	return 0.5
}

// Decision is one auto-planned configuration. Notes carries the
// deterministic human-readable audit trail that becomes the trace's
// autoplan annotation spans.
type Decision struct {
	Model      exec.Model
	ChunkElems int
	// MaxChunk bounds what the mid-query re-planner may grow the chunk
	// to (the memory-fit ceiling computed at plan time).
	MaxChunk   int
	Placements []place.Decision
	// Device and Driver name the primary device: the one carrying the
	// dominant (most scan rows) pipeline.
	Device device.ID
	Driver string
	// Rows is the dominant pipeline's input cardinality.
	Rows int64
	// Predicted is the planner's cost estimate for the chosen config.
	Predicted vclock.Duration
	Notes     []string
}

// Planner plans queries from a catalog.
type Planner struct {
	Catalog *Catalog
}

// NewPlanner returns a planner over the given catalog.
func NewPlanner(c *Catalog) *Planner { return &Planner{Catalog: c} }

// catalogCoster adapts the catalog to place.Coster: measured per-primitive
// and per-link rates where the catalog has them, the analytic model where
// it does not.
type catalogCoster struct{ c *Catalog }

func (cc catalogCoster) EstimatePipeline(g *graph.Graph, p *graph.Pipeline, id device.ID, dev device.Device) (place.Estimate, error) {
	info := dev.Info()
	est := place.Estimate{Pipeline: p.Index, Device: id}

	var scanBytes int64
	for _, sid := range p.Scans {
		scanBytes += g.Node(sid).Scan.Data.Bytes()
	}
	if scanBytes > 0 && !info.HostResident {
		if e, ok := cc.c.Nearest(Key{PrimH2D, info.Name, BucketOf(scanBytes)}); ok {
			est.Transfer = vclock.Duration(e.NsPerUnit * float64(scanBytes))
		} else {
			est.Transfer = place.ProbeTransferCost(dev, scanBytes)
		}
	}

	rows := int64(p.ScanRows(g))
	units := rows
	if units < 1 {
		units = 1
	}
	for _, nid := range p.Nodes {
		n := g.Node(nid)
		if e, ok := cc.c.Nearest(Key{n.Task.Kernel, info.Name, BucketOf(rows)}); ok {
			est.Compute += vclock.Duration(e.NsPerUnit * float64(units))
		} else {
			est.Compute += place.KernelEstimate(dev, n.Task.Kernel, rows)
		}
	}
	return est, nil
}

// Plan picks device placement, execution model, and initial chunk size for
// the graph, annotating the graph's nodes with the chosen devices (like
// place.Greedy) and returning the full decision. Predictions are two-tier:
// whole-query rates measured for a (model, driver) pair override the cold
// compositional estimate built from per-primitive rates, and if some
// (model, device) pair has a measured rate that beats the greedy placement's
// prediction, the whole query moves there — a fully warmed catalog plans
// straight onto the fastest cell it has seen. All ties break in enum /
// candidate order, so planning is deterministic.
func (pl *Planner) Plan(g *graph.Graph, rt *hub.Runtime, opts PlanOptions) (*Decision, error) {
	if len(opts.Candidates) == 0 {
		return nil, fmt.Errorf("cost: no candidate devices")
	}
	placements, err := place.GreedyWith(g, rt, opts.Candidates, catalogCoster{pl.Catalog})
	if err != nil {
		return nil, err
	}
	pipelines, err := g.BuildPipelines()
	if err != nil {
		return nil, err
	}

	d := &Decision{Placements: placements}

	// The primary device carries the dominant pipeline: model choice and
	// whole-query rates key on it.
	var transfer, compute vclock.Duration
	var maxRows int64
	for i, p := range pipelines {
		rows := int64(p.ScanRows(g))
		dec := placements[i]
		var chosen place.Estimate
		for _, e := range dec.Estimates {
			if e.Device == dec.Chosen {
				chosen = e
				break
			}
		}
		transfer += chosen.Transfer
		compute += chosen.Compute
		if i == 0 || rows > maxRows {
			maxRows = rows
			d.Device = dec.Chosen
		}
		drv, err := driverName(rt, dec.Chosen)
		if err != nil {
			return nil, err
		}
		d.Notes = append(d.Notes, fmt.Sprintf(
			"place pipeline %d on %s (transfer %v, compute %v)",
			p.Index, drv, chosen.Transfer, chosen.Compute))
	}
	d.Rows = maxRows
	if d.Driver, err = driverName(rt, d.Device); err != nil {
		return nil, err
	}

	// Tier 1: pick the model by predicted cost on the primary device —
	// measured whole-query rates where available, cold composition
	// otherwise.
	chunks := chunkCount(maxRows, opts.maxChunk())
	bestSource := ""
	for _, m := range exec.Models() {
		pred, source := pl.predictModel(m, d.Driver, maxRows, transfer, compute, chunks)
		if bestSource == "" || pred < d.Predicted {
			d.Model, d.Predicted, bestSource = m, pred, source
		}
	}

	// Tier 2: a measured whole-query rate on another device that beats the
	// greedy prediction moves the entire query there.
	for _, cand := range opts.Candidates {
		drv, err := driverName(rt, cand)
		if err != nil {
			return nil, err
		}
		for _, m := range exec.Models() {
			e, ok := pl.Catalog.Nearest(Key{PrimQueryPrefix + m.String(), drv, BucketOf(maxRows)})
			if !ok {
				continue
			}
			units := maxRows
			if units < 1 {
				units = 1
			}
			pred := vclock.Duration(e.NsPerUnit * float64(units))
			if pred < d.Predicted {
				d.Model, d.Predicted, bestSource = m, pred, "measured"
				d.Device, d.Driver = cand, drv
			}
		}
	}

	// A measured whole-query rate was observed with every pipeline on one
	// device; reproducing it means reproducing that placement, even when the
	// greedy pass scattered pipelines across devices.
	if bestSource == "measured" {
		moved := false
		for i := range placements {
			if placements[i].Chosen != d.Device {
				placements[i].Chosen = d.Device
				moved = true
			}
		}
		for _, p := range pipelines {
			for _, nid := range p.Nodes {
				g.Node(nid).Device = d.Device
			}
			for _, sid := range p.Scans {
				g.Node(sid).Device = d.Device
			}
		}
		if moved {
			d.Notes = append(d.Notes, fmt.Sprintf("re-place all pipelines on %s (measured)", d.Driver))
		}
	}
	d.Notes = append(d.Notes, fmt.Sprintf("model %v (predicted %v, %s)", d.Model, d.Predicted, bestSource))

	// Chunk size: as large as the memory budget allows, never above the
	// input, never below the floor.
	d.ChunkElems, d.MaxChunk, err = pl.chunkFor(g, rt, d.Model, maxRows, opts)
	if err != nil {
		return nil, err
	}
	d.Notes = append(d.Notes, fmt.Sprintf("chunk %d (rows %d, ceiling %d)", d.ChunkElems, maxRows, d.MaxChunk))
	return d, nil
}

// predictModel prices one execution model: a measured whole-query rate for
// (model, driver) when the catalog has one, otherwise the cold
// compositional estimate from the placement's transfer/compute totals.
func (pl *Planner) predictModel(m exec.Model, driver string, rows int64, transfer, compute vclock.Duration, chunks int64) (vclock.Duration, string) {
	if e, ok := pl.Catalog.Nearest(Key{PrimQueryPrefix + m.String(), driver, BucketOf(rows)}); ok {
		units := rows
		if units < 1 {
			units = 1
		}
		return vclock.Duration(e.NsPerUnit * float64(units)), "measured"
	}
	return coldModel(m, transfer, compute, chunks), "analytic"
}

// coldModel composes a whole-query estimate from per-pipeline transfer and
// compute totals under each model's shape: serial vs overlapped, pageable
// vs pinned staging, per-chunk bookkeeping vs per-chunk handshakes.
func coldModel(m exec.Model, transfer, compute vclock.Duration, chunks int64) vclock.Duration {
	pinnedT := vclock.Duration(pinnedFactor * float64(transfer))
	switch m {
	case exec.OperatorAtATime:
		return transfer + compute
	case exec.Chunked:
		return transfer + compute + vclock.Duration(chunks)*perChunkOverhead
	case exec.Pipelined:
		return maxDur(transfer, compute) + vclock.Duration(chunks)*perChunkSync
	case exec.FourPhaseChunked:
		return pinnedT + compute + vclock.Duration(chunks)*perChunkOverhead
	default: // exec.FourPhasePipelined
		return maxDur(pinnedT, compute) + vclock.Duration(chunks)*perChunkSync
	}
}

// chunkFor sizes the initial chunk: start from the smaller of the cap and
// the input, then halve until the model's estimated demand fits inside the
// memory fraction on every non-host-resident device. Returns the chosen
// chunk and the fitting ceiling (what a re-plan may grow back to).
func (pl *Planner) chunkFor(g *graph.Graph, rt *hub.Runtime, m exec.Model, rows int64, opts PlanOptions) (int, int, error) {
	c := opts.maxChunk()
	if rows > 0 && int64(c) > rows {
		c = align64(int(rows))
	}
	if c < opts.minChunk() {
		c = opts.minChunk()
	}
	c = align64(c)
	for {
		demand, err := exec.EstimateDemand(g, exec.Options{Model: m, ChunkElems: c})
		if err != nil {
			return 0, 0, err
		}
		fits := true
		for id, bytes := range demand {
			dev, err := rt.Device(id)
			if err != nil {
				return 0, 0, err
			}
			info := dev.Info()
			if info.HostResident {
				continue
			}
			if float64(bytes) > opts.memFraction()*float64(info.MemoryBytes) {
				fits = false
				break
			}
		}
		if fits || c <= opts.minChunk() {
			return c, c, nil
		}
		half := align64(c / 2)
		if half < opts.minChunk() {
			half = opts.minChunk()
		}
		c = half
	}
}

// Replan returns the executor hook for mid-query re-planning: when a
// pipeline's observed cardinality drifts from the estimate by 2x in either
// direction, the chunk size re-sizes to the observed rows (within the
// plan's floor and memory ceiling) and the attempt restarts. The executor
// fires the hook at pipeline boundaries and applies at most one re-plan
// per query, so the state machine is plan -> observe -> (at most one)
// restart -> finish.
func (d *Decision) Replan() exec.ReplanFunc {
	return func(o exec.ReplanObservation) (int, bool) {
		if o.EstRows <= 0 || o.ActualRows <= 0 {
			return 0, false
		}
		if o.ActualRows < 2*o.EstRows && o.EstRows < 2*o.ActualRows {
			return 0, false
		}
		nc := align64(o.ActualRows)
		if nc > d.MaxChunk {
			nc = d.MaxChunk
		}
		if nc < 64 {
			nc = 64
		}
		if nc == o.ChunkElems {
			return 0, false
		}
		return nc, true
	}
}

func driverName(rt *hub.Runtime, id device.ID) (string, error) {
	dev, err := rt.Device(id)
	if err != nil {
		return "", err
	}
	return dev.Info().Name, nil
}

func chunkCount(rows int64, chunk int) int64 {
	if rows <= 0 || chunk <= 0 {
		return 1
	}
	return (rows + int64(chunk) - 1) / int64(chunk)
}

func maxDur(a, b vclock.Duration) vclock.Duration {
	if a > b {
		return a
	}
	return b
}

func align64(n int) int {
	if n < 64 {
		return 64
	}
	return (n + 63) &^ 63
}
