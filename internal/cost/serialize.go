package cost

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// serializeHeader identifies the catalog format. The rate is written as an
// exact hexadecimal float (%x), so a serialize/deserialize round trip is
// bit-for-bit lossless and a warm catalog reproduces identical plans.
const serializeHeader = "adamant-cost-catalog v1"

// WriteTo serializes the catalog deterministically: a header line, then
// one tab-separated line per entry in canonical key order.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	bw := &countWriter{w: w}
	if _, err := fmt.Fprintln(bw, serializeHeader); err != nil {
		return bw.n, err
	}
	for _, k := range c.Keys() {
		e, _ := c.Lookup(k)
		_, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%s\t%d\n",
			k.Primitive, k.Driver, k.Bucket,
			strconv.FormatFloat(e.NsPerUnit, 'x', -1, 64), e.Samples)
		if err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// Read parses a catalog serialized by WriteTo.
func Read(r io.Reader) (*Catalog, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("cost: empty catalog stream")
	}
	if sc.Text() != serializeHeader {
		return nil, fmt.Errorf("cost: bad catalog header %q", sc.Text())
	}
	c := New()
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("cost: line %d: want 5 fields, got %d", line, len(fields))
		}
		bucket, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("cost: line %d: bucket: %v", line, err)
		}
		rate, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("cost: line %d: rate: %v", line, err)
		}
		samples, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cost: line %d: samples: %v", line, err)
		}
		c.entries[Key{fields[0], fields[1], bucket}] = Entry{NsPerUnit: rate, Samples: samples}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// countWriter tracks bytes written for the io.WriterTo contract.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
