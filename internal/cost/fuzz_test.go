package cost_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/cost"
	"github.com/adamant-db/adamant/internal/vclock"
)

// FuzzReadCatalog throws arbitrary bytes at the catalog text parser. Read
// must never panic, and any stream it accepts must round-trip: serializing
// the parsed catalog and reading it back reproduces the same bytes, so a
// warm catalog file survives arbitrary rewrite cycles unchanged.
func FuzzReadCatalog(f *testing.F) {
	var valid bytes.Buffer
	c := cost.New()
	c.Observe(cost.Key{Primitive: "filter_lt", Driver: "CUDA", Bucket: 20}, 1<<20, vclock.Duration(262144))
	c.Observe(cost.Key{Primitive: "agg_sum", Driver: "OpenMP", Bucket: 24}, 4096, vclock.Duration(7168))
	if _, err := c.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("adamant-cost-catalog v1\n"))
	f.Add([]byte("adamant-cost-catalog v1\nfilter_lt\tCUDA\t20\t0x1p-2\t3\n"))
	f.Add([]byte("adamant-cost-catalog v1\na\tb\tc\td\te\n"))
	f.Add([]byte("adamant-cost-catalog v1\na\tb\t1\tNaN\t1\n"))
	f.Add([]byte("wrong header\n"))
	f.Add([]byte(""))
	f.Add([]byte("adamant-cost-catalog v1\n\n\na\tb\t-5\t0x1p+10\t9223372036854775807\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := cost.Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage with an error is the correct outcome
		}
		var b1 bytes.Buffer
		if _, err := c1.WriteTo(&b1); err != nil {
			t.Fatalf("serializing an accepted catalog failed: %v", err)
		}
		c2, err := cost.Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading our own serialization failed: %v\n%s", err, b1.String())
		}
		var b2 bytes.Buffer
		if _, err := c2.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("round trip diverged:\n--- first\n%s--- second\n%s", b1.String(), b2.String())
		}
		if got, want := len(c2.Keys()), len(c1.Keys()); got != want {
			t.Fatalf("round trip changed entry count: %d != %d", got, want)
		}
		if strings.Count(b1.String(), "\n") != len(c1.Keys())+1 {
			t.Fatalf("serialization has %d lines for %d entries",
				strings.Count(b1.String(), "\n"), len(c1.Keys()))
		}
	})
}
