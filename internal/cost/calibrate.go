package cost

import (
	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vec"
)

// calibElems sizes the calibration scan: large enough for measurable
// per-row rates, small enough that calibration stays negligible next to
// real queries.
const calibElems = 4096

// Calibrate seeds the catalog deterministically: on every candidate device
// it runs a small synthetic query covering the workhorse primitive
// families — filter, bitmap combine, materialize, map, block aggregate —
// plus the H2D/D2H links, and folds the resulting trace into the catalog.
// Devices that cannot run the probe (fault-injected, out of memory) are
// skipped: the planner falls back to the analytic model for them. The
// synthetic data is a fixed LCG sequence, so two calibrations of the same
// runtime produce identical catalogs.
func Calibrate(rt *hub.Runtime, ids []device.ID, c *Catalog) error {
	for _, id := range ids {
		g, err := calibrationGraph(id)
		if err != nil {
			return err
		}
		rec := trace.NewRecorder()
		_, err = exec.Run(rt, g, exec.Options{
			Model:      exec.Chunked,
			ChunkElems: 1024,
			Recorder:   rec,
		})
		if err != nil {
			continue
		}
		c.ObserveSpans(rec.Spans())
	}
	return nil
}

// calibrationGraph builds the synthetic probe plan for one device: two
// int32 scans, a two-filter AND chain, a counted materialize, a widening
// map, and sum/count aggregates.
func calibrationGraph(dev device.ID) (*graph.Graph, error) {
	vals := make([]int32, calibElems)
	keys := make([]int32, calibElems)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		x = x*6364136223846793005 + 1442695040888963407
		vals[i] = int32((x >> 33) % 100000)
		keys[i] = int32((x >> 17) % 1000)
	}

	g := graph.New()
	sv := g.AddScan("calib_vals", vec.FromInt32(vals), dev)
	sk := g.AddScan("calib_keys", vec.FromInt32(keys), dev)
	f1 := g.AddTask(task.NewFilterBitmap(kernels.CmpBetween, 10000, 90000, "calib_band"), dev, sv)
	f2 := g.AddTask(task.NewFilterBitmap(kernels.CmpLt, 700, 0, "calib_lt"), dev, sk)
	and := g.AddTask(task.NewBitmapAnd(), dev, g.Out(f1, 0), g.Out(f2, 0))
	mat, err := task.NewMaterialize(vec.Int32, "calib_mat")
	if err != nil {
		return nil, err
	}
	m := g.AddTask(mat, dev, sv, g.Out(and, 0))
	cast := g.AddTask(task.NewMapCast("calib_cast"), dev, g.Out(m, 0))
	sum, err := task.NewAggBlock(kernels.AggSum, vec.Int64, "calib_sum")
	if err != nil {
		return nil, err
	}
	agg := g.AddTask(sum, dev, g.Out(cast, 0))
	cnt := g.AddTask(task.NewAggCountBits("calib_count"), dev, g.Out(and, 0))
	g.MarkResult("calib_sum", g.Out(agg, 0))
	g.MarkResult("calib_count", g.Out(cnt, 0))
	return g, nil
}
