package cost

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/adamant-db/adamant/internal/device"
	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/driver/simomp"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/vclock"
)

// testRig builds the standard two-device runtime (CUDA GPU + OpenMP CPU).
func testRig(t *testing.T) (*hub.Runtime, []device.ID) {
	t.Helper()
	rt := hub.NewRuntime()
	cuda, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	omp, err := rt.Register(simomp.New(&simhw.CoreI78700, nil))
	if err != nil {
		t.Fatal(err)
	}
	return rt, []device.ID{cuda, omp}
}

// calibGraph builds the calibration workload or fails the test.
func calibGraph(t *testing.T, id device.ID) *graph.Graph {
	t.Helper()
	g, err := calibrationGraph(id)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCalibrateSeedsCatalog(t *testing.T) {
	rt, ids := testRig(t)
	c := New()
	if err := Calibrate(rt, ids, c); err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("calibration left the catalog empty")
	}
	drivers := map[string]bool{}
	kernels := map[string]bool{}
	for _, k := range c.Keys() {
		drivers[k.Driver] = true
		if k.Primitive != PrimH2D && k.Primitive != PrimD2H {
			kernels[k.Primitive] = true
		}
	}
	if len(drivers) != 2 {
		t.Errorf("calibration covered %d drivers, want 2: %v", len(drivers), drivers)
	}
	for _, want := range []string{"filter_bitmap_i32", "bitmap_and", "agg_block_i64"} {
		if !kernels[want] {
			t.Errorf("calibration missing workhorse kernel %q (have %v)", want, kernels)
		}
	}
	// Calibration is deterministic: a second pass over a fresh runtime
	// produces a byte-identical catalog.
	rt2, ids2 := testRig(t)
	c2 := New()
	if err := Calibrate(rt2, ids2, c2); err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	c.WriteTo(&b1)
	c2.WriteTo(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two calibration passes diverged")
	}
}

func TestPlanDeterministicAndValid(t *testing.T) {
	rt, ids := testRig(t)
	c := New()
	if err := Calibrate(rt, ids, c); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(c)
	g1 := calibGraph(t, ids[0])
	d1, err := pl.Plan(g1, rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	g2 := calibGraph(t, ids[0])
	d2, err := pl.Plan(g2, rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("same catalog, same graph, different decisions:\n%+v\n%+v", d1, d2)
	}
	if d1.ChunkElems < 64 || d1.ChunkElems%64 != 0 {
		t.Errorf("chunk %d not 64-aligned", d1.ChunkElems)
	}
	if d1.MaxChunk < d1.ChunkElems {
		t.Errorf("ceiling %d below chunk %d", d1.MaxChunk, d1.ChunkElems)
	}
	if len(d1.Notes) == 0 {
		t.Error("decision carries no notes")
	}
	if len(d1.Placements) == 0 {
		t.Error("decision carries no placements")
	}
}

// TestWarmCatalogReproducesPlans pins the round-trip half of the feedback
// loop: serialize the catalog, read it back, and the deserialized catalog
// must plan the same query identically.
func TestWarmCatalogReproducesPlans(t *testing.T) {
	rt, ids := testRig(t)
	c := New()
	if err := Calibrate(rt, ids, c); err != nil {
		t.Fatal(err)
	}
	c.ObserveQuery("chunked", "GeForce RTX 2080 Ti/cuda", 4096, 800*vclock.Microsecond)

	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	warm, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	d1, err := NewPlanner(c).Plan(calibGraph(t, ids[0]), rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewPlanner(warm).Plan(calibGraph(t, ids[0]), rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("deserialized catalog planned differently:\n%+v\n%+v", d1, d2)
	}
}

// TestPlanWarmPairOverride checks tier 2: a measured whole-query rate that
// beats every tier-1 prediction moves the query to that (model, device)
// cell and re-places all pipelines there.
func TestPlanWarmPairOverride(t *testing.T) {
	rt, ids := testRig(t)
	c := New()
	if err := Calibrate(rt, ids, c); err != nil {
		t.Fatal(err)
	}
	g := calibGraph(t, ids[0])
	base, err := NewPlanner(c).Plan(g, rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}

	// An absurdly fast measured rate for a pair the greedy pass would not
	// pick: pipelined on the device the base decision did NOT choose.
	other := ids[0]
	otherName := "GeForce RTX 2080 Ti/cuda"
	if base.Device == ids[0] {
		other = ids[1]
		otherName = "Intel Core i7-8700/openmp"
	}
	c.ObserveQuery("pipelined", otherName, base.Rows, vclock.Duration(base.Rows)/1000)

	g2 := calibGraph(t, ids[0])
	warm, err := NewPlanner(c).Plan(g2, rt, PlanOptions{Candidates: ids})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Model != exec.Pipelined || warm.Device != other {
		t.Fatalf("tier-2 override not taken: model %v device %v (want pipelined on %v)",
			warm.Model, warm.Device, other)
	}
	for _, n := range g2.Nodes() {
		if n.Device != other {
			t.Fatalf("node %v left on %v after re-placement", n.ID, n.Device)
		}
	}
}

// TestPlannerRandomCatalogs property-checks the planner over random
// catalogs: whatever rates it learns, planning is deterministic (same
// catalog, same graph, same decision twice) and every decision is a valid
// configuration — a known model, a candidate device, a 64-aligned chunk
// within bounds. The differential harness already proves any such
// configuration computes the right answer; together the two properties say
// the re-planner can only ever switch to bit-identical configs.
func TestPlannerRandomCatalogs(t *testing.T) {
	rt, ids := testRig(t)
	prims := []string{"filter_bitmap_i32", "bitmap_and", "materialize_bitmap_i32",
		"map_cast_i32_i64", "agg_block_i64", "agg_count_bits", "fill_i64",
		PrimH2D, PrimD2H,
		PrimQueryPrefix + "oaat", PrimQueryPrefix + "chunked", PrimQueryPrefix + "pipelined"}
	drivers := []string{"GeForce RTX 2080 Ti/cuda", "Intel Core i7-8700/openmp"}
	models := exec.Models()

	f := func(seed int64, nEntries uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New()
		for i := 0; i < int(nEntries); i++ {
			k := Key{
				Primitive: prims[rng.Intn(len(prims))],
				Driver:    drivers[rng.Intn(len(drivers))],
				Bucket:    rng.Intn(24),
			}
			c.Observe(k, 1+rng.Int63n(1<<20), vclock.Duration(1+rng.Int63n(int64(vclock.Second))))
		}
		pl := NewPlanner(c)
		d1, err := pl.Plan(calibGraph(t, ids[0]), rt, PlanOptions{Candidates: ids})
		if err != nil {
			t.Logf("plan failed: %v", err)
			return false
		}
		d2, err := pl.Plan(calibGraph(t, ids[0]), rt, PlanOptions{Candidates: ids})
		if err != nil || !reflect.DeepEqual(d1, d2) {
			t.Logf("non-deterministic plan: %+v vs %+v (err %v)", d1, d2, err)
			return false
		}
		validModel := false
		for _, m := range models {
			if d1.Model == m {
				validModel = true
			}
		}
		validDev := false
		for _, id := range ids {
			if d1.Device == id {
				validDev = true
			}
		}
		if !validModel || !validDev {
			t.Logf("invalid decision: %+v", d1)
			return false
		}
		if d1.ChunkElems < 64 || d1.ChunkElems%64 != 0 || d1.ChunkElems > d1.MaxChunk {
			t.Logf("invalid chunk: %+v", d1)
			return false
		}
		// Whatever the drift schedule feeds the hook, it may only propose
		// 64-aligned chunks within [64, ceiling].
		replan := d1.Replan()
		for trial := 0; trial < 16; trial++ {
			o := exec.ReplanObservation{
				Pipeline:   1 + rng.Intn(4),
				EstRows:    rng.Intn(1 << 16),
				ActualRows: rng.Intn(1 << 20),
				ChunkElems: d1.ChunkElems,
			}
			nc, ok := replan(o)
			if !ok {
				continue
			}
			if nc < 64 || nc%64 != 0 || nc > d1.MaxChunk || nc == o.ChunkElems {
				t.Logf("replan proposed invalid chunk %d from %+v (ceiling %d)", nc, o, d1.MaxChunk)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReplanHook(t *testing.T) {
	d := &Decision{ChunkElems: 256, MaxChunk: 4096}
	hook := d.Replan()

	// No estimate or no observation: never fire.
	if _, ok := hook(exec.ReplanObservation{EstRows: 0, ActualRows: 500, ChunkElems: 256}); ok {
		t.Error("fired without an estimate")
	}
	if _, ok := hook(exec.ReplanObservation{EstRows: 500, ActualRows: 0, ChunkElems: 256}); ok {
		t.Error("fired without an observation")
	}
	// Within 2x either way: hold.
	if _, ok := hook(exec.ReplanObservation{EstRows: 1000, ActualRows: 1999, ChunkElems: 256}); ok {
		t.Error("fired below the 2x drift threshold")
	}
	// 2x over: re-size to the observation, 64-aligned.
	nc, ok := hook(exec.ReplanObservation{EstRows: 500, ActualRows: 1000, ChunkElems: 256})
	if !ok || nc != 1024 {
		t.Errorf("2x drift: got (%d, %v), want (1024, true)", nc, ok)
	}
	// 2x under: shrink.
	nc, ok = hook(exec.ReplanObservation{EstRows: 1000, ActualRows: 100, ChunkElems: 256})
	if !ok || nc != 128 {
		t.Errorf("shrink: got (%d, %v), want (128, true)", nc, ok)
	}
	// Clamped to the plan's ceiling.
	nc, ok = hook(exec.ReplanObservation{EstRows: 1000, ActualRows: 1 << 20, ChunkElems: 256})
	if !ok || nc != 4096 {
		t.Errorf("ceiling clamp: got (%d, %v), want (4096, true)", nc, ok)
	}
	// A drift that lands on the current chunk is a no-op.
	if _, ok := hook(exec.ReplanObservation{EstRows: 100, ActualRows: 250, ChunkElems: 256}); ok {
		t.Error("fired when the re-sized chunk equals the current one")
	}
}

// TestCalibrateSkipsFaultedDevice: a device whose probes fail is skipped,
// not fatal — the analytic fallback covers it at planning time.
func TestCalibrateSkipsFaultedDevice(t *testing.T) {
	rt := hub.NewRuntime()
	cuda, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	dead, err := rt.Register(deadDevice{simomp.New(&simhw.CoreI78700, nil)})
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	if err := Calibrate(rt, []device.ID{cuda, dead}, c); err != nil {
		t.Fatalf("calibrate failed outright: %v", err)
	}
	for _, k := range c.Keys() {
		if k.Driver == "Intel Core i7-8700/openmp" {
			t.Fatalf("dead device produced entry %v", k)
		}
	}
	if c.Len() == 0 {
		t.Fatal("healthy device produced no entries")
	}
	// Planning still works: the dead device prices analytically.
	if _, err := NewPlanner(c).Plan(calibGraph(t, cuda), rt, PlanOptions{Candidates: []device.ID{cuda, dead}}); err != nil {
		t.Fatalf("plan with a half-calibrated catalog: %v", err)
	}
}

// deadDevice fails every kernel execution.
type deadDevice struct {
	device.Device
}

func (d deadDevice) Execute(req device.ExecRequest, ready vclock.Time) (vclock.Time, error) {
	return 0, errDead
}

var errDead = &deadErr{}

type deadErr struct{}

func (*deadErr) Error() string { return "dead device" }

// TestPlanNoCandidates: an empty candidate list is an error, not a panic.
func TestPlanNoCandidates(t *testing.T) {
	rt, ids := testRig(t)
	if _, err := NewPlanner(New()).Plan(calibGraph(t, ids[0]), rt, PlanOptions{}); err == nil {
		t.Fatal("planned with no candidates")
	}
	_ = rt
}

// TestColdModelShapes pins the analytic composition's ordering: overlap
// beats serial when transfer dominates, and pinned staging discounts the
// transfer term.
func TestColdModelShapes(t *testing.T) {
	transfer := 10 * vclock.Millisecond
	compute := 2 * vclock.Millisecond
	chunks := int64(4)
	oaat := coldModel(exec.OperatorAtATime, transfer, compute, chunks)
	chunked := coldModel(exec.Chunked, transfer, compute, chunks)
	pipe := coldModel(exec.Pipelined, transfer, compute, chunks)
	fourP := coldModel(exec.FourPhaseChunked, transfer, compute, chunks)
	fourPP := coldModel(exec.FourPhasePipelined, transfer, compute, chunks)

	if oaat != transfer+compute {
		t.Errorf("oaat %v", oaat)
	}
	if chunked <= oaat {
		t.Errorf("chunked %v should pay per-chunk overhead over oaat %v", chunked, oaat)
	}
	if pipe >= oaat {
		t.Errorf("pipelined %v should overlap below oaat %v when transfer dominates", pipe, oaat)
	}
	if fourP >= chunked {
		t.Errorf("4p-chunked %v should discount transfers under chunked %v", fourP, chunked)
	}
	if fourPP >= pipe {
		t.Errorf("4p-pipelined %v should beat pipelined %v when transfer dominates", fourPP, pipe)
	}
}
