// Package cost closes ADAMANT's feedback loop: it keeps a per-(primitive,
// driver, size-bucket) catalog of measured execution rates, learned online
// from the same traces ExplainAnalyze renders, and plans queries from it —
// device placement, execution model, and initial chunk size — with a
// mid-query re-planning hook when observed cardinalities drift from the
// estimates.
//
// The paper leaves placement and model choice to the user of the plug-in
// interfaces; the catalog turns the measurement half built in earlier PRs
// (per-primitive measured ns, estimated-vs-actual rows, the adaptive
// chunking ladder) into the deciding half. Shanbhag et al.'s CPU/GPU
// crossover study motivates the shape: the right device flips with operator
// family and input size, so entries are keyed by primitive name, driver,
// and log2 size bucket, and predictions interpolate from the nearest
// learned bucket before falling back to internal/place's analytic model.
//
// Determinism is load-bearing. EWMA updates are plain arithmetic over
// virtual-time spans, serialization writes exact hex floats under sorted
// keys, and the planner breaks ties in enum order — so a warm catalog
// reproduces identical plans, and plans are diffable artifacts like traces.
package cost

import (
	"sort"
	"sync"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

// Pseudo-primitive names for catalog entries that are not kernels: the
// host-to-device and device-to-host links, and whole-query rates per
// execution model (PrimQueryPrefix + Model.String()).
const (
	PrimH2D         = "__h2d"
	PrimD2H         = "__d2h"
	PrimQueryPrefix = "__query/"
)

// Key identifies one catalog entry: a primitive (kernel name or
// pseudo-primitive), the driver it ran under (the device's full name, e.g.
// "GeForce RTX 2080 Ti/cuda"), and the log2 bucket of its input size.
type Key struct {
	Primitive string
	Driver    string
	Bucket    int
}

// Entry is one learned rate: virtual nanoseconds per unit (rows for
// kernels and whole queries, bytes for transfers), with the sample count
// behind it.
type Entry struct {
	NsPerUnit float64
	Samples   int64
}

// BucketOf returns the log2 size bucket for n units: 0 for n <= 0, else
// the bit length of n, so bucket b >= 1 covers [2^(b-1), 2^b).
func BucketOf(n int64) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	if b > 0 || n == 1 {
		b++
	}
	return b
}

// Catalog is the concurrent-safe store of learned rates.
type Catalog struct {
	mu      sync.Mutex
	alpha   float64
	entries map[Key]Entry
}

// defaultAlpha matches the telemetry EWMAs: new observations move the
// estimate a quarter of the way, smoothing chunk-size and cache-state noise
// without going stale.
const defaultAlpha = 0.25

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{alpha: defaultAlpha, entries: map[Key]Entry{}}
}

// Observe folds one measurement — d virtual time over units of work —
// into the entry for k with an EWMA. The first sample sets the rate
// directly.
func (c *Catalog) Observe(k Key, units int64, d vclock.Duration) {
	if c == nil || units <= 0 || d < 0 {
		return
	}
	obs := float64(d) / float64(units)
	c.mu.Lock()
	e := c.entries[k]
	if e.Samples == 0 {
		e.NsPerUnit = obs
	} else {
		e.NsPerUnit = c.alpha*obs + (1-c.alpha)*e.NsPerUnit
	}
	e.Samples++
	c.entries[k] = e
	c.mu.Unlock()
}

// Lookup returns the exact entry for k.
func (c *Catalog) Lookup(k Key) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	c.mu.Lock()
	e, ok := c.entries[k]
	c.mu.Unlock()
	return e, ok
}

// Nearest returns the entry for k, or failing that the entry with the
// same primitive and driver in the nearest bucket (smaller bucket wins
// ties, deterministically). Sizes scale smoothly within a primitive, so
// the nearest measured rate beats an analytic guess.
func (c *Catalog) Nearest(k Key) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		return e, true
	}
	best := -1
	var bestEntry Entry
	for ek, e := range c.entries {
		if ek.Primitive != k.Primitive || ek.Driver != k.Driver {
			continue
		}
		d := ek.Bucket - k.Bucket
		if d < 0 {
			d = -d
		}
		dist := d*2 + 1
		if ek.Bucket < k.Bucket {
			dist-- // prefer the smaller bucket on equal distance
		}
		if best < 0 || dist < best {
			best = dist
			bestEntry = e
		}
	}
	return bestEntry, best >= 0
}

// Len reports the number of entries.
func (c *Catalog) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns every key in the catalog's canonical order: sorted by
// primitive, then driver, then bucket.
func (c *Catalog) Keys() []Key {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	keys := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Primitive != b.Primitive {
			return a.Primitive < b.Primitive
		}
		if a.Driver != b.Driver {
			return a.Driver < b.Driver
		}
		return a.Bucket < b.Bucket
	})
	return keys
}

// ObserveSpans feeds a query's trace into the catalog: every kernel span
// becomes a per-primitive rate sample (input Units as the work done —
// fused kernels carry their own labels, so fused plans get their own
// entries automatically), and every transfer span a link-rate sample
// (bytes as units). Allocation and annotation spans carry no rate
// information and are skipped.
func (c *Catalog) ObserveSpans(spans []trace.Span) {
	if c == nil {
		return
	}
	for i := range spans {
		s := &spans[i]
		switch s.Kind {
		case trace.KindKernel:
			units := s.Units
			if units < 1 {
				units = s.Rows // older recorders: output rows beat nothing
			}
			if units < 1 {
				units = 1
			}
			c.Observe(Key{s.Label, s.Device, BucketOf(units)}, units, s.Duration())
		case trace.KindH2D:
			if s.Bytes > 0 {
				c.Observe(Key{PrimH2D, s.Device, BucketOf(s.Bytes)}, s.Bytes, s.Duration())
			}
		case trace.KindD2H:
			if s.Bytes > 0 {
				c.Observe(Key{PrimD2H, s.Device, BucketOf(s.Bytes)}, s.Bytes, s.Duration())
			}
		}
	}
}

// ObserveQuery records a whole-query rate for one (model, driver) pair:
// elapsed virtual time over the query's input rows. These entries let the
// planner prefer configurations it has actually run over compositional
// estimates.
func (c *Catalog) ObserveQuery(model, driver string, rows int64, elapsed vclock.Duration) {
	if c == nil {
		return
	}
	units := rows
	if units < 1 {
		units = 1
	}
	c.Observe(Key{PrimQueryPrefix + model, driver, BucketOf(rows)}, units, elapsed)
}
