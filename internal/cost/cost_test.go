package cost

import (
	"bytes"
	"strings"
	"testing"

	"github.com/adamant-db/adamant/internal/trace"
	"github.com/adamant-db/adamant/internal/vclock"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := BucketOf(c.n); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestObserveEWMA(t *testing.T) {
	c := New()
	k := Key{"filter", "dev", 10}
	c.Observe(k, 100, 1000) // 10 ns/unit, first sample sets directly
	e, ok := c.Lookup(k)
	if !ok || e.NsPerUnit != 10 || e.Samples != 1 {
		t.Fatalf("first sample: %+v ok=%v", e, ok)
	}
	c.Observe(k, 100, 2000) // 20 ns/unit -> 0.25*20 + 0.75*10 = 12.5
	e, _ = c.Lookup(k)
	if e.NsPerUnit != 12.5 || e.Samples != 2 {
		t.Fatalf("EWMA: %+v", e)
	}
	// Invalid observations are dropped.
	c.Observe(k, 0, 1000)
	c.Observe(k, -5, 1000)
	c.Observe(k, 10, -1)
	if e, _ := c.Lookup(k); e.Samples != 2 {
		t.Fatalf("invalid observations counted: %+v", e)
	}
	var nilCat *Catalog
	nilCat.Observe(k, 1, 1) // must not panic
	if nilCat.Len() != 0 {
		t.Fatal("nil catalog grew")
	}
}

func TestNearest(t *testing.T) {
	c := New()
	c.Observe(Key{"k", "d", 8}, 1, 80)
	c.Observe(Key{"k", "d", 12}, 1, 120)
	c.Observe(Key{"k", "other", 10}, 1, 999)

	if e, ok := c.Nearest(Key{"k", "d", 8}); !ok || e.NsPerUnit != 80 {
		t.Fatalf("exact hit: %+v ok=%v", e, ok)
	}
	// Bucket 10 is equidistant from 8 and 12: the smaller bucket wins.
	if e, ok := c.Nearest(Key{"k", "d", 10}); !ok || e.NsPerUnit != 80 {
		t.Fatalf("tie should prefer smaller bucket: %+v ok=%v", e, ok)
	}
	if e, ok := c.Nearest(Key{"k", "d", 11}); !ok || e.NsPerUnit != 120 {
		t.Fatalf("nearest: %+v ok=%v", e, ok)
	}
	if _, ok := c.Nearest(Key{"missing", "d", 8}); ok {
		t.Fatal("missing primitive matched")
	}
	if _, ok := c.Nearest(Key{"k", "missing", 8}); ok {
		t.Fatal("missing driver matched")
	}
	var nilCat *Catalog
	if _, ok := nilCat.Nearest(Key{"k", "d", 8}); ok {
		t.Fatal("nil catalog matched")
	}
}

// TestRoundTrip pins the serialization satellite: WriteTo emits sorted
// keys and exact hex-float rates, Read reproduces the catalog exactly, and
// a second WriteTo is byte-identical.
func TestRoundTrip(t *testing.T) {
	c := New()
	c.Observe(Key{"zeta", "b-dev", 3}, 7, 12345)
	c.Observe(Key{"alpha", "b-dev", 5}, 3, 10007) // non-terminating rate
	c.Observe(Key{"alpha", "a-dev", 5}, 1, 42)
	c.Observe(Key{PrimH2D, "a-dev", 20}, 1<<20, 7*vclock.Millisecond)
	c.Observe(Key{"alpha", "a-dev", 5}, 9, 100) // EWMA-blended entry

	var buf1 bytes.Buffer
	n, err := c.WriteTo(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf1.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf1.Len())
	}
	serialized := append([]byte(nil), buf1.Bytes()...) // Read drains the buffer
	lines := strings.Split(strings.TrimRight(buf1.String(), "\n"), "\n")
	if lines[0] != "adamant-cost-catalog v1" {
		t.Fatalf("header: %q", lines[0])
	}
	for i := 2; i < len(lines); i++ {
		if !(lines[i-1] < lines[i]) {
			t.Fatalf("lines not sorted: %q >= %q", lines[i-1], lines[i])
		}
	}

	got, err := Read(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("round-trip len %d != %d", got.Len(), c.Len())
	}
	for _, k := range c.Keys() {
		want, _ := c.Lookup(k)
		have, ok := got.Lookup(k)
		if !ok || want != have {
			t.Fatalf("key %v: want %+v, got %+v (ok=%v)", k, want, have, ok)
		}
	}

	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialized, buf2.Bytes()) {
		t.Fatal("second serialization not byte-identical")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong-header\n",
		"adamant-cost-catalog v1\nonly\ttwo\n",
		"adamant-cost-catalog v1\nk\td\tNaB\t0x1p+0\t1\n",
		"adamant-cost-catalog v1\nk\td\t3\tnot-a-float\t1\n",
		"adamant-cost-catalog v1\nk\td\t3\t0x1p+0\tnope\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded", in)
		}
	}
}

func TestObserveSpans(t *testing.T) {
	c := New()
	spans := []trace.Span{
		// A kernel with input units: rate normalizes by the work done.
		{Kind: trace.KindKernel, Label: "filter", Device: "d", Units: 1024, Rows: 10,
			Start: 0, End: vclock.Time(2048)},
		// A kernel with only output rows (older recorders): Rows beats nothing.
		{Kind: trace.KindKernel, Label: "agg", Device: "d", Rows: 4,
			Start: 0, End: vclock.Time(40)},
		// Transfers key on bytes.
		{Kind: trace.KindH2D, Label: "x", Device: "d", Bytes: 4096, Start: 0, End: vclock.Time(4096)},
		{Kind: trace.KindD2H, Label: "x", Device: "d", Bytes: 512, Start: 0, End: vclock.Time(1024)},
		// Byteless transfers and non-rate spans are skipped.
		{Kind: trace.KindH2D, Label: "x", Device: "d", Bytes: 0},
		{Kind: trace.KindAlloc, Label: "x", Device: "d", Bytes: 64},
		{Kind: trace.KindAutoPlan, Label: "note"},
	}
	c.ObserveSpans(spans)
	if e, ok := c.Lookup(Key{"filter", "d", BucketOf(1024)}); !ok || e.NsPerUnit != 2 {
		t.Fatalf("kernel units entry: %+v ok=%v", e, ok)
	}
	if e, ok := c.Lookup(Key{"agg", "d", BucketOf(4)}); !ok || e.NsPerUnit != 10 {
		t.Fatalf("kernel rows fallback entry: %+v ok=%v", e, ok)
	}
	if e, ok := c.Lookup(Key{PrimH2D, "d", BucketOf(4096)}); !ok || e.NsPerUnit != 1 {
		t.Fatalf("h2d entry: %+v ok=%v", e, ok)
	}
	if e, ok := c.Lookup(Key{PrimD2H, "d", BucketOf(512)}); !ok || e.NsPerUnit != 2 {
		t.Fatalf("d2h entry: %+v ok=%v", e, ok)
	}
	if c.Len() != 4 {
		t.Fatalf("catalog len %d, want 4", c.Len())
	}
}

func TestObserveQuery(t *testing.T) {
	c := New()
	c.ObserveQuery("chunked", "d", 1000, vclock.Duration(5000))
	if e, ok := c.Lookup(Key{PrimQueryPrefix + "chunked", "d", BucketOf(1000)}); !ok || e.NsPerUnit != 5 {
		t.Fatalf("query entry: %+v ok=%v", e, ok)
	}
	// Zero rows still records (bucket 0, one unit).
	c.ObserveQuery("oaat", "d", 0, vclock.Duration(7))
	if e, ok := c.Lookup(Key{PrimQueryPrefix + "oaat", "d", 0}); !ok || e.NsPerUnit != 7 {
		t.Fatalf("zero-row query entry: %+v ok=%v", e, ok)
	}
}
