package core

import (
	"testing"

	"github.com/adamant-db/adamant/internal/driver/simcuda"
	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
	"github.com/adamant-db/adamant/internal/kernels"
	"github.com/adamant-db/adamant/internal/simhw"
	"github.com/adamant-db/adamant/internal/task"
	"github.com/adamant-db/adamant/internal/vec"
)

func TestModelsMatchExec(t *testing.T) {
	pairs := map[Model]exec.Model{
		OperatorAtATime:    exec.OperatorAtATime,
		Chunked:            exec.Chunked,
		Pipelined:          exec.Pipelined,
		FourPhaseChunked:   exec.FourPhaseChunked,
		FourPhasePipelined: exec.FourPhasePipelined,
	}
	for a, b := range pairs {
		if a != b {
			t.Errorf("model %v re-exported as %v", b, a)
		}
	}
}

func TestRun(t *testing.T) {
	rt := hub.NewRuntime()
	dev, err := rt.Register(simcuda.New(&simhw.RTX2080Ti, nil))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	s := g.AddScan("a", vec.FromInt32([]int32{1, 2, 3, 4}), dev)
	f := g.AddTask(task.NewFilterBitmap(kernels.CmpGe, 3, 0, "a>=3"), dev, s)
	cnt := g.AddTask(task.NewAggCountBits("count"), dev, g.Out(f, 0))
	g.MarkResult("count", g.Out(cnt, 0))

	res, err := Run(rt, g, Options{Model: Chunked, ChunkElems: 64})
	if err != nil {
		t.Fatal(err)
	}
	col, ok := res.Column("count")
	if !ok || col.I64()[0] != 2 {
		t.Errorf("count = %v", col)
	}
}
