// Package core assembles ADAMANT's primary contribution — the pluggable
// query executor — from its subsystems: the device layer (package device
// and the driver packages), the task layer (packages task and primitive),
// and the runtime layer (packages graph, hub and exec).
//
// The package exists so that the public facade and the tools depend on one
// stable composition point rather than on the individual layers. It
// re-exports the execution-model vocabulary and provides the one-call query
// entry point used by the facade, the CLI tools and the benchmarks.
package core

import (
	"context"

	"github.com/adamant-db/adamant/internal/exec"
	"github.com/adamant-db/adamant/internal/graph"
	"github.com/adamant-db/adamant/internal/hub"
)

// Model selects an execution model (§IV of the paper).
type Model = exec.Model

// Execution models, re-exported for the facade.
const (
	OperatorAtATime    = exec.OperatorAtATime
	Chunked            = exec.Chunked
	Pipelined          = exec.Pipelined
	FourPhaseChunked   = exec.FourPhaseChunked
	FourPhasePipelined = exec.FourPhasePipelined
)

// Options is the execution configuration.
type Options = exec.Options

// RetryPolicy configures transient-fault retries at the device interfaces.
type RetryPolicy = exec.RetryPolicy

// Result is a query outcome with execution statistics.
type Result = exec.Result

// Run executes a primitive graph on the runtime's plugged devices.
func Run(rt *hub.Runtime, g *graph.Graph, opts Options) (*Result, error) {
	return exec.Run(rt, g, opts)
}

// RunContext is Run with cancellation: the context is honoured at chunk
// and pipeline boundaries, and a cancelled query releases everything it
// allocated. On cancellation the returned Result (when non-nil) carries
// the partial execution statistics.
func RunContext(ctx context.Context, rt *hub.Runtime, g *graph.Graph, opts Options) (*Result, error) {
	return exec.RunContext(ctx, rt, g, opts)
}
