// Package storage provides the host-side columnar tables ADAMANT queries
// run against: typed columns, tables, and a catalog. Query plans bind scan
// nodes to these columns; the execution models stream them to the devices
// chunk by chunk.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"github.com/adamant-db/adamant/internal/vec"
)

// Storage errors.
var (
	ErrUnknownColumn  = errors.New("storage: unknown column")
	ErrUnknownTable   = errors.New("storage: unknown table")
	ErrLengthMismatch = errors.New("storage: column length mismatch")
)

// Column is a named, typed host column.
type Column struct {
	Name string
	Data vec.Vector
}

// Table is a fixed-cardinality collection of equal-length columns.
type Table struct {
	Name string
	rows int
	cols []Column
	idx  map[string]int
}

// NewTable creates an empty table expecting the given row count.
func NewTable(name string, rows int) *Table {
	return &Table{Name: name, rows: rows, idx: make(map[string]int)}
}

// Rows reports the table cardinality.
func (t *Table) Rows() int { return t.rows }

// AddColumn attaches a column; its length must match the table cardinality.
func (t *Table) AddColumn(name string, data vec.Vector) error {
	if data.Len() != t.rows {
		return fmt.Errorf("%w: %s.%s has %d rows, table has %d", ErrLengthMismatch, t.Name, name, data.Len(), t.rows)
	}
	if _, dup := t.idx[name]; dup {
		return fmt.Errorf("storage: duplicate column %s.%s", t.Name, name)
	}
	t.idx[name] = len(t.cols)
	t.cols = append(t.cols, Column{Name: name, Data: data})
	return nil
}

// MustAddColumn is AddColumn for construction-time columns that cannot
// mismatch; it panics on error.
func (t *Table) MustAddColumn(name string, data vec.Vector) {
	if err := t.AddColumn(name, data); err != nil {
		panic(err)
	}
}

// Column resolves a column by name.
func (t *Table) Column(name string) (vec.Vector, error) {
	i, ok := t.idx[name]
	if !ok {
		return vec.Vector{}, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, t.Name, name)
	}
	return t.cols[i].Data, nil
}

// MustColumn resolves a column that is known to exist; it panics otherwise.
func (t *Table) MustColumn(name string) vec.Vector {
	v, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Columns lists the columns in attachment order.
func (t *Table) Columns() []Column { return t.cols }

// ColumnNames lists the column names in attachment order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// Bytes reports the table's total column storage.
func (t *Table) Bytes() int64 {
	var total int64
	for _, c := range t.cols {
		total += c.Data.Bytes()
	}
	return total
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Add registers a table.
func (c *Catalog) Add(t *Table) { c.tables[t.Name] = t }

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, name)
	}
	return t, nil
}

// Names lists the table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Bytes reports the catalog's total storage.
func (c *Catalog) Bytes() int64 {
	var total int64
	for _, t := range c.tables {
		total += t.Bytes()
	}
	return total
}
